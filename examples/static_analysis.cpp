// Static analysis walkthrough (paper §6): satisfiability with witnesses,
// sequentialisation, determinization, and containment — including the
// PTIME case for deterministic sequential point-disjoint VA.
//
//   build/examples/example_static_analysis
#include <iostream>

#include "spanners.h"

using namespace spanners;

namespace {

void CheckSat(const char* pattern) {
  RgxPtr rgx = ParseRgx(pattern).ValueOrDie();
  VA va = CompileToVa(rgx);
  std::optional<Document> w = SatWitnessVa(va);
  std::cout << "  Sat(" << pattern << ") = " << (w.has_value() ? "yes" : "no");
  if (w.has_value()) std::cout << "   witness: \"" << w->text() << "\"";
  std::cout << "\n";
}

void CheckContainment(const char* p1, const char* p2) {
  VA a1 = CompileToVa(ParseRgx(p1).ValueOrDie());
  VA a2 = CompileToVa(ParseRgx(p2).ValueOrDie());
  std::cout << "  ⟦" << p1 << "⟧ ⊆ ⟦" << p2 << "⟧ ? "
            << (IsContainedIn(a1, a2) ? "yes" : "no") << "\n";
}

}  // namespace

int main() {
  std::cout << "== satisfiability (Theorems 6.1/6.2) ==\n";
  CheckSat("x{a*}y{b+}c");
  CheckSat("x{a}x{b}");    // variable reused in a concatenation
  CheckSat("x{x{a}}");     // self-nested variable
  CheckSat("x{a}x{b}|c");  // rescued by the second disjunct

  std::cout << "\n== sequentiality (Propositions 5.5/5.6) ==\n";
  RgxPtr star_var = ParseRgx("(x{a}|a)*").ValueOrDie();
  VA nonseq = CompileToVa(star_var);
  std::cout << "  (x{a}|a)* compiles to a sequential VA? "
            << (IsSequentialVa(nonseq) ? "yes" : "no") << "\n";
  VA seq = MakeSequential(nonseq);
  std::cout << "  after MakeSequential: "
            << (IsSequentialVa(seq) ? "sequential" : "still not") << ", "
            << seq.NumStates() << " states (was " << nonseq.NumStates()
            << "), equivalent? "
            << (AreEquivalentVa(nonseq, seq) ? "yes" : "no") << "\n";

  std::cout << "\n== determinization (Proposition 6.5) ==\n";
  VA det = Determinize(nonseq);
  std::cout << "  deterministic? " << (det.IsDeterministic() ? "yes" : "no")
            << ", " << det.NumStates() << " states, equivalent? "
            << (AreEquivalentVa(det, nonseq) ? "yes" : "no") << "\n";

  std::cout << "\n== containment (Theorems 6.4/6.7) ==\n";
  CheckContainment("ab", "a*b*");
  CheckContainment("x{a*}", "x{(a|b)*}");
  CheckContainment("x{(a|b)*}", "x{a*}");
  CheckContainment("x{a}b", "x{a}b|a(y{b})");

  std::cout << "\n== PTIME containment for det+seq+point-disjoint "
               "(Theorem 6.7) ==\n";
  VA d1 = Determinize(CompileToVa(ParseRgx("x{a}bc").ValueOrDie()));
  VA d2 = Determinize(CompileToVa(ParseRgx("x{a}b(c|d)").ValueOrDie()));
  std::cout << "  x{a}bc ⊑ x{a}b(c|d): "
            << (IsContainedInDetSeqPd(d1, d2) ? "yes" : "no") << "\n";
  std::cout << "  x{a}b(c|d) ⊑ x{a}bc: "
            << (IsContainedInDetSeqPd(d2, d1) ? "yes" : "no") << "\n";

  std::cout << "\n== VA → RGX (Theorem 4.3) ==\n";
  RgxPtr back = VaToRgx(CompileToVa(ParseRgx("x{a*}y{b*}").ValueOrDie()))
                    .ValueOrDie();
  std::cout << "  x{a*}y{b*} round-trips to: " << ToPattern(back) << "\n";
  return 0;
}
