// The batch-extraction engine end to end: compile the paper's §3.1
// seller/tax spanner once (plan cache), shard a generated land-registry
// corpus, extract in parallel, and show that the output is identical for
// every thread count.
//
//   build/example_batch_extraction [docs]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "workload/generators.h"

using namespace spanners;
using namespace spanners::engine;

int main(int argc, char** argv) {
  size_t docs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  workload::CorpusOptions copt;
  copt.documents = docs;
  Corpus corpus(workload::LandRegistryCorpus(copt));
  std::cout << "corpus: " << corpus.size() << " documents, "
            << corpus.TotalBytes() << " bytes\n";

  // The cache compiles each pattern once; the second lookup is a hit.
  PlanCache cache;
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),[^,\\n]*(, \\$(y{[0-9]*})|\\e)\\n.*";
  auto plan = cache.GetOrCompile(kPattern).ValueOrDie();
  auto again = cache.GetOrCompile(kPattern).ValueOrDie();
  PlanCacheStats cs = cache.stats();
  std::cout << "plan: [" << plan->info().ToString() << "]  cache: "
            << cs.hits << " hits / " << cs.misses << " misses\n";
  (void)again;

  uint64_t reference_mappings = 0;
  for (size_t threads : {1, 2, 8}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    BatchExtractor extractor(bopt);
    auto t0 = std::chrono::steady_clock::now();
    BatchResult result = extractor.Extract(*plan, corpus);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    if (threads == 1) reference_mappings = result.total_mappings;
    std::cout << threads << " thread(s): " << result.total_mappings
              << " mappings from " << result.MatchedDocuments()
              << " matched docs in " << ms << " ms (" << result.shards
              << " shards, output "
              << (result.total_mappings == reference_mappings ? "identical"
                                                              : "DIFFERS")
              << ")\n";
  }

  // A few concrete rows, the way tools/spanex prints them.
  const VarSet& vars = plan->spanner().vars();
  BatchExtractor extractor;
  BatchResult result = extractor.Extract(*plan, corpus);
  std::cout << "\n" << TsvHeader(vars) << "\n";
  size_t shown = 0;
  for (size_t i = 0; i < result.per_doc.size() && shown < 5; ++i)
    for (const Mapping& m : result.per_doc[i]) {
      std::cout << ToTsvRow(i, m, vars, corpus[i]) << "\n";
      if (++shown >= 5) break;
    }
  return 0;
}
