// Polynomial-delay enumeration and the spanner algebra over a synthetic
// server log: extract method/path/optional-error mappings line by line
// (Theorems 5.1 + 5.7), then combine spanners with ∪, π and ⋈
// (Theorem 4.5).
//
//   build/examples/example_log_analysis [lines]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "spanners.h"
#include "workload/generators.h"

using namespace spanners;

int main(int argc, char** argv) {
  size_t lines = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50;
  workload::LogOptions options;
  options.lines = lines;
  Document doc = workload::ServerLogDocument(options);

  VA va = CompileToVa(workload::LogLineRgx());
  VarId m_var = Variable::Intern("m");
  VarId p_var = Variable::Intern("p");
  VarId c_var = Variable::Intern("c");

  std::cout << "== extracting matches (run enumeration) ==\n";
  size_t count = 0, errors = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (const Mapping& m : RunEval(va, doc).Sorted()) {
    ++count;
    if (m.Defines(c_var)) ++errors;
    if (count <= 5) {
      std::cout << "  " << doc.content(*m.Get(m_var)) << " "
                << doc.content(*m.Get(p_var));
      if (m.Defines(c_var))
        std::cout << "  (error: " << doc.content(*m.Get(c_var)) << ")";
      std::cout << "\n";
    }
  }
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  std::cout << "  ... " << count << " matches (" << errors
            << " with an error cause) in " << ms << " ms\n";

  // Algorithm 1 (Theorem 5.1): same mappings with a *guaranteed*
  // polynomial delay between outputs, demonstrated on a short prefix.
  std::cout << "\n== polynomial-delay enumeration (Algorithm 1) ==\n";
  workload::LogOptions small_opt;
  small_opt.lines = 4;
  Document small_doc = workload::ServerLogDocument(small_opt);
  MappingEnumerator e = MakeSequentialEnumerator(va, small_doc);
  size_t last_calls = 0, max_delay_calls = 0, n_out = 0;
  while (e.Next().has_value()) {
    max_delay_calls = std::max(max_delay_calls, e.oracle_calls() - last_calls);
    last_calls = e.oracle_calls();
    ++n_out;
  }
  size_t k = va.Vars().size();
  std::cout << "  " << n_out << " outputs over a 4-line log; max oracle "
            << "calls between outputs: " << max_delay_calls
            << " (bound: |vars|·(|spans|+1)+1 = "
            << k * (small_doc.AllSpans().size() + 1) + 1 << ")\n";

  std::cout << "\n== spanner algebra (Theorem 4.5) ==\n";
  // π_{m}: project everything but the method away.
  VA methods = ProjectVa(va, VarSet({m_var}));
  Document small(
      "host1 GET /a 200\n"
      "host2 POST /x 500 err=timeout\n"
      "host3 GET /a/b 500 err=oom\n");
  std::cout << "π_m over a 3-line log: "
            << RunEval(methods, small).size() << " distinct method "
            << "mappings\n";

  // Join with a filter spanner that requires some 500 somewhere.
  VA filter = CompileToVa(ParseRgx(".* 500.*").ValueOrDie());
  VA joined = JoinVa(va, filter);
  std::cout << "⋈ with \".* 500.*\" filter: "
            << RunEval(joined, small).size() << " mappings (vs "
            << RunEval(va, small).size() << " without)\n";

  // Union with a spanner extracting hosts instead.
  VA hosts = CompileToVa(
      ParseRgx("(.*\\n|\\e)(h{[a-z0-9]+}) .*").ValueOrDie());
  VA unioned = UnionVa(va, hosts);
  std::cout << "∪ with host extractor: " << RunEval(unioned, small).size()
            << " mappings\n";
  return 0;
}
