// The composable query API end to end: build a spanner-algebra expression
// (union, natural join, string-equality selection, projection) over RGX
// and rule-program leaves, compile it through the shared plan cache —
// union/projection fuse into one automaton, join/selection lower to
// relational operators — and run it over a generated land-registry corpus
// on the batch engine.
//
//   build/example_query_algebra [docs]
#include <cstdlib>
#include <iostream>

#include "engine/engine.h"
#include "query/compile.h"
#include "query/parser.h"
#include "workload/generators.h"

using namespace spanners;
using namespace spanners::engine;

int main(int argc, char** argv) {
  size_t docs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  workload::CorpusOptions copt;
  copt.documents = docs;
  Corpus corpus(workload::LandRegistryCorpus(copt));
  std::cout << "corpus: " << corpus.size() << " documents, "
            << corpus.TotalBytes() << " bytes\n";

  // Two extraction views of the same Table 1 rows: seller name with the
  // optional tax field, and seller name with the optional buyer id. The
  // natural join glues them on the shared seller variable x — one row of
  // incomplete information per (tax, buyer) combination.
  const char* kQuery =
      "join("
      "rgx(\".*Seller: (x{[^,\\n]*}),[^,\\n]*(, \\$(y{[0-9]*})|\\e)\\n.*\"), "
      "rgx(\".*Seller: (x{[^,\\n]*}), ID(z{[0-9]+})(,[^\\n]*|\\e)\\n.*\"))";

  Result<query::ExprPtr> expr = query::ParseQuery(kQuery);
  if (!expr.ok()) {
    std::cerr << "parse failed: " << expr.status().ToString() << "\n";
    return 1;
  }

  PlanCache cache;
  query::QueryCompileOptions qopts;
  qopts.cache = &cache;
  query::CompiledQuery q =
      query::CompiledQuery::Compile(expr.value(), qopts).ValueOrDie();
  std::cout << "query:   " << q.text() << "\n"
            << "plan:    " << q.PlanString() << "\n"
            << "scans:   " << q.num_scans() << "\n";

  // Compiling the same expression again is served from the cache.
  query::CompiledQuery::Compile(expr.value(), qopts).ValueOrDie();
  PlanCacheStats cs = cache.stats();
  std::cout << "cache:   " << cs.size << " plans, " << cs.hits << " hits, "
            << cs.misses << " misses\n";

  // The compiled query is a DocumentExtractor: the batch engine shards,
  // steals work and produces thread-count-independent output exactly as
  // it does for single-pattern plans.
  uint64_t reference = 0;
  for (size_t threads : {1, 8}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    BatchExtractor extractor(bopt);
    BatchResult result = extractor.Extract(q, corpus);
    if (threads == 1) reference = result.total_mappings;
    std::cout << threads << " thread(s): " << result.total_mappings
              << " mappings, " << result.MatchedDocuments()
              << " matched docs ("
              << (result.total_mappings == reference ? "identical"
                                                     : "DIFFERS")
              << ")\n";
  }

  BatchExtractor extractor;
  BatchResult result = extractor.Extract(q, corpus);
  std::cout << "\n" << TsvHeader(q.vars()) << "\n";
  size_t shown = 0;
  for (size_t i = 0; i < result.per_doc.size() && shown < 5; ++i)
    for (const Mapping& m : result.per_doc[i]) {
      std::cout << ToTsvRow(i, m, q.vars(), corpus[i]) << "\n";
      if (++shown >= 5) break;
    }
  return 0;
}
