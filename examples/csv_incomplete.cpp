// The paper's §1 motivating task (Table 1): extract seller names from a
// land-registry CSV, including the *optional* tax field when present —
// the headline incomplete-information feature of mapping-based spanners.
//
//   build/examples/example_csv_incomplete [rows]
#include <cstdlib>
#include <iostream>

#include "spanners.h"
#include "workload/generators.h"

using namespace spanners;

int main(int argc, char** argv) {
  size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  workload::LandRegistryOptions options;
  options.rows = rows;
  options.tax_probability = 0.4;
  Document doc = workload::LandRegistryDocument(options);

  std::cout << "== input (" << rows << " rows, Table 1 shape) ==\n"
            << doc.text() << "\n";

  RgxPtr rgx = workload::SellerNameTaxRgx();
  std::cout << "== extraction expression (paper §3.1) ==\n"
            << ToPattern(rgx) << "\n\n";

  VA va = CompileToVa(rgx);
  if (!IsSequentialVa(va)) {
    std::cerr << "expected a sequential automaton\n";
    return 1;
  }

  VarId x = Variable::Intern("x");
  VarId y = Variable::Intern("y");
  std::cout << "== extracted sellers (partial mappings when no tax) ==\n";
  // RunEval enumerates accepting runs directly (output-sensitive and fast
  // in practice); Algorithm 1 (EnumerateSequential) gives the same set
  // with a worst-case polynomial delay guarantee.
  size_t partial = 0, total = 0;
  for (const Mapping& m : RunEval(va, doc).Sorted()) {
    std::cout << "  name=\"" << doc.content(*m.Get(x)) << "\"";
    if (m.Defines(y)) {
      std::cout << " tax=$" << doc.content(*m.Get(y));
      ++total;
    } else {
      std::cout << " tax=<not present>";
      ++partial;
    }
    std::cout << "\n";
  }
  std::cout << "\n" << total << " mapping(s) with tax, " << partial
            << " partial mapping(s) without — a relation-based spanner "
               "would have lost the partial rows.\n";
  return 0;
}
