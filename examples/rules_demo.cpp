// Extraction rules (paper §3.3 / §4.3): rule graphs, cycle elimination
// (Theorem 4.7, including the paper's x.y ∧ y.z ∧ z.ux example), and the
// tree-like ↔ RGX conversions.
//
//   build/examples/example_rules_demo
#include <iostream>

#include "spanners.h"

using namespace spanners;

namespace {

void Evaluate(const ExtractionRule& rule, const Document& doc) {
  std::cout << "rule: " << rule.ToString() << "\n  on \"" << doc.text()
            << "\":\n";
  MappingSet out = RuleReferenceEval(rule, doc);
  if (out.empty()) std::cout << "    (no mappings)\n";
  for (const Mapping& m : out.Sorted())
    std::cout << "    " << m.DebugString(doc) << "\n";
}

}  // namespace

int main() {
  std::cout << "== a dag-like rule with shape constraints ==\n";
  ExtractionRule shaped =
      ExtractionRule::Parse("a(x{.*})a* && x.(b+)").ValueOrDie();
  Evaluate(shaped, Document("abba"));

  std::cout << "\n== non-hierarchical extraction (impossible for RGX, "
               "Theorem 4.6) ==\n";
  ExtractionRule overlap =
      ExtractionRule::Parse("x{.*} && x.(.*y{.*}.*) && x.(.*z{.*}.*)")
          .ValueOrDie();
  Document d4("aaaa");
  MappingSet out = RuleReferenceEval(overlap, d4);
  std::cout << "rule " << overlap.ToString() << " is hierarchical? "
            << (out.IsHierarchical() ? "yes" : "no — y and z overlap")
            << "\n";

  std::cout << "\n== cycle elimination (Theorem 4.7) ==\n";
  ExtractionRule cyclic =
      ExtractionRule::Parse(
          "a(x{.*}) && x.(y{.*}) && y.(z{.*}) && z.(u{.*}x{.*})")
          .ValueOrDie();
  std::cout << "cyclic rule:   " << cyclic.ToString() << "\n";
  CycleElimResult elim = EliminateCycles(cyclic).ValueOrDie();
  std::cout << "dag-like form: " << elim.rule.ToString() << "\n";
  std::cout << "auxiliaries:   " << elim.aux_vars.ToString() << "\n";
  RuleGraph g(elim.rule);
  std::cout << "graph is dag-like: " << (g.IsDagLike() ? "yes" : "no")
            << "\n";
  Document dab("ab");
  std::cout << "same semantics on \"ab\" (mod auxiliaries): "
            << (RuleReferenceEval(elim.rule, dab)
                        .Project(cyclic.AllVars()) ==
                        RuleReferenceEval(cyclic, dab)
                    ? "yes"
                    : "no")
            << "\n";

  std::cout << "\n== tree-like rule → RGX (Lemma B.1) ==\n";
  ExtractionRule tree =
      ExtractionRule::Parse("a(x{.*})b(y{.*}) && x.(abc(z{.*})) && z.(d)")
          .ValueOrDie();
  RgxPtr image = TreeRuleToRgx(tree).ValueOrDie();
  std::cout << "rule: " << tree.ToString() << "\nRGX:  " << ToPattern(image)
            << "\n";

  std::cout << "\n== RGX → union of tree-like rules (Theorem 4.10) ==\n";
  RgxPtr rgx = ParseRgx("(x{a}|a)*").ValueOrDie();
  std::cout << "RGX: " << ToPattern(rgx) << "\n";
  for (const ExtractionRule& r : RgxToTreeRules(rgx))
    std::cout << "  ∪ " << r.ToString() << "\n";

  std::cout << "\n== PTIME evaluation of sequential tree-like rules "
               "(Theorem 5.9) ==\n";
  ExtractionRule seq_tree =
      ExtractionRule::Parse("x{.*}(,y{.*}|\\e) && x.([^,]*) && y.([^,]*)")
          .ValueOrDie();
  Document csv("john,35000");
  std::cout << "rule: " << seq_tree.ToString() << "\n";
  for (const Mapping& m : EnumerateTreeRule(seq_tree, csv).Sorted())
    std::cout << "    " << m.DebugString(csv) << "\n";
  return 0;
}
