// Quickstart: the paper's Example 3.1 end to end.
//
//   build/examples/example_quickstart
//
// Parses RGX formulas, evaluates them over the document "aaabbb" with the
// Table 2 reference semantics and with the automata pipeline, and prints
// the resulting mappings.
#include <iostream>

#include "spanners.h"

using namespace spanners;

namespace {

void Show(const char* pattern, const Document& doc) {
  RgxPtr rgx = ParseRgx(pattern).ValueOrDie();
  VA va = CompileToVa(rgx);
  MappingSet out = RunEval(va, doc);
  std::cout << "⟦" << pattern << "⟧ on \"" << doc.text() << "\"  →  "
            << out.size() << " mapping(s)\n";
  for (const Mapping& m : out.Sorted())
    std::cout << "    " << m.DebugString(doc) << "\n";
  // Sanity: the denotational semantics agrees.
  if (!(ReferenceEval(rgx, doc) == out))
    std::cout << "    (mismatch with Table 2 semantics?!)\n";
}

}  // namespace

int main() {
  Document d("aaabbb");
  std::cout << "== Example 3.1 from the paper ==\n\n";

  // A single letter never spans the whole document: empty output.
  Show("x{a}", d);
  std::cout << "\n";

  // x gets the a-block, y the b-block.
  Show("x{a*}y{b*}", d);
  std::cout << "\n";

  // Re-binding x on both sides of a concatenation can never output.
  Show("x{a*}x{b*}", d);
  std::cout << "\n";

  // Kleene star over variables: several partial mappings, including ones
  // that leave x or y undefined — the paper's incomplete information.
  Show("(x{(a|b)*}|y{(a|b)*})*", d);
  std::cout << "\n";

  // Plain regular expressions act as booleans: {∅} = true, {} = false.
  Show("a*b*", d);
  Show("b*a*", d);
  return 0;
}
