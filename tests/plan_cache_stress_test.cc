// Stress test for the PlanCache / CachedFleet / ExtractMulti triangle
// under concurrent mutation: while extraction threads repeatedly serve
// the cache-resident fleet, mutator threads insert fresh patterns (and
// force LRU evictions). Every served snapshot must be byte-identical to a
// fleet built fresh from the same snapshot — generation checking may only
// ever affect WHEN a fleet is rebuilt, never WHAT it extracts. Run under
// TSan in CI: the interleavings are the test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

/// Renders one fleet extraction over `corpus` to the exact wire bytes
/// (fleet TSV header block + query-column rows, doc-major/plan-minor).
std::string FleetOutput(const MultiQueryExtractor& fleet,
                        const Corpus& corpus, BatchExtractor& batch) {
  std::string out;
  std::vector<const VarSet*> vars_per_plan;
  vars_per_plan.reserve(fleet.num_plans());
  for (size_t p = 0; p < fleet.num_plans(); ++p)
    vars_per_plan.push_back(&fleet.plan(p).vars());
  out += FleetTsvHeader(vars_per_plan);
  MultiBatchResult result = batch.ExtractMulti(fleet, corpus);
  for (size_t i = 0; i < corpus.size(); ++i)
    for (size_t p = 0; p < result.per_plan.size(); ++p)
      for (const Mapping& m : result.per_plan[p].per_doc[i])
        AppendFleetMappingRow(&out, OutputFormat::kTsv, p, i, m,
                              fleet.plan(p).vars(), corpus[i]);
  return out;
}

// Extractors serve CachedFleet::Get() snapshots while mutators churn the
// cache. For every snapshot served, a fresh fleet over the SAME plans
// must produce identical bytes — and the cached fleet must actually be
// reused (rebuilds ≤ mutations + 1, not one rebuild per Get()).
TEST(PlanCacheStressTest, ConcurrentMutationKeepsServedFleetsByteIdentical) {
  workload::FleetOptions o;
  o.num_patterns = 6;
  o.documents = 60;
  o.doc_bytes = 240;
  o.match_rate = 0.2;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  const Corpus corpus(std::move(generated.documents));

  PlanCacheOptions cache_options;
  cache_options.capacity = 8;  // small: mutators force real evictions
  PlanCache cache(cache_options);
  for (const std::string& p : generated.patterns)
    ASSERT_TRUE(cache.GetOrCompile(p).ok());
  CachedFleet cached(cache);

  constexpr int kExtractors = 3;
  constexpr int kMutators = 2;
  constexpr int kRoundsPerExtractor = 12;
  constexpr int kInsertsPerMutator = 24;

  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> served{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kExtractors; ++t) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      BatchOptions batch_options;
      batch_options.num_threads = 2;
      BatchExtractor batch(batch_options);
      BatchExtractor fresh_batch(batch_options);
      for (int round = 0; round < kRoundsPerExtractor; ++round) {
        // The snapshot under test: whatever fleet the cache holder serves
        // at this instant (mutators are racing it).
        std::shared_ptr<const MultiQueryExtractor> fleet = cached.Get();
        const std::string cached_out = FleetOutput(*fleet, corpus, batch);
        // The reference: a brand-new fleet over the snapshot's own plans
        // (NOT the cache's current residents — those may have moved on).
        std::vector<std::shared_ptr<const ExtractionPlan>> same_plans;
        for (size_t p = 0; p < fleet->num_plans(); ++p)
          same_plans.push_back(fleet->plan_ptr(p));
        MultiQueryExtractor fresh(std::move(same_plans));
        const std::string fresh_out =
            FleetOutput(fresh, corpus, fresh_batch);
        if (cached_out != fresh_out) mismatches.fetch_add(1);
        served.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kMutators; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kInsertsPerMutator; ++i) {
        // Unique per (mutator, round): every insert bumps the cache
        // generation and, over capacity, evicts the LRU resident.
        const std::string pattern = ".*m" + std::to_string(t) + "_" +
                                    std::to_string(i) + " v{[0-9]+}.*";
        ASSERT_TRUE(cache.GetOrCompile(pattern).ok());
        std::this_thread::yield();
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served.load(), kExtractors * kRoundsPerExtractor);
  // Generation checking must have amortized: at most one rebuild per
  // cache mutation (plus the initial build), not one per Get().
  EXPECT_LE(cached.rebuilds(),
            uint64_t(kMutators * kInsertsPerMutator + 1));
  EXPECT_GE(cached.rebuilds(), 1u);
}

// A Get() racing GetOrCompile must always return a coherent fleet: every
// plan it holds extracts, and consecutive Gets without mutation share the
// identical fleet object.
TEST(PlanCacheStressTest, GetWithoutMutationReturnsSameFleetObject) {
  PlanCache cache;
  ASSERT_TRUE(cache.GetOrCompile("x{[0-9]+}").ok());
  CachedFleet cached(cache);
  std::shared_ptr<const MultiQueryExtractor> a = cached.Get();
  std::shared_ptr<const MultiQueryExtractor> b = cached.Get();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cached.rebuilds(), 1u);
  ASSERT_TRUE(cache.GetOrCompile("y{[a-z]+}").ok());
  std::shared_ptr<const MultiQueryExtractor> c = cached.Get();
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->num_plans(), 2u);
  EXPECT_EQ(cached.rebuilds(), 2u);
}

}  // namespace
}  // namespace engine
}  // namespace spanners
