// Tests for the Eval decision procedures (Theorems 5.7 and 5.10) and the
// polynomial-delay enumerator (Theorem 5.1 / Algorithm 1), validated
// against brute-force run semantics.
#include <gtest/gtest.h>

#include "automata/enumerate.h"
#include "automata/fpt.h"
#include "automata/matcher.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/thompson.h"
#include "rgx/analysis.h"
#include "rgx/parser.h"
#include "rgx/reference_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

// Brute-force Eval: ∃µ' ∈ RunEval(a, d) with µ ⊆ µ'.
bool BruteEval(const VA& a, const Document& d, const ExtendedMapping& mu) {
  for (const Mapping& m : RunEval(a, d))
    if (mu.ExtendedBy(m)) return true;
  return false;
}

// Exhaustively compares an Eval implementation against brute force on
// every single-variable constraint and a sample of two-variable ones.
void CheckEvalAgainstBrute(
    const VA& a, const Document& d,
    const std::function<bool(const ExtendedMapping&)>& eval) {
  // Empty constraint.
  EXPECT_EQ(eval(ExtendedMapping()), BruteEval(a, d, ExtendedMapping()));
  std::vector<VarId> vars = a.Vars().ids();
  std::vector<Span> spans = d.AllSpans();
  for (VarId x : vars) {
    {
      ExtendedMapping mu;
      mu.AssignBottom(x);
      EXPECT_EQ(eval(mu), BruteEval(a, d, mu)) << "x=⊥";
    }
    for (const Span& s : spans) {
      ExtendedMapping mu;
      mu.Assign(x, s);
      EXPECT_EQ(eval(mu), BruteEval(a, d, mu))
          << Variable::Name(x) << " -> " << s.ToString();
    }
  }
  // Pairs (first two vars, coarse sweep).
  if (vars.size() >= 2) {
    for (const Span& s1 : spans) {
      for (const Span& s2 : spans) {
        ExtendedMapping mu;
        mu.Assign(vars[0], s1);
        mu.Assign(vars[1], s2);
        EXPECT_EQ(eval(mu), BruteEval(a, d, mu))
            << s1.ToString() << "/" << s2.ToString();
      }
    }
  }
}

TEST(EvalSequentialTest, AgreesWithBruteForce) {
  const char* patterns[] = {"x{a*}y{b*}", "x{a}|x{b}", "x{a(y{b})}c",
                            "a*x{b*}a*", "x{[^,]*}(, y{[^,]*}|\\e)"};
  const char* docs[] = {"", "a", "ab", "aabb", "b,cd"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    ASSERT_TRUE(IsSequentialVa(a)) << pat;
    for (const char* txt : docs) {
      SCOPED_TRACE(std::string(pat) + " on \"" + txt + "\"");
      Document d(txt);
      CheckEvalAgainstBrute(a, d, [&](const ExtendedMapping& mu) {
        return EvalSequential(a, d, mu);
      });
    }
  }
}

TEST(EvalSequentialTest, AssignedVariableAbsentFromAutomatonRejects) {
  VA a = CompileToVa(P("x{a}"));
  Document d("a");
  ExtendedMapping mu;
  mu.Assign(Variable::Intern("zz_unknown"), Span(1, 1));
  EXPECT_FALSE(EvalSequential(a, d, mu));
  // ⊥ for an absent variable is trivially satisfiable.
  ExtendedMapping mu2;
  mu2.AssignBottom(Variable::Intern("zz_unknown"));
  EXPECT_TRUE(EvalSequential(a, d, mu2));
}

TEST(EvalSequentialTest, InvalidSpanRejects) {
  VA a = CompileToVa(P("x{a}"));
  Document d("a");
  ExtendedMapping mu;
  mu.Assign(Variable::Intern("x"), Span(1, 9));  // out of bounds
  EXPECT_FALSE(EvalSequential(a, d, mu));
}

TEST(EvalVaTest, AgreesWithBruteForceOnNonSequential) {
  // Non-sequential automata: the FPT evaluator must handle them.
  const char* patterns[] = {"(x{a}|a)*", "(x{(a|b)*}|y{(a|b)*})*",
                            "x{a}x{b}", "x{x{a}}"};
  const char* docs[] = {"", "a", "aa", "ab", "abab"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    for (const char* txt : docs) {
      SCOPED_TRACE(std::string(pat) + " on \"" + txt + "\"");
      Document d(txt);
      CheckEvalAgainstBrute(
          a, d, [&](const ExtendedMapping& mu) { return EvalVa(a, d, mu); });
    }
  }
}

TEST(EvalVaTest, DanglingOpenAutomaton) {
  // Accepting run opens x, never closes: Eval(x=⊥) true, Eval(x=s) false.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q2);

  Document d("a");
  ExtendedMapping bottom;
  bottom.AssignBottom(x);
  EXPECT_TRUE(EvalVa(a, d, bottom));
  ExtendedMapping assigned;
  assigned.Assign(x, Span(1, 2));
  EXPECT_FALSE(EvalVa(a, d, assigned));
}

TEST(EnumerateTest, SequentialEnumerationMatchesRunSemantics) {
  const char* patterns[] = {"x{a*}y{b*}", "x{a}|x{b}",
                            "x{[^,]*}(, y{[^,]*}|\\e)", "a*x{b*}a*"};
  const char* docs[] = {"", "ab", "aabb", "x,y"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(EnumerateSequential(a, d), RunEval(a, d))
          << pat << " on " << txt;
    }
  }
}

TEST(EnumerateTest, GeneralEnumerationMatchesRunSemantics) {
  const char* patterns[] = {"(x{a}|a)*", "x{a}x{b}",
                            "(x{(a|b)*}|y{(a|b)*})*"};
  const char* docs[] = {"", "a", "aa", "abab"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(EnumerateVa(a, d), RunEval(a, d)) << pat << " on " << txt;
    }
  }
}

TEST(EnumerateTest, NoDuplicates) {
  VA a = CompileToVa(P("(x{(a|b)*}|y{(a|b)*})*"));
  Document d("abab");
  MappingEnumerator e = MakeVaEnumerator(a, d);
  std::vector<Mapping> seen;
  while (std::optional<Mapping> m = e.Next()) {
    for (const Mapping& prev : seen) EXPECT_FALSE(prev == *m);
    seen.push_back(*std::move(m));
  }
  EXPECT_EQ(seen.size(), RunEval(a, d).size());
}

TEST(EnumerateTest, EmptySemanticsYieldsNothing) {
  VA a = CompileToVa(P("x{x{a}}"));
  Document d("a");
  MappingEnumerator e = MakeVaEnumerator(a, d);
  EXPECT_FALSE(e.Next().has_value());
}

TEST(EnumerateTest, VarFreeExpressionYieldsEmptyMappingOnce) {
  VA a = CompileToVa(P("a*b"));
  Document yes("aab");
  MappingEnumerator e = MakeSequentialEnumerator(a, yes);
  std::optional<Mapping> first = e.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->empty());
  EXPECT_FALSE(e.Next().has_value());
}

TEST(EnumerateTest, OracleCallsBoundedBetweenOutputs) {
  // Polynomial-delay witness: between consecutive outputs, at most
  // |vars| · (|spans|+1) + 1 oracle calls.
  VA a = CompileToVa(P("x{a*}y{b*}(z{a}|\\e)"));
  Document d("aabba");
  size_t k = a.Vars().size();
  size_t bound = k * (d.AllSpans().size() + 1) + 1;
  MappingEnumerator e = MakeSequentialEnumerator(a, d);
  size_t last = 0;
  while (e.Next().has_value()) {
    EXPECT_LE(e.oracle_calls() - last, bound);
    last = e.oracle_calls();
  }
}

}  // namespace
}  // namespace spanners
