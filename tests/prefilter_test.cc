// Tests for the literal prefilter: extraction of anchored literals and
// any-of clauses from RGX formulas, bound/demotion behaviour, and the
// randomized soundness property (a rejected document provably has no
// mappings).
#include "engine/prefilter.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/spanner.h"
#include "rgx/parser.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

RgxPtr MustParse(std::string_view pattern) {
  return ParseRgx(pattern).ValueOrDie();
}

bool HasClauseWithLiteral(const Prefilter& p, const std::string& lit) {
  for (const Prefilter::Clause& c : p.clauses())
    for (const std::string& s : c.literals)
      if (s == lit) return true;
  return false;
}

TEST(PrefilterTest, ExtractsAnchoredLiteralFromConcat) {
  Prefilter p = Prefilter::FromRgx(MustParse(".*Seller: (x{[^,\\n]*}),.*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "Seller: "));
  EXPECT_TRUE(p.Matches("xx Seller: Ann, yy"));
  EXPECT_FALSE(p.Matches("Buyer: Bob, P7"));
  EXPECT_FALSE(p.Matches(""));
}

TEST(PrefilterTest, DisjunctionBecomesAnyOfClause) {
  Prefilter p = Prefilter::FromRgx(MustParse(".*(GET|POST) .*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(p.Matches("x GET /a"));
  EXPECT_TRUE(p.Matches("x POST /b"));
  EXPECT_FALSE(p.Matches("x PUT /c"));
}

TEST(PrefilterTest, UnboundedFormulasYieldMatchAll) {
  EXPECT_FALSE(Prefilter::FromRgx(MustParse(".*")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(MustParse("a*")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(MustParse("(x{.*})")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(nullptr).CanPrune());
  // Optional parts contribute nothing; the mandatory literal survives.
  Prefilter p = Prefilter::FromRgx(MustParse("(ab|\\e)cd.*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "cd"));
  EXPECT_FALSE(HasClauseWithLiteral(p, "ab"));
}

TEST(PrefilterTest, CrossProductBuildsWholeWordAlternatives) {
  Prefilter p = Prefilter::FromRgx(MustParse("ab(c|d)e"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "abce"));
  EXPECT_TRUE(HasClauseWithLiteral(p, "abde"));
  EXPECT_TRUE(p.Matches("zzabcezz"));
  EXPECT_FALSE(p.Matches("zzabxezz"));
}

TEST(PrefilterTest, VariableWrapperIsTransparent) {
  // x{γ} matches the same words as γ, so literals pass through.
  Prefilter p = Prefilter::FromRgx(MustParse(".*(x{abc}).*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "abc"));
}

TEST(PrefilterTest, MatchAllAcceptsEverythingIncludingEmpty) {
  Prefilter p;
  EXPECT_FALSE(p.CanPrune());
  EXPECT_TRUE(p.Matches(""));
  EXPECT_TRUE(p.Matches("anything"));
}

TEST(PrefilterTest, ToStringShapes) {
  EXPECT_EQ(Prefilter::FromRgx(MustParse(".*")).ToString(), "match-all");
  std::string s =
      Prefilter::FromRgx(MustParse(".*Seller: (x{[^,\\n]*}),.*")).ToString();
  EXPECT_NE(s.find("lit(\"Seller: \")"), std::string::npos) << s;
  std::string d = Prefilter::FromRgx(MustParse(".*(GET|POST) .*")).ToString();
  EXPECT_NE(d.find("|"), std::string::npos) << d;
}

TEST(PrefilterTest, RandomizedSoundnessAgainstRunSemantics) {
  std::mt19937 rng(29);
  workload::RandomRgxOptions o;
  o.num_vars = 2;
  o.letters = "ab";
  size_t rejected = 0;
  for (int round = 0; round < 150; ++round) {
    RgxPtr rgx = workload::RandomRgx(o, &rng);
    Prefilter p = Prefilter::FromRgx(rgx);
    Spanner s = Spanner::FromRgx(rgx);
    std::uniform_int_distribution<size_t> len_pick(0, 10);
    for (int d = 0; d < 20; ++d) {
      Document doc = workload::RandomDocument("ab", len_pick(rng), &rng);
      if (!p.Matches(doc.text())) {
        ++rejected;
        EXPECT_TRUE(s.ExtractAll(doc).empty())
            << "round " << round << " doc '" << doc.text() << "'";
      }
    }
  }
  // The property is vacuous if the filter never fires; make sure it did.
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace engine
}  // namespace spanners
