// Tests for the literal prefilter: extraction of anchored literals and
// any-of clauses from RGX formulas, bound/demotion behaviour, and the
// randomized soundness property (a rejected document provably has no
// mappings).
#include "engine/prefilter.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/spanner.h"
#include "rgx/parser.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

RgxPtr MustParse(std::string_view pattern) {
  return ParseRgx(pattern).ValueOrDie();
}

bool HasClauseWithLiteral(const Prefilter& p, const std::string& lit) {
  for (const Prefilter::Clause& c : p.clauses())
    for (const std::string& s : c.literals)
      if (s == lit) return true;
  return false;
}

TEST(PrefilterTest, ExtractsAnchoredLiteralFromConcat) {
  Prefilter p = Prefilter::FromRgx(MustParse(".*Seller: (x{[^,\\n]*}),.*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "Seller: "));
  EXPECT_TRUE(p.Matches("xx Seller: Ann, yy"));
  EXPECT_FALSE(p.Matches("Buyer: Bob, P7"));
  EXPECT_FALSE(p.Matches(""));
}

TEST(PrefilterTest, DisjunctionBecomesAnyOfClause) {
  Prefilter p = Prefilter::FromRgx(MustParse(".*(GET|POST) .*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(p.Matches("x GET /a"));
  EXPECT_TRUE(p.Matches("x POST /b"));
  EXPECT_FALSE(p.Matches("x PUT /c"));
}

TEST(PrefilterTest, UnboundedFormulasYieldMatchAll) {
  EXPECT_FALSE(Prefilter::FromRgx(MustParse(".*")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(MustParse("a*")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(MustParse("(x{.*})")).CanPrune());
  EXPECT_FALSE(Prefilter::FromRgx(nullptr).CanPrune());
  // Optional parts contribute nothing; the mandatory literal survives.
  Prefilter p = Prefilter::FromRgx(MustParse("(abc|\\e)cde.*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "cde"));
  EXPECT_FALSE(HasClauseWithLiteral(p, "abc"));
}

// A clause whose literals are all under kMinLiteralLen is dropped whole —
// demoted to "no requirement", NEVER emitted as an empty (always-false)
// clause that would wrongly reject matching documents.
TEST(PrefilterTest, ShortLiteralClausesAreDroppedWholeNeverUnsatisfiable) {
  // All literals short (1–2 bytes): the whole prefilter demotes to
  // match-all, and in particular documents that DO match the formula are
  // not rejected.
  for (const char* pattern : {".*a.*", ".*ab.*", ".*(a|bc)e.*"}) {
    Prefilter p = Prefilter::FromRgx(MustParse(pattern));
    EXPECT_FALSE(p.CanPrune()) << pattern << " -> " << p.ToString();
    EXPECT_TRUE(p.Matches("zzz abe zzz")) << pattern;
    EXPECT_TRUE(p.Matches("")) << pattern;
  }
  // Mixed lengths in ONE clause: the short alternative cannot be dropped
  // individually (that would strengthen the filter unsoundly), so the
  // clause min length governs and the clause goes as a whole.
  Prefilter mixed = Prefilter::FromRgx(MustParse(".*(a|WXYZ)Q.*"));
  EXPECT_FALSE(mixed.CanPrune()) << mixed.ToString();
  // Short and long *clauses* side by side: only the short one is dropped.
  Prefilter both = Prefilter::FromRgx(MustParse("ab.*WXYZ.*"));
  ASSERT_TRUE(both.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(both, "WXYZ"));
  EXPECT_FALSE(HasClauseWithLiteral(both, "ab"));
  EXPECT_TRUE(both.Matches("ab then WXYZ"));
  EXPECT_FALSE(both.Matches("ab alone"));
}

// From kAcLiteralThreshold literals upward the clause engine switches to
// one Aho–Corasick pass; semantics must not change.
TEST(PrefilterTest, ManyLiteralClausesUseOneAhoCorasickPass) {
  Prefilter p = Prefilter::FromRgx(
      MustParse(".*(alpha|beta|gamma|delta|epsilon) .*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(p.uses_aho_corasick());
  ASSERT_NE(p.aho_corasick(), nullptr);
  EXPECT_EQ(p.aho_corasick()->num_patterns(), 5u);
  for (const char* hit : {"x alpha y", "x epsilon y", "gamma delta"})
    EXPECT_TRUE(p.Matches(hit)) << hit;
  for (const char* miss : {"", "alphabet-free", "zeta eta"})
    EXPECT_FALSE(p.Matches(miss)) << miss;

  // Two clauses through one shared pass: both must be satisfied.
  Prefilter conj = Prefilter::FromRgx(
      MustParse("(GET|POST|PUT|HEAD) .*HTTP.*"));
  ASSERT_TRUE(conj.CanPrune());
  ASSERT_EQ(conj.clauses().size(), 2u);
  EXPECT_TRUE(conj.uses_aho_corasick());
  EXPECT_TRUE(conj.Matches("GET /x HTTP/1.1"));
  EXPECT_FALSE(conj.Matches("GET /x only"));
  EXPECT_FALSE(conj.Matches("HTTP without a method"));

  // Below the threshold the memmem path stays in place.
  Prefilter small = Prefilter::FromRgx(MustParse(".*Seller: .*"));
  ASSERT_TRUE(small.CanPrune());
  EXPECT_FALSE(small.uses_aho_corasick());
}

// The two clause engines must agree exactly; randomized cross-check on
// fuzzed documents against a force-built filter of the same clauses.
TEST(PrefilterTest, AcAndMemmemClauseEnginesAgree) {
  std::mt19937 rng(31);
  // 6 literals ≥ threshold → AC engine; the naive evaluation below is the
  // memmem semantics spelled out.
  Prefilter p = Prefilter::FromRgx(
      MustParse(".*(aba|bab|aab|bba|abb|baa)z.*"));
  ASSERT_TRUE(p.uses_aho_corasick());
  ASSERT_EQ(p.clauses().size(), 1u);
  std::uniform_int_distribution<size_t> len_pick(0, 16);
  std::uniform_int_distribution<int> letter(0, 2);
  for (int round = 0; round < 500; ++round) {
    std::string text;
    const size_t len = len_pick(rng);
    for (size_t i = 0; i < len; ++i)
      text += static_cast<char>('a' + letter(rng));  // a, b, c
    bool naive = false;
    for (const std::string& lit : p.clauses()[0].literals)
      naive = naive || text.find(lit) != std::string::npos;
    EXPECT_EQ(p.Matches(text), naive) << "text '" << text << "'";
  }
}

TEST(PrefilterTest, CrossProductBuildsWholeWordAlternatives) {
  Prefilter p = Prefilter::FromRgx(MustParse("ab(c|d)e"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "abce"));
  EXPECT_TRUE(HasClauseWithLiteral(p, "abde"));
  EXPECT_TRUE(p.Matches("zzabcezz"));
  EXPECT_FALSE(p.Matches("zzabxezz"));
}

TEST(PrefilterTest, VariableWrapperIsTransparent) {
  // x{γ} matches the same words as γ, so literals pass through.
  Prefilter p = Prefilter::FromRgx(MustParse(".*(x{abc}).*"));
  ASSERT_TRUE(p.CanPrune());
  EXPECT_TRUE(HasClauseWithLiteral(p, "abc"));
}

TEST(PrefilterTest, MatchAllAcceptsEverythingIncludingEmpty) {
  Prefilter p;
  EXPECT_FALSE(p.CanPrune());
  EXPECT_TRUE(p.Matches(""));
  EXPECT_TRUE(p.Matches("anything"));
}

TEST(PrefilterTest, ToStringShapes) {
  EXPECT_EQ(Prefilter::FromRgx(MustParse(".*")).ToString(), "match-all");
  std::string s =
      Prefilter::FromRgx(MustParse(".*Seller: (x{[^,\\n]*}),.*")).ToString();
  EXPECT_NE(s.find("lit(\"Seller: \")"), std::string::npos) << s;
  std::string d = Prefilter::FromRgx(MustParse(".*(GET|POST) .*")).ToString();
  EXPECT_NE(d.find("|"), std::string::npos) << d;
}

// IndexableClauses keeps exactly the clauses a trigram index can answer:
// every literal of the clause at least ngram_len bytes. One short literal
// poisons its whole clause (the index cannot enumerate its documents),
// but never the other clauses.
TEST(PrefilterTest, IndexableClausesFilterByMinLiteralLength) {
  // One clause, literal "Seller: " (8 bytes) — indexable at n=3.
  Prefilter p = Prefilter::FromRgx(MustParse(".*Seller: (x{[^,\\n]*}),.*"));
  std::vector<Prefilter::Clause> kept = p.IndexableClauses(3);
  ASSERT_FALSE(kept.empty());
  for (const Prefilter::Clause& c : kept)
    for (const std::string& lit : c.literals) EXPECT_GE(lit.size(), 3u);

  // Asking for longer n-grams than any literal drops everything.
  EXPECT_TRUE(p.IndexableClauses(64).empty());

  // Disjunction with a 3-byte minimum: {abc, wxyz} survives at n=3 but
  // not at n=4 — wxyz alone being long enough is not enough, the clause
  // is an OR and abc's documents are unknown to a 4-gram index.
  Prefilter d = Prefilter::FromRgx(MustParse(".*(abc|wxyz).*"));
  bool has_abc_clause = false;
  for (const Prefilter::Clause& c : d.IndexableClauses(3))
    for (const std::string& lit : c.literals)
      if (lit == "abc") has_abc_clause = true;
  EXPECT_TRUE(has_abc_clause);
  for (const Prefilter::Clause& c : d.IndexableClauses(4))
    for (const std::string& lit : c.literals) EXPECT_NE(lit, "abc");

  // Match-all prefilter: nothing to index.
  EXPECT_TRUE(Prefilter().IndexableClauses(3).empty());
  EXPECT_TRUE(Prefilter::FromRgx(MustParse(".*")).IndexableClauses(3).empty());
}

TEST(PrefilterTest, RandomizedSoundnessAgainstRunSemantics) {
  std::mt19937 rng(29);
  workload::RandomRgxOptions o;
  o.num_vars = 2;
  o.letters = "ab";
  size_t rejected = 0;
  for (int round = 0; round < 150; ++round) {
    RgxPtr rgx = workload::RandomRgx(o, &rng);
    Prefilter p = Prefilter::FromRgx(rgx);
    Spanner s = Spanner::FromRgx(rgx);
    std::uniform_int_distribution<size_t> len_pick(0, 10);
    for (int d = 0; d < 20; ++d) {
      Document doc = workload::RandomDocument("ab", len_pick(rng), &rng);
      if (!p.Matches(doc.text())) {
        ++rejected;
        EXPECT_TRUE(s.ExtractAll(doc).empty())
            << "round " << round << " doc '" << doc.text() << "'";
      }
    }
  }
  // The property is vacuous if the filter never fires; make sure it did.
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace engine
}  // namespace spanners
