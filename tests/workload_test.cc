// Sanity tests for the workload generators and reductions.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "automata/enumerate.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/thompson.h"
#include "core/spanner.h"
#include "rgx/analysis.h"
#include "rgx/reference_eval.h"
#include "workload/generators.h"
#include "workload/reductions.h"

namespace spanners {
namespace {

using workload::LandRegistryOptions;
using workload::LogOptions;

TEST(GeneratorTest, RandomDocumentRespectsAlphabet) {
  std::mt19937 rng(1);
  Document d = workload::RandomDocument("xy", 50, &rng);
  EXPECT_EQ(d.length(), 50u);
  for (char c : d.text()) EXPECT_TRUE(c == 'x' || c == 'y');
}

TEST(GeneratorTest, RandomSequentialRgxIsSequential) {
  std::mt19937 rng(2);
  workload::RandomRgxOptions opt;
  opt.sequential_only = true;
  opt.num_vars = 3;
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(IsSequential(workload::RandomRgx(opt, &rng)));
}

TEST(GeneratorTest, RandomFunctionalRgxIsFunctional) {
  std::mt19937 rng(3);
  workload::RandomRgxOptions opt;
  opt.functional_only = true;
  opt.num_vars = 2;
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(IsFunctional(workload::RandomRgx(opt, &rng)));
}

TEST(GeneratorTest, RandomVaIsWellFormed) {
  std::mt19937 rng(4);
  VA a = workload::RandomVa(8, 2, "ab", &rng);
  EXPECT_GE(a.NumStates(), 1u);
}

TEST(LandRegistryTest, DocumentShape) {
  Document d = workload::LandRegistryDocument({.rows = 20, .seed = 5});
  // Every row terminated by a newline; sellers and buyers present.
  EXPECT_EQ(std::count(d.text().begin(), d.text().end(), '\n'), 20);
  EXPECT_NE(d.text().find("Seller: "), std::string::npos);
}

TEST(LandRegistryTest, SellerRgxExtractsNames) {
  Document d(
      "Seller: John, ID75\n"
      "Buyer: Marcelo, ID832, P78\n"
      "Seller: Mark, ID7, $35000\n");
  VA a = CompileToVa(workload::SellerNameRgx());
  ASSERT_TRUE(IsSequentialVa(a));
  MappingSet out = EnumerateSequential(a, d);
  VarId x = Variable::Intern("x");
  std::set<std::string> names;
  for (const Mapping& m : out)
    names.insert(std::string(d.content(*m.Get(x))));
  EXPECT_TRUE(names.count("John") == 1);
  EXPECT_TRUE(names.count("Mark") == 1);
  EXPECT_TRUE(names.count("Marcelo") == 0);  // buyers not matched
}

TEST(LandRegistryTest, TaxRgxProducesPartialMappings) {
  // The §3.1 motivating behaviour: y defined only when the row has a tax.
  Document d(
      "Seller: John, ID75\n"
      "Seller: Mark, ID7, $35000\n");
  VA a = CompileToVa(workload::SellerNameTaxRgx());
  ASSERT_TRUE(IsSequentialVa(a));
  MappingSet out = EnumerateSequential(a, d);
  VarId x = Variable::Intern("x");
  VarId y = Variable::Intern("y");
  bool saw_partial = false, saw_total = false;
  for (const Mapping& m : out) {
    ASSERT_TRUE(m.Defines(x));
    std::string name(d.content(*m.Get(x)));
    if (name == "John") {
      EXPECT_FALSE(m.Defines(y));
      saw_partial = true;
    }
    if (name == "Mark" && m.Defines(y)) {
      EXPECT_EQ(d.content(*m.Get(y)), "35000");
      saw_total = true;
    }
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_total);
}

TEST(ServerLogTest, LogRgxExtractsOptionalCause) {
  Document d(
      "host1 GET /a 200\n"
      "host2 POST /x 500 err=timeout\n");
  VA a = CompileToVa(workload::LogLineRgx());
  ASSERT_TRUE(IsSequentialVa(a));
  MappingSet out = EnumerateSequential(a, d);
  VarId c = Variable::Intern("c");
  bool saw_cause = false, saw_no_cause = false;
  for (const Mapping& m : out) {
    if (m.Defines(c)) {
      EXPECT_EQ(d.content(*m.Get(c)), "timeout");
      saw_cause = true;
    } else {
      saw_no_cause = true;
    }
  }
  EXPECT_TRUE(saw_cause);
  EXPECT_TRUE(saw_no_cause);
}

TEST(NeedleTest, CorpusIsReproducibleAndRespectsMatchRate) {
  workload::NeedleOptions o;
  o.documents = 400;
  o.doc_bytes = 200;
  o.match_rate = 0.05;
  std::vector<Document> a = workload::NeedleCorpus(o);
  std::vector<Document> b = workload::NeedleCorpus(o);
  ASSERT_EQ(a.size(), o.documents);
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].text(), b[i].text()) << i;

  // The filler alphabet cannot spell the needle marker, so needle count
  // == matched count; with 400 docs at 5% expect a loose [1, 60] band.
  size_t with_needle = 0;
  for (const Document& d : a)
    if (d.text().find("ALERT id=") != std::string::npos) ++with_needle;
  EXPECT_GE(with_needle, 1u);
  EXPECT_LE(with_needle, 60u);

  Spanner s = Spanner::FromRgx(workload::NeedleRgx());
  size_t matched = 0;
  for (const Document& d : a)
    if (!s.ExtractAll(d).empty()) ++matched;
  EXPECT_EQ(matched, with_needle);
}

TEST(FleetTest, PatternsCompileAndTagsAreDistinct) {
  workload::FleetOptions o;
  o.num_patterns = 10;
  o.documents = 0;
  workload::PatternFleet fleet = workload::MakePatternFleet(o);
  ASSERT_EQ(fleet.patterns.size(), 10u);
  std::set<std::string> distinct(fleet.patterns.begin(),
                                 fleet.patterns.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (const std::string& p : fleet.patterns) {
    Spanner s = Spanner::FromPattern(p).ValueOrDie();
    EXPECT_TRUE(s.is_sequential()) << p;
    EXPECT_EQ(s.vars().size(), 2u) << p;
  }
}

TEST(FleetTest, CorpusIsReproducibleAndPerPatternSelective) {
  workload::FleetOptions o;
  o.num_patterns = 8;
  o.documents = 300;
  o.doc_bytes = 200;
  o.match_rate = 0.05;
  workload::PatternFleet a = workload::MakePatternFleet(o);
  workload::PatternFleet b = workload::MakePatternFleet(o);
  ASSERT_EQ(a.documents.size(), o.documents);
  for (size_t i = 0; i < a.documents.size(); ++i)
    EXPECT_EQ(a.documents[i].text(), b.documents[i].text()) << i;

  // Per pattern: the filler cannot spell a tag, so matched docs == docs
  // carrying that tag's needle line; each is individually low-selectivity.
  for (size_t p = 0; p < a.patterns.size(); ++p) {
    size_t with_needle = 0;
    std::string tag = "EVT0" + std::to_string(p) + " id=";
    for (const Document& d : a.documents)
      if (d.text().find(tag) != std::string::npos) ++with_needle;
    Spanner s = Spanner::FromPattern(a.patterns[p]).ValueOrDie();
    size_t matched = 0;
    for (const Document& d : a.documents)
      if (!s.ExtractAll(d).empty()) ++matched;
    EXPECT_EQ(matched, with_needle) << p;
    EXPECT_LE(matched, 45u) << p;  // loose band around 5% of 300
  }
}

TEST(ReductionTest, HamiltonianPathViaRelationalVa) {
  // Proposition 5.4: ⟦A⟧_ε ≠ ∅ iff the digraph has a Hamiltonian path;
  // all produced mappings are total (the automaton is relational).
  std::mt19937 rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    workload::Digraph g = workload::RandomDigraph(4, 0.4, &rng);
    VA a = workload::HamiltonianToRelationalVa(g);
    MappingSet out = RunEval(a, Document(""));
    EXPECT_EQ(!out.empty(), workload::HasHamiltonianPath(g))
        << "trial " << trial;
    for (const Mapping& m : out) EXPECT_EQ(m.size(), 4u);  // relational
  }
}

TEST(ReductionTest, DnfReductionAutomataAreDetSeq) {
  std::mt19937 rng(8);
  workload::Dnf dnf = workload::RandomDnf(3, 2, &rng);
  auto [a1, a2] = workload::DnfValidityToContainment(dnf);
  EXPECT_TRUE(a1.IsDeterministic());
  EXPECT_TRUE(a2.IsDeterministic());
  EXPECT_TRUE(IsSequentialVa(a1));
  EXPECT_TRUE(IsSequentialVa(a2));
}

TEST(ReductionTest, OneInThreeSatEdgeCases) {
  // A clause repeated twice is consistent; conflicting choices collide.
  workload::OneInThreeSat inst;
  inst.num_props = 3;
  inst.clauses.push_back({0, 1, 2});
  inst.clauses.push_back({0, 1, 2});
  EXPECT_TRUE(workload::SolveOneInThreeSat(inst));
  RgxPtr g = workload::OneInThreeSatToSpanRgx(inst);
  EXPECT_FALSE(RunEval(CompileToVa(g), Document("")).empty());
}

}  // namespace
}  // namespace spanners
