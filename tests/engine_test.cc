// Tests for the batch-extraction engine: corpora and sharding, extraction
// plans (evaluator agreement), the work-stealing pool, batch determinism
// across thread counts, and wire formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <utility>

#include "engine/engine.h"
#include "rgx/parser.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

// ---- Corpus ------------------------------------------------------------

TEST(CorpusTest, FromDelimitedSplitsAtNewlines) {
  Corpus c = Corpus::FromDelimited("one\ntwo\nthree");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].text(), "one");
  EXPECT_EQ(c[2].text(), "three");
}

TEST(CorpusTest, TrailingDelimiterAddsNoEmptyDocument) {
  Corpus c = Corpus::FromDelimited("a\nb\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1].text(), "b");
}

TEST(CorpusTest, InteriorEmptyDocumentsAreKept) {
  Corpus c = Corpus::FromDelimited("a\n\nb");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[1].text(), "");
}

TEST(CorpusTest, EmptyInputIsEmptyCorpus) {
  EXPECT_TRUE(Corpus::FromDelimited("").empty());
}

TEST(CorpusTest, NulDelimiter) {
  std::string text("a\nb\0c", 5);
  Corpus c = Corpus::FromDelimited(text, '\0');
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].text(), "a\nb");
  EXPECT_EQ(c[1].text(), "c");
}

TEST(CorpusTest, FromStreamAndTotalBytes) {
  std::istringstream in("xx\nyyy\n");
  Corpus c = Corpus::FromStream(in);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.TotalBytes(), 5u);
}

TEST(CorpusTest, AppendMovesDocumentsInOrder) {
  Corpus a = Corpus::FromDelimited("1\n2");
  Corpus b = Corpus::FromDelimited("3");
  a.Append(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2].text(), "3");
  Corpus empty;
  empty.Append(std::move(a));
  EXPECT_EQ(empty.size(), 3u);
}

TEST(CorpusTest, FromFileMissingFails) {
  Result<Corpus> r = Corpus::FromFile("/nonexistent/corpus.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---- sharding ----------------------------------------------------------

TEST(ShardingTest, CoversEveryDocumentExactlyOnceInOrder) {
  workload::CorpusOptions o;
  o.documents = 137;
  Corpus corpus(workload::LandRegistryCorpus(o));
  ShardingOptions so;
  so.max_shards = 8;
  so.min_docs_per_shard = 4;
  std::vector<Shard> shards = ShardCorpus(corpus, so);
  ASSERT_FALSE(shards.empty());
  EXPECT_LE(shards.size(), 8u);
  size_t next = 0;
  for (const Shard& s : shards) {
    EXPECT_EQ(s.begin, next);
    EXPECT_GT(s.end, s.begin);
    next = s.end;
  }
  EXPECT_EQ(next, corpus.size());
}

TEST(ShardingTest, RespectsMinDocsPerShard) {
  Corpus corpus(std::vector<Document>(10, Document("abc")));
  ShardingOptions so;
  so.max_shards = 100;
  so.min_docs_per_shard = 4;
  std::vector<Shard> shards = ShardCorpus(corpus, so);
  for (size_t i = 0; i + 1 < shards.size(); ++i)
    EXPECT_GE(shards[i].size(), 4u);
}

TEST(ShardingTest, EmptyCorpusHasNoShards) {
  EXPECT_TRUE(ShardCorpus(Corpus(), ShardingOptions()).empty());
}

// ---- thread pool -------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i)
    pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not deadlock
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i)
    pool.Submit([&] {
      pool.Submit([&count] { count.fetch_add(1); });
    });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

// ---- ExtractionPlan ----------------------------------------------------

TEST(PlanTest, CompileErrorPropagates) {
  Result<ExtractionPlan> r = ExtractionPlan::Compile("x{a");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanTest, AnalysisFlags) {
  ExtractionPlan p = ExtractionPlan::Compile("x{a*}y{b*}").ValueOrDie();
  EXPECT_TRUE(p.info().sequential_va);
  EXPECT_TRUE(p.info().functional_rgx);
  EXPECT_FALSE(p.info().span_rgx);
  EXPECT_EQ(p.info().num_vars, 2u);
  EXPECT_EQ(p.pattern(), "x{a*}y{b*}");
  EXPECT_FALSE(p.info().ToString().empty());

  ExtractionPlan nonseq = ExtractionPlan::Compile("(x{a}|a)*").ValueOrDie();
  EXPECT_FALSE(nonseq.info().sequential_va);
}

TEST(PlanTest, EveryEvaluatorAgreesWithRunSemantics) {
  // Ground truth: brute-force run enumeration (the seed's ExtractAll).
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  workload::LandRegistryOptions o;
  o.rows = 12;
  Document doc = workload::LandRegistryDocument(o);
  MappingSet truth = s.ExtractAll(doc);
  ASSERT_FALSE(truth.empty());
  EXPECT_EQ(s.ExtractAllWith(Spanner::Evaluator::kRunEnumeration, doc), truth);
  EXPECT_EQ(s.ExtractAllWith(Spanner::Evaluator::kSequentialDelay, doc),
            truth);
  EXPECT_EQ(s.ExtractAllWith(Spanner::Evaluator::kFptDelay, doc), truth);
}

TEST(PlanTest, RecommendedEvaluatorPrefersRunEnumerationForFewVars) {
  Spanner s = Spanner::FromPattern("x{a*}").ValueOrDie();
  EXPECT_EQ(s.RecommendedEvaluator(), Spanner::Evaluator::kRunEnumeration);
}

TEST(PlanTest, StatsCountDocumentsAndMappings) {
  ExtractionPlan p = ExtractionPlan::Compile("x{a*}").ValueOrDie();
  p.Extract(Document("aa"));
  p.Extract(Document(""));
  PlanStats stats = p.stats();
  EXPECT_EQ(stats.documents, 2u);
  // Exact mapping count is pinned by the extraction itself, not guessed:
  uint64_t expected = p.Extract(Document("aa")).size() + 1;  // "" has {ε}
  EXPECT_EQ(stats.mappings, expected);
}

TEST(PlanTest, ExtractSortedIsSortedAndReusesScratch) {
  ExtractionPlan p =
      ExtractionPlan::Compile(".*(x{[a-z]+}).*").ValueOrDie();
  PlanScratch scratch;
  const std::vector<Mapping>& out =
      p.ExtractSorted(Document("ab cd"), &scratch);
  ASSERT_GT(out.size(), 1u);
  for (size_t i = 0; i + 1 < out.size(); ++i) EXPECT_TRUE(out[i] < out[i + 1]);
  const std::vector<Mapping>& again = p.ExtractSorted(Document("z"), &scratch);
  EXPECT_EQ(&again, &out);  // same buffer, reused
}

// ---- PlanCache ---------------------------------------------------------

TEST(PlanCacheTest, HitMissCounters) {
  PlanCache cache;
  auto a = cache.GetOrCompile("x{a*}").ValueOrDie();
  auto b = cache.GetOrCompile("x{a*}").ValueOrDie();
  EXPECT_EQ(a.get(), b.get());  // same shared plan
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(PlanCacheTest, CompileErrorsAreNotCached) {
  PlanCache cache;
  EXPECT_FALSE(cache.GetOrCompile("x{a").ok());
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCacheOptions o;
  o.capacity = 2;
  PlanCache cache(o);
  cache.GetOrCompile("a").ValueOrDie();
  cache.GetOrCompile("b").ValueOrDie();
  cache.GetOrCompile("a").ValueOrDie();  // refresh a; b is now LRU
  cache.GetOrCompile("c").ValueOrDie();  // evicts b
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_NE(cache.Peek("a"), nullptr);
  EXPECT_EQ(cache.Peek("b"), nullptr);
  EXPECT_NE(cache.Peek("c"), nullptr);
}

TEST(PlanCacheTest, EvictedPlanStaysUsable) {
  PlanCacheOptions o;
  o.capacity = 1;
  PlanCache cache(o);
  auto plan = cache.GetOrCompile("x{a*}").ValueOrDie();
  cache.GetOrCompile("b*").ValueOrDie();  // evicts x{a*}
  EXPECT_EQ(cache.Peek("x{a*}"), nullptr);
  EXPECT_EQ(plan->Extract(Document("a")).size(), 1u);  // still works
}

TEST(PlanCacheTest, ClearDropsEverything) {
  PlanCache cache;
  cache.GetOrCompile("a").ValueOrDie();
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

// ---- BatchExtractor ----------------------------------------------------

// Corpus extraction must equal per-document ExtractAll for every thread
// count — the engine may only reorganize work, never change results.
TEST(BatchExtractorTest, MatchesPerDocumentExtractionForEveryThreadCount) {
  workload::CorpusOptions o;
  o.documents = 64;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));

  std::vector<std::vector<Mapping>> expected;
  for (const Document& d : corpus)
    expected.push_back(plan.spanner().ExtractAll(d).Sorted());

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);
    BatchResult result = extractor.Extract(plan, corpus);
    ASSERT_EQ(result.per_doc.size(), corpus.size());
    EXPECT_EQ(result.per_doc, expected) << "threads=" << threads;
  }
}

// With per-worker arenas enabled (the default), the fully formatted output
// must stay byte-identical between 1 and 8 threads: worker-local scratch
// may never leak into results.
TEST(BatchExtractorTest, ArenaBackedOutputByteIdenticalAcrossThreadCounts) {
  workload::CorpusOptions o;
  o.documents = 96;
  o.rows_per_document = 2;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));

  auto formatted = [&](size_t threads) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);
    BatchResult result = extractor.Extract(plan, corpus);
    std::string out;
    for (size_t i = 0; i < result.per_doc.size(); ++i)
      for (const Mapping& m : result.per_doc[i])
        out += ToTsvRow(i, m, plan.spanner().vars(), corpus[i]);
    return out;
  };

  std::string one = formatted(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, formatted(8));
}

// ExtractSortedInto (the arena path used by the engine) must agree with
// the allocation-per-call Extract().Sorted() path, with one scratch
// reused — Reset(), not freed — across documents.
TEST(ExtractionPlanTest, ExtractSortedIntoMatchesExtractAcrossDocuments) {
  workload::CorpusOptions o;
  o.documents = 32;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));

  PlanScratch scratch;
  std::vector<Mapping> got;
  for (const Document& doc : corpus) {
    plan.ExtractSortedInto(doc, &scratch, &got);
    EXPECT_EQ(got, plan.Extract(doc).Sorted());
  }
  EXPECT_GT(scratch.arena.bytes_reserved(), 0u);
}

TEST(BatchExtractorTest, EmptyCorpus) {
  ExtractionPlan plan = ExtractionPlan::Compile("x{a*}").ValueOrDie();
  BatchExtractor extractor;
  BatchResult result = extractor.Extract(plan, Corpus());
  EXPECT_TRUE(result.per_doc.empty());
  EXPECT_EQ(result.total_mappings, 0u);
  EXPECT_EQ(result.shards, 0u);
  EXPECT_EQ(result.MatchedDocuments(), 0u);
}

// The empty pattern is ε: it matches exactly the empty document, with the
// empty mapping as its only output.
TEST(BatchExtractorTest, EmptyPattern) {
  ExtractionPlan plan = ExtractionPlan::Compile("").ValueOrDie();
  EXPECT_EQ(plan.info().num_vars, 0u);
  Corpus corpus = Corpus::FromDelimited("\nabc\n\n");  // "", "abc", ""
  BatchExtractor extractor;
  BatchResult result = extractor.Extract(plan, corpus);
  ASSERT_EQ(result.per_doc.size(), corpus.size());
  EXPECT_EQ(result.per_doc[0].size(), 1u);  // ∅ on ""
  EXPECT_TRUE(result.per_doc[1].empty());   // ε doesn't match "abc"
}

TEST(BatchExtractorTest, ReusableAcrossBatches) {
  ExtractionPlan plan = ExtractionPlan::Compile("x{a*}").ValueOrDie();
  BatchOptions bo;
  bo.num_threads = 2;
  BatchExtractor extractor(bo);
  Corpus c1 = Corpus::FromDelimited("a\naa");
  Corpus c2 = Corpus::FromDelimited("aaa");
  BatchResult r1 = extractor.Extract(plan, c1);
  BatchResult r2 = extractor.Extract(plan, c2);
  EXPECT_EQ(r1.per_doc.size(), 2u);
  EXPECT_EQ(r2.per_doc.size(), 1u);
  EXPECT_EQ(r2.per_doc[0].size(), 1u);  // x spans the whole document
}

// ---- formatting --------------------------------------------------------

TEST(FormatTest, TsvRowPinsWireFormat) {
  Document doc("Seller: John,");
  VarSet vars;
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  vars.Insert(x);
  vars.Insert(y);
  Mapping m = Mapping::Single(x, Span(9, 13));  // "John"
  EXPECT_EQ(TsvHeader(vars), "doc\tx.span\tx.text\ty.span\ty.text");
  EXPECT_EQ(ToTsvRow(7, m, vars, doc), "7\t9..13\tJohn\t⊥\t");
}

TEST(FormatTest, TsvEscapesControlCharacters) {
  Document doc("a\tb");
  VarSet vars;
  VarId x = Variable::Intern("x");
  vars.Insert(x);
  Mapping m = Mapping::Single(x, doc.Whole());
  EXPECT_EQ(ToTsvRow(0, m, vars, doc), "0\t1..4\ta\\tb");
}

TEST(FormatTest, JsonRowPinsWireFormat) {
  Document doc("say \"hi\"");
  VarSet vars;
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  vars.Insert(x);
  vars.Insert(y);
  Mapping m = Mapping::Single(x, Span(5, 9));  // "\"hi\""
  EXPECT_EQ(ToJsonRow(3, m, vars, doc),
            "{\"doc\":3,\"x\":{\"span\":[5,9],\"text\":\"\\\"hi\\\"\"},"
            "\"y\":null}");
}

// ---- prefilter + lazy-DFA gate ------------------------------------------

// The gate may only skip provably-empty documents: gated and ungated
// plans must produce byte-identical batch results for every thread count,
// on random formulas over random corpora.
TEST(GateTest, GatedAndUngatedResultsIdenticalAcrossThreadCounts) {
  std::mt19937 rng(41);
  workload::RandomRgxOptions o;
  o.num_vars = 2;
  o.letters = "ab";
  std::uniform_int_distribution<size_t> len_pick(0, 10);
  for (int round = 0; round < 12; ++round) {
    RgxPtr rgx = workload::RandomRgx(o, &rng);
    std::vector<Document> docs;
    for (int i = 0; i < 48; ++i)
      docs.push_back(workload::RandomDocument("ab", len_pick(rng), &rng));
    Corpus corpus(std::move(docs));

    ExtractionPlan gated = ExtractionPlan::FromSpanner(Spanner::FromRgx(rgx));
    ExtractionPlan plain = ExtractionPlan::FromSpanner(Spanner::FromRgx(rgx));
    plain.set_gating_enabled(false);

    for (size_t threads : {1u, 2u, 8u}) {
      BatchOptions bo;
      bo.num_threads = threads;
      bo.min_docs_per_shard = 4;
      BatchExtractor extractor(bo);
      BatchResult got = extractor.Extract(gated, corpus);
      BatchResult want = extractor.Extract(plain, corpus);
      ASSERT_EQ(got.per_doc, want.per_doc)
          << "round " << round << " threads " << threads;
    }
  }
}

// On the low-selectivity needle corpus the gate must (a) change nothing
// about the output and (b) actually skip the non-matching majority.
TEST(GateTest, NeedleCorpusIsGateSkippedButResultIdentical) {
  workload::NeedleOptions o;
  o.documents = 300;
  o.doc_bytes = 256;
  o.match_rate = 0.05;
  Corpus corpus(workload::NeedleCorpus(o));

  ExtractionPlan gated =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  ExtractionPlan plain =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  plain.set_gating_enabled(false);

  BatchOptions bo;
  bo.num_threads = 2;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);
  BatchResult got = extractor.Extract(gated, corpus);
  BatchResult want = extractor.Extract(plain, corpus);
  EXPECT_EQ(got.per_doc, want.per_doc);
  EXPECT_GT(got.MatchedDocuments(), 0u);

  PlanStats stats = gated.stats();
  EXPECT_EQ(stats.documents, corpus.size());
  EXPECT_EQ(stats.prefilter_skipped + got.MatchedDocuments(), corpus.size())
      << "every non-matching document should fall to the literal scan";
  EXPECT_EQ(plain.stats().prefilter_skipped, 0u);
}

TEST(GateTest, PlanMatchesAgreesWithSpannerMatches) {
  std::mt19937 rng(43);
  workload::RandomRgxOptions o;
  o.num_vars = 2;
  o.letters = "ab";
  std::uniform_int_distribution<size_t> len_pick(0, 9);
  for (int round = 0; round < 25; ++round) {
    RgxPtr rgx = workload::RandomRgx(o, &rng);
    ExtractionPlan plan = ExtractionPlan::FromSpanner(Spanner::FromRgx(rgx));
    PlanScratch scratch;  // reused: the fallback tier must Reset() it
    for (int d = 0; d < 15; ++d) {
      Document doc = workload::RandomDocument("ab", len_pick(rng), &rng);
      bool want = plan.spanner().Matches(doc);
      EXPECT_EQ(plan.Matches(doc), want)
          << "round " << round << " doc '" << doc.text() << "'";
      EXPECT_EQ(plan.Matches(doc, &scratch), want)
          << "round " << round << " doc '" << doc.text() << "' (scratch)";
    }
  }
}

TEST(GateTest, PlanInfoReportsGateTiers) {
  ExtractionPlan plan =
      ExtractionPlan::Compile(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  std::string info = plan.info().ToString();
  EXPECT_NE(info.find("prefilter"), std::string::npos) << info;
  EXPECT_NE(info.find("Seller: "), std::string::npos) << info;
  EXPECT_NE(info.find("lazy-dfa"), std::string::npos) << info;
  EXPECT_GT(plan.lazy_dfa().num_atoms(), 0u);
}

// ---- streamed per-shard extraction --------------------------------------

// ExtractStream must deliver exactly Extract's result, shard by shard, in
// corpus order, for every thread count.
TEST(BatchExtractorTest, ExtractStreamMatchesExtractAndIsInOrder) {
  workload::CorpusOptions o;
  o.documents = 120;
  o.rows_per_document = 2;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));

  BatchOptions ro;
  ro.num_threads = 1;
  BatchResult want = BatchExtractor(ro).Extract(plan, corpus);

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);

    std::vector<std::vector<Mapping>> streamed;
    size_t calls = 0;
    BatchExtractor::StreamStats stats = extractor.ExtractStream(
        plan, corpus,
        [&](size_t doc_begin, size_t doc_end,
            std::vector<std::vector<Mapping>>& per_doc) {
          ASSERT_EQ(doc_begin, streamed.size()) << "shards out of order";
          ASSERT_EQ(doc_end - doc_begin, per_doc.size());
          for (auto& ms : per_doc) streamed.push_back(std::move(ms));
          ++calls;
        });
    ASSERT_EQ(streamed.size(), corpus.size());
    EXPECT_EQ(streamed, want.per_doc) << "threads=" << threads;
    EXPECT_EQ(calls, stats.shards);
    EXPECT_EQ(stats.total_mappings, want.total_mappings);
    EXPECT_EQ(stats.matched_documents, want.MatchedDocuments());
  }
}

TEST(BatchExtractorTest, ExtractStreamEmptyCorpus) {
  ExtractionPlan plan = ExtractionPlan::Compile("a*").ValueOrDie();
  Corpus corpus;
  BatchExtractor extractor;
  size_t calls = 0;
  BatchExtractor::StreamStats stats = extractor.ExtractStream(
      plan, corpus,
      [&](size_t, size_t, std::vector<std::vector<Mapping>>&) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(stats.shards, 0u);
  EXPECT_EQ(stats.total_mappings, 0u);
}

TEST(FormatTest, ParseOutputFormat) {
  OutputFormat f;
  EXPECT_TRUE(ParseOutputFormat("tsv", &f));
  EXPECT_EQ(f, OutputFormat::kTsv);
  EXPECT_TRUE(ParseOutputFormat("json", &f));
  EXPECT_EQ(f, OutputFormat::kJson);
  EXPECT_FALSE(ParseOutputFormat("xml", &f));
}

}  // namespace
}  // namespace engine
}  // namespace spanners
