// Tests for the PTIME sequential tree-like rule evaluator (Theorem 5.9),
// validated against the exhaustive reference semantics.
#include <gtest/gtest.h>

#include "rules/rule_eval.h"
#include "rules/tree_eval.h"

namespace spanners {
namespace {

ExtractionRule R(std::string_view text) {
  return ExtractionRule::Parse(text).ValueOrDie();
}

// Exhaustive comparison of EvalTreeRule with brute force over all
// single-variable and pairwise constraints.
void CheckAgainstBrute(const ExtractionRule& rule, const Document& d) {
  MappingSet truth = RuleReferenceEval(rule, d);
  auto brute = [&truth](const ExtendedMapping& mu) {
    for (const Mapping& m : truth)
      if (mu.ExtendedBy(m)) return true;
    return false;
  };
  EXPECT_EQ(EvalTreeRule(rule, d, ExtendedMapping()),
            brute(ExtendedMapping()));
  std::vector<VarId> vars = rule.AllVars().ids();
  std::vector<Span> spans = d.AllSpans();
  for (VarId x : vars) {
    {
      ExtendedMapping mu;
      mu.AssignBottom(x);
      EXPECT_EQ(EvalTreeRule(rule, d, mu), brute(mu))
          << Variable::Name(x) << " = ⊥ on \"" << d.text() << "\"";
    }
    for (const Span& s : spans) {
      ExtendedMapping mu;
      mu.Assign(x, s);
      EXPECT_EQ(EvalTreeRule(rule, d, mu), brute(mu))
          << Variable::Name(x) << " -> " << s.ToString() << " on \""
          << d.text() << "\" rule " << rule.ToString();
    }
  }
  if (vars.size() >= 2) {
    for (const Span& s1 : spans) {
      for (const Span& s2 : spans) {
        ExtendedMapping mu;
        mu.Assign(vars[0], s1);
        mu.Assign(vars[1], s2);
        EXPECT_EQ(EvalTreeRule(rule, d, mu), brute(mu))
            << s1.ToString() << "/" << s2.ToString() << " on \"" << d.text()
            << "\" rule " << rule.ToString();
      }
    }
  }
}

TEST(ValidateTreeRuleTest, AcceptsAndRejects) {
  EXPECT_TRUE(ValidateTreeRule(R("a(x{.*}) && x.(b*)")).ok());
  EXPECT_FALSE(ValidateTreeRule(R("x{.*} && x.(a) && x.(b)")).ok());
  EXPECT_FALSE(
      ValidateTreeRule(R("x{.*}y{.*} && x.(z{.*}) && y.(z{.*})")).ok());
  EXPECT_FALSE(ValidateTreeRule(R("x{.*}x{.*}")).ok());  // non-sequential
}

TEST(EvalTreeRuleTest, BodyOnly) {
  for (const char* txt : {"", "a", "ab", "aab"})
    CheckAgainstBrute(R("a(x{.*})b"), Document(txt));
}

TEST(EvalTreeRuleTest, OneConstraint) {
  for (const char* txt : {"", "ab", "abb", "ba"})
    CheckAgainstBrute(R("a(x{.*}) && x.(b*)"), Document(txt));
}

TEST(EvalTreeRuleTest, NestedConstraints) {
  for (const char* txt : {"", "ab", "aab", "abb"})
    CheckAgainstBrute(R("x{.*} && x.(a*(y{.*})) && y.(b*)"),
                      Document(txt));
}

TEST(EvalTreeRuleTest, DisjunctiveInstantiation) {
  // Only the chosen branch's variable is instantiated.
  for (const char* txt : {"ab", "ba", "a", "b"})
    CheckAgainstBrute(R("x{.*}|y{.*} && x.(ab*) && y.(ba*)"),
                      Document(txt));
}

TEST(EvalTreeRuleTest, TwoSiblings) {
  for (const char* txt : {"", "ab", "aabb"})
    CheckAgainstBrute(R("x{.*}y{.*} && x.(a*) && y.(b*)"), Document(txt));
}

TEST(EvalTreeRuleTest, EmptySpanSiblings) {
  // Both x and y can be empty at the same position — the
  // "indistinguishable variables" corner of the Theorem 5.9 proof.
  for (const char* txt : {"", "a"})
    CheckAgainstBrute(R("x{.*}y{.*}a* && x.(a*) && y.(\\e)"),
                      Document(txt));
}

TEST(EvalTreeRuleTest, OptionalField) {
  // The paper's incomplete-information motif as a rule.
  for (const char* txt : {"n,t", "n", ","})
    CheckAgainstBrute(R("x{.*}(,y{.*}|\\e) && x.([^,]*) && y.([^,]*)"),
                      Document(txt));
}

TEST(EvalTreeRuleTest, DeepTree) {
  for (const char* txt : {"abc", "aabbcc"})
    CheckAgainstBrute(
        R("x{.*} && x.(a*(y{.*})) && y.(b*(z{.*})) && z.(c*)"),
        Document(txt));
}

TEST(EnumerateTreeRuleTest, MatchesReference) {
  const char* rules[] = {
      "a(x{.*}) && x.(b*)",
      "x{.*}y{.*} && x.(a*) && y.(b*)",
      "x{.*}|y{.*} && x.(ab*) && y.(ba*)",
      "x{.*} && x.(a*(y{.*})) && y.(b*)",
  };
  const char* docs[] = {"", "a", "ab", "ba", "abb"};
  for (const char* text : rules) {
    ExtractionRule rule = R(text);
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(EnumerateTreeRule(rule, d), RuleReferenceEval(rule, d))
          << text << " on " << txt;
    }
  }
}

}  // namespace
}  // namespace spanners
