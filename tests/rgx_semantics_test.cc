// Tests of the denotational semantics (paper Table 2), reproducing the
// paper's Example 3.1 on d = "aaabbb" exactly, plus the motivating
// incomplete-information example from §3.1.
#include <gtest/gtest.h>

#include "rgx/analysis.h"
#include "rgx/parser.h"
#include "rgx/reference_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

bool LowerContains(const SpanMappingSet& s, Span span, const Mapping& m) {
  return s.count(SpanMapping{span, m}) > 0;
}

TEST(RgxSemanticsTest, EpsilonMatchesEmptySpans) {
  Document d("ab");
  SpanMappingSet s = LowerEval(P("\\e"), d);
  EXPECT_EQ(s.size(), 3u);  // (1,1), (2,2), (3,3)
  EXPECT_TRUE(LowerContains(s, Span(2, 2), Mapping::Empty()));
}

TEST(RgxSemanticsTest, Example31_SingleLetter) {
  // [a]_d = {((1,2),∅), ((2,3),∅), ((3,4),∅)} on d = aaabbb.
  Document d("aaabbb");
  SpanMappingSet s = LowerEval(P("a"), d);
  EXPECT_EQ(s.size(), 3u);
  for (Pos i = 1; i <= 3; ++i)
    EXPECT_TRUE(LowerContains(s, Span(i, i + 1), Mapping::Empty()));
}

TEST(RgxSemanticsTest, Example31_VariableOverLetter) {
  // [x{a}]_d assigns the span to x; ⟦x{a}⟧_d is empty because no pair
  // spans the whole document.
  Document d("aaabbb");
  VarId x = Variable::Intern("x");
  SpanMappingSet s = LowerEval(P("x{a}"), d);
  EXPECT_EQ(s.size(), 3u);
  for (Pos i = 1; i <= 3; ++i)
    EXPECT_TRUE(
        LowerContains(s, Span(i, i + 1), Mapping::Single(x, Span(i, i + 1))));
  EXPECT_TRUE(ReferenceEval(P("x{a}"), d).empty());
}

TEST(RgxSemanticsTest, Example31_Concatenation) {
  // ⟦x{a*}·y{b*}⟧_d contains µ with µ(x)=(1,4), µ(y)=(4,7).
  Document d("aaabbb");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  SpanMappingSet astar = LowerEval(P("a*"), d);
  EXPECT_TRUE(LowerContains(astar, Span(1, 4), Mapping::Empty()));
  EXPECT_TRUE(LowerContains(astar, Span(5, 5), Mapping::Empty()));
  SpanMappingSet bstar = LowerEval(P("b*"), d);
  EXPECT_TRUE(LowerContains(bstar, Span(4, 5), Mapping::Empty()));
  EXPECT_TRUE(LowerContains(bstar, Span(4, 7), Mapping::Empty()));

  MappingSet out = ReferenceEval(P("x{a*}y{b*}"), d);
  Mapping expected = Mapping::Single(x, Span(1, 4));
  expected.Set(y, Span(4, 7));
  EXPECT_TRUE(out.Contains(expected));
  // Every output must split the document at some a/b boundary compatible
  // with the content: x gets a prefix of a's, y the complement, and the
  // boundary can only sit in [1..4]x[4..7] consistently; enumerate:
  // x=(1,k), y=(k,7) for k in {4} only (y must spell b* and x a*).
  // Additionally x can end before position 4 only if y starts with a — not
  // allowed. So the output is exactly one mapping.
  EXPECT_EQ(out.size(), 1u);
}

TEST(RgxSemanticsTest, Example31_RepeatedVariableInConcatYieldsNothing) {
  Document d("aaabbb");
  EXPECT_TRUE(ReferenceEval(P("x{a*}x{b*}"), d).empty());
}

TEST(RgxSemanticsTest, SelfNestedVariableYieldsNothing) {
  // x{x{R}} can never output (x would bind inside itself).
  Document d("a");
  EXPECT_TRUE(ReferenceEval(P("x{x{a}}"), d).empty());
}

TEST(RgxSemanticsTest, Example31_StarOverVariables) {
  // e = (x{(a|b)*} | y{(a|b)*})* can output µ(x)=(4,7), µ(y)=(1,4).
  Document d("aaabbb");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  MappingSet out = ReferenceEval(P("(x{(a|b)*}|y{(a|b)*})*"), d);
  Mapping expected = Mapping::Single(y, Span(1, 4));
  expected.Set(x, Span(4, 7));
  EXPECT_TRUE(out.Contains(expected));
  // The empty mapping also arises: iterate zero times... but then the span
  // is (i,i) ≠ whole document. One iteration with only x (or only y)
  // covering everything also works.
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(1, 7))));
  EXPECT_TRUE(out.Contains(Mapping::Single(y, Span(1, 7))));
}

TEST(RgxSemanticsTest, PlainRegexOutputsEmptyMappingAsTrue) {
  // Ordinary regular expressions: ⟦γ⟧_d = {∅} iff d ∈ L(γ), else {}.
  Document yes("aab");
  Document no("aba");
  RgxPtr g = P("a*b");
  MappingSet out_yes = ReferenceEval(g, yes);
  EXPECT_EQ(out_yes.size(), 1u);
  EXPECT_TRUE(out_yes.Contains(Mapping::Empty()));
  EXPECT_TRUE(ReferenceEval(g, no).empty());
}

TEST(RgxSemanticsTest, DisjunctionWithDifferentDomains) {
  // The paper's headline feature: R1 ∨ R2 may output mappings with
  // different domains (impossible in the relational setting).
  Document d("ab");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  MappingSet out = ReferenceEval(P("x{a}b|a(y{b})"), d);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(1, 2))));
  EXPECT_TRUE(out.Contains(Mapping::Single(y, Span(2, 3))));
}

TEST(RgxSemanticsTest, OptionalFieldProducesPartialMapping) {
  // §3.1 optional-tax idiom: y is extracted only when present.
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  RgxPtr g = P("x{[^,]*}(, y{[^,]*}|\\e)");
  Document with("john, 35000");
  Document without("john");

  MappingSet m1 = ReferenceEval(g, with);
  Mapping full = Mapping::Single(x, Span(1, 5));
  full.Set(y, Span(7, 12));
  EXPECT_TRUE(m1.Contains(full));

  MappingSet m2 = ReferenceEval(g, without);
  EXPECT_TRUE(m2.Contains(Mapping::Single(x, Span(1, 5))));
  for (const Mapping& m : m2) EXPECT_FALSE(m.Defines(y));
}

TEST(RgxSemanticsTest, EmptyCharSetIsUnsatisfiable) {
  Document d("");
  EXPECT_TRUE(ReferenceEval(RgxNode::Chars(CharSet::None()), d).empty());
}

TEST(RgxSemanticsTest, StarOfVariableOnEmptyDocument) {
  // On d = ε, (x{a})* can only iterate zero times: output is {∅}.
  Document d("");
  MappingSet out = ReferenceEval(P("(x{a})*"), d);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Mapping::Empty()));
}

TEST(RgxSemanticsTest, StarAssignsVariableAtMostOnce) {
  // (x{a})* on "aa" would need x twice — concatenation forbids it.
  Document d("aa");
  MappingSet out = ReferenceEval(P("(x{a})*"), d);
  EXPECT_TRUE(out.empty());
  // But (x{a}|a)* succeeds, assigning x to either position.
  MappingSet out2 = ReferenceEval(P("(x{a}|a)*"), d);
  VarId x = Variable::Intern("x");
  EXPECT_TRUE(out2.Contains(Mapping::Empty()));
  EXPECT_TRUE(out2.Contains(Mapping::Single(x, Span(1, 2))));
  EXPECT_TRUE(out2.Contains(Mapping::Single(x, Span(2, 3))));
  EXPECT_EQ(out2.size(), 3u);
}

TEST(RgxSemanticsTest, HierarchicalOutputs) {
  // RGX outputs are always hierarchical (§3.2 / Theorem 4.4 discussion).
  Document d("abab");
  for (const char* pat :
       {"x{a(y{b})}ab", "x{ab}y{ab}", "(x{(a|b)*}|y{(a|b)*})*",
        "x{y{a}b}z{ab}"}) {
    EXPECT_TRUE(ReferenceEval(P(pat), d).IsHierarchical()) << pat;
  }
}

TEST(RgxSemanticsTest, TotalsJoinRecoversArenasSemantics) {
  // Theorem 4.2: joining with all total mappings recovers the
  // relation-based semantics in which unmatched variables take arbitrary
  // spans.
  Document d("ab");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  RgxPtr g = P("x{a}b|a(y{b})");  // partial-mapping outputs
  MappingSet arenas = ReferenceEvalWithTotals(g, d);
  // Every output is now total on {x, y}.
  for (const Mapping& m : arenas) {
    EXPECT_TRUE(m.Defines(x));
    EXPECT_TRUE(m.Defines(y));
  }
  // x -> (1,2) with y arbitrary: 6 spans for y; y -> (2,3) with x
  // arbitrary: 6 spans for x; overlap mapping {x->(1,2), y->(2,3)} counted
  // once: 11 total.
  EXPECT_EQ(arenas.size(), 11u);
}

TEST(RgxSemanticsTest, FunctionalRgxOutputsAreTotal) {
  // Theorem 4.1 sanity: functional RGX outputs define all of var(γ).
  Document d("aabb");
  RgxPtr g = P("x{a*}y{b*}");
  ASSERT_TRUE(IsFunctional(g));
  MappingSet out = ReferenceEval(g, d);
  ASSERT_FALSE(out.empty());
  VarSet vars = RgxVars(g);
  for (const Mapping& m : out) EXPECT_TRUE(vars == m.Domain());
}

}  // namespace
}  // namespace spanners
