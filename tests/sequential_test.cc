// Tests for sequentiality of VA (Prop 5.5), MakeSequential (Prop 5.6),
// and agreement between RGX-level and VA-level sequentiality.
#include <gtest/gtest.h>

#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/thompson.h"
#include "rgx/analysis.h"
#include "rgx/parser.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(SequentialVaTest, ThompsonPreservesSequentiality) {
  // The compilation direction used in the Theorem 5.7 proof: sequential
  // RGX yields sequential VA, non-sequential RGX yields non-sequential VA.
  const char* seq[] = {"a*", "x{a*}y{b*}", "x{a}|x{b}", "x{a(y{b})}",
                       ".*Seller: (x{[^,]*}),.*"};
  for (const char* pat : seq) {
    SCOPED_TRACE(pat);
    EXPECT_TRUE(IsSequential(P(pat)));
    EXPECT_TRUE(IsSequentialVa(CompileToVa(P(pat))));
  }
  const char* nonseq[] = {"x{a}x{b}", "(x{a})*", "x{x{a}}",
                          "(x{(a|b)*}|y{(a|b)*})*"};
  for (const char* pat : nonseq) {
    SCOPED_TRACE(pat);
    EXPECT_FALSE(IsSequential(P(pat)));
    EXPECT_FALSE(IsSequentialVa(CompileToVa(P(pat))));
  }
}

TEST(SequentialVaTest, DanglingOpenAtFinalIsNotSequential) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q2);  // x never closes
  EXPECT_FALSE(IsSequentialVa(a));
}

TEST(SequentialVaTest, CloseWithoutOpenIsNotSequential) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q1);
  a.AddClose(q0, Variable::Intern("x"), q1);
  EXPECT_FALSE(IsSequentialVa(a));
}

TEST(SequentialVaTest, UnreachableViolationDoesNotCount) {
  // The bad transition must lie on a path from q0.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  StateId island = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddClose(q1, x, q2);
  a.AddClose(island, x, island);  // unreachable inconsistency
  EXPECT_TRUE(IsSequentialVa(a));
}

TEST(MakeSequentialTest, PreservesSemantics) {
  // Prop 5.6 on paper's non-sequential examples; equality checked against
  // brute-force run semantics.
  const char* patterns[] = {"(x{a}|a)*", "(x{(a|b)*}|y{(a|b)*})*",
                            "x{a}x{b}", "x{a*}"};
  const char* docs[] = {"", "a", "aa", "ab", "aabb"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    VA s = MakeSequential(a);
    EXPECT_TRUE(IsSequentialVa(s)) << pat;
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(RunEval(s, d), RunEval(a, d)) << pat << " on " << txt;
    }
  }
}

TEST(MakeSequentialTest, HandlesDanglingOpens) {
  // Automaton whose only accepting run dangles x: the sequentialised
  // automaton must still accept (with x unused).
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q2);

  VA s = MakeSequential(a);
  EXPECT_TRUE(IsSequentialVa(s));
  Document d("a");
  EXPECT_EQ(RunEval(s, d), RunEval(a, d));
  EXPECT_TRUE(RunEval(s, d).Contains(Mapping::Empty()));
}

TEST(MakeSequentialTest, IdempotentOnSequentialInput) {
  VA a = CompileToVa(P("x{a*}y{b*}"));
  VA s = MakeSequential(a);
  EXPECT_TRUE(IsSequentialVa(s));
  Document d("aabb");
  EXPECT_EQ(RunEval(s, d), RunEval(a, d));
}

}  // namespace
}  // namespace spanners
