// Tests for containment (Theorems 6.4, 6.6, 6.7), cross-validated against
// bounded semantic enumeration.
#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/thompson.h"
#include "rgx/parser.h"
#include "static_analysis/containment.h"
#include "static_analysis/equivalence.h"
#include "workload/generators.h"
#include "workload/reductions.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(ContainmentTest, PlainRegularLanguages) {
  EXPECT_TRUE(IsContainedIn(CompileToVa(P("ab")), CompileToVa(P("a*b*"))));
  EXPECT_FALSE(IsContainedIn(CompileToVa(P("a*b*")), CompileToVa(P("ab"))));
  EXPECT_TRUE(IsContainedIn(CompileToVa(P("a(b|c)")),
                            CompileToVa(P("ab|ac"))));
}

TEST(ContainmentTest, SpannerContainment) {
  // x{a*} ⊑ x{(a|b)*} (same variable, larger language).
  EXPECT_TRUE(
      IsContainedIn(CompileToVa(P("x{a*}")), CompileToVa(P("x{(a|b)*}"))));
  EXPECT_FALSE(
      IsContainedIn(CompileToVa(P("x{(a|b)*}")), CompileToVa(P("x{a*}"))));
}

TEST(ContainmentTest, DifferentVariablesNotContained) {
  EXPECT_FALSE(
      IsContainedIn(CompileToVa(P("x{a}")), CompileToVa(P("y{a}"))));
}

TEST(ContainmentTest, PartialVersusTotal) {
  // x{a}b|a(y{b}) outputs {x..} and {y..}; x{a}b alone is contained in it.
  VA big = CompileToVa(P("x{a}b|a(y{b})"));
  VA small = CompileToVa(P("x{a}b"));
  EXPECT_TRUE(IsContainedIn(small, big));
  EXPECT_FALSE(IsContainedIn(big, small));
}

TEST(ContainmentTest, DanglingOpenEqualsNotOpening) {
  // An automaton that opens x and never closes it produces the same
  // mappings as one that never touches x.
  VA dangling;
  {
    StateId q0 = dangling.AddState(), q1 = dangling.AddState(),
            q2 = dangling.AddState();
    dangling.SetInitial(q0);
    dangling.AddFinal(q2);
    dangling.AddOpen(q0, Variable::Intern("x"), q1);
    dangling.AddChar(q1, CharSet::Of('a'), q2);
  }
  VA plain = CompileToVa(P("a"));
  EXPECT_TRUE(IsContainedIn(dangling, plain));
  EXPECT_TRUE(IsContainedIn(plain, dangling));
  EXPECT_TRUE(AreEquivalentVa(dangling, plain));
}

TEST(ContainmentTest, EmptySpanVariables) {
  VA a1 = CompileToVa(P("x{\\e}a"));
  VA a2 = CompileToVa(P("x{\\e}a|x{a}"));
  EXPECT_TRUE(IsContainedIn(a1, a2));
  EXPECT_FALSE(IsContainedIn(a2, a1));
}

TEST(ContainmentTest, EquivalenceOfConversions) {
  // The symbolic equivalence agrees with conversion pipelines.
  RgxPtr g = P("x{a*}(y{b}|\\e)");
  VA a = CompileToVa(g);
  EXPECT_TRUE(AreEquivalentVa(a, MakeSequential(a)));
  EXPECT_TRUE(AreEquivalentVa(a, Determinize(a)));
}

TEST(ContainmentTest, AgreesWithBoundedEnumeration) {
  std::mt19937 rng(99);
  workload::RandomRgxOptions opt;
  opt.max_depth = 3;
  opt.num_vars = 1;
  opt.letters = "ab";
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    VA a1 = CompileToVa(workload::RandomRgx(opt, &rng));
    VA a2 = CompileToVa(workload::RandomRgx(opt, &rng));
    bool symbolic = IsContainedIn(a1, a2);
    bool bounded = ContainedUpTo(a1, a2, "ab", 4);
    // The bounded check can miss long counterexamples, but symbolic
    // containment must imply bounded containment, and a bounded
    // counterexample must refute symbolic containment.
    if (symbolic) {
      EXPECT_TRUE(bounded) << "trial " << trial;
    }
    if (!bounded) {
      EXPECT_FALSE(symbolic) << "trial " << trial;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 40);
}

TEST(ContainmentDetSeqTest, MatchesGeneralAlgorithm) {
  // Deterministic sequential point-disjoint pairs.
  struct Case {
    const char* a1;
    const char* a2;
  } cases[] = {
      {"ab", "a*b*"},
      {"x{a*}", "x{(a|b)*}"},
      {"x{a}b", "x{a}(b|c)"},
      {"x{a}(b)y{c}", "x{a}(b|c)y{c}"},
  };
  for (const Case& c : cases) {
    VA a1 = Determinize(CompileToVa(P(c.a1)));
    VA a2 = Determinize(CompileToVa(P(c.a2)));
    ASSERT_TRUE(a1.IsDeterministic() && a2.IsDeterministic());
    if (!IsSequentialVa(a1) || !IsSequentialVa(a2)) continue;
    EXPECT_EQ(IsContainedInDetSeqPd(a1, a2), IsContainedIn(a1, a2))
        << c.a1 << " vs " << c.a2;
    EXPECT_EQ(IsContainedInDetSeqPd(a2, a1), IsContainedIn(a2, a1))
        << c.a2 << " vs " << c.a1;
  }
}


TEST(ContainmentTest, CounterexampleWitness) {
  VA big = CompileToVa(P("x{(a|b)*}"));
  VA small = CompileToVa(P("x{a*}"));
  std::optional<ContainmentWitness> w = FindCounterexample(big, small);
  ASSERT_TRUE(w.has_value());
  // The witness mapping separates the two semantics on the witness doc.
  MappingSet left = RunEval(big, w->doc);
  MappingSet right = RunEval(small, w->doc);
  EXPECT_TRUE(left.Contains(w->mapping));
  EXPECT_FALSE(right.Contains(w->mapping));

  EXPECT_FALSE(FindCounterexample(small, big).has_value());
}

TEST(ContainmentTest, CounterexampleOnVarFreeLanguages) {
  VA a = CompileToVa(P("a+"));
  VA b = CompileToVa(P("aa*b|\\e"));
  std::optional<ContainmentWitness> w = FindCounterexample(a, b);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(RunEval(a, w->doc).empty());
  EXPECT_TRUE(RunEval(b, w->doc).empty());
}

TEST(ContainmentReductionTest, DnfValidity) {
  // Theorem 6.6: ⟦A1⟧ ⊆ ⟦A2⟧ iff the DNF is valid.
  using workload::Dnf;
  // p ∨ ¬p (padded to 3 literals over 3 props): valid.
  Dnf valid;
  valid.num_props = 3;
  valid.clauses.push_back({{{0, true}, {1, true}, {2, true}}});
  valid.clauses.push_back({{{0, false}, {1, true}, {2, true}}});
  valid.clauses.push_back({{{0, true}, {1, false}, {2, true}}});
  valid.clauses.push_back({{{0, true}, {1, true}, {2, false}}});
  valid.clauses.push_back({{{0, false}, {1, false}, {2, true}}});
  valid.clauses.push_back({{{0, false}, {1, true}, {2, false}}});
  valid.clauses.push_back({{{0, true}, {1, false}, {2, false}}});
  valid.clauses.push_back({{{0, false}, {1, false}, {2, false}}});
  ASSERT_TRUE(workload::IsValidDnf(valid));
  auto [v1, v2] = workload::DnfValidityToContainment(valid);
  EXPECT_TRUE(IsContainedIn(v1, v2));

  // A single clause over 3 props: not valid.
  Dnf invalid;
  invalid.num_props = 3;
  invalid.clauses.push_back({{{0, true}, {1, true}, {2, true}}});
  ASSERT_FALSE(workload::IsValidDnf(invalid));
  auto [i1, i2] = workload::DnfValidityToContainment(invalid);
  EXPECT_FALSE(IsContainedIn(i1, i2));
}

TEST(ContainmentReductionTest, RandomDnfAgainstBruteForce) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    workload::Dnf dnf = workload::RandomDnf(3, 3 + trial, &rng);
    auto [a1, a2] = workload::DnfValidityToContainment(dnf);
    EXPECT_EQ(IsContainedIn(a1, a2), workload::IsValidDnf(dnf))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace spanners
