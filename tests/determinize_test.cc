// Tests for determinization (Prop 6.5) and CharSet atom partitioning.
#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "automata/run_eval.h"
#include "automata/thompson.h"
#include "rgx/parser.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(PartitionAtomsTest, DisjointInputStaysIntact) {
  std::vector<CharSet> atoms =
      PartitionAtoms({CharSet::Of('a'), CharSet::Of('b')});
  EXPECT_EQ(atoms.size(), 2u);
}

TEST(PartitionAtomsTest, OverlapSplits) {
  std::vector<CharSet> atoms =
      PartitionAtoms({CharSet::Range('a', 'f'), CharSet::Range('d', 'k')});
  // Expected atoms: [a-c], [d-f], [g-k].
  EXPECT_EQ(atoms.size(), 3u);
  size_t total = 0;
  for (const CharSet& a : atoms) {
    total += a.size();
    for (const CharSet& b : atoms) {
      if (&a != &b) {
        EXPECT_TRUE(a.Intersect(b).empty());
      }
    }
  }
  EXPECT_EQ(total, 11u);  // a..k
}

TEST(PartitionAtomsTest, EmptyInput) {
  EXPECT_TRUE(PartitionAtoms({}).empty());
}

TEST(DeterminizeTest, OutputIsDeterministic) {
  for (const char* pat : {"a*b|ab*", "x{a*}y{b*}", "(x{a}|a)*",
                          "x{[a-f]*}|y{[d-k]*}"}) {
    VA d = Determinize(CompileToVa(P(pat)));
    EXPECT_TRUE(d.IsDeterministic()) << pat;
  }
}

TEST(DeterminizeTest, PreservesSemantics) {
  const char* patterns[] = {"a*b|ab*", "x{a*}y{b*}", "(x{a}|a)*",
                            "x{a}x{b}", "x{[^,]*}(, y{[^,]*}|\\e)"};
  const char* docs[] = {"", "a", "ab", "aabb", "b,c"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    VA d = Determinize(a);
    for (const char* txt : docs) {
      Document doc(txt);
      EXPECT_EQ(RunEval(d, doc), RunEval(a, doc)) << pat << " on " << txt;
    }
  }
}

TEST(DeterminizeTest, DeterministicRunsAreUnambiguousOnLabels) {
  // For a deterministic VA, every (document, mapping) pair has exactly one
  // run per label ordering; semantics must still match.
  VA a = CompileToVa(P("x{a|b}(c|d)"));
  VA d = Determinize(a);
  Document doc("ac");
  MappingSet out = RunEval(d, doc);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Mapping::Single(Variable::Intern("x"), Span(1, 2))));
}

}  // namespace
}  // namespace spanners
