// Tests for the lazy-DFA membership tier: atom partitioning, agreement
// with the Theorem 5.7 state-set simulation on sequential VAs, soundness
// of the negative answer on arbitrary VAs, the bounded-cache overflow
// path, and cross-thread sharing of the transition cache.
#include "automata/lazy_dfa.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "automata/determinize.h"
#include "automata/matcher.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "core/spanner.h"
#include "workload/generators.h"

namespace spanners {
namespace {

// ---- PartitionAtoms -----------------------------------------------------

TEST(PartitionAtomsTest, AtomsAreDisjointAndRefineEveryInput) {
  std::vector<CharSet> sets = {
      CharSet::Range('a', 'm'), CharSet::Range('h', 'z'),
      CharSet::OfString("aeiou"), CharSet::Of('q')};
  std::vector<CharSet> atoms = PartitionAtoms(sets);
  ASSERT_FALSE(atoms.empty());

  // Pairwise disjoint.
  for (size_t i = 0; i < atoms.size(); ++i)
    for (size_t j = i + 1; j < atoms.size(); ++j)
      EXPECT_TRUE(atoms[i].Intersect(atoms[j]).empty()) << i << "," << j;

  // The atoms cover exactly the union of the inputs.
  CharSet covered = CharSet::None();
  for (const CharSet& a : atoms) covered = covered.Union(a);
  CharSet want = CharSet::None();
  for (const CharSet& s : sets) want = want.Union(s);
  EXPECT_EQ(covered, want);

  // Each atom behaves uniformly wrt every input set (all-in or all-out).
  for (const CharSet& a : atoms)
    for (const CharSet& s : sets) {
      CharSet in = a.Intersect(s);
      EXPECT_TRUE(in.empty() || in == a);
    }
}

TEST(PartitionAtomsTest, EmptyInputYieldsNoAtoms) {
  EXPECT_TRUE(PartitionAtoms({}).empty());
}

// ---- LazyDfa ------------------------------------------------------------

Document RandomDoc(std::string_view letters, size_t max_len,
                   std::mt19937* rng) {
  std::uniform_int_distribution<size_t> len_pick(0, max_len);
  return workload::RandomDocument(letters, len_pick(*rng), rng);
}

TEST(LazyDfaTest, AgreesWithStateSetSimulationOnSequentialPatterns) {
  std::mt19937 rng(17);
  workload::RandomRgxOptions o;
  o.sequential_only = true;
  o.num_vars = 2;
  o.letters = "ab";
  for (int round = 0; round < 40; ++round) {
    Spanner s = Spanner::FromRgx(workload::RandomRgx(o, &rng));
    ASSERT_TRUE(s.is_sequential());
    LazyDfa dfa(s.va());
    for (int d = 0; d < 25; ++d) {
      Document doc = RandomDoc("ab", 12, &rng);
      std::optional<bool> got = dfa.Matches(doc.text());
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, MatchesSequential(s.va(), doc))
          << "round " << round << " doc '" << doc.text() << "'";
    }
  }
}

TEST(LazyDfaTest, NegativeAnswerIsSoundOnArbitraryVas) {
  std::mt19937 rng(23);
  for (int round = 0; round < 30; ++round) {
    VA a = workload::RandomVa(6, 2, "ab", &rng);
    if (a.NumStates() < 2) continue;
    LazyDfa dfa(a);
    for (int d = 0; d < 20; ++d) {
      Document doc = RandomDoc("ab", 8, &rng);
      std::optional<bool> got = dfa.Matches(doc.text());
      ASSERT_TRUE(got.has_value());
      if (!*got)
        EXPECT_TRUE(RunEval(a, doc).empty())
            << "round " << round << " doc '" << doc.text() << "'";
    }
  }
}

TEST(LazyDfaTest, EmptyDocumentDecidedByStartState) {
  Spanner star = Spanner::FromPattern("a*").ValueOrDie();
  EXPECT_EQ(LazyDfa(star.va()).Matches(""), std::optional<bool>(true));
  Spanner one = Spanner::FromPattern("a").ValueOrDie();
  EXPECT_EQ(LazyDfa(one.va()).Matches(""), std::optional<bool>(false));
  EXPECT_EQ(LazyDfa(one.va()).Matches("a"), std::optional<bool>(true));
  EXPECT_EQ(LazyDfa(one.va()).Matches("b"), std::optional<bool>(false));
}

TEST(LazyDfaTest, NoEvictableStateReportsUnknownNeverWrong) {
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  LazyDfaOptions tight;
  tight.max_states = 2;  // dead + start are pinned: nothing can be evicted
  LazyDfa dfa(s.va(), tight);
  EXPECT_EQ(dfa.Matches("Seller: Ann,"), std::nullopt);
  LazyDfaStats stats = dfa.stats();
  EXPECT_TRUE(stats.overflowed);
  EXPECT_GT(stats.fallbacks, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // Unknown is per-call, never sticky: the empty document never leaves
  // the (resident) start state and is still answered exactly.
  EXPECT_EQ(dfa.Matches(""), std::optional<bool>(false));
  EXPECT_EQ(dfa.Matches("zzz"), std::nullopt);  // needs a third state again
}

TEST(LazyDfaTest, TableByteBoundFallsBackNeverWrong) {
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  LazyDfaOptions tight;
  tight.max_table_bytes = 256;
  LazyDfa dfa(s.va(), tight);
  std::optional<bool> verdict = dfa.Matches("xyz Seller: Bob, rest");
  // Either the scan finished within the bound or it fell back — but an
  // answered verdict must be correct.
  if (verdict.has_value()) EXPECT_TRUE(*verdict);
  Document miss("no needle here");
  verdict = dfa.Matches(miss.text());
  if (verdict.has_value()) EXPECT_FALSE(*verdict);
}

// A working set larger than the state bound must not disable the tier:
// cold states are evicted, hot ones rebuilt on demand, and every answer
// stays exactly the Theorem 5.7 verdict.
TEST(LazyDfaTest, EvictionKeepsAnsweringExactlyUnderCacheThrash) {
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  LazyDfaOptions tight;
  tight.max_states = 5;  // well below the pattern's full subset automaton
  LazyDfa dfa(s.va(), tight);
  std::mt19937 rng(11);
  size_t answered = 0;
  for (int round = 0; round < 200; ++round) {
    Document doc = RandomDoc("Selr: abc,\n", 48, &rng);
    std::optional<bool> got = dfa.Matches(doc.text());
    if (!got.has_value()) continue;
    ++answered;
    EXPECT_EQ(*got, MatchesSequential(s.va(), doc))
        << "round " << round << " doc '" << doc.text() << "'";
  }
  LazyDfaStats stats = dfa.stats();
  EXPECT_GT(stats.evictions, 0u) << "bound never reached: test is vacuous";
  EXPECT_GT(answered, 0u);
  EXPECT_LE(stats.num_states, 5u);
}

TEST(LazyDfaTest, ThrashingSharedCacheStaysExactAcrossThreads) {
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  LazyDfaOptions tight;
  tight.max_states = 5;
  LazyDfa dfa(s.va(), tight);
  std::vector<Document> docs;
  std::mt19937 rng(5);
  for (int i = 0; i < 60; ++i)
    docs.push_back(RandomDoc("Selr: abc,\n", 40, &rng));
  docs.emplace_back("Seller: Ann, rest");

  std::vector<std::thread> threads;
  std::atomic<size_t> wrong{0}, answered{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (const Document& d : docs) {
        std::optional<bool> v = dfa.Matches(d.text());
        if (!v.has_value()) continue;  // concurrent-eviction fallback
        answered.fetch_add(1);
        if (*v != MatchesSequential(s.va(), d)) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
}

TEST(LazyDfaTest, TransitionCacheIsSharedAcrossThreads) {
  Spanner s = Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  LazyDfa dfa(s.va());
  std::vector<Document> docs;
  std::mt19937 rng(3);
  for (int i = 0; i < 50; ++i)
    docs.push_back(RandomDoc("Selr: abc,\n", 40, &rng));
  docs.emplace_back("Seller: Ann, rest");

  std::vector<std::vector<bool>> got(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (const Document& d : docs) {
        std::optional<bool> v = dfa.Matches(d.text());
        ASSERT_TRUE(v.has_value());
        got[t].push_back(*v);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(got[t], got[0]);
  for (size_t i = 0; i < docs.size(); ++i)
    EXPECT_EQ(got[0][i], MatchesSequential(s.va(), docs[i])) << i;
}

}  // namespace
}  // namespace spanners
