// Tests for satisfiability (Theorems 6.1–6.3).
#include <gtest/gtest.h>

#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/thompson.h"
#include "rgx/parser.h"
#include "rules/rule_eval.h"
#include "static_analysis/satisfiability.h"
#include "workload/reductions.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(SatVaTest, PlainRegularLanguages) {
  EXPECT_TRUE(IsSatisfiableRgx(P("a*b")));
  EXPECT_TRUE(IsSatisfiableRgx(P("\\e")));
  EXPECT_FALSE(IsSatisfiableRgx(RgxNode::Chars(CharSet::None())));
}

TEST(SatVaTest, VariableConstraints) {
  EXPECT_TRUE(IsSatisfiableRgx(P("x{a*}y{b*}")));
  // x used twice in a concatenation: no consistent run.
  EXPECT_FALSE(IsSatisfiableRgx(P("x{a}x{b}")));
  // Self-nested variable.
  EXPECT_FALSE(IsSatisfiableRgx(P("x{x{a}}")));
  // Disjunction rescues satisfiability.
  EXPECT_TRUE(IsSatisfiableRgx(P("x{a}x{b}|c")));
}

TEST(SatVaTest, WitnessIsAccepted) {
  for (const char* pat : {"a*b", "x{a*}y{b+}c", "x{ab}|y{ba}"}) {
    SCOPED_TRACE(pat);
    VA a = CompileToVa(P(pat));
    std::optional<Document> w = SatWitnessVa(a);
    ASSERT_TRUE(w.has_value());
    EXPECT_FALSE(RunEval(a, *w).empty()) << "witness \"" << w->text() << "\"";
  }
}

TEST(SatVaTest, WitnessLengthIsBounded) {
  // Lemma D.1: a satisfiable VA has a witness of size (2|V|+1)|Q|.
  VA a = CompileToVa(P("x{a+}b+y{c+}"));
  std::optional<Document> w = SatWitnessVa(a);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(w->length(), (2 * a.Vars().size() + 1) * a.NumStates());
}

TEST(SatSeqVaTest, AgreesWithGeneralOnSequentialInputs) {
  for (const char* pat : {"a*b", "x{a*}y{b*}", "x{a}|x{b}", "x{a(y{b})}"}) {
    VA a = CompileToVa(P(pat));
    ASSERT_TRUE(IsSequentialVa(a)) << pat;
    EXPECT_EQ(IsSatisfiableSequentialVa(a), IsSatisfiableVa(a)) << pat;
  }
}

TEST(SatSeqVaTest, EmptyCharsetTransitionIsNotAPath) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q1);
  a.AddChar(q0, CharSet::None(), q1);
  EXPECT_FALSE(IsSatisfiableSequentialVa(a));
  EXPECT_FALSE(IsSatisfiableVa(a));
}

TEST(SatReductionTest, OneInThreeSatInstancesMatchBruteForce) {
  // Theorem 5.2 / 6.1: γα satisfiable iff the instance is 1-in-3
  // satisfiable (the witness document is always ε).
  std::mt19937 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    workload::OneInThreeSat inst =
        workload::RandomOneInThreeSat(4, 2 + trial % 3, &rng);
    RgxPtr gamma = workload::OneInThreeSatToSpanRgx(inst);
    VA a = CompileToVa(gamma);
    EXPECT_EQ(IsSatisfiableVa(a), workload::SolveOneInThreeSat(inst))
        << "trial " << trial;
    // Satisfiability coincides with NonEmp on the empty document here.
    EXPECT_EQ(!RunEval(a, Document("")).empty(),
              workload::SolveOneInThreeSat(inst))
        << "trial " << trial;
  }
}

TEST(SatRuleTest, BoundedSearch) {
  ExtractionRule sat =
      ExtractionRule::Parse("a(x{.*}) && x.(b*)").ValueOrDie();
  EXPECT_TRUE(IsSatisfiableRuleBounded(sat, CharSet::OfString("ab"), 2));
  ExtractionRule unsat =
      ExtractionRule::Parse("x{.*} && x.(y{.*}) && y.(a(x{.*}))")
          .ValueOrDie();
  EXPECT_FALSE(IsSatisfiableRuleBounded(unsat, CharSet::OfString("a"), 3));
}

TEST(SatRuleTest, DagRuleReductionMatchesBruteForce) {
  // Theorem 5.8 / 6.3: the dag-rule image is satisfiable (on "#") iff the
  // 1-IN-3-SAT instance is.
  std::mt19937 rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    workload::OneInThreeSat inst =
        workload::RandomOneInThreeSat(3 + trial % 3, 2, &rng);
    ExtractionRule rule = workload::OneInThreeSatToDagRule(inst);
    EXPECT_TRUE(rule.IsFunctional()) << "trial " << trial;
    EXPECT_EQ(!RuleReferenceEval(rule, Document("#")).empty(),
              workload::SolveOneInThreeSat(inst))
        << "trial " << trial;
  }
}

TEST(SatTreeRuleTest, AlwaysSatisfiableWithWitness) {
  // Theorem 6.3: sequential tree-like rules are always satisfiable.
  const char* rules[] = {
      "a(x{.*}) && x.(b*)",
      "x{.*}y{.*} && x.(a+) && y.(b+)",
      "x{.*} && x.(c(y{.*})) && y.(d+)",
  };
  for (const char* text : rules) {
    ExtractionRule rule = ExtractionRule::Parse(text).ValueOrDie();
    Document w = TreeRuleSatWitness(rule);
    EXPECT_FALSE(RuleReferenceEval(rule, w).empty())
        << text << " witness \"" << w.text() << "\"";
  }
}

}  // namespace
}  // namespace spanners
