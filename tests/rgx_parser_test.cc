// Parser + printer tests, including round-trip properties.
#include <gtest/gtest.h>

#include "rgx/analysis.h"
#include "rgx/ast.h"
#include "rgx/parser.h"
#include "rgx/printer.h"

namespace spanners {
namespace {

RgxPtr MustParse(std::string_view p) {
  Result<RgxPtr> r = ParseRgx(p);
  EXPECT_TRUE(r.ok()) << p << " -> " << r.status().ToString();
  return r.ValueOrDie();
}

TEST(RgxParserTest, Literal) {
  RgxPtr e = MustParse("a");
  EXPECT_EQ(e->kind(), RgxKind::kChars);
  EXPECT_TRUE(e->chars().Contains('a'));
  EXPECT_EQ(e->chars().size(), 1u);
}

TEST(RgxParserTest, EmptyPatternIsEpsilon) {
  EXPECT_EQ(MustParse("")->kind(), RgxKind::kEpsilon);
  EXPECT_EQ(MustParse("\\e")->kind(), RgxKind::kEpsilon);
}

TEST(RgxParserTest, ConcatFlattens) {
  RgxPtr e = MustParse("abc");
  ASSERT_EQ(e->kind(), RgxKind::kConcat);
  EXPECT_EQ(e->children().size(), 3u);
}

TEST(RgxParserTest, DisjunctionAndPrecedence) {
  RgxPtr e = MustParse("ab|c");
  ASSERT_EQ(e->kind(), RgxKind::kDisj);
  EXPECT_EQ(e->children().size(), 2u);
  EXPECT_EQ(e->child(0)->kind(), RgxKind::kConcat);
}

TEST(RgxParserTest, StarBindsTightest) {
  RgxPtr e = MustParse("ab*");
  ASSERT_EQ(e->kind(), RgxKind::kConcat);
  EXPECT_EQ(e->child(1)->kind(), RgxKind::kStar);
}

TEST(RgxParserTest, PlusAndOptionalDesugar) {
  RgxPtr plus = MustParse("a+");
  ASSERT_EQ(plus->kind(), RgxKind::kConcat);
  EXPECT_EQ(plus->child(1)->kind(), RgxKind::kStar);

  RgxPtr opt = MustParse("a?");
  ASSERT_EQ(opt->kind(), RgxKind::kDisj);
  EXPECT_EQ(opt->child(1)->kind(), RgxKind::kEpsilon);
}

TEST(RgxParserTest, Variable) {
  RgxPtr e = MustParse("x{a*}");
  ASSERT_EQ(e->kind(), RgxKind::kVar);
  EXPECT_EQ(Variable::Name(e->var()), "x");
  EXPECT_EQ(e->child(0)->kind(), RgxKind::kStar);
}

TEST(RgxParserTest, MultiCharVariableName) {
  RgxPtr e = MustParse("tax_2024{b}");
  ASSERT_EQ(e->kind(), RgxKind::kVar);
  EXPECT_EQ(Variable::Name(e->var()), "tax_2024");
}

TEST(RgxParserTest, IdentNotFollowedByBraceIsLiteralChars) {
  // "ab" is two letters, not a variable.
  RgxPtr e = MustParse("ab");
  ASSERT_EQ(e->kind(), RgxKind::kConcat);
  EXPECT_EQ(e->child(0)->kind(), RgxKind::kChars);
}

TEST(RgxParserTest, NestedVariables) {
  RgxPtr e = MustParse("x{a y{b} c}");
  ASSERT_EQ(e->kind(), RgxKind::kVar);
  ASSERT_EQ(e->child(0)->kind(), RgxKind::kConcat);
}

TEST(RgxParserTest, DotIsFullAlphabet) {
  RgxPtr e = MustParse(".");
  ASSERT_EQ(e->kind(), RgxKind::kChars);
  EXPECT_EQ(e->chars(), CharSet::Any());
}

TEST(RgxParserTest, CharClassWithRange) {
  RgxPtr e = MustParse("[a-c_]");
  ASSERT_EQ(e->kind(), RgxKind::kChars);
  EXPECT_TRUE(e->chars().Contains('a'));
  EXPECT_TRUE(e->chars().Contains('b'));
  EXPECT_TRUE(e->chars().Contains('c'));
  EXPECT_TRUE(e->chars().Contains('_'));
  EXPECT_FALSE(e->chars().Contains('d'));
}

TEST(RgxParserTest, NegatedCharClass) {
  // The paper's (Σ − {,}) idiom.
  RgxPtr e = MustParse("[^,]");
  ASSERT_EQ(e->kind(), RgxKind::kChars);
  EXPECT_FALSE(e->chars().Contains(','));
  EXPECT_TRUE(e->chars().Contains('a'));
}

TEST(RgxParserTest, PaperSellerExample) {
  // Σ* · "Seller: " · x{(Σ−{,})*} · "," · Σ*  from §3.1.
  RgxPtr e = MustParse(".*Seller: (x{[^,]*}),.*");
  EXPECT_TRUE(RgxVars(e).Contains(Variable::Intern("x")));
  EXPECT_TRUE(IsSequential(e));
  EXPECT_TRUE(IsFunctional(e));
}

TEST(RgxParserTest, Escapes) {
  RgxPtr e = MustParse("\\*\\|\\\\\\n");
  ASSERT_EQ(e->kind(), RgxKind::kConcat);
  EXPECT_TRUE(e->child(0)->chars().Contains('*'));
  EXPECT_TRUE(e->child(1)->chars().Contains('|'));
  EXPECT_TRUE(e->child(2)->chars().Contains('\\'));
  EXPECT_TRUE(e->child(3)->chars().Contains('\n'));
}

TEST(RgxParserTest, HexEscape) {
  RgxPtr e = MustParse("\\x41");
  EXPECT_TRUE(e->chars().Contains('A'));
}

TEST(RgxParserTest, ErrorUnbalancedParen) {
  EXPECT_FALSE(ParseRgx("(ab").ok());
  EXPECT_FALSE(ParseRgx("ab)").ok());
}

TEST(RgxParserTest, ErrorUnbalancedVariableBrace) {
  EXPECT_FALSE(ParseRgx("x{ab").ok());
  EXPECT_FALSE(ParseRgx("ab}").ok());
}

TEST(RgxParserTest, ErrorDanglingQuantifier) {
  EXPECT_FALSE(ParseRgx("*a").ok());
  EXPECT_FALSE(ParseRgx("|*").ok());
}

TEST(RgxParserTest, ErrorBadClass) {
  EXPECT_FALSE(ParseRgx("[z-a]").ok());
  EXPECT_FALSE(ParseRgx("[abc").ok());
  EXPECT_FALSE(ParseRgx("[]").ok());
}

TEST(RgxParserTest, ErrorDanglingEscape) {
  EXPECT_FALSE(ParseRgx("ab\\").ok());
}

TEST(RgxParserTest, ErrorMessagesCarryPosition) {
  Result<RgxPtr> r = ParseRgx("ab)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("position 2"), std::string::npos)
      << r.status().ToString();
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  RgxPtr once = MustParse(GetParam());
  std::string printed = ToPattern(once);
  RgxPtr twice = MustParse(printed);
  EXPECT_TRUE(RgxNode::Equals(once, twice))
      << GetParam() << " printed as " << printed;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RoundTripTest,
    ::testing::Values(
        "a", "", "\\e", "abc", "a|b", "a|b|c", "(a|b)c", "a*", "(ab)*",
        "(a|b)*", "a**", "x{a*}", "x{y{a}b}", "a+b?", ".", "[a-z]", "[^,]",
        "ax{b}",  // literal then variable: needs parens when printed
        ".*Seller: (x{[^,]*}),.*",
        "x{(a|b)*}|y{(a|b)*}",
        "(x{.*}|y{.*})(z{.*}|w{.*})",
        "\\*\\|\\\\\\n\\x41",
        "a(x{b})(y{c})d"));

TEST(RgxPrinterTest, VariableAfterLiteralIsParenthesised) {
  RgxPtr e = RgxNode::Concat(RgxNode::Lit('a'),
                             RgxNode::Var("x", RgxNode::Lit('b')));
  std::string p = ToPattern(e);
  RgxPtr back = MustParse(p);
  EXPECT_TRUE(RgxNode::Equals(e, back)) << p;
}

}  // namespace
}  // namespace spanners
