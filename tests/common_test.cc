// Tests for the common substrate: Status/Result and CharSet.
#include <gtest/gtest.h>

#include "common/charset.h"
#include "common/status.h"

namespace spanners {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopyIsCheap) {
  Status s = Status::NotSupported("nope");
  Status t = s;
  EXPECT_EQ(t, s);
  EXPECT_EQ(t.message(), "nope");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsatisfiable), "Unsatisfiable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "Out of range");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal error");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  SPANNERS_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_EQ(*ok, 2);

  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(CharSetTest, BasicMembership) {
  CharSet s = CharSet::OfString("abc");
  EXPECT_TRUE(s.Contains('a'));
  EXPECT_FALSE(s.Contains('d'));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(CharSet::None().empty());
  EXPECT_EQ(CharSet::Any().size(), 256u);
}

TEST(CharSetTest, Algebra) {
  CharSet ab = CharSet::OfString("ab");
  CharSet bc = CharSet::OfString("bc");
  EXPECT_EQ(ab.Union(bc).size(), 3u);
  EXPECT_EQ(ab.Intersect(bc).size(), 1u);
  EXPECT_TRUE(ab.Intersect(bc).Contains('b'));
  EXPECT_EQ(ab.Minus(bc).size(), 1u);
  EXPECT_TRUE(ab.Minus(bc).Contains('a'));
  EXPECT_EQ(ab.Complement().size(), 254u);
  EXPECT_FALSE(ab.Complement().Contains('a'));
}

TEST(CharSetTest, Range) {
  CharSet digits = CharSet::Range('0', '9');
  EXPECT_EQ(digits.size(), 10u);
  EXPECT_TRUE(digits.Contains('5'));
  EXPECT_FALSE(digits.Contains('a'));
}

TEST(CharSetTest, AnyMemberPrefersPrintable) {
  CharSet s = CharSet::OfString("xyz");
  char m = s.AnyMember();
  EXPECT_TRUE(s.Contains(m));
  EXPECT_GE(m, 'x');
}

TEST(CharSetTest, ToStringForms) {
  EXPECT_EQ(CharSet::Any().ToString(), ".");
  EXPECT_EQ(CharSet::Of('a').ToString(), "a");
  std::string cls = CharSet::Range('a', 'f').ToString();
  EXPECT_EQ(cls.front(), '[');
  EXPECT_EQ(cls.back(), ']');
  // Large sets print complemented.
  EXPECT_EQ(CharSet::Of(',').Complement().ToString().substr(0, 2), "[^");
}

TEST(CharSetTest, HashDistinguishes) {
  EXPECT_NE(CharSet::Of('a').Hash(), CharSet::Of('b').Hash());
  EXPECT_EQ(CharSet::OfString("ab").Hash(), CharSet::OfString("ba").Hash());
}

}  // namespace
}  // namespace spanners
