// Tests for cooperative cancellation and per-request resource governance
// (common/cancel.h): every long-running tier — the Aho–Corasick scan, the
// lazy DFA, each evaluator family, the enumerator, and the query layer's
// hash join — must observe a tripped CancelToken within a bounded number
// of steps; deadlines and arena-byte budgets must abort evaluation
// mid-flight with the right Status; and an armed-but-untripped token must
// leave results byte-identical to a run without one. Server-side: a
// request deadline fires mid-evaluation, a disconnect cancels queued AND
// in-flight work, and the per-request memory cap converts a pathological
// request into ResourceExhausted.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "automata/enumerate.h"
#include "automata/fpt.h"
#include "automata/matcher.h"
#include "automata/run_eval.h"
#include "automata/thompson.h"
#include "common/aho_corasick.h"
#include "common/cancel.h"
#include "engine/engine.h"
#include "query/compile.h"
#include "query/parser.h"
#include "rgx/parser.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generators.h"

namespace spanners {
namespace {

using engine::BatchExtractor;
using engine::BatchOptions;
using engine::BatchResult;
using engine::Corpus;
using engine::ExtractionPlan;
using engine::OutputFormat;
using engine::PlanScratch;
using std::chrono::steady_clock;

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

ExtractionPlan MustCompile(std::string_view pattern) {
  auto plan = ExtractionPlan::Compile(pattern);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

// ---- token + gauge --------------------------------------------------

TEST(CancelTokenTest, CancelTripsAndConverts) {
  CancelToken tok;
  EXPECT_FALSE(tok.tripped());
  EXPECT_TRUE(tok.ToStatus().ok());
  tok.Cancel();
  EXPECT_TRUE(tok.Poll(0));
  EXPECT_TRUE(tok.tripped());
  EXPECT_EQ(tok.reason(), CancelToken::Reason::kCancelled);
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DeadlineTripsAndConverts) {
  CancelToken tok;
  tok.ArmDeadline(steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(tok.Poll(0));
  EXPECT_EQ(tok.reason(), CancelToken::Reason::kDeadline);
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, MemoryBudgetTripsAndTracksPeak) {
  CancelToken tok;
  tok.ArmMemoryBudget(100);
  EXPECT_FALSE(tok.Poll(50));
  EXPECT_TRUE(tok.Poll(200));
  EXPECT_EQ(tok.reason(), CancelToken::Reason::kResourceExhausted);
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tok.peak_arena_bytes(), 200u);
}

TEST(CancelTokenTest, FirstTripWins) {
  CancelToken tok;
  tok.ArmMemoryBudget(100);
  EXPECT_TRUE(tok.Poll(200));
  tok.Cancel();
  EXPECT_TRUE(tok.Poll(0));
  // The later Cancel() cannot replace the recorded reason.
  EXPECT_EQ(tok.reason(), CancelToken::Reason::kResourceExhausted);
}

TEST(CancelGaugeTest, NullGaugeNeverStops) {
  CancelGauge gauge;
  for (uint32_t i = 0; i < 4 * CancelGauge::kStride; ++i)
    ASSERT_FALSE(gauge.ShouldStop());
  EXPECT_FALSE(gauge.armed());
}

TEST(CancelGaugeTest, ObservesTripWithinOneStride) {
  CancelToken tok;
  tok.Cancel();
  CancelGauge gauge(&tok);
  uint32_t steps = 0;
  while (!gauge.ShouldStop()) {
    ++steps;
    ASSERT_LE(steps, CancelGauge::kStride);
  }
  EXPECT_LE(steps, CancelGauge::kStride);
  EXPECT_GE(tok.polls(), 1u);
}

// ---- scan tiers -----------------------------------------------------

TEST(CancelScanTest, AhoCorasickObservesCancellation) {
  const AhoCorasick ac(std::vector<std::string>{"needle", "pin"});
  std::string text(1u << 20, 'a');
  for (size_t i = 0; i + 6 < text.size(); i += 4096)
    text.replace(i, 6, "needle");

  size_t hits_uncancelled = 0;
  ac.Scan(text, [&](uint32_t, size_t) {
    ++hits_uncancelled;
    return true;
  });
  ASSERT_GT(hits_uncancelled, 0u);

  CancelToken tok;
  tok.Cancel();
  size_t hits = 0;
  ac.Scan(
      text,
      [&](uint32_t, size_t) {
        ++hits;
        return true;
      },
      &tok);
  // The scan polls before advancing and a pre-tripped token stops it at
  // the first poll: no hit is ever reported.
  EXPECT_EQ(hits, 0u);
  EXPECT_GE(tok.polls(), 1u);
}

TEST(CancelScanTest, LazyDfaObservesCancellation) {
  const ExtractionPlan plan = MustCompile(".*ERR x{[0-9]+}.*");
  const std::string text(1u << 20, 'a');
  ASSERT_TRUE(plan.lazy_dfa().Matches(text).has_value());

  CancelToken tok;
  tok.Cancel();
  EXPECT_EQ(plan.lazy_dfa().Matches(text, &tok), std::nullopt);
  EXPECT_GE(tok.polls(), 1u);
}

// ---- evaluator families ---------------------------------------------

TEST(CancelEvalTest, RunEvaluationObservesCancellation) {
  const VA a = CompileToVa(P(".*x{a*}.*"));
  const Document doc(std::string(128, 'a'));
  Arena arena;

  std::vector<Mapping> full;
  {
    VectorSink sink(&full);
    RunEvalTo(a, doc, &arena, sink);
  }
  ASSERT_GT(full.size(), CancelGauge::kStride);

  CancelToken tok;
  tok.Cancel();
  std::vector<Mapping> out;
  VectorSink sink(&out);
  RunEvalTo(a, doc, &arena, sink, nullptr, &tok);
  EXPECT_GE(tok.polls(), 1u);
  EXPECT_LT(out.size(), full.size());
}

TEST(CancelEvalTest, SequentialMatcherObservesCancellation) {
  const VA a = CompileToVa(P(".*x{a*}.*"));
  const Document doc(std::string(4096, 'a'));
  Arena arena;
  ASSERT_TRUE(EvalSequential(a, doc, ExtendedMapping(), &arena));

  CancelToken tok;
  tok.Cancel();
  EvalSequential(a, doc, ExtendedMapping(), &arena, &tok);
  // The returned bool is meaningless after a trip; the contract is that
  // the simulation consulted the token (and therefore aborted early).
  EXPECT_GE(tok.polls(), 1u);
}

TEST(CancelEvalTest, FptEvaluatorObservesCancellation) {
  const VA a = CompileToVa(P(".*x{a*}.*"));
  const Document doc(std::string(4096, 'a'));
  Arena arena;
  ASSERT_TRUE(EvalVa(a, doc, ExtendedMapping(), &arena));

  CancelToken tok;
  tok.Cancel();
  EvalVa(a, doc, ExtendedMapping(), &arena, &tok);
  EXPECT_GE(tok.polls(), 1u);
}

TEST(CancelEvalTest, EnumeratorObservesCancellation) {
  const VA a = CompileToVa(P(".*x{a*}.*"));
  const Document doc(std::string(128, 'a'));

  Arena full_arena;
  std::vector<Mapping> full;
  {
    VectorSink sink(&full);
    EnumerateSequentialTo(a, doc, &full_arena, sink);
  }
  ASSERT_GT(full.size(), CancelGauge::kStride);

  CancelToken tok;
  tok.Cancel();
  Arena arena;
  std::vector<Mapping> out;
  VectorSink sink(&out);
  EnumerateSequentialTo(a, doc, &arena, sink, &tok);
  EXPECT_GE(tok.polls(), 1u);
  // The enumerator's own gauge ends the DFS within one stride, so at
  // most a stride's worth of outputs can have been pushed.
  EXPECT_LE(out.size(), size_t{CancelGauge::kStride});
  EXPECT_LT(out.size(), full.size());
}

TEST(CancelQueryTest, HashJoinObservesCancellation) {
  auto expr = query::ParseQuery(
      "join(rgx(\".*x{a*}.*\"), rgx(\".*x{a*}b.*\"))");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  auto q = query::CompiledQuery::Compile(expr.value());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->PlanString().substr(0, 5), "join(");

  const Document doc(std::string(300, 'a') + "b");
  CancelToken tok;
  tok.Cancel();
  PlanScratch scratch;
  scratch.cancel = &tok;
  std::vector<Mapping> out;
  q->ExtractSortedInto(doc, &scratch, &out);
  EXPECT_GE(tok.polls(), 1u);
}

TEST(CancelQueryTest, DeadlineAbortsJoinMidEvaluation) {
  auto expr = query::ParseQuery(
      "join(rgx(\".*x{a*}.*\"), rgx(\".*x{a*}b.*\"))");
  ASSERT_TRUE(expr.ok());
  auto q = query::CompiledQuery::Compile(expr.value());
  ASSERT_TRUE(q.ok());

  // Θ(n²) left-side mappings: far more work than the deadline allows.
  const Document doc(std::string(3000, 'a') + "b");
  CancelToken tok;
  tok.ArmDeadline(steady_clock::now() + std::chrono::milliseconds(20));
  PlanScratch scratch;
  scratch.cancel = &tok;
  std::vector<Mapping> out;
  const auto t0 = steady_clock::now();
  q->ExtractSortedInto(doc, &scratch, &out);
  EXPECT_TRUE(tok.tripped());
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(10));
}

// ---- plan-level deadline / budget / identity ------------------------

TEST(CancelPlanTest, DeadlineAbortsPathologicalExtraction) {
  const ExtractionPlan plan = MustCompile(workload::PathologicalRgxText());
  const std::vector<Document> bomb =
      workload::BombCorpus(workload::BombOptions{1, 4096});

  CancelToken tok;
  tok.ArmDeadline(steady_clock::now() + std::chrono::milliseconds(20));
  PlanScratch scratch;
  scratch.cancel = &tok;
  std::vector<Mapping> out;
  const auto t0 = steady_clock::now();
  plan.ExtractSortedInto(bomb[0], &scratch, &out);
  EXPECT_TRUE(tok.tripped());
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // Abort latency is bounded by the poll stride, not by the Θ(n²)
  // remaining work (generous bound for sanitizer builds).
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(10));
}

TEST(CancelPlanTest, MemoryBudgetAbortsPathologicalExtraction) {
  const ExtractionPlan plan = MustCompile(workload::PathologicalRgxText());
  const std::vector<Document> bomb =
      workload::BombCorpus(workload::BombOptions{1, 2048});

  CancelToken tok;
  tok.ArmMemoryBudget(32u << 10);
  PlanScratch scratch;
  scratch.cancel = &tok;
  std::vector<Mapping> out;
  plan.ExtractSortedInto(bomb[0], &scratch, &out);
  EXPECT_TRUE(tok.tripped());
  EXPECT_EQ(tok.reason(), CancelToken::Reason::kResourceExhausted);
  EXPECT_EQ(tok.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(tok.peak_arena_bytes(), 32u << 10);
}

TEST(CancelPlanTest, UntrippedTokenIsByteIdentical) {
  const std::string pattern = ".*ALERT id=(x{[0-9]+}) code=(y{[A-Z]+})\\n.*";
  workload::NeedleOptions no;
  no.documents = 200;
  no.doc_bytes = 512;
  no.match_rate = 0.05;
  const Corpus corpus{workload::NeedleCorpus(no)};
  const ExtractionPlan plan = MustCompile(pattern);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    BatchOptions options;
    options.num_threads = threads;
    BatchExtractor batch(options);
    const BatchResult base = batch.Extract(plan, corpus);

    // Generously armed and never tripping: polls must have no side
    // effect on results.
    CancelToken tok;
    tok.ArmDeadline(steady_clock::now() + std::chrono::hours(1));
    tok.ArmMemoryBudget(uint64_t{1} << 40);
    batch.set_cancel(&tok);
    const BatchResult with_token = batch.Extract(plan, corpus);
    batch.set_cancel(nullptr);

    EXPECT_FALSE(tok.tripped());
    ASSERT_EQ(base.per_doc.size(), with_token.per_doc.size());
    for (size_t i = 0; i < base.per_doc.size(); ++i)
      EXPECT_EQ(base.per_doc[i], with_token.per_doc[i]) << "doc " << i;
    EXPECT_EQ(base.total_mappings, with_token.total_mappings);
  }
}

TEST(CancelPlanTest, PreTrippedTokenStopsBatchBetweenDocuments) {
  const ExtractionPlan plan = MustCompile(".*ERR x{[0-9]+}.*");
  Corpus corpus;
  for (int i = 0; i < 64; ++i)
    corpus.Add(Document("ERR " + std::to_string(i) + " payload"));

  BatchOptions options;
  options.num_threads = 2;
  BatchExtractor batch(options);
  const BatchResult base = batch.Extract(plan, corpus);
  ASSERT_GT(base.total_mappings, 64u);

  CancelToken tok;
  tok.Cancel();
  batch.set_cancel(&tok);
  const BatchResult cancelled = batch.Extract(plan, corpus);
  batch.set_cancel(nullptr);
  // Workers bail between documents once tripped; the partial result is
  // contractually meaningless but must be smaller than the full run.
  EXPECT_LT(cancelled.total_mappings, base.total_mappings);
}

// ---- server: deadline, memory cap, disconnect -----------------------

class RunningServer {
 public:
  RunningServer(server::ServerOptions options, Corpus corpus) {
    if (options.socket_path.empty())
      options.socket_path = ::testing::TempDir() + "spanexd_cancel_test_" +
                            std::to_string(reinterpret_cast<uintptr_t>(this)) +
                            ".sock";
    socket_path_ = options.socket_path;
    options.num_threads = 2;
    server_.emplace(std::move(options), std::move(corpus));
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { exit_code_ = server_->Serve(); });
  }

  ~RunningServer() { Shutdown(); }

  int Shutdown() {
    if (thread_.joinable()) {
      server_->RequestDrain();
      thread_.join();
    }
    std::remove(socket_path_.c_str());
    return exit_code_;
  }

  server::Server& server() { return *server_; }

  server::Client MustConnect() {
    Result<server::Client> c = server::Client::Connect(socket_path_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }

 private:
  std::optional<server::Server> server_;
  std::string socket_path_;
  std::thread thread_;
  int exit_code_ = -1;
};

Corpus BombServedCorpus(size_t doc_bytes) {
  return Corpus(workload::BombCorpus(workload::BombOptions{1, doc_bytes}));
}

TEST(CancelServerTest, DeadlineFiresMidEvaluation) {
  server::ServerOptions options;
  options.request_timeout_ms = 100;
  RunningServer rs(std::move(options), BombServedCorpus(1u << 15));
  server::Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(workload::PathologicalRgxText()).ok());

  const auto t0 = steady_clock::now();
  Result<server::Client::ExtractSummary> result =
      client.ExtractBatch(OutputFormat::kTsv, false, false,
                          [](const std::string&) {});
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  // The Θ(n²) bomb would run for minutes; the deadline must abort the
  // RUNNING evaluation promptly (generous bound for sanitizer builds).
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  EXPECT_GE(rs.server().StatsSnapshot().deadline_exceeded, 1u);
}

TEST(CancelServerTest, MemoryCapYieldsResourceExhausted) {
  server::ServerOptions options;
  options.request_memory_cap = 32u << 10;
  // Backstop so a regression in budget polling fails the EXPECT below
  // instead of hanging the test on the full Θ(n²) evaluation.
  options.request_timeout_ms = 30'000;
  RunningServer rs(std::move(options), BombServedCorpus(1u << 15));
  server::Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(workload::PathologicalRgxText()).ok());

  Result<server::Client::ExtractSummary> result =
      client.ExtractBatch(OutputFormat::kTsv, false, false,
                          [](const std::string&) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_GE(rs.server().StatsSnapshot().resource_exhausted, 1u);
}

TEST(CancelServerTest, DisconnectCancelsQueuedAndInflightWork) {
  RunningServer rs(server::ServerOptions{}, BombServedCorpus(1u << 15));
  {
    server::Client client = rs.MustConnect();
    ASSERT_TRUE(client.Register(workload::PathologicalRgxText()).ok());
    // Two batch requests back to back: the first goes in-flight, the
    // second waits in the queue behind it.
    ASSERT_TRUE(
        client.SendLine("{\"op\":\"extract_batch\",\"id\":1}").ok());
    ASSERT_TRUE(
        client.SendLine("{\"op\":\"extract_batch\",\"id\":2}").ok());
    // Wait until the single-threaded executor has dequeued request 1
    // (in-flight on the bomb) while request 2 still sits in the queue.
    const auto admit_deadline = steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const engine::ServerStatsReport s = rs.server().StatsSnapshot();
      if (s.admitted >= 2 && s.queue_depth == 1) break;
      ASSERT_LT(steady_clock::now(), admit_deadline)
          << "request 1 never went in-flight";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }  // disconnect: the destructor closes the socket mid-evaluation

  // The in-flight evaluation must observe the Cancel() (server.cancelled)
  // and the queued item must be dropped at dequeue
  // (server.cancelled_disconnect).
  const auto deadline = steady_clock::now() + std::chrono::seconds(30);
  engine::ServerStatsReport stats;
  for (;;) {
    stats = rs.server().StatsSnapshot();
    if ((stats.cancelled >= 1 && stats.cancelled_disconnect >= 1) ||
        steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_GE(stats.cancelled_disconnect, 1u);
}

}  // namespace
}  // namespace spanners
