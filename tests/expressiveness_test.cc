// Consolidated expressiveness checks for §4 of the paper: the hierarchy
// among RGX, VAstk, hierarchical VA, general VA, and extraction rules.
#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/run_eval.h"
#include "automata/state_elim.h"
#include "automata/thompson.h"
#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rgx/reference_eval.h"
#include "rgx/simplify.h"
#include "rules/rule_eval.h"
#include "static_analysis/containment.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(ExpressivenessTest, RgxEqualsVaStk) {
  // Theorem 4.3 both ways on a formula with nesting, disjunction over
  // variables, and partial outputs.
  RgxPtr g = P("x{a(y{b*})}c|x{ab*}d");
  VA va = CompileToVa(g);
  // VA and VAstk semantics coincide on Thompson images...
  for (const char* txt : {"abc", "abbd", "ac", "d"}) {
    Document d(txt);
    EXPECT_EQ(RunEval(va, d), RunEvalStack(va, d)) << txt;
    EXPECT_EQ(RunEval(va, d), ReferenceEval(g, d)) << txt;
  }
  // ...and the automaton converts back to an equivalent RGX.
  RgxPtr back = SimplifyRgx(VaToRgx(va).ValueOrDie());
  for (const char* txt : {"abc", "abbd", "ac"}) {
    Document d(txt);
    EXPECT_EQ(ReferenceEval(back, d), ReferenceEval(g, d))
        << ToPattern(back) << " on " << txt;
  }
}

TEST(ExpressivenessTest, HierarchicalVaEqualsRgx) {
  // Theorem 4.4: a hand-built hierarchical (but not stack-ordered) VA
  // converts to RGX. Ops at one position reorder into nesting.
  VA a;
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState(),
          q3 = a.AddState(), q4 = a.AddState(), q5 = a.AddState(),
          q6 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q6);
  // y opens first, x second (same position), but y closes first too —
  // x ⊆ y fails; their spans nest the other way: reorder needed.
  a.AddOpen(q0, y, q1);
  a.AddOpen(q1, x, q2);
  a.AddChar(q2, CharSet::Of('a'), q3);
  a.AddClose(q3, y, q4);  // y = x's span — same endpoints
  a.AddClose(q4, x, q5);
  a.AddEpsilon(q5, q6);
  Result<RgxPtr> back = VaToRgx(a);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  Document d("a");
  EXPECT_EQ(ReferenceEval(*back, d), RunEval(a, d));
  Mapping m = Mapping::Single(x, Span(1, 2));
  m.Set(y, Span(1, 2));
  EXPECT_TRUE(RunEval(a, d).Contains(m));
}

TEST(ExpressivenessTest, GeneralVaStrictlyStrongerThanRgx) {
  // §3.2 / Theorem 4.4: a non-hierarchical VA has no RGX equivalent; our
  // converter reports that instead of silently dropping mappings.
  VA overlap;
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  StateId s0 = overlap.AddState(), s1 = overlap.AddState(),
          s2 = overlap.AddState(), s3 = overlap.AddState(),
          s4 = overlap.AddState(), s5 = overlap.AddState(),
          s6 = overlap.AddState(), s7 = overlap.AddState();
  overlap.SetInitial(s0);
  overlap.AddFinal(s7);
  overlap.AddOpen(s0, x, s1);
  overlap.AddChar(s1, CharSet::Of('a'), s2);
  overlap.AddOpen(s2, y, s3);
  overlap.AddChar(s3, CharSet::Of('b'), s4);
  overlap.AddClose(s4, x, s5);
  overlap.AddChar(s5, CharSet::Of('c'), s6);
  overlap.AddClose(s6, y, s7);
  EXPECT_FALSE(RunEval(overlap, Document("abc")).IsHierarchical());
  EXPECT_FALSE(VaToRgx(overlap).ok());
}

TEST(ExpressivenessTest, RulesExpressNonHierarchicalMappings) {
  // Theorem 4.6 direction 1: the rule x ∧ x.Σ*yΣ* ∧ x.Σ*zΣ* produces
  // overlapping y/z — no RGX can (RGX outputs are hierarchical; checked
  // as a property test over random RGX elsewhere).
  ExtractionRule rule =
      ExtractionRule::Parse("x{.*} && x.(.*y{.*}.*) && x.(.*z{.*}.*)")
          .ValueOrDie();
  MappingSet out = RuleReferenceEval(rule, Document("aaa"));
  EXPECT_FALSE(out.IsHierarchical());
}

TEST(ExpressivenessTest, RgxDisjunctionOfVariablesVsRules) {
  // Theorem 4.6 direction 2 witness behaviour: γ = (a·x{b}) ∨ (b·x{a})
  // accepts exactly two document-mapping pairs; the naive single rule
  // ax ∨ bx ∧ x.(a ∨ b) accepts a third (d = aa), as in the paper's
  // proof. Union-of-rules, however, captures γ exactly (Theorem 4.10).
  RgxPtr g = P("a(x{b})|b(x{a})");
  VarId x = Variable::Intern("x");
  MappingSet on_ab = ReferenceEval(g, Document("ab"));
  MappingSet on_ba = ReferenceEval(g, Document("ba"));
  MappingSet on_aa = ReferenceEval(g, Document("aa"));
  EXPECT_TRUE(on_ab.Contains(Mapping::Single(x, Span(2, 3))));
  EXPECT_TRUE(on_ba.Contains(Mapping::Single(x, Span(2, 3))));
  EXPECT_TRUE(on_aa.empty());

  ExtractionRule naive =
      ExtractionRule::Parse("a(x{.*})|b(x{.*}) && x.(a|b)").ValueOrDie();
  MappingSet naive_aa = RuleReferenceEval(naive, Document("aa"));
  EXPECT_FALSE(naive_aa.empty());  // the paper's counterexample pair
}

TEST(ExpressivenessTest, AlgebraReachesBeyondStackAutomata) {
  // Theorem 4.5: VAstk^{∪,π,⋈} ≡ VA — a join of two stack-producible
  // spanners yields the overlap pattern no single RGX produces.
  VA a1 = CompileToVa(P("x{ab}c"));
  VA a2 = CompileToVa(P("a(y{bc})"));
  VA j = JoinVa(a1, a2);
  EXPECT_FALSE(RunEval(j, Document("abc")).IsHierarchical());
  EXPECT_FALSE(VaToRgx(j).ok());  // indeed not RGX-expressible
}

TEST(ExpressivenessTest, ContainmentSeparatesFragments) {
  // The partial-output spanner strictly contains its total restriction.
  VA partial = CompileToVa(P("x{a*}(y{b+}|\\e)"));
  VA total = CompileToVa(P("x{a*}y{b+}"));
  EXPECT_TRUE(IsContainedIn(total, partial));
  EXPECT_FALSE(IsContainedIn(partial, total));
  std::optional<ContainmentWitness> w = FindCounterexample(partial, total);
  ASSERT_TRUE(w.has_value());
  // The separating mapping must be one that leaves y undefined.
  EXPECT_FALSE(w->mapping.Defines(Variable::Intern("y")));
}

}  // namespace
}  // namespace spanners
