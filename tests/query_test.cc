// Tests for the composable query layer (src/query/): expression
// construction and canonical text, the query parser, pushdown shape of
// compilation, algebra-operator correctness against a naive
// reference_eval-based oracle (fixed and randomized), plan-cache behaviour
// for pattern and rule-program leaves, and batch determinism across
// thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/compile.h"
#include "query/expr.h"
#include "query/parser.h"
#include "rgx/printer.h"
#include "rgx/reference_eval.h"
#include "rules/rule_eval.h"
#include "workload/generators.h"

namespace spanners {
namespace query {
namespace {

using engine::BatchExtractor;
using engine::BatchOptions;
using engine::BatchResult;
using engine::Corpus;
using engine::PlanCache;
using engine::PlanScratch;

ExprPtr MustPattern(std::string_view pattern) {
  auto e = SpannerExpr::Pattern(pattern);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(e).value();
}

ExprPtr MustParse(std::string_view text) {
  auto e = ParseQuery(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(e).value();
}

CompiledQuery MustCompile(const ExprPtr& e, PlanCache* cache = nullptr) {
  QueryCompileOptions options;
  options.cache = cache;
  auto q = CompiledQuery::Compile(e, options);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

// The naive semantics of an expression: reference (Table 2) evaluation at
// pattern leaves, exhaustive rule-tuple enumeration at rule leaves, and
// the MappingSet algebra above — everything the compiled path must match.
MappingSet OracleEval(const ExprPtr& e, const Document& doc) {
  switch (e->kind()) {
    case SpannerExpr::Kind::kPattern:
      return ReferenceEval(e->rgx(), doc);
    case SpannerExpr::Kind::kRules:
      return UnionRuleEval(e->rules(), doc);
    case SpannerExpr::Kind::kUnion:
      return MappingSet::Union(OracleEval(e->child(0), doc),
                               OracleEval(e->child(1), doc));
    case SpannerExpr::Kind::kProject:
      return OracleEval(e->child(0), doc).Project(e->keep());
    case SpannerExpr::Kind::kNaturalJoin:
      return MappingSet::Join(OracleEval(e->child(0), doc),
                              OracleEval(e->child(1), doc));
    case SpannerExpr::Kind::kSelectEq: {
      MappingSet in = OracleEval(e->child(0), doc);
      MappingSet out;
      for (const Mapping& m : in) {
        auto sx = m.Get(e->eq_x()), sy = m.Get(e->eq_y());
        if (sx && sy && doc.content(*sx) == doc.content(*sy))
          out.Insert(m);
      }
      return out;
    }
  }
  ADD_FAILURE() << "unknown kind";
  return MappingSet();
}

// Cross-checks the compiled pipeline against the oracle and returns the
// (agreed) result size, so callers can additionally assert a case is not
// vacuously empty-vs-empty.
size_t ExpectMatchesOracle(const ExprPtr& e, const Document& doc) {
  CompiledQuery q = MustCompile(e);
  MappingSet got = q.Extract(doc);
  MappingSet want = OracleEval(e, doc);
  EXPECT_EQ(got, want) << "query: " << e->ToString() << "\nplan: "
                       << q.PlanString() << "\ndoc: \"" << doc.text()
                       << "\"\ngot:  " << got.ToString(&doc)
                       << "\nwant: " << want.ToString(&doc);
  return want.size();
}

// ---- expression construction -------------------------------------------

TEST(SpannerExprTest, VarsPropagateThroughOperators) {
  ExprPtr p1 = MustPattern("x{a*}b");
  ExprPtr p2 = MustPattern("a y{b*}");
  EXPECT_EQ(p1->vars().ToString(), "{x}");
  EXPECT_EQ(SpannerExpr::Union(p1, p2)->vars().size(), 2u);
  EXPECT_EQ(SpannerExpr::NaturalJoin(p1, p2)->vars().size(), 2u);
  VarSet keep;
  keep.Insert(Variable::Intern("y"));
  EXPECT_EQ(SpannerExpr::Project(SpannerExpr::Union(p1, p2), keep)->vars()
                .ToString(),
            "{y}");
}

TEST(SpannerExprTest, SelectEqRequiresInputVariables) {
  ExprPtr p = MustPattern("x{a*} y{b*}");
  EXPECT_TRUE(
      SpannerExpr::SelectEq(p, Variable::Intern("x"), Variable::Intern("y"))
          .ok());
  EXPECT_FALSE(
      SpannerExpr::SelectEq(p, Variable::Intern("x"), Variable::Intern("z"))
          .ok());
}

TEST(SpannerExprTest, SelectEqOperandsAreNormalised) {
  ExprPtr p = MustPattern("x{a*} y{b*}");
  auto xy = SpannerExpr::SelectEq(p, Variable::Intern("y"),
                                  Variable::Intern("x"));
  ASSERT_TRUE(xy.ok());
  EXPECT_EQ(Variable::Name((*std::move(xy).value()).eq_x()), "x");
}

TEST(SpannerExprTest, RuleProgramLeafParsesRules) {
  auto e = SpannerExpr::RuleProgram({"a x{.*} && x.(b* y{.*})"});
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->rules().size(), 1u);
  EXPECT_TRUE((*e)->vars().Contains(Variable::Intern("x")));
  EXPECT_TRUE((*e)->vars().Contains(Variable::Intern("y")));
}

// ---- parser -------------------------------------------------------------

TEST(QueryParserTest, RoundTripsCanonicalText) {
  const char* queries[] = {
      "rgx(\"x{a*}b\")",
      "union(rgx(\"x{a}\"), rgx(\"x{b}\"))",
      "join(rgx(\"x{a*}.*\"), rgx(\".*y{b*}\"))",
      "project(union(rgx(\"x{a} y{b}\"), rgx(\"x{b} y{a}\")), x)",
      "eq(rgx(\"x{[ab]*}c(y{[ab]*})\"), x, y)",
      "rule(\"a(x{.*}) && x.(b*)\")",
  };
  for (const char* text : queries) {
    ExprPtr e = MustParse(text);
    ExprPtr again = MustParse(e->ToString());
    EXPECT_EQ(e->ToString(), again->ToString()) << text;
  }
}

TEST(QueryParserTest, StringEscapes) {
  // \" unescapes to a quote, \\ to one backslash, \e passes through for
  // the RGX parser.
  ExprPtr e = MustParse("rgx(\"a\\\\\\\\b|\\\\e\")");
  EXPECT_EQ(e->pattern(), "a\\\\b|\\e");
}

TEST(QueryParserTest, NaryUnionAndJoinFoldLeft) {
  ExprPtr e = MustParse(
      "union(rgx(\"x{a}\"), rgx(\"x{b}\"), rgx(\"x{ab}\"))");
  ASSERT_EQ(e->kind(), SpannerExpr::Kind::kUnion);
  EXPECT_EQ(e->child(0)->kind(), SpannerExpr::Kind::kUnion);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("frobnicate(rgx(\"a\"))").ok());
  EXPECT_FALSE(ParseQuery("rgx(\"unterminated").ok());
  EXPECT_FALSE(ParseQuery("union(rgx(\"a\"))").ok());
  EXPECT_FALSE(ParseQuery("eq(rgx(\"x{a}\"), x, missing)").ok());
  EXPECT_FALSE(ParseQuery("rgx(\"a\") trailing").ok());
  EXPECT_FALSE(ParseQuery("rgx(\"[\")").ok());  // RGX error propagates
}

// ---- pushdown shape -----------------------------------------------------

TEST(QueryCompileTest, UnionAndProjectionFuseIntoOneScan) {
  ExprPtr e = MustParse(
      "project(union(rgx(\"x{a} y{b*}\"), rgx(\"x{b} y{a*}\")), x)");
  CompiledQuery q = MustCompile(e);
  EXPECT_EQ(q.num_scans(), 1u) << q.PlanString();
  EXPECT_EQ(q.vars().ToString(), "{x}");
}

TEST(QueryCompileTest, JoinLowersToRelationalOperator) {
  ExprPtr e = MustParse("join(rgx(\"x{a*}.*\"), rgx(\".*y{b*}\"))");
  CompiledQuery q = MustCompile(e);
  EXPECT_EQ(q.num_scans(), 2u);
  EXPECT_EQ(q.PlanString().substr(0, 5), "join(");
}

TEST(QueryCompileTest, SelectEqLowersAboveScan) {
  ExprPtr e = MustParse("eq(rgx(\"x{[ab]*}c(y{[ab]*})\"), x, y)");
  CompiledQuery q = MustCompile(e);
  EXPECT_EQ(q.num_scans(), 1u);
  EXPECT_EQ(q.PlanString().substr(0, 10), "select_eq[");
}

TEST(QueryCompileTest, UnionAboveJoinStaysRelationalOnThatBranch) {
  ExprPtr e = MustParse(
      "union(join(rgx(\"x{a}.*\"), rgx(\".*y{b}\")), rgx(\"x{b} y{a}\"))");
  CompiledQuery q = MustCompile(e);
  EXPECT_EQ(q.num_scans(), 3u);
  EXPECT_EQ(q.PlanString().substr(0, 6), "union(");
}

// ---- fixed-case correctness --------------------------------------------

TEST(QueryEvalTest, UnionMatchesOracle) {
  ExprPtr e = MustParse("union(rgx(\"x{a}b*\"), rgx(\"a*(x{b})\"))");
  EXPECT_EQ(ExpectMatchesOracle(e, Document("ab")), 2u);
  EXPECT_GT(ExpectMatchesOracle(e, Document("aab")), 0u);
  ExpectMatchesOracle(e, Document(""));
}

TEST(QueryEvalTest, JoinOnSharedVariableMatchesOracle) {
  // x must be the same span in both operands.
  ExprPtr e = MustParse(
      "join(rgx(\"x{a*}b.*\"), rgx(\"x{[ab]*}b(y{.*})\"))");
  EXPECT_GT(ExpectMatchesOracle(e, Document("aabab")), 0u);
  EXPECT_GT(ExpectMatchesOracle(e, Document("bb")), 0u);
}

TEST(QueryEvalTest, CrossProductJoinMatchesOracle) {
  ExprPtr e = MustParse("join(rgx(\".*x{a}.*\"), rgx(\".*y{b}.*\"))");
  EXPECT_EQ(ExpectMatchesOracle(e, Document("abab")), 4u);
}

TEST(QueryEvalTest, JoinWithPartialMappingsMatchesOracle) {
  // The ε branches leave x unassigned on some outputs, exercising the
  // partial-mapping compatibility scan of the join on both sides.
  ExprPtr e = MustParse(
      "join(rgx(\"(x{a}|\\e)b.*\"), rgx(\"(x{a}|\\e)b(y{b*})\"))");
  EXPECT_GT(ExpectMatchesOracle(e, Document("abb")), 0u);
  EXPECT_GT(ExpectMatchesOracle(e, Document("bb")), 0u);
  ExpectMatchesOracle(e, Document("b"));
  ExpectMatchesOracle(e, Document("ba"));
}

TEST(QueryEvalTest, SelectEqMatchesOracle) {
  ExprPtr e = MustParse("eq(rgx(\"x{[ab]*}c(y{[ab]*})\"), x, y)");
  EXPECT_EQ(ExpectMatchesOracle(e, Document("abcab")), 1u);
  EXPECT_EQ(ExpectMatchesOracle(e, Document("abcba")), 0u);
  ExpectMatchesOracle(e, Document("cc"));
  EXPECT_GT(ExpectMatchesOracle(e, Document("c")), 0u);  // ε == ε
}

TEST(QueryEvalTest, ProjectOverJoinMatchesOracle) {
  ExprPtr e = MustParse(
      "project(join(rgx(\"x{a*}b.*\"), rgx(\"x{a*}b(y{.*})\")), y)");
  EXPECT_GT(ExpectMatchesOracle(e, Document("aabb")), 0u);
}

TEST(QueryEvalTest, RuleProgramLeafMatchesOracle) {
  ExprPtr e = MustParse("rule(\"a(x{.*}) && x.(b*)\")");
  EXPECT_EQ(ExpectMatchesOracle(e, Document("abb")), 1u);
  EXPECT_EQ(ExpectMatchesOracle(e, Document("ab")), 1u);
  EXPECT_EQ(ExpectMatchesOracle(e, Document("ba")), 0u);
}

TEST(QueryEvalTest, JoinOfRuleAndPatternMatchesOracle) {
  ExprPtr e = MustParse(
      "join(rule(\"a(x{.*}) && x.(b*)\"), rgx(\"a(x{b*})\"))");
  EXPECT_EQ(ExpectMatchesOracle(e, Document("abb")), 1u);
  EXPECT_EQ(ExpectMatchesOracle(e, Document("a")), 1u);
}

// ---- randomized cross-check against the oracle --------------------------

TEST(QueryRandomizedTest, AlgebraMatchesOracleOnRandomDocuments) {
  std::mt19937 rng(20260727);
  workload::RandomRgxOptions opts;
  opts.max_depth = 3;
  opts.num_vars = 2;
  opts.letters = "ab";
  size_t checked = 0;
  for (int round = 0; round < 40; ++round) {
    RgxPtr r1 = workload::RandomRgx(opts, &rng);
    RgxPtr r2 = workload::RandomRgx(opts, &rng);
    auto p1r = SpannerExpr::Pattern(ToPattern(r1));
    auto p2r = SpannerExpr::Pattern(ToPattern(r2));
    ASSERT_TRUE(p1r.ok()) << ToPattern(r1);
    ASSERT_TRUE(p2r.ok()) << ToPattern(r2);
    ExprPtr p1 = std::move(p1r).value();
    ExprPtr p2 = std::move(p2r).value();

    std::vector<ExprPtr> exprs;
    exprs.push_back(SpannerExpr::Union(p1, p2));
    exprs.push_back(SpannerExpr::NaturalJoin(p1, p2));
    VarSet keep;
    keep.Insert(Variable::Intern("x0"));
    exprs.push_back(SpannerExpr::Project(SpannerExpr::Union(p1, p2), keep));
    exprs.push_back(
        SpannerExpr::Project(SpannerExpr::NaturalJoin(p1, p2), keep));
    ExprPtr joined = SpannerExpr::NaturalJoin(p1, p2);
    if (joined->vars().Contains(Variable::Intern("x0")) &&
        joined->vars().Contains(Variable::Intern("x1"))) {
      auto eq = SpannerExpr::SelectEq(joined, Variable::Intern("x0"),
                                      Variable::Intern("x1"));
      ASSERT_TRUE(eq.ok());
      exprs.push_back(std::move(eq).value());
    }

    std::uniform_int_distribution<size_t> len(0, 5);
    for (int d = 0; d < 3; ++d) {
      Document doc = workload::RandomDocument("ab", len(rng), &rng);
      for (const ExprPtr& e : exprs) {
        ExpectMatchesOracle(e, doc);
        ++checked;
      }
    }
  }
  // Sanity: the loop really exercised a few hundred (expr, doc) pairs.
  EXPECT_GT(checked, 400u);
}

// ---- plan cache ---------------------------------------------------------

TEST(QueryCacheTest, RuleProgramLeavesAreServedFromPlanCache) {
  PlanCache cache;
  ExprPtr e = MustParse(
      "join(rule(\"a(x{.*}) && x.(b*)\"), rgx(\"a(x{b*})\"))");
  MustCompile(e, &cache);
  auto after_first = cache.stats();
  // Both scan leaves resident, both compiled exactly once.
  EXPECT_EQ(after_first.size, 2u);
  EXPECT_EQ(after_first.misses, 2u);

  MustCompile(e, &cache);
  auto after_second = cache.stats();
  EXPECT_EQ(after_second.misses, after_first.misses) << "recompiled a leaf";
  EXPECT_GE(after_second.hits, after_first.hits + 2) << "cache not hit";

  // The rule leaf is addressable by its (prefixed) canonical text.
  EXPECT_NE(cache.Peek(QueryPlanCacheKey("rule(\"a(x{.*}) && x.(b*)\")")),
            nullptr);
}

TEST(QueryCacheTest, FusedSubtreesShareLeafCompilations) {
  PlanCache cache;
  ExprPtr u = MustParse("union(rgx(\"x{a}\"), rgx(\"x{b}\"))");
  CompiledQuery q = MustCompile(u, &cache);
  EXPECT_EQ(q.num_scans(), 1u);
  // Leaves were cached individually plus the fused scan.
  EXPECT_NE(cache.Peek(QueryPlanCacheKey("rgx(\"x{a}\")")), nullptr);
  EXPECT_NE(cache.Peek(QueryPlanCacheKey("union(rgx(\"x{a}\"), rgx(\"x{b}\"))")),
            nullptr);

  // A second query reusing one leaf hits its cached plan.
  auto before = cache.stats();
  MustCompile(MustParse("join(rgx(\"x{a}\"), rgx(\"y{b}\"))"), &cache);
  EXPECT_GE(cache.stats().hits, before.hits + 1);
}

TEST(QueryCacheTest, RawPatternAndCanonicalQueryKeysDoNotCollide) {
  PlanCache cache;
  // A raw RGX pattern whose text is exactly the canonical form of a
  // query: it matches the literal string rgx("a"), not the letter a.
  auto literal = cache.GetOrCompile("rgx(\"a\")");
  ASSERT_TRUE(literal.ok());
  CompiledQuery q = MustCompile(MustParse("rgx(\"a\")"), &cache);

  Document doc("a");
  EXPECT_EQ(q.Extract(doc).size(), 1u);  // the pattern `a` matches
  EXPECT_TRUE((*literal)->Extract(doc).empty());  // the literal does not
  EXPECT_EQ(cache.stats().size, 2u);  // two distinct entries

  // Nor can a malformed pattern spelling a reserved query key be served
  // the query's cached plan: it fails to compile, as without a cache.
  EXPECT_FALSE(cache.GetOrCompile(QueryPlanCacheKey("rgx(\"a\")")).ok());
}

// ---- engine integration -------------------------------------------------

TEST(QueryBatchTest, BatchOutputIsThreadCountIndependent) {
  workload::CorpusOptions co;
  co.documents = 60;
  co.rows_per_document = 2;
  Corpus corpus(workload::ServerLogCorpus(co));

  ExprPtr e = MustParse(
      "union(rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) (p{[^ \\n]*}) "
      "[0-9]+( err=(c{[a-z]+})|\\e)\\n.*\"), "
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ GET (p{[^ \\n]*}) [0-9]+\\n.*\"))");
  CompiledQuery q = MustCompile(e);

  BatchOptions o1;
  o1.num_threads = 1;
  BatchOptions o8;
  o8.num_threads = 8;
  o8.min_docs_per_shard = 4;
  BatchResult r1 = BatchExtractor(o1).Extract(q, corpus);
  BatchResult r8 = BatchExtractor(o8).Extract(q, corpus);
  ASSERT_EQ(r1.per_doc.size(), r8.per_doc.size());
  EXPECT_EQ(r1.per_doc, r8.per_doc);
  EXPECT_GT(r1.total_mappings, 0u);
}

TEST(QueryBatchTest, FormattingSinkStreamsRowsWithoutMaterializing) {
  ExprPtr e = MustParse("join(rgx(\"x{a*}b.*\"), rgx(\"x{a*}b(y{b*})\"))");
  CompiledQuery q = MustCompile(e);
  Document doc("aabb");
  PlanScratch scratch;

  // Stream straight from the operator tree into formatted rows.
  std::string streamed;
  engine::FormattingSink rows(engine::OutputFormat::kTsv, 0, q.vars(), doc,
                              &streamed, &scratch.pool);
  q.ExtractTo(doc, &scratch, rows);

  // Reference: materialize + format, then compare as line multisets
  // (streaming order is the producer's, not sorted).
  std::vector<Mapping> out;
  q.ExtractSortedInto(doc, &scratch, &out);
  std::vector<std::string> want;
  for (const Mapping& m : out)
    want.push_back(engine::ToTsvRow(0, m, q.vars(), doc));
  std::vector<std::string> got;
  size_t start = 0;
  while (start < streamed.size()) {
    size_t nl = streamed.find('\n', start);
    got.push_back(streamed.substr(start, nl - start));
    start = nl + 1;
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(rows.rows(), out.size());
  EXPECT_GT(rows.rows(), 0u);
}

TEST(QueryBatchTest, ExtractSortedIntoReusesScratchAcrossDocuments) {
  ExprPtr e = MustParse("join(rgx(\"x{a*}b.*\"), rgx(\"x{a*}b(y{b*})\"))");
  CompiledQuery q = MustCompile(e);
  PlanScratch scratch;
  std::vector<Mapping> out;
  std::mt19937 rng(7);
  for (int i = 0; i < 20; ++i) {
    Document doc = workload::RandomDocument("ab", 6, &rng);
    q.ExtractSortedInto(doc, &scratch, &out);
    MappingSet got(out);
    EXPECT_EQ(got, OracleEval(e, doc)) << doc.text();
  }
  // The pool captured recycled mapping storage along the way.
  EXPECT_GE(scratch.pool.free_count(), 0u);
}

}  // namespace
}  // namespace query
}  // namespace spanners
