// Tests for single-pass multi-query extraction: byte-identity of
// ExtractMulti against running every plan alone (the gate may reorganize
// work, never change results) across thread counts, ordered streaming,
// per-plan skip counters, and the PlanCache-resident entry point.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

std::vector<std::shared_ptr<const ExtractionPlan>> CompileAll(
    const std::vector<std::string>& patterns) {
  std::vector<std::shared_ptr<const ExtractionPlan>> plans;
  for (const std::string& p : patterns)
    plans.push_back(std::make_shared<const ExtractionPlan>(
        ExtractionPlan::Compile(p).ValueOrDie()));
  return plans;
}

// ExtractMulti must be byte-identical to per-plan extraction for every
// plan, across thread counts {1, 2, 8} — the ISSUE's acceptance bar.
TEST(MultiQueryTest, FleetByteIdenticalToPerPlanExtractionAcrossThreads) {
  workload::FleetOptions o;
  o.num_patterns = 12;
  o.documents = 160;
  o.doc_bytes = 300;
  o.match_rate = 0.05;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  auto plans = CompileAll(generated.patterns);
  MultiQueryExtractor fleet(plans);

  // Ground truth: each plan alone, through fresh (gated) plans so the
  // fleet's shared counters/caches cannot leak into the expectation.
  std::vector<std::vector<std::vector<Mapping>>> expected;
  {
    BatchOptions bo;
    bo.num_threads = 1;
    BatchExtractor extractor(bo);
    for (const std::string& p : generated.patterns) {
      ExtractionPlan alone = ExtractionPlan::Compile(p).ValueOrDie();
      expected.push_back(extractor.Extract(alone, corpus).per_doc);
    }
  }

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);
    MultiBatchResult result = extractor.ExtractMulti(fleet, corpus);
    ASSERT_EQ(result.per_plan.size(), plans.size());
    for (size_t p = 0; p < plans.size(); ++p)
      EXPECT_EQ(result.per_plan[p].per_doc, expected[p])
          << "plan " << p << " threads " << threads;
  }
}

// Random formulas (not fleet-shaped: some without any usable literal, so
// part of the fleet is AC-gated and part falls through to the DFA tier).
TEST(MultiQueryTest, RandomPlansGatedFleetMatchesUngatedFleet) {
  std::mt19937 rng(59);
  workload::RandomRgxOptions o;
  o.num_vars = 2;
  o.letters = "ab";
  std::uniform_int_distribution<size_t> len_pick(0, 10);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::shared_ptr<const ExtractionPlan>> plans;
    std::vector<std::shared_ptr<const ExtractionPlan>> plain_plans;
    for (int p = 0; p < 6; ++p) {
      RgxPtr rgx = workload::RandomRgx(o, &rng);
      plans.push_back(std::make_shared<const ExtractionPlan>(
          ExtractionPlan::FromSpanner(Spanner::FromRgx(rgx))));
      auto plain = std::make_shared<ExtractionPlan>(
          ExtractionPlan::FromSpanner(Spanner::FromRgx(rgx)));
      plain->set_gating_enabled(false);
      plain_plans.push_back(std::move(plain));
    }
    std::vector<Document> docs;
    for (int i = 0; i < 40; ++i)
      docs.push_back(workload::RandomDocument("ab", len_pick(rng), &rng));
    Corpus corpus(std::move(docs));

    MultiQueryExtractor gated(plans);
    MultiQueryExtractor ungated(plain_plans);
    ungated.set_gating_enabled(false);

    for (size_t threads : {1u, 2u}) {
      BatchOptions bo;
      bo.num_threads = threads;
      bo.min_docs_per_shard = 4;
      BatchExtractor extractor(bo);
      MultiBatchResult got = extractor.ExtractMulti(gated, corpus);
      MultiBatchResult want = extractor.ExtractMulti(ungated, corpus);
      for (size_t p = 0; p < plans.size(); ++p)
        ASSERT_EQ(got.per_plan[p].per_doc, want.per_plan[p].per_doc)
            << "round " << round << " plan " << p << " threads " << threads;
    }
  }
}

TEST(MultiQueryTest, ExtractMultiStreamMatchesExtractMultiInOrder) {
  workload::FleetOptions o;
  o.num_patterns = 6;
  o.documents = 120;
  o.doc_bytes = 200;
  o.match_rate = 0.05;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  MultiQueryExtractor fleet(CompileAll(generated.patterns));

  BatchOptions ro;
  ro.num_threads = 1;
  MultiBatchResult want = BatchExtractor(ro).ExtractMulti(fleet, corpus);

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);
    std::vector<std::vector<std::vector<Mapping>>> streamed(
        fleet.num_plans());
    size_t calls = 0;
    BatchExtractor::StreamStats stats = extractor.ExtractMultiStream(
        fleet, corpus,
        [&](size_t doc_begin, size_t doc_end,
            std::vector<std::vector<std::vector<Mapping>>>& per_plan) {
          ASSERT_EQ(per_plan.size(), fleet.num_plans());
          ASSERT_EQ(doc_begin, streamed[0].size()) << "shards out of order";
          ASSERT_EQ(doc_end - doc_begin, per_plan[0].size());
          for (size_t p = 0; p < per_plan.size(); ++p)
            for (auto& ms : per_plan[p]) streamed[p].push_back(std::move(ms));
          ++calls;
        });
    EXPECT_EQ(calls, stats.shards);
    EXPECT_EQ(stats.total_mappings, want.total_mappings);
    for (size_t p = 0; p < fleet.num_plans(); ++p)
      EXPECT_EQ(streamed[p], want.per_plan[p].per_doc)
          << "plan " << p << " threads " << threads;
  }
}

TEST(MultiQueryTest, PerPlanStatsAccountForEveryDocument) {
  workload::FleetOptions o;
  o.num_patterns = 4;
  o.documents = 100;
  o.doc_bytes = 200;
  o.match_rate = 0.1;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  MultiQueryExtractor fleet(CompileAll(generated.patterns));
  EXPECT_EQ(fleet.num_gated_plans(), 4u);
  EXPECT_GT(fleet.num_gate_literals(), 0u);

  BatchOptions bo;
  bo.num_threads = 2;
  MultiBatchResult result = BatchExtractor(bo).ExtractMulti(fleet, corpus);

  for (size_t p = 0; p < fleet.num_plans(); ++p) {
    PlanStats s = fleet.plan_stats(p);
    EXPECT_EQ(s.documents, corpus.size()) << p;
    // Every document is either rejected by the shared AC pass (no tag
    // literal), the remaining-clause prefilter tier, the DFA tier, or
    // extracted; the fleet corpus is built so AC rejections = non-needle
    // documents exactly.
    EXPECT_EQ(s.ac_gate_skipped + s.prefilter_skipped + s.dfa_skipped +
                  result.per_plan[p].MatchedDocuments(),
              corpus.size())
        << p;
    EXPECT_GT(s.ac_gate_skipped, 0u) << p;
    EXPECT_EQ(s.mappings, result.per_plan[p].total_mappings) << p;
    EXPECT_FALSE(s.ToString().empty());
  }
  EXPECT_NE(fleet.ToString().find("4 plans"), std::string::npos);
}

TEST(MultiQueryTest, FromCacheGathersResidentPlansDeterministically) {
  PlanCache cache;
  cache.GetOrCompile(".*bbb(x{a*}).*").ValueOrDie();
  cache.GetOrCompile(".*aaa(x{a*}).*").ValueOrDie();
  std::vector<std::pair<std::string,
                        std::shared_ptr<const ExtractionPlan>>>
      resident = cache.ResidentPlans();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0].first, ".*aaa(x{a*}).*");  // key-sorted
  EXPECT_EQ(resident[1].first, ".*bbb(x{a*}).*");

  MultiQueryExtractor fleet = MultiQueryExtractor::FromCache(cache);
  ASSERT_EQ(fleet.num_plans(), 2u);
  EXPECT_EQ(fleet.plan(0).pattern(), ".*aaa(x{a*}).*");

  Corpus corpus = Corpus::FromDelimited("aaa\nbbbaa\nzzz");
  MultiBatchResult result = BatchExtractor().ExtractMulti(fleet, corpus);
  EXPECT_EQ(result.per_plan[0].MatchedDocuments(), 1u);  // "aaa"
  EXPECT_EQ(result.per_plan[1].MatchedDocuments(), 1u);  // "bbbaa"
}

TEST(MultiQueryTest, EmptyCorpusAndEmptyFleet) {
  MultiQueryExtractor empty_fleet(
      std::vector<std::shared_ptr<const ExtractionPlan>>{});
  BatchExtractor extractor;
  MultiBatchResult r = extractor.ExtractMulti(empty_fleet, Corpus());
  EXPECT_TRUE(r.per_plan.empty());
  EXPECT_EQ(r.total_mappings, 0u);

  auto plans = CompileAll({"x{a*}"});
  MultiQueryExtractor fleet(plans);
  r = extractor.ExtractMulti(fleet, Corpus());
  ASSERT_EQ(r.per_plan.size(), 1u);
  EXPECT_TRUE(r.per_plan[0].per_doc.empty());

  size_t calls = 0;
  BatchExtractor::StreamStats stats = extractor.ExtractMultiStream(
      fleet, Corpus(),
      [&](size_t, size_t, std::vector<std::vector<std::vector<Mapping>>>&) {
        ++calls;
      });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(stats.total_mappings, 0u);
}

// Plans with no extractable literal (match-all prefilter) must flow
// through the fleet untouched by the AC tier.
TEST(MultiQueryTest, UngateablePlansStillExtractEverything) {
  auto plans = CompileAll({"x{a*}", ".*needle(y{[0-9]+}).*"});
  MultiQueryExtractor fleet(plans);
  EXPECT_EQ(fleet.num_gated_plans(), 1u);
  Corpus corpus = Corpus::FromDelimited("aa\nneedle7\n");
  MultiBatchResult result = BatchExtractor().ExtractMulti(fleet, corpus);
  EXPECT_EQ(result.per_plan[0].MatchedDocuments(), 1u);  // "aa" only
  EXPECT_EQ(result.per_plan[1].MatchedDocuments(), 1u);
  PlanStats s0 = fleet.plan_stats(0);
  EXPECT_EQ(s0.ac_gate_skipped, 0u);  // no clauses: AC cannot reject it
}

// CachedFleet must reuse the built fleet while the cache's membership is
// unchanged — hits bump recency, not the generation — and rebuild exactly
// when a plan is inserted, evicted or the cache cleared.
TEST(MultiQueryTest, CachedFleetRebuildsOnlyWhenMembershipChanges) {
  PlanCache cache;
  CachedFleet cached(cache);

  std::shared_ptr<const MultiQueryExtractor> f0 = cached.Get();
  EXPECT_EQ(f0->num_plans(), 0u);
  EXPECT_EQ(cached.rebuilds(), 1u);
  EXPECT_EQ(cached.Get(), f0);  // no change: same fleet, no rebuild
  EXPECT_EQ(cached.rebuilds(), 1u);

  cache.GetOrCompile(".*aaa(x{b*}).*").ValueOrDie();
  std::shared_ptr<const MultiQueryExtractor> f1 = cached.Get();
  EXPECT_EQ(cached.rebuilds(), 2u);
  EXPECT_EQ(f1->num_plans(), 1u);
  EXPECT_NE(f1, f0);

  // Cache HITS must not invalidate the fleet.
  for (int i = 0; i < 5; ++i)
    cache.GetOrCompile(".*aaa(x{b*}).*").ValueOrDie();
  EXPECT_EQ(cached.Get(), f1);
  EXPECT_EQ(cached.rebuilds(), 2u);

  cache.GetOrCompile(".*ccc(x{d*}).*").ValueOrDie();
  EXPECT_EQ(cached.Get()->num_plans(), 2u);
  EXPECT_EQ(cached.rebuilds(), 3u);

  cache.Clear();
  EXPECT_EQ(cached.Get()->num_plans(), 0u);
  EXPECT_EQ(cached.rebuilds(), 4u);
  // The fleet handed out before Clear stays usable (shared ownership).
  EXPECT_EQ(f1->num_plans(), 1u);
}

// Interleaved inserts and capacity evictions: after every membership
// change the cached fleet's output must be identical to a fleet built
// fresh from ResidentPlans() — the cached path may only skip rebuilds,
// never serve a stale membership.
TEST(MultiQueryTest, CachedFleetInterleavedInsertEvictStaysIdentical) {
  PlanCacheOptions po;
  po.capacity = 3;  // small: inserts beyond 3 evict the LRU plan
  PlanCache cache(po);
  CachedFleet cached(cache);
  Corpus corpus = Corpus::FromDelimited(
      "tag00 payload\ntag01 payload\ntag02 payload\ntag03 payload\n"
      "tag04 payload\nnothing here\ntag02 again and tag04");
  BatchExtractor extractor;

  uint64_t last_generation = cache.generation();
  for (int step = 0; step < 12; ++step) {
    char pattern[64];
    std::snprintf(pattern, sizeof(pattern), ".*tag%02d (x{[a-z]+}).*",
                  step % 5);
    cache.GetOrCompile(pattern).ValueOrDie();
    if (step % 3 == 2)  // re-touch an old pattern: hit, membership intact
      cache.GetOrCompile(".*tag00 (x{[a-z]+}).*").ValueOrDie();

    std::shared_ptr<const MultiQueryExtractor> got = cached.Get();
    MultiQueryExtractor want = MultiQueryExtractor::FromCache(cache);
    ASSERT_EQ(got->num_plans(), want.num_plans()) << "step " << step;
    MultiBatchResult got_r = extractor.ExtractMulti(*got, corpus);
    MultiBatchResult want_r = extractor.ExtractMulti(want, corpus);
    ASSERT_EQ(got_r.per_plan.size(), want_r.per_plan.size());
    for (size_t p = 0; p < want_r.per_plan.size(); ++p)
      ASSERT_EQ(got_r.per_plan[p].per_doc, want_r.per_plan[p].per_doc)
          << "step " << step << " plan " << p;

    // Sanity on the generation contract itself: membership changed on
    // insert/evict steps, so the counter moved; size never exceeds cap.
    EXPECT_LE(cache.stats().size, po.capacity);
    EXPECT_GE(cache.generation(), last_generation);
    last_generation = cache.generation();
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // 5 distinct patterns cycled through a 3-slot cache: far fewer rebuilds
  // than Get() calls would be wrong here (every insert evicts), but the
  // hit-only steps must not have forced extra rebuilds beyond membership
  // changes. Upper bound: one rebuild per Get() call; the real assertion
  // is identity above — this pins that rebuilds at least happened.
  EXPECT_GE(cached.rebuilds(), 5u);
}

}  // namespace
}  // namespace engine
}  // namespace spanners
