// Fault-injection sweep (src/common/fault.h). Under an armed schedule,
// every injection point must yield the trichotomy the subsystem promises:
// a clean Status out of the faulted operation, invariants intact (no
// readable half-file, tmp unlinked on unwind, balanced server
// accounting), and post-fault operation byte-identical to a fault-free
// run. Includes fork-based crash simulation ('kill' at each storage
// point) proving pre-rename crashes leave no visible file, and
// client-layer retry tests against a live in-process server.
//
// In a default build (SPANNERS_FAULTS=OFF) the subsystem is compiled out:
// the spec parser refuses with NotSupported and every behavioral test
// skips. CI runs this binary from a -DSPANNERS_FAULTS=ON build.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/file_io.h"

namespace spanners {
namespace {

using engine::Corpus;
using engine::ExtractionPlan;
using engine::OutputFormat;

/// Disarms on scope exit so one test's schedule never leaks into the
/// next (the registry is process-global).
struct FaultGuard {
  ~FaultGuard() { fault::Clear(); }
};

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "spanners_fault_test_" + tag + "_" +
         std::to_string(::getpid());
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out;
  out.assign(std::istreambuf_iterator<char>(in), {});
  return out;
}

// ---- spec grammar --------------------------------------------------------

TEST(FaultSpecTest, CompiledOutConfigureIsNotSupported) {
  if (fault::kCompiledIn) GTEST_SKIP() << "faults compiled in";
  Status st = fault::Configure("storage.write=fail");
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
  EXPECT_TRUE(fault::ConfigureFromEnv().ok() ||
              ::getenv("SPANNERS_FAULT") != nullptr);
  const fault::Action a = SPANNERS_FAULT("storage.write");
  EXPECT_FALSE(a.fail);
  EXPECT_FALSE(a.fired());
  EXPECT_FALSE(fault::Armed());
}

TEST(FaultSpecTest, ValidSpecsParse) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  for (const char* spec : {
           "storage.write=fail",
           "storage.write=fail,errno=ENOSPC,after=3",
           "server.read=short,bytes=1",
           "client.recv=fail,errno=ECONNRESET,count=1",
           "storage.rename=kill",
           "storage.fsync=delay,ms=1",
           "storage.open=fail,errno=5",
           "storage.write=fail,prob=0.5,seed=42",
           "server.read=short,bytes=2;server.write=short,bytes=2",
       }) {
    EXPECT_TRUE(fault::Configure(spec).ok()) << spec;
  }
  // Empty spec disarms.
  EXPECT_TRUE(fault::Configure("").ok());
  EXPECT_FALSE(fault::Armed());
}

TEST(FaultSpecTest, MalformedSpecsRejected) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  for (const char* spec : {
           "nosuch.point=fail",           // unregistered point
           "storage.write",               // no kind
           "storage.write=explode",       // unknown kind
           "storage.write=fail,errno=EWHAT",  // unknown errno name
           "storage.write=fail,bogus=1",  // unknown param
           "storage.write=fail,after=x",  // non-numeric
           "storage.write=fail,prob=2",   // out of [0,1]
       }) {
    Status st = fault::Configure(spec);
    EXPECT_FALSE(st.ok()) << spec;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << spec;
  }
  // A refused spec must not leave a half-armed schedule behind.
  EXPECT_FALSE(fault::Armed());
  // Empty segments (shell-composed "$A;$B" with one empty) are skipped.
  EXPECT_TRUE(fault::Configure(";").ok());
  EXPECT_FALSE(fault::Armed());
}

TEST(FaultSpecTest, EveryRegisteredPointConfigures) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  for (size_t i = 0; i < fault::kNumPoints; ++i) {
    EXPECT_TRUE(
        fault::Configure(std::string(fault::kPoints[i]) + "=fail,count=1")
            .ok())
        << fault::kPoints[i];
  }
}

// ---- deterministic schedules ---------------------------------------------

TEST(FaultScheduleTest, AfterEveryCountFireExactly) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  // Skip 2 hits, then fire every 2nd eligible hit, at most 2 times:
  // 0-based hits 2 and 4 fire, nothing else ever.
  ASSERT_TRUE(
      fault::Configure("storage.write=fail,errno=ENOSPC,after=2,every=2,count=2")
          .ok());
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    const fault::Action a = SPANNERS_FAULT("storage.write");
    fired.push_back(a.fail);
    if (a.fail) EXPECT_EQ(a.err, ENOSPC);
  }
  const std::vector<bool> expected = {false, false, true, false, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::FiredCount("storage.write"), 2u);
  EXPECT_EQ(fault::HitCount("storage.write"), 10u);
  EXPECT_EQ(fault::FiredCount(), 2u);
  // Points without a rule pass through untouched.
  EXPECT_FALSE(SPANNERS_FAULT("storage.fsync").fired());
}

TEST(FaultScheduleTest, ProbScheduleIsDeterministicPerSeed) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  auto run = [](const char* spec) {
    EXPECT_TRUE(fault::Configure(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(SPANNERS_FAULT("server.read").fail);
    return fired;
  };
  const std::vector<bool> a = run("server.read=fail,prob=0.5,seed=7");
  const std::vector<bool> b = run("server.read=fail,prob=0.5,seed=7");
  EXPECT_EQ(a, b);  // same seed, same schedule
  size_t fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  const std::vector<bool> c = run("server.read=fail,prob=0.5,seed=8");
  EXPECT_NE(a, c);  // different seed, different schedule
}

// ---- storage durability under injected faults ----------------------------

/// Every fail-able storage point × a representative errno set: the write
/// must unwind with a clean error, leave the old file byte-identical and
/// no tmp behind; after disarming the same write must succeed.
TEST(StorageFaultTest, FailUnwindLeavesOldFileIntact) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string old_bytes = "old contents, must survive\n";
  const std::string new_bytes(8192, 'N');
  for (const char* point : {"storage.open", "storage.write", "storage.fsync",
                            "storage.rename"}) {
    for (const char* err : {"EIO", "ENOSPC", "EDQUOT"}) {
      const std::string path =
          TempPath(std::string("unwind_") + point + "_" + err);
      ASSERT_TRUE(fault::Configure("").ok());
      ASSERT_TRUE(storage::WriteFileDurable(path, old_bytes).ok());

      ASSERT_TRUE(fault::Configure(std::string(point) + "=fail,errno=" + err)
                      .ok());
      Status st = storage::WriteFileDurable(path, new_bytes);
      ASSERT_FALSE(st.ok()) << point << " " << err;
      EXPECT_GE(fault::FiredCount(point), 1u);
      EXPECT_EQ(ReadFile(path), old_bytes) << point << " " << err;
      EXPECT_FALSE(PathExists(path + ".tmp")) << point << " " << err;

      // Disarmed, the identical write must go through byte-exact.
      ASSERT_TRUE(fault::Configure("").ok());
      ASSERT_TRUE(storage::WriteFileDurable(path, new_bytes).ok());
      EXPECT_EQ(ReadFile(path), new_bytes);
      std::remove(path.c_str());
    }
  }
}

/// storage.dirsync is the documented exception: the rename happened, so
/// the new file stays visible and valid — only its crash-durability is in
/// doubt, and the Status says so.
TEST(StorageFaultTest, DirsyncFailureLeavesVisibleValidFile) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string path = TempPath("dirsync");
  ASSERT_TRUE(fault::Configure("storage.dirsync=fail,errno=EIO").ok());
  const std::string bytes = "fully written and renamed\n";
  Status st = storage::WriteFileDurable(path, bytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("file is visible"), std::string::npos);
  EXPECT_EQ(ReadFile(path), bytes);
  EXPECT_FALSE(PathExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(StorageFaultTest, ShortWritesLoopToCompletion) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string path = TempPath("short");
  std::string bytes;
  for (int i = 0; i < 4096; ++i) bytes += char('a' + i % 26);
  // Every write clamped to 1 byte: 4096 partial transfers, same file.
  ASSERT_TRUE(fault::Configure("storage.write=short,bytes=1").ok());
  ASSERT_TRUE(storage::WriteFileDurable(path, bytes).ok());
  EXPECT_EQ(ReadFile(path), bytes);
  EXPECT_GE(fault::FiredCount("storage.write"), bytes.size());
  // A bounded clamp burst mid-stream must also converge.
  ASSERT_TRUE(
      fault::Configure("storage.write=short,bytes=7,after=2,count=5").ok());
  ASSERT_TRUE(storage::WriteFileDurable(path, bytes).ok());
  EXPECT_EQ(ReadFile(path), bytes);
  std::remove(path.c_str());
}

TEST(StorageFaultTest, EintrStormIsRetriedTransparently) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string path = TempPath("eintr");
  const std::string bytes(1024, 'e');
  // 100 consecutive EINTRs on write: the loop must absorb every one and
  // still produce the exact file.
  ASSERT_TRUE(
      fault::Configure("storage.write=fail,errno=EINTR,count=100").ok());
  ASSERT_TRUE(storage::WriteFileDurable(path, bytes).ok());
  EXPECT_EQ(fault::FiredCount("storage.write"), 100u);
  EXPECT_EQ(ReadFile(path), bytes);
  std::remove(path.c_str());
}

// ---- crash simulation (fork + 'kill' at each sync point) -----------------

/// Forks; the child arms `spec`, attempts the overwrite and _exit(0)s if
/// it survives. Returns the child's exit status.
int CrashingWrite(const std::string& spec, const std::string& path,
                  const std::string& bytes) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: no gtest, no exceptions — syscalls and _exit only.
    if (!fault::Configure(spec).ok()) ::_exit(3);
    Status st = storage::WriteFileDurable(path, bytes);
    ::_exit(st.ok() ? 0 : 4);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

/// Crash before the rename (open/write/fsync/rename itself): the target
/// path must be untouched — absent for a first write, old bytes for an
/// overwrite. Crash after the rename (dirsync): the new file is visible
/// and complete. Never a readable half-file.
TEST(StorageCrashTest, KillAtEachPointNeverLeavesTornFile) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string old_bytes = "pre-crash contents\n";
  const std::string new_bytes(8192, 'C');
  for (const char* point : {"storage.open", "storage.write", "storage.fsync",
                            "storage.rename", "storage.dirsync"}) {
    const bool pre_rename = std::string(point) != "storage.dirsync";

    // Fresh write: pre-rename crashes must leave NO visible file.
    {
      const std::string path = TempPath(std::string("crash_fresh_") + point);
      ASSERT_EQ(CrashingWrite(std::string(point) + "=kill", path, new_bytes),
                137)
          << point;
      if (pre_rename) {
        EXPECT_FALSE(PathExists(path)) << point;
      } else {
        EXPECT_EQ(ReadFile(path), new_bytes) << point;
      }
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }

    // Overwrite: pre-rename crashes must leave the old bytes readable.
    {
      const std::string path = TempPath(std::string("crash_over_") + point);
      ASSERT_TRUE(storage::WriteFileDurable(path, old_bytes).ok());
      ASSERT_EQ(CrashingWrite(std::string(point) + "=kill", path, new_bytes),
                137)
          << point;
      EXPECT_EQ(ReadFile(path), pre_rename ? old_bytes : new_bytes) << point;
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }
}

// ---- server + client under injected faults -------------------------------

Corpus TestCorpus() {
  Corpus corpus;
  corpus.Add(Document("ERR 123 alpha beta"));
  corpus.Add(Document("WARN 77 gamma"));
  corpus.Add(Document("nothing to see"));
  corpus.Add(Document("ERR 9 delta ERR 10"));
  corpus.Add(Document(""));
  corpus.Add(Document("WARN 5 epsilon ERR 42"));
  return corpus;
}

const char* kErrPattern = ".*ERR x{[0-9]+}.*";

std::string OfflineOutput(const std::string& pattern, const Corpus& corpus) {
  auto plan = std::make_shared<const ExtractionPlan>(
      ExtractionPlan::Compile(pattern).ValueOrDie());
  engine::BatchOptions options;
  options.num_threads = 2;
  engine::BatchExtractor batch(options);
  std::string out;
  const VarSet& vars = plan->vars();
  out += engine::TsvHeader(vars);
  out += '\n';
  batch.ExtractStream(*plan, corpus,
                      [&](size_t doc_begin, size_t doc_end,
                          std::vector<std::vector<Mapping>>& per_doc) {
                        for (size_t i = doc_begin; i < doc_end; ++i)
                          for (const Mapping& m : per_doc[i - doc_begin])
                            engine::AppendMappingRow(&out, OutputFormat::kTsv,
                                                     i, m, vars, corpus[i]);
                      });
  return out;
}

class RunningServer {
 public:
  explicit RunningServer(server::ServerOptions options = {}) {
    if (options.socket_path.empty())
      options.socket_path = testing::TempDir() + "spanexd_fault_test_" +
                            std::to_string(reinterpret_cast<uintptr_t>(this)) +
                            ".sock";
    socket_path_ = options.socket_path;
    options.num_threads = 2;
    server_.emplace(std::move(options), TestCorpus());
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { exit_code_ = server_->Serve(); });
  }

  ~RunningServer() { Shutdown(); }

  int Shutdown() {
    if (thread_.joinable()) {
      server_->RequestDrain();
      thread_.join();
    }
    std::remove(socket_path_.c_str());
    return exit_code_;
  }

  server::Server& server() { return *server_; }
  const std::string& socket_path() const { return socket_path_; }

 private:
  std::optional<server::Server> server_;
  std::string socket_path_;
  std::thread thread_;
  int exit_code_ = -1;
};

std::string CollectBatch(server::Client& client, Status* status) {
  std::string out;
  Result<server::Client::ExtractSummary> result = client.ExtractBatch(
      OutputFormat::kTsv, /*header=*/true, /*all_resident=*/false,
      [&](const std::string& row) {
        out += row;
        out += '\n';
      });
  *status = result.status();
  return out;
}

TEST(ClientFaultTest, ConnectWithRetrySurvivesInjectedRefusal) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  ASSERT_TRUE(
      fault::Configure("client.connect=fail,errno=ECONNREFUSED,count=1").ok());
  server::RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  Result<server::Client> client =
      server::Client::ConnectWithRetry(rs.socket_path(), {}, policy);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client.value().retries_performed(), 1u);
  EXPECT_TRUE(client.value().Ping().ok());
}

TEST(ClientFaultTest, ConnectWithoutRetryFailsFast) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  ASSERT_TRUE(
      fault::Configure("client.connect=fail,errno=ECONNREFUSED,count=1").ok());
  Result<server::Client> client = server::Client::Connect(rs.socket_path());
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

/// A dropped connection mid-stream: the armed client reconnects,
/// re-registers the session's plans, replays the batch, and `on_row`
/// still sees every row exactly once — byte-identical to offline.
TEST(ClientFaultTest, RecvFaultMidStreamRetriesExactlyOnce) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  Result<server::Client> connected = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(connected.ok());
  server::Client client = std::move(connected).value();
  server::RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  client.set_retry_policy(policy);
  ASSERT_TRUE(client.Register(kErrPattern).ok());

  // First recv after arming dies ECONNRESET; everything after is clean.
  ASSERT_TRUE(
      fault::Configure("client.recv=fail,errno=ECONNRESET,count=1").ok());
  Status status;
  const std::string served = CollectBatch(client, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(client.retries_performed(), 1u);
  EXPECT_EQ(served, OfflineOutput(kErrPattern, TestCorpus()));
}

TEST(ClientFaultTest, SendFaultRetriesTransparently) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  Result<server::Client> connected = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(connected.ok());
  server::Client client = std::move(connected).value();
  server::RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_backoff_ms = 1;
  client.set_retry_policy(policy);
  ASSERT_TRUE(fault::Configure("client.send=fail,errno=EPIPE,count=1").ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(client.retries_performed(), 1u);
}

TEST(ClientFaultTest, ExhaustedRetriesReturnUnavailable) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  Result<server::Client> connected = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(connected.ok());
  server::Client client = std::move(connected).value();
  server::RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_backoff_ms = 1;
  client.set_retry_policy(policy);
  // Every send dies: 1 try + 2 retries, then the failure surfaces.
  ASSERT_TRUE(fault::Configure("client.send=fail,errno=EPIPE").ok());
  Status st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.retries_performed(), 2u);
}

/// Server-side read/write faults: connections die, but the server's
/// accounting stays balanced and fresh traffic serves byte-identically.
TEST(ServerFaultTest, ReadFaultKillsConnNotServer) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  Result<server::Client> connected = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(connected.ok());
  server::Client client = std::move(connected).value();

  // The server's next read of this connection fails EIO and closes it;
  // the client sees the transport die, not a protocol error.
  ASSERT_TRUE(fault::Configure("server.read=fail,errno=EIO,count=1").ok());
  Status st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  // The server survived: a fresh session serves byte-identical rows and
  // the queue drained to empty.
  fault::Clear();
  Result<server::Client> fresh = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh.value().Register(kErrPattern).ok());
  Status batch_status;
  const std::string served = CollectBatch(fresh.value(), &batch_status);
  ASSERT_TRUE(batch_status.ok());
  EXPECT_EQ(served, OfflineOutput(kErrPattern, TestCorpus()));
  const engine::ServerStatsReport stats = rs.server().StatsSnapshot();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(rs.Shutdown(), 0);
}

TEST(ServerFaultTest, ShortServerIoStillByteIdentical) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  RunningServer rs;
  // Server reads requests 3 bytes at a time and writes responses 5 bytes
  // at a time: pure partial-transfer stress, zero behavioral change.
  ASSERT_TRUE(
      fault::Configure("server.read=short,bytes=3;server.write=short,bytes=5")
          .ok());
  Result<server::Client> connected = server::Client::Connect(rs.socket_path());
  ASSERT_TRUE(connected.ok());
  server::Client client = std::move(connected).value();
  ASSERT_TRUE(client.Register(kErrPattern).ok());
  Status status;
  const std::string served = CollectBatch(client, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(served, OfflineOutput(kErrPattern, TestCorpus()));
  EXPECT_GT(fault::FiredCount("server.read"), 1u);
  EXPECT_GT(fault::FiredCount("server.write"), 1u);
}

/// The full sweep the acceptance criteria name: every registered point,
/// failed once under a seeded schedule, yields a clean Status somewhere
/// (never a crash), and after Clear() the system serves byte-identical
/// rows again.
TEST(SweepTest, EveryPointFailsCleanlyAndRecovers) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "faults compiled out";
  FaultGuard guard;
  const std::string expected = OfflineOutput(kErrPattern, TestCorpus());
  for (size_t i = 0; i < fault::kNumPoints; ++i) {
    const std::string point = fault::kPoints[i];
    fault::Clear();
    RunningServer rs;
    server::RetryPolicy policy;
    policy.max_retries = 3;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 5;
    Result<server::Client> connected =
        server::Client::ConnectWithRetry(rs.socket_path(), {}, policy);
    ASSERT_TRUE(connected.ok()) << point;
    server::Client client = std::move(connected).value();
    client.set_retry_policy(policy);

    ASSERT_TRUE(fault::Configure(point + "=fail,count=1").ok()) << point;

    // Storage faults fire in a writer, not the serving path.
    if (point.rfind("storage.", 0) == 0) {
      const std::string path = TempPath("sweep_" + std::to_string(i));
      Status st = storage::WriteFileDurable(path, "sweep bytes");
      if (point == "storage.dirsync") {
        EXPECT_FALSE(st.ok()) << point;  // visible file, reported sync risk
      } else {
        EXPECT_FALSE(st.ok()) << point;
        EXPECT_FALSE(PathExists(path)) << point;
      }
      std::remove(path.c_str());
    }

    // With retries armed, the served path must absorb whatever fired (or
    // remains armed) and still produce byte-identical rows.
    ASSERT_TRUE(client.Register(kErrPattern).ok()) << point;
    Status status;
    const std::string served = CollectBatch(client, &status);
    ASSERT_TRUE(status.ok()) << point << ": " << status.ToString();
    EXPECT_EQ(served, expected) << point;

    const engine::ServerStatsReport stats = rs.server().StatsSnapshot();
    EXPECT_EQ(stats.queue_depth, 0u) << point;
    EXPECT_EQ(rs.Shutdown(), 0) << point;
  }
}

}  // namespace
}  // namespace spanners
