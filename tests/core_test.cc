// Tests for spans, documents, variables and mappings (paper §2).
#include <gtest/gtest.h>

#include "core/document.h"
#include "core/mapping.h"
#include "core/span.h"
#include "core/variable.h"

namespace spanners {
namespace {

TEST(SpanTest, ContentConvention) {
  // The paper's running example: d0 = "Information extraction".
  Document d("Information extraction");
  EXPECT_EQ(d.length(), 23u - 1u);
  EXPECT_EQ(d.content(Span(1, 23)), "Information extraction");
  EXPECT_EQ(d.content(Span(1, 12)), "Information");
  EXPECT_EQ(d.content(Span(13, 23)), "extraction");
  EXPECT_EQ(d.content(Span(5, 5)), "");  // i == j spans ε
}

TEST(SpanTest, Validity) {
  Document d("abc");
  EXPECT_TRUE(d.IsValidSpan(Span(1, 1)));
  EXPECT_TRUE(d.IsValidSpan(Span(1, 4)));
  EXPECT_TRUE(d.IsValidSpan(Span(4, 4)));
  EXPECT_FALSE(d.IsValidSpan(Span(0, 2)));
  EXPECT_FALSE(d.IsValidSpan(Span(2, 5)));
}

TEST(SpanTest, AllSpansCount) {
  Document d("abc");  // n = 3 -> (n+1)(n+2)/2 = 10 spans
  EXPECT_EQ(d.AllSpans().size(), 10u);
}

TEST(SpanTest, SpanAtMatchesAllSpansOrder) {
  // SpanAt is the arithmetic (non-materializing) view of AllSpans: same
  // count, same lexicographic order, for every document length incl. 0.
  for (size_t n : {0u, 1u, 2u, 3u, 7u, 19u}) {
    Document d(std::string(n, 'a'));
    std::vector<Span> all = d.AllSpans();
    ASSERT_EQ(d.NumSpans(), all.size()) << "n=" << n;
    for (size_t i = 0; i < all.size(); ++i)
      EXPECT_EQ(d.SpanAt(i), all[i]) << "n=" << n << " i=" << i;
  }
}

TEST(SpanTest, Concat) {
  Span a(1, 4), b(4, 7), c(5, 7);
  ASSERT_TRUE(a.Concat(b).has_value());
  EXPECT_EQ(*a.Concat(b), Span(1, 7));
  EXPECT_FALSE(a.Concat(c).has_value());
}

TEST(SpanTest, Containment) {
  EXPECT_TRUE(Span(2, 4).ContainedIn(Span(1, 5)));
  EXPECT_TRUE(Span(2, 4).ContainedIn(Span(2, 4)));
  EXPECT_FALSE(Span(1, 5).ContainedIn(Span(2, 4)));
}

TEST(SpanTest, Disjointness) {
  EXPECT_TRUE(Span(1, 3).DisjointWith(Span(3, 5)));
  EXPECT_FALSE(Span(1, 4).DisjointWith(Span(3, 5)));
}

TEST(SpanTest, PointDisjointness) {
  // (1,3) and (3,5) are disjoint as intervals but share the point 3.
  EXPECT_TRUE(Span(1, 3).DisjointWith(Span(3, 5)));
  EXPECT_FALSE(Span(1, 3).PointDisjointWith(Span(3, 5)));
  EXPECT_TRUE(Span(1, 3).PointDisjointWith(Span(4, 6)));
}

TEST(SpanTest, HierarchicalPair) {
  EXPECT_TRUE(HierarchicalPair(Span(1, 5), Span(2, 3)));
  EXPECT_TRUE(HierarchicalPair(Span(1, 2), Span(3, 4)));
  EXPECT_FALSE(HierarchicalPair(Span(1, 4), Span(2, 6)));  // overlap
}

TEST(VariableTest, InterningIsStable) {
  VarId x1 = Variable::Intern("x");
  VarId x2 = Variable::Intern("x");
  VarId y = Variable::Intern("y");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_EQ(Variable::Name(x1), "x");
  EXPECT_EQ(Variable::Name(y), "y");
}

TEST(VarSetTest, SetAlgebra) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y"),
        z = Variable::Intern("z");
  VarSet a({x, y});
  VarSet b({y, z});
  EXPECT_TRUE(a.Contains(x));
  EXPECT_FALSE(a.Contains(z));
  EXPECT_EQ(a.Union(b).size(), 3u);
  EXPECT_EQ(a.Intersect(b).size(), 1u);
  EXPECT_TRUE(a.Intersect(b).Contains(y));
  EXPECT_EQ(a.Minus(b).size(), 1u);
  EXPECT_FALSE(a.DisjointWith(b));
  EXPECT_TRUE(VarSet({x}).SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
}

TEST(MappingTest, EmptyMapping) {
  Mapping m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.Domain().empty());
  EXPECT_FALSE(m.Defines(Variable::Intern("x")));
}

TEST(MappingTest, SetGetErase) {
  VarId x = Variable::Intern("x");
  Mapping m;
  m.Set(x, Span(1, 4));
  ASSERT_TRUE(m.Defines(x));
  EXPECT_EQ(*m.Get(x), Span(1, 4));
  m.Set(x, Span(2, 5));
  EXPECT_EQ(*m.Get(x), Span(2, 5));
  m.Erase(x);
  EXPECT_FALSE(m.Defines(x));
}

TEST(MappingTest, CompatibilityAndUnion) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  Mapping m1 = Mapping::Single(x, Span(1, 4));
  Mapping m2 = Mapping::Single(y, Span(4, 7));
  Mapping m3 = Mapping::Single(x, Span(2, 4));
  EXPECT_TRUE(m1.CompatibleWith(m2));   // disjoint domains
  EXPECT_FALSE(m1.CompatibleWith(m3));  // disagree on x
  EXPECT_TRUE(m1.CompatibleWith(m1));

  std::optional<Mapping> u = Mapping::TryUnion(m1, m2);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u->Get(x), Span(1, 4));
  EXPECT_EQ(*u->Get(y), Span(4, 7));
  EXPECT_FALSE(Mapping::TryUnion(m1, m3).has_value());
}

TEST(MappingTest, SubmappingOf) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  Mapping small = Mapping::Single(x, Span(1, 2));
  Mapping big = small;
  big.Set(y, Span(2, 3));
  EXPECT_TRUE(small.SubmappingOf(big));
  EXPECT_FALSE(big.SubmappingOf(small));
  EXPECT_TRUE(Mapping::Empty().SubmappingOf(small));
}

TEST(MappingTest, Hierarchical) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  Mapping nested = Mapping::Single(x, Span(1, 6));
  nested.Set(y, Span(2, 4));
  EXPECT_TRUE(nested.IsHierarchical());

  Mapping overlap = Mapping::Single(x, Span(1, 4));
  overlap.Set(y, Span(2, 6));
  EXPECT_FALSE(overlap.IsHierarchical());
}

TEST(MappingTest, PointDisjoint) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  Mapping m = Mapping::Single(x, Span(1, 3));
  m.Set(y, Span(4, 6));
  EXPECT_TRUE(m.IsPointDisjoint());
  m.Set(y, Span(3, 6));  // touches x's right endpoint
  EXPECT_FALSE(m.IsPointDisjoint());
}

TEST(MappingTest, Project) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  Mapping m = Mapping::Single(x, Span(1, 3));
  m.Set(y, Span(4, 6));
  Mapping p = m.Project(VarSet({x}));
  EXPECT_TRUE(p.Defines(x));
  EXPECT_FALSE(p.Defines(y));
}

TEST(MappingSetTest, DedupAndUnion) {
  VarId x = Variable::Intern("x");
  MappingSet s;
  s.Insert(Mapping::Single(x, Span(1, 2)));
  s.Insert(Mapping::Single(x, Span(1, 2)));
  EXPECT_EQ(s.size(), 1u);
  MappingSet t;
  t.Insert(Mapping::Single(x, Span(2, 3)));
  EXPECT_EQ(MappingSet::Union(s, t).size(), 2u);
}

TEST(MappingSetTest, JoinSemantics) {
  // M1 ⋈ M2 from the paper: union compatible pairs.
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  MappingSet m1;
  m1.Insert(Mapping::Single(x, Span(1, 2)));
  m1.Insert(Mapping::Single(x, Span(2, 3)));
  MappingSet m2;
  m2.Insert(Mapping::Single(x, Span(1, 2)));  // compatible with first only
  m2.Insert(Mapping::Single(y, Span(5, 6)));  // compatible with both
  MappingSet j = MappingSet::Join(m1, m2);
  // {x->(1,2)}, {x->(1,2),y->(5,6)}, {x->(2,3),y->(5,6)}
  EXPECT_EQ(j.size(), 3u);
  Mapping expect = Mapping::Single(x, Span(2, 3));
  expect.Set(y, Span(5, 6));
  EXPECT_TRUE(j.Contains(expect));
}

TEST(MappingSetTest, JoinWithEmptyMappingActsAsTrue) {
  // The empty mapping is the join identity (it represents TRUE).
  VarId x = Variable::Intern("x");
  MappingSet truth;
  truth.Insert(Mapping::Empty());
  MappingSet m;
  m.Insert(Mapping::Single(x, Span(1, 2)));
  EXPECT_EQ(MappingSet::Join(truth, m).size(), 1u);
  EXPECT_TRUE(MappingSet::Join(truth, m).Contains(Mapping::Single(x, Span(1, 2))));
}

TEST(ExtendedMappingTest, States) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y"),
        z = Variable::Intern("z");
  ExtendedMapping em;
  em.Assign(x, Span(1, 2));
  em.AssignBottom(y);
  EXPECT_EQ(em.StateOf(x), ExtendedMapping::VarState::kAssigned);
  EXPECT_EQ(em.StateOf(y), ExtendedMapping::VarState::kBottom);
  EXPECT_EQ(em.StateOf(z), ExtendedMapping::VarState::kUnconstrained);
  em.Clear(y);
  EXPECT_EQ(em.StateOf(y), ExtendedMapping::VarState::kUnconstrained);
}

TEST(ExtendedMappingTest, ExtendedBy) {
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  ExtendedMapping em;
  em.Assign(x, Span(1, 2));
  em.AssignBottom(y);

  Mapping good = Mapping::Single(x, Span(1, 2));
  EXPECT_TRUE(em.ExtendedBy(good));

  Mapping wrong_span = Mapping::Single(x, Span(1, 3));
  EXPECT_FALSE(em.ExtendedBy(wrong_span));

  Mapping defines_bottom = good;
  defines_bottom.Set(y, Span(2, 2));
  EXPECT_FALSE(em.ExtendedBy(defines_bottom));

  Mapping missing_x = Mapping::Empty();
  EXPECT_FALSE(em.ExtendedBy(missing_x));
}

TEST(ExtendedMappingTest, FromMappingRoundTrip) {
  VarId x = Variable::Intern("x");
  Mapping m = Mapping::Single(x, Span(3, 7));
  ExtendedMapping em = ExtendedMapping::FromMapping(m);
  EXPECT_TRUE(em.ExtendedBy(m));
  EXPECT_EQ(em.AssignedPart(), m);
}

}  // namespace
}  // namespace spanners
