// Tests for the high-level Spanner facade (evaluation dispatch,
// ModelCheck, enumeration).
#include <gtest/gtest.h>

#include "core/spanner.h"
#include "rgx/parser.h"

namespace spanners {
namespace {

TEST(SpannerTest, FromPatternAndExtract) {
  Spanner s = Spanner::FromPattern("x{a*}y{b*}").ValueOrDie();
  EXPECT_TRUE(s.is_sequential());
  EXPECT_EQ(s.vars().size(), 2u);
  Document d("aabb");
  MappingSet out = s.ExtractAll(d);
  EXPECT_EQ(out.size(), 1u);
  Mapping m = Mapping::Single(Variable::Intern("x"), Span(1, 3));
  m.Set(Variable::Intern("y"), Span(3, 5));
  EXPECT_TRUE(out.Contains(m));
}

TEST(SpannerTest, ParseErrorPropagates) {
  Result<Spanner> bad = Spanner::FromPattern("x{a");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpannerTest, NonSequentialDispatch) {
  Spanner s = Spanner::FromPattern("(x{a}|a)*").ValueOrDie();
  EXPECT_FALSE(s.is_sequential());
  Document d("aa");
  EXPECT_TRUE(s.Matches(d));
  EXPECT_EQ(s.ExtractAll(d).size(), 3u);  // ∅, x→(1,2), x→(2,3)
}

TEST(SpannerTest, EvalAndModelCheck) {
  Spanner s = Spanner::FromPattern("x{a*}y{b*}").ValueOrDie();
  Document d("ab");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");

  Mapping good = Mapping::Single(x, Span(1, 2));
  good.Set(y, Span(2, 3));
  EXPECT_TRUE(s.ModelCheck(d, good));

  // A partial mapping extendable to an output is *not* model-checked
  // positively (ModelCheck asks for exact membership)...
  Mapping partial = Mapping::Single(x, Span(1, 2));
  EXPECT_FALSE(s.ModelCheck(d, partial));
  // ...but Eval accepts it as extendable.
  EXPECT_TRUE(s.Eval(d, ExtendedMapping::FromMapping(partial)));

  Mapping wrong = Mapping::Single(x, Span(1, 3));
  wrong.Set(y, Span(3, 3));
  EXPECT_FALSE(s.ModelCheck(d, wrong));
}

TEST(SpannerTest, ModelCheckOnPartialOutputs) {
  // Disjunction with different domains: the partial mapping {x→..} IS an
  // output of the x-branch and must model-check.
  Spanner s = Spanner::FromPattern("x{a}b|a(y{b})").ValueOrDie();
  Document d("ab");
  EXPECT_TRUE(s.ModelCheck(d, Mapping::Single(Variable::Intern("x"),
                                              Span(1, 2))));
  EXPECT_TRUE(s.ModelCheck(d, Mapping::Single(Variable::Intern("y"),
                                              Span(2, 3))));
  EXPECT_FALSE(s.ModelCheck(d, Mapping::Empty()));
}

TEST(SpannerTest, EnumerateAgreesWithExtractAll) {
  for (const char* pat : {"x{a*}y{b*}", "(x{a}|a)*", "x{[^,]*}(,y{.*}|\\e)"}) {
    Spanner s = Spanner::FromPattern(pat).ValueOrDie();
    Document d("a,b");
    MappingEnumerator e = s.Enumerate(d);
    EXPECT_EQ(e.Drain(), s.ExtractAll(d)) << pat;
  }
}

TEST(SpannerTest, FromVaWithoutRgx) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q1);
  a.AddChar(q0, CharSet::Of('z'), q1);
  Spanner s = Spanner::FromVa(a);
  EXPECT_EQ(s.rgx(), nullptr);
  EXPECT_TRUE(s.Matches(Document("z")));
  EXPECT_FALSE(s.Matches(Document("x")));
}

}  // namespace
}  // namespace spanners
