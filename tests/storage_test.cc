// Tests for the persistent corpus storage layer: segment round-trips
// (including empty documents, binary bytes and documents larger than a
// page), the trigram posting index against naive substring-scan ground
// truth, result lifetime after the store closes, and a seeded fuzz sweep
// asserting that EVERY truncation or bit flip of a segment or index file
// is rejected with a clean Status — never accepted, never UB.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "engine/corpus.h"
#include "engine/plan.h"
#include "engine/prefilter.h"
#include "engine/thread_pool.h"
#include "storage/ngram_index.h"
#include "storage/segment.h"
#include "workload/generators.h"

namespace spanners {
namespace storage {
namespace {

using engine::Corpus;

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "spanners_storage_test_" + tag + "_" +
         std::to_string(::getpid()) + ".seg";
}

// A corpus exercising the layout's edge cases: empty documents, interior
// NUL and newline bytes, every byte value, and one document bigger than
// the 4 KiB page size.
Corpus EdgeCaseCorpus() {
  std::vector<Document> docs;
  docs.emplace_back(std::string(""));
  docs.emplace_back(std::string("plain text"));
  docs.emplace_back(std::string("nul\0inside", 10));
  docs.emplace_back(std::string("line1\nline2\n"));
  std::string all_bytes;
  for (int b = 0; b < 256; ++b) all_bytes.push_back(static_cast<char>(b));
  docs.emplace_back(std::move(all_bytes));
  docs.emplace_back(std::string(""));  // empty between non-empty
  docs.emplace_back(std::string(10000, 'x') + "needle" +
                    std::string(3000, 'y'));  // > page_size
  return Corpus(std::move(docs));
}

TEST(SegmentStoreTest, RoundTripPreservesEveryDocumentByte) {
  Corpus corpus = EdgeCaseCorpus();
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SegmentStore::Write(corpus, path).ok());

  Result<SegmentStore> opened = SegmentStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const SegmentStore& store = opened.value();
  ASSERT_EQ(store.num_docs(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(store.doc_view(i), corpus[i].text()) << "doc " << i;
    EXPECT_EQ(store.doc_bytes(i), corpus[i].text().size()) << "doc " << i;
    EXPECT_EQ(store.MaterializeDoc(i).text(), corpus[i].text()) << "doc " << i;
  }
  Corpus all = store.ReadAll();
  ASSERT_EQ(all.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(all[i].text(), corpus[i].text()) << "doc " << i;
  EXPECT_NE(store.ToString().find("docs"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SegmentStoreTest, EmptyCorpusRoundTrips) {
  const std::string path = TempPath("empty");
  ASSERT_TRUE(SegmentStore::Write(Corpus(), path).ok());
  Result<SegmentStore> opened = SegmentStore::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().num_docs(), 0u);
  EXPECT_EQ(opened.value().ReadAll().size(), 0u);
  std::remove(path.c_str());
}

TEST(SegmentStoreTest, ParallelWriteMatchesInlineWrite) {
  workload::CorpusOptions o;
  o.documents = 300;
  Corpus corpus(workload::ServerLogCorpus(o));
  const std::string inline_path = TempPath("inline");
  const std::string pooled_path = TempPath("pooled");
  ASSERT_TRUE(SegmentStore::Write(corpus, inline_path).ok());
  {
    engine::ThreadPool pool(4);
    SegmentWriteOptions wo;
    wo.pool = &pool;
    ASSERT_TRUE(SegmentStore::Write(corpus, pooled_path, wo).ok());
  }
  // Byte-identical files: the pool parallelizes checksumming, nothing else.
  std::string a, b;
  {
    Result<MappedFile> fa = MappedFile::Open(inline_path);
    Result<MappedFile> fb = MappedFile::Open(pooled_path);
    ASSERT_TRUE(fa.ok() && fb.ok());
    a = std::string(fa.value().view());
    b = std::string(fb.value().view());
  }
  EXPECT_EQ(a, b);
  std::remove(inline_path.c_str());
  std::remove(pooled_path.c_str());
}

TEST(SegmentStoreTest, OpenRejectsMissingFile) {
  EXPECT_FALSE(SegmentStore::Open(TempPath("nonexistent")).ok());
}

// Documents materialized from the store copy their bytes: results built
// from them must survive the store (and its mmap) being destroyed.
TEST(SegmentStoreTest, MaterializedDocumentsOutliveTheStore) {
  Corpus corpus = EdgeCaseCorpus();
  const std::string path = TempPath("lifetime");
  ASSERT_TRUE(SegmentStore::Write(corpus, path).ok());

  std::vector<Document> materialized;
  {
    Result<SegmentStore> opened = SegmentStore::Open(path);
    ASSERT_TRUE(opened.ok());
    for (size_t i = 0; i < opened.value().num_docs(); ++i)
      materialized.push_back(opened.value().MaterializeDoc(i));
  }  // store destroyed, mapping gone
  std::remove(path.c_str());
  ASSERT_EQ(materialized.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(materialized[i].text(), corpus[i].text()) << "doc " << i;
}

// ---- n-gram index --------------------------------------------------------

// Ground truth: documents containing `literal` by naive substring scan.
std::vector<uint32_t> NaiveDocsContaining(const Corpus& corpus,
                                          const std::string& literal) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < corpus.size(); ++i)
    if (corpus[i].text().find(literal) != std::string::npos)
      out.push_back(static_cast<uint32_t>(i));
  return out;
}

// candidates(literal) must be a superset of the exact answer (soundness),
// and sorted/deduplicated.
void ExpectSoundSuperset(const std::vector<uint32_t>& candidates,
                         const std::vector<uint32_t>& exact,
                         const std::string& literal) {
  ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end())) << literal;
  for (uint32_t doc : exact)
    EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), doc))
        << "doc " << doc << " contains '" << literal
        << "' but is not a candidate";
}

TEST(NgramIndexTest, LiteralCandidatesAreSoundAndUsuallyExact) {
  workload::CorpusOptions o;
  o.documents = 200;
  Corpus corpus(workload::ServerLogCorpus(o));
  const std::string path = TempPath("idx_sound");
  ASSERT_TRUE(SegmentStore::Write(corpus, path).ok());
  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok());
  NgramIndex index = NgramIndex::Build(store.value());
  EXPECT_EQ(index.num_docs(), corpus.size());
  EXPECT_GT(index.num_terms(), 0u);

  for (const std::string literal :
       {"GET", "POST", "err=", "definitely-not-present", " 200", "GET /"}) {
    LookupStats stats;
    std::vector<uint32_t> candidates =
        index.LiteralCandidates(literal, &stats);
    ExpectSoundSuperset(candidates, NaiveDocsContaining(corpus, literal),
                        literal);
    EXPECT_GT(stats.terms_probed, 0u) << literal;
  }
  // A literal with an absent trigram is provably nowhere.
  LookupStats stats;
  EXPECT_TRUE(index.LiteralCandidates("\x01\x02\x03zzz", &stats).empty());
  std::remove(path.c_str());
}

TEST(NgramIndexTest, SaveOpenRoundTripAnswersIdentically) {
  workload::CorpusOptions o;
  o.documents = 120;
  Corpus corpus(workload::ServerLogCorpus(o));
  const std::string path = TempPath("idx_rt");
  ASSERT_TRUE(SegmentStore::Write(corpus, path).ok());
  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok());

  NgramIndex built = NgramIndex::Build(store.value());
  const std::string idx_path = IndexPathFor(path);
  ASSERT_TRUE(built.Save(idx_path).ok());
  Result<NgramIndex> opened = NgramIndex::Open(idx_path, corpus.size());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().num_terms(), built.num_terms());
  EXPECT_EQ(opened.value().num_docs(), built.num_docs());

  for (const std::string literal : {"GET", "err=", "absent-literal"}) {
    LookupStats s1, s2;
    EXPECT_EQ(built.LiteralCandidates(literal, &s1),
              opened.value().LiteralCandidates(literal, &s2))
        << literal;
  }
  EXPECT_EQ(built.DocFreq("GET"), opened.value().DocFreq("GET"));

  // An index for a different corpus must be refused up front.
  EXPECT_FALSE(NgramIndex::Open(idx_path, corpus.size() + 1).ok());
  std::remove(path.c_str());
  std::remove(idx_path.c_str());
}

TEST(NgramIndexTest, PrefilterCandidatesNarrowAndStaySound) {
  workload::NeedleOptions o;
  o.documents = 400;
  Corpus corpus(workload::NeedleCorpus(o));
  const std::string path = TempPath("idx_pref");
  ASSERT_TRUE(SegmentStore::Write(corpus, path).ok());
  Result<SegmentStore> store = SegmentStore::Open(path);
  ASSERT_TRUE(store.ok());
  NgramIndex index = NgramIndex::Build(store.value());

  engine::ExtractionPlan plan =
      engine::ExtractionPlan::FromSpanner(
          Spanner::FromRgx(workload::NeedleRgx()));
  ASSERT_TRUE(plan.prefilter().CanPrune());
  LookupStats stats;
  CandidateSet cand = index.Candidates(plan.prefilter(), &stats);
  ASSERT_FALSE(cand.all);
  EXPECT_LT(cand.docs.size(), corpus.size());  // 1% selectivity narrows
  // Soundness: every document the prefilter cannot reject is a candidate.
  for (size_t i = 0; i < corpus.size(); ++i)
    if (plan.prefilter().Matches(corpus[i].text()))
      EXPECT_TRUE(std::binary_search(cand.docs.begin(), cand.docs.end(),
                                     static_cast<uint32_t>(i)))
          << "doc " << i;

  // A match-all prefilter cannot narrow: all = true.
  CandidateSet all = index.Candidates(engine::Prefilter(), &stats);
  EXPECT_TRUE(all.all);
  EXPECT_EQ(all.CountIn(corpus.size()), corpus.size());
  std::remove(path.c_str());
}

// ---- corruption fuzzing --------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  Result<MappedFile> f = MappedFile::Open(path);
  EXPECT_TRUE(f.ok());
  return std::string(f.value().view());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty())
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// 200+ seeded rounds of truncation and bit flips at random offsets over
// both file formats. The invariant is absolute: every corrupted load
// returns a failed Status (corruption detected), and none crashes or
// reads out of bounds — the ASan CI job runs this same test.
TEST(StorageCorruptionFuzzTest, EveryTruncationAndBitFlipIsRejected) {
  workload::CorpusOptions o;
  o.documents = 60;
  Corpus corpus(workload::ServerLogCorpus(o));
  const std::string seg_path = TempPath("fuzz");
  const std::string idx_path = IndexPathFor(seg_path);
  ASSERT_TRUE(SegmentStore::Write(corpus, seg_path).ok());
  {
    Result<SegmentStore> store = SegmentStore::Open(seg_path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(NgramIndex::Build(store.value()).Save(idx_path).ok());
  }
  const std::string seg_bytes = ReadFileBytes(seg_path);
  const std::string idx_bytes = ReadFileBytes(idx_path);
  ASSERT_GT(seg_bytes.size(), 0u);
  ASSERT_GT(idx_bytes.size(), 0u);

  const std::string mangled_path = TempPath("fuzz_mangled");
  std::mt19937 rng(20260808);
  int rejected = 0;
  for (int round = 0; round < 240; ++round) {
    const bool is_index = (round % 2) == 1;
    const std::string& pristine = is_index ? idx_bytes : seg_bytes;
    std::string bytes = pristine;
    std::string what;
    if (round % 4 < 2) {
      // Truncate to a strictly shorter length (0 included: empty file).
      std::uniform_int_distribution<size_t> len_pick(0, bytes.size() - 1);
      const size_t len = len_pick(rng);
      bytes.resize(len);
      what = "truncate to " + std::to_string(len);
    } else {
      std::uniform_int_distribution<size_t> pos_pick(0, bytes.size() - 1);
      std::uniform_int_distribution<int> bit_pick(0, 7);
      const size_t pos = pos_pick(rng);
      const int bit = bit_pick(rng);
      bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << bit));
      what = "flip bit " + std::to_string(bit) + " at " + std::to_string(pos);
    }
    WriteFileBytes(mangled_path, bytes);

    if (is_index) {
      Result<NgramIndex> r = NgramIndex::Open(mangled_path, corpus.size());
      EXPECT_FALSE(r.ok()) << "index accepted after " << what;
      if (!r.ok()) ++rejected;
    } else {
      Result<SegmentStore> r = SegmentStore::Open(mangled_path);
      EXPECT_FALSE(r.ok()) << "segment accepted after " << what;
      if (!r.ok()) ++rejected;
    }
  }
  EXPECT_EQ(rejected, 240);
  std::remove(seg_path.c_str());
  std::remove(idx_path.c_str());
  std::remove(mangled_path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace spanners
