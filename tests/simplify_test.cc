// Tests for the RGX simplifier: semantics preservation (property-checked
// against ReferenceEval) and the individual rewrite rules.
#include <gtest/gtest.h>

#include <random>

#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rgx/reference_eval.h"
#include "rgx/simplify.h"
#include "automata/state_elim.h"
#include "automata/thompson.h"
#include "workload/generators.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(StructuralUnsatTest, Detections) {
  EXPECT_TRUE(IsStructurallyUnsatisfiable(RgxNode::Chars(CharSet::None())));
  EXPECT_TRUE(IsStructurallyUnsatisfiable(P("x{x{a}}")));
  EXPECT_TRUE(IsStructurallyUnsatisfiable(P("x{a}x{b}")));
  EXPECT_FALSE(IsStructurallyUnsatisfiable(P("x{a}|x{b}")));
  EXPECT_FALSE(IsStructurallyUnsatisfiable(P("a*")));
  EXPECT_FALSE(IsStructurallyUnsatisfiable(P("\\e")));
}

TEST(SimplifyTest, EpsilonUnits) {
  EXPECT_EQ(ToPattern(SimplifyRgx(P("\\ea\\eb\\e"))), "ab");
}

TEST(SimplifyTest, UnsatisfiableFactorsAbsorb) {
  RgxPtr s = SimplifyRgx(RgxNode::Concat(
      RgxNode::Lit('a'), RgxNode::Chars(CharSet::None())));
  EXPECT_TRUE(IsStructurallyUnsatisfiable(s));
  EXPECT_EQ(s->kind(), RgxKind::kChars);
}

TEST(SimplifyTest, DuplicateDisjunctsMerge) {
  EXPECT_EQ(ToPattern(SimplifyRgx(P("ab|ab|ab"))), "ab");
}

TEST(SimplifyTest, LetterDisjunctsBecomeClass) {
  RgxPtr s = SimplifyRgx(P("a|b|c"));
  ASSERT_EQ(s->kind(), RgxKind::kChars);
  EXPECT_EQ(s->chars().size(), 3u);
}

TEST(SimplifyTest, StarRules) {
  EXPECT_EQ(SimplifyRgx(P("\\e*"))->kind(), RgxKind::kEpsilon);
  EXPECT_EQ(ToPattern(SimplifyRgx(P("(a*)*"))), "a*");
  EXPECT_EQ(SimplifyRgx(RgxNode::Star(RgxNode::Chars(CharSet::None())))
                ->kind(),
            RgxKind::kEpsilon);
}

TEST(SimplifyTest, UnsatVariableBodyPropagates) {
  RgxPtr s = SimplifyRgx(P("x{y{y{a}}}|b"));
  EXPECT_EQ(ToPattern(s), "b");
}

TEST(SimplifyTest, PreservesSemanticsOnRandomFormulas) {
  std::mt19937 rng(31337);
  workload::RandomRgxOptions opt;
  opt.max_depth = 4;
  opt.num_vars = 2;
  for (int trial = 0; trial < 40; ++trial) {
    RgxPtr g = workload::RandomRgx(opt, &rng);
    RgxPtr s = SimplifyRgx(g);
    for (size_t len : {0, 1, 2, 3}) {
      Document d = workload::RandomDocument("ab", len, &rng);
      ASSERT_EQ(ReferenceEval(s, d), ReferenceEval(g, d))
          << ToPattern(g) << "  ->  " << ToPattern(s) << " on \""
          << d.text() << "\"";
    }
  }
}

TEST(SimplifyTest, ShrinksStateEliminationOutput) {
  // The VA→RGX output carries ε noise; simplification must not grow it.
  RgxPtr g = P("x{a*}y{b*}");
  RgxPtr back = VaToRgx(CompileToVa(g)).ValueOrDie();
  RgxPtr slim = SimplifyRgx(back);
  EXPECT_LE(slim->NodeCount(), back->NodeCount());
  for (const char* txt : {"", "ab", "aabb"}) {
    Document d(txt);
    EXPECT_EQ(ReferenceEval(slim, d), ReferenceEval(g, d)) << txt;
  }
}

}  // namespace
}  // namespace spanners
