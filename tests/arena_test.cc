// Tests for the arena memory subsystem: chunked growth and Reset() reuse
// of Arena, ArenaVector semantics, and the flat open-addressing sets
// (FlatKeySet, FlatMappingSet) including collision, tombstone and rehash
// behavior, cross-checked against the std-based MappingSet.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <initializer_list>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "automata/run_eval.h"
#include "core/mapping.h"
#include "core/spanner.h"

namespace spanners {
namespace {

// ---- Arena --------------------------------------------------------------

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  int* a = arena.AllocateArray<int>(10);
  int* b = arena.AllocateArray<int>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  for (int i = 0; i < 10; ++i) {
    a[i] = i;
    b[i] = -i;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], -i);
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  void* p16 = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
}

TEST(ArenaTest, ChunkGrowthOnOverflow) {
  Arena arena(/*first_chunk_bytes=*/128);
  EXPECT_EQ(arena.num_chunks(), 0u);
  arena.Allocate(64);
  EXPECT_EQ(arena.num_chunks(), 1u);
  // Overflow the first chunk several times; chunks grow geometrically.
  for (int i = 0; i < 20; ++i) arena.Allocate(100);
  EXPECT_GT(arena.num_chunks(), 1u);
  EXPECT_GE(arena.bytes_used(), 64u + 20u * 100u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(/*first_chunk_bytes=*/128);
  char* big = arena.AllocateArray<char>(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 'x';
  big[(1 << 20) - 1] = 'y';
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
}

TEST(ArenaTest, ResetReusesChunksWithoutFreeing) {
  Arena arena(/*first_chunk_bytes=*/256);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.num_chunks();
  ASSERT_GT(chunks, 1u);

  // After Reset the same allocation pattern must fit in the retained
  // chunks: no new reservation, same chunk count.
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    for (int i = 0; i < 100; ++i) arena.Allocate(64);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    EXPECT_EQ(arena.num_chunks(), chunks) << "round " << round;
  }
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
  EXPECT_NE(arena.AllocateArray<int>(0), nullptr);
}

// ---- ArenaVector --------------------------------------------------------

TEST(ArenaVectorTest, PushBackGrowthPreservesContents) {
  Arena arena;
  ArenaVector<uint32_t> v(&arena);
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
  v.pop_back();
  EXPECT_EQ(v.size(), 999u);
  EXPECT_EQ(v.back(), 998u * 3);
}

TEST(ArenaVectorTest, ResizeValueInitializesNewElements) {
  Arena arena;
  ArenaVector<uint64_t> v(&arena);
  v.push_back(7);
  v.resize(5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 7u);
  for (size_t i = 1; i < 5; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(ArenaVectorTest, AppendAndClearReuseCapacity) {
  Arena arena;
  ArenaVector<char> v(&arena);
  const char data[] = "abcdef";
  v.append(data, 6);
  EXPECT_EQ(v.size(), 6u);
  const size_t used = arena.bytes_used();
  v.clear();
  v.append(data, 6);  // fits in existing capacity: no new arena traffic
  EXPECT_EQ(arena.bytes_used(), used);
  EXPECT_EQ(std::memcmp(v.data(), data, 6), 0);
}

// ---- FlatKeySet ---------------------------------------------------------

TEST(FlatKeySetTest, InsertReportsNewVsDuplicate) {
  Arena arena;
  FlatKeySet set(&arena);
  auto [p1, fresh1] = set.Insert("alpha", 5);
  EXPECT_TRUE(fresh1);
  auto [p2, fresh2] = set.Insert("alpha", 5);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(p1, p2);  // duplicate returns the originally stored bytes
  auto [p3, fresh3] = set.Insert("alphA", 5);
  EXPECT_TRUE(fresh3);
  EXPECT_NE(p3, p1);
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatKeySetTest, StoredPointersSurviveRehash) {
  Arena arena;
  FlatKeySet set(&arena, /*initial_capacity=*/8);
  std::vector<std::pair<std::string, const char*>> stored;
  for (int i = 0; i < 500; ++i) {
    std::string key = "key-" + std::to_string(i * 977);
    auto [p, fresh] = set.Insert(key.data(), static_cast<uint32_t>(key.size()));
    ASSERT_TRUE(fresh);
    stored.emplace_back(key, p);
  }
  EXPECT_GT(set.rehash_count(), 0u);
  EXPECT_EQ(set.size(), 500u);
  for (const auto& [key, p] : stored) {
    // Still present, still pointing at the same arena bytes.
    auto [q, fresh] = set.Insert(key.data(), static_cast<uint32_t>(key.size()));
    EXPECT_FALSE(fresh);
    EXPECT_EQ(q, p);
    EXPECT_EQ(std::memcmp(p, key.data(), key.size()), 0);
  }
}

TEST(FlatKeySetTest, HandlesEmbeddedNulAndBinaryKeys) {
  Arena arena;
  FlatKeySet set(&arena);
  const char a[] = {0, 1, 0, 2};
  const char b[] = {0, 1, 0, 3};
  EXPECT_TRUE(set.Insert(a, 4).second);
  EXPECT_TRUE(set.Insert(b, 4).second);
  EXPECT_FALSE(set.Insert(a, 4).second);
  // Same prefix, different length.
  EXPECT_TRUE(set.Insert(a, 3).second);
  EXPECT_EQ(set.size(), 3u);
}

// ---- FlatMappingSet -----------------------------------------------------

std::vector<SpanTuple> Tuples(std::initializer_list<SpanTuple> ts) {
  return std::vector<SpanTuple>(ts);
}

TEST(FlatMappingSetTest, InsertContainsAndDuplicates) {
  Arena arena;
  FlatMappingSet set(&arena);
  auto m1 = Tuples({{1, 1, 3}, {2, 3, 5}});
  auto m2 = Tuples({{1, 1, 3}, {2, 3, 6}});
  EXPECT_TRUE(set.Insert(m1.data(), 2));
  EXPECT_FALSE(set.Insert(m1.data(), 2));
  EXPECT_TRUE(set.Insert(m2.data(), 2));
  EXPECT_TRUE(set.Contains(m1.data(), 2));
  EXPECT_TRUE(set.Contains(m2.data(), 2));
  // The empty mapping is a valid member, distinct from any non-empty one.
  EXPECT_TRUE(set.Insert(nullptr, 0));
  EXPECT_FALSE(set.Insert(nullptr, 0));
  EXPECT_EQ(set.size(), 3u);
}

TEST(FlatMappingSetTest, CollisionsResolvedByProbing) {
  // With capacity 8 and many inserts, slot collisions are guaranteed;
  // correctness must not depend on hash spread.
  Arena arena;
  FlatMappingSet set(&arena, /*initial_capacity=*/8);
  std::vector<std::vector<SpanTuple>> rows;
  for (uint32_t i = 0; i < 200; ++i)
    rows.push_back(Tuples({{1, i + 1, i + 2}, {2, i + 2, i + 40}}));
  for (auto& r : rows) ASSERT_TRUE(set.Insert(r.data(), 2));
  EXPECT_EQ(set.size(), 200u);
  for (auto& r : rows) EXPECT_TRUE(set.Contains(r.data(), 2));
  EXPECT_GT(set.rehash_count(), 0u);
}

TEST(FlatMappingSetTest, EraseplantsTombstoneAndReinsertWorks) {
  Arena arena;
  FlatMappingSet set(&arena);
  auto m1 = Tuples({{1, 1, 2}});
  auto m2 = Tuples({{1, 2, 3}});
  auto m3 = Tuples({{1, 3, 4}});
  set.Insert(m1.data(), 1);
  set.Insert(m2.data(), 1);
  set.Insert(m3.data(), 1);

  EXPECT_TRUE(set.Erase(m2.data(), 1));
  EXPECT_FALSE(set.Erase(m2.data(), 1));  // already gone
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.tombstones(), 1u);
  EXPECT_FALSE(set.Contains(m2.data(), 1));
  EXPECT_TRUE(set.Contains(m1.data(), 1));
  EXPECT_TRUE(set.Contains(m3.data(), 1));

  // Reinsert after erase: the insert reuses the first tombstone on its
  // probe path (group probing keeps lookups correct past tombstones).
  EXPECT_TRUE(set.Insert(m2.data(), 1));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.tombstones(), 0u);
  EXPECT_TRUE(set.Contains(m2.data(), 1));
}

TEST(FlatMappingSetTest, RandomizedInsertEraseAgreesWithReference) {
  std::mt19937 rng(11);
  Arena arena;
  FlatMappingSet flat(&arena, /*initial_capacity=*/8);
  std::set<std::pair<uint32_t, uint32_t>> reference;  // (begin, end) of var 1
  for (int op = 0; op < 5000; ++op) {
    uint32_t b = rng() % 40 + 1;
    uint32_t e = b + rng() % 4;
    SpanTuple t{1, b, e};
    switch (rng() % 3) {
      case 0:
        EXPECT_EQ(flat.Insert(&t, 1), reference.insert({b, e}).second)
            << "op " << op;
        break;
      case 1:
        EXPECT_EQ(flat.Erase(&t, 1), reference.erase({b, e}) > 0)
            << "op " << op;
        break;
      case 2:
        EXPECT_EQ(flat.Contains(&t, 1), reference.count({b, e}) > 0)
            << "op " << op;
        break;
    }
    ASSERT_EQ(flat.size(), reference.size()) << "op " << op;
  }
}

TEST(FlatMappingSetTest, RehashSweepsTombstones) {
  Arena arena;
  FlatMappingSet set(&arena, /*initial_capacity=*/8);
  std::vector<std::vector<SpanTuple>> rows;
  for (uint32_t i = 0; i < 50; ++i)
    rows.push_back(Tuples({{7, i + 1, i + 5}}));
  for (auto& r : rows) set.Insert(r.data(), 1);
  for (size_t i = 0; i < rows.size(); i += 2) set.Erase(rows[i].data(), 1);
  EXPECT_GT(set.tombstones(), 0u);

  // Grow past the load threshold to force a rehash.
  std::vector<std::vector<SpanTuple>> more;
  for (uint32_t i = 100; i < 200; ++i)
    more.push_back(Tuples({{7, i + 1, i + 5}}));
  for (auto& r : more) set.Insert(r.data(), 1);

  EXPECT_EQ(set.tombstones(), 0u);  // swept by the rehash
  for (size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(set.Contains(rows[i].data(), 1), i % 2 == 1) << i;
  for (auto& r : more) EXPECT_TRUE(set.Contains(r.data(), 1));
}

TEST(FlatMappingSetTest, ForEachVisitsEveryLiveMappingOnce) {
  Arena arena;
  FlatMappingSet set(&arena);
  for (uint32_t i = 0; i < 30; ++i) {
    auto m = Tuples({{3, i + 1, i + 2}});
    set.Insert(m.data(), 1);
  }
  auto erased = Tuples({{3, 5, 6}});
  set.Erase(erased.data(), 1);

  std::set<uint32_t> begins;
  set.ForEach([&](const SpanTuple* t, uint32_t n) {
    ASSERT_EQ(n, 1u);
    EXPECT_TRUE(begins.insert(t->begin).second) << "visited twice";
  });
  EXPECT_EQ(begins.size(), 29u);
  EXPECT_EQ(begins.count(5), 0u);
}

TEST(FlatMappingSetTest, AgreesWithMappingSetOnRandomInput) {
  std::mt19937 rng(7);
  Arena arena;
  FlatMappingSet flat(&arena);
  MappingSet reference;
  for (int i = 0; i < 2000; ++i) {
    uint32_t nvars = rng() % 4;
    std::vector<SpanTuple> tuples;
    Mapping m;
    for (uint32_t v = 1; v <= nvars; ++v) {
      uint32_t b = rng() % 6 + 1;
      uint32_t e = b + rng() % 4;
      tuples.push_back(SpanTuple{v, b, e});
      m.Set(v, Span(b, e));
    }
    bool flat_new =
        flat.Insert(tuples.data(), static_cast<uint32_t>(tuples.size()));
    bool ref_new = !reference.Contains(m);
    reference.Insert(m);
    EXPECT_EQ(flat_new, ref_new) << "insert #" << i;
  }
  EXPECT_EQ(flat.size(), reference.size());
}

// ---- arena-backed evaluation matches the wrapper API --------------------

TEST(ArenaEvalTest, RunEvalIntoMatchesRunEvalAndIsReusable) {
  Spanner s = Spanner::FromPattern(
                  ".*Seller: (x{[^,\\n]*}), Tax: (y{[0-9]*}).*")
                  .ValueOrDie();
  std::vector<Document> docs = {
      Document("a,Seller: Alice, Tax: 12,z\nb,Seller: Bob, Tax: 7,w\n"),
      Document("nothing here"),
      Document("Seller: Carol, Tax: 99"),
  };
  Arena arena;  // one arena reused across all documents
  for (const Document& doc : docs) {
    std::vector<Mapping> got;
    RunEvalInto(s.va(), doc, &arena, &got);
    std::sort(got.begin(), got.end());
    std::vector<Mapping> want = RunEval(s.va(), doc).Sorted();
    EXPECT_EQ(got, want) << doc.text();
  }
}

}  // namespace
}  // namespace spanners
