// Tests for the telemetry subsystem: sharded counter/histogram merge
// correctness (including under 8-thread concurrent extraction), the
// enable gate (metrics on vs off must not change extraction output for
// any thread count), trace ring-buffer bounding, and the perf-counter
// graceful-fallback contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/report.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace spanners {
namespace obs {
namespace {

/// Every test leaves telemetry the way it found it (off) so test order
/// cannot leak recording into unrelated suites.
struct ObsGuard {
  ~ObsGuard() {
    SetEnabled(false);
    Trace::Disable();
  }
};

// ---- Counter / Histogram ------------------------------------------------

TEST(CounterTest, ConcurrentAddsMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Load(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Load(), 0u);
}

TEST(HistogramTest, PowerOfTwoBucketing) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);  // [2,4) → bucket 2
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // The top bucket absorbs everything ≥ 2^62 (no out-of-bounds index).
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(HistogramTest, ConcurrentRecordsMergeExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i)
        h.Record(static_cast<uint64_t>(t));  // thread t records value t
    });
  for (std::thread& t : threads) t.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  // sum = Σ t·kPerThread = kPerThread · (0+1+…+7)
  EXPECT_EQ(s.sum, kPerThread * 28);
  uint64_t bucketed = 0;
  for (const auto& [bucket, n] : s.buckets) bucketed += n;
  EXPECT_EQ(bucketed, s.count);
}

TEST(HistogramTest, PercentileIsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket 4: [8,16)
  h.Record(1000);  // bucket 10: [512,1024)
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Percentile(0.5), 15u);   // 2^4 - 1
  EXPECT_EQ(s.Percentile(1.0), 1023u);  // max lands in bucket 10
}

// ---- Registry -----------------------------------------------------------

TEST(MetricsRegistryTest, StablePointersAndSortedSnapshot) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("b.second");
  Counter* b = r.GetCounter("a.first");
  EXPECT_EQ(r.GetCounter("b.second"), a);  // same name, same metric
  a->Add(2);
  b->Add(1);
  r.GetHistogram("z.hist")->Record(7);
  MetricsSnapshot s = r.Snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a.first");  // name-sorted
  EXPECT_EQ(s.counters[0].second, 1u);
  EXPECT_EQ(s.counters[1].second, 2u);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].name, "z.hist");
  EXPECT_EQ(s.histograms[0].count, 1u);

  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"z.hist\""), std::string::npos);

  r.Reset();
  EXPECT_EQ(a->Load(), 0u);  // pointers survive Reset
}

// ---- ObsSpan gate -------------------------------------------------------

TEST(ObsSpanTest, RecordsOnlyWhenEnabled) {
  ObsGuard guard;
  MetricsRegistry r;
  Histogram* h = r.GetHistogram("test.span_ns");
  SetEnabled(false);
  { ObsSpan span(h); }
  EXPECT_EQ(h->Count(), 0u);
  SetEnabled(true);
  { ObsSpan span(h); }
#ifdef SPANNERS_OBS_DISABLED
  EXPECT_EQ(h->Count(), 0u);  // compiled out entirely
#else
  EXPECT_EQ(h->Count(), 1u);
#endif
}

// ---- Engine integration -------------------------------------------------

engine::Corpus SmallFleetCorpus(size_t docs) {
  workload::FleetOptions fo;
  fo.documents = docs;
  fo.doc_bytes = 450;
  fo.num_patterns = 4;
  workload::PatternFleet fleet = workload::MakePatternFleet(fo);
  return engine::Corpus(std::move(fleet.documents));
}

TEST(ObsEngineTest, SnapshotMergeMatchesPlanStatsUnder8Threads) {
  ObsGuard guard;
  MetricsRegistry::Global().Reset();
  SetEnabled(true);

  engine::Corpus corpus = SmallFleetCorpus(400);
  auto plan = engine::ExtractionPlan::Compile(
      "x{[A-Z][A-Z][A-Z][0-9][0-9]} id=y{[0-9]+}.*");
  ASSERT_TRUE(plan.ok());

  engine::BatchOptions options;
  options.num_threads = 8;
  engine::BatchExtractor batch(options);
  engine::BatchResult result = batch.Extract(plan.value(), corpus);
  SetEnabled(false);

  const engine::PlanStats stats = plan.value().stats();
  EXPECT_EQ(stats.documents, corpus.size());
  EXPECT_EQ(stats.mappings, result.total_mappings);

#ifndef SPANNERS_OBS_DISABLED
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto counter = [&snap](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    return 0;
  };
  auto hist_count = [&snap](const std::string& name) -> uint64_t {
    for (const HistogramSnapshot& h : snap.histograms)
      if (h.name == name) return h.count;
    return 0;
  };
  // The registry's merged counters agree with the plan's own stats: every
  // offered document landed in exactly one outcome, and the evaluator
  // histogram saw exactly the evaluated documents.
  EXPECT_EQ(counter("engine.documents"), stats.documents);
  EXPECT_EQ(counter("engine.mappings"), stats.mappings);
  EXPECT_EQ(counter("engine.prefilter_skipped"), stats.prefilter_skipped);
  EXPECT_EQ(counter("engine.dfa_skipped"), stats.dfa_skipped);
  EXPECT_EQ(counter("engine.evaluated"), stats.evaluated());
  EXPECT_EQ(counter("engine.prefilter_skipped") +
                counter("engine.dfa_skipped") + counter("engine.evaluated"),
            counter("engine.documents"));
  EXPECT_EQ(hist_count("engine.doc_ns"), corpus.size());
  EXPECT_EQ(hist_count("tier.eval_run_enum_ns") +
                hist_count("tier.eval_sequential_ns") +
                hist_count("tier.eval_fpt_ns"),
            stats.evaluated());
#endif
}

std::string ExtractAll(const engine::DocumentExtractor& extractor,
                       const engine::Corpus& corpus, size_t threads) {
  engine::BatchOptions options;
  options.num_threads = threads;
  engine::BatchExtractor batch(options);
  engine::BatchResult result = batch.Extract(extractor, corpus);
  std::string out;
  for (size_t i = 0; i < result.per_doc.size(); ++i)
    for (const Mapping& m : result.per_doc[i])
      out += engine::ToTsvRow(i, m, extractor.vars(), corpus[i]) + "\n";
  return out;
}

TEST(ObsEngineTest, MetricsOnOffOutputByteIdentity) {
  ObsGuard guard;
  engine::Corpus corpus = SmallFleetCorpus(200);
  auto plan = engine::ExtractionPlan::Compile(
      "x{[A-Z][A-Z][A-Z][0-9][0-9]} id=y{[0-9]+}.*");
  ASSERT_TRUE(plan.ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetEnabled(false);
    const std::string off = ExtractAll(plan.value(), corpus, threads);
    SetEnabled(true);
    const std::string on = ExtractAll(plan.value(), corpus, threads);
    SetEnabled(false);
    EXPECT_EQ(off, on) << "threads=" << threads;
    EXPECT_FALSE(off.empty());
  }
}

// ---- Trace ring ---------------------------------------------------------

TEST(TraceTest, RingBoundsRetainedEventsAndKeepsNewest) {
  ObsGuard guard;
  Trace::Enable(/*events_per_thread=*/16);
  for (uint64_t i = 0; i < 100; ++i) Trace::Emit("e", i * 10, 5, i);
  std::vector<TraceEvent> events;
  const uint64_t dropped = Trace::Drain(&events);
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(dropped, 84u);
  // The ring keeps the newest window, ordered by start time.
  EXPECT_EQ(events.front().arg, 84u);
  EXPECT_EQ(events.back().arg, 99u);
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
}

TEST(TraceTest, WriteChromeJsonIsParseableShape) {
  ObsGuard guard;
  Trace::Enable(64);
  Trace::Emit("alpha", 1000, 50, 7);
  Trace::Emit("beta", 2000, 25, 8);
  std::ostringstream os;
  Trace::WriteChromeJson(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(TraceTest, EmitIsNoOpWhenDisabled) {
  ObsGuard guard;
  Trace::Disable();
  Trace::Emit("ignored", 0, 1, 0);
  Trace::Enable(16);
  std::vector<TraceEvent> events;
  Trace::Drain(&events);
  EXPECT_TRUE(events.empty());
}

// ---- Perf counters ------------------------------------------------------

TEST(PerfCountersTest, UnavailableIsGracefulNoOp) {
  // The contract under ANY kernel/container: construction never throws,
  // Start/Stop never crash, and Read().valid reflects available().
  PerfCounterGroup group;
  group.Start();
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 100'000; ++i) sink += i;
  group.Stop();
  PerfCounterGroup::Values v = group.Read();
  EXPECT_EQ(v.valid, group.available());
  if (v.valid) {
    EXPECT_GT(v.cycles, 0u);
    EXPECT_GT(v.instructions, 0u);
  } else {
    EXPECT_EQ(v.cycles, 0u);
    EXPECT_EQ(v.instructions, 0u);
  }
}

// ---- Report -------------------------------------------------------------

TEST(EngineReportTest, TextAndJsonRenderConsistently) {
  engine::EngineReport report;
  engine::PlanReport plan;
  plan.label = "q0";
  plan.info = "sequential; prefilter lit(\"x\")";
  plan.stats.documents = 100;
  plan.stats.mappings = 7;
  plan.stats.ac_gate_skipped = 90;
  plan.stats.prefilter_skipped = 2;
  plan.stats.dfa_skipped = 1;
  report.plans.push_back(plan);
  report.have_cache = true;
  report.cache.size = 1;
  report.cache.hits = 3;
  report.cache.misses = 1;
  report.documents = 100;
  report.total_mappings = 7;
  report.matched_documents = 5;
  report.shards = 4;
  report.threads = 8;
  report.wall_ns = 1'500'000;

  const std::string text = report.ToText("spanex: ");
  EXPECT_NE(text.find("q0 100 docs: 93 skipped (93.0%"), std::string::npos);
  EXPECT_NE(text.find("7 evaluated (7.0%)"), std::string::npos);
  EXPECT_NE(text.find("plan cache: 1 plans, 3 hits, 1 misses"),
            std::string::npos);
  EXPECT_NE(text.find("1.5 ms"), std::string::npos);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"evaluated\":7"), std::string::npos);
  // The info string's quotes must be escaped, not break the object.
  EXPECT_NE(json.find("prefilter lit(\\\"x\\\")"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":1500000"), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);  // not requested
}

}  // namespace
}  // namespace obs
}  // namespace spanners
