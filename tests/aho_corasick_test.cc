// Tests for the Aho–Corasick multi-pattern matcher: exact hit sets on
// crafted overlapping/nested pattern families, early-exit scanning, and a
// randomized cross-check of every reported occurrence against naive
// memmem-style search over fuzzed documents and pattern sets.
#include "common/aho_corasick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace spanners {
namespace {

// (pattern id, end offset) of every occurrence, sorted.
using Hits = std::set<std::pair<uint32_t, size_t>>;

Hits ScanAll(const AhoCorasick& ac, std::string_view text) {
  Hits hits;
  ac.Scan(text, [&](uint32_t pattern, size_t end) {
    hits.emplace(pattern, end);
    return true;
  });
  return hits;
}

// Ground truth: every occurrence of every pattern by direct search.
Hits NaiveAll(const std::vector<std::string>& patterns,
              std::string_view text) {
  Hits hits;
  for (uint32_t pid = 0; pid < patterns.size(); ++pid) {
    const std::string& p = patterns[pid];
    if (p.empty()) continue;
    for (size_t at = text.find(p); at != std::string_view::npos;
         at = text.find(p, at + 1))
      hits.emplace(pid, at + p.size());
  }
  return hits;
}

TEST(AhoCorasickTest, FindsEveryOccurrenceOfOverlappingPatterns) {
  std::vector<std::string> patterns = {"ab", "abab", "bab"};
  AhoCorasick ac(patterns);
  EXPECT_EQ(ac.num_patterns(), 3u);
  const std::string text = "xababab";
  // ab at 1..3, 3..5, 5..7; abab at 1..5, 3..7; bab at 2..5, 4..7.
  Hits want = {{0, 3}, {0, 5}, {0, 7}, {1, 5}, {1, 7}, {2, 5}, {2, 7}};
  EXPECT_EQ(ScanAll(ac, text), want);
  EXPECT_EQ(ScanAll(ac, text), NaiveAll(patterns, text));
}

TEST(AhoCorasickTest, NestedPatternsAllReportedAtOnePosition) {
  // Nested suffixes share output-list tails instead of copies.
  std::vector<std::string> patterns = {"a", "aa", "aaa"};
  AhoCorasick ac(patterns);
  EXPECT_EQ(ScanAll(ac, "aaa"), NaiveAll(patterns, "aaa"));
  EXPECT_EQ(ScanAll(ac, "aaa").size(), 6u);  // 3×a + 2×aa + 1×aaa
}

TEST(AhoCorasickTest, DuplicatePatternsKeepTheirOwnIds) {
  std::vector<std::string> patterns = {"ab", "ab"};
  AhoCorasick ac(patterns);
  Hits want = {{0, 2}, {1, 2}};
  EXPECT_EQ(ScanAll(ac, "ab"), want);
}

TEST(AhoCorasickTest, EmptyAndUnmatchablePatterns) {
  AhoCorasick none({});
  EXPECT_FALSE(none.AnyMatch("anything"));
  AhoCorasick empties({"", "x"});
  // The empty pattern is never reported; "x" still is.
  Hits want = {{1, 2}};
  EXPECT_EQ(ScanAll(empties, "yxz"), want);
  EXPECT_TRUE(empties.AnyMatch("yxz"));
  EXPECT_FALSE(empties.AnyMatch("yz"));
  EXPECT_FALSE(empties.AnyMatch(""));
}

TEST(AhoCorasickTest, EarlyExitStopsTheScan) {
  AhoCorasick ac({"aa"});
  size_t calls = 0;
  ac.Scan("aaaaaa", [&](uint32_t, size_t) {
    ++calls;
    return false;  // stop after the first hit
  });
  EXPECT_EQ(calls, 1u);
}

TEST(AhoCorasickTest, BytesOutsideEveryPatternResetToRoot) {
  AhoCorasick ac({"abc"});
  EXPECT_TRUE(ac.AnyMatch("zzabczz"));
  EXPECT_FALSE(ac.AnyMatch("ab!c"));  // '!' is the dead class
  EXPECT_TRUE(ac.AnyMatch("ab!abc"));
}

TEST(AhoCorasickTest, RandomizedAgreesWithNaiveSearch) {
  std::mt19937 rng(67);
  std::uniform_int_distribution<size_t> num_patterns(1, 8);
  std::uniform_int_distribution<size_t> pattern_len(1, 6);
  std::uniform_int_distribution<size_t> text_len(0, 80);
  std::uniform_int_distribution<int> letter(0, 2);  // tiny alphabet: lots
                                                    // of overlap + nesting
  for (int round = 0; round < 300; ++round) {
    std::vector<std::string> patterns(num_patterns(rng));
    for (std::string& p : patterns) {
      const size_t len = pattern_len(rng);
      for (size_t i = 0; i < len; ++i)
        p += static_cast<char>('a' + letter(rng));
    }
    AhoCorasick ac(patterns);
    for (int d = 0; d < 10; ++d) {
      std::string text;
      const size_t len = text_len(rng);
      for (size_t i = 0; i < len; ++i)
        text += static_cast<char>('a' + letter(rng));
      ASSERT_EQ(ScanAll(ac, text), NaiveAll(patterns, text))
          << "round " << round << " text '" << text << "'";
    }
  }
}

TEST(AhoCorasickTest, ToStringAndSizes) {
  AhoCorasick ac({"GET", "POST"});
  EXPECT_EQ(ac.num_classes(), 6u);  // G E T P O S (T shared)
  EXPECT_GT(ac.num_states(), 1u);
  EXPECT_GT(ac.table_bytes(), 0u);
  EXPECT_NE(ac.ToString().find("2 patterns"), std::string::npos);
}

}  // namespace
}  // namespace spanners
