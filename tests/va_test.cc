// Tests for the VA structure, run semantics (VA and VAstk), and the
// Thompson construction (Theorem 4.3, RGX → VAstk direction).
#include <gtest/gtest.h>

#include "automata/run_eval.h"
#include "automata/thompson.h"
#include "automata/va.h"
#include "rgx/parser.h"
#include "rgx/reference_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(VaTest, BuildAndInspect) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q1);
  a.AddClose(q1, x, q2);
  EXPECT_EQ(a.NumStates(), 3u);
  EXPECT_EQ(a.NumTransitions(), 3u);
  EXPECT_TRUE(a.IsFinal(q2));
  EXPECT_FALSE(a.IsFinal(q0));
  EXPECT_TRUE(a.Vars().Contains(x));
  EXPECT_EQ(a.SingleFinal(), q2);
}

TEST(VaTest, RunEvalSimpleCapture) {
  // q0 -x⊢-> q1 -a*-> q1 -⊣x-> q2 : captures the whole document of a's.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q1);
  a.AddClose(q1, x, q2);

  MappingSet out = RunEval(a, Document("aa"));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(1, 3))));
  EXPECT_TRUE(RunEval(a, Document("ab")).empty());
}

TEST(VaTest, DanglingOpenMeansUnused) {
  // Open x but never close: accepting runs exist and x stays undefined.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q2);

  MappingSet out = RunEval(a, Document("a"));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Mapping::Empty()));
}

TEST(VaTest, VariableOpensAtMostOncePerRun) {
  // A loop through an open transition cannot be taken twice.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q0);
  VarId x = Variable::Intern("x");
  a.AddOpen(q0, x, q1);
  a.AddChar(q1, CharSet::Of('a'), q0);

  // On "a": open, a — accept with x dangling (unused).
  MappingSet one = RunEval(a, Document("a"));
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(one.Contains(Mapping::Empty()));
  // On "aa": would need to open x twice — no accepting run.
  EXPECT_TRUE(RunEval(a, Document("aa")).empty());
}

TEST(VaTest, NonHierarchicalOverlapIsExpressible) {
  // VA (unlike RGX) can produce overlapping spans: x over positions 1..3,
  // y over 2..4 of "abc".
  VA a;
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  StateId s0 = a.AddState(), s1 = a.AddState(), s2 = a.AddState(),
          s3 = a.AddState(), s4 = a.AddState(), s5 = a.AddState(),
          s6 = a.AddState();
  a.SetInitial(s0);
  a.AddFinal(s6);
  a.AddOpen(s0, x, s1);
  a.AddChar(s1, CharSet::Of('a'), s2);
  a.AddOpen(s2, y, s3);
  a.AddChar(s3, CharSet::Of('b'), s4);
  a.AddClose(s4, x, s5);
  a.AddChar(s5, CharSet::Of('c'), s6);
  // close y at the very end:
  StateId s7 = a.AddState();
  a.AddClose(s6, y, s7);
  a.ClearFinals();
  a.AddFinal(s7);

  MappingSet out = RunEval(a, Document("abc"));
  Mapping m = Mapping::Single(x, Span(1, 3));
  m.Set(y, Span(2, 4));
  EXPECT_TRUE(out.Contains(m));
  EXPECT_FALSE(out.IsHierarchical());
  // The stack semantics rejects the crossing close order.
  EXPECT_TRUE(RunEvalStack(a, Document("abc")).empty());
}

TEST(VaTest, StackSemanticsAgreesOnNestedAutomata) {
  // Thompson outputs are stack-disciplined: VA and VAstk semantics match.
  VA a = CompileToVa(P("x{a(y{b})c}"));
  Document d("abc");
  EXPECT_EQ(RunEval(a, d), RunEvalStack(a, d));
  EXPECT_EQ(RunEval(a, d).size(), 1u);
}

TEST(VaTest, TrimRemovesUselessStates) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState();
  a.AddState();  // unreachable
  StateId q3 = a.AddState();  // reachable but dead-ended
  a.SetInitial(q0);
  a.AddFinal(q1);
  a.AddChar(q0, CharSet::Of('a'), q1);
  a.AddChar(q0, CharSet::Of('b'), q3);
  VA t = a.Trimmed();
  EXPECT_EQ(t.NumStates(), 2u);
  EXPECT_EQ(t.NumTransitions(), 1u);
  EXPECT_EQ(RunEval(t, Document("a")), RunEval(a, Document("a")));
}

TEST(VaTest, EpsilonClosure) {
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState(),
          q3 = a.AddState();
  a.SetInitial(q0);
  a.AddEpsilon(q0, q1);
  a.AddEpsilon(q1, q2);
  a.AddChar(q2, CharSet::Of('a'), q3);
  std::vector<StateId> cl = a.EpsilonClosure(q0);
  EXPECT_EQ(cl, (std::vector<StateId>{q0, q1, q2}));
}

TEST(VaTest, IsDeterministic) {
  VA det;
  StateId p0 = det.AddState(), p1 = det.AddState();
  det.SetInitial(p0);
  det.AddFinal(p1);
  det.AddChar(p0, CharSet::Of('a'), p1);
  det.AddChar(p0, CharSet::Of('b'), p0);
  EXPECT_TRUE(det.IsDeterministic());

  VA overlap = det;
  overlap.AddChar(p0, CharSet::Of('a'), p0);  // 'a' now has two successors
  EXPECT_FALSE(overlap.IsDeterministic());

  VA eps = det;
  eps.AddEpsilon(p0, p1);
  EXPECT_FALSE(eps.IsDeterministic());

  VA dup_op = det;
  VarId x = Variable::Intern("x");
  dup_op.AddOpen(p0, x, p0);
  dup_op.AddOpen(p0, x, p1);
  EXPECT_FALSE(dup_op.IsDeterministic());
}

TEST(ThompsonTest, MatchesReferenceOnPaperExamples) {
  const char* patterns[] = {
      "a",          "x{a}",          "x{a*}y{b*}",       "x{a*}x{b*}",
      "(x{(a|b)*}|y{(a|b)*})*",      "x{a(y{b})}c",      "a*b",
      "x{a}b|a(y{b})",               "(x{a}|a)*",        "x{x{a}}",
  };
  const char* docs[] = {"", "a", "ab", "aaabbb", "abc", "ba", "aabb"};
  for (const char* pat : patterns) {
    RgxPtr g = P(pat);
    VA a = CompileToVa(g);
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(RunEval(a, d), ReferenceEval(g, d))
          << "pattern " << pat << " on doc \"" << txt << "\"";
    }
  }
}

TEST(ThompsonTest, OutputSizeIsLinear) {
  RgxPtr small = P("x{a*}");
  RgxPtr big = P("x{a*}y{b*}z{c*}(u|v|w)*q{[a-z]+}");
  VA a_small = CompileToVa(small);
  VA a_big = CompileToVa(big);
  // Each AST node contributes at most 2 states and a few transitions.
  EXPECT_LE(a_small.NumStates(), 2 * small->NodeCount() + 2);
  EXPECT_LE(a_big.NumStates(), 2 * big->NodeCount() + 2);
}

TEST(ThompsonTest, StackDisciplined) {
  // RGX compiles to automata whose VA and VAstk semantics agree
  // (the VAstk ≡ RGX side of Theorem 4.3).
  const char* patterns[] = {"x{a*}y{b*}", "x{a(y{b})}c", "(x{a}|a)*",
                            "x{(a|b)*}|y{.*}"};
  const char* docs[] = {"ab", "abc", "aa", "ba"};
  for (const char* pat : patterns) {
    VA a = CompileToVa(P(pat));
    for (const char* txt : docs) {
      Document d(txt);
      EXPECT_EQ(RunEval(a, d), RunEvalStack(a, d)) << pat << " on " << txt;
    }
  }
}

}  // namespace
}  // namespace spanners
