// Tests for index-gated batch extraction over a persisted segment: the
// acceptance invariant is byte-identity — ExtractIndexed restricted to
// posting-list candidates produces exactly the full scan's output, across
// thread counts {1, 2, 8}, for single plans and fleets, with or without
// an index, whether or not the index can narrow the plan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "storage/ngram_index.h"
#include "storage/segment.h"
#include "workload/generators.h"

namespace spanners {
namespace engine {
namespace {

std::string TempSegPath(const std::string& tag) {
  return testing::TempDir() + "spanners_indexed_test_" + tag + "_" +
         std::to_string(::getpid()) + ".seg";
}

// Persists `corpus`, builds + saves + reopens the index through the
// validating path (what production readers run), and hands both back.
// Optional members because SegmentStore/NgramIndex are only constructible
// through their validating factories.
struct PersistedCorpus {
  std::string path;
  std::optional<storage::SegmentStore> store;
  std::optional<storage::NgramIndex> index;

  ~PersistedCorpus() {
    std::remove(path.c_str());
    std::remove(storage::IndexPathFor(path).c_str());
  }
};

std::unique_ptr<PersistedCorpus> Persist(const Corpus& corpus,
                                         const std::string& tag) {
  auto out = std::make_unique<PersistedCorpus>();
  out->path = TempSegPath(tag);
  EXPECT_TRUE(storage::SegmentStore::Write(corpus, out->path).ok());
  Result<storage::SegmentStore> store = storage::SegmentStore::Open(out->path);
  EXPECT_TRUE(store.ok());
  out->store = std::move(store).value();
  storage::NgramIndex built = storage::NgramIndex::Build(*out->store);
  const std::string idx_path = storage::IndexPathFor(out->path);
  EXPECT_TRUE(built.Save(idx_path).ok());
  Result<storage::NgramIndex> opened =
      storage::NgramIndex::Open(idx_path, out->store->num_docs());
  EXPECT_TRUE(opened.ok());
  out->index = std::move(opened).value();
  return out;
}

TEST(IndexedExtractTest, ByteIdenticalToFullScanAcrossThreads) {
  workload::NeedleOptions o;
  o.documents = 500;
  Corpus corpus(workload::NeedleCorpus(o));
  auto persisted = Persist(corpus, "identity");
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));

  BatchOptions ro;
  ro.num_threads = 1;
  BatchResult want = BatchExtractor(ro).Extract(plan, corpus);
  ASSERT_GT(want.total_mappings, 0u);  // the comparison must not be vacuous

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    BatchExtractor extractor(bo);
    IndexedStats stats;
    BatchResult got = extractor.ExtractIndexed(plan, *persisted->store,
                                               &*persisted->index, &stats);
    EXPECT_EQ(got.per_doc, want.per_doc) << "threads " << threads;
    EXPECT_EQ(got.total_mappings, want.total_mappings);
    EXPECT_TRUE(stats.narrowed);
    EXPECT_LT(stats.candidate_docs, stats.corpus_docs);
    EXPECT_EQ(stats.corpus_docs, corpus.size());
    EXPECT_GT(stats.postings_touched, 0u);
    EXPECT_LT(stats.CandidateRatio(), 1.0);
  }
}

TEST(IndexedExtractTest, NullIndexFullScanOverStoreIsIdentical) {
  workload::CorpusOptions o;
  o.documents = 150;
  Corpus corpus(workload::ServerLogCorpus(o));
  auto persisted = Persist(corpus, "nullindex");
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));

  BatchResult want = BatchExtractor().Extract(plan, corpus);
  for (size_t threads : {1u, 2u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    IndexedStats stats;
    BatchResult got = BatchExtractor(bo).ExtractIndexed(
        plan, *persisted->store, /*index=*/nullptr, &stats);
    EXPECT_EQ(got.per_doc, want.per_doc) << "threads " << threads;
    EXPECT_FALSE(stats.narrowed);
    EXPECT_EQ(stats.candidate_docs, corpus.size());
  }
}

// A plan the index cannot narrow (no literal ≥ 3 bytes → match-all
// candidate set) must fall back to scanning every stored document and
// still be identical.
TEST(IndexedExtractTest, UnnarrowablePlanScansEverythingIdentically) {
  Corpus corpus = Corpus::FromDelimited("aa\nab\nba\n\nabab");
  auto persisted = Persist(corpus, "unnarrowable");
  ExtractionPlan plan = ExtractionPlan::Compile("x{a*}.*").ValueOrDie();
  ASSERT_TRUE(plan.prefilter()
                  .IndexableClauses(storage::NgramIndex::kN)
                  .empty());

  BatchResult want = BatchExtractor().Extract(plan, corpus);
  IndexedStats stats;
  BatchResult got = BatchExtractor().ExtractIndexed(
      plan, *persisted->store, &*persisted->index, &stats);
  EXPECT_EQ(got.per_doc, want.per_doc);
  EXPECT_FALSE(stats.narrowed);
  EXPECT_EQ(stats.candidate_docs, corpus.size());
}

TEST(IndexedExtractTest, FleetByteIdenticalToInMemoryAcrossThreads) {
  workload::FleetOptions o;
  o.num_patterns = 10;
  o.documents = 200;
  o.doc_bytes = 300;
  o.match_rate = 0.05;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  auto persisted = Persist(corpus, "fleet");

  std::vector<std::shared_ptr<const ExtractionPlan>> plans;
  for (const std::string& p : generated.patterns)
    plans.push_back(std::make_shared<const ExtractionPlan>(
        ExtractionPlan::Compile(p).ValueOrDie()));
  MultiQueryExtractor fleet(plans);

  BatchOptions ro;
  ro.num_threads = 1;
  MultiBatchResult want = BatchExtractor(ro).ExtractMulti(fleet, corpus);

  for (size_t threads : {1u, 2u, 8u}) {
    BatchOptions bo;
    bo.num_threads = threads;
    bo.min_docs_per_shard = 4;
    IndexedStats stats;
    MultiBatchResult got = BatchExtractor(bo).ExtractIndexedMulti(
        fleet, *persisted->store, &*persisted->index, &stats);
    ASSERT_EQ(got.per_plan.size(), want.per_plan.size());
    for (size_t p = 0; p < want.per_plan.size(); ++p)
      EXPECT_EQ(got.per_plan[p].per_doc, want.per_plan[p].per_doc)
          << "plan " << p << " threads " << threads;
    EXPECT_EQ(got.total_mappings, want.total_mappings);
    // The union of 10 plans' candidates still narrows a 5%-match corpus.
    EXPECT_TRUE(stats.narrowed);
    EXPECT_LT(stats.candidate_docs, stats.corpus_docs);
  }
}

TEST(IndexedExtractTest, EmptyFleetAndEmptyCorpus) {
  Corpus corpus = Corpus::FromDelimited("one\ntwo");
  auto persisted = Persist(corpus, "edge");
  MultiQueryExtractor empty_fleet(
      std::vector<std::shared_ptr<const ExtractionPlan>>{});
  MultiBatchResult r = BatchExtractor().ExtractIndexedMulti(
      empty_fleet, *persisted->store, &*persisted->index);
  EXPECT_TRUE(r.per_plan.empty());
  EXPECT_EQ(r.total_mappings, 0u);

  Corpus empty;
  auto persisted_empty = Persist(empty, "edge_empty");
  ExtractionPlan plan = ExtractionPlan::Compile(".*abc(x{d*}).*").ValueOrDie();
  BatchResult br = BatchExtractor().ExtractIndexed(
      plan, *persisted_empty->store, &*persisted_empty->index);
  EXPECT_TRUE(br.per_doc.empty());
  EXPECT_EQ(br.total_mappings, 0u);
}

// Extraction results hold spans plus documents materialized (copied) out
// of the mapping: nothing may dangle once the store and index are gone.
TEST(IndexedExtractTest, ResultsRemainValidAfterStoreAndIndexClose) {
  workload::NeedleOptions o;
  o.documents = 300;
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  BatchResult want = BatchExtractor().Extract(plan, corpus);

  BatchResult got;
  std::vector<std::pair<size_t, Document>> matched_docs;
  {
    auto persisted = Persist(corpus, "lifetime");
    got = BatchExtractor().ExtractIndexed(plan, *persisted->store,
                                          &*persisted->index);
    for (size_t i = 0; i < got.per_doc.size(); ++i)
      if (!got.per_doc[i].empty())
        matched_docs.emplace_back(i, persisted->store->MaterializeDoc(i));
  }  // store unmapped, index destroyed, files deleted

  EXPECT_EQ(got.per_doc, want.per_doc);
  ASSERT_FALSE(matched_docs.empty());
  for (const auto& [doc_id, doc] : matched_docs) {
    EXPECT_EQ(doc.text(), corpus[doc_id].text());
    // The recorded spans still address real content in the copied bytes.
    for (const Mapping& m : got.per_doc[doc_id])
      for (const Mapping::Entry& e : m.entries())
        EXPECT_TRUE(doc.IsValidSpan(e.span)) << e.var;
  }
}

}  // namespace
}  // namespace engine
}  // namespace spanners
