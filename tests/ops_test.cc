// Tests for the spanner algebra on automata (Theorem 4.5): union,
// projection and join agree with the corresponding operations on the
// output mapping sets.
#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/run_eval.h"
#include "automata/thompson.h"
#include "rgx/parser.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

const char* kDocs[] = {"", "a", "ab", "ba", "aabb", "abab"};

TEST(UnionVaTest, MatchesSemanticUnion) {
  VA a = CompileToVa(P("x{a*}b*"));
  VA b = CompileToVa(P("a*y{b*}"));
  VA u = UnionVa(a, b);
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(RunEval(u, d), MappingSet::Union(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(ProjectVaTest, MatchesSemanticProjection) {
  VA a = CompileToVa(P("x{a*}y{b*}"));
  VarSet keep({Variable::Intern("x")});
  VA p = ProjectVa(a, keep);
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(RunEval(p, d), RunEval(a, d).Project(keep)) << txt;
  }
}

TEST(ProjectVaTest, PreservesRunValidityOfDroppedVars) {
  // (x{a}|a)* — x usable at most once. After projecting x away the
  // automaton must not suddenly allow the x-branch twice.
  VA a = CompileToVa(P("(x{a}|a)*b"));
  VarSet keep;  // project everything away
  VA p = ProjectVa(a, keep);
  for (const char* txt : {"b", "ab", "aab", "aaab"}) {
    Document d(txt);
    EXPECT_EQ(RunEval(p, d), RunEval(a, d).Project(keep)) << txt;
  }
}

TEST(ProjectVaTest, ProjectToAllVarsIsIdentity) {
  VA a = CompileToVa(P("x{a*}y{b*}"));
  VA p = ProjectVa(a, a.Vars());
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(RunEval(p, d), RunEval(a, d)) << txt;
  }
}

TEST(JoinVaTest, DisjointVariables) {
  // No shared variables: join is a cross product of compatible (always)
  // pairs on the same document.
  VA a = CompileToVa(P("x{a*}.*"));
  VA b = CompileToVa(P(".*y{b*}"));
  VA j = JoinVa(a, b);
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(RunEval(j, d), MappingSet::Join(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(JoinVaTest, SharedVariableMustAgree) {
  // x is shared: only pairs assigning x the same span survive.
  VA a = CompileToVa(P("x{a*}b*"));
  VA b = CompileToVa(P("x{a*b*}"));
  VA j = JoinVa(a, b);
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(RunEval(j, d), MappingSet::Join(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(JoinVaTest, PartialMappingsJoin) {
  // The incomplete-information subtlety: one side may leave the shared
  // variable undefined; such pairs are compatible.
  VA a = CompileToVa(P("x{a}b|ab"));       // x defined only on branch 1
  VA b = CompileToVa(P("x{a}b|a(y{b})"));  // x or y
  VA j = JoinVa(a, b);
  for (const char* txt : {"ab", "a", "b", "abab"}) {
    Document d(txt);
    EXPECT_EQ(RunEval(j, d), MappingSet::Join(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(JoinVaTest, EmptySpansAndSharedVars) {
  VA a = CompileToVa(P("x{\\e}a*"));
  VA b = CompileToVa(P("a*x{\\e}"));
  VA j = JoinVa(a, b);
  for (const char* txt : {"", "a", "aa"}) {
    Document d(txt);
    EXPECT_EQ(RunEval(j, d), MappingSet::Join(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(JoinVaTest, JoinWithPlainRegexActsAsFilter) {
  // Join with a var-free automaton filters by document membership.
  VA a = CompileToVa(P("x{a*}b*"));
  VA b = CompileToVa(P("aab*"));
  VA j = JoinVa(a, b);
  for (const char* txt : {"ab", "aab", "aabb", "b"}) {
    Document d(txt);
    EXPECT_EQ(RunEval(j, d), MappingSet::Join(RunEval(a, d), RunEval(b, d)))
        << txt;
  }
}

TEST(JoinVaTest, NonHierarchicalJoinOutput) {
  // The classic power of join: overlapping spans inexpressible by RGX.
  // A1 binds x to a prefix, A2 binds y to a suffix; on "abc" the join can
  // produce overlapping x and y.
  VA a = CompileToVa(P("x{ab}c"));
  VA b = CompileToVa(P("a(y{bc})"));
  VA j = JoinVa(a, b);
  Document d("abc");
  MappingSet joined = RunEval(j, d);
  Mapping m = Mapping::Single(Variable::Intern("x"), Span(1, 3));
  m.Set(Variable::Intern("y"), Span(2, 4));
  EXPECT_TRUE(joined.Contains(m));
  EXPECT_FALSE(joined.IsHierarchical());
}

}  // namespace
}  // namespace spanners
