// Tests for the rule ↔ RGX conversions (Prop 4.8, Lemma B.1, Thm 4.10).
#include <gtest/gtest.h>

#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rgx/reference_eval.h"
#include "rules/convert.h"
#include "rules/graph.h"
#include "rules/rule_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }
ExtractionRule R(std::string_view text) {
  return ExtractionRule::Parse(text).ValueOrDie();
}

const char* kDocs[] = {"", "a", "b", "ab", "ba", "aabb", "aba"};

TEST(ToFunctionalDagRulesTest, PaperExample) {
  // ϕ = (x ∨ y) ∧ x.(a ∨ b) ∧ y.(c):
  // equivalent to {x ∧ x.a, x ∧ x.b, y ∧ y.c} (after pruning).
  ExtractionRule rule = R("x{.*}|y{.*} && x.(a|b) && y.(c)");
  Result<FunctionalDagRules> out = ToFunctionalDagRules(rule);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const ExtractionRule& r : out->rules) {
    EXPECT_TRUE(r.IsFunctional()) << r.ToString();
    EXPECT_TRUE(RuleGraph(r).IsDagLike()) << r.ToString();
  }
  VarSet original_vars = rule.AllVars();
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(UnionRuleEval(out->rules, d).Project(original_vars),
              RuleReferenceEval(rule, d))
        << txt;
  }
}

TEST(ToFunctionalDagRulesTest, CyclicNonFunctionalRule) {
  // Non-functional formulas + a cycle: both transformations compose.
  ExtractionRule rule =
      R("a(x{.*}) && x.(y{.*}|b) && y.(x{.*})");
  Result<FunctionalDagRules> out = ToFunctionalDagRules(rule);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (const ExtractionRule& r : out->rules)
    EXPECT_TRUE(RuleGraph(r).IsDagLike()) << r.ToString();
  VarSet original_vars = rule.AllVars();
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(UnionRuleEval(out->rules, d).Project(original_vars),
              RuleReferenceEval(rule, d))
        << txt;
  }
}

TEST(ToFunctionalDagRulesTest, RequiresSimpleRule) {
  EXPECT_FALSE(ToFunctionalDagRules(R("x{.*} && x.(a) && x.(b)")).ok());
}

TEST(TreeRuleToRgxTest, PaperExampleFromLemmaB1) {
  // (a·x·b·y) ∧ x.(abc·z) ∧ y.Σ* ∧ z.d  ⇒  a·x{abc·z{d}}·b·y{Σ*}.
  ExtractionRule rule =
      R("a(x{.*})b(y{.*}) && x.(abc(z{.*})) && z.(d)");
  Result<RgxPtr> rgx = TreeRuleToRgx(rule);
  ASSERT_TRUE(rgx.ok()) << rgx.status().ToString();
  for (const char* txt : {"aabcdb", "aabcdbz", "ab"}) {
    Document d(txt);
    EXPECT_EQ(ReferenceEval(*rgx, d), RuleReferenceEval(rule, d)) << txt;
  }
}

TEST(TreeRuleToRgxTest, EquivalenceOnTreeRules) {
  const char* rules[] = {
      "a(x{.*}) && x.(b*)",
      "x{.*}y{.*} && x.(a*) && y.(b*)",
      "x{.*}|b && x.(a(y{.*})) && y.(\\e|b)",
  };
  for (const char* text : rules) {
    ExtractionRule rule = R(text);
    Result<RgxPtr> rgx = TreeRuleToRgx(rule);
    ASSERT_TRUE(rgx.ok()) << text << ": " << rgx.status().ToString();
    for (const char* txt : kDocs) {
      Document d(txt);
      EXPECT_EQ(ReferenceEval(*rgx, d), RuleReferenceEval(rule, d))
          << text << " on " << txt;
    }
  }
}

TEST(TreeRuleToRgxTest, RejectsNonTree) {
  EXPECT_FALSE(
      TreeRuleToRgx(R("x{.*}y{.*} && x.(z{.*}) && y.(z{.*})")).ok());
  EXPECT_FALSE(
      TreeRuleToRgx(R("x{.*} && x.(y{.*}) && y.(x{.*})")).ok());
}

TEST(RgxToTreeRulesTest, RoundTripEquivalence) {
  // Theorem 4.10: every RGX is a union of tree-like rules.
  const char* patterns[] = {"x{a*}",          "x{a*}y{b*}",
                            "x{a(y{b*})c}",   "x{a}|y{b}",
                            "(x{a}|a)*",      "a*x{b*}(y{a}|\\e)"};
  for (const char* pat : patterns) {
    SCOPED_TRACE(pat);
    RgxPtr g = P(pat);
    std::vector<ExtractionRule> rules = RgxToTreeRules(g);
    for (const ExtractionRule& r : rules) {
      EXPECT_TRUE(r.IsSimple());
      EXPECT_TRUE(r.constraints().empty() || RuleGraph(r).IsTreeLike())
          << r.ToString();
    }
    for (const char* txt : kDocs) {
      Document d(txt);
      EXPECT_EQ(UnionRuleEval(rules, d), ReferenceEval(g, d))
          << pat << " on " << txt;
    }
  }
}

TEST(RgxToTreeRulesTest, UnsatisfiableRgxYieldsEmptyUnion) {
  EXPECT_TRUE(RgxToTreeRules(P("x{x{a}}")).empty());
}

TEST(RgxToTreeRulesTest, FullCircleThroughLemmaB1) {
  // RGX → tree rules → RGX preserves semantics.
  RgxPtr g = P("a*x{b*(y{a*})}|c");
  std::vector<ExtractionRule> rules = RgxToTreeRules(g);
  ASSERT_FALSE(rules.empty());
  std::vector<RgxPtr> back;
  for (const ExtractionRule& r : rules) {
    Result<RgxPtr> one = TreeRuleToRgx(r);
    ASSERT_TRUE(one.ok()) << r.ToString();
    back.push_back(*one);
  }
  RgxPtr united = RgxNode::Disj(back);
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(ReferenceEval(united, d), ReferenceEval(g, d)) << txt;
  }
}

}  // namespace
}  // namespace spanners
