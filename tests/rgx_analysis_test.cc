// Tests for var(γ), functional / sequential / spanRGX analyses (§4, §5.2).
#include <gtest/gtest.h>

#include "rgx/analysis.h"
#include "rgx/parser.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

TEST(RgxVarsTest, CollectsNestedVariables) {
  VarSet vars = RgxVars(P("x{a y{b*} c}|z{d}"));
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_TRUE(vars.Contains(Variable::Intern("x")));
  EXPECT_TRUE(vars.Contains(Variable::Intern("y")));
  EXPECT_TRUE(vars.Contains(Variable::Intern("z")));
}

TEST(FunctionalTest, VarFreeIsFunctional) {
  EXPECT_TRUE(IsFunctional(P("a*b|c")));
  EXPECT_TRUE(IsFunctional(P("\\e")));
}

TEST(FunctionalTest, SimpleCapture) {
  EXPECT_TRUE(IsFunctional(P("x{a*}")));
  EXPECT_TRUE(IsFunctional(P("x{a*}y{b*}")));
  EXPECT_TRUE(IsFunctional(P("x{a y{b}}")));  // nested, each var once
}

TEST(FunctionalTest, DisjunctsMustBindSameVariables) {
  EXPECT_TRUE(IsFunctional(P("x{a}|x{b}")));
  EXPECT_FALSE(IsFunctional(P("x{a}|y{b}")));
  EXPECT_FALSE(IsFunctional(P("x{a}|a")));  // one branch misses x
}

TEST(FunctionalTest, StarBodyMustBeVariableFree) {
  EXPECT_FALSE(IsFunctional(P("(x{a})*")));
  EXPECT_TRUE(IsFunctional(P("(ab)*x{a}")));
}

TEST(FunctionalTest, ConcatMustSplitVariables) {
  EXPECT_FALSE(IsFunctional(P("x{a}x{b}")));  // x on both sides
}

TEST(FunctionalTest, SelfNestedVariableNotFunctional) {
  EXPECT_FALSE(IsFunctional(P("x{x{a}}")));
}

TEST(FunctionalTest, FunctionalDomainEqualsVars) {
  RgxPtr g = P("x{a*}(y{b}|y{c})");
  std::optional<VarSet> dom = FunctionalDomain(g);
  ASSERT_TRUE(dom.has_value());
  EXPECT_TRUE(*dom == RgxVars(g));
  EXPECT_TRUE(IsFunctionalWrt(g, RgxVars(g)));
  EXPECT_FALSE(IsFunctionalWrt(g, VarSet()));
}

TEST(SequentialTest, FunctionalImpliesSequential) {
  // §5.2: funcRGX ⊆ seqRGX.
  for (const char* pat :
       {"x{a*}y{b*}", "x{a y{b}}", "x{a}|x{b}", "(ab)*x{a}"}) {
    SCOPED_TRACE(pat);
    EXPECT_TRUE(IsFunctional(P(pat)));
    EXPECT_TRUE(IsSequential(P(pat)));
  }
}

TEST(SequentialTest, SequentialNotNecessarilyFunctional) {
  // Disjuncts binding different variables: sequential but not functional.
  RgxPtr g = P("x{a}|y{b}");
  EXPECT_TRUE(IsSequential(g));
  EXPECT_FALSE(IsFunctional(g));
}

TEST(SequentialTest, RepeatedVariableInConcatNotSequential) {
  EXPECT_FALSE(IsSequential(P("x{a}x{b}")));
  EXPECT_FALSE(IsSequential(P("x{a}(b|x{c})")));
}

TEST(SequentialTest, VariableUnderStarNotSequential) {
  EXPECT_FALSE(IsSequential(P("(x{a})*")));
  EXPECT_FALSE(IsSequential(P("(x{a}|b)*")));
}

TEST(SequentialTest, SelfNestedNotSequential) {
  EXPECT_FALSE(IsSequential(P("x{x{a}}")));
}

TEST(SequentialTest, PaperExamplesAreSequential) {
  // "all extraction expressions discussed in Section 3 are sequential".
  EXPECT_TRUE(IsSequential(P(".*Seller: (x{[^,]*}),.*")));
  EXPECT_TRUE(
      IsSequential(P(".*Seller: (x{[^,\\n]*}),[^,\\n]*(, (y{[^\\n]*})|\\e)\\n.*")));
  EXPECT_TRUE(IsSequential(P("(x{(a|b)*}|y{(a|b)*})*")) == false);
  // Note: the Kleene-star-over-variables example of Example 3.1 is *not*
  // sequential — it is exactly the kind of formula whose evaluation is
  // hard in general.
}

TEST(SpanRgxTest, Recognition) {
  EXPECT_TRUE(IsSpanRgx(P("a x{.*} b")));
  EXPECT_TRUE(IsSpanRgx(P("x{.*}|y{.*}")));
  EXPECT_FALSE(IsSpanRgx(P("x{a*}")));     // shaped body
  EXPECT_FALSE(IsSpanRgx(P("x{y{.*}}")));  // nested variables
  EXPECT_TRUE(IsSpanRgx(P("abc")));        // var-free is trivially spanRGX
}

TEST(SpanRgxTest, Properness) {
  // x{Σ*}·x{Σ*} is the improper expression from Theorem 4.2.
  EXPECT_FALSE(IsProperSpanRgx(P("x{.*}x{.*}")));
  EXPECT_TRUE(IsProperSpanRgx(P("a x{.*} b y{.*}")));
  EXPECT_TRUE(IsProperSpanRgx(P("x{.*}|x{.*}")));
}

}  // namespace
}  // namespace spanners
