// Tests for extraction rules: structure, graph, and reference semantics
// (paper §3.3, §4.3).
#include <gtest/gtest.h>

#include "rgx/parser.h"
#include "rules/graph.h"
#include "rules/rule.h"
#include "rules/rule_eval.h"

namespace spanners {
namespace {

ExtractionRule R(std::string_view text) {
  Result<ExtractionRule> r = ExtractionRule::Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ValueOrDie();
}

TEST(RuleParseTest, BodyOnly) {
  ExtractionRule r = R("a(x{.*})b");
  EXPECT_TRUE(r.constraints().empty());
  EXPECT_TRUE(r.IsSimple());
}

TEST(RuleParseTest, WithConstraints) {
  ExtractionRule r = R("x{.*} && x.(ab*)");
  ASSERT_EQ(r.constraints().size(), 1u);
  EXPECT_EQ(Variable::Name(r.constraints()[0].var), "x");
  EXPECT_TRUE(r.ConstraintFor(Variable::Intern("x")).has_value());
  EXPECT_FALSE(r.ConstraintFor(Variable::Intern("nope")).has_value());
}

TEST(RuleParseTest, RejectsNonSpanRgx) {
  // x{a*} is not a spanRGX (shaped variable body).
  EXPECT_FALSE(ExtractionRule::Parse("x{a*}").ok());
  EXPECT_FALSE(ExtractionRule::Parse("x{.*} && x.(y{a})").ok());
}

TEST(RuleParseTest, RejectsMalformedConjunct) {
  EXPECT_FALSE(ExtractionRule::Parse("x{.*} && (ab*)").ok());
}

TEST(RuleStructureTest, SimpleCheck) {
  EXPECT_TRUE(R("x{.*} && x.(a)").IsSimple());
  EXPECT_FALSE(R("x{.*} && x.(a) && x.(b)").IsSimple());
}

TEST(RuleStructureTest, FunctionalAndSequential) {
  EXPECT_TRUE(R("x{.*}y{.*} && x.(a*)").IsFunctional());
  EXPECT_FALSE(R("x{.*}|y{.*}").IsFunctional());  // disjuncts differ
  EXPECT_TRUE(R("x{.*}|y{.*}").IsSequential());
  EXPECT_FALSE(R("x{.*}x{.*}").IsSequential());
}

TEST(RuleGraphTest, EdgesAndClassification) {
  // doc -> x (in body); x -> y (y occurs in x's formula).
  ExtractionRule r = R("a(x{.*}) && x.(y{.*} b)");
  RuleGraph g(r);
  EXPECT_TRUE(g.IsDagLike());
  EXPECT_TRUE(g.IsTreeLike());
}

TEST(RuleGraphTest, CyclicRuleIsNotDag) {
  // x.y ∧ y.x (through spanRGX vars).
  ExtractionRule r = R("x{.*} && x.(y{.*}) && y.(x{.*})");
  RuleGraph g(r);
  EXPECT_FALSE(g.IsDagLike());
  EXPECT_FALSE(g.IsTreeLike());
}

TEST(RuleGraphTest, DagButNotTree) {
  // Both x and y reference z: two parents.
  ExtractionRule r =
      R("x{.*}y{.*} && x.(z{.*}) && y.(z{.*})");
  RuleGraph g(r);
  EXPECT_TRUE(g.IsDagLike());
  EXPECT_FALSE(g.IsTreeLike());
}

TEST(RuleGraphTest, SccsTopologicalOrder) {
  ExtractionRule r = R("x{.*} && x.(y{.*}) && y.(x{.*}a)");
  RuleGraph g(r);
  std::vector<std::vector<size_t>> sccs = g.SccsTopological();
  // doc first, then the {x, y} cycle.
  ASSERT_GE(sccs.size(), 2u);
  EXPECT_EQ(sccs[0].size(), 1u);  // doc
  bool found_cycle = false;
  for (const auto& scc : sccs)
    if (scc.size() == 2) found_cycle = true;
  EXPECT_TRUE(found_cycle);
}

TEST(RuleGraphTest, SimpleCycleDetection) {
  ExtractionRule simple = R("x{.*} && x.(y{.*}) && y.(x{.*})");
  RuleGraph g1(simple);
  for (const auto& scc : g1.SccsTopological()) {
    if (g1.SccHasCycle(scc)) {
      EXPECT_TRUE(g1.SccIsSimpleCycle(scc));
    }
  }

  // x references y twice: within-SCC out-degree 1 still (same target),
  // but x.(y z), z.(x) + y.(x) gives a chord.
  ExtractionRule chord =
      R("x{.*} && x.(y{.*}z{.*}) && y.(x{.*}) && z.(x{.*})");
  RuleGraph g2(chord);
  bool has_non_simple = false;
  for (const auto& scc : g2.SccsTopological())
    if (g2.SccHasCycle(scc) && !g2.SccIsSimpleCycle(scc))
      has_non_simple = true;
  EXPECT_TRUE(has_non_simple);
}

TEST(RuleEvalTest, BodyOnlyRuleEqualsRgxSemantics) {
  ExtractionRule r = R("a(x{.*})b");
  Document d("aab");
  MappingSet out = RuleReferenceEval(r, d);
  VarId x = Variable::Intern("x");
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(2, 3))));
}

TEST(RuleEvalTest, ConstraintRestrictsShape) {
  // Paper's idiom: a·x·a* ∧ x.R.
  ExtractionRule r = R("a(x{.*})a* && x.(bb*)");
  VarId x = Variable::Intern("x");
  Document d("abba");
  MappingSet out = RuleReferenceEval(r, d);
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(2, 4))));
  for (const Mapping& m : out) {
    ASSERT_TRUE(m.Defines(x));
    std::string_view content = d.content(*m.Get(x));
    EXPECT_TRUE(content.find('a') == std::string_view::npos &&
                !content.empty());
  }
}

TEST(RuleEvalTest, ConjunctionOfConstraintsIntersects) {
  // Σ*·x·Σ* ∧ x.R1 ∧ x.R2 — not simple, but reference semantics handles
  // it: x's content must match both.
  ExtractionRule r = R(".*x{.*}.* && x.(a*) && x.(.b|a*)");
  Document d("ab");
  MappingSet out = RuleReferenceEval(r, d);
  VarId x = Variable::Intern("x");
  // a* ∩ (.b|a*) contents over "ab": "a", "", ("ab" matches .b but not a*).
  for (const Mapping& m : out) {
    std::string_view c = d.content(*m.Get(x));
    EXPECT_TRUE(c == "a" || c.empty()) << c;
  }
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(1, 2))));
}

TEST(RuleEvalTest, NondeterministicDisjunctionInstantiation) {
  // The paper's px ∨ yq ∧ x.pab*q ∧ y.pba*q example: only the chosen
  // variable's constraint applies.
  ExtractionRule r = R("x{.*}|y{.*} && x.(ab*) && y.(ba*)");
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");

  Document d1("abb");
  MappingSet out1 = RuleReferenceEval(r, d1);
  EXPECT_TRUE(out1.Contains(Mapping::Single(x, Span(1, 4))));
  // y branch: content must match ba* — "abb" does not.
  for (const Mapping& m : out1) EXPECT_FALSE(m.Defines(y));

  Document d2("ba");
  MappingSet out2 = RuleReferenceEval(r, d2);
  EXPECT_TRUE(out2.Contains(Mapping::Single(y, Span(1, 3))));
  for (const Mapping& m : out2) EXPECT_FALSE(m.Defines(x));
}

TEST(RuleEvalTest, NonHierarchicalOutputs) {
  // Theorem 4.6 witness: x ∧ x.Σ*·y·Σ* ∧ x.Σ*·z·Σ* can overlap y and z —
  // inexpressible by RGX.
  ExtractionRule r =
      R("x{.*} && x.(.*y{.*}.*) && x.(.*z{.*}.*)");
  Document d("aaaa");
  MappingSet out = RuleReferenceEval(r, d);
  EXPECT_FALSE(out.IsHierarchical());
  VarId y = Variable::Intern("y"), z = Variable::Intern("z");
  Mapping overlap = Mapping::Single(Variable::Intern("x"), Span(1, 5));
  overlap.Set(y, Span(1, 3));
  overlap.Set(z, Span(2, 4));
  EXPECT_TRUE(out.Contains(overlap));
}

TEST(RuleEvalTest, UnsatisfiableCycleRule) {
  // Paper: x ∧ x.y ∧ y.ax is unsatisfiable (x strictly inside itself).
  ExtractionRule r = R("x{.*} && x.(y{.*}) && y.(a(x{.*}))");
  for (const char* txt : {"", "a", "aa", "aaa"})
    EXPECT_TRUE(RuleReferenceEval(r, Document(txt)).empty()) << txt;
}

TEST(RuleEvalTest, SatisfiableCycleRuleAllVarsEqual) {
  // x.y ∧ y.x forces equal spans.
  ExtractionRule r = R("a(x{.*}) && x.(y{.*}) && y.(x{.*})");
  Document d("ab");
  MappingSet out = RuleReferenceEval(r, d);
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  for (const Mapping& m : out) EXPECT_EQ(m.Get(x), m.Get(y));
  Mapping both = Mapping::Single(x, Span(2, 3));
  both.Set(y, Span(2, 3));
  EXPECT_TRUE(out.Contains(both));
}

TEST(RuleEvalTest, VacuousUnreachableConstraint) {
  // z is not reachable from doc: its constraint never applies.
  ExtractionRule r = R("a(x{.*}) && z.(b)");
  Document d("ab");
  MappingSet out = RuleReferenceEval(r, d);
  VarId x = Variable::Intern("x"), z = Variable::Intern("z");
  EXPECT_TRUE(out.Contains(Mapping::Single(x, Span(2, 3))));
  for (const Mapping& m : out) EXPECT_FALSE(m.Defines(z));
}

TEST(RuleEvalTest, UnionOfRules) {
  std::vector<ExtractionRule> rules = {R("x{.*}b"), R("a(y{.*})")};
  Document d("ab");
  MappingSet out = UnionRuleEval(rules, d);
  EXPECT_TRUE(out.Contains(Mapping::Single(Variable::Intern("x"), Span(1, 2))));
  EXPECT_TRUE(out.Contains(Mapping::Single(Variable::Intern("y"), Span(2, 3))));
}

}  // namespace
}  // namespace spanners
