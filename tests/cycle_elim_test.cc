// Tests for ν and cycle elimination (Theorem 4.7). Equivalence is modulo
// projecting away the auxiliary variables the construction introduces.
#include <gtest/gtest.h>

#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rules/cycle_elim.h"
#include "rules/graph.h"
#include "rules/rule_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }
ExtractionRule R(std::string_view text) {
  return ExtractionRule::Parse(text).ValueOrDie();
}

void ExpectEquivalentModuloAux(const ExtractionRule& original,
                               const CycleElimResult& elim,
                               const std::vector<const char*>& docs) {
  VarSet original_vars = original.AllVars();
  for (const char* txt : docs) {
    Document d(txt);
    MappingSet want = RuleReferenceEval(original, d);
    MappingSet got =
        RuleReferenceEval(elim.rule, d).Project(original_vars);
    EXPECT_EQ(got, want) << "doc \"" << txt << "\"\noriginal  "
                         << original.ToString() << "\nrewritten "
                         << elim.rule.ToString();
  }
}

TEST(NuTest, LettersAreBlack) {
  EXPECT_EQ(Nu(P("a")), nullptr);
  EXPECT_EQ(Nu(P("a|b")), nullptr);
  EXPECT_EQ(Nu(P("x{.*}a")), nullptr);  // concat with a letter
}

TEST(NuTest, VariablesSurvive) {
  RgxPtr nu = Nu(P("x{.*}"));
  ASSERT_NE(nu, nullptr);
  EXPECT_EQ(nu->kind(), RgxKind::kVar);
}

TEST(NuTest, DisjunctionDropsBlackBranches) {
  RgxPtr nu = Nu(P("a|x{.*}"));
  ASSERT_NE(nu, nullptr);
  EXPECT_EQ(nu->kind(), RgxKind::kVar);  // only the x branch survives
}

TEST(NuTest, StarBecomesEpsilon) {
  RgxPtr nu = Nu(P("a*"));
  ASSERT_NE(nu, nullptr);
  EXPECT_EQ(nu->kind(), RgxKind::kEpsilon);
}

TEST(NuTest, ConcatOfVars) {
  RgxPtr nu = Nu(P("x{.*}a*y{.*}"));
  ASSERT_NE(nu, nullptr);
  // x · ε · y
  EXPECT_EQ(ToPattern(nu), ToPattern(P("x{.*}\\ey{.*}")));
}

TEST(CycleElimTest, AcyclicRuleUnchangedSemantics) {
  ExtractionRule r = R("a(x{.*}) && x.(b*)");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  ExpectEquivalentModuloAux(r, *elim, {"", "a", "ab", "abb"});
}

TEST(CycleElimTest, SimpleTwoCycle) {
  // x.y ∧ y.x: all members equal.
  ExtractionRule r = R("a(x{.*}) && x.(y{.*}) && y.(x{.*})");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  ExpectEquivalentModuloAux(r, *elim, {"", "a", "ab", "abc"});
}

TEST(CycleElimTest, PaperExampleThreeCycleWithTail) {
  // The paper's example: x.y ∧ y.z ∧ z.ux  ⇒
  //   w.x ∧ x.y ∧ y.z ∧ z.u·Σ* ∧ u.ε  (w auxiliary).
  ExtractionRule r =
      R("a(x{.*}) && x.(y{.*}) && y.(z{.*}) && z.(u{.*}x{.*})");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  EXPECT_FALSE(elim->aux_vars.empty());
  ExpectEquivalentModuloAux(r, *elim, {"", "a", "ab", "abc"});
}

TEST(CycleElimTest, RedCycleIsUnsatisfiable) {
  // x.y ∧ y.ax: the letter forces strict containment — unsatisfiable.
  ExtractionRule r = R("x{.*} && x.(y{.*}) && y.(a(x{.*}))");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok());
  for (const char* txt : {"", "a", "aa"})
    EXPECT_TRUE(RuleReferenceEval(elim->rule, Document(txt)).empty()) << txt;
}

TEST(CycleElimTest, SelfReferenceIsDeadBranch) {
  // Under the Table 2 semantics, x inside its own constraint can never
  // bind: x.(x) is unsatisfiable when x is instantiated...
  ExtractionRule r = R("a(x{.*})b && x.(x{.*})");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  ExpectEquivalentModuloAux(r, *elim, {"ab", "acb", "b"});

  // Note: a live non-self branch (x.(x|c*)) would not be functional —
  // under Theorem 4.7's functionality precondition every self-referential
  // constraint is dead when instantiated. Both branches self-referential:
  ExtractionRule r2 = R("a(x{.*})b && x.((x{.*})|c(x{.*}))");
  Result<CycleElimResult> elim2 = EliminateCycles(r2);
  ASSERT_TRUE(elim2.ok()) << elim2.status().ToString();
  EXPECT_TRUE(RuleGraph(elim2->rule).IsDagLike());
  ExpectEquivalentModuloAux(r2, *elim2, {"ab", "acb", "b", "accb"});
}

TEST(CycleElimTest, SelfLoopRed) {
  // x.ax is unsatisfiable.
  ExtractionRule r = R("x{.*} && x.(a(x{.*}))");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok());
  for (const char* txt : {"", "a", "aa"})
    EXPECT_TRUE(RuleReferenceEval(elim->rule, Document(txt)).empty()) << txt;
}

TEST(CycleElimTest, ChordalCycleForcesEmpty) {
  // x.yz ∧ y.x ∧ z.x: chordal SCC, all members ε at one point.
  ExtractionRule r =
      R("a(x{.*}) && x.(y{.*}z{.*}) && y.(x{.*}) && z.(x{.*})");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  ExpectEquivalentModuloAux(r, *elim, {"", "a", "ab"});
}

TEST(CycleElimTest, DownstreamOfCycleForcedEmpty) {
  // u is referenced from inside a cycle: its content must be ε, and its
  // own constraint must still hold.
  ExtractionRule r =
      R("a(x{.*}) && x.(y{.*}) && y.(u{.*}x{.*}) && u.(b*)");
  Result<CycleElimResult> elim = EliminateCycles(r);
  ASSERT_TRUE(elim.ok()) << elim.status().ToString();
  EXPECT_TRUE(RuleGraph(elim->rule).IsDagLike());
  ExpectEquivalentModuloAux(r, *elim, {"", "a", "ab"});
}

TEST(CycleElimTest, RequiresSimpleFunctionalRule) {
  ExtractionRule not_simple = R("x{.*} && x.(a) && x.(b)");
  EXPECT_FALSE(EliminateCycles(not_simple).ok());
  ExtractionRule not_functional = R("x{.*}|y{.*} && x.(a)");
  EXPECT_FALSE(EliminateCycles(not_functional).ok());
}

}  // namespace
}  // namespace spanners
