// Tests for VA → RGX (Theorems 4.3 / 4.4) and the functional-union
// decomposition (corollary to Theorem 4.3).
#include <gtest/gtest.h>

#include "automata/run_eval.h"
#include "automata/state_elim.h"
#include "automata/thompson.h"
#include "rgx/analysis.h"
#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rgx/functional_union.h"
#include "rgx/reference_eval.h"

namespace spanners {
namespace {

RgxPtr P(std::string_view p) { return ParseRgx(p).ValueOrDie(); }

const char* kDocs[] = {"", "a", "b", "ab", "ba", "aabb", "abab"};

void ExpectRgxEquivalent(const RgxPtr& g1, const RgxPtr& g2) {
  for (const char* txt : kDocs) {
    Document d(txt);
    EXPECT_EQ(ReferenceEval(g1, d), ReferenceEval(g2, d))
        << ToPattern(g1) << " vs " << ToPattern(g2) << " on \"" << txt
        << "\"";
  }
}

TEST(VaToRgxTest, RoundTripThroughThompson) {
  const char* patterns[] = {"a*b",
                            "x{a*}",
                            "x{a*}y{b*}",
                            "x{a}|x{b}",
                            "x{a(y{b})}",
                            "a*x{b*}a*",
                            "x{a}b|a(y{b})"};
  for (const char* pat : patterns) {
    SCOPED_TRACE(pat);
    RgxPtr original = P(pat);
    Result<RgxPtr> back = VaToRgx(CompileToVa(original));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ExpectRgxEquivalent(original, *back);
  }
}

TEST(VaToRgxTest, RoundTripNonSequentialStar) {
  // Star over a variable: the path union materialises the one-use cases.
  RgxPtr original = P("(x{a}|a)*");
  Result<RgxPtr> back = VaToRgx(CompileToVa(original));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectRgxEquivalent(original, *back);
}

TEST(VaToRgxTest, UnsatisfiableAutomatonYieldsUnsatisfiableRgx) {
  // x{x{a}} has empty semantics on every document.
  Result<RgxPtr> back = VaToRgx(CompileToVa(P("x{x{a}}")));
  ASSERT_TRUE(back.ok());
  for (const char* txt : kDocs)
    EXPECT_TRUE(ReferenceEval(*back, Document(txt)).empty());
}

TEST(VaToRgxTest, HandlesDanglingOpens) {
  // Automaton that opens x and never closes: equivalent to "a" alone.
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState();
  a.SetInitial(q0);
  a.AddFinal(q2);
  a.AddOpen(q0, Variable::Intern("x"), q1);
  a.AddChar(q1, CharSet::Of('a'), q2);
  Result<RgxPtr> back = VaToRgx(a);
  ASSERT_TRUE(back.ok());
  ExpectRgxEquivalent(*back, P("a"));
}

TEST(VaToRgxTest, HierarchicalVaWithSamePositionReordering) {
  // Open x then y at the same position but close x after y — nestable
  // after reordering the same-position block (Theorem 4.4 machinery).
  VA a;
  StateId q0 = a.AddState(), q1 = a.AddState(), q2 = a.AddState(),
          q3 = a.AddState(), q4 = a.AddState(), q5 = a.AddState();
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  a.SetInitial(q0);
  a.AddFinal(q5);
  a.AddOpen(q0, x, q1);
  a.AddOpen(q1, y, q2);
  a.AddChar(q2, CharSet::Of('a'), q3);
  a.AddClose(q3, x, q4);  // closes x first although y opened second...
  a.AddClose(q4, y, q5);  // ...but both closes share a position: reorder.
  Result<RgxPtr> back = VaToRgx(a);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  Document d("a");
  Mapping m = Mapping::Single(x, Span(1, 2));
  m.Set(y, Span(1, 2));
  EXPECT_EQ(ReferenceEval(*back, d), RunEval(a, d));
  EXPECT_TRUE(ReferenceEval(*back, d).Contains(m));
}

TEST(VaToRgxTest, NonHierarchicalVaIsRejected) {
  // x over (1,3), y over (2,4) on "abc": genuinely overlapping spans.
  VA a;
  StateId s0 = a.AddState(), s1 = a.AddState(), s2 = a.AddState(),
          s3 = a.AddState(), s4 = a.AddState(), s5 = a.AddState(),
          s6 = a.AddState(), s7 = a.AddState();
  VarId x = Variable::Intern("x"), y = Variable::Intern("y");
  a.SetInitial(s0);
  a.AddFinal(s7);
  a.AddOpen(s0, x, s1);
  a.AddChar(s1, CharSet::Of('a'), s2);
  a.AddOpen(s2, y, s3);
  a.AddChar(s3, CharSet::Of('b'), s4);
  a.AddClose(s4, x, s5);
  a.AddChar(s5, CharSet::Of('c'), s6);
  a.AddClose(s6, y, s7);
  Result<RgxPtr> back = VaToRgx(a);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kNotSupported);
}

TEST(VaToFunctionalUnionTest, EveryDisjunctIsFunctional) {
  for (const char* pat : {"x{a}|a", "(x{a}|a)*", "x{a*}(y{b}|\\e)"}) {
    Result<std::vector<RgxPtr>> parts =
        VaToFunctionalRgxUnion(CompileToVa(P(pat)));
    ASSERT_TRUE(parts.ok()) << pat;
    for (const RgxPtr& r : *parts)
      EXPECT_TRUE(IsFunctional(r)) << pat << " disjunct " << ToPattern(r);
  }
}

TEST(ToFunctionalUnionTest, AstLevelDecomposition) {
  const char* patterns[] = {"x{a}|a",      "(x{.*}|y{.*})(z{.*}|w{.*})",
                            "(x{a}|a)*",   "x{a*}(y{b}|\\e)",
                            "(x{a}|y{b}|c)*"};
  for (const char* pat : patterns) {
    SCOPED_TRACE(pat);
    RgxPtr original = P(pat);
    std::vector<RgxPtr> parts = ToFunctionalUnion(original);
    for (const RgxPtr& r : parts) EXPECT_TRUE(IsFunctional(r));
    RgxPtr united = parts.empty() ? RgxNode::Chars(CharSet::None())
                                  : RgxNode::Disj(parts);
    ExpectRgxEquivalent(original, united);
  }
}

TEST(ToFunctionalUnionTest, PaperExampleFromProposition48) {
  // (x ∨ y)·(z ∨ w) decomposes into the pairwise functional products.
  std::vector<RgxPtr> parts =
      ToFunctionalUnion(P("(x{.*}|y{.*})(z{.*}|w{.*})"));
  EXPECT_EQ(parts.size(), 4u);  // x·z, x·w, y·z, y·w
}

TEST(ToFunctionalUnionTest, UnsatisfiableYieldsEmptyUnion) {
  EXPECT_TRUE(ToFunctionalUnion(P("x{x{a}}")).empty());
  EXPECT_TRUE(ToFunctionalUnion(P("x{a}x{b}")).empty());
}

TEST(ToFunctionalUnionTest, SpanRgxStaysSpanRgx) {
  std::vector<RgxPtr> parts = ToFunctionalUnion(P("(x{.*}|y{.*})a(z{.*})"));
  ASSERT_FALSE(parts.empty());
  for (const RgxPtr& r : parts) EXPECT_TRUE(IsSpanRgx(r));
}

}  // namespace
}  // namespace spanners
