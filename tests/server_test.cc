// Tests for the spanexd server: served extract/extract_batch output must
// be byte-identical to the offline engine paths, admission backpressure
// must refuse (Unavailable + retry_after_ms) rather than queue without
// bound, and a graceful drain must finish admitted work, refuse new work,
// and return exit code 0 from Serve().
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"

namespace spanners {
namespace server {
namespace {

using engine::BatchExtractor;
using engine::BatchOptions;
using engine::Corpus;
using engine::ExtractionPlan;
using engine::MultiQueryExtractor;
using engine::OutputFormat;

Corpus TestCorpus() {
  Corpus corpus;
  corpus.Add(Document("ERR 123 alpha beta"));
  corpus.Add(Document("WARN 77 gamma"));
  corpus.Add(Document("nothing to see"));
  corpus.Add(Document("ERR 9 delta ERR 10"));
  corpus.Add(Document(""));
  corpus.Add(Document("WARN 5 epsilon ERR 42"));
  return corpus;
}

const char* kErrPattern = ".*ERR x{[0-9]+}.*";
const char* kWarnPattern = ".*WARN y{[0-9]+}.*";

/// The offline reference: exactly the loop tools/spanex.cc runs for an
/// in-memory corpus, built from the shared formatting helpers.
std::string OfflineOutput(const std::vector<std::string>& patterns,
                          const Corpus& corpus, OutputFormat format,
                          bool header) {
  std::vector<std::shared_ptr<const ExtractionPlan>> plans;
  for (const std::string& p : patterns)
    plans.push_back(std::make_shared<const ExtractionPlan>(
        ExtractionPlan::Compile(p).ValueOrDie()));
  BatchOptions options;
  options.num_threads = 2;
  BatchExtractor batch(options);
  std::string out;
  if (plans.size() == 1) {
    const ExtractionPlan& plan = *plans[0];
    const VarSet& vars = plan.vars();
    if (format == OutputFormat::kTsv && header) {
      out += engine::TsvHeader(vars);
      out += '\n';
    }
    batch.ExtractStream(plan, corpus,
                        [&](size_t doc_begin, size_t doc_end,
                            std::vector<std::vector<Mapping>>& per_doc) {
                          for (size_t i = doc_begin; i < doc_end; ++i)
                            for (const Mapping& m : per_doc[i - doc_begin])
                              engine::AppendMappingRow(&out, format, i, m,
                                                       vars, corpus[i]);
                        });
  } else {
    MultiQueryExtractor fleet(plans);
    if (format == OutputFormat::kTsv && header) {
      std::vector<const VarSet*> vars_per_plan;
      for (size_t p = 0; p < fleet.num_plans(); ++p)
        vars_per_plan.push_back(&fleet.plan(p).vars());
      out += engine::FleetTsvHeader(vars_per_plan);
    }
    batch.ExtractMultiStream(
        fleet, corpus,
        [&](size_t doc_begin, size_t doc_end,
            std::vector<std::vector<std::vector<Mapping>>>& per_plan) {
          for (size_t i = doc_begin; i < doc_end; ++i)
            for (size_t p = 0; p < per_plan.size(); ++p)
              for (const Mapping& m : per_plan[p][i - doc_begin])
                engine::AppendFleetMappingRow(&out, format, p, i, m,
                                              fleet.plan(p).vars(),
                                              corpus[i]);
        });
  }
  return out;
}

/// A Server on its own Serve() thread. The socket lives in the test temp
/// dir; the destructor drains and joins.
class RunningServer {
 public:
  explicit RunningServer(ServerOptions options)
      : RunningServer(std::move(options), TestCorpus()) {}

  RunningServer(ServerOptions options, Corpus corpus) {
    if (options.socket_path.empty())
      options.socket_path = ::testing::TempDir() + "spanexd_test_" +
                            std::to_string(reinterpret_cast<uintptr_t>(this)) +
                            ".sock";
    socket_path_ = options.socket_path;
    options.num_threads = 2;
    server_.emplace(std::move(options), std::move(corpus));
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { exit_code_ = server_->Serve(); });
  }

  ~RunningServer() { Shutdown(); }

  /// Idempotent: drains (if still running) and joins Serve().
  int Shutdown() {
    if (thread_.joinable()) {
      server_->RequestDrain();
      thread_.join();
    }
    std::remove(socket_path_.c_str());
    return exit_code_;
  }

  Server& server() { return *server_; }
  const std::string& socket_path() const { return socket_path_; }

  Client MustConnect() {
    Result<Client> c = Client::Connect(socket_path_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(c).value();
  }

 private:
  std::optional<Server> server_;
  std::string socket_path_;
  std::thread thread_;
  int exit_code_ = -1;
};

std::string CollectRows(Client& client, OutputFormat format, bool header,
                        bool all_resident, Client::ExtractSummary* summary) {
  std::string out;
  Result<Client::ExtractSummary> result =
      client.ExtractBatch(format, header, all_resident,
                          [&](const std::string& row) {
                            out += row;
                            out += '\n';
                          });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && summary != nullptr) *summary = result.value();
  return out;
}

// A served single-plan batch must be byte-identical to the offline run,
// in both formats, with and without the header.
TEST(ServerTest, ExtractBatchSinglePlanByteIdentical) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  Result<int64_t> handle = client.Register(kErrPattern);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  const Corpus corpus = TestCorpus();
  for (OutputFormat format : {OutputFormat::kTsv, OutputFormat::kJson}) {
    for (bool header : {true, false}) {
      Client::ExtractSummary summary;
      const std::string served =
          CollectRows(client, format, header, false, &summary);
      EXPECT_EQ(served, OfflineOutput({kErrPattern}, corpus, format, header));
      EXPECT_GT(summary.mappings, 0u);
      EXPECT_GT(summary.matched_docs, 0u);
    }
  }
}

// Fleet batches (several registered plans) must match the offline
// multi-query stream: fleet header block, doc-major/plan-minor rows with
// the leading query column.
TEST(ServerTest, ExtractBatchFleetByteIdentical) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kErrPattern).ok());
  ASSERT_TRUE(client.Register(kWarnPattern).ok());

  const Corpus corpus = TestCorpus();
  for (OutputFormat format : {OutputFormat::kTsv, OutputFormat::kJson}) {
    const std::string served = CollectRows(client, format, true, false,
                                           nullptr);
    EXPECT_EQ(served, OfflineOutput({kErrPattern, kWarnPattern}, corpus,
                                    format, true));
  }
}

// extract_batch {"all":true} serves the cache-wide resident fleet — the
// CachedFleet over PlanCache::ResidentPlans (key order), not the session's
// registration order.
TEST(ServerTest, ExtractBatchAllResidentUsesCacheFleet) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kWarnPattern).ok());
  ASSERT_TRUE(client.Register(kErrPattern).ok());

  const std::string served =
      CollectRows(client, OutputFormat::kTsv, true, true, nullptr);

  const Corpus corpus = TestCorpus();
  MultiQueryExtractor fleet =
      MultiQueryExtractor::FromCache(rs.server().plan_cache());
  BatchOptions options;
  options.num_threads = 2;
  BatchExtractor batch(options);
  std::string expected;
  std::vector<const VarSet*> vars_per_plan;
  for (size_t p = 0; p < fleet.num_plans(); ++p)
    vars_per_plan.push_back(&fleet.plan(p).vars());
  expected += engine::FleetTsvHeader(vars_per_plan);
  batch.ExtractMultiStream(
      fleet, corpus,
      [&](size_t doc_begin, size_t doc_end,
          std::vector<std::vector<std::vector<Mapping>>>& per_plan) {
        for (size_t i = doc_begin; i < doc_end; ++i)
          for (size_t p = 0; p < per_plan.size(); ++p)
            for (const Mapping& m : per_plan[p][i - doc_begin])
              engine::AppendFleetMappingRow(&expected, OutputFormat::kTsv, p,
                                            i, m, fleet.plan(p).vars(),
                                            corpus[i]);
      });
  EXPECT_EQ(served, expected);
}

// Single-document extract against the session fleet: same rows the batch
// path would emit for that document index.
TEST(ServerTest, ExtractOneDocumentByteIdentical) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kErrPattern).ok());

  const std::string doc = "ERR 123 alpha beta";
  std::string served;
  Result<Client::ExtractSummary> summary = client.Extract(
      doc, /*doc_index=*/0, OutputFormat::kTsv, /*header=*/true,
      [&](const std::string& row) {
        served += row;
        served += '\n';
      });
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  Corpus one;
  one.Add(Document(doc));
  EXPECT_EQ(served, OfflineOutput({kErrPattern}, one, OutputFormat::kTsv,
                                  true));
  EXPECT_GE(summary->mappings, 1u);
}

// Unregistering every plan empties the session: extraction then refuses
// with InvalidArgument instead of serving an empty fleet.
TEST(ServerTest, UnregisterEmptiesSession) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  Result<int64_t> handle = client.Register(kErrPattern);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(client.Unregister(handle.value()).ok());

  Result<Client::ExtractSummary> refused =
      client.ExtractBatch(OutputFormat::kTsv, true, false, nullptr);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

// Backpressure at the admission queue: with capacity 1 and a held
// executor, a pipelined burst must see at least one Unavailable carrying
// the retry_after_ms hint — and everything admitted must still succeed.
TEST(ServerTest, QueueFullRejectsWithRetryAfter) {
  ServerOptions options;
  options.queue_capacity = 1;
  options.max_inflight_per_client = 1024;
  options.retry_after_ms = 7;
  RunningServer rs(options);
  Client client = rs.MustConnect();

  // Fire a burst of sleeping pings without reading a single response: the
  // first occupies the executor, one sits in the queue, the rest must be
  // refused at admission.
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    const int64_t id = client.NextId();
    ASSERT_TRUE(client
                    .SendLine("{\"op\":\"ping\",\"id\":" + std::to_string(id) +
                              ",\"sleep_ms\":50}")
                    .ok());
  }
  int ok_count = 0;
  int unavailable = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<JsonValue> line = client.ReadResponseLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const Status status = StatusFromResponse(*line);
    if (status.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
      EXPECT_EQ(status.retry_after_ms(), 7u);
      ++unavailable;
    }
  }
  EXPECT_GE(ok_count, 1);
  EXPECT_GE(unavailable, 1);
  EXPECT_EQ(ok_count + unavailable, kBurst);
  EXPECT_GE(rs.server().StatsSnapshot().rejected_queue_full, 1u);
}

// The per-client in-flight cap refuses independently of queue capacity.
TEST(ServerTest, InflightCapRejects) {
  ServerOptions options;
  options.queue_capacity = 1024;
  options.max_inflight_per_client = 1;
  RunningServer rs(options);
  Client client = rs.MustConnect();

  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    const int64_t id = client.NextId();
    ASSERT_TRUE(client
                    .SendLine("{\"op\":\"ping\",\"id\":" + std::to_string(id) +
                              ",\"sleep_ms\":30}")
                    .ok());
  }
  int ok_count = 0;
  int unavailable = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<JsonValue> line = client.ReadResponseLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const Status status = StatusFromResponse(*line);
    status.ok() ? ++ok_count : ++unavailable;
  }
  EXPECT_GE(ok_count, 1);
  EXPECT_GE(unavailable, 1);
  EXPECT_GE(rs.server().StatsSnapshot().rejected_inflight_cap, 1u);
}

// Graceful drain: work admitted before the drain completes and streams
// its full response; work after is refused Unavailable; Serve() exits 0.
TEST(ServerTest, DrainFinishesAdmittedWorkAndRefusesNew) {
  RunningServer rs(ServerOptions{});
  Client worker = rs.MustConnect();
  ASSERT_TRUE(worker.Register(kErrPattern).ok());

  // Pipeline: a slow ping (occupies the executor), then an extract_batch
  // (sits admitted in the queue), then the drain — all before reading.
  ASSERT_TRUE(worker
                  .SendLine("{\"op\":\"ping\",\"id\":" +
                            std::to_string(worker.NextId()) +
                            ",\"sleep_ms\":100}")
                  .ok());
  const int64_t batch_id = worker.NextId();
  ASSERT_TRUE(worker
                  .SendLine("{\"op\":\"extract_batch\",\"id\":" +
                            std::to_string(batch_id) +
                            ",\"format\":\"tsv\",\"header\":true}")
                  .ok());
  ASSERT_TRUE(worker
                  .SendLine("{\"op\":\"drain\",\"id\":" +
                            std::to_string(worker.NextId()) + "}")
                  .ok());

  // All three must complete: ping ok, drain ok, and the admitted batch
  // must deliver its rows byte-identically despite the drain racing it.
  std::string served;
  bool saw_ping = false, saw_drain = false, saw_batch_done = false;
  while (!(saw_ping && saw_drain && saw_batch_done)) {
    Result<JsonValue> line = worker.ReadResponseLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const int64_t id = line->IntOr("id", -1);
    const JsonValue* rows = line->Find("rows");
    if (rows != nullptr && rows->is_array() && !line->BoolOr("done", false)) {
      for (const JsonValue& r : rows->items()) {
        served += r.AsString();
        served += '\n';
      }
      continue;
    }
    ASSERT_TRUE(StatusFromResponse(*line).ok())
        << StatusFromResponse(*line).ToString();
    if (id == batch_id)
      saw_batch_done = true;
    else if (line->BoolOr("draining", false))
      saw_drain = true;
    else
      saw_ping = true;
  }
  EXPECT_EQ(served, OfflineOutput({kErrPattern}, TestCorpus(),
                                  OutputFormat::kTsv, true));

  // The drained server refuses a fresh connection (listener closed) or a
  // fresh request with Unavailable, and Serve() returns 0.
  EXPECT_EQ(rs.Shutdown(), 0);
  Result<Client> late = Client::Connect(rs.socket_path());
  EXPECT_FALSE(late.ok());
}

// New work arriving DURING a drain is refused with Unavailable rather
// than silently dropped or deadlocked.
TEST(ServerTest, RequestDuringDrainIsUnavailable) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  // Hold the executor, then drain, then try to admit. The sleep must
  // outlast the handful of syscalls between the admitted-check below and
  // the late send — if the executor wakes first, the server finishes the
  // drain and closes the connection before the late ping arrives.
  ASSERT_TRUE(client
                  .SendLine("{\"op\":\"ping\",\"id\":" +
                            std::to_string(client.NextId()) +
                            ",\"sleep_ms\":300}")
                  .ok());
  // Wait until the slow ping is ADMITTED (it now holds the executor, so
  // the drain cannot complete under it), then flip the drain flag.
  while (rs.server().StatsSnapshot().admitted < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  rs.server().RequestDrain();
  const int64_t late_id = client.NextId();
  ASSERT_TRUE(client
                  .SendLine("{\"op\":\"ping\",\"id\":" +
                            std::to_string(late_id) + ",\"sleep_ms\":10}")
                  .ok());
  int unavailable = 0;
  for (int i = 0; i < 2; ++i) {
    Result<JsonValue> line = client.ReadResponseLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const Status status = StatusFromResponse(*line);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(line->IntOr("id", -1), late_id);
      ++unavailable;
    }
  }
  EXPECT_EQ(unavailable, 1);
  EXPECT_EQ(rs.Shutdown(), 0);
}

// The stats op reports the engine view (documents, resident plans) plus
// the always-on server section with instance-correct counters.
TEST(ServerTest, StatsReportsServerSection) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kErrPattern).ok());
  ASSERT_TRUE(client.Ping().ok());
  CollectRows(client, OutputFormat::kTsv, true, false, nullptr);

  Result<JsonValue> response = client.Stats();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const JsonValue* report = response->Find("report");
  ASSERT_NE(report, nullptr);
  const JsonValue* corpus_section = report->Find("corpus");
  ASSERT_NE(corpus_section, nullptr);
  EXPECT_EQ(corpus_section->IntOr("documents", -1),
            int64_t(TestCorpus().size()));
  const JsonValue* server_section = report->Find("server");
  ASSERT_NE(server_section, nullptr);
  EXPECT_GE(server_section->IntOr("requests", 0), 3);
  EXPECT_GE(server_section->IntOr("admitted", 0), 1);
  EXPECT_EQ(server_section->IntOr("connections_open", -1), 1);
  EXPECT_FALSE(response->StringOr("text", "").empty());

  // The snapshot is per-instance: a second server must start from zero
  // even though the obs registry is process-global.
  RunningServer fresh(ServerOptions{});
  EXPECT_EQ(fresh.server().StatsSnapshot().requests, 0u);
}

// StringOr's result must stay valid past the declaration statement even
// when it falls back to a default materialized from a temporary — the
// server binds it once and reads it across the whole dispatch switch.
TEST(JsonTest, StringOrDefaultOutlivesCallStatement) {
  Result<JsonValue> req = ParseJson("{\"id\":1}");
  ASSERT_TRUE(req.ok());
  const std::string op = req->StringOr("op", "");
  const std::string fmt = req->StringOr("format", "tsv");
  EXPECT_EQ(op, "");
  EXPECT_EQ(fmt, "tsv");
  EXPECT_EQ("unknown op: " + op, "unknown op: ");
  Result<JsonValue> present = ParseJson("{\"op\":\"ping\"}");
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(present->StringOr("op", "fallback"), "ping");
}

// Numbers outside int64 range must clamp, not hit UB in the double→int64
// cast; any client can put 1e300 in a request field.
TEST(JsonTest, HugeNumbersClampToInt64Range) {
  Result<JsonValue> v = ParseJson(
      "{\"a\":1e300,\"b\":-1e300,\"c\":99999999999999999999999,"
      "\"d\":1.5,\"e\":-9223372036854775808}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->IntOr("a", 0), INT64_MAX);
  EXPECT_EQ(v->IntOr("b", 0), INT64_MIN);
  EXPECT_EQ(v->IntOr("c", 0), INT64_MAX);
  EXPECT_EQ(v->IntOr("d", 0), 1);
  EXPECT_EQ(v->IntOr("e", 0), INT64_MIN);
}

// End-to-end: requests that omit "op" (previously a dangling-reference
// path) and requests carrying huge numbers must draw clean protocol
// errors, not UB; the connection and server must stay healthy after.
TEST(ServerTest, MalformedRequestsDrawCleanErrors) {
  RunningServer rs(ServerOptions{});
  Client client = rs.MustConnect();

  ASSERT_TRUE(client.SendLine("{\"id\":1}").ok());
  Result<JsonValue> no_op = client.ReadResponseLine();
  ASSERT_TRUE(no_op.ok()) << no_op.status().ToString();
  EXPECT_EQ(StatusFromResponse(*no_op).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(client.SendLine("{\"op\":\"ping\",\"id\":1e300}").ok());
  Result<JsonValue> huge_id = client.ReadResponseLine();
  ASSERT_TRUE(huge_id.ok()) << huge_id.status().ToString();
  EXPECT_TRUE(StatusFromResponse(*huge_id).ok());

  EXPECT_TRUE(client.Ping().ok());
}

// A newline-free stream past max_request_bytes must be refused with
// InvalidArgument and the connection closed — including when the
// oversized chunk arrives faster than one poll() wakeup can drain it.
TEST(ServerTest, OversizedRequestLineRefused) {
  ServerOptions options;
  options.max_request_bytes = 1 << 16;
  RunningServer rs(options);
  Client client = rs.MustConnect();

  const std::string blob(options.max_request_bytes * 4, 'x');
  // SendLine appends the newline, but the limit trips long before the
  // terminator is seen.
  (void)client.SendLine(blob);
  Result<JsonValue> refused = client.ReadResponseLine();
  if (refused.ok()) {
    EXPECT_EQ(StatusFromResponse(*refused).code(),
              StatusCode::kInvalidArgument);
  }
  // Whether or not the error line won the race with the close, the
  // server must survive and keep serving fresh connections.
  Client fresh = rs.MustConnect();
  EXPECT_TRUE(fresh.Ping().ok());
}

// ---- partial-I/O edges, deadlines, reaping, degraded mode ----------------

/// A raw AF_UNIX client for byte-level transport control the Client class
/// deliberately hides: trickled sends and 1-byte-window reads.
class RawClient {
 public:
  explicit RawClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendAll(std::string_view line) { return Send(line, 0, line.size()); }

  /// One byte per send() with a pause between — each byte is (at most)
  /// its own poll() wakeup on the server's I/O thread.
  bool SendTrickle(std::string_view line, int pause_us) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (!Send(line, i, 1)) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(pause_us));
    }
    return true;
  }

  /// Next response line, read through a 1-byte window when `slow`.
  Result<JsonValue> ReadLine(bool slow) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        Result<JsonValue> parsed =
            ParseJson(std::string_view(buf_.data(), nl));
        buf_.erase(0, nl + 1);
        return parsed;
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::read(fd_, chunk, slow ? 1 : sizeof(chunk));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return Status::Internal("raw read failed");
      buf_.append(chunk, size_t(n));
    }
  }

 private:
  bool Send(std::string_view line, size_t off, size_t len) {
    while (len > 0) {
      const ssize_t n = ::send(fd_, line.data() + off, len, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += size_t(n);
      len -= size_t(n);
    }
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

/// Drives register + extract_batch over a RawClient and returns the
/// streamed rows; `slow` reads every response byte individually.
std::string RawServedBatch(RawClient& raw, const std::string& pattern,
                           bool trickle_requests, bool slow_reads) {
  const std::string reg =
      "{\"op\":\"register\",\"id\":1,\"pattern\":\"" + pattern + "\"}\n";
  EXPECT_TRUE(trickle_requests ? raw.SendTrickle(reg, 200)
                               : raw.SendAll(reg));
  Result<JsonValue> reg_resp = raw.ReadLine(slow_reads);
  EXPECT_TRUE(reg_resp.ok() && StatusFromResponse(*reg_resp).ok());

  const std::string batch =
      "{\"op\":\"extract_batch\",\"id\":2,\"format\":\"tsv\","
      "\"header\":true}\n";
  EXPECT_TRUE(trickle_requests ? raw.SendTrickle(batch, 200)
                               : raw.SendAll(batch));
  std::string served;
  for (;;) {
    Result<JsonValue> line = raw.ReadLine(slow_reads);
    EXPECT_TRUE(line.ok()) << line.status().ToString();
    if (!line.ok()) return served;
    const JsonValue* rows = line->Find("rows");
    if (rows != nullptr && rows->is_array() && !line->BoolOr("done", false)) {
      for (const JsonValue& r : rows->items()) {
        served += r.AsString();
        served += '\n';
      }
      continue;
    }
    EXPECT_TRUE(StatusFromResponse(*line).ok())
        << StatusFromResponse(*line).ToString();
    return served;
  }
}

// A request delivered one byte per poll() wakeup must parse and serve
// exactly like one delivered in a single segment.
TEST(ServerPartialIoTest, TrickledRequestServesByteIdentical) {
  RunningServer rs(ServerOptions{});
  RawClient raw(rs.socket_path());
  // Escape the pattern by hand: the ERR pattern is JSON-clean.
  const std::string served = RawServedBatch(raw, ".*ERR x{[0-9]+}.*",
                                            /*trickle_requests=*/true,
                                            /*slow_reads=*/false);
  EXPECT_EQ(served, OfflineOutput({kErrPattern}, TestCorpus(),
                                  OutputFormat::kTsv, true));
}

// A reader draining the response through a 1-byte window — with the
// output high watermark shrunk so the executor repeatedly blocks on the
// slow reader — must still receive every row byte-identically.
TEST(ServerPartialIoTest, OneByteWindowSlowReaderByteIdentical) {
  // A corpus big enough that the response far exceeds the watermark.
  Corpus corpus;
  for (int i = 0; i < 300; ++i)
    corpus.Add(Document("ERR " + std::to_string(i) + " payload line " +
                        std::to_string(i * 7)));
  ServerOptions options;
  options.output_high_watermark = 512;
  RunningServer rs(options, corpus);
  RawClient raw(rs.socket_path());
  const std::string served = RawServedBatch(raw, ".*ERR x{[0-9]+}.*",
                                            /*trickle_requests=*/false,
                                            /*slow_reads=*/true);
  EXPECT_EQ(served, OfflineOutput({kErrPattern}, corpus, OutputFormat::kTsv,
                                  true));
}

// An EINTR storm (no-SA_RESTART signals peppering the whole process)
// during served batches: every interrupted syscall must be retried and
// the rows must come back byte-identical.
TEST(ServerPartialIoTest, EintrStormDuringExtractBatch) {
  struct sigaction sa, old_sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART: syscalls return EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old_sa), 0);

  RunningServer rs(ServerOptions{});
  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load(std::memory_order_relaxed)) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kErrPattern).ok());
  for (int round = 0; round < 5; ++round) {
    const std::string served =
        CollectRows(client, OutputFormat::kTsv, true, false, nullptr);
    EXPECT_EQ(served, OfflineOutput({kErrPattern}, TestCorpus(),
                                    OutputFormat::kTsv, true))
        << "round " << round;
  }

  storming.store(false, std::memory_order_relaxed);
  storm.join();
  sigaction(SIGUSR1, &old_sa, nullptr);
  EXPECT_EQ(rs.Shutdown(), 0);
}

// Per-request deadlines: a request whose deadline passes while queued (or
// while its sleep runs) is answered DeadlineExceeded instead of running;
// requests that fit their deadline still succeed.
TEST(ServerDeadlineTest, ExpiredRequestsAnswerDeadlineExceeded) {
  ServerOptions options;
  options.request_timeout_ms = 150;
  RunningServer rs(options);
  Client client = rs.MustConnect();

  // Three pipelined 100 ms sleeping pings against a 150 ms deadline:
  // the first fits; the second expires mid-sleep (dequeued ~100 ms,
  // finishes ~200 ms); the third expires while still queued (~200 ms).
  std::vector<int64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(client.NextId());
    ASSERT_TRUE(client
                    .SendLine("{\"op\":\"ping\",\"id\":" +
                              std::to_string(ids.back()) +
                              ",\"sleep_ms\":100}")
                    .ok());
  }
  int ok_count = 0, deadline_count = 0;
  for (int i = 0; i < 3; ++i) {
    Result<JsonValue> line = client.ReadResponseLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    const Status status = StatusFromResponse(*line);
    if (status.ok()) {
      ++ok_count;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kDeadlineExceeded)
          << status.ToString();
      ++deadline_count;
    }
  }
  EXPECT_EQ(ok_count, 1);
  EXPECT_EQ(deadline_count, 2);
  EXPECT_GE(rs.server().StatsSnapshot().deadline_exceeded, 2u);

  // The connection survives an expired request: fresh work still serves.
  EXPECT_TRUE(client.Ping().ok());
}

// Idle reaping: a connect-and-stall client is closed once idle past the
// window, while a connection with work in flight is left alone.
TEST(ServerIdleReapTest, StalledConnReapedActiveConnSpared) {
  ServerOptions options;
  options.idle_timeout_ms = 50;
  RunningServer rs(options);

  Client staller = rs.MustConnect();
  ASSERT_TRUE(staller.Ping().ok());

  // A busy connection: its 400 ms sleeping ping holds in-flight work far
  // past the idle window, so the reaper must spare it.
  Client busy = rs.MustConnect();
  ASSERT_TRUE(busy.SendLine("{\"op\":\"ping\",\"id\":" +
                            std::to_string(busy.NextId()) +
                            ",\"sleep_ms\":400}")
                  .ok());

  // Wait out several idle windows.
  for (int i = 0; i < 100 && rs.server().StatsSnapshot().reaped_idle == 0;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(rs.server().StatsSnapshot().reaped_idle, 1u);

  // The busy connection's response still arrives intact.
  Result<JsonValue> slept = busy.ReadResponseLine();
  ASSERT_TRUE(slept.ok()) << slept.status().ToString();
  EXPECT_TRUE(StatusFromResponse(*slept).ok());

  // The stalled connection is dead: its next round trip fails transport-
  // level (Unavailable), not with a protocol error.
  Status st = staller.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
}

// Degraded mode via the memory budget: a fleet whose shared gate would
// blow the budget is rebuilt gateless — rows stay byte-identical, stats
// flip degraded:true with a reason, and the server keeps serving.
TEST(ServerDegradedTest, MemoryBudgetTripsDegradedByteIdenticalRows) {
  ServerOptions options;
  options.memory_budget_bytes = 1;  // any real gate exceeds this
  RunningServer rs(options);
  Client client = rs.MustConnect();
  ASSERT_TRUE(client.Register(kErrPattern).ok());
  ASSERT_TRUE(client.Register(kWarnPattern).ok());

  const std::string served =
      CollectRows(client, OutputFormat::kTsv, true, false, nullptr);
  EXPECT_EQ(served, OfflineOutput({kErrPattern, kWarnPattern}, TestCorpus(),
                                  OutputFormat::kTsv, true));

  EXPECT_TRUE(rs.server().degraded());
  const engine::ServerStatsReport stats = rs.server().StatsSnapshot();
  EXPECT_TRUE(stats.degraded);
  EXPECT_FALSE(stats.degraded_reason.empty());

  // The degraded flag and reason surface through the stats op.
  Result<JsonValue> response = client.Stats();
  ASSERT_TRUE(response.ok());
  const JsonValue* report = response->Find("report");
  ASSERT_NE(report, nullptr);
  const JsonValue* server_section = report->Find("server");
  ASSERT_NE(server_section, nullptr);
  EXPECT_TRUE(server_section->BoolOr("degraded", false));
  EXPECT_FALSE(server_section->StringOr("degraded_reason", "").empty());
}

}  // namespace
}  // namespace server
}  // namespace spanners
