// Randomised property sweeps (DESIGN.md §7): every conversion pipeline is
// semantically validated against the Table-2 reference / brute-force run
// semantics over random expressions and documents.
#include <gtest/gtest.h>

#include <random>

#include "automata/determinize.h"
#include "automata/enumerate.h"
#include "automata/fpt.h"
#include "automata/matcher.h"
#include "automata/ops.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "automata/state_elim.h"
#include "automata/thompson.h"
#include "rgx/analysis.h"
#include "rgx/functional_union.h"
#include "rgx/parser.h"
#include "rgx/printer.h"
#include "rgx/reference_eval.h"
#include "static_analysis/satisfiability.h"
#include "workload/generators.h"

namespace spanners {
namespace {

class RandomPipelineTest : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng_{static_cast<uint32_t>(GetParam() * 7919 + 13)};

  RgxPtr RandomExpr(bool sequential) {
    workload::RandomRgxOptions opt;
    opt.max_depth = 4;
    opt.num_vars = 2;
    opt.letters = "ab";
    opt.sequential_only = sequential;
    return workload::RandomRgx(opt, &rng_);
  }

  std::vector<Document> SampleDocs() {
    std::vector<Document> docs = {Document("")};
    for (size_t len : {1, 2, 3, 4})
      docs.push_back(workload::RandomDocument("ab", len, &rng_));
    return docs;
  }
};

TEST_P(RandomPipelineTest, ThompsonMatchesReferenceSemantics) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  for (const Document& d : SampleDocs()) {
    ASSERT_EQ(RunEval(va, d), ReferenceEval(rgx, d))
        << ToPattern(rgx) << " on \"" << d.text() << "\"";
  }
}

TEST_P(RandomPipelineTest, RgxOutputsAreHierarchical) {
  RgxPtr rgx = RandomExpr(false);
  for (const Document& d : SampleDocs())
    EXPECT_TRUE(ReferenceEval(rgx, d).IsHierarchical()) << ToPattern(rgx);
}

TEST_P(RandomPipelineTest, DeterminizePreservesSemantics) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  VA det = Determinize(va);
  EXPECT_TRUE(det.IsDeterministic());
  for (const Document& d : SampleDocs())
    ASSERT_EQ(RunEval(det, d), RunEval(va, d)) << ToPattern(rgx);
}

TEST_P(RandomPipelineTest, MakeSequentialPreservesSemantics) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  VA seq = MakeSequential(va);
  EXPECT_TRUE(IsSequentialVa(seq)) << ToPattern(rgx);
  for (const Document& d : SampleDocs())
    ASSERT_EQ(RunEval(seq, d), RunEval(va, d)) << ToPattern(rgx);
}

TEST_P(RandomPipelineTest, SequentialMatcherAgreesWithBruteForce) {
  RgxPtr rgx = RandomExpr(true);
  VA va = CompileToVa(rgx);
  ASSERT_TRUE(IsSequentialVa(va)) << ToPattern(rgx);
  for (const Document& d : SampleDocs()) {
    MappingSet truth = RunEval(va, d);
    // Empty constraint == non-emptiness.
    ASSERT_EQ(EvalSequential(va, d, ExtendedMapping()), !truth.empty());
    // Each output extends; each constraint decision matches brute force.
    for (const Mapping& m : truth)
      ASSERT_TRUE(EvalSequential(va, d, ExtendedMapping::FromMapping(m)));
    std::vector<VarId> vars = va.Vars().ids();
    for (VarId x : vars) {
      for (const Span& s : d.AllSpans()) {
        ExtendedMapping mu;
        mu.Assign(x, s);
        bool brute = false;
        for (const Mapping& m : truth)
          if (mu.ExtendedBy(m)) brute = true;
        ASSERT_EQ(EvalSequential(va, d, mu), brute)
            << ToPattern(rgx) << " on \"" << d.text() << "\" "
            << mu.ToString();
      }
    }
  }
}

TEST_P(RandomPipelineTest, FptEvaluatorAgreesWithBruteForce) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  for (const Document& d : SampleDocs()) {
    MappingSet truth = RunEval(va, d);
    ASSERT_EQ(EvalVa(va, d, ExtendedMapping()), !truth.empty());
    for (const Mapping& m : truth)
      ASSERT_TRUE(EvalVa(va, d, ExtendedMapping::FromMapping(m)));
  }
}

TEST_P(RandomPipelineTest, EnumerationIsCompleteAndDuplicateFree) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  Document d = workload::RandomDocument("ab", 3, &rng_);
  MappingEnumerator e = MakeVaEnumerator(va, d);
  MappingSet seen;
  size_t count = 0;
  while (std::optional<Mapping> m = e.Next()) {
    EXPECT_FALSE(seen.Contains(*m)) << "duplicate " << m->ToString();
    seen.Insert(*std::move(m));
    ++count;
  }
  EXPECT_EQ(seen, RunEval(va, d)) << ToPattern(rgx);
  EXPECT_EQ(count, seen.size());
}

TEST_P(RandomPipelineTest, VaToRgxRoundTrip) {
  RgxPtr rgx = RandomExpr(false);
  Result<RgxPtr> back = VaToRgx(CompileToVa(rgx));
  // Thompson images are stack-disciplined, so the conversion must work.
  ASSERT_TRUE(back.ok()) << ToPattern(rgx) << ": "
                         << back.status().ToString();
  for (const Document& d : SampleDocs())
    ASSERT_EQ(ReferenceEval(*back, d), ReferenceEval(rgx, d))
        << ToPattern(rgx) << "  ->  " << ToPattern(*back);
}

TEST_P(RandomPipelineTest, FunctionalUnionEquivalence) {
  RgxPtr rgx = RandomExpr(false);
  std::vector<RgxPtr> parts = ToFunctionalUnion(rgx);
  RgxPtr united = parts.empty() ? RgxNode::Chars(CharSet::None())
                                : RgxNode::Disj(parts);
  for (const RgxPtr& p : parts) EXPECT_TRUE(IsFunctional(p));
  for (const Document& d : SampleDocs())
    ASSERT_EQ(ReferenceEval(united, d), ReferenceEval(rgx, d))
        << ToPattern(rgx);
}

TEST_P(RandomPipelineTest, AlgebraOnRandomPairs) {
  RgxPtr g1 = RandomExpr(false);
  RgxPtr g2 = RandomExpr(false);
  VA a1 = CompileToVa(g1);
  VA a2 = CompileToVa(g2);
  VA u = UnionVa(a1, a2);
  VA j = JoinVa(a1, a2);
  VarSet keep({Variable::Intern("x0")});
  VA p = ProjectVa(a1, keep);
  for (const Document& d : SampleDocs()) {
    MappingSet m1 = RunEval(a1, d);
    MappingSet m2 = RunEval(a2, d);
    ASSERT_EQ(RunEval(u, d), MappingSet::Union(m1, m2))
        << ToPattern(g1) << " ∪ " << ToPattern(g2) << " on " << d.text();
    ASSERT_EQ(RunEval(j, d), MappingSet::Join(m1, m2))
        << ToPattern(g1) << " ⋈ " << ToPattern(g2) << " on " << d.text();
    ASSERT_EQ(RunEval(p, d), m1.Project(keep)) << ToPattern(g1);
  }
}

TEST_P(RandomPipelineTest, SatisfiabilityAgreesWithWitnessSearch) {
  RgxPtr rgx = RandomExpr(false);
  VA va = CompileToVa(rgx);
  std::optional<Document> w = SatWitnessVa(va);
  if (w.has_value()) {
    EXPECT_FALSE(RunEval(va, *w).empty())
        << ToPattern(rgx) << " witness \"" << w->text() << "\"";
  } else {
    // Unsatisfiable: no document up to length 4 may produce output.
    for (const Document& d : SampleDocs())
      EXPECT_TRUE(RunEval(va, d).empty()) << ToPattern(rgx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace spanners
