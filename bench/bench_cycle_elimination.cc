// E10 (Theorem 4.7 / Prop 4.8): cycle elimination runs in polynomial time
// (cycle-length sweep), while the simple-rule → union-of-functional-rules
// decomposition blows up exponentially with the disjunct count.
#include <benchmark/benchmark.h>

#include "spanners.h"

namespace {

using namespace spanners;

ExtractionRule CycleRule(size_t k) {
  // body: a·x0 ; x0.x1 ; x1.x2 ; ... ; x_{k-1}.x0
  auto var = [](size_t i) { return "cy" + std::to_string(i); };
  RgxPtr body = RgxNode::Concat(RgxNode::Lit('a'), RgxNode::SpanVar(var(0)));
  std::vector<RuleConstraint> constraints;
  for (size_t i = 0; i < k; ++i) {
    constraints.push_back({Variable::Intern(var(i)),
                           RgxNode::SpanVar(var((i + 1) % k))});
  }
  return ExtractionRule(std::move(body), std::move(constraints));
}

void BM_CycleElimination_Length(benchmark::State& state) {
  ExtractionRule rule = CycleRule(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<CycleElimResult> out = EliminateCycles(rule);
    benchmark::DoNotOptimize(out.ok());
  }
  state.counters["cycle_len"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CycleElimination_Length)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_FunctionalDecomposition_Blowup(benchmark::State& state) {
  // (x0 ∨ y0)(x1 ∨ y1)... : 2^k functional alternatives (Prop 4.8).
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i) {
    parts.push_back(
        RgxNode::Disj(RgxNode::SpanVar("fx" + std::to_string(i)),
                      RgxNode::SpanVar("fy" + std::to_string(i))));
  }
  ExtractionRule rule(RgxNode::Concat(std::move(parts)), {});
  size_t members = 0;
  for (auto _ : state) {
    Result<FunctionalDagRules> out = ToFunctionalDagRules(rule);
    members = out.ok() ? out->rules.size() : 0;
    benchmark::DoNotOptimize(members);
  }
  state.counters["disjunctions"] = static_cast<double>(k);
  state.counters["union_members"] = static_cast<double>(members);
}
BENCHMARK(BM_FunctionalDecomposition_Blowup)->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
