// E6 (Theorems 5.8 / 5.9): rule evaluation complexity.
// Sequential tree-like rules evaluate in PTIME (document-length sweep);
// NonEmp of functional dag-like rules is NP-hard (1-IN-3-SAT instances,
// exponential growth in the clause count).
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/reductions.h"

namespace {

using namespace spanners;

void BM_TreeRuleEval_DocLength(benchmark::State& state) {
  ExtractionRule rule =
      ExtractionRule::Parse(
          "x{.*}(,y{.*}|\\e)(,z{.*}|\\e) && x.([^,]*) && y.([^,]*) && "
          "z.([^,]*)")
          .ValueOrDie();
  // CSV-ish content: n fields of three letters.
  std::string text = "abc";
  for (int i = 1; i < state.range(0); ++i) text += ",abc";
  Document doc(text);
  for (auto _ : state) {
    bool ok = EvalTreeRule(rule, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
  state.counters["doc_len"] = static_cast<double>(doc.length());
}
BENCHMARK(BM_TreeRuleEval_DocLength)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_TreeRuleEval_WithAssignment(benchmark::State& state) {
  ExtractionRule rule =
      ExtractionRule::Parse(
          "x{.*}(,y{.*}|\\e) && x.([^,]*) && y.([^,]*)")
          .ValueOrDie();
  std::string text(static_cast<size_t>(state.range(0)), 'a');
  text += ",bb";
  Document doc(text);
  ExtendedMapping mu;
  mu.Assign(Variable::Intern("x"),
            Span(1, static_cast<Pos>(state.range(0)) + 1));
  for (auto _ : state) {
    bool ok = EvalTreeRule(rule, doc, mu);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_TreeRuleEval_WithAssignment)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_DagRuleNonEmp_1in3sat(benchmark::State& state) {
  std::mt19937 rng(static_cast<uint32_t>(42 + state.range(0)));
  workload::OneInThreeSat inst = workload::RandomOneInThreeSat(
      3 + static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(0)), &rng);
  ExtractionRule rule = workload::OneInThreeSatToDagRule(inst);
  Document hash("#");
  for (auto _ : state) {
    bool nonempty = !RuleReferenceEval(rule, hash).empty();
    benchmark::DoNotOptimize(nonempty);
  }
  state.counters["clauses"] = static_cast<double>(inst.clauses.size());
}
BENCHMARK(BM_DagRuleNonEmp_1in3sat)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
