// E9 (Theorem 4.3 / 4.5 / Prop 6.5): construction sizes.
// Thompson stays linear; determinization, sequentialisation, join and the
// VA→RGX path union carry the exponential blow-ups the paper proves.
#include <benchmark/benchmark.h>

#include "spanners.h"

namespace {

using namespace spanners;

void BM_Thompson_Size(benchmark::State& state) {
  // (ab|ba)^k — size-k expression.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i)
    parts.push_back(RgxNode::Disj(RgxNode::Str("ab"), RgxNode::Str("ba")));
  RgxPtr rgx = RgxNode::Concat(std::move(parts));
  size_t states = 0;
  for (auto _ : state) {
    VA va = CompileToVa(rgx);
    states = va.NumStates();
    benchmark::DoNotOptimize(va.NumTransitions());
  }
  state.counters["ast_nodes"] = static_cast<double>(rgx->NodeCount());
  state.counters["va_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Thompson_Size)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Determinize_Blowup(benchmark::State& state) {
  // (a|b)* a (a|b)^k — the classical 2^k subset blow-up.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts = {
      RgxNode::Star(RgxNode::Chars(CharSet::OfString("ab"))),
      RgxNode::Lit('a')};
  for (size_t i = 0; i < k; ++i)
    parts.push_back(RgxNode::Chars(CharSet::OfString("ab")));
  VA nfa = CompileToVa(RgxNode::Concat(std::move(parts)));
  size_t det_states = 0;
  for (auto _ : state) {
    VA det = Determinize(nfa);
    det_states = det.NumStates();
    benchmark::DoNotOptimize(det_states);
  }
  state.counters["nfa_states"] = static_cast<double>(nfa.NumStates());
  state.counters["dfa_states"] = static_cast<double>(det_states);
}
BENCHMARK(BM_Determinize_Blowup)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_MakeSequential_Blowup(benchmark::State& state) {
  // Star over k variable choices: status tracking multiplies states.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> branches;
  for (size_t i = 0; i < k; ++i)
    branches.push_back(
        RgxNode::Var("ms" + std::to_string(i), RgxNode::Lit('a')));
  branches.push_back(RgxNode::Lit('a'));
  VA va = CompileToVa(RgxNode::Star(RgxNode::Disj(std::move(branches))));
  size_t seq_states = 0;
  for (auto _ : state) {
    VA seq = MakeSequential(va);
    seq_states = seq.NumStates();
    benchmark::DoNotOptimize(seq_states);
  }
  state.counters["va_states"] = static_cast<double>(va.NumStates());
  state.counters["seq_states"] = static_cast<double>(seq_states);
}
BENCHMARK(BM_MakeSequential_Blowup)->DenseRange(1, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Join_SharedVarBlowup(benchmark::State& state) {
  // Join two automata sharing k variables (Theorem 4.5's exponential).
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> left, right;
  for (size_t i = 0; i < k; ++i) {
    std::string name = "jv" + std::to_string(i);
    left.push_back(RgxNode::Opt(RgxNode::Var(name, RgxNode::Lit('a'))));
    left.push_back(RgxNode::AnyStar());
    right.push_back(RgxNode::AnyStar());
    right.push_back(RgxNode::Opt(RgxNode::Var(name, RgxNode::Lit('a'))));
  }
  VA a1 = CompileToVa(RgxNode::Concat(std::move(left)));
  VA a2 = CompileToVa(RgxNode::Concat(std::move(right)));
  size_t join_states = 0;
  for (auto _ : state) {
    VA j = JoinVa(a1, a2);
    join_states = j.NumStates();
    benchmark::DoNotOptimize(join_states);
  }
  state.counters["shared_vars"] = static_cast<double>(k);
  state.counters["join_states"] = static_cast<double>(join_states);
}
BENCHMARK(BM_Join_SharedVarBlowup)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_VaToRgx_PathUnion(benchmark::State& state) {
  // k optional variables: the path union enumerates the 2^k use patterns.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i)
    parts.push_back(RgxNode::Opt(
        RgxNode::Var("pu" + std::to_string(i), RgxNode::Lit('a'))));
  VA va = CompileToVa(RgxNode::Concat(std::move(parts)));
  size_t disjuncts = 0;
  for (auto _ : state) {
    Result<std::vector<RgxPtr>> parts_out = VaToFunctionalRgxUnion(va);
    disjuncts = parts_out.ok() ? parts_out->size() : 0;
    benchmark::DoNotOptimize(disjuncts);
  }
  state.counters["vars"] = static_cast<double>(k);
  state.counters["disjuncts"] = static_cast<double>(disjuncts);
}
BENCHMARK(BM_VaToRgx_PathUnion)->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
