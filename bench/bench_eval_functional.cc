// E3 (Proposition 5.3): Eval[funcRGX] is PTIME — the functional fragment
// of [Fagin et al. 2015] inherits the sequential algorithm. Sweeps
// expression size and document length on random functional RGX.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/generators.h"

namespace {

using namespace spanners;

void BM_EvalFunctional_DocLength(benchmark::State& state) {
  std::mt19937 rng(21);
  workload::RandomRgxOptions opt;
  opt.functional_only = true;
  opt.max_depth = 5;
  opt.num_vars = 3;
  RgxPtr rgx = workload::RandomRgx(opt, &rng);
  VA va = CompileToVa(rgx);
  Document doc =
      workload::RandomDocument("ab", static_cast<size_t>(state.range(0)),
                               &rng);
  for (auto _ : state) {
    bool ok = EvalSequential(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EvalFunctional_DocLength)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_EvalFunctional_NumVars(benchmark::State& state) {
  // x1{a*}·x2{a*}·...·xk{a*}·b over a^n b: functional, k grows.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i)
    parts.push_back(RgxNode::Var("f" + std::to_string(i),
                                 RgxNode::Star(RgxNode::Lit('a'))));
  parts.push_back(RgxNode::Lit('b'));
  VA va = CompileToVa(RgxNode::Concat(std::move(parts)));
  Document doc(std::string(48, 'a') + "b");
  for (auto _ : state) {
    bool ok = EvalSequential(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
  state.counters["vars"] = static_cast<double>(k);
}
BENCHMARK(BM_EvalFunctional_NumVars)->DenseRange(1, 13, 3);

}  // namespace
