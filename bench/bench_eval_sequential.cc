// E1 (Theorem 5.7): Eval[seqRGX] / Eval[seqVA] is PTIME.
// Sweeps document length and expression size; the time per Eval call must
// grow polynomially (roughly linearly) in both.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/generators.h"

namespace {

using namespace spanners;

// Eval with the empty constraint over the Table 1 CSV, document sweep.
void BM_EvalSeq_DocLength(benchmark::State& state) {
  workload::LandRegistryOptions o;
  o.rows = static_cast<size_t>(state.range(0));
  Document doc = workload::LandRegistryDocument(o);
  VA va = CompileToVa(workload::SellerNameTaxRgx());
  for (auto _ : state) {
    bool ok = EvalSequential(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
  state.counters["doc_len"] = static_cast<double>(doc.length());
}
BENCHMARK(BM_EvalSeq_DocLength)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// Eval with a concrete assigned mapping (the harder oracle case).
void BM_EvalSeq_WithAssignment(benchmark::State& state) {
  workload::LandRegistryOptions o;
  o.rows = static_cast<size_t>(state.range(0));
  Document doc = workload::LandRegistryDocument(o);
  VA va = CompileToVa(workload::SellerNameTaxRgx());
  // First real output as the probe assignment.
  MappingSet all = RunEval(va, doc);
  ExtendedMapping mu;
  if (!all.empty())
    mu = ExtendedMapping::FromMapping(*all.begin());
  for (auto _ : state) {
    bool ok = EvalSequential(va, doc, mu);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["doc_len"] = static_cast<double>(doc.length());
}
BENCHMARK(BM_EvalSeq_WithAssignment)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Expression-size sweep at fixed document length:
// (a|b)*(e0{a+}|e0{b+})(a|b)*(e1{a+}|e1{b+})... — k variable groups.
void BM_EvalSeq_ExprSize(benchmark::State& state) {
  std::mt19937 rng(11);
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i) {
    std::string name = "e" + std::to_string(i);
    parts.push_back(RgxNode::Star(RgxNode::Chars(CharSet::OfString("ab"))));
    parts.push_back(
        RgxNode::Disj(RgxNode::Var(name, RgxNode::Plus(RgxNode::Lit('a'))),
                      RgxNode::Var(name, RgxNode::Plus(RgxNode::Lit('b')))));
  }
  parts.push_back(RgxNode::Star(RgxNode::Chars(CharSet::OfString("ab"))));
  VA va = CompileToVa(RgxNode::Concat(std::move(parts)));
  Document doc = workload::RandomDocument("ab", 64, &rng);
  for (auto _ : state) {
    bool ok = EvalSequential(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
  state.counters["states"] = static_cast<double>(va.NumStates());
}
BENCHMARK(BM_EvalSeq_ExprSize)->DenseRange(2, 10, 2);

}  // namespace
