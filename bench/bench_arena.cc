// Microbenchmarks for the arena memory subsystem: bump allocation vs. the
// heap, Reset() reuse, and the flat open-addressing sets vs. their
// std::unordered_* counterparts on evaluator-shaped keys.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "core/document.h"
#include "core/mapping.h"
#include "core/spanner.h"

namespace {

using namespace spanners;

constexpr size_t kBlocks = 1024;
constexpr size_t kBlockBytes = 64;

// Bump allocation out of a reused arena (steady state: no malloc at all).
void BM_Arena_Allocate(benchmark::State& state) {
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    for (size_t i = 0; i < kBlocks; ++i)
      benchmark::DoNotOptimize(arena.Allocate(kBlockBytes));
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_Arena_Allocate);

// The same allocation pattern through operator new/delete.
void BM_Heap_Allocate(benchmark::State& state) {
  std::vector<char*> blocks(kBlocks);
  for (auto _ : state) {
    for (size_t i = 0; i < kBlocks; ++i) {
      blocks[i] = new char[kBlockBytes];
      benchmark::DoNotOptimize(blocks[i]);
    }
    for (char* p : blocks) delete[] p;
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_Heap_Allocate);

// ArenaVector growth from empty each round, arena retained.
void BM_ArenaVector_PushBack(benchmark::State& state) {
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    ArenaVector<uint64_t> v(&arena);
    for (uint64_t i = 0; i < kBlocks; ++i) v.push_back(i);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_ArenaVector_PushBack);

void BM_StdVector_PushBack(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint64_t> v;
    for (uint64_t i = 0; i < kBlocks; ++i) v.push_back(i);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_StdVector_PushBack);

// Evaluator-shaped visited-config keys: ~40 bytes, mostly distinct.
std::vector<std::string> ConfigKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string k(40, '\0');
    uint64_t x = i * 0x9e3779b97f4a7c15ULL;
    std::memcpy(&k[0], &x, 8);
    std::memcpy(&k[32], &i, 8);
    keys.push_back(std::move(k));
  }
  return keys;
}

void BM_FlatKeySet_Insert(benchmark::State& state) {
  const std::vector<std::string> keys = ConfigKeys(kBlocks);
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    FlatKeySet set(&arena, 64);
    for (const std::string& k : keys)
      set.Insert(k.data(), static_cast<uint32_t>(k.size()));
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_FlatKeySet_Insert);

void BM_UnorderedStringSet_Insert(benchmark::State& state) {
  const std::vector<std::string> keys = ConfigKeys(kBlocks);
  for (auto _ : state) {
    std::unordered_set<std::string> set;
    for (const std::string& k : keys) set.insert(k);
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_UnorderedStringSet_Insert);

// Probe throughput of the word-at-a-time (SSE2 / SWAR) control-byte
// matching: repeated lookups against a warm set — hits (duplicate Insert
// is a pure probe) and misses — vs. std::unordered_set.
void BM_FlatKeySet_ProbeHit(benchmark::State& state) {
  const std::vector<std::string> keys = ConfigKeys(kBlocks);
  Arena arena;
  FlatKeySet set(&arena, kBlocks * 2);
  for (const std::string& k : keys)
    set.Insert(k.data(), static_cast<uint32_t>(k.size()));
  for (auto _ : state) {
    for (const std::string& k : keys)
      benchmark::DoNotOptimize(
          set.Insert(k.data(), static_cast<uint32_t>(k.size())).second);
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_FlatKeySet_ProbeHit);

void BM_UnorderedStringSet_ProbeHit(benchmark::State& state) {
  const std::vector<std::string> keys = ConfigKeys(kBlocks);
  std::unordered_set<std::string> set(keys.begin(), keys.end());
  for (auto _ : state) {
    for (const std::string& k : keys)
      benchmark::DoNotOptimize(set.find(k) != set.end());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_UnorderedStringSet_ProbeHit);

void BM_FlatMappingSet_ProbeHit(benchmark::State& state) {
  Arena arena;
  FlatMappingSet set(&arena, kBlocks * 2);
  std::vector<std::vector<SpanTuple>> rows;
  for (uint32_t i = 0; i < kBlocks; ++i)
    rows.push_back({SpanTuple{1, i + 1, i + 3}, SpanTuple{2, i + 4, i + 9}});
  for (auto& r : rows) set.Insert(r.data(), 2);
  for (auto _ : state) {
    for (const auto& r : rows)
      benchmark::DoNotOptimize(set.Contains(r.data(), 2));
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_FlatMappingSet_ProbeHit);

void BM_FlatMappingSet_ProbeMiss(benchmark::State& state) {
  Arena arena;
  FlatMappingSet set(&arena, kBlocks * 2);
  std::vector<std::vector<SpanTuple>> rows;
  for (uint32_t i = 0; i < kBlocks; ++i)
    rows.push_back({SpanTuple{1, i + 1, i + 3}, SpanTuple{2, i + 4, i + 9}});
  for (auto& r : rows) set.Insert(r.data(), 2);
  std::vector<std::vector<SpanTuple>> absent;  // same shape, different spans
  for (uint32_t i = 0; i < kBlocks; ++i)
    absent.push_back(
        {SpanTuple{1, i + 1, i + 2}, SpanTuple{2, i + 5, i + 9}});
  for (auto _ : state) {
    for (const auto& r : absent)
      benchmark::DoNotOptimize(set.Contains(r.data(), 2));
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_FlatMappingSet_ProbeMiss);

// Mapping dedup: 3-variable span tuples, as produced by run enumeration.
std::vector<std::vector<SpanTuple>> TupleRows(size_t n) {
  std::vector<std::vector<SpanTuple>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t base = static_cast<uint32_t>(i * 7 + 1);
    rows.push_back({SpanTuple{1, base, base + 3},
                    SpanTuple{2, base + 4, base + 9},
                    SpanTuple{3, base + 10, base + 12}});
  }
  return rows;
}

void BM_FlatMappingSet_Insert(benchmark::State& state) {
  const auto rows = TupleRows(kBlocks);
  Arena arena;
  for (auto _ : state) {
    arena.Reset();
    FlatMappingSet set(&arena);
    for (const auto& row : rows)
      set.Insert(row.data(), static_cast<uint32_t>(row.size()));
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_FlatMappingSet_Insert);

void BM_MappingSet_Insert(benchmark::State& state) {
  const auto rows = TupleRows(kBlocks);
  for (auto _ : state) {
    MappingSet set;
    for (const auto& row : rows) {
      Mapping m;
      for (const SpanTuple& t : row) m.Set(t.var, Span(t.begin, t.end));
      set.Insert(std::move(m));
    }
    benchmark::DoNotOptimize(set.size());
  }
  state.SetItemsProcessed(state.iterations() * kBlocks);
}
BENCHMARK(BM_MappingSet_Insert);

// End-to-end effect of arena reuse on the run-enumeration evaluator:
// persistent arena Reset() between documents vs. a fresh arena per call.
void BM_RunEval_ArenaReused(benchmark::State& state) {
  Spanner s =
      Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  Document doc("case,Seller: Alice Cooper,price 100\n"
               "case,Seller: Bob Dylan,price 200\n");
  Arena arena;
  std::vector<Mapping> out;
  for (auto _ : state) {
    out.clear();
    s.ExtractAllInto(Spanner::Evaluator::kRunEnumeration, doc, &arena, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunEval_ArenaReused);

void BM_RunEval_FreshArena(benchmark::State& state) {
  Spanner s =
      Spanner::FromPattern(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  Document doc("case,Seller: Alice Cooper,price 100\n"
               "case,Seller: Bob Dylan,price 200\n");
  std::vector<Mapping> out;
  for (auto _ : state) {
    Arena arena;
    out.clear();
    s.ExtractAllInto(Spanner::Evaluator::kRunEnumeration, doc, &arena, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunEval_FreshArena);

}  // namespace
