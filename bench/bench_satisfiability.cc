// E7 (Theorems 6.1 / 6.2): Sat[VA] is NP-complete while Sat[seqVA] is
// reachability. The sequential sweep grows automaton size (linear time);
// the general side uses the paper's 1-IN-3-SAT spanRGX images.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/generators.h"
#include "workload/reductions.h"

namespace {

using namespace spanners;

void BM_SatSequential_Size(benchmark::State& state) {
  // Long sequential expression: (s0|t0)(s1|t1)... with letters.
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i) {
    parts.push_back(RgxNode::Disj(
        RgxNode::Var("sq" + std::to_string(i), RgxNode::Str("ab")),
        RgxNode::Str("ba")));
  }
  VA va = CompileToVa(RgxNode::Concat(std::move(parts)));
  for (auto _ : state) {
    bool sat = IsSatisfiableSequentialVa(va);
    benchmark::DoNotOptimize(sat);
  }
  state.counters["states"] = static_cast<double>(va.NumStates());
}
BENCHMARK(BM_SatSequential_Size)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_SatGeneral_1in3sat(benchmark::State& state) {
  std::mt19937 rng(static_cast<uint32_t>(7 * state.range(0)));
  workload::OneInThreeSat inst = workload::RandomOneInThreeSat(
      3 + static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(0)), &rng);
  VA va = CompileToVa(workload::OneInThreeSatToSpanRgx(inst));
  for (auto _ : state) {
    bool sat = IsSatisfiableVa(va);
    benchmark::DoNotOptimize(sat);
  }
  state.counters["clauses"] = static_cast<double>(inst.clauses.size());
  state.counters["vars"] = static_cast<double>(va.Vars().size());
}
BENCHMARK(BM_SatGeneral_1in3sat)->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
