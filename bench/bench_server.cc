// Benchmarks for the spanexd serving path.
//
// BM_ServedBatch_Fleet pairs, within each iteration, one extract_batch
// served over the AF_UNIX JSONL protocol (client → admission queue →
// executor → chunked row stream back) against one in-process
// ExtractMulti over the identical corpus and fleet. The served_ratio
// counter — served throughput as a fraction of in-process throughput —
// is what tools/run_bench.sh gates (≥ 0.90): the protocol, framing and
// socket hops may cost at most 10% on a real extraction workload.
//
// BM_ServerOpenLoop drives one server with N concurrent clients, each
// issuing single-document extract requests open-loop (fire the next
// request the moment the previous answer lands), and reports aggregate
// qps plus client-observed p50/p99 latency — the serving profile a
// resident spanexd shows under fan-in.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/generators.h"

namespace spanners {
namespace {

using engine::BatchExtractor;
using engine::BatchOptions;
using engine::Corpus;
using engine::MultiBatchResult;
using engine::MultiQueryExtractor;
using engine::OutputFormat;

/// One server on its own Serve() thread, fleet patterns pre-registered by
/// the returned control client. Drains and joins on destruction.
class BenchServer {
 public:
  BenchServer(Corpus corpus, size_t num_threads) {
    server::ServerOptions options;
    options.socket_path =
        "/tmp/bench_spanexd_" +
        std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    options.num_threads = num_threads;
    options.queue_capacity = 4096;
    options.max_inflight_per_client = 64;
    socket_path_ = options.socket_path;
    server_.emplace(std::move(options), std::move(corpus));
    Status started = server_->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench_server: %s\n",
                   started.ToString().c_str());
      std::abort();
    }
    thread_ = std::thread([this] { server_->Serve(); });
  }

  ~BenchServer() {
    server_->RequestDrain();
    thread_.join();
    std::remove(socket_path_.c_str());
  }

  server::Client Connect() {
    Result<server::Client> c = server::Client::Connect(socket_path_);
    if (!c.ok()) {
      std::fprintf(stderr, "bench_server: %s\n",
                   c.status().ToString().c_str());
      std::abort();
    }
    return std::move(c).value();
  }

 private:
  std::optional<server::Server> server_;
  std::string socket_path_;
  std::thread thread_;
};

workload::PatternFleet BenchFleet() {
  workload::FleetOptions o;
  o.documents = 2000;
  o.doc_bytes = 450;
  o.num_patterns = 8;
  return workload::MakePatternFleet(o);
}

// Served extract_batch vs in-process ExtractMulti, paired per iteration
// (same machine state, same corpus, same plans — the difference IS the
// serving overhead). Arg is the extraction thread count on both sides.
void BM_ServedBatch_Fleet(benchmark::State& state) {
  workload::PatternFleet generated = BenchFleet();
  Corpus corpus(std::move(generated.documents));
  const size_t docs_per_pass = corpus.size();
  const size_t threads = size_t(state.range(0));

  std::vector<std::shared_ptr<const engine::ExtractionPlan>> plans;
  for (const std::string& p : generated.patterns)
    plans.push_back(std::make_shared<const engine::ExtractionPlan>(
        engine::ExtractionPlan::Compile(p).ValueOrDie()));
  MultiQueryExtractor fleet(plans);
  BatchOptions bo;
  bo.num_threads = threads;
  BatchExtractor inproc(bo);
  MultiBatchResult inproc_result;

  BenchServer bench_server(Corpus(corpus.docs()), threads);
  server::Client client = bench_server.Connect();
  for (const std::string& p : generated.patterns) {
    if (!client.Register(p).ok()) std::abort();
  }

  size_t served_bytes = 0;
  auto run_served = [&] {
    served_bytes = 0;
    Result<server::Client::ExtractSummary> summary = client.ExtractBatch(
        OutputFormat::kTsv, /*header=*/false, /*all_resident=*/false,
        [&](const std::string& row) { served_bytes += row.size() + 1; });
    if (!summary.ok()) std::abort();
  };
  run_served();                                       // warm-up
  inproc.ExtractMultiInto(fleet, corpus, &inproc_result);

  using Clock = std::chrono::steady_clock;
  double served_s = 0, inproc_s = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    run_served();
    auto t1 = Clock::now();
    inproc.ExtractMultiInto(fleet, corpus, &inproc_result);
    auto t2 = Clock::now();
    served_s += std::chrono::duration<double>(t1 - t0).count();
    inproc_s += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(served_bytes);
    benchmark::DoNotOptimize(inproc_result);
  }
  const double docs =
      static_cast<double>(state.iterations()) * docs_per_pass;
  const double served_rate = served_s > 0 ? docs / served_s : 0;
  const double inproc_rate = inproc_s > 0 ? docs / inproc_s : 0;
  state.counters["served_docs/s"] = served_rate;
  state.counters["inproc_docs/s"] = inproc_rate;
  state.counters["served_ratio"] =
      inproc_rate > 0 ? served_rate / inproc_rate : 0;
  state.counters["plans"] = static_cast<double>(plans.size());
}
BENCHMARK(BM_ServedBatch_Fleet)
    ->Arg(1)  // also the /1/ quick-filter name CI runs
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Open-loop fan-in: Arg clients each hammer single-document extract
// requests; the benchmark reports aggregate qps and the client-observed
// p50/p99. One extraction (one small document under one plan) is cheap,
// so this measures the serving machinery — parse, admit, execute,
// respond — under concurrency, not the extractor.
void BM_ServerOpenLoop(benchmark::State& state) {
  const size_t num_clients = size_t(state.range(0));
  Corpus corpus;
  corpus.Add(Document("ERR 123 one line document"));
  BenchServer bench_server(std::move(corpus), /*num_threads=*/2);

  const std::string doc = "ERR 4981 alpha beta gamma delta";
  for (auto _ : state) {
    std::vector<std::vector<double>> latencies(num_clients);
    constexpr int kRequestsPerClient = 200;
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    using Clock = std::chrono::steady_clock;
    const auto wall0 = Clock::now();
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        server::Client client = bench_server.Connect();
        if (!client.Register(".*ERR x{[0-9]+}.*").ok()) std::abort();
        latencies[c].reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const auto t0 = Clock::now();
          Result<server::Client::ExtractSummary> summary =
              client.Extract(doc, /*doc_index=*/0, OutputFormat::kTsv,
                             /*header=*/false, nullptr);
          const auto t1 = Clock::now();
          if (!summary.ok()) std::abort();
          latencies[c].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall =
        std::chrono::duration<double>(Clock::now() - wall0).count();

    std::vector<double> all;
    for (const std::vector<double>& l : latencies)
      all.insert(all.end(), l.begin(), l.end());
    std::sort(all.begin(), all.end());
    const double qps = wall > 0 ? double(all.size()) / wall : 0;
    state.counters["qps"] = qps;
    state.counters["p50_us"] = 1e6 * all[all.size() / 2];
    state.counters["p99_us"] = 1e6 * all[all.size() * 99 / 100];
    state.counters["clients"] = static_cast<double>(num_clients);
  }
}
BENCHMARK(BM_ServerOpenLoop)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace spanners
