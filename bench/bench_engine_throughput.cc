// Engine throughput: documents/sec and mappings/sec of BatchExtractor over
// generated corpora, swept by thread count. The interesting curves:
// scaling of the sequential-fragment workloads (land registry, server log)
// with threads, the allocations/doc trajectory of the arena-backed hot
// path (near zero in steady state), and the plan-cache hit path vs. fresh
// compilation. tools/run_bench.sh runs this binary and records the JSON
// output as BENCH_engine.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "engine/engine.h"
#include "query/compile.h"
#include "query/parser.h"
#include "workload/generators.h"

// ---- allocation accounting ----------------------------------------------
// Process-wide operator new override counting every heap allocation, so
// the benchmarks can report allocations per document. Only counts; defers
// to malloc/free for the actual memory.

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace spanners;
using namespace spanners::engine;

ExtractionPlan LandRegistryPlan() {
  return ExtractionPlan::FromSpanner(
      Spanner::FromRgx(workload::SellerNameTaxRgx()));
}

void ReportBatchCounters(benchmark::State& state, size_t corpus_size,
                         uint64_t mappings, uint64_t allocs) {
  const double docs =
      static_cast<double>(state.iterations()) * static_cast<double>(corpus_size);
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  state.counters["docs/s"] =
      benchmark::Counter(docs, benchmark::Counter::kIsRate);
  state.counters["mappings/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * mappings),
      benchmark::Counter::kIsRate);
  state.counters["allocs/doc"] =
      benchmark::Counter(docs == 0 ? 0 : static_cast<double>(allocs) / docs);
}

// docs/sec, mappings/sec and allocations/doc over the Table 1 CSV corpus,
// thread sweep.
void BM_BatchExtract_LandRegistry(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 1000;
  o.rows_per_document = 4;
  Corpus corpus(workload::LandRegistryCorpus(o));
  ExtractionPlan plan = LandRegistryPlan();
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  // The serving loop refills one BatchResult (ExtractInto), so steady
  // state recycles every per-doc vector and pooled mapping.
  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      g_heap_allocs.load() - allocs_before);
  state.counters["threads"] = static_cast<double>(bo.num_threads);
}
BENCHMARK(BM_BatchExtract_LandRegistry)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same sweep over the server-log corpus (3 variables, optional field).
void BM_BatchExtract_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 500;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      g_heap_allocs.load() - allocs_before);
}
BENCHMARK(BM_BatchExtract_ServerLog)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Low-selectivity needle-in-haystack corpus (1% of documents match): the
// common batch-extraction case. The gated path memchr-scans for required
// literals and consults the cached lazy DFA before touching an evaluator,
// so the 99% non-matching documents cost a substring scan each; the
// NoGate variant runs the plain evaluator on every document (the pre-gate
// engine behaviour) for comparison.
void BM_BatchExtract_LowSelectivity(benchmark::State& state) {
  workload::NeedleOptions o;  // 2000 docs × ~512B, 1% match rate
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      g_heap_allocs.load() - allocs_before);
  state.counters["matched_docs"] =
      static_cast<double>(result.MatchedDocuments());
}
BENCHMARK(BM_BatchExtract_LowSelectivity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BatchExtract_LowSelectivity_NoGate(benchmark::State& state) {
  workload::NeedleOptions o;
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  plan.set_gating_enabled(false);
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      g_heap_allocs.load() - allocs_before);
}
BENCHMARK(BM_BatchExtract_LowSelectivity_NoGate)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Algebra-query workload: a union of two extraction views fused into one
// automaton, joined relationally against a third over the shared method
// variable, thread sweep. Exercises the whole src/query/ pipeline — VA
// pushdown, the arena-backed hash join and the pooled mapping path.
void BM_QueryBatchExtract_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 300;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  const char* kQuery =
      "join("
      "union("
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) (p{[^ \\n]*}) [0-9]+"
      "( err=(c{[a-z]+})|\\e)\\n.*\"), "
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{GET}) (p{[^ \\n]*}) [0-9]+\\n.*\")), "
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) [^ \\n]* (s{[0-9]+})"
      "( err=[a-z]+|\\e)\\n.*\"))";
  query::CompiledQuery q =
      query::CompiledQuery::Compile(query::ParseQuery(kQuery).ValueOrDie())
          .ValueOrDie();
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(q, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = g_heap_allocs.load();
  for (auto _ : state) {
    extractor.ExtractInto(q, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      g_heap_allocs.load() - allocs_before);
  state.counters["scans"] = static_cast<double>(q.num_scans());
}
BENCHMARK(BM_QueryBatchExtract_ServerLog)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Plan-cache hit path vs. compiling the pattern from scratch each time.
void BM_PlanCache_Hit(benchmark::State& state) {
  PlanCache cache;
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  cache.GetOrCompile(kPattern).ValueOrDie();
  for (auto _ : state) {
    auto plan = cache.GetOrCompile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_Hit);

void BM_PlanCache_CompileEachTime(benchmark::State& state) {
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  for (auto _ : state) {
    auto plan = ExtractionPlan::Compile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_CompileEachTime);

}  // namespace
