// Engine throughput: documents/sec and mappings/sec of BatchExtractor over
// generated corpora, swept by thread count. The interesting curves:
// scaling of the sequential-fragment workloads (land registry, server log)
// with threads, and the plan-cache hit path vs. fresh compilation.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "workload/generators.h"

namespace {

using namespace spanners;
using namespace spanners::engine;

ExtractionPlan LandRegistryPlan() {
  return ExtractionPlan::FromSpanner(
      Spanner::FromRgx(workload::SellerNameTaxRgx()));
}

// docs/sec and mappings/sec over the Table 1 CSV corpus, thread sweep.
void BM_BatchExtract_LandRegistry(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 1000;
  o.rows_per_document = 4;
  Corpus corpus(workload::LandRegistryCorpus(o));
  ExtractionPlan plan = LandRegistryPlan();
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  uint64_t mappings = 0;
  for (auto _ : state) {
    BatchResult result = extractor.Extract(plan, corpus);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * corpus.size()),
      benchmark::Counter::kIsRate);
  state.counters["mappings/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * mappings),
      benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(bo.num_threads);
}
BENCHMARK(BM_BatchExtract_LandRegistry)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same sweep over the server-log corpus (3 variables, optional field).
void BM_BatchExtract_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 500;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  uint64_t mappings = 0;
  for (auto _ : state) {
    BatchResult result = extractor.Extract(plan, corpus);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * corpus.size()),
      benchmark::Counter::kIsRate);
  state.counters["mappings/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * mappings),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchExtract_ServerLog)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Plan-cache hit path vs. compiling the pattern from scratch each time.
void BM_PlanCache_Hit(benchmark::State& state) {
  PlanCache cache;
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  cache.GetOrCompile(kPattern).ValueOrDie();
  for (auto _ : state) {
    auto plan = cache.GetOrCompile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_Hit);

void BM_PlanCache_CompileEachTime(benchmark::State& state) {
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  for (auto _ : state) {
    auto plan = ExtractionPlan::Compile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_CompileEachTime);

}  // namespace
