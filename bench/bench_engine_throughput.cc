// Engine throughput: documents/sec and mappings/sec of BatchExtractor over
// generated corpora, swept by thread count. The interesting curves:
// scaling of the sequential-fragment workloads (land registry, server log)
// with threads, the allocations/doc trajectory of the arena-backed hot
// path (near zero in steady state), hardware cycles/byte of the serving
// loop (where perf counters are available), the telemetry on/off overhead
// the CI gate enforces, and the plan-cache hit path vs. fresh compilation.
// tools/run_bench.sh runs this binary and records the JSON output as
// BENCH_engine.json.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <new>

#include "common/cancel.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "query/compile.h"
#include "query/parser.h"
#include "storage/ngram_index.h"
#include "storage/segment.h"
#include "workload/generators.h"

// ---- allocation accounting ----------------------------------------------
// Process-wide operator new override reporting every heap allocation into
// the telemetry registry's allocation counter (obs::HeapAllocCount, the
// "mem.heap_allocs" snapshot metric), so the benchmarks' allocs/doc column
// and a --metrics snapshot agree on what they count. Defers to malloc/free
// for the actual memory.

void* operator new(std::size_t size) {
  spanners::obs::CountHeapAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  spanners::obs::CountHeapAlloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace spanners;
using namespace spanners::engine;

ExtractionPlan LandRegistryPlan() {
  return ExtractionPlan::FromSpanner(
      Spanner::FromRgx(workload::SellerNameTaxRgx()));
}

void ReportBatchCounters(benchmark::State& state, size_t corpus_size,
                         uint64_t mappings, uint64_t allocs) {
  const double docs =
      static_cast<double>(state.iterations()) * static_cast<double>(corpus_size);
  state.SetItemsProcessed(static_cast<int64_t>(docs));
  state.counters["docs/s"] =
      benchmark::Counter(docs, benchmark::Counter::kIsRate);
  state.counters["mappings/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * mappings),
      benchmark::Counter::kIsRate);
  state.counters["allocs/doc"] =
      benchmark::Counter(docs == 0 ? 0 : static_cast<double>(allocs) / docs);
}

// docs/sec, mappings/sec and allocations/doc over the Table 1 CSV corpus,
// thread sweep.
void BM_BatchExtract_LandRegistry(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 1000;
  o.rows_per_document = 4;
  Corpus corpus(workload::LandRegistryCorpus(o));
  ExtractionPlan plan = LandRegistryPlan();
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  // The serving loop refills one BatchResult (ExtractInto), so steady
  // state recycles every per-doc vector and pooled mapping.
  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["threads"] = static_cast<double>(bo.num_threads);
}
BENCHMARK(BM_BatchExtract_LandRegistry)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same sweep over the server-log corpus (3 variables, optional field).
void BM_BatchExtract_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 500;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
}
BENCHMARK(BM_BatchExtract_ServerLog)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Low-selectivity needle-in-haystack corpus (1% of documents match): the
// common batch-extraction case. The gated path memchr-scans for required
// literals and consults the cached lazy DFA before touching an evaluator,
// so the 99% non-matching documents cost a substring scan each; the
// NoGate variant runs the plain evaluator on every document (the pre-gate
// engine behaviour) for comparison.
void BM_BatchExtract_LowSelectivity(benchmark::State& state) {
  workload::NeedleOptions o;  // 2000 docs × ~512B, 1% match rate
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["matched_docs"] =
      static_cast<double>(result.MatchedDocuments());
}
BENCHMARK(BM_BatchExtract_LowSelectivity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BatchExtract_LowSelectivity_NoGate(benchmark::State& state) {
  workload::NeedleOptions o;
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  plan.set_gating_enabled(false);
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractInto(plan, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
}
BENCHMARK(BM_BatchExtract_LowSelectivity_NoGate)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Multi-query fleet workload: 32 resident needle plans, each matching ~1%
// of one shared corpus — the "many cached queries, same documents" serving
// case. The single-pass extractor scans each document once with the
// fleet's combined Aho–Corasick gate and only runs surviving plans'
// evaluators; the sequential baseline below runs the same (individually
// gated) plans one full corpus sweep each. Both report docs/s as corpus
// documents per wall second *for the whole fleet*, so the two numbers are
// directly comparable and tools/run_bench.sh gates multi ≥ sequential.
std::vector<std::shared_ptr<const ExtractionPlan>> FleetPlans(
    const std::vector<std::string>& patterns) {
  std::vector<std::shared_ptr<const ExtractionPlan>> plans;
  plans.reserve(patterns.size());
  for (const std::string& p : patterns)
    plans.push_back(std::make_shared<const ExtractionPlan>(
        ExtractionPlan::Compile(p).ValueOrDie()));
  return plans;
}

void BM_MultiQueryExtract_Fleet(benchmark::State& state) {
  workload::FleetOptions o;  // 32 plans × 1% match over 2000 × ~512B docs
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  MultiQueryExtractor fleet(FleetPlans(generated.patterns));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  MultiBatchResult result;
  extractor.ExtractMultiInto(fleet, corpus, &result);  // warm-up
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractMultiInto(fleet, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["plans"] = static_cast<double>(fleet.num_plans());
}
BENCHMARK(BM_MultiQueryExtract_Fleet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SequentialPlans_Fleet(benchmark::State& state) {
  workload::FleetOptions o;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  std::vector<std::shared_ptr<const ExtractionPlan>> plans =
      FleetPlans(generated.patterns);
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  std::vector<BatchResult> results(plans.size());
  for (size_t p = 0; p < plans.size(); ++p)
    extractor.ExtractInto(*plans[p], corpus, &results[p]);  // warm-up
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    mappings = 0;
    for (size_t p = 0; p < plans.size(); ++p) {
      extractor.ExtractInto(*plans[p], corpus, &results[p]);
      mappings += results[p].total_mappings;
    }
    benchmark::DoNotOptimize(results);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["plans"] = static_cast<double>(plans.size());
}
BENCHMARK(BM_SequentialPlans_Fleet)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Paired comparison of the same two paths, immune to machine drift: each
// iteration runs one single-pass fleet extraction and one sequential
// per-plan sweep back to back and accumulates each side's time, so the
// reported multi/sequential docs/s — and the speedup counter the CI gate
// checks — compare within-iteration instead of minutes apart. (The two
// separate benches above still provide the thread sweep and the absolute
// trajectory.)
void BM_FleetSinglePassVsSequential(benchmark::State& state) {
  workload::FleetOptions o;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  std::vector<std::shared_ptr<const ExtractionPlan>> plans =
      FleetPlans(generated.patterns);
  MultiQueryExtractor fleet(plans);
  BatchOptions bo;
  bo.num_threads = 1;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  MultiBatchResult multi_result;
  std::vector<BatchResult> seq_results(plans.size());
  extractor.ExtractMultiInto(fleet, corpus, &multi_result);  // warm-up
  for (size_t p = 0; p < plans.size(); ++p)
    extractor.ExtractInto(*plans[p], corpus, &seq_results[p]);

  using Clock = std::chrono::steady_clock;
  double multi_s = 0, seq_s = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    extractor.ExtractMultiInto(fleet, corpus, &multi_result);
    auto t1 = Clock::now();
    for (size_t p = 0; p < plans.size(); ++p)
      extractor.ExtractInto(*plans[p], corpus, &seq_results[p]);
    auto t2 = Clock::now();
    multi_s += std::chrono::duration<double>(t1 - t0).count();
    seq_s += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(multi_result);
    benchmark::DoNotOptimize(seq_results);
  }
  const double docs =
      static_cast<double>(state.iterations()) * corpus.size();
  state.counters["multi_docs/s"] = multi_s > 0 ? docs / multi_s : 0;
  state.counters["sequential_docs/s"] = seq_s > 0 ? docs / seq_s : 0;
  state.counters["speedup"] = multi_s > 0 ? seq_s / multi_s : 0;
  state.counters["plans"] = static_cast<double>(plans.size());
}
BENCHMARK(BM_FleetSinglePassVsSequential)
    ->Arg(1)  // single-thread; also keeps the name in the /1/ quick filter
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Posting-list-gated extraction over a persisted segment vs. the full
// in-memory scan, paired within the iteration like the fleet comparison
// above: each iteration runs one ExtractIndexed over the mmap'd segment
// (trigram index narrows 2000 docs to the ~1% candidates, only those are
// materialized) and one ExtractInto full sweep back to back. The speedup
// counter is what tools/run_bench.sh gates — on a needle corpus the index
// must never make extraction slower than scanning. Setup writes the
// segment to a temp file so the bench exercises the real mmap read path.
void BM_IndexedExtract_Needle(benchmark::State& state) {
  workload::NeedleOptions o;  // 2000 docs × ~512B, 1% match rate
  Corpus corpus(workload::NeedleCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::NeedleRgx()));
  BatchOptions bo;
  bo.num_threads = 1;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  char path[] = "/tmp/spanners_bench_segment_XXXXXX";
  const int fd = mkstemp(path);
  if (fd < 0) {
    state.SkipWithError("mkstemp failed");
    return;
  }
  close(fd);
  const Status written = storage::SegmentStore::Write(corpus, path);
  Result<storage::SegmentStore> opened = storage::SegmentStore::Open(path);
  if (!written.ok() || !opened.ok()) {
    unlink(path);
    state.SkipWithError("segment write/open failed");
    return;
  }
  const storage::SegmentStore store = std::move(opened).value();
  const storage::NgramIndex index = storage::NgramIndex::Build(store);

  BatchResult indexed_result, scan_result;
  IndexedStats istats;
  extractor.ExtractIndexed(plan, store, &index, &istats);  // warm-up
  extractor.ExtractInto(plan, corpus, &scan_result);

  using Clock = std::chrono::steady_clock;
  double indexed_s = 0, scan_s = 0;
  uint64_t mappings = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    indexed_result = extractor.ExtractIndexed(plan, store, &index);
    auto t1 = Clock::now();
    extractor.ExtractInto(plan, corpus, &scan_result);
    auto t2 = Clock::now();
    indexed_s += std::chrono::duration<double>(t1 - t0).count();
    scan_s += std::chrono::duration<double>(t2 - t1).count();
    mappings = indexed_result.total_mappings;
    benchmark::DoNotOptimize(indexed_result);
    benchmark::DoNotOptimize(scan_result);
  }
  unlink(path);

  const double docs =
      static_cast<double>(state.iterations()) * corpus.size();
  state.counters["indexed_docs/s"] = indexed_s > 0 ? docs / indexed_s : 0;
  state.counters["scan_docs/s"] = scan_s > 0 ? docs / scan_s : 0;
  state.counters["speedup"] = indexed_s > 0 ? scan_s / indexed_s : 0;
  state.counters["candidate_ratio"] = istats.CandidateRatio();
  state.counters["mappings"] = static_cast<double>(mappings);
}
BENCHMARK(BM_IndexedExtract_Needle)
    ->Arg(1)  // single-thread; also keeps the name in the /1/ quick filter
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Index construction throughput: trigram extraction + merge + varint
// encode over the needle segment, reported as corpus MB/s. Tracks the
// "index build MB/s" obs counter pair (index.build_bytes /
// index.build_ns) from the other side.
void BM_IndexBuild_Needle(benchmark::State& state) {
  workload::NeedleOptions o;
  Corpus corpus(workload::NeedleCorpus(o));

  char path[] = "/tmp/spanners_bench_segment_XXXXXX";
  const int fd = mkstemp(path);
  if (fd < 0) {
    state.SkipWithError("mkstemp failed");
    return;
  }
  close(fd);
  const Status written = storage::SegmentStore::Write(corpus, path);
  Result<storage::SegmentStore> opened = storage::SegmentStore::Open(path);
  if (!written.ok() || !opened.ok()) {
    unlink(path);
    state.SkipWithError("segment write/open failed");
    return;
  }
  const storage::SegmentStore store = std::move(opened).value();

  size_t num_terms = 0;
  for (auto _ : state) {
    storage::NgramIndex index = storage::NgramIndex::Build(store);
    num_terms = index.num_terms();
    benchmark::DoNotOptimize(index);
  }
  unlink(path);

  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(store.data_bytes()));
  state.counters["terms"] = static_cast<double>(num_terms);
}
BENCHMARK(BM_IndexBuild_Needle)->Unit(benchmark::kMillisecond);

// The same fleet with a match-free corpus: every document is rejected by
// the gates, so this pair isolates exactly what the single-pass tier
// amortizes — the per-document scan cost of 32 resident plans — from the
// evaluator work both paths share on matching documents. This is the
// robust (large-margin) comparison the CI gate enforces strictly; the 1%
// pair above is end-to-end and evaluator-bound, so its margin is small.
void BM_MultiQueryGate_Fleet(benchmark::State& state) {
  workload::FleetOptions o;
  o.match_rate = 0.0;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  MultiQueryExtractor fleet(FleetPlans(generated.patterns));
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  MultiBatchResult result;
  extractor.ExtractMultiInto(fleet, corpus, &result);  // warm-up
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractMultiInto(fleet, corpus, &result);
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), 0,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["plans"] = static_cast<double>(fleet.num_plans());
}
BENCHMARK(BM_MultiQueryGate_Fleet)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SequentialGate_Fleet(benchmark::State& state) {
  workload::FleetOptions o;
  o.match_rate = 0.0;
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  std::vector<std::shared_ptr<const ExtractionPlan>> plans =
      FleetPlans(generated.patterns);
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  std::vector<BatchResult> results(plans.size());
  for (size_t p = 0; p < plans.size(); ++p)
    extractor.ExtractInto(*plans[p], corpus, &results[p]);  // warm-up
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    for (size_t p = 0; p < plans.size(); ++p)
      extractor.ExtractInto(*plans[p], corpus, &results[p]);
    benchmark::DoNotOptimize(results);
  }
  ReportBatchCounters(state, corpus.size(), 0,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["plans"] = static_cast<double>(plans.size());
}
BENCHMARK(BM_SequentialGate_Fleet)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Algebra-query workload: a union of two extraction views fused into one
// automaton, joined relationally against a third over the shared method
// variable, thread sweep. Exercises the whole src/query/ pipeline — VA
// pushdown, the arena-backed hash join and the pooled mapping path.
void BM_QueryBatchExtract_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 300;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  const char* kQuery =
      "join("
      "union("
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) (p{[^ \\n]*}) [0-9]+"
      "( err=(c{[a-z]+})|\\e)\\n.*\"), "
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{GET}) (p{[^ \\n]*}) [0-9]+\\n.*\")), "
      "rgx(\"(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) [^ \\n]* (s{[0-9]+})"
      "( err=[a-z]+|\\e)\\n.*\"))";
  query::CompiledQuery q =
      query::CompiledQuery::Compile(query::ParseQuery(kQuery).ValueOrDie())
          .ValueOrDie();
  BatchOptions bo;
  bo.num_threads = static_cast<size_t>(state.range(0));
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(q, corpus, &result);  // warm-up, not counted
  uint64_t mappings = 0;
  const uint64_t allocs_before = obs::HeapAllocCount();
  for (auto _ : state) {
    extractor.ExtractInto(q, corpus, &result);
    mappings = result.total_mappings;
    benchmark::DoNotOptimize(result);
  }
  ReportBatchCounters(state, corpus.size(), mappings,
                      obs::HeapAllocCount() - allocs_before);
  state.counters["scans"] = static_cast<double>(q.num_scans());
}
BENCHMARK(BM_QueryBatchExtract_ServerLog)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Hardware cost of the serving loop: cycles/byte, instructions/byte and
// branch-miss rate of single-threaded extraction over the server-log
// corpus, via a perf_event group on the extracting thread (the loop runs
// inline, not on the pool, so the counters see all the work). Reported
// only where perf_event_open is usable; containers/CI that mask the
// syscall still run the bench and simply omit the columns.
void BM_CyclesPerByte_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 200;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  PlanScratch scratch;
  std::vector<Mapping> out;
  for (size_t i = 0; i < corpus.size(); ++i)
    plan.ExtractSortedInto(corpus[i], &scratch, &out);  // warm-up

  obs::PerfCounterGroup perf;
  perf.Start();
  for (auto _ : state) {
    for (size_t i = 0; i < corpus.size(); ++i)
      plan.ExtractSortedInto(corpus[i], &scratch, &out);
    benchmark::DoNotOptimize(out);
  }
  perf.Stop();

  const double bytes = static_cast<double>(state.iterations()) *
                       static_cast<double>(corpus.TotalBytes());
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["perf_available"] = perf.available() ? 1 : 0;
  const obs::PerfCounterGroup::Values v = perf.Read();
  if (v.valid && bytes > 0) {
    state.counters["cycles/byte"] =
        benchmark::Counter(static_cast<double>(v.cycles) / bytes);
    state.counters["instr/byte"] =
        benchmark::Counter(static_cast<double>(v.instructions) / bytes);
    state.counters["branch_miss_rate"] =
        v.instructions > 0 ? static_cast<double>(v.branch_misses) /
                                 static_cast<double>(v.instructions)
                           : 0;
  }
}
BENCHMARK(BM_CyclesPerByte_ServerLog)->Unit(benchmark::kMillisecond);

// Telemetry overhead, paired within the iteration (immune to machine
// drift, like BM_FleetSinglePassVsSequential): each iteration extracts
// the server-log corpus once with metrics recording off and once with it
// on, accumulating each side's time. The overhead_pct counter is what
// tools/run_bench.sh gates at ≤2% — the documented cost of shipping the
// instrumentation enabled.
void BM_MetricsOverhead_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 500;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  BatchOptions bo;
  bo.num_threads = 1;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted
  obs::SetEnabled(true);
  extractor.ExtractInto(plan, corpus, &result);  // warm the metric cells
  obs::SetEnabled(false);

  using Clock = std::chrono::steady_clock;
  double off_s = 0, on_s = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    extractor.ExtractInto(plan, corpus, &result);
    auto t1 = Clock::now();
    obs::SetEnabled(true);
    extractor.ExtractInto(plan, corpus, &result);
    obs::SetEnabled(false);
    auto t2 = Clock::now();
    off_s += std::chrono::duration<double>(t1 - t0).count();
    on_s += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(result);
  }
  const double docs =
      static_cast<double>(state.iterations()) * corpus.size();
  state.counters["disabled_docs/s"] = off_s > 0 ? docs / off_s : 0;
  state.counters["enabled_docs/s"] = on_s > 0 ? docs / on_s : 0;
  state.counters["overhead_pct"] =
      off_s > 0 ? (on_s / off_s - 1.0) * 100.0 : 0;
}
BENCHMARK(BM_MetricsOverhead_ServerLog)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Cancellation-check overhead, paired within the iteration exactly like
// BM_MetricsOverhead: each iteration extracts the corpus once with no
// CancelToken armed and once with a generously-armed token (far deadline
// + huge arena budget) that never trips, so every CancelGauge countdown
// and amortized Poll runs but no work is ever aborted. The overhead_pct
// counter is what tools/run_bench.sh gates at ≤2% — the documented cost
// of making every evaluation tier abortable.
void BM_CancelOverhead_ServerLog(benchmark::State& state) {
  workload::CorpusOptions o;
  o.documents = 500;
  o.rows_per_document = 3;
  Corpus corpus(workload::ServerLogCorpus(o));
  ExtractionPlan plan =
      ExtractionPlan::FromSpanner(Spanner::FromRgx(workload::LogLineRgx()));
  BatchOptions bo;
  bo.num_threads = 1;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  CancelToken token;
  token.ArmDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(24));
  token.ArmMemoryBudget(uint64_t{1} << 40);

  BatchResult result;
  extractor.ExtractInto(plan, corpus, &result);  // warm-up, not counted

  using Clock = std::chrono::steady_clock;
  double off_s = 0, on_s = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    extractor.ExtractInto(plan, corpus, &result);
    auto t1 = Clock::now();
    extractor.set_cancel(&token);
    extractor.ExtractInto(plan, corpus, &result);
    extractor.set_cancel(nullptr);
    auto t2 = Clock::now();
    off_s += std::chrono::duration<double>(t1 - t0).count();
    on_s += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(result);
  }
  const double docs =
      static_cast<double>(state.iterations()) * corpus.size();
  state.counters["unarmed_docs/s"] = off_s > 0 ? docs / off_s : 0;
  state.counters["armed_docs/s"] = on_s > 0 ? docs / on_s : 0;
  state.counters["overhead_pct"] =
      off_s > 0 ? (on_s / off_s - 1.0) * 100.0 : 0;
}
BENCHMARK(BM_CancelOverhead_ServerLog)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Same paired measurement over the multi-query fleet path: the shared
// Aho–Corasick scan, per-plan gating tiers, and evaluator calls all carry
// gauges, so this is the worst case for check density.
void BM_CancelOverhead_Fleet(benchmark::State& state) {
  workload::FleetOptions o;  // 32 plans × 1% match over 2000 × ~512B docs
  workload::PatternFleet generated = workload::MakePatternFleet(o);
  Corpus corpus(std::move(generated.documents));
  MultiQueryExtractor fleet(FleetPlans(generated.patterns));
  BatchOptions bo;
  bo.num_threads = 1;
  bo.min_docs_per_shard = 8;
  BatchExtractor extractor(bo);

  CancelToken token;
  token.ArmDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(24));
  token.ArmMemoryBudget(uint64_t{1} << 40);

  MultiBatchResult result;
  extractor.ExtractMultiInto(fleet, corpus, &result);  // warm-up

  using Clock = std::chrono::steady_clock;
  double off_s = 0, on_s = 0;
  for (auto _ : state) {
    auto t0 = Clock::now();
    extractor.ExtractMultiInto(fleet, corpus, &result);
    auto t1 = Clock::now();
    extractor.set_cancel(&token);
    extractor.ExtractMultiInto(fleet, corpus, &result);
    extractor.set_cancel(nullptr);
    auto t2 = Clock::now();
    off_s += std::chrono::duration<double>(t1 - t0).count();
    on_s += std::chrono::duration<double>(t2 - t1).count();
    benchmark::DoNotOptimize(result);
  }
  const double docs =
      static_cast<double>(state.iterations()) * corpus.size();
  state.counters["unarmed_docs/s"] = off_s > 0 ? docs / off_s : 0;
  state.counters["armed_docs/s"] = on_s > 0 ? docs / on_s : 0;
  state.counters["overhead_pct"] =
      off_s > 0 ? (on_s / off_s - 1.0) * 100.0 : 0;
}
BENCHMARK(BM_CancelOverhead_Fleet)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Plan-cache hit path vs. compiling the pattern from scratch each time.
void BM_PlanCache_Hit(benchmark::State& state) {
  PlanCache cache;
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  cache.GetOrCompile(kPattern).ValueOrDie();
  for (auto _ : state) {
    auto plan = cache.GetOrCompile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_Hit);

void BM_PlanCache_CompileEachTime(benchmark::State& state) {
  const char* kPattern = ".*Seller: (x{[^,\\n]*}),.*";
  for (auto _ : state) {
    auto plan = ExtractionPlan::Compile(kPattern).ValueOrDie();
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanCache_CompileEachTime);

}  // namespace
