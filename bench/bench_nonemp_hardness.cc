// E4 (Theorem 5.2): NonEmp[spanRGX] is NP-complete.
// The paper's 1-IN-3-SAT reduction provides adversarial instances: the
// solver's time grows exponentially with the clause count, while the
// sequential fragment (Theorem 5.7) stays polynomial on same-sized inputs.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/reductions.h"

namespace {

using namespace spanners;

void BM_NonEmp_SpanRgx_1in3sat(benchmark::State& state) {
  std::mt19937 rng(static_cast<uint32_t>(state.range(0)));
  workload::OneInThreeSat inst = workload::RandomOneInThreeSat(
      /*num_props=*/3 + static_cast<size_t>(state.range(0)),
      /*num_clauses=*/static_cast<size_t>(state.range(0)), &rng);
  VA va = CompileToVa(workload::OneInThreeSatToSpanRgx(inst));
  Document empty("");
  for (auto _ : state) {
    bool nonempty = !RunEval(va, empty).empty();
    benchmark::DoNotOptimize(nonempty);
  }
  state.counters["clauses"] = static_cast<double>(inst.clauses.size());
  state.counters["rgx_vars"] = static_cast<double>(va.Vars().size());
}
BENCHMARK(BM_NonEmp_SpanRgx_1in3sat)->DenseRange(2, 8, 1)
    ->Unit(benchmark::kMillisecond);

// Contrast: NonEmp of a *sequential* spanRGX of comparable size is PTIME.
void BM_NonEmp_SequentialSpanRgx(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0)) * 4;
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i) {
    parts.push_back(RgxNode::Disj(
        RgxNode::SpanVar("s" + std::to_string(i)),
        RgxNode::SpanVar("t" + std::to_string(i))));
  }
  VA va = CompileToVa(RgxNode::Concat(std::move(parts)));
  Document empty("");
  for (auto _ : state) {
    bool nonempty = MatchesSequential(va, empty);
    benchmark::DoNotOptimize(nonempty);
  }
  state.counters["spanrgx_vars"] = static_cast<double>(2 * k);
}
BENCHMARK(BM_NonEmp_SequentialSpanRgx)->DenseRange(2, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
