// E2 (Theorem 5.1 / Algorithm 1): polynomial-delay enumeration.
// Measures the worst observed delay (wall time and oracle calls) between
// consecutive outputs as the document grows: it must stay polynomial, and
// the per-output oracle calls must respect the |vars|·(|spans|+1)+1 bound.
#include <benchmark/benchmark.h>

#include <chrono>

#include "spanners.h"
#include "workload/generators.h"

namespace {

using namespace spanners;

void BM_EnumDelay_Csv(benchmark::State& state) {
  workload::LandRegistryOptions o;
  o.rows = static_cast<size_t>(state.range(0));
  Document doc = workload::LandRegistryDocument(o);
  VA va = CompileToVa(workload::SellerNameTaxRgx());
  double max_delay_ms = 0;
  double max_delay_calls = 0;
  double outputs = 0;
  for (auto _ : state) {
    MappingEnumerator e = MakeSequentialEnumerator(va, doc);
    size_t last_calls = 0;
    outputs = 0;
    auto last = std::chrono::steady_clock::now();
    while (e.Next().has_value()) {
      auto now = std::chrono::steady_clock::now();
      double ms =
          std::chrono::duration<double, std::milli>(now - last).count();
      max_delay_ms = std::max(max_delay_ms, ms);
      max_delay_calls = std::max(
          max_delay_calls, static_cast<double>(e.oracle_calls() - last_calls));
      last_calls = e.oracle_calls();
      last = now;
      outputs += 1;
    }
  }
  state.counters["outputs"] = outputs;
  state.counters["max_delay_ms"] = max_delay_ms;
  state.counters["max_delay_oracle_calls"] = max_delay_calls;
  state.counters["delay_bound_calls"] = static_cast<double>(
      va.Vars().size() * (doc.AllSpans().size() + 1) + 1);
}
BENCHMARK(BM_EnumDelay_Csv)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Run-based enumeration of the same outputs (output-sensitive baseline).
void BM_EnumRuns_Csv(benchmark::State& state) {
  workload::LandRegistryOptions o;
  o.rows = static_cast<size_t>(state.range(0));
  Document doc = workload::LandRegistryDocument(o);
  VA va = CompileToVa(workload::SellerNameTaxRgx());
  for (auto _ : state) {
    MappingSet out = RunEval(va, doc);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_EnumRuns_Csv)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
