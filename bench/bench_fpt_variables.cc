// E5 (Theorem 5.10): Eval[VA] parametrised by the number of variables is
// FPT — time f(k)·poly(n). Two sweeps over a non-sequential family
// ((x1{a}|...|xk{a}|a))*: document length with k fixed (polynomial) and k
// with the document fixed (the f(k) factor).
#include <benchmark/benchmark.h>

#include "spanners.h"

namespace {

using namespace spanners;

VA StarChoiceAutomaton(size_t k) {
  std::vector<RgxPtr> branches;
  for (size_t i = 0; i < k; ++i)
    branches.push_back(
        RgxNode::Var("fpt" + std::to_string(i), RgxNode::Lit('a')));
  branches.push_back(RgxNode::Lit('a'));
  return CompileToVa(RgxNode::Star(RgxNode::Disj(std::move(branches))));
}

void BM_FptEval_DocLength(benchmark::State& state) {
  VA va = StarChoiceAutomaton(3);
  Document doc(std::string(static_cast<size_t>(state.range(0)), 'a'));
  for (auto _ : state) {
    bool ok = EvalVa(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FptEval_DocLength)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_FptEval_NumVars(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  VA va = StarChoiceAutomaton(k);
  Document doc(std::string(24, 'a'));
  for (auto _ : state) {
    bool ok = EvalVa(va, doc, ExtendedMapping());
    benchmark::DoNotOptimize(ok);
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_FptEval_NumVars)->DenseRange(1, 9, 1)
    ->Unit(benchmark::kMillisecond);

// The harder probe: an assigned variable pins operations mid-document.
void BM_FptEval_WithAssignment(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  VA va = StarChoiceAutomaton(k);
  Document doc(std::string(24, 'a'));
  ExtendedMapping mu;
  mu.Assign(Variable::Intern("fpt0"), Span(5, 6));
  for (auto _ : state) {
    bool ok = EvalVa(va, doc, mu);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_FptEval_WithAssignment)->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
