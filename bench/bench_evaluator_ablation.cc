// Ablation: the three evaluation strategies on one workload
// (DESIGN.md §3 calls out the evaluator split as a design choice).
//
//   * RunEval            — output-sensitive run enumeration (practical)
//   * EnumerateSequential — Algorithm 1 over the PTIME oracle
//                           (worst-case polynomial delay guarantee)
//   * EvalVa              — the FPT evaluator used as a NonEmp oracle
//
// The measurements show why the library dispatches the way it does: run
// enumeration wins when outputs are sparse, Algorithm 1 pays a polynomial
// premium for its delay guarantee, and the FPT evaluator matches the
// sequential matcher on sequential inputs but scales in 3^k otherwise.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/generators.h"

namespace {

using namespace spanners;

VA CsvAutomaton() { return CompileToVa(workload::SellerNameTaxRgx()); }

Document Csv(size_t rows) {
  workload::LandRegistryOptions o;
  o.rows = rows;
  return workload::LandRegistryDocument(o);
}

void BM_Ablation_RunEval(benchmark::State& state) {
  VA va = CsvAutomaton();
  Document doc = Csv(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    MappingSet out = RunEval(va, doc);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Ablation_RunEval)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_Algorithm1(benchmark::State& state) {
  VA va = CsvAutomaton();
  Document doc = Csv(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    MappingSet out = EnumerateSequential(va, doc);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Ablation_Algorithm1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_NonEmp_SequentialMatcher(benchmark::State& state) {
  VA va = CsvAutomaton();
  Document doc = Csv(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = MatchesSequential(va, doc);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ablation_NonEmp_SequentialMatcher)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_NonEmp_FptEvaluator(benchmark::State& state) {
  VA va = CsvAutomaton();
  Document doc = Csv(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = MatchesVa(va, doc);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ablation_NonEmp_FptEvaluator)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
