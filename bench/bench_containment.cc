// E8 (Theorems 6.4 / 6.6 / 6.7): containment complexity.
// General containment on the paper's DNF-validity instances grows
// exponentially; the deterministic sequential point-disjoint product
// algorithm stays polynomial on growing automata.
#include <benchmark/benchmark.h>

#include "spanners.h"
#include "workload/reductions.h"

namespace {

using namespace spanners;

void BM_Containment_DnfValidity(benchmark::State& state) {
  std::mt19937 rng(static_cast<uint32_t>(13 + state.range(0)));
  workload::Dnf dnf = workload::RandomDnf(
      /*num_props=*/3, /*num_clauses=*/static_cast<size_t>(state.range(0)),
      &rng);
  auto [a1, a2] = workload::DnfValidityToContainment(dnf);
  for (auto _ : state) {
    bool contained = IsContainedIn(a1, a2);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["clauses"] = static_cast<double>(dnf.clauses.size());
  state.counters["a2_states"] = static_cast<double>(a2.NumStates());
}
BENCHMARK(BM_Containment_DnfValidity)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

VA ChainAutomaton(size_t k, bool wider) {
  // x0{a}·l0·x1{a}·l1·... deterministic, sequential, point-disjoint.
  std::vector<RgxPtr> parts;
  for (size_t i = 0; i < k; ++i) {
    parts.push_back(
        RgxNode::Var("pd" + std::to_string(i), RgxNode::Lit('a')));
    parts.push_back(wider ? RgxNode::Chars(CharSet::OfString("bc"))
                          : RgxNode::Lit('b'));
  }
  return Determinize(CompileToVa(RgxNode::Concat(std::move(parts))));
}

void BM_Containment_DetSeqPd(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  VA narrow = ChainAutomaton(k, /*wider=*/false);
  VA wide = ChainAutomaton(k, /*wider=*/true);
  for (auto _ : state) {
    bool contained = IsContainedInDetSeqPd(narrow, wide);
    benchmark::DoNotOptimize(contained);
  }
  state.counters["states"] = static_cast<double>(wide.NumStates());
}
BENCHMARK(BM_Containment_DetSeqPd)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

// The same inputs through the general algorithm, for the gap.
void BM_Containment_GeneralOnDetSeq(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  VA narrow = ChainAutomaton(k, false);
  VA wide = ChainAutomaton(k, true);
  for (auto _ : state) {
    bool contained = IsContainedIn(narrow, wide);
    benchmark::DoNotOptimize(contained);
  }
}
BENCHMARK(BM_Containment_GeneralOnDetSeq)->Arg(2)->Arg(8)->Arg(16);

}  // namespace
