// Conversions connecting extraction rules with RGX (paper §4.3):
//
//  * Proposition 4.8 — every simple rule is equivalent to a union of
//    functional dag-like rules (functional decomposition per formula,
//    cross product, then cycle elimination on each member).
//  * Lemma B.1 — every tree-like rule is equivalent to an RGX, by
//    recursively nesting constraint formulas into their variables.
//  * Theorem 4.10 (⇐ via Lemma B.2) — every RGX is equivalent to a union
//    of simple tree-like rules, via the functional (path-RGX) union.
//
// Scope note (DESIGN.md): the dag-like → tree-like step of Proposition
// 4.9 is implemented for rules whose graph is already a tree after
// normalisation; genuinely dag-shaped inputs yield NotSupported. The
// RGX ≡ rules equivalence is exercised end-to-end through the
// RGX → tree-rules → RGX round trip.
#ifndef SPANNERS_RULES_CONVERT_H_
#define SPANNERS_RULES_CONVERT_H_

#include <vector>

#include "common/status.h"
#include "rules/rule.h"

namespace spanners {

struct FunctionalDagRules {
  std::vector<ExtractionRule> rules;
  VarSet aux_vars;  // auxiliaries introduced by cycle elimination
};

/// Proposition 4.8. Precondition: `rule` is simple (InvalidArgument
/// otherwise). Unsatisfiable members are dropped.
Result<FunctionalDagRules> ToFunctionalDagRules(const ExtractionRule& rule);

/// Lemma B.1. Precondition: the rule graph is a tree rooted at doc
/// (after adding default x.Σ* constraints); NotSupported otherwise.
Result<RgxPtr> TreeRuleToRgx(const ExtractionRule& rule);

/// Theorem 4.10 (⇐): tree-like simple rules whose union is equivalent
/// to `rgx`. Empty vector means `rgx` is unsatisfiable.
std::vector<ExtractionRule> RgxToTreeRules(const RgxPtr& rgx);

}  // namespace spanners

#endif  // SPANNERS_RULES_CONVERT_H_
