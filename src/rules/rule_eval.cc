#include "rules/rule_eval.h"

#include "common/logging.h"
#include "rgx/reference_eval.h"

namespace spanners {

MappingSet EvalConstraintFormula(VarId x, const RgxPtr& formula,
                                 const Document& doc) {
  MappingSet out;
  for (const SpanMapping& sm : LowerEval(RgxNode::Var(x, formula), doc))
    out.Insert(sm.mapping);
  return out;
}

VarSet InstantiatedVars(const ExtractionRule& rule, const Mapping& mu0,
                        const std::vector<Mapping>& mu) {
  VarSet ivar = mu0.Domain();
  const auto& cs = rule.constraints();
  SPANNERS_CHECK(mu.size() == cs.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < cs.size(); ++i) {
      if (!ivar.Contains(cs[i].var)) continue;
      VarSet dom = mu[i].Domain();
      if (!dom.SubsetOf(ivar)) {
        ivar = ivar.Union(dom);
        changed = true;
      }
    }
  }
  return ivar;
}

namespace {

// Recursively chooses µi per constraint (a member of its candidate set or
// ∅), checking compatibility eagerly and the ivar conditions at the leaf.
void ChooseTuples(const ExtractionRule& rule, const Document& doc,
                  const std::vector<std::vector<Mapping>>& candidates,
                  const Mapping& mu0, size_t i, std::vector<Mapping>* chosen,
                  std::vector<bool>* is_empty_choice, MappingSet* out) {
  const auto& cs = rule.constraints();
  if (i == cs.size()) {
    VarSet ivar = InstantiatedVars(rule, mu0, *chosen);
    // Condition (2): xi ∈ ivar ⇒ µi was picked from ⟦xi.ϕi⟧ (not the ∅
    // stand-in); xi ∉ ivar ⇒ µi = ∅.
    for (size_t j = 0; j < cs.size(); ++j) {
      bool instantiated = ivar.Contains(cs[j].var);
      if (instantiated && (*is_empty_choice)[j]) return;
      if (!instantiated && !(*is_empty_choice)[j]) return;
    }
    Mapping result = mu0;
    for (const Mapping& m : *chosen) {
      std::optional<Mapping> u = Mapping::TryUnion(result, m);
      if (!u.has_value()) return;  // should not happen: checked eagerly
      result = *std::move(u);
    }
    out->Insert(std::move(result));
    return;
  }
  // Option A: xi not instantiated, µi = ∅.
  chosen->push_back(Mapping::Empty());
  is_empty_choice->push_back(true);
  ChooseTuples(rule, doc, candidates, mu0, i + 1, chosen, is_empty_choice,
               out);
  chosen->pop_back();
  is_empty_choice->pop_back();
  // Option B: pick a member, requiring pairwise compatibility so far.
  for (const Mapping& m : candidates[i]) {
    if (!m.CompatibleWith(mu0)) continue;
    bool ok = true;
    for (const Mapping& prev : *chosen) {
      if (!m.CompatibleWith(prev)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    chosen->push_back(m);
    is_empty_choice->push_back(false);
    ChooseTuples(rule, doc, candidates, mu0, i + 1, chosen, is_empty_choice,
                 out);
    chosen->pop_back();
    is_empty_choice->pop_back();
  }
}

}  // namespace

MappingSet RuleReferenceEval(const ExtractionRule& rule,
                             const Document& doc) {
  MappingSet body_mappings = ReferenceEval(rule.body(), doc);
  std::vector<std::vector<Mapping>> candidates;
  candidates.reserve(rule.constraints().size());
  for (const RuleConstraint& c : rule.constraints()) {
    MappingSet set = EvalConstraintFormula(c.var, c.formula, doc);
    candidates.emplace_back(set.Sorted());
  }

  MappingSet out;
  for (const Mapping& mu0 : body_mappings) {
    std::vector<Mapping> chosen;
    std::vector<bool> is_empty_choice;
    ChooseTuples(rule, doc, candidates, mu0, 0, &chosen, &is_empty_choice,
                 &out);
  }
  return out;
}

MappingSet UnionRuleEval(const std::vector<ExtractionRule>& rules,
                         const Document& doc) {
  MappingSet out;
  for (const ExtractionRule& r : rules)
    out = MappingSet::Union(out, RuleReferenceEval(r, doc));
  return out;
}

}  // namespace spanners
