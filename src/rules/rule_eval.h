// Reference semantics of extraction rules (paper §3.3): a tuple of
// mappings (µ0, µ1, ..., µm) satisfies ϕ when µ0 ∈ ⟦ϕ0⟧_d, every
// *instantiated* xi has µi ∈ ⟦xi.ϕi⟧_d (non-instantiated ones contribute
// ∅), and all µi are pairwise compatible; the output is ∪µi.
//
// This evaluator enumerates candidate tuples exhaustively — exponential,
// ground truth for tests. The PTIME algorithm for sequential tree-like
// rules (Theorem 5.9) lives in tree_eval.h.
#ifndef SPANNERS_RULES_RULE_EVAL_H_
#define SPANNERS_RULES_RULE_EVAL_H_

#include <vector>

#include "core/document.h"
#include "core/mapping.h"
#include "rules/rule.h"

namespace spanners {

/// ⟦x.R⟧_d = {µ | ∃s. (s, µ) ∈ [x{R}]_d} — the constraint-formula
/// semantics (the span may sit anywhere in the document).
MappingSet EvalConstraintFormula(VarId x, const RgxPtr& formula,
                                 const Document& doc);

/// ivar(ϕ, µ̄): the minimum set containing dom(µ0) and closed under
/// "xi instantiated ⇒ dom(µi) ⊆ ivar".
VarSet InstantiatedVars(const ExtractionRule& rule,
                        const Mapping& mu0,
                        const std::vector<Mapping>& mu);

/// ⟦ϕ⟧_d by exhaustive tuple enumeration.
MappingSet RuleReferenceEval(const ExtractionRule& rule, const Document& doc);

/// Union-of-rules semantics (paper §4.3): ⋃_ϕ ⟦ϕ⟧_d.
MappingSet UnionRuleEval(const std::vector<ExtractionRule>& rules,
                         const Document& doc);

}  // namespace spanners

#endif  // SPANNERS_RULES_RULE_EVAL_H_
