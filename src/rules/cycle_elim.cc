#include "rules/cycle_elim.h"

#include <map>
#include <set>
#include <string>

#include "common/logging.h"
#include "rgx/analysis.h"
#include "rules/graph.h"

namespace spanners {

RgxPtr Nu(const RgxPtr& rgx) {
  switch (rgx->kind()) {
    case RgxKind::kEpsilon:
      return RgxNode::Epsilon();
    case RgxKind::kChars:
      return nullptr;  // a letter can never spell a variable-only word
    case RgxKind::kVar:
      return rgx;  // ν(x) = x (spanRGX variable)
    case RgxKind::kConcat: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : rgx->children()) {
        RgxPtr nu = Nu(c);
        if (nu == nullptr) return nullptr;  // H · α = H
        parts.push_back(std::move(nu));
      }
      return RgxNode::Concat(std::move(parts));
    }
    case RgxKind::kDisj: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : rgx->children()) {
        RgxPtr nu = Nu(c);
        if (nu != nullptr) parts.push_back(std::move(nu));  // H ∨ α = α
      }
      if (parts.empty()) return nullptr;
      return RgxNode::Disj(std::move(parts));
    }
    case RgxKind::kStar:
      return RgxNode::Epsilon();  // ν(ϕ*) = ε
  }
  SPANNERS_CHECK(false) << "unhandled RgxKind";
  return nullptr;
}

namespace {

// Replaces every occurrence of a variable in `targets` by `replacement`
// (or by ε when replacement == nullptr).
RgxPtr ReplaceVars(const RgxPtr& rgx, const VarSet& targets,
                   const RgxPtr& replacement) {
  switch (rgx->kind()) {
    case RgxKind::kEpsilon:
    case RgxKind::kChars:
      return rgx;
    case RgxKind::kVar:
      if (targets.Contains(rgx->var()))
        return replacement != nullptr ? replacement : RgxNode::Epsilon();
      return RgxNode::Var(rgx->var(),
                          ReplaceVars(rgx->child(0), targets, replacement));
    case RgxKind::kConcat: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : rgx->children())
        parts.push_back(ReplaceVars(c, targets, replacement));
      return RgxNode::Concat(std::move(parts));
    }
    case RgxKind::kDisj: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : rgx->children())
        parts.push_back(ReplaceVars(c, targets, replacement));
      return RgxNode::Disj(std::move(parts));
    }
    case RgxKind::kStar:
      return RgxNode::Star(ReplaceVars(rgx->child(0), targets, replacement));
  }
  SPANNERS_CHECK(false) << "unhandled RgxKind";
  return rgx;
}

// A canonical unsatisfiable dag-like rule over no variables: the body can
// match no document (empty character class).
ExtractionRule UnsatisfiableRule() {
  return ExtractionRule(RgxNode::Chars(CharSet::None()), {});
}

// Fresh auxiliary variable names (interned; suffixed to avoid collisions).
VarId FreshAux(int* counter) {
  return Variable::Intern("__aux" + std::to_string((*counter)++));
}

}  // namespace

Result<CycleElimResult> EliminateCycles(const ExtractionRule& rule_in) {
  if (!rule_in.IsSimple())
    return Status::InvalidArgument("EliminateCycles requires a simple rule");
  if (!rule_in.IsFunctional())
    return Status::InvalidArgument(
        "EliminateCycles requires a functional rule");

  // Normalise 1: under the mapping semantics of Table 2, an occurrence of
  // x inside its own constraint formula can never bind ([x{..x..}] = ∅),
  // so such branches are dead: replace self-occurrences by an unmatchable
  // class. This also removes self-loops from Gϕ.
  std::vector<RuleConstraint> desloped;
  for (const RuleConstraint& c : rule_in.constraints()) {
    desloped.push_back(
        {c.var, ReplaceVars(c.formula, VarSet({c.var}),
                            RgxNode::Chars(CharSet::None()))});
  }
  ExtractionRule rule_nsl(rule_in.body(), std::move(desloped));

  // Normalise 2: give every variable a constraint (x.Σ* when missing) and
  // drop constraints of variables never instantiated (unreachable from
  // doc in Gϕ — their conjuncts are vacuous).
  RuleGraph g0(rule_nsl);
  VarSet reachable = g0.ReachableFromDoc();
  std::map<VarId, RgxPtr> formulas;
  for (VarId x : reachable) formulas[x] = RgxNode::AnyStar();
  for (const RuleConstraint& c : rule_nsl.constraints())
    if (reachable.Contains(c.var)) formulas[c.var] = c.formula;
  RgxPtr body = rule_nsl.body();

  // Colouring on the *original* formulas: black = every match contains a
  // letter (ν = H); red = black or can reach black.
  std::set<VarId> black;
  for (const auto& [x, f] : formulas)
    if (Nu(f) == nullptr) black.insert(x);
  // red via reverse reachability over the var graph.
  std::map<VarId, VarSet> succs;
  for (const auto& [x, f] : formulas)
    succs[x] = RgxVars(f).Intersect(reachable);
  std::set<VarId> red(black);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [x, s] : succs) {
      if (red.count(x) > 0) continue;
      for (VarId y : s) {
        if (red.count(y) > 0) {
          red.insert(x);
          changed = true;
          break;
        }
      }
    }
  }

  // Rebuild a working rule over the reachable constraints for SCC work.
  std::vector<RuleConstraint> work;
  for (const auto& [x, f] : formulas) work.push_back({x, f});
  ExtractionRule working(body, work);
  RuleGraph g(working);

  // Variables reachable from some cycle must take ε content; they get the
  // ν-rewritten constraints (the paper's "mark as type (3)").
  std::set<VarId> marked;
  int aux_counter = 0;
  VarSet aux_vars;

  for (const std::vector<size_t>& scc : g.SccsTopological()) {
    if (!g.SccHasCycle(scc)) continue;
    std::vector<VarId> members;
    for (size_t node : scc) {
      SPANNERS_CHECK(node != 0) << "doc node cannot lie on a cycle";
      members.push_back(g.VarOf(node));
    }
    VarSet member_set{std::vector<VarId>(members.begin(), members.end())};
    // Red cycle: unsatisfiable (a strictly-contained or letter-bearing
    // content requirement contradicts equality along the cycle).
    for (VarId m : members) {
      if (red.count(m) > 0)
        return CycleElimResult{UnsatisfiableRule(), VarSet()};
    }

    bool force_eps = g.SccIsSimpleCycle(scc) == false;
    for (VarId m : members)
      if (marked.count(m) > 0) force_eps = true;

    // Order members along the cycle: follow within-SCC edges from an
    // arbitrary start (for simple cycles this is the unique ordering; for
    // chordal ones any order works since everything collapses to ε).
    std::vector<VarId> ordered;
    {
      std::set<VarId> left(members.begin(), members.end());
      VarId cur = members[0];
      while (true) {
        ordered.push_back(cur);
        left.erase(cur);
        if (left.empty()) break;
        VarId next = cur;
        for (VarId y : RgxVars(formulas[cur])) {
          if (left.count(y) > 0) {
            next = y;
            break;
          }
        }
        if (next == cur) {
          // Not a path order (chordal); take any remaining member.
          next = *left.begin();
        }
        cur = next;
      }
    }

    VarId u = FreshAux(&aux_counter);
    aux_vars.Insert(u);
    if (!force_eps) {
      // Type (2) — simple green cycle y1 → ... → yk → y1: all members are
      // assigned one common span. Chain them: u.y1; yj.ν(ϕyj); break the
      // back edge by replacing y1 with Σ* in yk's ν-formula.
      formulas[u] = RgxNode::SpanVar(ordered[0]);
      for (size_t j = 0; j + 1 < ordered.size(); ++j) {
        RgxPtr nu = Nu(formulas[ordered[j]]);
        SPANNERS_CHECK(nu != nullptr) << "green member must have ν ≠ H";
        formulas[ordered[j]] = nu;
      }
      VarId yk = ordered.back();
      RgxPtr nu = Nu(formulas[yk]);
      SPANNERS_CHECK(nu != nullptr);
      formulas[yk] =
          ReplaceVars(nu, VarSet({ordered[0]}), RgxNode::AnyStar());
    } else {
      // Type (3) — chordal or downstream-of-a-cycle: all members take ε.
      // u.(y1 · y2 · ... · yk); member formulas lose letters and their
      // within-SCC references.
      std::vector<RgxPtr> chain;
      for (VarId m : ordered) chain.push_back(RgxNode::SpanVar(m));
      formulas[u] = RgxNode::Concat(std::move(chain));
      for (VarId m : ordered) {
        RgxPtr nu = Nu(formulas[m]);
        SPANNERS_CHECK(nu != nullptr);
        formulas[m] = ReplaceVars(nu, member_set, nullptr);  // members → ε
      }
    }

    // Redirect external references to cycle members: formulas of nodes
    // outside the SCC now mention u instead (all members share u's span,
    // or sit at u's position in the ε case).
    RgxPtr u_var = RgxNode::SpanVar(u);
    body = ReplaceVars(body, member_set, u_var);
    for (auto& [x, f] : formulas) {
      if (member_set.Contains(x) || x == u) continue;
      f = ReplaceVars(f, member_set, u_var);
    }

    // Everything reachable from the cycle is forced to ε content.
    for (size_t node : scc) {
      for (VarId y : g.ReachableFrom(node)) {
        if (!member_set.Contains(y)) marked.insert(y);
      }
    }
  }

  // Marked variables get their ν-rewritten formulas (ε content).
  for (VarId m : marked) {
    auto it = formulas.find(m);
    if (it == formulas.end()) continue;  // aux or already handled
    if (aux_vars.Contains(m)) continue;
    RgxPtr nu = Nu(it->second);
    if (nu == nullptr)
      return CycleElimResult{UnsatisfiableRule(), VarSet()};
    it->second = nu;
  }

  std::vector<RuleConstraint> out;
  for (const auto& [x, f] : formulas) out.push_back({x, f});
  return CycleElimResult{ExtractionRule(body, std::move(out)), aux_vars};
}

}  // namespace spanners
