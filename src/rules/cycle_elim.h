// Cycle elimination for simple functional rules (paper Theorem 4.7):
// every simple rule whose formulas are functional spanRGX converts, in
// polynomial time, into an equivalent dag-like rule. The construction
// introduces auxiliary variables (as in the paper's example
// x.y ∧ y.z ∧ z.ux ⇒ w.x ∧ x.y ∧ y.z ∧ z.u·Σ* ∧ u.ε); equivalence is
// therefore modulo projecting the auxiliaries away, which callers do with
// the returned aux set.
#ifndef SPANNERS_RULES_CYCLE_ELIM_H_
#define SPANNERS_RULES_CYCLE_ELIM_H_

#include "common/status.h"
#include "rules/rule.h"

namespace spanners {

/// The paper's ν function: νγ keeps exactly the matches of γ that spell a
/// word of variables only (no alphabet letters). Returns nullptr for H
/// (no such match — the "black" colour in the Theorem 4.7 proof).
RgxPtr Nu(const RgxPtr& rgx);

struct CycleElimResult {
  ExtractionRule rule;
  VarSet aux_vars;  // fresh variables; project away for equivalence
};

/// Theorem 4.7. Preconditions: `rule` is simple and functional (checked;
/// InvalidArgument otherwise). When the cycle analysis proves the rule
/// unsatisfiable, returns a canonical unsatisfiable dag-like rule.
Result<CycleElimResult> EliminateCycles(const ExtractionRule& rule);

}  // namespace spanners

#endif  // SPANNERS_RULES_CYCLE_ELIM_H_
