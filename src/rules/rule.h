// Extraction rules (paper §3.3, from [Arenas et al. 2016]):
//   ϕ = ϕ0 ∧ x1.ϕ1 ∧ ... ∧ xm.ϕm
// where every ϕi is a spanRGX. ϕ0 is matched against the whole document;
// xi.ϕi constrains the span captured by xi. The mapping-based semantics
// (with instantiated variables) lives in rule_eval.h.
#ifndef SPANNERS_RULES_RULE_H_
#define SPANNERS_RULES_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/variable.h"
#include "rgx/ast.h"

namespace spanners {

/// One conjunct x.ϕ of a rule.
struct RuleConstraint {
  VarId var;
  RgxPtr formula;
};

/// An extraction rule ϕ0 ∧ x1.ϕ1 ∧ … ∧ xm.ϕm.
class ExtractionRule {
 public:
  ExtractionRule(RgxPtr body, std::vector<RuleConstraint> constraints);

  /// Validating constructor: all formulas must be spanRGX.
  static Result<ExtractionRule> Create(
      RgxPtr body, std::vector<RuleConstraint> constraints);

  /// Parses "ϕ0 && x.(ϕx) && y.(ϕy)". Formulas use the RGX text syntax;
  /// spanRGX variables are written explicitly (x{.*}).
  static Result<ExtractionRule> Parse(std::string_view text);

  const RgxPtr& body() const { return body_; }
  const std::vector<RuleConstraint>& constraints() const {
    return constraints_;
  }
  std::optional<RgxPtr> ConstraintFor(VarId x) const;

  /// Simple (§4.3): all constraint heads x1..xm pairwise distinct.
  bool IsSimple() const;
  /// All formulas (body and constraints) are functional spanRGX.
  bool IsFunctional() const;
  /// All formulas are sequential spanRGX.
  bool IsSequential() const;
  /// All formulas are spanRGX (enforced by Create/Parse).
  bool IsSpanRgxRule() const;

  /// Every variable mentioned anywhere (heads and formulas).
  VarSet AllVars() const;

  /// "ϕ0 && x.(ϕx) && ..." in the parser's syntax.
  std::string ToString() const;

 private:
  RgxPtr body_;
  std::vector<RuleConstraint> constraints_;
};

}  // namespace spanners

#endif  // SPANNERS_RULES_RULE_H_
