#include "rules/convert.h"

#include <functional>
#include <map>

#include "common/logging.h"
#include "rgx/analysis.h"
#include "rgx/functional_union.h"
#include "rules/cycle_elim.h"
#include "rules/graph.h"

namespace spanners {

namespace {

// Cross product of per-conjunct alternatives (Prop 4.8 second step).
void CrossProduct(const std::vector<std::vector<RgxPtr>>& alts,
                  const std::vector<VarId>& heads, size_t i,
                  std::vector<RuleConstraint>* acc, const RgxPtr& body,
                  std::vector<ExtractionRule>* out) {
  if (i == alts.size()) {
    out->emplace_back(body, *acc);
    return;
  }
  for (const RgxPtr& alt : alts[i]) {
    acc->push_back({heads[i - 1], alt});
    CrossProduct(alts, heads, i + 1, acc, body, out);
    acc->pop_back();
  }
}

}  // namespace

Result<FunctionalDagRules> ToFunctionalDagRules(const ExtractionRule& rule) {
  if (!rule.IsSimple())
    return Status::InvalidArgument(
        "ToFunctionalDagRules requires a simple rule");

  // Decompose each formula into its functional alternatives.
  std::vector<std::vector<RgxPtr>> alts;
  std::vector<VarId> heads;
  alts.push_back(ToFunctionalUnion(rule.body()));
  if (alts[0].empty()) return FunctionalDagRules{};  // body unsatisfiable
  for (const RuleConstraint& c : rule.constraints()) {
    std::vector<RgxPtr> a = ToFunctionalUnion(c.formula);
    // A constraint with no satisfiable alternative can never be met when
    // instantiated; keep an unsatisfiable stand-in so instantiating
    // members are pruned but non-instantiating ones survive.
    if (a.empty()) a.push_back(RgxNode::Chars(CharSet::None()));
    heads.push_back(c.var);
    alts.push_back(std::move(a));
  }

  std::vector<ExtractionRule> members;
  for (const RgxPtr& body_alt : alts[0]) {
    std::vector<RuleConstraint> acc;
    CrossProduct(alts, heads, 1, &acc, body_alt, &members);
  }

  // Cycle-eliminate each member (Theorem 4.7); drop unsatisfiable ones.
  FunctionalDagRules out;
  for (const ExtractionRule& member : members) {
    SPANNERS_ASSIGN_OR_RETURN(CycleElimResult elim, EliminateCycles(member));
    RuleGraph g(elim.rule);
    SPANNERS_DCHECK(g.IsDagLike());
    // Canonical unsatisfiable rules have an unmatchable body.
    if (elim.rule.body()->kind() == RgxKind::kChars &&
        elim.rule.body()->chars().empty())
      continue;
    out.aux_vars = out.aux_vars.Union(elim.aux_vars);
    out.rules.push_back(std::move(elim.rule));
  }
  return out;
}

Result<RgxPtr> TreeRuleToRgx(const ExtractionRule& rule) {
  if (!rule.IsSimple())
    return Status::InvalidArgument("TreeRuleToRgx requires a simple rule");
  RuleGraph g(rule);
  if (!g.IsTreeLike())
    return Status::NotSupported(
        "TreeRuleToRgx requires a tree-like rule graph");

  std::map<VarId, RgxPtr> formulas;
  for (const RuleConstraint& c : rule.constraints())
    formulas[c.var] = c.formula;

  // γx = ϕx with every variable occurrence y replaced by y{γy}.
  // Tree-ness guarantees termination; repeated occurrences duplicate the
  // (already converted) subformula — the exponential growth the paper
  // notes for Lemma B.1.
  std::function<RgxPtr(const RgxPtr&)> convert =
      [&](const RgxPtr& node) -> RgxPtr {
    switch (node->kind()) {
      case RgxKind::kEpsilon:
      case RgxKind::kChars:
        return node;
      case RgxKind::kVar: {
        auto it = formulas.find(node->var());
        RgxPtr inner = it != formulas.end() ? convert(it->second)
                                            : RgxNode::AnyStar();
        return RgxNode::Var(node->var(), std::move(inner));
      }
      case RgxKind::kConcat: {
        std::vector<RgxPtr> parts;
        for (const RgxPtr& c : node->children()) parts.push_back(convert(c));
        return RgxNode::Concat(std::move(parts));
      }
      case RgxKind::kDisj: {
        std::vector<RgxPtr> parts;
        for (const RgxPtr& c : node->children()) parts.push_back(convert(c));
        return RgxNode::Disj(std::move(parts));
      }
      case RgxKind::kStar:
        return RgxNode::Star(convert(node->child(0)));
    }
    SPANNERS_CHECK(false) << "unhandled RgxKind";
    return node;
  };
  return convert(rule.body());
}

namespace {

// Top-level strip: variables directly under this node become spanRGX
// variables whose bodies turn into constraints (recursively).
RgxPtr StripTopLevel(const RgxPtr& node,
                     std::vector<RuleConstraint>* constraints) {
  switch (node->kind()) {
    case RgxKind::kVar: {
      std::vector<RuleConstraint> inner_constraints;
      RgxPtr inner = StripTopLevel(node->child(0), &inner_constraints);
      bool trivial = inner->kind() == RgxKind::kStar &&
                     inner->child(0)->kind() == RgxKind::kChars &&
                     inner->child(0)->chars() == CharSet::Any();
      if (!trivial || !inner_constraints.empty())
        constraints->push_back({node->var(), inner});
      for (RuleConstraint& c : inner_constraints)
        constraints->push_back(std::move(c));
      return RgxNode::SpanVar(node->var());
    }
    case RgxKind::kConcat: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : node->children())
        parts.push_back(StripTopLevel(c, constraints));
      return RgxNode::Concat(std::move(parts));
    }
    case RgxKind::kDisj: {
      std::vector<RgxPtr> parts;
      for (const RgxPtr& c : node->children())
        parts.push_back(StripTopLevel(c, constraints));
      return RgxNode::Disj(std::move(parts));
    }
    default:
      return node;  // ε, chars, var-free star
  }
}

}  // namespace

std::vector<ExtractionRule> RgxToTreeRules(const RgxPtr& rgx) {
  std::vector<ExtractionRule> out;
  for (const RgxPtr& alt : ToFunctionalUnion(rgx)) {
    std::vector<RuleConstraint> constraints;
    RgxPtr body = StripTopLevel(alt, &constraints);
    ExtractionRule rule(std::move(body), std::move(constraints));
    SPANNERS_DCHECK(RuleGraph(rule).IsTreeLike() ||
                    rule.constraints().empty())
        << "RgxToTreeRules produced a non-tree rule: " << rule.ToString();
    out.push_back(std::move(rule));
  }
  return out;
}

}  // namespace spanners
