// The graph Gϕ of an extraction rule (paper §4.3): a node per variable
// plus a special doc node; edge (x, y) when y occurs in x's formula, and
// (doc, x) when x occurs in ϕ0. Supplies the dag-like / tree-like checks
// and Tarjan SCCs for cycle elimination (Theorem 4.7, paper's [26]).
#ifndef SPANNERS_RULES_GRAPH_H_
#define SPANNERS_RULES_GRAPH_H_

#include <vector>

#include "core/variable.h"
#include "rules/rule.h"

namespace spanners {

/// Gϕ with the doc node at index 0 and variables at 1..n.
class RuleGraph {
 public:
  explicit RuleGraph(const ExtractionRule& rule);

  /// Node count including doc.
  size_t size() const { return adj_.size(); }
  /// The variable of node index i >= 1.
  VarId VarOf(size_t node) const { return vars_[node - 1]; }
  /// Node index of variable x (0 if absent — the doc index — never a var).
  size_t NodeOf(VarId x) const;

  const std::vector<size_t>& SuccessorsOf(size_t node) const {
    return adj_[node];
  }

  /// Gϕ has no directed cycle among variables.
  bool IsDagLike() const;
  /// Gϕ is a tree rooted at doc: every variable node has exactly one
  /// incoming edge and is reachable from doc, and there are no cycles.
  bool IsTreeLike() const;

  /// Variables reachable from doc (instantiable variables).
  VarSet ReachableFromDoc() const;
  /// Variables reachable from the given node (excluding the node itself
  /// unless it lies on a cycle through itself).
  VarSet ReachableFrom(size_t node) const;

  /// Tarjan SCCs in topological order (sources first). Each SCC is a list
  /// of node indexes.
  std::vector<std::vector<size_t>> SccsTopological() const;

  /// True if the SCC (given as node indexes) contains a cycle: more than
  /// one node, or a single node with a self-loop.
  bool SccHasCycle(const std::vector<size_t>& scc) const;

  /// True if the SCC is a *simple* cycle: every member has exactly one
  /// within-SCC successor (counting multiplicity one).
  bool SccIsSimpleCycle(const std::vector<size_t>& scc) const;

 private:
  std::vector<VarId> vars_;                // sorted
  std::vector<std::vector<size_t>> adj_;   // 0 = doc
};

}  // namespace spanners

#endif  // SPANNERS_RULES_GRAPH_H_
