// PTIME Eval for sequential tree-like rules (paper Theorem 5.9).
//
// Following the paper's proof: the assigned part of the extended mapping
// is embedded into the document as a label sequence (letters + variable
// operations, ordered by position and by the nesting the rule tree
// dictates; clusters of indistinguishable empty-span siblings are handled
// by trying their few possible orders). Memoised interval goals
// (variable, label interval) are then decided by NFA simulation, where a
// child variable's bracket either jumps over its pinned operations
// (assigned child) or guesses an extent (unconstrained child).
#ifndef SPANNERS_RULES_TREE_EVAL_H_
#define SPANNERS_RULES_TREE_EVAL_H_

#include "common/status.h"
#include "core/document.h"
#include "core/mapping.h"
#include "rules/rule.h"

namespace spanners {

/// Checks the Theorem 5.9 preconditions: simple, sequential, spanRGX
/// formulas, tree-like graph.
Status ValidateTreeRule(const ExtractionRule& rule);

/// Eval of a sequential tree-like rule: does some µ' ∈ ⟦rule⟧_doc extend
/// `mu`? Precondition: ValidateTreeRule(rule).ok().
bool EvalTreeRule(const ExtractionRule& rule, const Document& doc,
                  const ExtendedMapping& mu);

/// ⟦rule⟧_doc via Algorithm 1 with the EvalTreeRule oracle
/// (polynomial delay by Theorems 5.1 + 5.9).
MappingSet EnumerateTreeRule(const ExtractionRule& rule, const Document& doc);

}  // namespace spanners

#endif  // SPANNERS_RULES_TREE_EVAL_H_
