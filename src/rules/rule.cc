#include "rules/rule.h"

#include "common/logging.h"
#include "rgx/analysis.h"
#include "rgx/parser.h"
#include "rgx/printer.h"

namespace spanners {

ExtractionRule::ExtractionRule(RgxPtr body,
                               std::vector<RuleConstraint> constraints)
    : body_(std::move(body)), constraints_(std::move(constraints)) {
  SPANNERS_CHECK(body_ != nullptr);
  for (const RuleConstraint& c : constraints_)
    SPANNERS_CHECK(c.formula != nullptr);
}

Result<ExtractionRule> ExtractionRule::Create(
    RgxPtr body, std::vector<RuleConstraint> constraints) {
  if (body == nullptr) return Status::InvalidArgument("rule body is null");
  if (!IsSpanRgx(body))
    return Status::InvalidArgument("rule body is not a spanRGX: " +
                                   ToPattern(body));
  for (const RuleConstraint& c : constraints) {
    if (c.formula == nullptr)
      return Status::InvalidArgument("rule constraint formula is null");
    if (!IsSpanRgx(c.formula))
      return Status::InvalidArgument(
          "constraint for " + Variable::Name(c.var) +
          " is not a spanRGX: " + ToPattern(c.formula));
  }
  return ExtractionRule(std::move(body), std::move(constraints));
}

Result<ExtractionRule> ExtractionRule::Parse(std::string_view text) {
  // Split on "&&" at the top level (no escaping needed: '&' is not an RGX
  // metacharacter, but a literal '&' inside a formula must not be doubled).
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '&' && text[i + 1] == '&') {
      parts.push_back(text.substr(start, i - start));
      start = i + 2;
      ++i;
    }
  }
  parts.push_back(text.substr(start));

  auto trim = [](std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
      s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
      s.remove_suffix(1);
    return s;
  };

  if (parts.empty()) return Status::InvalidArgument("empty rule");
  SPANNERS_ASSIGN_OR_RETURN(RgxPtr body, ParseRgx(trim(parts[0])));

  std::vector<RuleConstraint> constraints;
  for (size_t i = 1; i < parts.size(); ++i) {
    std::string_view part = trim(parts[i]);
    size_t dot = part.find('.');
    if (dot == std::string_view::npos || dot == 0)
      return Status::InvalidArgument(
          "rule conjunct must look like x.(formula): " + std::string(part));
    std::string_view name = part.substr(0, dot);
    SPANNERS_ASSIGN_OR_RETURN(RgxPtr f, ParseRgx(part.substr(dot + 1)));
    constraints.push_back({Variable::Intern(name), std::move(f)});
  }
  return Create(std::move(body), std::move(constraints));
}

std::optional<RgxPtr> ExtractionRule::ConstraintFor(VarId x) const {
  for (const RuleConstraint& c : constraints_)
    if (c.var == x) return c.formula;
  return std::nullopt;
}

bool ExtractionRule::IsSimple() const {
  VarSet heads;
  for (const RuleConstraint& c : constraints_) {
    if (heads.Contains(c.var)) return false;
    heads.Insert(c.var);
  }
  return true;
}

bool ExtractionRule::IsFunctional() const {
  if (!::spanners::IsFunctional(body_)) return false;
  for (const RuleConstraint& c : constraints_)
    if (!::spanners::IsFunctional(c.formula)) return false;
  return true;
}

bool ExtractionRule::IsSequential() const {
  if (!spanners::IsSequential(body_)) return false;
  for (const RuleConstraint& c : constraints_)
    if (!spanners::IsSequential(c.formula)) return false;
  return true;
}

bool ExtractionRule::IsSpanRgxRule() const {
  if (!IsSpanRgx(body_)) return false;
  for (const RuleConstraint& c : constraints_)
    if (!IsSpanRgx(c.formula)) return false;
  return true;
}

VarSet ExtractionRule::AllVars() const {
  VarSet out = RgxVars(body_);
  for (const RuleConstraint& c : constraints_) {
    out.Insert(c.var);
    out = out.Union(RgxVars(c.formula));
  }
  return out;
}

std::string ExtractionRule::ToString() const {
  std::string out = ToPattern(body_);
  for (const RuleConstraint& c : constraints_) {
    out += " && " + Variable::Name(c.var) + ".(" + ToPattern(c.formula) + ")";
  }
  return out;
}

}  // namespace spanners
