#include "rules/graph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>

#include "common/logging.h"
#include "rgx/analysis.h"

namespace spanners {

RuleGraph::RuleGraph(const ExtractionRule& rule) {
  vars_ = rule.AllVars().ids();
  adj_.resize(vars_.size() + 1);

  auto add_edges = [this](size_t from, const RgxPtr& formula) {
    for (VarId y : RgxVars(formula)) adj_[from].push_back(NodeOf(y));
  };
  add_edges(0, rule.body());
  for (const RuleConstraint& c : rule.constraints())
    add_edges(NodeOf(c.var), c.formula);
}

size_t RuleGraph::NodeOf(VarId x) const {
  auto it = std::lower_bound(vars_.begin(), vars_.end(), x);
  SPANNERS_CHECK(it != vars_.end() && *it == x)
      << "variable not in rule graph";
  return static_cast<size_t>(it - vars_.begin()) + 1;
}

bool RuleGraph::IsDagLike() const {
  for (const auto& scc : SccsTopological())
    if (SccHasCycle(scc)) return false;
  return true;
}

bool RuleGraph::IsTreeLike() const {
  if (!IsDagLike()) return false;
  std::vector<int> indegree(size(), 0);
  for (size_t u = 0; u < size(); ++u) {
    // Count distinct edges; a variable occurring twice in one formula
    // still contributes a single edge (u, v), but two different parents
    // break tree-ness.
    std::set<size_t> succs(adj_[u].begin(), adj_[u].end());
    for (size_t v : succs) ++indegree[v];
  }
  if (indegree[0] != 0) return false;
  // Every variable node: exactly one parent and reachable from doc.
  VarSet reachable = ReachableFromDoc();
  for (size_t v = 1; v < size(); ++v) {
    if (indegree[v] != 1) return false;
    if (!reachable.Contains(VarOf(v))) return false;
  }
  return true;
}

VarSet RuleGraph::ReachableFromDoc() const { return ReachableFrom(0); }

VarSet RuleGraph::ReachableFrom(size_t node) const {
  std::vector<bool> seen(size(), false);
  std::deque<size_t> queue = {node};
  VarSet out;
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (size_t v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        if (v != 0) out.Insert(VarOf(v));
        queue.push_back(v);
      }
    }
  }
  return out;
}

std::vector<std::vector<size_t>> RuleGraph::SccsTopological() const {
  // Tarjan's algorithm; SCCs come out in reverse topological order.
  const size_t n = size();
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> sccs;
  int counter = 0;

  std::function<void(size_t)> strongconnect = [&](size_t v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (size_t w : adj_[v]) {
      if (index[w] < 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<size_t> scc;
      size_t w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
      } while (w != v);
      sccs.push_back(std::move(scc));
    }
  };
  for (size_t v = 0; v < n; ++v)
    if (index[v] < 0) strongconnect(v);
  std::reverse(sccs.begin(), sccs.end());
  return sccs;
}

bool RuleGraph::SccHasCycle(const std::vector<size_t>& scc) const {
  if (scc.size() > 1) return true;
  size_t v = scc[0];
  return std::find(adj_[v].begin(), adj_[v].end(), v) != adj_[v].end();
}

bool RuleGraph::SccIsSimpleCycle(const std::vector<size_t>& scc) const {
  if (!SccHasCycle(scc)) return false;
  std::set<size_t> members(scc.begin(), scc.end());
  for (size_t v : scc) {
    int within = 0;
    std::set<size_t> seen;
    for (size_t w : adj_[v]) {
      if (members.count(w) > 0 && seen.insert(w).second) ++within;
    }
    if (within != 1) return false;
  }
  return true;
}

}  // namespace spanners
