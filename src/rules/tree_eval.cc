#include "rules/tree_eval.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "automata/enumerate.h"
#include "automata/thompson.h"
#include "common/logging.h"
#include "rgx/analysis.h"
#include "rules/graph.h"

namespace spanners {

Status ValidateTreeRule(const ExtractionRule& rule) {
  if (!rule.IsSimple())
    return Status::InvalidArgument("tree-rule Eval requires a simple rule");
  if (!rule.IsSpanRgxRule())
    return Status::InvalidArgument("tree-rule Eval requires spanRGX bodies");
  if (!rule.IsSequential())
    return Status::InvalidArgument(
        "tree-rule Eval requires sequential formulas");
  if (!RuleGraph(rule).IsTreeLike())
    return Status::NotSupported("rule graph is not a tree rooted at doc");
  return Status::OK();
}

namespace {

constexpr size_t kDocNode = SIZE_MAX;  // pseudo-var id for the doc root

// ---- label items -----------------------------------------------------

struct Item {
  enum Kind : uint8_t { kLetter, kOpen, kClose } kind;
  char letter = 0;
  VarId var = 0;
  size_t match = 0;  // for kOpen/kClose: index of the matching bracket
};

// One assigned variable arranged into the spatial forest.
struct ForestNode {
  VarId var;
  Span span;
  int rank = 0;  // emission tie-break, permuted for indistinguishable sets
  std::vector<size_t> children;  // indexes into the forest array
};

// ---- compiled rule ----------------------------------------------------

struct BracketJump {
  StateId open_from;  // state holding the z⊢ transition
  StateId close_to;   // state after the matching ⊣z
};

struct CompiledFormula {
  VA va;
  // Per child variable: usable (open-state, post-close-state) pairs.
  std::map<VarId, std::vector<BracketJump>> jumps;
};

CompiledFormula Compile(const RgxPtr& formula) {
  CompiledFormula out;
  out.va = CompileToVa(formula);
  const VA& a = out.va;
  // For each open transition, find close transitions of the same variable
  // reachable through the (variable-free, spanRGX ⇒ Σ*) body.
  for (StateId q = 0; q < a.NumStates(); ++q) {
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      if (t.kind != TransKind::kOpen) continue;
      // BFS from t.to over char/ε transitions.
      std::vector<bool> seen(a.NumStates(), false);
      std::vector<StateId> stack = {t.to};
      seen[t.to] = true;
      while (!stack.empty()) {
        StateId p = stack.back();
        stack.pop_back();
        for (const VaTransition& u : a.TransitionsFrom(p)) {
          if (u.kind == TransKind::kClose && u.var == t.var) {
            out.jumps[t.var].push_back({q, u.to});
          }
          if ((u.kind == TransKind::kChars ||
               u.kind == TransKind::kEpsilon) &&
              !seen[u.to]) {
            seen[u.to] = true;
            stack.push_back(u.to);
          }
        }
      }
    }
  }
  return out;
}

// ---- the evaluator ----------------------------------------------------

class TreeEvaluator {
 public:
  TreeEvaluator(const ExtractionRule& rule, const Document& doc,
                const ExtendedMapping& mu)
      : rule_(rule), doc_(doc), mu_(mu), graph_(rule) {}

  bool Run();

 private:
  // Direct children of a variable (or of doc for kDocNode) in the tree.
  const std::vector<VarId>& ChildrenOf(size_t node_key);
  const CompiledFormula& FormulaOf(size_t node_key);

  bool BuildForest(std::vector<ForestNode>* forest,
                   std::vector<size_t>* roots);
  // Emits items for the given forest nodes (ordered children of one
  // region); expands indistinguishable clusters by enumerating orders.
  bool EmitRegion(const std::vector<ForestNode>& forest,
                  std::vector<size_t> members, Pos from, Pos to,
                  std::vector<Item>* items);
  void EmitLetters(Pos from, Pos to, std::vector<Item>* items);
  bool EmitNode(const std::vector<ForestNode>& forest, size_t node,
                std::vector<Item>* items);

  bool Goal(size_t node_key, size_t i, size_t j);
  bool Simulate(const CompiledFormula& cf, size_t node_key, size_t i,
                size_t j);

  const ExtractionRule& rule_;
  const Document& doc_;
  const ExtendedMapping& mu_;
  RuleGraph graph_;

  std::map<size_t, std::vector<VarId>> children_;
  std::map<size_t, CompiledFormula> compiled_;
  std::vector<Item> label_;
  std::map<std::tuple<size_t, size_t, size_t>, bool> memo_;
};

const std::vector<VarId>& TreeEvaluator::ChildrenOf(size_t node_key) {
  auto it = children_.find(node_key);
  if (it != children_.end()) return it->second;
  RgxPtr formula = node_key == kDocNode
                       ? rule_.body()
                       : rule_.ConstraintFor(static_cast<VarId>(node_key))
                             .value_or(RgxNode::AnyStar());
  std::vector<VarId> kids = RgxVars(formula).ids();
  return children_.emplace(node_key, std::move(kids)).first->second;
}

const CompiledFormula& TreeEvaluator::FormulaOf(size_t node_key) {
  auto it = compiled_.find(node_key);
  if (it != compiled_.end()) return it->second;
  RgxPtr formula = node_key == kDocNode
                       ? rule_.body()
                       : rule_.ConstraintFor(static_cast<VarId>(node_key))
                             .value_or(RgxNode::AnyStar());
  return compiled_.emplace(node_key, Compile(formula)).first->second;
}

// Arranges the assigned variables into a forest by rule-tree ancestry;
// rejects assignments inconsistent with the tree or with hierarchy.
bool TreeEvaluator::BuildForest(std::vector<ForestNode>* forest,
                                std::vector<size_t>* roots) {
  VarSet rule_vars = rule_.AllVars();
  std::vector<std::pair<VarId, Span>> assigned;
  for (VarId v : mu_.ConstrainedVars()) {
    if (mu_.StateOf(v) != ExtendedMapping::VarState::kAssigned) continue;
    Span s = *mu_.Get(v);
    if (!rule_vars.Contains(v)) return false;  // can never be produced
    if (!doc_.IsValidSpan(s)) return false;
    assigned.emplace_back(v, s);
  }

  // Ancestor test in the rule tree via reachability.
  auto is_ancestor = [this](VarId a, VarId b) {
    return graph_.ReachableFrom(graph_.NodeOf(a)).Contains(b);
  };

  // Pairwise consistency (the paper's up-front rejections).
  for (size_t i = 0; i < assigned.size(); ++i) {
    for (size_t k = i + 1; k < assigned.size(); ++k) {
      auto [va, sa] = assigned[i];
      auto [vb, sb] = assigned[k];
      if (is_ancestor(va, vb)) {
        if (!sb.ContainedIn(sa)) return false;
      } else if (is_ancestor(vb, va)) {
        if (!sa.ContainedIn(sb)) return false;
      } else {
        if (!sa.DisjointWith(sb)) return false;  // unrelated must not overlap
        if (sa == sb && !sa.IsEmpty()) return false;
      }
    }
  }

  // Build the forest: parent = nearest assigned ancestor.
  forest->clear();
  std::map<VarId, size_t> index;
  for (auto& [v, s] : assigned) {
    index[v] = forest->size();
    forest->push_back(ForestNode{v, s, static_cast<int>(forest->size()), {}});
  }
  roots->clear();
  for (auto& [v, s] : assigned) {
    // Parent in the forest = nearest assigned ancestor of v.
    VarId best = v;
    bool found = false;
    for (auto& [u, su] : assigned) {
      if (u == v || !is_ancestor(u, v)) continue;
      if (!found || is_ancestor(best, u)) {
        best = u;
        found = true;
      }
    }
    if (found) {
      (*forest)[index[best]].children.push_back(index[v]);
    } else {
      roots->push_back(index[v]);
    }
  }
  return true;
}

void TreeEvaluator::EmitLetters(Pos from, Pos to, std::vector<Item>* items) {
  for (Pos p = from; p < to; ++p)
    items->push_back(Item{Item::kLetter, doc_.at(p), 0, 0});
}

bool TreeEvaluator::EmitNode(const std::vector<ForestNode>& forest,
                             size_t node, std::vector<Item>* items) {
  const ForestNode& fn = forest[node];
  size_t open_idx = items->size();
  items->push_back(Item{Item::kOpen, 0, fn.var, 0});
  if (!EmitRegion(forest, fn.children, fn.span.begin, fn.span.end, items))
    return false;
  size_t close_idx = items->size();
  items->push_back(Item{Item::kClose, 0, fn.var, open_idx});
  (*items)[open_idx].match = close_idx;
  return true;
}

bool TreeEvaluator::EmitRegion(const std::vector<ForestNode>& forest,
                               std::vector<size_t> members, Pos from, Pos to,
                               std::vector<Item>* items) {
  // Order members spatially; equal empty spans are indistinguishable and
  // stay in arbitrary (but fixed) order — the caller retries permutations
  // only through Run()'s cluster expansion. Here we order by
  // (begin, end, var) which fixes one representative order.
  std::sort(members.begin(), members.end(), [&forest](size_t a, size_t b) {
    const ForestNode& na = forest[a];
    const ForestNode& nb = forest[b];
    if (na.span.begin != nb.span.begin) return na.span.begin < nb.span.begin;
    if (na.span.end != nb.span.end) return na.span.end < nb.span.end;
    return na.rank < nb.rank;
  });
  Pos pos = from;
  for (size_t m : members) {
    const Span& s = forest[m].span;
    if (s.begin < pos) return false;  // overlap slipped through
    EmitLetters(pos, s.begin, items);
    if (!EmitNode(forest, m, items)) return false;
    pos = s.end;
  }
  if (pos > to) return false;
  EmitLetters(pos, to, items);
  return true;
}

bool TreeEvaluator::Run() {
  // ⊥ for a variable outside the rule is trivially satisfied; assigned
  // ones were checked in BuildForest.
  std::vector<ForestNode> forest;
  std::vector<size_t> roots;
  if (!BuildForest(&forest, &roots)) return false;

  // Indistinguishable clusters: groups of unrelated empty-span siblings
  // sharing a position. Try every permutation of each group (groups are
  // tiny in practice; the paper coalesces them instead).
  // We realise this by permuting var ids within the groups.
  std::vector<std::vector<size_t>> groups;  // forest indexes
  {
    std::map<std::pair<size_t, Pos>, std::vector<size_t>> by_parent_pos;
    // Identify siblings with identical empty spans: group per (parent,
    // position). Roots count as siblings of the virtual doc parent.
    std::map<size_t, size_t> parent_of;
    for (size_t i = 0; i < forest.size(); ++i)
      for (size_t c : forest[i].children) parent_of[c] = i;
    for (size_t i = 0; i < forest.size(); ++i) {
      if (!forest[i].span.IsEmpty()) continue;
      size_t parent = parent_of.count(i) ? parent_of[i] : SIZE_MAX;
      by_parent_pos[{parent, forest[i].span.begin}].push_back(i);
    }
    for (auto& [key, v] : by_parent_pos)
      if (v.size() > 1) groups.push_back(v);
  }

  // Permutation expansion: members of a group share an empty span and are
  // mutually unordered ("indistinguishable" in the paper, which coalesces
  // them); we instead try every emission order by permuting their ranks.
  std::function<bool(size_t)> try_groups = [&](size_t gi) -> bool {
    if (gi == groups.size()) {
      label_.clear();
      memo_.clear();
      if (!EmitRegion(forest, roots, 1, doc_.length() + 1, &label_))
        return false;
      return Goal(kDocNode, 0, label_.size());
    }
    std::vector<size_t>& group = groups[gi];
    std::vector<size_t> perm = group;  // slot order receiving the ranks
    std::vector<int> base_ranks;
    for (size_t m : group) base_ranks.push_back(forest[m].rank);
    std::sort(perm.begin(), perm.end());
    do {
      for (size_t k = 0; k < group.size(); ++k)
        forest[perm[k]].rank = base_ranks[k];
      if (try_groups(gi + 1)) return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
    for (size_t k = 0; k < group.size(); ++k)
      forest[group[k]].rank = base_ranks[k];
    return false;
  };
  return try_groups(0);
}

bool TreeEvaluator::Goal(size_t node_key, size_t i, size_t j) {
  auto key = std::make_tuple(node_key, i, j);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  memo_[key] = false;  // provisional (no cycles: child depth increases)
  bool result = Simulate(FormulaOf(node_key), node_key, i, j);
  memo_[key] = result;
  return result;
}

bool TreeEvaluator::Simulate(const CompiledFormula& cf,
                             size_t /*node_key*/, size_t i, size_t j) {
  const VA& a = cf.va;
  const size_t num_states = a.NumStates();
  // Visited (state, idx) pairs, BFS.
  std::vector<std::vector<bool>> seen(num_states,
                                      std::vector<bool>(j - i + 1, false));
  std::vector<std::pair<StateId, size_t>> stack;
  auto push = [&](StateId q, size_t idx) {
    if (!seen[q][idx - i]) {
      seen[q][idx - i] = true;
      stack.emplace_back(q, idx);
    }
  };
  push(a.initial(), i);
  StateId final_state = a.SingleFinal();

  while (!stack.empty()) {
    auto [q, idx] = stack.back();
    stack.pop_back();
    if (q == final_state && idx == j) return true;

    for (const VaTransition& t : a.TransitionsFrom(q)) {
      switch (t.kind) {
        case TransKind::kEpsilon:
          push(t.to, idx);
          break;
        case TransKind::kChars:
          if (idx < j && label_[idx].kind == Item::kLetter &&
              t.chars.Contains(label_[idx].letter))
            push(t.to, idx + 1);
          break;
        case TransKind::kOpen: {
          VarId z = t.var;
          switch (mu_.StateOf(z)) {
            case ExtendedMapping::VarState::kBottom:
              break;  // z may not be instantiated
            case ExtendedMapping::VarState::kAssigned: {
              // Consumable only at z's pinned open item.
              if (idx >= j || label_[idx].kind != Item::kOpen ||
                  label_[idx].var != z)
                break;
              size_t close_idx = label_[idx].match;
              if (close_idx >= j) break;  // bracket leaks out of interval
              if (!Goal(z, idx + 1, close_idx)) break;
              for (const BracketJump& bj : cf.jumps.count(z)
                                               ? cf.jumps.at(z)
                                               : std::vector<BracketJump>{}) {
                if (bj.open_from == q) push(bj.close_to, close_idx + 1);
              }
              break;
            }
            case ExtendedMapping::VarState::kUnconstrained: {
              // Guess the extent [idx, j') — but it may not swallow a
              // partial bracket; Goal(z, ...) fails naturally then.
              auto jumps_it = cf.jumps.find(z);
              if (jumps_it == cf.jumps.end()) break;
              for (size_t jp = idx; jp <= j; ++jp) {
                if (!Goal(z, idx, jp)) continue;
                for (const BracketJump& bj : jumps_it->second)
                  if (bj.open_from == q) push(bj.close_to, jp);
              }
              break;
            }
          }
          break;
        }
        case TransKind::kClose:
          break;  // closes are consumed by bracket jumps only
      }
    }
  }
  return false;
}

}  // namespace

bool EvalTreeRule(const ExtractionRule& rule, const Document& doc,
                  const ExtendedMapping& mu) {
  SPANNERS_DCHECK(ValidateTreeRule(rule).ok());
  TreeEvaluator ev(rule, doc, mu);
  return ev.Run();
}

MappingSet EnumerateTreeRule(const ExtractionRule& rule,
                             const Document& doc) {
  MappingEnumerator e(rule.AllVars(), doc,
                      [&rule, &doc](const ExtendedMapping& mu) {
                        return EvalTreeRule(rule, doc, mu);
                      });
  return e.Drain();
}

}  // namespace spanners
