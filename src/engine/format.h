// Row formatting for engine output: one extracted mapping → one TSV or
// JSON line. Used by tools/spanex and kept in the library so tests can pin
// the exact wire format.
#ifndef SPANNERS_ENGINE_FORMAT_H_
#define SPANNERS_ENGINE_FORMAT_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/document.h"
#include "core/mapping.h"
#include "core/mapping_sink.h"
#include "core/variable.h"

namespace spanners {
namespace engine {

enum class OutputFormat { kTsv, kJson };

/// Parses "tsv" / "json" (case-sensitive).
bool ParseOutputFormat(const std::string& s, OutputFormat* out);

/// Header line naming the TSV columns for `vars` (doc, then one span and
/// one content column per variable, in VarId order): e.g.
/// "doc\tx.span\tx.text\ty.span\ty.text".
std::string TsvHeader(const VarSet& vars);

/// One TSV row: document index, then per variable of `vars` either
/// "i..j" + extracted text or "⊥" + empty when the mapping leaves the
/// variable unassigned (incomplete information). Tabs/newlines/backslashes
/// in content are escaped as \t, \n, \\.
std::string ToTsvRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                     const Document& doc);

/// One JSON object per line (JSONL):
/// {"doc":0,"x":{"span":[1,4],"text":"abc"},"y":null}.
std::string ToJsonRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc);

/// The header block of a multi-plan (fleet) TSV stream: one
/// "# q<p>: query\t<TsvHeader(vars)>\n" line per plan, in plan order.
/// Shared by tools/spanex and the spanexd batch path so served output is
/// byte-identical to the offline run by construction.
std::string FleetTsvHeader(const std::vector<const VarSet*>& vars_per_plan);

/// Appends one single-plan output row (ToTsvRow / ToJsonRow) plus the
/// trailing newline to *out.
void AppendMappingRow(std::string* out, OutputFormat format,
                      size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc);

/// Appends one fleet output row: TSV rows gain the leading `query` column
/// (the plan's position), JSON rows the "query" key — exactly the wire
/// format of a multi-pattern spanex run.
void AppendFleetMappingRow(std::string* out, OutputFormat format,
                           size_t plan_index, size_t doc_index,
                           const Mapping& m, const VarSet& vars,
                           const Document& doc);

/// Error-checked writer over a C stream (stdout in the tools). Every
/// Write/Flush result is checked, so a closed downstream pipe
/// (`spanex ... | head`) surfaces as a clean failure instead of SIGPIPE
/// death or silently truncated output — callers install
/// `signal(SIGPIPE, SIG_IGN)` and test ok() after streaming. After the
/// first failure every further call is a no-op returning false and
/// error() keeps the original errno.
class CheckedWriter {
 public:
  explicit CheckedWriter(std::FILE* stream) : stream_(stream) {}

  /// False on the first (or any earlier) write error.
  bool Write(std::string_view s);
  bool Flush();

  bool ok() const { return error_ == 0; }
  /// errno of the first failed write/flush; 0 while ok.
  int error() const { return error_; }
  /// "write error: <strerror>" for the failure report; "" while ok.
  std::string ErrorMessage() const;

 private:
  std::FILE* stream_;
  int error_ = 0;
};

/// Formats mappings as they stream: each pushed mapping becomes one TSV
/// or JSONL line appended to *out, and its storage is recycled into the
/// pool. Terminates a push-based pipeline (Spanner::ExtractTo, the
/// query operators) without materializing a mapping vector in between;
/// rows arrive in the producer's (unsorted) order.
class FormattingSink final : public MappingSink {
 public:
  FormattingSink(OutputFormat format, size_t doc_index, const VarSet& vars,
                 const Document& doc, std::string* out,
                 MappingPool* pool = nullptr)
      : format_(format),
        doc_index_(doc_index),
        vars_(vars),
        doc_(doc),
        out_(out),
        pool_(pool) {}

  bool Push(Mapping m) override {
    *out_ += format_ == OutputFormat::kTsv
                 ? ToTsvRow(doc_index_, m, vars_, doc_)
                 : ToJsonRow(doc_index_, m, vars_, doc_);
    *out_ += '\n';
    ++rows_;
    if (pool_ != nullptr) pool_->Recycle(std::move(m));
    return true;
  }
  MappingPool* pool() override { return pool_; }
  size_t rows() const { return rows_; }

 private:
  OutputFormat format_;
  size_t doc_index_;
  const VarSet& vars_;
  const Document& doc_;
  std::string* out_;
  MappingPool* pool_;
  size_t rows_ = 0;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_FORMAT_H_
