// Row formatting for engine output: one extracted mapping → one TSV or
// JSON line. Used by tools/spanex and kept in the library so tests can pin
// the exact wire format.
#ifndef SPANNERS_ENGINE_FORMAT_H_
#define SPANNERS_ENGINE_FORMAT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/document.h"
#include "core/mapping.h"
#include "core/mapping_sink.h"
#include "core/variable.h"

namespace spanners {
namespace engine {

enum class OutputFormat { kTsv, kJson };

/// Parses "tsv" / "json" (case-sensitive).
bool ParseOutputFormat(const std::string& s, OutputFormat* out);

/// Header line naming the TSV columns for `vars` (doc, then one span and
/// one content column per variable, in VarId order): e.g.
/// "doc\tx.span\tx.text\ty.span\ty.text".
std::string TsvHeader(const VarSet& vars);

/// One TSV row: document index, then per variable of `vars` either
/// "i..j" + extracted text or "⊥" + empty when the mapping leaves the
/// variable unassigned (incomplete information). Tabs/newlines/backslashes
/// in content are escaped as \t, \n, \\.
std::string ToTsvRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                     const Document& doc);

/// One JSON object per line (JSONL):
/// {"doc":0,"x":{"span":[1,4],"text":"abc"},"y":null}.
std::string ToJsonRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc);

/// Formats mappings as they stream: each pushed mapping becomes one TSV
/// or JSONL line appended to *out, and its storage is recycled into the
/// pool. Terminates a push-based pipeline (Spanner::ExtractTo, the
/// query operators) without materializing a mapping vector in between;
/// rows arrive in the producer's (unsorted) order.
class FormattingSink final : public MappingSink {
 public:
  FormattingSink(OutputFormat format, size_t doc_index, const VarSet& vars,
                 const Document& doc, std::string* out,
                 MappingPool* pool = nullptr)
      : format_(format),
        doc_index_(doc_index),
        vars_(vars),
        doc_(doc),
        out_(out),
        pool_(pool) {}

  bool Push(Mapping m) override {
    *out_ += format_ == OutputFormat::kTsv
                 ? ToTsvRow(doc_index_, m, vars_, doc_)
                 : ToJsonRow(doc_index_, m, vars_, doc_);
    *out_ += '\n';
    ++rows_;
    if (pool_ != nullptr) pool_->Recycle(std::move(m));
    return true;
  }
  MappingPool* pool() override { return pool_; }
  size_t rows() const { return rows_; }

 private:
  OutputFormat format_;
  size_t doc_index_;
  const VarSet& vars_;
  const Document& doc_;
  std::string* out_;
  MappingPool* pool_;
  size_t rows_ = 0;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_FORMAT_H_
