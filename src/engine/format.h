// Row formatting for engine output: one extracted mapping → one TSV or
// JSON line. Used by tools/spanex and kept in the library so tests can pin
// the exact wire format.
#ifndef SPANNERS_ENGINE_FORMAT_H_
#define SPANNERS_ENGINE_FORMAT_H_

#include <string>
#include <vector>

#include "core/document.h"
#include "core/mapping.h"
#include "core/variable.h"

namespace spanners {
namespace engine {

enum class OutputFormat { kTsv, kJson };

/// Parses "tsv" / "json" (case-sensitive).
bool ParseOutputFormat(const std::string& s, OutputFormat* out);

/// Header line naming the TSV columns for `vars` (doc, then one span and
/// one content column per variable, in VarId order): e.g.
/// "doc\tx.span\tx.text\ty.span\ty.text".
std::string TsvHeader(const VarSet& vars);

/// One TSV row: document index, then per variable of `vars` either
/// "i..j" + extracted text or "⊥" + empty when the mapping leaves the
/// variable unassigned (incomplete information). Tabs/newlines/backslashes
/// in content are escaped as \t, \n, \\.
std::string ToTsvRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                     const Document& doc);

/// One JSON object per line (JSONL):
/// {"doc":0,"x":{"span":[1,4],"text":"abc"},"y":null}.
std::string ToJsonRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc);

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_FORMAT_H_
