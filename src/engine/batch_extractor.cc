#include "engine/batch_extractor.h"

#include <utility>

namespace spanners {
namespace engine {

size_t BatchResult::MatchedDocuments() const {
  size_t n = 0;
  for (const auto& ms : per_doc)
    if (!ms.empty()) ++n;
  return n;
}

BatchExtractor::BatchExtractor(BatchOptions options)
    : options_(options), pool_(options.num_threads) {
  worker_scratch_.reserve(pool_.num_threads());
  for (size_t i = 0; i < pool_.num_threads(); ++i)
    worker_scratch_.push_back(std::make_unique<PlanScratch>());
}

BatchResult BatchExtractor::Extract(const DocumentExtractor& extractor,
                                    const Corpus& corpus) {
  BatchResult result;
  ExtractInto(extractor, corpus, &result);
  return result;
}

void BatchExtractor::ExtractInto(const DocumentExtractor& extractor,
                                 const Corpus& corpus, BatchResult* result) {
  result->per_doc.resize(corpus.size());
  result->total_mappings = 0;
  result->shards = 0;
  if (corpus.empty()) return;

  ShardingOptions sharding;
  sharding.max_shards =
      pool_.num_threads() *
      (options_.shard_oversubscription == 0 ? 1
                                            : options_.shard_oversubscription);
  sharding.min_docs_per_shard = options_.min_docs_per_shard;
  std::vector<Shard> shards = ShardCorpus(corpus, sharding);
  result->shards = shards.size();

  // One task per shard; each writes only its own slots of per_doc, so no
  // synchronization is needed beyond the pool's completion barrier. Every
  // worker extracts through its own arena-backed scratch, Reset() between
  // documents; a reused result's previous mappings are recycled into the
  // extracting worker's pool. Output order is fixed by document slot +
  // Mapping sort, so results are byte-identical for any thread count.
  for (const Shard& shard : shards) {
    pool_.Submit([this, &extractor, &corpus, result, shard] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      for (size_t i = shard.begin; i < shard.end; ++i)
        extractor.ExtractSortedInto(corpus[i], &scratch, &result->per_doc[i]);
    });
  }
  pool_.WaitIdle();

  for (const auto& ms : result->per_doc) result->total_mappings += ms.size();
}

}  // namespace engine
}  // namespace spanners
