#include "engine/batch_extractor.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "obs/span.h"

namespace spanners {
namespace engine {

namespace {

/// Whole-document wall time (gate + evaluator + sort), one observation per
/// (document, extractor) — and per (document, fleet) in multi mode, where
/// a single observation covers every resident plan. Trace events carry the
/// corpus document index as their arg, so a Chrome-trace view lines the
/// per-tier spans up under the document they belong to.
obs::Histogram* DocHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("engine.doc_ns");
  return h;
}

}  // namespace

size_t BatchResult::MatchedDocuments() const {
  size_t n = 0;
  for (const auto& ms : per_doc)
    if (!ms.empty()) ++n;
  return n;
}

BatchExtractor::BatchExtractor(BatchOptions options)
    : options_(options), pool_(options.num_threads) {
  worker_scratch_.reserve(pool_.num_threads());
  for (size_t i = 0; i < pool_.num_threads(); ++i)
    worker_scratch_.push_back(std::make_unique<PlanScratch>());
}

BatchResult BatchExtractor::Extract(const DocumentExtractor& extractor,
                                    const Corpus& corpus) {
  BatchResult result;
  ExtractInto(extractor, corpus, &result);
  return result;
}

ShardingOptions BatchExtractor::MakeShardingOptions() const {
  ShardingOptions sharding;
  sharding.max_shards =
      pool_.num_threads() *
      (options_.shard_oversubscription == 0 ? 1
                                            : options_.shard_oversubscription);
  sharding.min_docs_per_shard = options_.min_docs_per_shard;
  return sharding;
}

void BatchExtractor::ExtractInto(const DocumentExtractor& extractor,
                                 const Corpus& corpus, BatchResult* result) {
  result->per_doc.resize(corpus.size());
  result->total_mappings = 0;
  result->shards = 0;
  if (corpus.empty()) return;

  std::vector<Shard> shards = ShardCorpus(corpus, MakeShardingOptions());
  result->shards = shards.size();

  // One task per shard; each writes only its own slots of per_doc, so no
  // synchronization is needed beyond the pool's completion barrier. Every
  // worker extracts through its own arena-backed scratch, Reset() between
  // documents; a reused result's previous mappings are recycled into the
  // extracting worker's pool. Output order is fixed by document slot +
  // Mapping sort, so results are byte-identical for any thread count.
  for (const Shard& shard : shards) {
    pool_.Submit([this, &extractor, &corpus, result, shard] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      for (size_t i = shard.begin; i < shard.end; ++i) {
        obs::ObsSpan span(DocHistogram(), "doc", i);
        extractor.ExtractSortedInto(corpus[i], &scratch, &result->per_doc[i]);
      }
    });
  }
  pool_.WaitIdle();

  for (const auto& ms : result->per_doc) result->total_mappings += ms.size();
}

MultiBatchResult BatchExtractor::ExtractMulti(
    const MultiQueryExtractor& fleet, const Corpus& corpus) {
  MultiBatchResult result;
  ExtractMultiInto(fleet, corpus, &result);
  return result;
}

void BatchExtractor::ExtractMultiInto(const MultiQueryExtractor& fleet,
                                      const Corpus& corpus,
                                      MultiBatchResult* result) {
  const size_t num_plans = fleet.num_plans();
  result->per_plan.resize(num_plans);
  result->total_mappings = 0;
  result->shards = 0;
  for (BatchResult& br : result->per_plan) {
    br.per_doc.resize(corpus.size());
    br.total_mappings = 0;
    br.shards = 0;
  }
  if (corpus.empty() || num_plans == 0) return;

  std::vector<Shard> shards = ShardCorpus(corpus, MakeShardingOptions());
  result->shards = shards.size();
  for (BatchResult& br : result->per_plan) br.shards = shards.size();

  // Exactly the Extract layout — one task per shard, each writing only
  // its own per-document slots — except that a task extracts every plan
  // of the fleet from a document while its text is hot: one shared AC
  // scan, then the surviving plans' evaluators, all through this worker's
  // scratch.
  for (const Shard& shard : shards) {
    pool_.Submit([this, &fleet, &corpus, result, num_plans, shard] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      std::vector<std::vector<Mapping>*> slots(num_plans);
      for (size_t i = shard.begin; i < shard.end; ++i) {
        obs::ObsSpan span(DocHistogram(), "doc", i);
        for (size_t p = 0; p < num_plans; ++p)
          slots[p] = &result->per_plan[p].per_doc[i];
        fleet.ExtractAllSortedInto(corpus[i], &scratch, slots.data());
      }
    });
  }
  pool_.WaitIdle();

  for (BatchResult& br : result->per_plan) {
    for (const auto& ms : br.per_doc) br.total_mappings += ms.size();
    result->total_mappings += br.total_mappings;
  }
}

BatchExtractor::StreamStats BatchExtractor::ExtractMultiStream(
    const MultiQueryExtractor& fleet, const Corpus& corpus,
    const MultiShardConsumer& consumer) {
  StreamStats stats;
  const size_t num_plans = fleet.num_plans();
  if (corpus.empty() || num_plans == 0) return stats;

  const std::vector<Shard> shards =
      ShardCorpus(corpus, MakeShardingOptions());
  stats.shards = shards.size();

  // Same ordered-drain machinery as ExtractStream, with a per-plan slice
  // per shard.
  struct ShardState {
    std::vector<std::vector<std::vector<Mapping>>> per_plan;
    bool done = false;  // guarded by mu
  };
  std::vector<ShardState> state(shards.size());
  std::mutex mu;
  std::condition_variable cv;
  const size_t window = std::max<size_t>(1, pool_.num_threads() * 2);

  auto submit = [&](size_t s) {
    pool_.Submit([this, &fleet, &corpus, &shards, &state, &mu, &cv,
                  num_plans, s] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      const Shard& shard = shards[s];
      ShardState& st = state[s];
      st.per_plan.assign(num_plans,
                         std::vector<std::vector<Mapping>>(shard.size()));
      std::vector<std::vector<Mapping>*> slots(num_plans);
      for (size_t i = shard.begin; i < shard.end; ++i) {
        obs::ObsSpan span(DocHistogram(), "doc", i);
        for (size_t p = 0; p < num_plans; ++p)
          slots[p] = &st.per_plan[p][i - shard.begin];
        fleet.ExtractAllSortedInto(corpus[i], &scratch, slots.data());
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        st.done = true;
      }
      cv.notify_all();
    });
  };

  struct DrainGuard {
    ThreadPool& pool;
    ~DrainGuard() { pool.WaitIdle(); }
  } drain{pool_};

  size_t next_submit = 0;
  for (size_t consumed = 0; consumed < shards.size(); ++consumed) {
    while (next_submit < shards.size() && next_submit < consumed + window)
      submit(next_submit++);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return state[consumed].done; });
    }
    ShardState& st = state[consumed];
    for (size_t d = 0; d < shards[consumed].size(); ++d) {
      bool matched = false;
      for (size_t p = 0; p < num_plans; ++p) {
        stats.total_mappings += st.per_plan[p][d].size();
        matched = matched || !st.per_plan[p][d].empty();
      }
      if (matched) ++stats.matched_documents;
    }
    consumer(shards[consumed].begin, shards[consumed].end, st.per_plan);
    std::vector<std::vector<std::vector<Mapping>>>().swap(st.per_plan);
  }
  return stats;
}

BatchExtractor::StreamStats BatchExtractor::ExtractStream(
    const DocumentExtractor& extractor, const Corpus& corpus,
    const ShardConsumer& consumer) {
  StreamStats stats;
  if (corpus.empty()) return stats;

  const ShardingOptions sharding = MakeShardingOptions();
  const std::vector<Shard> shards = ShardCorpus(corpus, sharding);
  stats.shards = shards.size();

  // Workers fill per-shard slices and flag completion; the calling thread
  // drains completed shards strictly in corpus order, so the emitted
  // stream is deterministic for any thread count. Submission lags
  // consumption by a bounded window, which caps in-flight result memory.
  struct ShardState {
    std::vector<std::vector<Mapping>> per_doc;
    bool done = false;  // guarded by mu
  };
  std::vector<ShardState> state(shards.size());
  std::mutex mu;
  std::condition_variable cv;
  // In-flight bound: enough shards to keep every worker busy while the
  // consumer drains, but strictly fewer than ShardCorpus can produce
  // (max_shards = threads × oversubscription), so a slow consumer
  // genuinely caps materialized results instead of admitting them all.
  const size_t window = std::max<size_t>(1, pool_.num_threads() * 2);

  auto submit = [&](size_t s) {
    pool_.Submit([this, &extractor, &corpus, &shards, &state, &mu, &cv, s] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      const Shard& shard = shards[s];
      ShardState& st = state[s];
      st.per_doc.resize(shard.size());
      for (size_t i = shard.begin; i < shard.end; ++i) {
        obs::ObsSpan span(DocHistogram(), "doc", i);
        extractor.ExtractSortedInto(corpus[i], &scratch,
                                    &st.per_doc[i - shard.begin]);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        st.done = true;
      }
      cv.notify_all();
    });
  };

  // Submitted tasks reference the locals above; if the consumer throws,
  // they must all finish before this frame unwinds.
  struct DrainGuard {
    ThreadPool& pool;
    ~DrainGuard() { pool.WaitIdle(); }
  } drain{pool_};

  size_t next_submit = 0;
  for (size_t consumed = 0; consumed < shards.size(); ++consumed) {
    while (next_submit < shards.size() && next_submit < consumed + window)
      submit(next_submit++);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return state[consumed].done; });
    }
    ShardState& st = state[consumed];
    for (const auto& ms : st.per_doc) {
      stats.total_mappings += ms.size();
      if (!ms.empty()) ++stats.matched_documents;
    }
    consumer(shards[consumed].begin, shards[consumed].end, st.per_doc);
    // Release the slice eagerly: streamed memory stays bounded even when
    // one shard produced a huge result.
    std::vector<std::vector<Mapping>>().swap(st.per_doc);
  }
  return stats;
}

}  // namespace engine
}  // namespace spanners
