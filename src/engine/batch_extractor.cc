#include "engine/batch_extractor.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "obs/span.h"

namespace spanners {
namespace engine {

namespace {

/// Whole-document wall time (gate + evaluator + sort), one observation per
/// (document, extractor) — and per (document, fleet) in multi mode, where
/// a single observation covers every resident plan. Trace events carry the
/// corpus document index as their arg, so a Chrome-trace view lines the
/// per-tier spans up under the document they belong to.
obs::Histogram* DocHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("engine.doc_ns");
  return h;
}

/// Byte-balanced contiguous shards over an arbitrary per-item size list —
/// the candidate-docid analogue of ShardCorpus (which needs a Corpus, and
/// indexed extraction deliberately has none until documents materialize).
std::vector<Shard> ShardSizes(const std::vector<uint64_t>& sizes,
                              const ShardingOptions& options) {
  std::vector<Shard> shards;
  if (sizes.empty()) return shards;
  uint64_t total = 0;
  for (uint64_t s : sizes) total += s;
  const size_t max_shards = std::max<size_t>(1, options.max_shards);
  const uint64_t target = std::max<uint64_t>(1, total / max_shards);

  Shard cur{0, 0};
  uint64_t acc = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    cur.end = i + 1;
    acc += sizes[i];
    if (acc >= target && cur.size() >= options.min_docs_per_shard &&
        shards.size() + 1 < max_shards) {
      shards.push_back(cur);
      cur = Shard{i + 1, i + 1};
      acc = 0;
    }
  }
  if (cur.size() > 0) shards.push_back(cur);
  return shards;
}

/// Snapshot of this process's page-fault counters (minor, major).
std::pair<uint64_t, uint64_t> PageFaults() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return {0, 0};
  return {static_cast<uint64_t>(ru.ru_minflt),
          static_cast<uint64_t>(ru.ru_majflt)};
}

/// Mirrors one indexed call's accounting into the obs index.* metrics.
void RecordIndexedStats(const IndexedStats& stats) {
  if (!obs::Enabled()) return;
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter* corpus_docs = reg.GetCounter("index.corpus_docs");
  static obs::Counter* candidate_docs =
      reg.GetCounter("index.candidate_docs");
  static obs::Counter* postings = reg.GetCounter("index.postings_touched");
  static obs::Counter* terms = reg.GetCounter("index.terms_probed");
  static obs::Counter* minflt = reg.GetCounter("index.minor_faults");
  static obs::Counter* majflt = reg.GetCounter("index.major_faults");
  static obs::Histogram* lookup_ns = reg.GetHistogram("index.lookup_ns");
  corpus_docs->Add(stats.corpus_docs);
  candidate_docs->Add(stats.candidate_docs);
  postings->Add(stats.postings_touched);
  terms->Add(stats.terms_probed);
  minflt->Add(stats.minor_faults);
  majflt->Add(stats.major_faults);
  lookup_ns->Record(stats.lookup_ns);
}

}  // namespace

size_t BatchResult::MatchedDocuments() const {
  size_t n = 0;
  for (const auto& ms : per_doc)
    if (!ms.empty()) ++n;
  return n;
}

BatchExtractor::BatchExtractor(BatchOptions options)
    : options_(options), pool_(options.num_threads) {
  worker_scratch_.reserve(pool_.num_threads());
  for (size_t i = 0; i < pool_.num_threads(); ++i)
    worker_scratch_.push_back(std::make_unique<PlanScratch>());
}

BatchResult BatchExtractor::Extract(const DocumentExtractor& extractor,
                                    const Corpus& corpus) {
  BatchResult result;
  ExtractInto(extractor, corpus, &result);
  return result;
}

ShardingOptions BatchExtractor::MakeShardingOptions() const {
  ShardingOptions sharding;
  sharding.max_shards =
      pool_.num_threads() *
      (options_.shard_oversubscription == 0 ? 1
                                            : options_.shard_oversubscription);
  sharding.min_docs_per_shard = options_.min_docs_per_shard;
  return sharding;
}

void BatchExtractor::ExtractInto(const DocumentExtractor& extractor,
                                 const Corpus& corpus, BatchResult* result) {
  result->per_doc.resize(corpus.size());
  result->total_mappings = 0;
  result->shards = 0;
  if (corpus.empty()) return;

  std::vector<Shard> shards = ShardCorpus(corpus, MakeShardingOptions());
  result->shards = shards.size();

  // One task per shard; each writes only its own slots of per_doc, so no
  // synchronization is needed beyond the pool's completion barrier. Every
  // worker extracts through its own arena-backed scratch, Reset() between
  // documents; a reused result's previous mappings are recycled into the
  // extracting worker's pool. Output order is fixed by document slot +
  // Mapping sort, so results are byte-identical for any thread count.
  for (const Shard& shard : shards) {
    pool_.Submit([this, &extractor, &corpus, result, shard] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      scratch.cancel = cancel_;  // unconditionally: clears stale tokens too
      for (size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel_ != nullptr && cancel_->tripped()) break;
        obs::ObsSpan span(DocHistogram(), "doc", i);
        extractor.ExtractSortedInto(corpus[i], &scratch, &result->per_doc[i]);
      }
    });
  }
  pool_.WaitIdle();

  for (const auto& ms : result->per_doc) result->total_mappings += ms.size();
}

MultiBatchResult BatchExtractor::ExtractMulti(
    const MultiQueryExtractor& fleet, const Corpus& corpus) {
  MultiBatchResult result;
  ExtractMultiInto(fleet, corpus, &result);
  return result;
}

void BatchExtractor::ExtractMultiInto(const MultiQueryExtractor& fleet,
                                      const Corpus& corpus,
                                      MultiBatchResult* result) {
  const size_t num_plans = fleet.num_plans();
  result->per_plan.resize(num_plans);
  result->total_mappings = 0;
  result->shards = 0;
  for (BatchResult& br : result->per_plan) {
    br.per_doc.resize(corpus.size());
    br.total_mappings = 0;
    br.shards = 0;
  }
  if (corpus.empty() || num_plans == 0) return;

  std::vector<Shard> shards = ShardCorpus(corpus, MakeShardingOptions());
  result->shards = shards.size();
  for (BatchResult& br : result->per_plan) br.shards = shards.size();

  // Exactly the Extract layout — one task per shard, each writing only
  // its own per-document slots — except that a task extracts every plan
  // of the fleet from a document while its text is hot: one shared AC
  // scan, then the surviving plans' evaluators, all through this worker's
  // scratch.
  for (const Shard& shard : shards) {
    pool_.Submit([this, &fleet, &corpus, result, num_plans, shard] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      scratch.cancel = cancel_;
      std::vector<std::vector<Mapping>*> slots(num_plans);
      for (size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel_ != nullptr && cancel_->tripped()) break;
        obs::ObsSpan span(DocHistogram(), "doc", i);
        for (size_t p = 0; p < num_plans; ++p)
          slots[p] = &result->per_plan[p].per_doc[i];
        fleet.ExtractAllSortedInto(corpus[i], &scratch, slots.data());
      }
    });
  }
  pool_.WaitIdle();

  for (BatchResult& br : result->per_plan) {
    for (const auto& ms : br.per_doc) br.total_mappings += ms.size();
    result->total_mappings += br.total_mappings;
  }
}

BatchResult BatchExtractor::ExtractIndexed(const ExtractionPlan& plan,
                                           const storage::SegmentStore& store,
                                           const storage::NgramIndex* index,
                                           IndexedStats* stats) {
  BatchResult result;
  const size_t num_docs = store.num_docs();
  result.per_doc.assign(num_docs, {});

  IndexedStats local;
  local.corpus_docs = num_docs;
  const std::pair<uint64_t, uint64_t> faults0 = PageFaults();

  storage::CandidateSet cand;  // all = true: scan everything
  if (index != nullptr) {
    storage::LookupStats lookup;
    const auto t0 = std::chrono::steady_clock::now();
    cand = index->Candidates(plan.prefilter(), &lookup);
    local.lookup_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    local.postings_touched = lookup.postings_touched;
    local.terms_probed = lookup.terms_probed;
  }
  local.narrowed = !cand.all;
  local.candidate_docs = cand.CountIn(num_docs);

  if (local.candidate_docs > 0) {
    // Byte-balanced shards over the candidate list; each task materializes
    // its own candidates out of the mapping and writes only its own
    // per-docid slots — the same determinism argument as ExtractInto, so
    // the result is byte-identical for every thread count. Non-candidates
    // keep their empty slots untouched.
    std::vector<uint64_t> sizes(local.candidate_docs);
    for (size_t j = 0; j < sizes.size(); ++j)
      sizes[j] = store.doc_bytes(cand.all ? j : cand.docs[j]);
    const std::vector<Shard> shards =
        ShardSizes(sizes, MakeShardingOptions());
    result.shards = shards.size();
    for (const Shard& shard : shards) {
      pool_.Submit([this, &plan, &store, &cand, &result, shard] {
        PlanScratch& scratch =
            *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
        scratch.cancel = cancel_;
        for (size_t j = shard.begin; j < shard.end; ++j) {
          if (cancel_ != nullptr && cancel_->tripped()) break;
          const size_t d = cand.all ? j : cand.docs[j];
          obs::ObsSpan span(DocHistogram(), "doc", d);
          const Document doc = store.MaterializeDoc(d);
          plan.ExtractSortedInto(doc, &scratch, &result.per_doc[d]);
        }
      });
    }
    pool_.WaitIdle();
  }

  for (const auto& ms : result.per_doc) result.total_mappings += ms.size();
  const std::pair<uint64_t, uint64_t> faults1 = PageFaults();
  local.minor_faults = faults1.first - faults0.first;
  local.major_faults = faults1.second - faults0.second;
  RecordIndexedStats(local);
  if (stats != nullptr) *stats = local;
  return result;
}

MultiBatchResult BatchExtractor::ExtractIndexedMulti(
    const MultiQueryExtractor& fleet, const storage::SegmentStore& store,
    const storage::NgramIndex* index, IndexedStats* stats) {
  MultiBatchResult result;
  const size_t num_docs = store.num_docs();
  const size_t num_plans = fleet.num_plans();
  result.per_plan.resize(num_plans);
  for (BatchResult& br : result.per_plan) br.per_doc.assign(num_docs, {});

  IndexedStats local;
  local.corpus_docs = num_docs;
  if (num_plans == 0) {
    if (stats != nullptr) *stats = local;
    return result;
  }
  const std::pair<uint64_t, uint64_t> faults0 = PageFaults();

  // A document is a candidate when it is a candidate for ANY resident
  // plan; a plan the index cannot narrow widens the union to the whole
  // store (its matches could be anywhere).
  storage::CandidateSet cand;
  if (index != nullptr) {
    storage::LookupStats lookup;
    const auto t0 = std::chrono::steady_clock::now();
    cand.all = false;
    for (size_t p = 0; p < num_plans; ++p) {
      storage::CandidateSet c =
          index->Candidates(fleet.plan(p).prefilter(), &lookup);
      if (c.all) {
        cand.all = true;
        cand.docs.clear();
        break;
      }
      std::vector<uint32_t> merged;
      merged.reserve(cand.docs.size() + c.docs.size());
      std::set_union(cand.docs.begin(), cand.docs.end(), c.docs.begin(),
                     c.docs.end(), std::back_inserter(merged));
      cand.docs = std::move(merged);
    }
    local.lookup_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    local.postings_touched = lookup.postings_touched;
    local.terms_probed = lookup.terms_probed;
  }
  local.narrowed = !cand.all;
  local.candidate_docs = cand.CountIn(num_docs);

  if (local.candidate_docs > 0) {
    std::vector<uint64_t> sizes(local.candidate_docs);
    for (size_t j = 0; j < sizes.size(); ++j)
      sizes[j] = store.doc_bytes(cand.all ? j : cand.docs[j]);
    const std::vector<Shard> shards =
        ShardSizes(sizes, MakeShardingOptions());
    result.shards = shards.size();
    for (BatchResult& br : result.per_plan) br.shards = shards.size();
    for (const Shard& shard : shards) {
      pool_.Submit([this, &fleet, &store, &cand, &result, num_plans, shard] {
        PlanScratch& scratch =
            *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
        scratch.cancel = cancel_;
        std::vector<std::vector<Mapping>*> slots(num_plans);
        for (size_t j = shard.begin; j < shard.end; ++j) {
          if (cancel_ != nullptr && cancel_->tripped()) break;
          const size_t d = cand.all ? j : cand.docs[j];
          obs::ObsSpan span(DocHistogram(), "doc", d);
          for (size_t p = 0; p < num_plans; ++p)
            slots[p] = &result.per_plan[p].per_doc[d];
          const Document doc = store.MaterializeDoc(d);
          fleet.ExtractAllSortedInto(doc, &scratch, slots.data());
        }
      });
    }
    pool_.WaitIdle();
  }

  for (BatchResult& br : result.per_plan) {
    for (const auto& ms : br.per_doc) br.total_mappings += ms.size();
    result.total_mappings += br.total_mappings;
  }
  const std::pair<uint64_t, uint64_t> faults1 = PageFaults();
  local.minor_faults = faults1.first - faults0.first;
  local.major_faults = faults1.second - faults0.second;
  RecordIndexedStats(local);
  if (stats != nullptr) *stats = local;
  return result;
}

BatchExtractor::StreamStats BatchExtractor::ExtractMultiStream(
    const MultiQueryExtractor& fleet, const Corpus& corpus,
    const MultiShardConsumer& consumer) {
  StreamStats stats;
  const size_t num_plans = fleet.num_plans();
  if (corpus.empty() || num_plans == 0) return stats;

  const std::vector<Shard> shards =
      ShardCorpus(corpus, MakeShardingOptions());
  stats.shards = shards.size();

  // Same ordered-drain machinery as ExtractStream, with a per-plan slice
  // per shard.
  struct ShardState {
    std::vector<std::vector<std::vector<Mapping>>> per_plan;
    bool done = false;  // guarded by mu
  };
  std::vector<ShardState> state(shards.size());
  std::mutex mu;
  std::condition_variable cv;
  const size_t window = std::max<size_t>(1, pool_.num_threads() * 2);

  auto submit = [&](size_t s) {
    pool_.Submit([this, &fleet, &corpus, &shards, &state, &mu, &cv,
                  num_plans, s] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      scratch.cancel = cancel_;
      const Shard& shard = shards[s];
      ShardState& st = state[s];
      st.per_plan.assign(num_plans,
                         std::vector<std::vector<Mapping>>(shard.size()));
      std::vector<std::vector<Mapping>*> slots(num_plans);
      for (size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel_ != nullptr && cancel_->tripped()) break;
        obs::ObsSpan span(DocHistogram(), "doc", i);
        for (size_t p = 0; p < num_plans; ++p)
          slots[p] = &st.per_plan[p][i - shard.begin];
        fleet.ExtractAllSortedInto(corpus[i], &scratch, slots.data());
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        st.done = true;
      }
      cv.notify_all();
    });
  };

  struct DrainGuard {
    ThreadPool& pool;
    ~DrainGuard() { pool.WaitIdle(); }
  } drain{pool_};

  size_t next_submit = 0;
  for (size_t consumed = 0; consumed < shards.size(); ++consumed) {
    while (next_submit < shards.size() && next_submit < consumed + window)
      submit(next_submit++);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return state[consumed].done; });
    }
    ShardState& st = state[consumed];
    for (size_t d = 0; d < shards[consumed].size(); ++d) {
      bool matched = false;
      for (size_t p = 0; p < num_plans; ++p) {
        stats.total_mappings += st.per_plan[p][d].size();
        matched = matched || !st.per_plan[p][d].empty();
      }
      if (matched) ++stats.matched_documents;
    }
    consumer(shards[consumed].begin, shards[consumed].end, st.per_plan);
    std::vector<std::vector<std::vector<Mapping>>>().swap(st.per_plan);
  }
  return stats;
}

BatchExtractor::StreamStats BatchExtractor::ExtractStream(
    const DocumentExtractor& extractor, const Corpus& corpus,
    const ShardConsumer& consumer) {
  StreamStats stats;
  if (corpus.empty()) return stats;

  const ShardingOptions sharding = MakeShardingOptions();
  const std::vector<Shard> shards = ShardCorpus(corpus, sharding);
  stats.shards = shards.size();

  // Workers fill per-shard slices and flag completion; the calling thread
  // drains completed shards strictly in corpus order, so the emitted
  // stream is deterministic for any thread count. Submission lags
  // consumption by a bounded window, which caps in-flight result memory.
  struct ShardState {
    std::vector<std::vector<Mapping>> per_doc;
    bool done = false;  // guarded by mu
  };
  std::vector<ShardState> state(shards.size());
  std::mutex mu;
  std::condition_variable cv;
  // In-flight bound: enough shards to keep every worker busy while the
  // consumer drains, but strictly fewer than ShardCorpus can produce
  // (max_shards = threads × oversubscription), so a slow consumer
  // genuinely caps materialized results instead of admitting them all.
  const size_t window = std::max<size_t>(1, pool_.num_threads() * 2);

  auto submit = [&](size_t s) {
    pool_.Submit([this, &extractor, &corpus, &shards, &state, &mu, &cv, s] {
      PlanScratch& scratch =
          *worker_scratch_[ThreadPool::CurrentWorkerIndex()];
      scratch.cancel = cancel_;
      const Shard& shard = shards[s];
      ShardState& st = state[s];
      st.per_doc.resize(shard.size());
      for (size_t i = shard.begin; i < shard.end; ++i) {
        if (cancel_ != nullptr && cancel_->tripped()) break;
        obs::ObsSpan span(DocHistogram(), "doc", i);
        extractor.ExtractSortedInto(corpus[i], &scratch,
                                    &st.per_doc[i - shard.begin]);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        st.done = true;
      }
      cv.notify_all();
    });
  };

  // Submitted tasks reference the locals above; if the consumer throws,
  // they must all finish before this frame unwinds.
  struct DrainGuard {
    ThreadPool& pool;
    ~DrainGuard() { pool.WaitIdle(); }
  } drain{pool_};

  size_t next_submit = 0;
  for (size_t consumed = 0; consumed < shards.size(); ++consumed) {
    while (next_submit < shards.size() && next_submit < consumed + window)
      submit(next_submit++);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return state[consumed].done; });
    }
    ShardState& st = state[consumed];
    for (const auto& ms : st.per_doc) {
      stats.total_mappings += ms.size();
      if (!ms.empty()) ++stats.matched_documents;
    }
    consumer(shards[consumed].begin, shards[consumed].end, st.per_doc);
    // Release the slice eagerly: streamed memory stays bounded even when
    // one shard produced a huge result.
    std::vector<std::vector<Mapping>>().swap(st.per_doc);
  }
  return stats;
}

}  // namespace engine
}  // namespace spanners
