// EngineReport: the one formatter for end-of-run engine statistics.
//
// Callers (tools/spanex, the future spanexd stats endpoint) collect the
// relevant snapshots — per-plan PlanStats + lazy-DFA stats, plan-cache
// stats, batch totals, wall time, and optionally the full telemetry
// MetricsSnapshot — into this struct and render it exactly once, as
// either the human-readable text block --stats always printed or a
// machine-readable JSON object (--stats=json / --metrics=json). The
// struct is plain data built from snapshots, so rendering never races
// live counters and both formats always agree.
#ifndef SPANNERS_ENGINE_REPORT_H_
#define SPANNERS_ENGINE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/lazy_dfa.h"
#include "engine/batch_extractor.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"
#include "obs/metrics.h"

namespace spanners {
namespace engine {

/// One plan's stats snapshot. `label` is "" for a single-plan run and
/// "q<i>" (command-line position) for fleet members.
struct PlanReport {
  std::string label;
  std::string info;  // PlanInfo::ToString()
  PlanStats stats;
  LazyDfaStats dfa;
};

/// spanexd's service-side accounting, filled by server::Server from its
/// always-on counters (a plain-data section here rather than a server
/// header so engine/ never depends on server/). Rendered by ToText/ToJson
/// when EngineReport::have_server is set.
struct ServerStatsReport {
  uint64_t uptime_ns = 0;
  uint64_t connections_total = 0;  // accepted since start
  size_t connections_open = 0;
  uint64_t requests = 0;  // parsed request lines
  uint64_t admitted = 0;  // work items accepted into the queue
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_inflight_cap = 0;
  uint64_t rejected_draining = 0;
  /// Admitted items whose client disconnected before execution.
  uint64_t dropped_disconnect = 0;
  /// Requests whose per-request deadline expired before (or while)
  /// executing; the client got Status::DeadlineExceeded.
  uint64_t deadline_exceeded = 0;
  /// In-flight evaluations aborted by an external Cancel() (disconnect,
  /// force-close) mid-execution.
  uint64_t cancelled = 0;
  /// Evaluations aborted by the per-request arena-byte cap; the client
  /// got Status::ResourceExhausted.
  uint64_t resource_exhausted = 0;
  /// Queued items from already-closed connections, dropped at dequeue
  /// without executing.
  uint64_t cancelled_disconnect = 0;
  /// Connections force-closed for sitting idle past idle_timeout_ms.
  uint64_t reaped_idle = 0;
  size_t queue_depth = 0;  // point-in-time
  size_t queue_capacity = 0;
  /// Age of the oldest admitted-but-unfinished item (0 when idle).
  uint64_t oldest_inflight_age_ms = 0;
  bool draining = false;
  /// Serving in degraded mode (index unavailable or memory budget hit):
  /// full-scan answers, still byte-identical, just slower.
  bool degraded = false;
  std::string degraded_reason;
};

struct EngineReport {
  std::vector<PlanReport> plans;
  /// MultiQueryExtractor::ToString() ("" outside fleet runs).
  std::string fleet;
  /// Compiled algebra plan string ("" outside query runs).
  std::string query_plan;
  bool have_cache = false;
  PlanCacheStats cache;

  size_t documents = 0;
  uint64_t total_mappings = 0;
  size_t matched_documents = 0;
  size_t shards = 0;
  size_t threads = 0;
  uint64_t wall_ns = 0;

  /// Telemetry snapshot; meaningful only when recording was enabled for
  /// the run (have_metrics tracks that, not whether metrics exist).
  bool have_metrics = false;
  obs::MetricsSnapshot metrics;

  /// Posting-index accounting of an --index run (have_index tracks
  /// whether the indexed path ran at all; `index` summarizes the opened
  /// index, e.g. NgramIndex::ToString()).
  bool have_index = false;
  std::string index_info;
  IndexedStats index_stats;

  /// spanexd server-side accounting (stats endpoint only).
  bool have_server = false;
  ServerStatsReport server;

  /// The --stats text block, one `<prefix>...` line per fact.
  std::string ToText(const std::string& prefix) const;
  /// Everything above as one JSON object (single line, trailing newline
  /// excluded): {"plans":[...],"corpus":{...},"cache":{...},
  /// "wall_ns":...,"metrics":{...}}.
  std::string ToJson() const;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_REPORT_H_
