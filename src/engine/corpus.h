// A corpus: an ordered collection of documents extracted as one batch.
// Documents keep their insertion index, so engine results can be reported
// in a deterministic, thread-count-independent order. Also corpus sharding:
// byte-balanced contiguous ranges handed to worker threads.
#ifndef SPANNERS_ENGINE_CORPUS_H_
#define SPANNERS_ENGINE_CORPUS_H_

#include <cstddef>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/document.h"

namespace spanners {
namespace engine {

/// An immutable-after-build, index-addressed document collection.
class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::vector<Document> docs) : docs_(std::move(docs)) {}

  /// Splits `text` at `delimiter`, one document per piece. A trailing
  /// delimiter does not produce an extra empty document; interior empty
  /// pieces are kept (an empty document is a valid Σ-string).
  static Corpus FromDelimited(std::string_view text, char delimiter = '\n');

  /// Reads the whole stream and splits at `delimiter`.
  static Corpus FromStream(std::istream& in, char delimiter = '\n');

  /// Reads and splits a file. Fails with kInvalidArgument when unreadable.
  static Result<Corpus> FromFile(const std::string& path,
                                 char delimiter = '\n');

  void Add(Document doc) { docs_.push_back(std::move(doc)); }

  /// Moves every document of `other` onto the end of this corpus.
  void Append(Corpus&& other);

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }
  const Document& operator[](size_t i) const { return docs_[i]; }
  const std::vector<Document>& docs() const { return docs_; }

  auto begin() const { return docs_.begin(); }
  auto end() const { return docs_.end(); }

  /// Σ |d_i|: total corpus size in characters.
  size_t TotalBytes() const;

 private:
  std::vector<Document> docs_;
};

/// A contiguous [begin, end) range of corpus indices processed by one task.
struct Shard {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const Shard& o) const {
    return begin == o.begin && end == o.end;
  }
};

struct ShardingOptions {
  /// Upper bound on the number of shards (≈ threads × oversubscription so
  /// work stealing can rebalance skewed documents).
  size_t max_shards = 1;
  /// Lower bound on documents per shard; avoids drowning tiny corpora in
  /// scheduling overhead.
  size_t min_docs_per_shard = 16;
};

/// Partitions [0, corpus.size()) into at most `options.max_shards`
/// contiguous shards, balanced by document bytes (a shard closes once it
/// holds ≥ total/max_shards bytes and ≥ min_docs_per_shard documents).
/// Every document lands in exactly one shard; shards are returned in
/// corpus order. Empty corpus → no shards.
std::vector<Shard> ShardCorpus(const Corpus& corpus,
                               const ShardingOptions& options);

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_CORPUS_H_
