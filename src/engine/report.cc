#include "engine/report.h"

#include <cstdio>

namespace spanners {
namespace engine {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDfaText(std::string* out, const LazyDfaStats& ds) {
  *out += " (" + std::to_string(ds.num_states) + " dfa states, " +
          std::to_string(ds.num_atoms) + " atoms";
  if (ds.evictions > 0)
    *out += ", " + std::to_string(ds.evictions) + " evicted";
  if (ds.fallbacks > 0)
    *out += ", " + std::to_string(ds.fallbacks) + " simulation fallbacks";
  *out += ")\n";
}

void AppendPlanJson(std::string* out, const PlanReport& p) {
  const PlanStats& s = p.stats;
  *out += "{\"label\":\"" + JsonEscape(p.label) + "\",\"info\":\"" +
          JsonEscape(p.info) + "\",\"stats\":{\"documents\":" +
          std::to_string(s.documents) +
          ",\"mappings\":" + std::to_string(s.mappings) +
          ",\"ac_gate_skipped\":" + std::to_string(s.ac_gate_skipped) +
          ",\"prefilter_skipped\":" + std::to_string(s.prefilter_skipped) +
          ",\"dfa_skipped\":" + std::to_string(s.dfa_skipped) +
          ",\"evaluated\":" + std::to_string(s.evaluated()) +
          "},\"lazy_dfa\":{\"states\":" + std::to_string(p.dfa.num_states) +
          ",\"atoms\":" + std::to_string(p.dfa.num_atoms) +
          ",\"misses\":" + std::to_string(p.dfa.misses) +
          ",\"evictions\":" + std::to_string(p.dfa.evictions) +
          ",\"fallbacks\":" + std::to_string(p.dfa.fallbacks) + "}}";
}

}  // namespace

std::string EngineReport::ToText(const std::string& prefix) const {
  std::string out;
  if (!fleet.empty()) out += prefix + fleet + "\n";
  if (!query_plan.empty())
    out += prefix + "query plan [" + query_plan + "]\n";
  for (const PlanReport& p : plans) {
    const std::string tag = p.label.empty() ? "" : p.label + " ";
    out += prefix + tag + "[" + p.info + "]\n";
    out += prefix + tag + p.stats.ToString();
    AppendDfaText(&out, p.dfa);
  }
  if (have_cache) {
    out += prefix + "plan cache: " + std::to_string(cache.size) +
           " plans, " + std::to_string(cache.hits) + " hits, " +
           std::to_string(cache.misses) + " misses";
    if (cache.evictions > 0)
      out += ", " + std::to_string(cache.evictions) + " evictions";
    out += "\n";
  }
  if (have_index) {
    if (!index_info.empty()) out += prefix + index_info + "\n";
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1f%%",
                  index_stats.CandidateRatio() * 100.0);
    out += prefix + "index: " +
           std::to_string(index_stats.candidate_docs) + "/" +
           std::to_string(index_stats.corpus_docs) + " candidate docs (" +
           ratio + (index_stats.narrowed ? "" : ", not narrowed") + "), " +
           std::to_string(index_stats.postings_touched) +
           " postings touched, " + std::to_string(index_stats.terms_probed) +
           " terms probed, lookup " +
           std::to_string(index_stats.lookup_ns / 1000) + " us, faults " +
           std::to_string(index_stats.minor_faults) + " minor/" +
           std::to_string(index_stats.major_faults) + " major\n";
  }
  if (have_server) {
    const ServerStatsReport& s = server;
    char up[32];
    std::snprintf(up, sizeof(up), "%.1f s", double(s.uptime_ns) / 1e9);
    out += prefix + "server: up " + up + ", " +
           std::to_string(s.connections_open) + "/" +
           std::to_string(s.connections_total) + " conns open/total, " +
           std::to_string(s.requests) + " requests, " +
           std::to_string(s.admitted) + " admitted, queue " +
           std::to_string(s.queue_depth) + "/" +
           std::to_string(s.queue_capacity) +
           (s.draining ? ", draining" : "") + "\n";
    if (s.degraded)
      out += prefix + "server: DEGRADED (" + s.degraded_reason + ")\n";
    const uint64_t rejected = s.rejected_queue_full +
                              s.rejected_inflight_cap + s.rejected_draining;
    if (rejected > 0 || s.dropped_disconnect > 0)
      out += prefix + "server: rejected " +
             std::to_string(s.rejected_queue_full) + " queue-full, " +
             std::to_string(s.rejected_inflight_cap) + " inflight-cap, " +
             std::to_string(s.rejected_draining) + " draining; dropped " +
             std::to_string(s.dropped_disconnect) + " disconnected\n";
    if (s.deadline_exceeded > 0 || s.reaped_idle > 0)
      out += prefix + "server: " + std::to_string(s.deadline_exceeded) +
             " deadline-exceeded, " + std::to_string(s.reaped_idle) +
             " idle conns reaped\n";
    if (s.cancelled > 0 || s.resource_exhausted > 0 ||
        s.cancelled_disconnect > 0)
      out += prefix + "server: " + std::to_string(s.cancelled) +
             " cancelled, " + std::to_string(s.resource_exhausted) +
             " resource-exhausted, " +
             std::to_string(s.cancelled_disconnect) +
             " dropped-at-dequeue (disconnect)\n";
    if (s.oldest_inflight_age_ms > 0)
      out += prefix + "server: oldest in-flight item " +
             std::to_string(s.oldest_inflight_age_ms) + " ms old\n";
  }
  out += prefix + std::to_string(documents) + " docs, " +
         std::to_string(total_mappings) + " mappings, " +
         std::to_string(matched_documents) + " matched docs, " +
         std::to_string(shards) + " shards, " + std::to_string(threads) +
         " threads";
  if (wall_ns > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f ms", double(wall_ns) / 1e6);
    out += ", ";
    out += buf;
  }
  out += " (streamed per shard)\n";
  if (have_metrics) out += metrics.ToString();
  return out;
}

std::string EngineReport::ToJson() const {
  std::string out = "{\"plans\":[";
  for (size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) out += ",";
    AppendPlanJson(&out, plans[i]);
  }
  out += "]";
  if (!fleet.empty()) out += ",\"fleet\":\"" + JsonEscape(fleet) + "\"";
  if (!query_plan.empty())
    out += ",\"query_plan\":\"" + JsonEscape(query_plan) + "\"";
  if (have_cache)
    out += ",\"plan_cache\":{\"size\":" + std::to_string(cache.size) +
           ",\"hits\":" + std::to_string(cache.hits) +
           ",\"misses\":" + std::to_string(cache.misses) +
           ",\"evictions\":" + std::to_string(cache.evictions) + "}";
  out += ",\"corpus\":{\"documents\":" + std::to_string(documents) +
         ",\"total_mappings\":" + std::to_string(total_mappings) +
         ",\"matched_documents\":" + std::to_string(matched_documents) +
         ",\"shards\":" + std::to_string(shards) +
         ",\"threads\":" + std::to_string(threads) + "}";
  if (have_index) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.6f",
                  index_stats.CandidateRatio());
    out += ",\"index\":{\"info\":\"" + JsonEscape(index_info) +
           "\",\"corpus_docs\":" + std::to_string(index_stats.corpus_docs) +
           ",\"candidate_docs\":" +
           std::to_string(index_stats.candidate_docs) +
           ",\"candidate_ratio\":" + ratio +
           ",\"narrowed\":" + (index_stats.narrowed ? "true" : "false") +
           ",\"postings_touched\":" +
           std::to_string(index_stats.postings_touched) +
           ",\"terms_probed\":" + std::to_string(index_stats.terms_probed) +
           ",\"lookup_ns\":" + std::to_string(index_stats.lookup_ns) +
           ",\"minor_faults\":" + std::to_string(index_stats.minor_faults) +
           ",\"major_faults\":" + std::to_string(index_stats.major_faults) +
           "}";
  }
  if (have_server) {
    const ServerStatsReport& s = server;
    out += ",\"server\":{\"uptime_ns\":" + std::to_string(s.uptime_ns) +
           ",\"connections_total\":" + std::to_string(s.connections_total) +
           ",\"connections_open\":" + std::to_string(s.connections_open) +
           ",\"requests\":" + std::to_string(s.requests) +
           ",\"admitted\":" + std::to_string(s.admitted) +
           ",\"rejected_queue_full\":" +
           std::to_string(s.rejected_queue_full) +
           ",\"rejected_inflight_cap\":" +
           std::to_string(s.rejected_inflight_cap) +
           ",\"rejected_draining\":" + std::to_string(s.rejected_draining) +
           ",\"dropped_disconnect\":" +
           std::to_string(s.dropped_disconnect) +
           ",\"deadline_exceeded\":" + std::to_string(s.deadline_exceeded) +
           ",\"cancelled\":" + std::to_string(s.cancelled) +
           ",\"resource_exhausted\":" +
           std::to_string(s.resource_exhausted) +
           ",\"cancelled_disconnect\":" +
           std::to_string(s.cancelled_disconnect) +
           ",\"reaped_idle\":" + std::to_string(s.reaped_idle) +
           ",\"queue_depth\":" + std::to_string(s.queue_depth) +
           ",\"oldest_inflight_age_ms\":" +
           std::to_string(s.oldest_inflight_age_ms) +
           ",\"queue_capacity\":" + std::to_string(s.queue_capacity) +
           ",\"draining\":" + (s.draining ? "true" : "false") +
           ",\"degraded\":" + (s.degraded ? "true" : "false");
    if (s.degraded)
      out += ",\"degraded_reason\":\"" + JsonEscape(s.degraded_reason) + "\"";
    out += "}";
  }
  out += ",\"wall_ns\":" + std::to_string(wall_ns);
  if (have_metrics) out += ",\"metrics\":" + metrics.ToJson();
  out += "}";
  return out;
}

}  // namespace engine
}  // namespace spanners
