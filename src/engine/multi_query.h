// MultiQueryExtractor: runs a whole fleet of resident plans over a corpus
// with ONE document scan gating all of them. A spanner service keeps many
// compiled plans cached (PlanCache) and sees the same corpus under every
// one of them; running the plans sequentially costs one prefilter
// memmem/DFA pass per plan per document. This tier instead compiles every
// plan's MOST SELECTIVE required-literal clause (clauses()[0] — the
// longest-minimum-literal one; selective literals are also the rare ones,
// so the combined automaton leaves its root state rarely and the scan
// fast-forwards with memchr) into one shared Aho–Corasick automaton and,
// per document:
//
//      document text
//           │  one shared AC pass (every plan's strongest clause at once)
//           ▼
//   plan bitset ──► plan p's clause satisfied?      ──no──► skip p
//           │ yes
//           ▼
//   plan p's full prefilter (remaining clauses)     ──rejects──► skip p
//           │ passes
//           ▼
//   plan p's lazy-DFA membership gate               ──rejects──► skip p
//           │ passes
//           ▼
//   plan p's evaluator (run enumeration / Thm 5.7 / Thm 5.10)
//
// Only plans that survive every tier reach an evaluator, so the dominant
// cost on a low-selectivity fleet — scanning the 99% of documents that
// match nothing — is paid once per document instead of once per plan per
// document. Results are byte-identical to running each plan alone (each
// tier is sound: the shared pass computes exactly the plan's own
// strongest-clause satisfaction, and survivors re-run their complete
// prefilter), delivered per plan in deterministic corpus order.
//
// Thread safety: the extractor is immutable after construction apart from
// monotonic per-plan counters; one instance is shared by every worker of
// a BatchExtractor::ExtractMulti call.
#ifndef SPANNERS_ENGINE_MULTI_QUERY_H_
#define SPANNERS_ENGINE_MULTI_QUERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/aho_corasick.h"
#include "core/document.h"
#include "core/mapping.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"

namespace spanners {
namespace engine {

class MultiQueryExtractor {
 public:
  /// Builds the shared gate over `plans` (typically PlanCache residents).
  /// Plan order is preserved and defines the output order of ExtractMulti.
  /// With build_shared_gate=false the combined Aho–Corasick automaton is
  /// skipped entirely — every plan falls through to its own prefilter/DFA
  /// tiers (still byte-identical, just without the shared tier-1 pass).
  /// That is the degraded-mode escape hatch when the automaton would
  /// exceed a server's memory budget.
  explicit MultiQueryExtractor(
      std::vector<std::shared_ptr<const ExtractionPlan>> plans,
      bool build_shared_gate = true);

  /// Convenience: every plan resident in `cache`, in deterministic
  /// (key-sorted) order.
  static MultiQueryExtractor FromCache(const PlanCache& cache,
                                       bool build_shared_gate = true);

  size_t num_plans() const { return plans_.size(); }
  const ExtractionPlan& plan(size_t i) const { return *plans_[i]; }
  const std::shared_ptr<const ExtractionPlan>& plan_ptr(size_t i) const {
    return plans_[i];
  }

  /// Turns the shared AC + per-plan lazy-DFA gate off: every plan's
  /// evaluator runs on every document (differential testing). Set before
  /// sharing across threads.
  void set_gating_enabled(bool on) { gating_enabled_ = on; }
  bool gating_enabled() const { return gating_enabled_; }

  /// Extracts one document under every plan: out[p] is filled (cleared
  /// first, previous mappings recycled through the scratch pool) with the
  /// sorted ⟦γ_p⟧_doc — byte-identical to plans_[p]->ExtractSortedInto.
  /// `out` must hold num_plans() slots. One scratch per worker thread;
  /// its multi_clause_bits vector is the AC pass's satisfied-clause set.
  void ExtractAllSortedInto(const Document& doc, PlanScratch* scratch,
                            std::vector<Mapping>** out) const;

  /// Aggregated counters of plan `i` across every multi-query document:
  /// ac_gate_skipped counts shared-pass rejections, prefilter_skipped the
  /// plan's own remaining-clause rejections, dfa_skipped its lazy-DFA
  /// rejections; documents covers every corpus document seen.
  PlanStats plan_stats(size_t i) const;

  /// Total distinct gate literals across the fleet (0 = no shared gate;
  /// every plan falls through to its DFA tier).
  size_t num_gate_literals() const { return gate_literals_; }
  /// Plans with at least one prefilter clause (gateable by the AC pass).
  size_t num_gated_plans() const { return gated_plans_; }

  /// Fleet-owned memory beyond the shared plans: the combined automaton's
  /// flat goto table plus the pattern→plan CSR and per-plan bookkeeping.
  /// This is the number a serving memory budget compares against — the
  /// plans themselves are cache residents and exist either way.
  size_t ApproxMemoryBytes() const;

  /// e.g. "multi-query: 32 plans (32 literal-gated), aho-corasick: …".
  std::string ToString() const;

 private:
  // No `documents` counter: every document lands in exactly one of these
  // four, so plan_stats() derives the total — that keeps the per-skipped-
  // (plan, doc) cost at one relaxed atomic in the fleet's hottest loop.
  struct PlanCounters {
    std::atomic<uint64_t> extracted{0};
    std::atomic<uint64_t> mappings{0};
    std::atomic<uint64_t> ac_gate_skipped{0};
    std::atomic<uint64_t> prefilter_skipped{0};
    std::atomic<uint64_t> dfa_skipped{0};
  };

  std::vector<std::shared_ptr<const ExtractionPlan>> plans_;
  // Whether plan p participates in the shared pass (has a prefilter
  // clause) and, per document, which bit of the scratch bitset records
  // its strongest clause's satisfaction (the bit index is p itself).
  std::vector<uint8_t> plan_gated_;
  /// Plans whose full prefilter holds clauses beyond the gated one (the
  /// survivors' remaining-clause tier can be skipped otherwise).
  std::vector<uint8_t> plan_has_more_clauses_;
  // The combined automaton over every plan's strongest clause; pattern
  // id → the plan bits it satisfies (CSR: pattern_plan_offsets_ has
  // num patterns + 1 entries into pattern_plan_ids_).
  std::unique_ptr<const AhoCorasick> ac_;
  std::vector<uint32_t> pattern_plan_offsets_;
  std::vector<uint32_t> pattern_plan_ids_;
  size_t gate_literals_ = 0;
  size_t gated_plans_ = 0;
  bool gating_enabled_ = true;
  // unique_ptr keeps the extractor movable despite the atomics.
  std::unique_ptr<PlanCounters[]> counters_;
};

/// Generation-checked holder of a PlanCache's resident fleet. Building a
/// MultiQueryExtractor costs a full ResidentPlans() snapshot plus an
/// Aho–Corasick construction over every gated plan's strongest clause —
/// previously paid on EVERY serving-loop batch, even when the cache had
/// not changed at all. Get() instead rebuilds only when
/// PlanCache::generation() has moved since the last build (a membership
/// change: insert, eviction, Clear); an unchanged cache returns the
/// cached fleet with one atomic load and a mutex hop.
///
/// The generation is read BEFORE the snapshot: a membership change racing
/// the build bumps the generation past the recorded one, so the next
/// Get() conservatively rebuilds — the fleet can lag one batch behind a
/// concurrent insert (exactly as a FromCache snapshot could) but can
/// never get stuck stale. Returned fleets are shared_ptr-owned: a caller
/// mid-extraction keeps its fleet alive across any rebuild.
class CachedFleet {
 public:
  /// `cache` is borrowed and must outlive this holder.
  explicit CachedFleet(const PlanCache& cache) : cache_(cache) {}

  /// The fleet over the cache's current residents, rebuilt only when the
  /// cache's membership generation changed. Thread-safe.
  std::shared_ptr<const MultiQueryExtractor> Get();

  /// Caps the fleet's own memory (ApproxMemoryBytes). When a freshly
  /// built fleet exceeds the budget, Get() rebuilds it without the shared
  /// gate (a gateless fleet's footprint is near zero) and degraded()
  /// turns true until a later rebuild fits again. 0 = unlimited.
  void set_memory_budget(size_t bytes) {
    memory_budget_bytes_.store(bytes, std::memory_order_relaxed);
  }
  /// Whether the current fleet was built gateless to satisfy the budget.
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Fleet constructions performed so far (1 after the first Get()).
  uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  const PlanCache& cache_;
  std::mutex mu_;
  std::shared_ptr<const MultiQueryExtractor> fleet_;  // guarded by mu_
  uint64_t built_generation_ = 0;                     // guarded by mu_
  std::atomic<uint64_t> rebuilds_{0};
  std::atomic<size_t> memory_budget_bytes_{0};
  std::atomic<bool> degraded_{false};
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_MULTI_QUERY_H_
