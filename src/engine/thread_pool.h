// A fixed-size thread pool with per-worker deques and work stealing: a
// worker services its own deque LIFO (cache-friendly) and steals FIFO from
// the back of a victim's deque when idle, so a skewed shard distribution
// rebalances without a central contended queue.
#ifndef SPANNERS_ENGINE_THREAD_POOL_H_
#define SPANNERS_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spanners {
namespace engine {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (min 1). Threads live until destruction.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` on a worker deque (round-robin). Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Thread-safe, but
  /// tasks themselves must not call WaitIdle.
  void WaitIdle();

  /// Tasks stolen from another worker's deque (for tests / tuning).
  uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Index of the pool worker executing the current task, in
  /// [0, num_threads()), or SIZE_MAX when called off a pool thread. Lets
  /// tasks address per-worker state (e.g. one extraction arena per worker)
  /// without locking.
  static size_t CurrentWorkerIndex();

  static size_t DefaultThreads();

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;  // guarded by pool mutex
    std::thread thread;
  };

  void WorkerLoop(size_t self);
  /// Pops from own front, else steals from some victim's back.
  /// Precondition: mu_ held.
  bool TryPop(size_t self, std::function<void()>* task);

  std::vector<Worker> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // work available or shutting down
  std::condition_variable idle_cv_;  // pending_ dropped to zero
  size_t pending_ = 0;               // queued + running tasks
  size_t next_worker_ = 0;           // round-robin submit cursor
  bool shutdown_ = false;
  std::atomic<uint64_t> steals_{0};
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_THREAD_POOL_H_
