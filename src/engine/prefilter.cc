#include "engine/prefilter.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <utility>

namespace spanners {
namespace engine {

namespace {

// Bounds on the analysis, not on correctness: anything exceeding them is
// soundly demoted toward "no requirement".
constexpr size_t kMaxExactSet = 16;       // strings an exact set may hold
constexpr size_t kMaxLiteralLen = 64;     // bytes per literal
constexpr size_t kMaxClauseLiterals = 16; // literals per any-of clause
constexpr size_t kMaxClauses = 4;         // clauses kept per prefilter
constexpr size_t kMaxExactClass = 8;      // charset size still treated exactly

using Clause = Prefilter::Clause;

// Per-node analysis result. Either the node's language is known exactly
// as a small string set (`exact`), or we keep a conjunction of substring
// requirement clauses (possibly empty = no requirement).
struct Info {
  bool exact = false;
  std::vector<std::string> lits;  // meaningful when exact
  std::vector<Clause> clauses;    // meaningful when !exact
};

Info Top() { return Info{}; }

Info MakeExact(std::vector<std::string> lits) {
  Info i;
  i.exact = true;
  i.lits = std::move(lits);
  return i;
}

void SortUnique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// The requirement clause carried by an exact set: every word of the set
// contains itself, so a matching document contains one of the members.
// Vacuous (nullopt) when the set is empty/oversized or contains ε.
std::optional<Clause> ClauseFromExact(std::vector<std::string> lits) {
  SortUnique(&lits);
  if (lits.empty() || lits.size() > kMaxClauseLiterals) return std::nullopt;
  for (const std::string& s : lits)
    if (s.empty()) return std::nullopt;
  return Clause{std::move(lits)};
}

std::vector<Clause> RequiredOf(const Info& info) {
  if (!info.exact) return info.clauses;
  std::vector<Clause> out;
  if (std::optional<Clause> c = ClauseFromExact(info.lits))
    out.push_back(std::move(*c));
  return out;
}

size_t MinLiteralLen(const Clause& c) {
  size_t m = kMaxLiteralLen + 1;
  for (const std::string& s : c.literals) m = std::min(m, s.size());
  return m;
}

// The most selective clause of a requirement (longest minimum literal),
// or nullopt when the requirement is empty.
std::optional<Clause> BestClause(const std::vector<Clause>& clauses) {
  const Clause* best = nullptr;
  for (const Clause& c : clauses)
    if (best == nullptr || MinLiteralLen(c) > MinLiteralLen(*best)) best = &c;
  if (best == nullptr) return std::nullopt;
  return *best;
}

// acc × lits within the exact-set bounds; nullopt on blow-up.
std::optional<std::vector<std::string>> CrossProduct(
    const std::vector<std::string>& acc, const std::vector<std::string>& lits) {
  if (acc.size() * lits.size() > kMaxExactSet) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(acc.size() * lits.size());
  for (const std::string& a : acc)
    for (const std::string& b : lits) {
      if (a.size() + b.size() > kMaxLiteralLen) return std::nullopt;
      out.push_back(a + b);
    }
  SortUnique(&out);
  return out;
}

Info Analyze(const RgxNode& node);

Info AnalyzeConcat(const RgxNode& node) {
  // Fold children left to right, growing an exact accumulator as long as
  // children stay exact (this is what turns `S·e·l·l·e·r·:·␣` into the
  // literal "Seller: "); whenever exactness breaks, the accumulated set
  // becomes a mandatory clause and the accumulator restarts.
  std::vector<Clause> clauses;
  std::vector<std::string> acc{""};
  bool pure = true;  // no child has broken exactness yet

  auto flush = [&]() {
    if (std::optional<Clause> c = ClauseFromExact(acc))
      clauses.push_back(std::move(*c));
    acc.assign(1, "");
  };

  for (const RgxPtr& child : node.children()) {
    Info ci = Analyze(*child);
    if (ci.exact) {
      if (std::optional<std::vector<std::string>> prod =
              CrossProduct(acc, ci.lits)) {
        acc = std::move(*prod);
        continue;
      }
      pure = false;
      flush();
      acc = std::move(ci.lits);
      SortUnique(&acc);
      continue;
    }
    pure = false;
    flush();
    for (Clause& c : ci.clauses) clauses.push_back(std::move(c));
  }
  if (pure) return MakeExact(std::move(acc));
  flush();
  Info out;
  out.clauses = std::move(clauses);
  return out;
}

Info AnalyzeDisj(const RgxNode& node) {
  // Exact when every branch is exact and the union stays small.
  std::vector<std::string> unioned;
  bool all_exact = true;
  std::vector<Info> infos;
  infos.reserve(node.children().size());
  for (const RgxPtr& child : node.children()) infos.push_back(Analyze(*child));
  for (const Info& i : infos) {
    if (!i.exact || unioned.size() + i.lits.size() > kMaxExactSet) {
      all_exact = false;
      break;
    }
    unioned.insert(unioned.end(), i.lits.begin(), i.lits.end());
  }
  if (all_exact) {
    SortUnique(&unioned);
    return MakeExact(std::move(unioned));
  }

  // Otherwise a word matches *some* branch, so it satisfies the OR of one
  // clause per branch. A branch with no requirement makes the whole
  // disjunction unrestricted.
  Clause merged;
  for (const Info& i : infos) {
    std::optional<Clause> c = BestClause(RequiredOf(i));
    if (!c.has_value()) return Top();
    merged.literals.insert(merged.literals.end(), c->literals.begin(),
                           c->literals.end());
  }
  SortUnique(&merged.literals);
  if (merged.literals.empty() || merged.literals.size() > kMaxClauseLiterals)
    return Top();
  Info out;
  out.clauses.push_back(std::move(merged));
  return out;
}

Info Analyze(const RgxNode& node) {
  switch (node.kind()) {
    case RgxKind::kEpsilon:
      return MakeExact({""});
    case RgxKind::kChars: {
      const CharSet& cs = node.chars();
      if (cs.empty() || cs.size() > kMaxExactClass) return Top();
      std::vector<std::string> lits;
      for (int b = 0; b < 256; ++b)
        if (cs.Contains(static_cast<char>(b)))
          lits.emplace_back(1, static_cast<char>(b));
      return MakeExact(std::move(lits));
    }
    case RgxKind::kVar:
      // x{γ} matches exactly the words of γ; capture does not change the
      // derived string.
      return Analyze(*node.child(0));
    case RgxKind::kStar:
      return Top();  // may match ε: no requirement
    case RgxKind::kConcat:
      return AnalyzeConcat(node);
    case RgxKind::kDisj:
      return AnalyzeDisj(node);
  }
  return Top();
}

}  // namespace

Prefilter Prefilter::FromRgx(const RgxPtr& rgx) {
  if (rgx == nullptr) return Prefilter();
  std::vector<Clause> clauses = RequiredOf(Analyze(*rgx));
  // Demote clauses that cannot pay for their scan: a clause is only as
  // selective as its *shortest* literal (any member satisfies it), so when
  // that literal is under kMinLiteralLen the whole clause is dropped.
  // Never drop individual literals — a clause stripped of all its members
  // would be unsatisfiable and reject documents the formula matches.
  clauses.erase(std::remove_if(clauses.begin(), clauses.end(),
                               [](const Clause& c) {
                                 return MinLiteralLen(c) <
                                        Prefilter::kMinLiteralLen;
                               }),
                clauses.end());
  // Keep the most selective clauses (longest minimum literal first); ties
  // resolved lexicographically so the result is deterministic.
  std::sort(clauses.begin(), clauses.end(),
            [](const Clause& a, const Clause& b) {
              size_t la = MinLiteralLen(a), lb = MinLiteralLen(b);
              if (la != lb) return la > lb;
              return a.literals < b.literals;
            });
  clauses.erase(std::unique(clauses.begin(), clauses.end(),
                            [](const Clause& a, const Clause& b) {
                              return a.literals == b.literals;
                            }),
                clauses.end());
  if (clauses.size() > kMaxClauses) clauses.resize(kMaxClauses);
  return Prefilter(std::move(clauses));
}

Prefilter::Prefilter(std::vector<Clause> clauses)
    : clauses_(std::move(clauses)) {
  static_assert(kMaxClauses <= 8, "clause masks are a uint8_t");
  size_t total_literals = 0;
  for (const Clause& c : clauses_) total_literals += c.literals.size();
  if (total_literals < kAcLiteralThreshold) return;

  // Enough literals that restarting a memmem probe per literal loses to
  // one shared pass: compile every clause's literals into one automaton.
  // A literal occurring in several clauses becomes one pattern whose mask
  // carries all of them (clauses are deduplicated, but literals may still
  // repeat across distinct clauses).
  std::vector<std::string> patterns;
  std::vector<uint8_t> masks;
  for (size_t ci = 0; ci < clauses_.size(); ++ci) {
    for (const std::string& lit : clauses_[ci].literals) {
      size_t at = std::find(patterns.begin(), patterns.end(), lit) -
                  patterns.begin();
      if (at == patterns.size()) {
        patterns.push_back(lit);
        masks.push_back(0);
      }
      masks[at] |= static_cast<uint8_t>(1u << ci);
    }
  }
  ac_ = std::make_shared<const AhoCorasick>(patterns);
  ac_clause_masks_ = std::move(masks);
}

bool Prefilter::Matches(std::string_view text, CancelToken* cancel) const {
  // Clause literals are non-empty, so the empty document satisfies a
  // clause set only when there are no clauses (also keeps memchr away
  // from a null data pointer).
  if (text.empty()) return clauses_.empty();
  if (ac_ != nullptr) {
    // One left-to-right pass satisfies all clauses at once; the scan stops
    // the moment the last outstanding clause is hit.
    const uint8_t all =
        static_cast<uint8_t>((1u << clauses_.size()) - 1);
    uint8_t satisfied = 0;
    ac_->Scan(
        text,
        [&](uint32_t pattern, size_t) {
          satisfied |= ac_clause_masks_[pattern];
          return satisfied != all;
        },
        cancel);
    // A cancelled scan proved nothing: answer the conservative "cannot
    // rule it out" rather than a false rejection the caller might trust.
    if (cancel != nullptr && cancel->tripped()) return true;
    return satisfied == all;
  }
  for (const Clause& clause : clauses_) {
    if (cancel != nullptr && cancel->Poll(0)) return true;
    bool satisfied = false;
    for (const std::string& lit : clause.literals) {
      if (lit.size() == 1
              ? std::memchr(text.data(), lit[0], text.size()) != nullptr
              : text.find(lit) != std::string_view::npos) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::vector<Prefilter::Clause> Prefilter::IndexableClauses(
    size_t ngram_len) const {
  std::vector<Clause> out;
  for (const Clause& c : clauses_) {
    const bool indexable =
        std::all_of(c.literals.begin(), c.literals.end(),
                    [&](const std::string& l) { return l.size() >= ngram_len; });
    if (indexable) out.push_back(c);
  }
  return out;
}

std::string Prefilter::ToString() const {
  if (clauses_.empty()) return "match-all";
  auto quote = [](const std::string& s) {
    std::string out = "lit(\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else if (c == '\t') {
        out += "\\t";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        static const char* kHex = "0123456789abcdef";
        out += "\\x";
        out += kHex[(c >> 4) & 0xf];
        out += kHex[c & 0xf];
      } else {
        out += c;
      }
    }
    out += "\")";
    return out;
  };
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " & ";
    const Clause& c = clauses_[i];
    if (c.literals.size() == 1) {
      out += quote(c.literals[0]);
      continue;
    }
    out += '(';
    for (size_t j = 0; j < c.literals.size(); ++j) {
      if (j > 0) out += '|';
      out += quote(c.literals[j]);
    }
    out += ')';
  }
  return out;
}

}  // namespace engine
}  // namespace spanners
