#include "engine/multi_query.h"

#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/span.h"

namespace spanners {
namespace engine {

namespace {

// The fleet runs tiers 2 and 3 itself (the plans are pre-gated), so it
// records into the same tier.prefilter_ns / tier.dfa_gate_ns histograms
// and engine.* skip counters ExtractionPlan::GateRejects feeds — one
// tier breakdown regardless of which layer did the gating.
struct FleetMetrics {
  obs::Histogram* ac_scan_ns;
  obs::Histogram* prefilter_ns;
  obs::Histogram* dfa_gate_ns;
  obs::Counter* documents;
  obs::Counter* ac_gate_skipped;
  obs::Counter* prefilter_skipped;
  obs::Counter* dfa_skipped;
};

const FleetMetrics& Metrics() {
  static const FleetMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    FleetMetrics m;
    m.ac_scan_ns = r.GetHistogram("tier.ac_scan_ns");
    m.prefilter_ns = r.GetHistogram("tier.prefilter_ns");
    m.dfa_gate_ns = r.GetHistogram("tier.dfa_gate_ns");
    m.documents = r.GetCounter("engine.documents");
    m.ac_gate_skipped = r.GetCounter("engine.ac_gate_skipped");
    m.prefilter_skipped = r.GetCounter("engine.prefilter_skipped");
    m.dfa_skipped = r.GetCounter("engine.dfa_skipped");
    return m;
  }();
  return m;
}

}  // namespace

MultiQueryExtractor::MultiQueryExtractor(
    std::vector<std::shared_ptr<const ExtractionPlan>> plans,
    bool build_shared_gate)
    : plans_(std::move(plans)) {
  // The shared pass tracks ONE clause per plan — its strongest
  // (clauses()[0], longest minimum literal). Selective literals are rare
  // literals, so the combined automaton stays in its memchr-accelerated
  // root state for almost every byte; the plan's weaker clauses are
  // re-checked per surviving document by its own prefilter, where they
  // cost a memmem over the rare candidate instead of automaton states on
  // every byte of the corpus. Each distinct literal becomes one pattern
  // feeding every plan that shares it (common in a fleet of similar
  // queries).
  plan_gated_.resize(plans_.size(), 0);
  plan_has_more_clauses_.resize(plans_.size(), 0);
  if (!build_shared_gate) {
    // Gateless (degraded-memory) build: no combined automaton. Each plan
    // with a prefilter instead runs its own FULL prefilter in tier 2
    // (plan_gated_ stays 0 so tier 1's bitset is never consulted), then
    // its DFA tier — so degraded mode still skips non-matching documents
    // per plan, just without the shared pass. Results stay byte-identical.
    for (size_t p = 0; p < plans_.size(); ++p)
      plan_has_more_clauses_[p] =
          !plans_[p]->prefilter().clauses().empty();
    counters_ = std::make_unique<PlanCounters[]>(plans_.size());
    return;
  }
  std::vector<std::string> patterns;
  std::vector<std::vector<uint32_t>> plans_of_pattern;
  std::unordered_map<std::string, size_t> pattern_index;
  for (size_t p = 0; p < plans_.size(); ++p) {
    const std::vector<Prefilter::Clause>& clauses =
        plans_[p]->prefilter().clauses();
    if (clauses.empty()) continue;
    plan_gated_[p] = 1;
    plan_has_more_clauses_[p] = clauses.size() > 1;
    ++gated_plans_;
    for (const std::string& lit : clauses[0].literals) {
      auto [it, inserted] = pattern_index.emplace(lit, patterns.size());
      if (inserted) {
        patterns.push_back(lit);
        plans_of_pattern.emplace_back();
      }
      plans_of_pattern[it->second].push_back(static_cast<uint32_t>(p));
    }
  }

  gate_literals_ = patterns.size();
  if (!patterns.empty()) {
    ac_ = std::make_unique<const AhoCorasick>(patterns);
    pattern_plan_offsets_.reserve(patterns.size() + 1);
    pattern_plan_offsets_.push_back(0);
    for (const std::vector<uint32_t>& ids : plans_of_pattern) {
      pattern_plan_ids_.insert(pattern_plan_ids_.end(), ids.begin(),
                               ids.end());
      pattern_plan_offsets_.push_back(
          static_cast<uint32_t>(pattern_plan_ids_.size()));
    }
  }
  counters_ = std::make_unique<PlanCounters[]>(plans_.size());
}

MultiQueryExtractor MultiQueryExtractor::FromCache(const PlanCache& cache,
                                                   bool build_shared_gate) {
  std::vector<std::shared_ptr<const ExtractionPlan>> plans;
  for (auto& [key, plan] : cache.ResidentPlans())
    plans.push_back(std::move(plan));
  return MultiQueryExtractor(std::move(plans), build_shared_gate);
}

size_t MultiQueryExtractor::ApproxMemoryBytes() const {
  size_t bytes = 0;
  if (ac_ != nullptr) bytes += ac_->table_bytes();
  bytes += pattern_plan_offsets_.capacity() * sizeof(uint32_t);
  bytes += pattern_plan_ids_.capacity() * sizeof(uint32_t);
  bytes += plan_gated_.capacity() + plan_has_more_clauses_.capacity();
  bytes += plans_.size() * (sizeof(PlanCounters) +
                            sizeof(std::shared_ptr<const ExtractionPlan>));
  return bytes;
}

void MultiQueryExtractor::ExtractAllSortedInto(const Document& doc,
                                               PlanScratch* scratch,
                                               std::vector<Mapping>** out)
    const {
  const std::string_view text = doc.text();
  const size_t num_plans = plans_.size();
  CancelToken* cancel = scratch->cancel;
  std::vector<uint64_t>& bits = scratch->multi_clause_bits;

  // Tier 1, once per document: the combined pass over every plan's
  // strongest clause. Bit p records exactly what plan p's own prefilter
  // would compute for that clause, so gating decisions — and therefore
  // results — match the plans run alone. The scan stops early once every
  // gated plan is satisfied.
  if (gating_enabled_ && ac_ != nullptr) {
    obs::ObsSpan span(Metrics().ac_scan_ns, "ac_scan");
    bits.assign((num_plans + 63) / 64, 0);
    size_t remaining = gated_plans_;
    if (!text.empty()) {
      ac_->Scan(
          text,
          [&](uint32_t pattern, size_t) {
            for (uint32_t k = pattern_plan_offsets_[pattern];
                 k < pattern_plan_offsets_[pattern + 1]; ++k) {
              const uint32_t p = pattern_plan_ids_[k];
              uint64_t& word = bits[p >> 6];
              const uint64_t bit = uint64_t{1} << (p & 63);
              if ((word & bit) == 0) {
                word |= bit;
                if (--remaining == 0) return false;
              }
            }
            return true;
          },
          cancel);
    }
    // A trip mid-scan left the bitset partial; gating decisions derived
    // from it would be wrong. Bail — the caller discards via the token.
    if (cancel != nullptr && cancel->tripped()) return;
  }

  // The skip paths below are the fleet's hottest loop (plans × documents,
  // ~all of them skipped on a low-selectivity corpus): one relaxed
  // atomic per skipped (plan, doc) — `documents` is derived in
  // plan_stats() — and the pool recycle is elided for a slot that is
  // already the empty result (the steady state under result reuse).
  for (size_t p = 0; p < num_plans; ++p) {
    if (cancel != nullptr && cancel->tripped()) return;
    std::vector<Mapping>* slot = out[p];
    PlanCounters& counters = counters_[p];
    if (gating_enabled_) {
      if (plan_gated_[p] && (bits[p >> 6] >> (p & 63) & 1) == 0) {
        if (!slot->empty()) scratch->pool.RecycleAll(slot);
        counters.ac_gate_skipped.fetch_add(1, std::memory_order_relaxed);
        if (obs::Enabled()) {
          Metrics().documents->Add(1);
          Metrics().ac_gate_skipped->Add(1);
        }
        continue;
      }
      // Tier 2, per surviving plan: its remaining prefilter clauses
      // (memmem over the rare candidate document).
      if (plan_has_more_clauses_[p]) {
        bool pass;
        {
          obs::ObsSpan span(Metrics().prefilter_ns, "prefilter");
          pass = plans_[p]->prefilter().Matches(text, cancel);
        }
        if (!pass) {
          if (!slot->empty()) scratch->pool.RecycleAll(slot);
          counters.prefilter_skipped.fetch_add(1, std::memory_order_relaxed);
          if (obs::Enabled()) {
            Metrics().documents->Add(1);
            Metrics().prefilter_skipped->Add(1);
          }
          continue;
        }
      }
      // Tier 3: the plan's own cached lazy DFA (its negative answer is
      // sound for any VA).
      std::optional<bool> verdict;
      {
        obs::ObsSpan span(Metrics().dfa_gate_ns, "dfa_gate");
        verdict = plans_[p]->lazy_dfa().Matches(text, cancel);
      }
      if (verdict.has_value() && !*verdict) {
        if (!slot->empty()) scratch->pool.RecycleAll(slot);
        counters.dfa_skipped.fetch_add(1, std::memory_order_relaxed);
        if (obs::Enabled()) {
          Metrics().documents->Add(1);
          Metrics().dfa_skipped->Add(1);
        }
        continue;
      }
    }
    plans_[p]->ExtractSortedPregatedInto(doc, scratch, slot);
    counters.extracted.fetch_add(1, std::memory_order_relaxed);
    counters.mappings.fetch_add(slot->size(), std::memory_order_relaxed);
  }
}

PlanStats MultiQueryExtractor::plan_stats(size_t i) const {
  const PlanCounters& c = counters_[i];
  PlanStats s;
  s.mappings = c.mappings.load(std::memory_order_relaxed);
  s.ac_gate_skipped = c.ac_gate_skipped.load(std::memory_order_relaxed);
  s.prefilter_skipped = c.prefilter_skipped.load(std::memory_order_relaxed);
  s.dfa_skipped = c.dfa_skipped.load(std::memory_order_relaxed);
  s.documents = c.extracted.load(std::memory_order_relaxed) +
                s.ac_gate_skipped + s.prefilter_skipped + s.dfa_skipped;
  return s;
}

std::shared_ptr<const MultiQueryExtractor> CachedFleet::Get() {
  std::lock_guard<std::mutex> lock(mu_);
  // Read the generation before snapshotting: if a membership change lands
  // between the two, it bumps the counter past `gen` and the next Get()
  // rebuilds — stale-forever is impossible.
  const uint64_t gen = cache_.generation();
  if (fleet_ == nullptr || built_generation_ != gen) {
    auto fleet = std::make_shared<const MultiQueryExtractor>(
        MultiQueryExtractor::FromCache(cache_));
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    const size_t budget =
        memory_budget_bytes_.load(std::memory_order_relaxed);
    if (budget > 0 && fleet->ApproxMemoryBytes() > budget) {
      // Over budget: trade the shared tier-1 automaton (the only
      // non-trivial allocation) for a gateless fleet and flag degraded.
      fleet = std::make_shared<const MultiQueryExtractor>(
          MultiQueryExtractor::FromCache(cache_, /*build_shared_gate=*/false));
      rebuilds_.fetch_add(1, std::memory_order_relaxed);
      degraded_.store(true, std::memory_order_relaxed);
    } else {
      degraded_.store(false, std::memory_order_relaxed);
    }
    fleet_ = std::move(fleet);
    built_generation_ = gen;
  }
  return fleet_;
}

std::string MultiQueryExtractor::ToString() const {
  std::string out = "multi-query: " + std::to_string(plans_.size()) +
                    " plans (" + std::to_string(gated_plans_) +
                    " literal-gated, " + std::to_string(gate_literals_) +
                    " gate literals)";
  if (ac_ != nullptr) out += ", " + ac_->ToString();
  return out;
}

}  // namespace engine
}  // namespace spanners
