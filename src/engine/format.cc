#include "engine/format.h"

#include <cstdio>
#include <string_view>

namespace spanners {
namespace engine {

namespace {

void AppendTsvEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        *out += c;
    }
  }
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool ParseOutputFormat(const std::string& s, OutputFormat* out) {
  if (s == "tsv") {
    *out = OutputFormat::kTsv;
    return true;
  }
  if (s == "json") {
    *out = OutputFormat::kJson;
    return true;
  }
  return false;
}

std::string TsvHeader(const VarSet& vars) {
  std::string out = "doc";
  for (VarId x : vars) {
    const std::string& name = Variable::Name(x);
    out += "\t" + name + ".span\t" + name + ".text";
  }
  return out;
}

std::string ToTsvRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                     const Document& doc) {
  std::string out = std::to_string(doc_index);
  for (VarId x : vars) {
    out += '\t';
    std::optional<Span> s = m.Get(x);
    if (!s.has_value()) {
      out += "⊥\t";  // ⊥: the variable is unassigned in this mapping
      continue;
    }
    out += std::to_string(s->begin) + ".." + std::to_string(s->end);
    out += '\t';
    AppendTsvEscaped(doc.content(*s), &out);
  }
  return out;
}

std::string ToJsonRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc) {
  std::string out = "{\"doc\":" + std::to_string(doc_index);
  for (VarId x : vars) {
    out += ",\"";
    AppendJsonEscaped(Variable::Name(x), &out);
    out += "\":";
    std::optional<Span> s = m.Get(x);
    if (!s.has_value()) {
      out += "null";
      continue;
    }
    out += "{\"span\":[" + std::to_string(s->begin) + "," +
           std::to_string(s->end) + "],\"text\":\"";
    AppendJsonEscaped(doc.content(*s), &out);
    out += "\"}";
  }
  out += "}";
  return out;
}

}  // namespace engine
}  // namespace spanners
