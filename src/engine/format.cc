#include "engine/format.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>

namespace spanners {
namespace engine {

namespace {

void AppendTsvEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        *out += c;
    }
  }
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool ParseOutputFormat(const std::string& s, OutputFormat* out) {
  if (s == "tsv") {
    *out = OutputFormat::kTsv;
    return true;
  }
  if (s == "json") {
    *out = OutputFormat::kJson;
    return true;
  }
  return false;
}

std::string TsvHeader(const VarSet& vars) {
  std::string out = "doc";
  for (VarId x : vars) {
    const std::string& name = Variable::Name(x);
    out += "\t" + name + ".span\t" + name + ".text";
  }
  return out;
}

std::string ToTsvRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                     const Document& doc) {
  std::string out = std::to_string(doc_index);
  for (VarId x : vars) {
    out += '\t';
    std::optional<Span> s = m.Get(x);
    if (!s.has_value()) {
      out += "⊥\t";  // ⊥: the variable is unassigned in this mapping
      continue;
    }
    out += std::to_string(s->begin) + ".." + std::to_string(s->end);
    out += '\t';
    AppendTsvEscaped(doc.content(*s), &out);
  }
  return out;
}

std::string ToJsonRow(size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc) {
  std::string out = "{\"doc\":" + std::to_string(doc_index);
  for (VarId x : vars) {
    out += ",\"";
    AppendJsonEscaped(Variable::Name(x), &out);
    out += "\":";
    std::optional<Span> s = m.Get(x);
    if (!s.has_value()) {
      out += "null";
      continue;
    }
    out += "{\"span\":[" + std::to_string(s->begin) + "," +
           std::to_string(s->end) + "],\"text\":\"";
    AppendJsonEscaped(doc.content(*s), &out);
    out += "\"}";
  }
  out += "}";
  return out;
}

std::string FleetTsvHeader(const std::vector<const VarSet*>& vars_per_plan) {
  std::string out;
  for (size_t p = 0; p < vars_per_plan.size(); ++p) {
    out += "# q" + std::to_string(p) + ": query\t" +
           TsvHeader(*vars_per_plan[p]);
    out += '\n';
  }
  return out;
}

void AppendMappingRow(std::string* out, OutputFormat format,
                      size_t doc_index, const Mapping& m, const VarSet& vars,
                      const Document& doc) {
  *out += format == OutputFormat::kTsv ? ToTsvRow(doc_index, m, vars, doc)
                                       : ToJsonRow(doc_index, m, vars, doc);
  *out += '\n';
}

void AppendFleetMappingRow(std::string* out, OutputFormat format,
                           size_t plan_index, size_t doc_index,
                           const Mapping& m, const VarSet& vars,
                           const Document& doc) {
  if (format == OutputFormat::kTsv) {
    *out += std::to_string(plan_index);
    *out += '\t';
    *out += ToTsvRow(doc_index, m, vars, doc);
  } else {
    // {"doc":…} → {"query":p,"doc":…}
    std::string row = ToJsonRow(doc_index, m, vars, doc);
    *out += "{\"query\":" + std::to_string(plan_index) + ",";
    out->append(row, 1, row.size() - 1);
  }
  *out += '\n';
}

bool CheckedWriter::Write(std::string_view s) {
  if (error_ != 0) return false;
  if (s.empty()) return true;
  if (std::fwrite(s.data(), 1, s.size(), stream_) != s.size()) {
    error_ = errno != 0 ? errno : EIO;
    return false;
  }
  return true;
}

bool CheckedWriter::Flush() {
  if (error_ != 0) return false;
  if (std::fflush(stream_) != 0) {
    error_ = errno != 0 ? errno : EIO;
    return false;
  }
  return true;
}

std::string CheckedWriter::ErrorMessage() const {
  if (error_ == 0) return "";
  return std::string("write error: ") + std::strerror(error_);
}

}  // namespace engine
}  // namespace spanners
