// Literal prefiltering for batch extraction: a one-time analysis of an RGX
// formula that yields substring requirements every matching document must
// satisfy. Because RGX semantics match the whole document, any word of
// L(γ) derived by the formula is the document itself — so a literal that
// occurs in every word of L(γ) must occur in every document with
// ⟦γ⟧_doc ≠ ∅. The engine scans for those literals (memchr / memmem)
// before touching any automaton and skips non-matching documents
// entirely, which is where low-selectivity corpora spend their time.
//
// The requirement is a conjunction of clauses; each clause is a
// disjunction of literals ("the document contains 'Seller: '" ∧ "the
// document contains 'GET' or 'POST'"). Prefilter::Matches == false proves
// ⟦γ⟧_doc = ∅; true means "cannot rule the document out".
#ifndef SPANNERS_ENGINE_PREFILTER_H_
#define SPANNERS_ENGINE_PREFILTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "rgx/ast.h"

namespace spanners {
namespace engine {

class Prefilter {
 public:
  /// One any-of requirement: a matching document contains at least one of
  /// these literals. Literals are non-empty and deduplicated.
  struct Clause {
    std::vector<std::string> literals;
  };

  /// Derives the strongest (bounded-size) requirement from `rgx`;
  /// a null formula or one with no extractable literals yields the
  /// match-all prefilter (CanPrune() == false).
  static Prefilter FromRgx(const RgxPtr& rgx);

  /// The match-all prefilter.
  Prefilter() = default;

  /// Whether this prefilter can reject any document at all.
  bool CanPrune() const { return !clauses_.empty(); }

  /// False proves the document cannot match (some clause has none of its
  /// literals in `text`); true is inconclusive.
  bool Matches(std::string_view text) const;

  const std::vector<Clause>& clauses() const { return clauses_; }

  /// e.g. `lit("Seller: ") & (lit("GET")|lit("POST"))`, or "match-all".
  std::string ToString() const;

 private:
  explicit Prefilter(std::vector<Clause> clauses)
      : clauses_(std::move(clauses)) {}

  std::vector<Clause> clauses_;  // conjunction; empty = match-all
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_PREFILTER_H_
