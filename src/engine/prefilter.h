// Literal prefiltering for batch extraction: a one-time analysis of an RGX
// formula that yields substring requirements every matching document must
// satisfy. Because RGX semantics match the whole document, any word of
// L(γ) derived by the formula is the document itself — so a literal that
// occurs in every word of L(γ) must occur in every document with
// ⟦γ⟧_doc ≠ ∅. The engine scans for those literals (memchr / memmem)
// before touching any automaton and skips non-matching documents
// entirely, which is where low-selectivity corpora spend their time.
//
// The requirement is a conjunction of clauses; each clause is a
// disjunction of literals ("the document contains 'Seller: '" ∧ "the
// document contains 'GET' or 'POST'"). Prefilter::Matches == false proves
// ⟦γ⟧_doc = ∅; true means "cannot rule the document out".
//
// Evaluation picks between two engines: a handful of literals stay on
// memchr/memmem probes (SIMD-accelerated in libc, unbeatable for one or
// two needles), while kAcLiteralThreshold or more literals compile into a
// single Aho–Corasick automaton so one left-to-right pass over the
// document satisfies every clause at once instead of restarting a memmem
// scan per literal.
#ifndef SPANNERS_ENGINE_PREFILTER_H_
#define SPANNERS_ENGINE_PREFILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/aho_corasick.h"
#include "common/cancel.h"
#include "rgx/ast.h"

namespace spanners {
namespace engine {

class Prefilter {
 public:
  /// One any-of requirement: a matching document contains at least one of
  /// these literals. Literals are non-empty and deduplicated.
  struct Clause {
    std::vector<std::string> literals;
  };

  /// Clauses whose shortest literal is below this many bytes are dropped
  /// whole (demoted to "no requirement"): a 1–2 byte probe matches almost
  /// any realistic document, so the scan costs more than the pruning it
  /// buys. Dropping a whole conjunct is sound (the filter only gets
  /// weaker); dropping individual short literals out of a clause would
  /// not be — in the extreme it leaves an empty, always-unsatisfiable
  /// clause that wrongly rejects every document.
  static constexpr size_t kMinLiteralLen = 3;

  /// From this many literals across all clauses upward, Matches runs one
  /// combined Aho–Corasick pass instead of per-literal memmem probes.
  static constexpr size_t kAcLiteralThreshold = 4;

  /// Derives the strongest (bounded-size) requirement from `rgx`;
  /// a null formula or one with no extractable literals yields the
  /// match-all prefilter (CanPrune() == false).
  static Prefilter FromRgx(const RgxPtr& rgx);

  /// The match-all prefilter.
  Prefilter() = default;

  /// Whether this prefilter can reject any document at all.
  bool CanPrune() const { return !clauses_.empty(); }

  /// False proves the document cannot match (some clause has none of its
  /// literals in `text`); true is inconclusive.
  /// A tripped `cancel` token also yields true — "cannot rule it out" is
  /// the conservative answer, and the caller aborts before acting on it.
  bool Matches(std::string_view text, CancelToken* cancel = nullptr) const;

  /// The clause conjunction, ordered most selective first (longest
  /// minimum literal; deterministic tie-break). Outer gating tiers rely
  /// on clauses()[0] being the strongest single requirement — the
  /// multi-query extractor gates every plan on exactly that clause in one
  /// shared scan.
  const std::vector<Clause>& clauses() const { return clauses_; }

  /// The clauses an n-gram posting index can answer: those whose EVERY
  /// literal is at least `ngram_len` bytes (a clause is a disjunction, so
  /// one unindexable literal makes the whole clause unanswerable — the
  /// index cannot enumerate documents containing a too-short literal).
  /// Each returned clause compiles to posting-list work — per literal the
  /// intersection of its n-grams' postings, unioned across the clause's
  /// literals — and the conjunction of clauses to an intersection of
  /// those sets (storage::NgramIndex::Candidates). The result is a sound
  /// overapproximation: candidates ⊇ matching documents, because a kept
  /// clause is a requirement every matching document satisfies. Empty
  /// means the index cannot narrow this plan at all (scan everything).
  std::vector<Clause> IndexableClauses(size_t ngram_len) const;

  /// Whether clause evaluation runs the single-pass Aho–Corasick engine
  /// (kAcLiteralThreshold or more literals) instead of memmem probes.
  bool uses_aho_corasick() const { return ac_ != nullptr; }
  /// The combined automaton, or nullptr on the memmem path.
  const AhoCorasick* aho_corasick() const { return ac_.get(); }

  /// e.g. `lit("Seller: ") & (lit("GET")|lit("POST"))`, or "match-all".
  std::string ToString() const;

 private:
  explicit Prefilter(std::vector<Clause> clauses);

  std::vector<Clause> clauses_;  // conjunction; empty = match-all
  // Single-pass clause engine: one automaton over every clause's
  // literals; ac_clause_masks_[pattern id] = bitmask of the clauses that
  // pattern satisfies (clauses_.size() ≤ kMaxClauses = 4 bits). Shared so
  // Prefilter stays copyable; the automaton itself is immutable.
  std::shared_ptr<const AhoCorasick> ac_;
  std::vector<uint8_t> ac_clause_masks_;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_PREFILTER_H_
