#include "engine/plan.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>

#include "automata/fpt.h"
#include "automata/matcher.h"
#include "obs/span.h"
#include "rgx/analysis.h"
#include "rules/convert.h"

namespace spanners {
namespace engine {

namespace {

/// Registry handles of the engine's per-tier metrics, resolved once.
/// Histogram counts double as per-tier document counts: every document
/// that ENTERS a tier records one observation in that tier's histogram,
/// and the engine.* counters record where documents LANDED.
struct EngineMetrics {
  obs::Histogram* prefilter_ns;
  obs::Histogram* dfa_gate_ns;
  obs::Histogram* nfa_sim_ns;
  obs::Histogram* eval_ns[3];  // indexed by Spanner::Evaluator
  obs::Counter* documents;
  obs::Counter* mappings;
  obs::Counter* prefilter_skipped;
  obs::Counter* dfa_skipped;
  obs::Counter* evaluated;
};

const EngineMetrics& Metrics() {
  static const EngineMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    EngineMetrics m;
    m.prefilter_ns = r.GetHistogram("tier.prefilter_ns");
    m.dfa_gate_ns = r.GetHistogram("tier.dfa_gate_ns");
    m.nfa_sim_ns = r.GetHistogram("tier.nfa_sim_ns");
    m.eval_ns[0] = r.GetHistogram("tier.eval_run_enum_ns");
    m.eval_ns[1] = r.GetHistogram("tier.eval_sequential_ns");
    m.eval_ns[2] = r.GetHistogram("tier.eval_fpt_ns");
    m.documents = r.GetCounter("engine.documents");
    m.mappings = r.GetCounter("engine.mappings");
    m.prefilter_skipped = r.GetCounter("engine.prefilter_skipped");
    m.dfa_skipped = r.GetCounter("engine.dfa_skipped");
    m.evaluated = r.GetCounter("engine.evaluated");
    return m;
  }();
  return m;
}

// Static trace labels per evaluator family (trace events keep pointers).
constexpr const char* kEvalSpanName[3] = {"eval.run_enum", "eval.sequential",
                                          "eval.fpt"};

std::string Percent(uint64_t part, uint64_t whole) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                whole == 0 ? 0.0 : 100.0 * double(part) / double(whole));
  return buf;
}

}  // namespace

PlanStats& PlanStats::operator+=(const PlanStats& o) {
  documents += o.documents;
  mappings += o.mappings;
  prefilter_skipped += o.prefilter_skipped;
  dfa_skipped += o.dfa_skipped;
  ac_gate_skipped += o.ac_gate_skipped;
  return *this;
}

std::string PlanStats::ToString() const {
  const uint64_t skipped =
      ac_gate_skipped + prefilter_skipped + dfa_skipped;
  std::string out = std::to_string(documents) + " docs: " +
                    std::to_string(skipped) + " skipped (" +
                    Percent(skipped, documents) + " — " +
                    std::to_string(ac_gate_skipped) + " ac, " +
                    std::to_string(prefilter_skipped) + " prefilter, " +
                    std::to_string(dfa_skipped) + " dfa), " +
                    std::to_string(evaluated()) + " evaluated (" +
                    Percent(evaluated(), documents) + "), " +
                    std::to_string(mappings) + " mappings";
  return out;
}

std::string PlanInfo::ToString() const {
  std::string out;
  out += sequential_va ? "sequential" : "non-sequential";
  if (functional_rgx) out += ", functional";
  if (span_rgx) out += ", spanRGX";
  out += "; " + std::to_string(num_vars) + " vars, " +
         std::to_string(num_states) + " states; ";
  out += std::string(EvaluatorToString(evaluator));
  if (!prefilter.empty()) out += "; prefilter " + prefilter;
  if (dfa_atoms > 0)
    out += "; lazy-dfa " + std::to_string(dfa_atoms) + " atoms";
  return out;
}

ExtractionPlan::ExtractionPlan(Spanner spanner, std::string pattern)
    : spanner_(std::move(spanner)),
      pattern_(std::move(pattern)),
      prefilter_(Prefilter::FromRgx(spanner_.rgx())),
      dfa_(std::make_unique<LazyDfa>(spanner_.va())),
      counters_(std::make_unique<Counters>()) {
  info_.sequential_va = spanner_.is_sequential();
  if (spanner_.rgx() != nullptr) {
    info_.functional_rgx = IsFunctional(spanner_.rgx());
    info_.span_rgx = IsSpanRgx(spanner_.rgx());
  }
  info_.num_vars = spanner_.vars().size();
  info_.num_states = spanner_.va().NumStates();
  info_.num_transitions = spanner_.va().NumTransitions();
  info_.evaluator = spanner_.RecommendedEvaluator();
  if (prefilter_.CanPrune()) {
    info_.prefilter = prefilter_.ToString();
    // Many-literal requirements evaluate as one automaton pass, not
    // per-literal memmem probes; worth surfacing in --stats.
    if (prefilter_.uses_aho_corasick()) info_.prefilter += " [aho-corasick]";
  }
  info_.dfa_atoms = dfa_->num_atoms();
}

Result<ExtractionPlan> ExtractionPlan::Compile(std::string_view pattern) {
  SPANNERS_ASSIGN_OR_RETURN(Spanner s, Spanner::FromPattern(pattern));
  return ExtractionPlan(std::move(s), std::string(pattern));
}

ExtractionPlan ExtractionPlan::FromSpanner(Spanner spanner,
                                           std::string pattern) {
  if (pattern.empty()) pattern = spanner.pattern();
  return ExtractionPlan(std::move(spanner), std::move(pattern));
}

Result<ExtractionPlan> ExtractionPlan::FromRuleProgram(
    const std::vector<ExtractionRule>& rules, std::string key) {
  if (rules.empty())
    return Status::InvalidArgument("empty rule program");
  // Lemma B.1 rule-by-rule, then one disjunction for the §4.3 union
  // semantics — the program compiles like any other formula from here on.
  std::vector<RgxPtr> members;
  members.reserve(rules.size());
  for (const ExtractionRule& rule : rules) {
    SPANNERS_ASSIGN_OR_RETURN(RgxPtr rgx, TreeRuleToRgx(rule));
    members.push_back(std::move(rgx));
  }
  return ExtractionPlan(Spanner::FromRgx(RgxNode::Disj(std::move(members))),
                        std::move(key));
}

bool ExtractionPlan::GateRejects(const Document& doc,
                                 CancelToken* cancel) const {
  if (!gating_enabled_) return false;
  if (prefilter_.CanPrune()) {
    bool pass;
    {
      obs::ObsSpan span(Metrics().prefilter_ns, "prefilter");
      pass = prefilter_.Matches(doc.text(), cancel);
    }
    if (!pass) {
      counters_->prefilter_skipped.Add(1);
      if (obs::Enabled()) Metrics().prefilter_skipped->Add(1);
      return true;
    }
  }
  // The lazy DFA over-approximates ⟦A⟧ for any VA (ops relaxed to ε), so
  // its negative answer is always authoritative; nullopt = cache overflow
  // (or a tripped token), decide by the full evaluator instead — which
  // aborts immediately when the token tripped.
  std::optional<bool> verdict;
  {
    obs::ObsSpan span(Metrics().dfa_gate_ns, "dfa_gate");
    verdict = dfa_->Matches(doc.text(), cancel);
  }
  if (verdict.has_value() && !*verdict) {
    counters_->dfa_skipped.Add(1);
    if (obs::Enabled()) Metrics().dfa_skipped->Add(1);
    return true;
  }
  return false;
}

bool ExtractionPlan::Matches(const Document& doc, PlanScratch* scratch) const {
  CancelToken* cancel = scratch != nullptr ? scratch->cancel : nullptr;
  if (prefilter_.CanPrune()) {
    obs::ObsSpan span(Metrics().prefilter_ns, "prefilter");
    if (!prefilter_.Matches(doc.text(), cancel)) return false;
  }
  std::optional<bool> verdict;
  {
    obs::ObsSpan span(Metrics().dfa_gate_ns, "dfa_gate");
    verdict = dfa_->Matches(doc.text(), cancel);
  }
  if (verdict.has_value()) {
    if (!*verdict) return false;
    // Positive answers are only exact when op-consistency is structural.
    if (info_.sequential_va) return true;
  }
  // Fall back to NFA state-set simulation, on the caller's arena when
  // one is provided. A tripped token aborts the simulation; the answer is
  // then meaningless and the caller reads the token, not the bool.
  obs::ObsSpan span(Metrics().nfa_sim_ns, "nfa_sim");
  Arena* arena = scratch != nullptr ? &scratch->arena : nullptr;
  return info_.sequential_va
             ? MatchesSequential(spanner_.va(), doc, arena, cancel)
             : EvalVa(spanner_.va(), doc, ExtendedMapping(), arena, cancel);
}

MappingSet ExtractionPlan::Extract(const Document& doc) const {
  if (GateRejects(doc, nullptr)) {
    counters_->documents.Add(1);
    if (obs::Enabled()) Metrics().documents->Add(1);
    return MappingSet();
  }
  MappingSet out;
  {
    obs::ObsSpan span(Metrics().eval_ns[size_t(info_.evaluator)],
                      kEvalSpanName[size_t(info_.evaluator)]);
    out = spanner_.ExtractAllWith(info_.evaluator, doc);
  }
  counters_->documents.Add(1);
  counters_->mappings.Add(out.size());
  if (obs::Enabled()) {
    Metrics().documents->Add(1);
    Metrics().evaluated->Add(1);
    Metrics().mappings->Add(out.size());
  }
  return out;
}

const std::vector<Mapping>& ExtractionPlan::ExtractSorted(
    const Document& doc, PlanScratch* scratch) const {
  ExtractSortedInto(doc, scratch, &scratch->sorted);
  return scratch->sorted;
}

void ExtractionPlan::ExtractSortedInto(const Document& doc,
                                       PlanScratch* scratch,
                                       std::vector<Mapping>* out) const {
  scratch->pool.RecycleAll(out);  // previous results refill the pool
  if (GateRejects(doc, scratch->cancel)) {
    counters_->documents.Add(1);
    if (obs::Enabled()) Metrics().documents->Add(1);
    return;  // *out is already the (empty) result
  }
  {
    obs::ObsSpan span(Metrics().eval_ns[size_t(info_.evaluator)],
                      kEvalSpanName[size_t(info_.evaluator)]);
    VectorSink sink(out, &scratch->pool);
    spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, sink,
                       scratch->cancel);
    std::sort(out->begin(), out->end());
  }
  counters_->documents.Add(1);
  counters_->mappings.Add(out->size());
  if (obs::Enabled()) {
    Metrics().documents->Add(1);
    Metrics().evaluated->Add(1);
    Metrics().mappings->Add(out->size());
  }
}

void ExtractionPlan::ExtractSortedPregatedInto(const Document& doc,
                                               PlanScratch* scratch,
                                               std::vector<Mapping>* out) const {
  scratch->pool.RecycleAll(out);
  {
    obs::ObsSpan span(Metrics().eval_ns[size_t(info_.evaluator)],
                      kEvalSpanName[size_t(info_.evaluator)]);
    VectorSink sink(out, &scratch->pool);
    spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, sink,
                       scratch->cancel);
    std::sort(out->begin(), out->end());
  }
  counters_->documents.Add(1);
  counters_->mappings.Add(out->size());
  if (obs::Enabled()) {
    Metrics().documents->Add(1);
    Metrics().evaluated->Add(1);
    Metrics().mappings->Add(out->size());
  }
}

void ExtractionPlan::ExtractTo(const Document& doc, PlanScratch* scratch,
                               MappingSink& sink) const {
  if (GateRejects(doc, scratch->cancel)) {
    counters_->documents.Add(1);
    if (obs::Enabled()) Metrics().documents->Add(1);
    return;
  }
  CountingSink counting(sink);
  {
    obs::ObsSpan span(Metrics().eval_ns[size_t(info_.evaluator)],
                      kEvalSpanName[size_t(info_.evaluator)]);
    spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, counting,
                       scratch->cancel);
  }
  counters_->documents.Add(1);
  counters_->mappings.Add(counting.count());
  if (obs::Enabled()) {
    Metrics().documents->Add(1);
    Metrics().evaluated->Add(1);
    Metrics().mappings->Add(counting.count());
  }
}

PlanStats ExtractionPlan::stats() const {
  PlanStats s;
  s.documents = counters_->documents.Load();
  s.mappings = counters_->mappings.Load();
  s.prefilter_skipped = counters_->prefilter_skipped.Load();
  s.dfa_skipped = counters_->dfa_skipped.Load();
  return s;
}

}  // namespace engine
}  // namespace spanners
