#include "engine/plan.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "automata/fpt.h"
#include "automata/matcher.h"
#include "rgx/analysis.h"
#include "rules/convert.h"

namespace spanners {
namespace engine {

std::string PlanStats::ToString() const {
  return std::to_string(documents) + " docs, " + std::to_string(mappings) +
         " mappings; skipped " + std::to_string(ac_gate_skipped) + " ac, " +
         std::to_string(prefilter_skipped) + " prefilter, " +
         std::to_string(dfa_skipped) + " dfa";
}

std::string PlanInfo::ToString() const {
  std::string out;
  out += sequential_va ? "sequential" : "non-sequential";
  if (functional_rgx) out += ", functional";
  if (span_rgx) out += ", spanRGX";
  out += "; " + std::to_string(num_vars) + " vars, " +
         std::to_string(num_states) + " states; ";
  out += std::string(EvaluatorToString(evaluator));
  if (!prefilter.empty()) out += "; prefilter " + prefilter;
  if (dfa_atoms > 0)
    out += "; lazy-dfa " + std::to_string(dfa_atoms) + " atoms";
  return out;
}

ExtractionPlan::ExtractionPlan(Spanner spanner, std::string pattern)
    : spanner_(std::move(spanner)),
      pattern_(std::move(pattern)),
      prefilter_(Prefilter::FromRgx(spanner_.rgx())),
      dfa_(std::make_unique<LazyDfa>(spanner_.va())),
      counters_(std::make_unique<Counters>()) {
  info_.sequential_va = spanner_.is_sequential();
  if (spanner_.rgx() != nullptr) {
    info_.functional_rgx = IsFunctional(spanner_.rgx());
    info_.span_rgx = IsSpanRgx(spanner_.rgx());
  }
  info_.num_vars = spanner_.vars().size();
  info_.num_states = spanner_.va().NumStates();
  info_.num_transitions = spanner_.va().NumTransitions();
  info_.evaluator = spanner_.RecommendedEvaluator();
  if (prefilter_.CanPrune()) {
    info_.prefilter = prefilter_.ToString();
    // Many-literal requirements evaluate as one automaton pass, not
    // per-literal memmem probes; worth surfacing in --stats.
    if (prefilter_.uses_aho_corasick()) info_.prefilter += " [aho-corasick]";
  }
  info_.dfa_atoms = dfa_->num_atoms();
}

Result<ExtractionPlan> ExtractionPlan::Compile(std::string_view pattern) {
  SPANNERS_ASSIGN_OR_RETURN(Spanner s, Spanner::FromPattern(pattern));
  return ExtractionPlan(std::move(s), std::string(pattern));
}

ExtractionPlan ExtractionPlan::FromSpanner(Spanner spanner,
                                           std::string pattern) {
  if (pattern.empty()) pattern = spanner.pattern();
  return ExtractionPlan(std::move(spanner), std::move(pattern));
}

Result<ExtractionPlan> ExtractionPlan::FromRuleProgram(
    const std::vector<ExtractionRule>& rules, std::string key) {
  if (rules.empty())
    return Status::InvalidArgument("empty rule program");
  // Lemma B.1 rule-by-rule, then one disjunction for the §4.3 union
  // semantics — the program compiles like any other formula from here on.
  std::vector<RgxPtr> members;
  members.reserve(rules.size());
  for (const ExtractionRule& rule : rules) {
    SPANNERS_ASSIGN_OR_RETURN(RgxPtr rgx, TreeRuleToRgx(rule));
    members.push_back(std::move(rgx));
  }
  return ExtractionPlan(Spanner::FromRgx(RgxNode::Disj(std::move(members))),
                        std::move(key));
}

bool ExtractionPlan::GateRejects(const Document& doc) const {
  if (!gating_enabled_) return false;
  if (prefilter_.CanPrune() && !prefilter_.Matches(doc.text())) {
    counters_->prefilter_skipped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // The lazy DFA over-approximates ⟦A⟧ for any VA (ops relaxed to ε), so
  // its negative answer is always authoritative; nullopt = cache overflow,
  // decide by the full evaluator instead.
  std::optional<bool> verdict = dfa_->Matches(doc.text());
  if (verdict.has_value() && !*verdict) {
    counters_->dfa_skipped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ExtractionPlan::Matches(const Document& doc, PlanScratch* scratch) const {
  if (prefilter_.CanPrune() && !prefilter_.Matches(doc.text())) return false;
  std::optional<bool> verdict = dfa_->Matches(doc.text());
  if (verdict.has_value()) {
    if (!*verdict) return false;
    // Positive answers are only exact when op-consistency is structural.
    if (info_.sequential_va) return true;
  }
  // Fall back to NFA state-set simulation, on the caller's arena when
  // one is provided.
  Arena* arena = scratch != nullptr ? &scratch->arena : nullptr;
  return info_.sequential_va
             ? MatchesSequential(spanner_.va(), doc, arena)
             : EvalVa(spanner_.va(), doc, ExtendedMapping(), arena);
}

MappingSet ExtractionPlan::Extract(const Document& doc) const {
  if (GateRejects(doc)) {
    counters_->documents.fetch_add(1, std::memory_order_relaxed);
    return MappingSet();
  }
  MappingSet out = spanner_.ExtractAllWith(info_.evaluator, doc);
  counters_->documents.fetch_add(1, std::memory_order_relaxed);
  counters_->mappings.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

const std::vector<Mapping>& ExtractionPlan::ExtractSorted(
    const Document& doc, PlanScratch* scratch) const {
  ExtractSortedInto(doc, scratch, &scratch->sorted);
  return scratch->sorted;
}

void ExtractionPlan::ExtractSortedInto(const Document& doc,
                                       PlanScratch* scratch,
                                       std::vector<Mapping>* out) const {
  scratch->pool.RecycleAll(out);  // previous results refill the pool
  if (GateRejects(doc)) {
    counters_->documents.fetch_add(1, std::memory_order_relaxed);
    return;  // *out is already the (empty) result
  }
  VectorSink sink(out, &scratch->pool);
  spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, sink);
  std::sort(out->begin(), out->end());
  counters_->documents.fetch_add(1, std::memory_order_relaxed);
  counters_->mappings.fetch_add(out->size(), std::memory_order_relaxed);
}

void ExtractionPlan::ExtractSortedPregatedInto(const Document& doc,
                                               PlanScratch* scratch,
                                               std::vector<Mapping>* out) const {
  scratch->pool.RecycleAll(out);
  VectorSink sink(out, &scratch->pool);
  spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, sink);
  std::sort(out->begin(), out->end());
  counters_->documents.fetch_add(1, std::memory_order_relaxed);
  counters_->mappings.fetch_add(out->size(), std::memory_order_relaxed);
}

void ExtractionPlan::ExtractTo(const Document& doc, PlanScratch* scratch,
                               MappingSink& sink) const {
  if (GateRejects(doc)) {
    counters_->documents.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CountingSink counting(sink);
  spanner_.ExtractTo(info_.evaluator, doc, &scratch->arena, counting);
  counters_->documents.fetch_add(1, std::memory_order_relaxed);
  counters_->mappings.fetch_add(counting.count(), std::memory_order_relaxed);
}

PlanStats ExtractionPlan::stats() const {
  PlanStats s;
  s.documents = counters_->documents.load(std::memory_order_relaxed);
  s.mappings = counters_->mappings.load(std::memory_order_relaxed);
  s.prefilter_skipped =
      counters_->prefilter_skipped.load(std::memory_order_relaxed);
  s.dfa_skipped = counters_->dfa_skipped.load(std::memory_order_relaxed);
  return s;
}

}  // namespace engine
}  // namespace spanners
