// ExtractionPlan: a Spanner plus everything the engine wants decided once
// per pattern instead of once per document — fragment analysis (functional
// / sequential / spanRGX, via rgx/analysis.h), evaluator selection between
// run enumeration, the Theorem 5.7 sequential path and the Theorem 5.10
// FPT path, and per-call scratch reuse. A compiled plan is immutable and
// safe to share across threads; mutable scratch lives in a caller-owned
// PlanScratch (one per worker thread).
#ifndef SPANNERS_ENGINE_PLAN_H_
#define SPANNERS_ENGINE_PLAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/lazy_dfa.h"
#include "common/arena.h"
#include "common/cancel.h"
#include "common/status.h"
#include "core/document.h"
#include "core/mapping.h"
#include "core/mapping_sink.h"
#include "core/spanner.h"
#include "engine/prefilter.h"
#include "obs/metrics.h"
#include "rules/rule.h"

namespace spanners {
namespace engine {

/// One-time structural analysis of a compiled pattern.
struct PlanInfo {
  bool sequential_va = false;   // §5.2 PTIME machinery applies
  bool functional_rgx = false;  // [Fagin et al.] fragment (total mappings)
  bool span_rgx = false;        // §3.3 fragment: vars wrap Σ* only
  size_t num_vars = 0;
  size_t num_states = 0;
  size_t num_transitions = 0;
  Spanner::Evaluator evaluator = Spanner::Evaluator::kRunEnumeration;
  /// Literal requirement gating this plan ("" when it cannot prune).
  std::string prefilter;
  /// Alphabet atoms of the lazy-DFA membership gate (0 = no gate built).
  size_t dfa_atoms = 0;

  /// e.g. "sequential, functional; 2 vars, 14 states; run-enumeration;
  /// prefilter lit("Seller: "); lazy-dfa 7 atoms".
  std::string ToString() const;
};

/// Reusable per-thread scratch for Extract calls: arenas, the sorting
/// buffer and the pooled result storage survive across documents (the
/// arenas are Reset(), not freed, between them), so steady-state
/// extraction does not touch malloc.
struct PlanScratch {
  std::vector<Mapping> sorted;
  /// Evaluator scratch; Reset() by the leaf evaluators per extraction.
  Arena arena;
  /// Relational-operator scratch (join tables, dedup sets) for compiled
  /// queries; Reset() once per document by query::CompiledQuery, never by
  /// the leaf evaluators — build-side state survives leaf extractions.
  Arena query_arena;
  /// Recycled result-Mapping entry vectors; refilled from consumed output.
  MappingPool pool;
  /// Satisfied-clause bitset of the multi-query shared Aho–Corasick pass
  /// (engine::MultiQueryExtractor); sized on first use, reused across
  /// documents.
  std::vector<uint64_t> multi_clause_bits;
  /// Cancellation/budget token governing every extraction run through
  /// this scratch; not owned, may be null (never cancels). Once it trips,
  /// extraction results obtained through this scratch are meaningless —
  /// callers check the token, convert with CancelToken::ToStatus(), and
  /// discard partial output.
  CancelToken* cancel = nullptr;
};

/// Monotonic extraction counters; safe under concurrent Extract calls.
/// Also the per-plan stats unit of multi-query runs (MultiQueryExtractor
/// aggregates one PlanStats per resident plan).
///
/// Counter semantics. `documents` counts every document OFFERED to the
/// plan (skipped or not); each offered document lands in exactly one of
/// the four disjoint outcomes {ac_gate_skipped, prefilter_skipped,
/// dfa_skipped, evaluated()}, so
///     documents == ac_gate_skipped + prefilter_skipped + dfa_skipped
///                  + evaluated().
/// The skip counters record which tier REJECTED the document (cheapest
/// tier first — a document the AC pass rejects is never offered to the
/// prefilter, and so on); `mappings` accumulates only over evaluated
/// documents. With gating disabled every document is evaluated.
struct PlanStats {
  uint64_t documents = 0;
  uint64_t mappings = 0;
  /// Documents rejected by the literal prefilter (no automaton touched).
  uint64_t prefilter_skipped = 0;
  /// Documents rejected by the lazy-DFA membership gate.
  uint64_t dfa_skipped = 0;
  /// Documents rejected for this plan by the *shared* multi-query
  /// Aho–Corasick pass (one corpus scan gating every resident plan).
  /// Only MultiQueryExtractor bumps this; a plan run alone counts its
  /// literal rejections under prefilter_skipped.
  uint64_t ac_gate_skipped = 0;

  /// Documents that survived every gate and reached an evaluator
  /// (derived: documents minus the three tier-skip counters).
  uint64_t evaluated() const {
    const uint64_t skipped =
        ac_gate_skipped + prefilter_skipped + dfa_skipped;
    return documents >= skipped ? documents - skipped : 0;
  }

  /// Element-wise accumulation (fleet-level aggregation over plans).
  PlanStats& operator+=(const PlanStats& o);

  /// Derived view with tier-skip percentages, e.g. "1000 docs: 950
  /// skipped (95.0% — 900 ac, 30 prefilter, 20 dfa), 50 evaluated
  /// (5.0%), 37 mappings".
  std::string ToString() const;
};

/// The engine's unit of per-document work: anything that can produce the
/// deterministically sorted mapping set of one document. Implemented by
/// ExtractionPlan (one compiled pattern) and query::CompiledQuery (a whole
/// algebra expression); BatchExtractor parallelizes over this interface,
/// so every representation shares the same corpus machinery.
class DocumentExtractor {
 public:
  virtual ~DocumentExtractor() = default;

  /// The output variables (the column set of formatted rows).
  virtual const VarSet& vars() const = 0;

  /// Fills *out (cleared first) with the document's unique mappings in
  /// Mapping::operator< order. `scratch` supplies arenas, pooled mapping
  /// storage and sort buffers; one scratch per worker thread.
  virtual void ExtractSortedInto(const Document& doc, PlanScratch* scratch,
                                 std::vector<Mapping>* out) const = 0;
};

class ExtractionPlan : public DocumentExtractor {
 public:
  /// Parses, compiles and analyses `pattern`.
  static Result<ExtractionPlan> Compile(std::string_view pattern);

  /// Plans an already-built spanner (e.g. one assembled via the Theorem
  /// 4.5 algebra). `pattern` is a display/cache key; defaults to the
  /// spanner's own pattern text.
  static ExtractionPlan FromSpanner(Spanner spanner, std::string pattern = "");

  /// Plans a rule program — the union-of-rules semantics of §4.3. Every
  /// rule must be tree-like (Lemma B.1 turns each into an RGX; the program
  /// becomes one disjunction), so rule programs flow through the exact
  /// plan/cache/evaluator machinery patterns use. NotSupported when a rule
  /// is not tree-like after normalisation. `key` is the cache/display key.
  static Result<ExtractionPlan> FromRuleProgram(
      const std::vector<ExtractionRule>& rules, std::string key);

  ExtractionPlan(ExtractionPlan&&) = default;
  ExtractionPlan& operator=(ExtractionPlan&&) = default;

  const Spanner& spanner() const { return spanner_; }
  const std::string& pattern() const { return pattern_; }
  const PlanInfo& info() const { return info_; }
  const VarSet& vars() const override { return spanner_.vars(); }

  /// The literal requirement gating this plan (match-all when it cannot
  /// prune) and the lazy-DFA membership gate (never null).
  const Prefilter& prefilter() const { return prefilter_; }
  const LazyDfa& lazy_dfa() const { return *dfa_; }

  /// Turns the prefilter + lazy-DFA document gate off (on by default).
  /// For benchmarks and differential tests; set before sharing the plan
  /// across threads.
  void set_gating_enabled(bool on) { gating_enabled_ = on; }
  bool gating_enabled() const { return gating_enabled_; }

  /// NonEmp on one document: ⟦γ⟧_doc ≠ ∅, deciding via the cheapest
  /// sufficient tier — literal prefilter, then the cached lazy DFA (exact
  /// for sequential VAs), then NFA state-set simulation. Thread-safe.
  /// `scratch`, when given, supplies the simulation tier's arena (its
  /// extraction arena is Reset() by that tier), making repeated oracle
  /// calls allocation-free.
  bool Matches(const Document& doc, PlanScratch* scratch = nullptr) const;

  /// ⟦γ⟧_doc with the plan's chosen evaluator. Thread-safe.
  MappingSet Extract(const Document& doc) const;

  /// Extract + deterministic ordering (Mapping::operator<). The returned
  /// reference points into `scratch` and is valid until its next use.
  const std::vector<Mapping>& ExtractSorted(const Document& doc,
                                            PlanScratch* scratch) const;

  /// Like ExtractSorted but fills *out directly (cleared first), using
  /// `scratch`'s arena for all transient evaluator state and recycling
  /// *out's previous mappings through the scratch pool. The engine's
  /// per-document hot path: zero heap traffic once arena and pool have
  /// reached their high-water marks.
  void ExtractSortedInto(const Document& doc, PlanScratch* scratch,
                         std::vector<Mapping>* out) const override;

  /// ExtractSortedInto for a document an outer tier has already gated:
  /// skips this plan's own prefilter + lazy-DFA scan (the multi-query
  /// extractor decides both from its shared corpus pass) and goes straight
  /// to the evaluator. Counters for documents/mappings are still bumped.
  void ExtractSortedPregatedInto(const Document& doc, PlanScratch* scratch,
                                 std::vector<Mapping>* out) const;

  /// Streams ⟦γ⟧_doc into `sink` in the evaluator's (unsorted) order —
  /// the composable primitive used by algebra scan nodes. Counters are
  /// still maintained.
  void ExtractTo(const Document& doc, PlanScratch* scratch,
                 MappingSink& sink) const;

  /// Snapshot of the monotonic counters.
  PlanStats stats() const;

 private:
  ExtractionPlan(Spanner spanner, std::string pattern);

  /// True when the document provably has no mappings (literal prefilter
  /// or lazy-DFA gate rejected it); bumps the matching skip counter.
  /// A tripped `cancel` answers false (no proof): the evaluator stage
  /// notices the trip immediately and aborts there.
  bool GateRejects(const Document& doc, CancelToken* cancel) const;

  Spanner spanner_;
  std::string pattern_;
  PlanInfo info_;
  Prefilter prefilter_;
  // unique_ptr: the DFA owns a mutex (unmovable) and the plan must move.
  std::unique_ptr<LazyDfa> dfa_;
  bool gating_enabled_ = true;
  // Per-plan stats on the telemetry subsystem's sharded-counter primitive
  // (obs::Counter): always-on — PlanStats works without enabling obs —
  // and contention-free across worker threads. unique_ptr keeps the plan
  // movable despite the embedded atomics.
  struct Counters {
    obs::Counter documents;
    obs::Counter mappings;
    obs::Counter prefilter_skipped;
    obs::Counter dfa_skipped;
  };
  std::unique_ptr<Counters> counters_;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_PLAN_H_
