// Umbrella header for the batch-extraction engine: compiled plans with
// one-time analysis (plan.h), a process-wide LRU plan cache
// (plan_cache.h), corpora and sharding (corpus.h), the work-stealing
// thread pool (thread_pool.h), parallel corpus extraction
// (batch_extractor.h) and wire formatting (format.h).
//
// Quickstart:
//   auto plan = spanners::engine::ExtractionPlan::Compile(
//       ".*Seller: (x{[^,\n]*}),.*").ValueOrDie();
//   auto corpus = spanners::engine::Corpus::FromDelimited(csv_text);
//   spanners::engine::BatchExtractor extractor;
//   auto result = extractor.Extract(plan, corpus);
//   // result.per_doc[i] == sorted ⟦γ⟧_{d_i}, independent of thread count.
#ifndef SPANNERS_ENGINE_ENGINE_H_
#define SPANNERS_ENGINE_ENGINE_H_

#include "engine/batch_extractor.h"  // IWYU pragma: export
#include "engine/corpus.h"           // IWYU pragma: export
#include "engine/format.h"           // IWYU pragma: export
#include "engine/multi_query.h"      // IWYU pragma: export
#include "engine/plan.h"             // IWYU pragma: export
#include "engine/plan_cache.h"       // IWYU pragma: export
#include "engine/thread_pool.h"      // IWYU pragma: export

#endif  // SPANNERS_ENGINE_ENGINE_H_
