// BatchExtractor: runs one DocumentExtractor — a compiled pattern plan or
// a whole algebra query — over a Corpus on a fixed work-stealing thread
// pool. The corpus is cut into byte-balanced shards
// (≈ oversubscription × threads of them, so stealing can rebalance skew);
// each worker extracts its shard's documents into slots indexed by
// document position. Output is therefore deterministic and independent of
// the thread count: per_doc[i] is the sorted ⟦γ⟧_{d_i}.
#ifndef SPANNERS_ENGINE_BATCH_EXTRACTOR_H_
#define SPANNERS_ENGINE_BATCH_EXTRACTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/mapping.h"
#include "engine/corpus.h"
#include "engine/multi_query.h"
#include "engine/plan.h"
#include "engine/thread_pool.h"

namespace spanners {
namespace engine {

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Shards ≈ num_threads × oversubscription (skew insurance).
  size_t shard_oversubscription = 4;
  /// Never shard finer than this many documents.
  size_t min_docs_per_shard = 16;
};

struct BatchResult {
  /// per_doc[i]: sorted mappings of corpus document i.
  std::vector<std::vector<Mapping>> per_doc;
  uint64_t total_mappings = 0;
  size_t shards = 0;

  /// Documents with at least one mapping.
  size_t MatchedDocuments() const;
};

/// One ExtractMulti call's output: per_plan[p] is byte-identical to the
/// BatchResult of running plan p alone over the same corpus.
struct MultiBatchResult {
  std::vector<BatchResult> per_plan;
  uint64_t total_mappings = 0;  // across every plan
  size_t shards = 0;
};

class BatchExtractor {
 public:
  explicit BatchExtractor(BatchOptions options = {});

  size_t num_threads() const { return pool_.num_threads(); }

  /// Extracts every document of `corpus` under `extractor` — an
  /// ExtractionPlan or a query::CompiledQuery. Blocking; safe to call
  /// repeatedly (the pool is reused across batches — each worker's
  /// extraction arenas and mapping pool are Reset()/recycled between
  /// documents, never freed, so steady-state batches perform no evaluator
  /// heap allocation). The extractor and corpus must outlive the call
  /// (they are borrowed, not copied). Not safe to call concurrently on the
  /// same BatchExtractor: the per-worker scratch is reused across calls.
  BatchResult Extract(const DocumentExtractor& extractor,
                      const Corpus& corpus);

  /// Like Extract but refills a caller-owned result, recycling the
  /// previous batch's per-document vectors and pooled mapping storage
  /// through the worker scratch. Under repeated batches (the serving
  /// loop), steady-state pattern plans allocate nothing at all — arenas,
  /// result slots and mapping entry vectors have all reached their
  /// high-water marks — and algebra queries keep only small per-document
  /// operator state (e.g. the join's build-side vector).
  void ExtractInto(const DocumentExtractor& extractor, const Corpus& corpus,
                   BatchResult* result);

  /// Aggregate of a streamed extraction (ExtractStream's return value).
  struct StreamStats {
    uint64_t total_mappings = 0;
    size_t matched_documents = 0;
    size_t shards = 0;
  };

  /// Receives one completed shard: the sorted mappings of corpus documents
  /// [doc_begin, doc_end), with per_doc[i] belonging to document
  /// doc_begin + i. The slice may be consumed destructively (moved from);
  /// its storage is released after the call returns.
  using ShardConsumer = std::function<void(
      size_t doc_begin, size_t doc_end,
      std::vector<std::vector<Mapping>>& per_doc)>;

  /// Streamed variant of Extract: `consumer` is invoked once per shard,
  /// in corpus order, on the calling thread, while later shards are still
  /// extracting — output never materializes the whole BatchResult, so peak
  /// memory is bounded by the in-flight window (≈ threads ×
  /// oversubscription shards) instead of the corpus. The emitted stream
  /// is byte-identical for every thread count: shard boundaries and
  /// per-document mapping order do not depend on scheduling. Same
  /// borrowing and non-reentrancy rules as Extract.
  StreamStats ExtractStream(const DocumentExtractor& extractor,
                            const Corpus& corpus,
                            const ShardConsumer& consumer);

  /// Runs a whole plan fleet over the corpus in a single pass: each
  /// document is scanned once by the fleet's shared Aho–Corasick gate and
  /// extracted under every surviving plan, instead of one full corpus
  /// sweep per plan. Output per_plan[p] is byte-identical — for every
  /// thread count — to Extract(fleet.plan(p), corpus). Same borrowing and
  /// non-reentrancy rules as Extract.
  MultiBatchResult ExtractMulti(const MultiQueryExtractor& fleet,
                                const Corpus& corpus);

  /// Like ExtractMulti but refills a caller-owned result, recycling the
  /// previous batch's vectors (the serving-loop steady state allocates
  /// nothing).
  void ExtractMultiInto(const MultiQueryExtractor& fleet,
                        const Corpus& corpus, MultiBatchResult* result);

  /// Receives one completed multi-query shard: per_plan[p][i - doc_begin]
  /// is the sorted mapping set of corpus document i under plan p. The
  /// slice may be consumed destructively; storage is released after the
  /// call returns.
  using MultiShardConsumer = std::function<void(
      size_t doc_begin, size_t doc_end,
      std::vector<std::vector<std::vector<Mapping>>>& per_plan)>;

  /// Streamed ExtractMulti: shards arrive in corpus order on the calling
  /// thread while later shards still extract; StreamStats aggregates over
  /// every plan (matched_documents counts documents matched by at least
  /// one plan). Byte-identical for every thread count.
  StreamStats ExtractMultiStream(const MultiQueryExtractor& fleet,
                                 const Corpus& corpus,
                                 const MultiShardConsumer& consumer);

 private:
  /// Shard sizing shared by Extract and ExtractStream.
  ShardingOptions MakeShardingOptions() const;

  BatchOptions options_;
  ThreadPool pool_;
  // One scratch (arena + sort buffer) per pool worker, addressed via
  // ThreadPool::CurrentWorkerIndex(); unique_ptr keeps addresses stable.
  std::vector<std::unique_ptr<PlanScratch>> worker_scratch_;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_BATCH_EXTRACTOR_H_
