// BatchExtractor: runs one DocumentExtractor — a compiled pattern plan or
// a whole algebra query — over a Corpus on a fixed work-stealing thread
// pool. The corpus is cut into byte-balanced shards
// (≈ oversubscription × threads of them, so stealing can rebalance skew);
// each worker extracts its shard's documents into slots indexed by
// document position. Output is therefore deterministic and independent of
// the thread count: per_doc[i] is the sorted ⟦γ⟧_{d_i}.
#ifndef SPANNERS_ENGINE_BATCH_EXTRACTOR_H_
#define SPANNERS_ENGINE_BATCH_EXTRACTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/mapping.h"
#include "engine/corpus.h"
#include "engine/multi_query.h"
#include "engine/plan.h"
#include "engine/thread_pool.h"
#include "storage/ngram_index.h"
#include "storage/segment.h"

namespace spanners {
namespace engine {

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Shards ≈ num_threads × oversubscription (skew insurance).
  size_t shard_oversubscription = 4;
  /// Never shard finer than this many documents.
  size_t min_docs_per_shard = 16;
};

struct BatchResult {
  /// per_doc[i]: sorted mappings of corpus document i.
  std::vector<std::vector<Mapping>> per_doc;
  uint64_t total_mappings = 0;
  size_t shards = 0;

  /// Documents with at least one mapping.
  size_t MatchedDocuments() const;
};

/// One ExtractMulti call's output: per_plan[p] is byte-identical to the
/// BatchResult of running plan p alone over the same corpus.
struct MultiBatchResult {
  std::vector<BatchResult> per_plan;
  uint64_t total_mappings = 0;  // across every plan
  size_t shards = 0;
};

/// Accounting of one ExtractIndexed{,Multi} call: how much the posting
/// index narrowed the scan, what the lookup cost, and the mmap paging the
/// candidate materialization incurred. Mirrored into obs index.* metrics.
struct IndexedStats {
  size_t corpus_docs = 0;
  /// Documents actually materialized and extracted (== corpus_docs when
  /// the index could not narrow the query).
  size_t candidate_docs = 0;
  /// Whether the index produced an explicit candidate set (some clause
  /// was indexable); false = full scan over the store.
  bool narrowed = false;
  uint64_t postings_touched = 0;  // posting entries decoded
  uint64_t terms_probed = 0;      // term-table binary searches
  uint64_t lookup_ns = 0;         // candidate-set computation wall time
  uint64_t minor_faults = 0;      // getrusage deltas across the call
  uint64_t major_faults = 0;

  /// candidate_docs / corpus_docs in [0, 1]; 1.0 for an empty corpus.
  double CandidateRatio() const {
    return corpus_docs == 0
               ? 1.0
               : static_cast<double>(candidate_docs) / corpus_docs;
  }
};

class BatchExtractor {
 public:
  explicit BatchExtractor(BatchOptions options = {});

  size_t num_threads() const { return pool_.num_threads(); }

  /// Token governing the NEXT Extract* call (and every one after, until
  /// replaced): each worker polls it between documents and hands it to the
  /// evaluators so it aborts mid-document too. Not owned; null = never
  /// cancels. Set it before the call, from the same thread — the extractor
  /// is not reentrant anyway. After a trip the result is partial and
  /// meaningless: the caller checks the token, never the result. With no
  /// token (or an untripped one) results are byte-identical to a run
  /// without this feature — the polls have no other side effect.
  void set_cancel(CancelToken* cancel) { cancel_ = cancel; }
  CancelToken* cancel() const { return cancel_; }

  /// Extracts every document of `corpus` under `extractor` — an
  /// ExtractionPlan or a query::CompiledQuery. Blocking; safe to call
  /// repeatedly (the pool is reused across batches — each worker's
  /// extraction arenas and mapping pool are Reset()/recycled between
  /// documents, never freed, so steady-state batches perform no evaluator
  /// heap allocation). The extractor and corpus must outlive the call
  /// (they are borrowed, not copied). Not safe to call concurrently on the
  /// same BatchExtractor: the per-worker scratch is reused across calls.
  BatchResult Extract(const DocumentExtractor& extractor,
                      const Corpus& corpus);

  /// Like Extract but refills a caller-owned result, recycling the
  /// previous batch's per-document vectors and pooled mapping storage
  /// through the worker scratch. Under repeated batches (the serving
  /// loop), steady-state pattern plans allocate nothing at all — arenas,
  /// result slots and mapping entry vectors have all reached their
  /// high-water marks — and algebra queries keep only small per-document
  /// operator state (e.g. the join's build-side vector).
  void ExtractInto(const DocumentExtractor& extractor, const Corpus& corpus,
                   BatchResult* result);

  /// Aggregate of a streamed extraction (ExtractStream's return value).
  struct StreamStats {
    uint64_t total_mappings = 0;
    size_t matched_documents = 0;
    size_t shards = 0;
  };

  /// Receives one completed shard: the sorted mappings of corpus documents
  /// [doc_begin, doc_end), with per_doc[i] belonging to document
  /// doc_begin + i. The slice may be consumed destructively (moved from);
  /// its storage is released after the call returns.
  using ShardConsumer = std::function<void(
      size_t doc_begin, size_t doc_end,
      std::vector<std::vector<Mapping>>& per_doc)>;

  /// Streamed variant of Extract: `consumer` is invoked once per shard,
  /// in corpus order, on the calling thread, while later shards are still
  /// extracting — output never materializes the whole BatchResult, so peak
  /// memory is bounded by the in-flight window (≈ threads ×
  /// oversubscription shards) instead of the corpus. The emitted stream
  /// is byte-identical for every thread count: shard boundaries and
  /// per-document mapping order do not depend on scheduling. Same
  /// borrowing and non-reentrancy rules as Extract.
  StreamStats ExtractStream(const DocumentExtractor& extractor,
                            const Corpus& corpus,
                            const ShardConsumer& consumer);

  /// Runs a whole plan fleet over the corpus in a single pass: each
  /// document is scanned once by the fleet's shared Aho–Corasick gate and
  /// extracted under every surviving plan, instead of one full corpus
  /// sweep per plan. Output per_plan[p] is byte-identical — for every
  /// thread count — to Extract(fleet.plan(p), corpus). Same borrowing and
  /// non-reentrancy rules as Extract.
  MultiBatchResult ExtractMulti(const MultiQueryExtractor& fleet,
                                const Corpus& corpus);

  /// Like ExtractMulti but refills a caller-owned result, recycling the
  /// previous batch's vectors (the serving-loop steady state allocates
  /// nothing).
  void ExtractMultiInto(const MultiQueryExtractor& fleet,
                        const Corpus& corpus, MultiBatchResult* result);

  /// Receives one completed multi-query shard: per_plan[p][i - doc_begin]
  /// is the sorted mapping set of corpus document i under plan p. The
  /// slice may be consumed destructively; storage is released after the
  /// call returns.
  using MultiShardConsumer = std::function<void(
      size_t doc_begin, size_t doc_end,
      std::vector<std::vector<std::vector<Mapping>>>& per_plan)>;

  /// Streamed ExtractMulti: shards arrive in corpus order on the calling
  /// thread while later shards still extract; StreamStats aggregates over
  /// every plan (matched_documents counts documents matched by at least
  /// one plan). Byte-identical for every thread count.
  StreamStats ExtractMultiStream(const MultiQueryExtractor& fleet,
                                 const Corpus& corpus,
                                 const MultiShardConsumer& consumer);

  /// Index-accelerated Extract over a persisted segment: the plan's
  /// prefilter requirement compiles to posting-list intersections
  /// (NgramIndex::Candidates) and ONLY candidate documents are
  /// materialized out of the mapping and extracted — non-candidates keep
  /// their (provably correct) empty per_doc slots without ever being
  /// touched. The result is byte-identical, for every thread count, to
  /// Extract(plan, store.ReadAll()): candidates are a superset of the
  /// matching documents and every survivor still runs the full gate
  /// cascade. `index` may be null (or unable to narrow the plan), in
  /// which case every document is scanned. Extracted documents are
  /// copied out of the mapping (SegmentStore::MaterializeDoc), so results
  /// never dangle after the store closes.
  BatchResult ExtractIndexed(const ExtractionPlan& plan,
                             const storage::SegmentStore& store,
                             const storage::NgramIndex* index,
                             IndexedStats* stats = nullptr);

  /// Indexed ExtractMulti: candidates are the UNION of every resident
  /// plan's candidate set (any plan that the index cannot narrow widens
  /// the union to the whole store), and each candidate document runs the
  /// fleet's normal shared-AC cascade. per_plan[p] is byte-identical to
  /// Extract(fleet.plan(p), store.ReadAll()) for every thread count.
  MultiBatchResult ExtractIndexedMulti(const MultiQueryExtractor& fleet,
                                       const storage::SegmentStore& store,
                                       const storage::NgramIndex* index,
                                       IndexedStats* stats = nullptr);

 private:
  /// Shard sizing shared by Extract and ExtractStream.
  ShardingOptions MakeShardingOptions() const;

  BatchOptions options_;
  ThreadPool pool_;
  CancelToken* cancel_ = nullptr;
  // One scratch (arena + sort buffer) per pool worker, addressed via
  // ThreadPool::CurrentWorkerIndex(); unique_ptr keeps addresses stable.
  std::vector<std::unique_ptr<PlanScratch>> worker_scratch_;
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_BATCH_EXTRACTOR_H_
