// PlanCache: pattern text → shared compiled ExtractionPlan, so a pattern
// seen twice (the common case under repeated query traffic) compiles once.
// Reads take a shared lock and only bump an atomic recency tick; inserts
// take the exclusive lock and evict the least-recently-used entry when
// over capacity. Returned plans are shared_ptr<const ...>: eviction never
// invalidates a plan a caller still holds.
#ifndef SPANNERS_ENGINE_PLAN_CACHE_H_
#define SPANNERS_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"

namespace spanners {
namespace engine {

struct PlanCacheOptions {
  /// Maximum resident plans; at least 1.
  size_t capacity = 128;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       // includes failed compiles
  uint64_t evictions = 0;
  size_t size = 0;           // resident plans
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options = {});

  /// Builds the plan for a cache key on miss. Runs outside the cache lock.
  using PlanFactory = std::function<Result<ExtractionPlan>()>;

  /// The cached plan for `pattern`, compiling and inserting on miss.
  /// Compile errors are returned and NOT cached (a later identical query
  /// re-attempts; error paths are rare and cheap to retry).
  Result<std::shared_ptr<const ExtractionPlan>> GetOrCompile(
      std::string_view pattern);

  /// The cached plan for an arbitrary `key`, calling `factory` on miss.
  /// This is how non-pattern representations (rule programs, compiled
  /// algebra subtrees — src/query/) share the cache: each canonical
  /// expression text is one key, so a query seen twice compiles once.
  Result<std::shared_ptr<const ExtractionPlan>> GetOrInsert(
      std::string_view key, const PlanFactory& factory);

  /// Lookup without compiling; nullptr on miss. Does not count toward
  /// hit/miss statistics. `key` is the raw cache key, whichever namespace
  /// it lives in — a pattern as passed to GetOrCompile, or a reserved
  /// (')'-prefixed) key as passed to GetOrInsert by the query layer —
  /// unlike GetOrCompile, Peek performs no namespace guarding.
  std::shared_ptr<const ExtractionPlan> Peek(std::string_view key) const;

  /// Snapshot of every resident plan with its cache key, sorted by key so
  /// the order is deterministic regardless of hash layout. This is how
  /// the multi-query tier (engine::MultiQueryExtractor::FromCache) gathers
  /// the resident fleet to build one shared gate over. Does not touch
  /// recency or hit/miss statistics.
  std::vector<std::pair<std::string, std::shared_ptr<const ExtractionPlan>>>
  ResidentPlans() const;

  PlanCacheStats stats() const;

  /// Monotonic counter bumped on every membership change — insert,
  /// eviction, Clear. A derived structure built from ResidentPlans()
  /// (the multi-query fleet gate) records the generation it was built at
  /// and rebuilds only when this has moved, instead of reconstructing on
  /// every call: see engine::CachedFleet. Recency updates (hits) do NOT
  /// bump it — they change no membership.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Drops every resident plan (outstanding shared_ptrs stay valid).
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const ExtractionPlan> plan;
    /// Recency tick; updated under the shared lock, hence atomic.
    std::atomic<uint64_t> last_used{0};

    Entry() = default;
    Entry(std::shared_ptr<const ExtractionPlan> p, uint64_t tick)
        : plan(std::move(p)), last_used(tick) {}
  };

  uint64_t NextTick() const {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Precondition: exclusive lock held.
  void EvictIfOverCapacity();

  const size_t capacity_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  mutable std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> generation_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace engine
}  // namespace spanners

#endif  // SPANNERS_ENGINE_PLAN_CACHE_H_
