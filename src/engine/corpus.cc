#include "engine/corpus.h"

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

namespace spanners {
namespace engine {

Corpus Corpus::FromDelimited(std::string_view text, char delimiter) {
  std::vector<Document> docs;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      // Last piece; skip it when it is the empty remainder of a trailing
      // delimiter (or an entirely empty input).
      if (start < text.size())
        docs.emplace_back(std::string(text.substr(start)));
      break;
    }
    docs.emplace_back(std::string(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return Corpus(std::move(docs));
}

Corpus Corpus::FromStream(std::istream& in, char delimiter) {
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return FromDelimited(text, delimiter);
}

Result<Corpus> Corpus::FromFile(const std::string& path, char delimiter) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Status::InvalidArgument("cannot open corpus file: " + path);
  return FromStream(in, delimiter);
}

void Corpus::Append(Corpus&& other) {
  if (docs_.empty()) {
    docs_ = std::move(other.docs_);
    return;
  }
  docs_.insert(docs_.end(), std::make_move_iterator(other.docs_.begin()),
               std::make_move_iterator(other.docs_.end()));
  other.docs_.clear();
}

size_t Corpus::TotalBytes() const {
  size_t total = 0;
  for (const Document& d : docs_) total += d.text().size();
  return total;
}

std::vector<Shard> ShardCorpus(const Corpus& corpus,
                               const ShardingOptions& options) {
  std::vector<Shard> shards;
  const size_t n = corpus.size();
  if (n == 0) return shards;

  const size_t max_shards = options.max_shards == 0 ? 1 : options.max_shards;
  const size_t min_docs =
      options.min_docs_per_shard == 0 ? 1 : options.min_docs_per_shard;
  const size_t total = corpus.TotalBytes();
  // Byte budget per shard; +1 so the last shard absorbs rounding rather
  // than spilling into a tiny max_shards+1'th shard.
  const size_t budget = total / max_shards + 1;

  Shard current{0, 0};
  size_t bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    bytes += corpus[i].text().size();
    current.end = i + 1;
    if (bytes >= budget && current.size() >= min_docs &&
        shards.size() + 1 < max_shards) {
      shards.push_back(current);
      current = Shard{i + 1, i + 1};
      bytes = 0;
    }
  }
  if (current.size() > 0) shards.push_back(current);
  return shards;
}

}  // namespace engine
}  // namespace spanners
