#include "engine/thread_pool.h"

#include <utility>

namespace spanners {
namespace engine {

namespace {

thread_local size_t tls_worker_index = SIZE_MAX;

}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_ = std::vector<Worker>(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    workers_[i].thread = std::thread([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (Worker& w : workers_) w.thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_[next_worker_].queue.push_back(std::move(task));
    next_worker_ = (next_worker_ + 1) % workers_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::TryPop(size_t self, std::function<void()>* task) {
  Worker& own = workers_[self];
  if (!own.queue.empty()) {
    *task = std::move(own.queue.front());
    own.queue.pop_front();
    return true;
  }
  // Steal from the busiest victim's back (oldest task: most likely large).
  size_t victim = workers_.size();
  size_t best = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (i == self) continue;
    if (workers_[i].queue.size() > best) {
      best = workers_[i].queue.size();
      victim = i;
    }
  }
  if (victim == workers_.size()) return false;
  *task = std::move(workers_[victim].queue.back());
  workers_[victim].queue.pop_back();
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_worker_index = self;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      lock.unlock();
      task();
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (shutdown_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace engine
}  // namespace spanners
