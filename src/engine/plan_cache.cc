#include "engine/plan_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace spanners {
namespace engine {

namespace {

/// Registry mirrors of the cache's own atomics: PlanCacheStats answers
/// "this cache", the plan_cache.* counters answer "the process" in one
/// --metrics snapshot next to every other subsystem.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    CacheMetrics m;
    m.hits = r.GetCounter("plan_cache.hits");
    m.misses = r.GetCounter("plan_cache.misses");
    m.evictions = r.GetCounter("plan_cache.evictions");
    return m;
  }();
  return m;
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity) {}

Result<std::shared_ptr<const ExtractionPlan>> PlanCache::GetOrCompile(
    std::string_view pattern) {
  // Keys beginning with ')' are reserved for non-pattern entries
  // (query::QueryPlanCacheKey relies on no valid RGX starting with an
  // unmatched close). Bypass the cache entirely for such input so a
  // malformed pattern can never be served a query-keyed plan.
  if (!pattern.empty() && pattern.front() == ')') {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) Metrics().misses->Add(1);
    Result<ExtractionPlan> compiled = ExtractionPlan::Compile(pattern);
    if (!compiled.ok()) return compiled.status();
    return std::make_shared<const ExtractionPlan>(std::move(compiled).value());
  }
  return GetOrInsert(pattern,
                     [pattern] { return ExtractionPlan::Compile(pattern); });
}

Result<std::shared_ptr<const ExtractionPlan>> PlanCache::GetOrInsert(
    std::string_view key_view, const PlanFactory& factory) {
  std::string key(key_view);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_used.store(NextTick(), std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Enabled()) Metrics().hits->Add(1);
      return it->second.plan;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) Metrics().misses->Add(1);

  // Compile outside any lock: compilation can be expensive and must not
  // serialize readers of other patterns.
  Result<ExtractionPlan> compiled = factory();
  if (!compiled.ok()) return compiled.status();
  auto plan = std::make_shared<const ExtractionPlan>(
      std::move(compiled).value());

  std::unique_lock<std::shared_mutex> lock(mu_);
  // A racing thread may have inserted the same pattern meanwhile; keep the
  // incumbent so every caller shares one plan (and one stats stream).
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.last_used.store(NextTick(), std::memory_order_relaxed);
    return it->second.plan;
  }
  auto [ins, _] = entries_.emplace(
      std::piecewise_construct, std::forward_as_tuple(std::move(key)),
      std::forward_as_tuple(plan, NextTick()));
  EvictIfOverCapacity();
  generation_.fetch_add(1, std::memory_order_release);
  return ins->second.plan;
}

std::shared_ptr<const ExtractionPlan> PlanCache::Peek(
    std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(std::string(key));
  return it == entries_.end() ? nullptr : it->second.plan;
}

std::vector<std::pair<std::string, std::shared_ptr<const ExtractionPlan>>>
PlanCache::ResidentPlans() const {
  std::vector<std::pair<std::string, std::shared_ptr<const ExtractionPlan>>>
      out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.emplace_back(key, entry.plan);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void PlanCache::EvictIfOverCapacity() {
  while (entries_.size() > capacity_) {
    auto lru = entries_.end();
    uint64_t oldest = ~uint64_t{0};
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      uint64_t t = it->second.last_used.load(std::memory_order_relaxed);
      if (t <= oldest) {
        oldest = t;
        lru = it;
      }
    }
    entries_.erase(lru);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    if (obs::Enabled()) Metrics().evictions->Add(1);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  s.size = entries_.size();
  return s;
}

void PlanCache::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace engine
}  // namespace spanners
