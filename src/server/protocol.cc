#include "server/protocol.h"

namespace spanners {
namespace server {

std::string ErrorResponse(int64_t id, const Status& status) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":false";
  out += ",\"error\":{\"code\":";
  AppendJsonString(&out, StatusCodeToString(status.code()));
  out += ",\"message\":";
  AppendJsonString(&out, status.message());
  if (status.retry_after_ms() > 0)
    out += ",\"retry_after_ms\":" + std::to_string(status.retry_after_ms());
  out += "}}";
  return out;
}

std::string OkPrefix(int64_t id) {
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true";
}

Status StatusFromResponse(const JsonValue& response) {
  if (!response.is_object())
    return Status::Internal("malformed response: not a JSON object");
  if (response.BoolOr("ok", false)) return Status::OK();
  const JsonValue* error = response.Find("error");
  if (error == nullptr || !error->is_object())
    return Status::Internal("malformed response: ok=false without error");
  const std::string code = error->StringOr("code", "");
  const std::string message = error->StringOr("message", "");
  const auto retry =
      static_cast<uint32_t>(error->IntOr("retry_after_ms", 0));
  if (code == StatusCodeToString(StatusCode::kUnavailable))
    return Status::Unavailable(message, retry);
  if (code == StatusCodeToString(StatusCode::kInvalidArgument))
    return Status::InvalidArgument(message);
  if (code == StatusCodeToString(StatusCode::kNotSupported))
    return Status::NotSupported(message);
  if (code == StatusCodeToString(StatusCode::kUnsatisfiable))
    return Status::Unsatisfiable(message);
  if (code == StatusCodeToString(StatusCode::kOutOfRange))
    return Status::OutOfRange(message);
  if (code == StatusCodeToString(StatusCode::kCorruption))
    return Status::Corruption(message);
  if (code == StatusCodeToString(StatusCode::kDeadlineExceeded))
    return Status::DeadlineExceeded(message);
  if (code == StatusCodeToString(StatusCode::kCancelled))
    return Status::Cancelled(message);
  if (code == StatusCodeToString(StatusCode::kResourceExhausted))
    return Status::ResourceExhausted(message);
  return Status::Internal(code.empty() ? message
                                       : code + ": " + message);
}

}  // namespace server
}  // namespace spanners
