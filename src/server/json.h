// Minimal JSON value model + recursive-descent parser for the spanexd
// JSONL wire protocol. The engine has JSON *writers* everywhere
// (EngineReport::ToJson, ToJsonRow); this adds the read side the server
// and client need: one request/response per line, parsed into a JsonValue
// tree. Scope is deliberately protocol-sized — full escape handling
// (incl. \uXXXX with surrogate pairs → UTF-8), nesting-depth and
// duplicate-key tolerant (last key wins on lookup is NOT needed; Find
// returns the first), numbers as double with an exact int64 fast path.
#ifndef SPANNERS_SERVER_JSON_H_
#define SPANNERS_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace spanners {
namespace server {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool dflt = false) const { return is_bool() ? bool_ : dflt; }
  double AsDouble(double dflt = 0.0) const {
    return is_number() ? number_ : dflt;
  }
  int64_t AsInt(int64_t dflt = 0) const {
    return is_number() ? int_ : dflt;
  }
  const std::string& AsString() const { return string_; }  // "" if not one
  const std::vector<JsonValue>& items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// First member named `key`; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member accessors with defaults — the protocol's common shape
  /// ("field present and of the right type, else default").
  int64_t IntOr(std::string_view key, int64_t dflt) const;
  bool BoolOr(std::string_view key, bool dflt) const;
  // Returns by value: a reference result could alias a temporary bound to
  // `dflt` and dangle past the call statement.
  std::string StringOr(std::string_view key, std::string_view dflt) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d, int64_t i);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;  // number_ truncated toward zero (exact for int input)
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed; trailing garbage is an error). InvalidArgument on
/// malformed input with a byte-offset diagnostic.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` as a quoted, escaped JSON string literal to *out.
void AppendJsonString(std::string* out, std::string_view s);

/// Serializes `v` back to compact JSON (integral numbers print exactly;
/// other doubles via shortest round-trippable %g). Parse→Write is not
/// byte-identical to arbitrary input (whitespace, escapes normalize), but
/// Write output always re-parses to an equal tree.
void WriteJson(const JsonValue& v, std::string* out);

}  // namespace server
}  // namespace spanners

#endif  // SPANNERS_SERVER_JSON_H_
