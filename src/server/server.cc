#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "engine/format.h"
#include "server/protocol.h"

namespace spanners {
namespace server {

using engine::OutputFormat;

namespace {

/// Row payload accumulated per chunk before it ships as one JSONL line.
constexpr size_t kRowsChunkBytes = 256u << 10;

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Server::Connection {
  /// Owned by the I/O thread; -1 once closed.
  int fd = -1;
  std::string in_buf;

  struct Registration {
    int64_t handle = 0;
    std::string pattern;
    std::shared_ptr<const engine::ExtractionPlan> plan;
  };
  // Session state (I/O thread only). The fleet is the lazily-built
  // MultiQueryExtractor over regs in registration order, reset on every
  // register/unregister — the same rebuild-only-on-change trick as
  // engine::CachedFleet, per session.
  std::vector<Registration> regs;
  int64_t next_handle = 1;
  std::shared_ptr<const engine::MultiQueryExtractor> fleet;

  /// Admitted (queued or executing) items of this connection.
  std::atomic<size_t> inflight{0};

  /// Last traffic (accept, bytes read, flush progress), for idle reaping.
  /// I/O thread only, like fd/in_buf.
  uint64_t last_activity_ns = 0;

  // Output side, shared between the executor (EmitLine) and the I/O
  // thread (SendNow/FlushConn/CloseConn).
  std::mutex mu;
  std::condition_variable out_cv;
  std::string out_buf;
  bool closed = false;
};

Server::Server(ServerOptions options, engine::Corpus corpus)
    : options_(std::move(options)),
      corpus_(std::move(corpus)),
      cache_(engine::PlanCacheOptions{options_.plan_cache_capacity}),
      cached_fleet_(cache_),
      batch_(engine::BatchOptions{options_.num_threads}) {
  InitMetrics();
  cached_fleet_.set_memory_budget(options_.memory_budget_bytes);
}

Server::Server(ServerOptions options, storage::SegmentStore store,
               std::optional<storage::NgramIndex> index)
    : options_(std::move(options)),
      store_(std::move(store)),
      index_(std::move(index)),
      cache_(engine::PlanCacheOptions{options_.plan_cache_capacity}),
      cached_fleet_(cache_),
      batch_(engine::BatchOptions{options_.num_threads}) {
  InitMetrics();
  cached_fleet_.set_memory_budget(options_.memory_budget_bytes);
}

Server::~Server() {
  // Normal lifecycle has Serve() tear everything down; this path only has
  // to unblock and join a still-running executor (e.g. Start() without
  // Serve()). conns_ is safe to walk here because no I/O loop is running
  // once the destructor is reached.
  stop_.store(true, std::memory_order_release);
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closed = true;
    conn->out_cv.notify_all();
  }
  queue_cv_.notify_all();
  if (executor_.joinable()) executor_.join();
  for (auto& [fd, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
  if (started_ && !options_.socket_path.empty())
    ::unlink(options_.socket_path.c_str());
}

void Server::InitMetrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  connections_ = reg.GetCounter("server.connections");
  requests_ = reg.GetCounter("server.requests");
  admitted_ = reg.GetCounter("server.admitted");
  rejected_queue_full_ = reg.GetCounter("server.rejected_queue_full");
  rejected_inflight_cap_ = reg.GetCounter("server.rejected_inflight_cap");
  rejected_draining_ = reg.GetCounter("server.rejected_draining");
  dropped_disconnect_ = reg.GetCounter("server.dropped_disconnect");
  deadline_exceeded_ = reg.GetCounter("server.deadline_exceeded");
  cancelled_ = reg.GetCounter("server.cancelled");
  resource_exhausted_ = reg.GetCounter("server.resource_exhausted");
  cancelled_disconnect_ = reg.GetCounter("server.cancelled_disconnect");
  reaped_idle_ = reg.GetCounter("server.reaped_idle");
  degraded_activations_ = reg.GetCounter("server.degraded");
  queue_depth_ = reg.GetHistogram("server.queue_depth", "items");
  queue_wait_ns_ = reg.GetHistogram("server.queue_wait_ns", "ns");
  request_ns_ = reg.GetHistogram("server.request_ns", "ns");
  request_peak_arena_bytes_ =
      reg.GetHistogram("engine.request_peak_arena_bytes", "bytes");
}

size_t Server::corpus_docs() const {
  return store_.has_value() ? store_->num_docs() : corpus_.size();
}

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  if (options_.socket_path.empty())
    return Status::InvalidArgument("socket_path is empty");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  listen_fd_ =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  ::unlink(options_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Status::Internal("bind " + options_.socket_path + ": " +
                                      std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    const Status s =
        Status::Internal(std::string("pipe2: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  start_ns_ = MonotonicNs();
  executor_ = std::thread([this] { ExecutorLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  WakeIo();
}

void Server::WakeIo() {
  if (wake_pipe_[1] < 0) return;
  const char b = 0;
  // EAGAIN (pipe already full of wakeups) is success for our purposes.
  ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
  (void)ignored;
}

void Server::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  drain_deadline_ns_ =
      MonotonicNs() + uint64_t(options_.drain_flush_timeout_ms) * 1'000'000;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Unlink right away so a restarting instance can rebind while we
    // finish in-flight work.
    ::unlink(options_.socket_path.c_str());
  }
  queue_cv_.notify_all();
}

int Server::Serve() {
  if (!started_) return 1;
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool failed = false;
  bool deadline_forced = false;
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire)) BeginDrain();

    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const bool have_listener = listen_fd_ >= 0;
    const size_t listen_slot = pfds.size();
    if (have_listener) pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    const size_t conn_base = pfds.size();
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lk(conn->mu);
        if (!conn->out_buf.empty()) events |= POLLOUT;
      }
      pfds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn);
    }

    // Idle reaping needs a periodic wakeup even with no traffic; cap the
    // sleep at the idle timeout (bounded by 1 s so reaps stay timely).
    int timeout_ms = draining_.load(std::memory_order_acquire) ? 20 : -1;
    if (timeout_ms < 0 && options_.idle_timeout_ms > 0)
      timeout_ms = int(std::min<uint32_t>(options_.idle_timeout_ms, 1000));
    const int rc = ::poll(pfds.data(), nfds_t(pfds.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      failed = true;
      break;
    }
    // Promote an externally-requested drain BEFORE handling this batch's
    // readable fds: a request that raced the drain wakeup into the same
    // poll() batch must already see draining() and be refused.
    if (drain_requested_.load(std::memory_order_acquire)) BeginDrain();
    if (rc > 0) {
      if (pfds[0].revents & POLLIN) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      }
      if (have_listener && (pfds[listen_slot].revents & POLLIN))
        AcceptConnections();
      for (size_t i = conn_base; i < pfds.size(); ++i) {
        const std::shared_ptr<Connection>& conn = polled[i - conn_base];
        if (conn->fd < 0) continue;
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
          HandleReadable(conn);
        if (conn->fd >= 0 && (pfds[i].revents & POLLOUT)) FlushConn(conn);
      }
    }

    if (drain_requested_.load(std::memory_order_acquire)) BeginDrain();
    if (!draining_.load(std::memory_order_acquire))
      ReapIdleConns(MonotonicNs());
    if (draining_.load(std::memory_order_acquire)) {
      if (!deadline_forced && MonotonicNs() >= drain_deadline_ns_) {
        // Clients that never read their responses do not get to hold the
        // drain hostage: force-close them (which also unblocks an
        // executor stuck on their watermark) and finish.
        deadline_forced = true;
        std::vector<std::shared_ptr<Connection>> all;
        all.reserve(conns_.size());
        for (auto& [fd, conn] : conns_) all.push_back(conn);
        for (const auto& conn : all) CloseConn(conn);
      }
      if (executor_done_.load(std::memory_order_acquire)) {
        bool pending = false;
        for (auto& [fd, conn] : conns_) {
          std::lock_guard<std::mutex> lk(conn->mu);
          if (!conn->out_buf.empty()) {
            pending = true;
            break;
          }
        }
        if (!pending || deadline_forced) break;
      }
    }
  }

  // Teardown. On the failure path the executor may still be waiting;
  // unblock it before joining.
  if (failed) {
    stop_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
  }
  std::vector<std::shared_ptr<Connection>> all;
  all.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) all.push_back(conn);
  for (const auto& conn : all) CloseConn(conn);
  if (executor_.joinable()) executor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  return failed ? 1 : 0;
}

void Server::AcceptConnections() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_activity_ns = MonotonicNs();
    conns_.emplace(fd, conn);
    Count(connections_, n_connections_);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  const size_t limit = std::min(options_.max_request_bytes, kMaxLineBytes);
  char buf[65536];
  for (;;) {
    const fault::Action fa = SPANNERS_FAULT("server.read");
    ssize_t n;
    if (fa.fail) {
      errno = fa.err;
      n = -1;
    } else {
      n = ::read(conn->fd, buf, std::min(sizeof(buf), fa.clamp));
    }
    if (n > 0) {
      conn->last_activity_ns = MonotonicNs();
      conn->in_buf.append(buf, size_t(n));
      // Stop draining once over the cap so a client streaming a
      // newline-free request can't grow in_buf unboundedly within one
      // call; poll() is level-triggered, so any bytes left in the kernel
      // buffer re-arm the fd if the connection survives the check below.
      if (conn->in_buf.size() > limit) break;
      continue;
    }
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  size_t start = 0;
  for (;;) {
    const size_t nl = conn->in_buf.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string_view line(conn->in_buf.data() + start, nl - start);
    HandleLine(conn, line);
    start = nl + 1;
    if (conn->fd < 0) return;  // closed while handling
  }
  if (start > 0) conn->in_buf.erase(0, start);
  if (conn->in_buf.size() > limit) {
    SendNow(conn, ErrorResponse(
                      0, Status::InvalidArgument(
                             "request line exceeds " + std::to_string(limit) +
                             " bytes")));
    CloseConn(conn);
  }
}

void Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        std::string_view line) {
  if (line.empty()) return;
  Count(requests_, n_requests_);
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    SendNow(conn, ErrorResponse(0, parsed.status()));
    return;
  }
  const JsonValue req = std::move(parsed).value();
  if (!req.is_object()) {
    SendNow(conn, ErrorResponse(
                      0, Status::InvalidArgument(
                             "request must be a JSON object")));
    return;
  }
  const int64_t id = req.IntOr("id", 0);
  const std::string op = req.StringOr("op", "");

  if (op == "ping") {
    const int64_t sleep_ms = req.IntOr("sleep_ms", 0);
    if (sleep_ms > 0) {
      WorkItem item;
      item.conn = conn;
      item.id = id;
      item.op = WorkOp::kSleepPing;
      item.sleep_ms = uint64_t(sleep_ms);
      const Status s = AdmitWork(conn, std::move(item));
      if (!s.ok()) SendNow(conn, ErrorResponse(id, s));
    } else {
      SendNow(conn, OkPrefix(id) + ",\"op\":\"ping\"}");
    }
    return;
  }
  if (op == "register") {
    HandleRegister(conn, id, req);
    return;
  }
  if (op == "unregister") {
    HandleUnregister(conn, id, req);
    return;
  }
  if (op == "stats") {
    HandleStats(conn, id);
    return;
  }
  if (op == "drain") {
    BeginDrain();
    SendNow(conn, OkPrefix(id) + ",\"draining\":true}");
    return;
  }
  if (op == "extract" || op == "extract_batch") {
    WorkItem item;
    item.conn = conn;
    item.id = id;
    const std::string fmt = req.StringOr("format", "tsv");
    if (!engine::ParseOutputFormat(fmt, &item.format)) {
      SendNow(conn, ErrorResponse(
                        id, Status::InvalidArgument("unknown format: " + fmt)));
      return;
    }
    item.header = req.BoolOr("header", false);
    if (op == "extract") {
      item.op = WorkOp::kExtract;
      const JsonValue* doc = req.Find("doc");
      if (doc == nullptr || !doc->is_string()) {
        SendNow(conn, ErrorResponse(id, Status::InvalidArgument(
                                            "extract requires a string doc")));
        return;
      }
      item.doc = doc->AsString();
      item.doc_index = size_t(req.IntOr("doc_index", 0));
    } else {
      item.op = WorkOp::kExtractBatch;
    }
    if (item.op == WorkOp::kExtractBatch && req.BoolOr("all", false)) {
      // The cache-wide resident fleet (key-sorted), via the
      // generation-checked CachedFleet — rebuilt only when the cache's
      // membership changed since the last "all" batch.
      item.fleet = cached_fleet_.Get();
      if (cached_fleet_.degraded())
        MarkDegraded("fleet memory budget exceeded; shared gate disabled");
    } else {
      item.fleet = SessionFleet(conn);
      if (item.fleet == nullptr) {
        SendNow(conn,
                ErrorResponse(id, Status::InvalidArgument(
                                      "no plans registered on this session")));
        return;
      }
    }
    const Status s = AdmitWork(conn, std::move(item));
    if (!s.ok()) SendNow(conn, ErrorResponse(id, s));
    return;
  }
  SendNow(conn,
          ErrorResponse(id, Status::InvalidArgument("unknown op: " + op)));
}

void Server::HandleRegister(const std::shared_ptr<Connection>& conn,
                            int64_t id, const JsonValue& req) {
  if (draining()) {
    Count(rejected_draining_, n_rejected_draining_);
    SendNow(conn, ErrorResponse(id, Status::Unavailable(
                                        "server is draining",
                                        options_.retry_after_ms)));
    return;
  }
  const JsonValue* pattern = req.Find("pattern");
  if (pattern == nullptr || !pattern->is_string()) {
    SendNow(conn, ErrorResponse(id, Status::InvalidArgument(
                                        "register requires a string pattern")));
    return;
  }
  Result<std::shared_ptr<const engine::ExtractionPlan>> plan =
      cache_.GetOrCompile(pattern->AsString());
  if (!plan.ok()) {
    SendNow(conn, ErrorResponse(id, plan.status()));
    return;
  }
  Connection::Registration reg;
  reg.handle = conn->next_handle++;
  reg.pattern = pattern->AsString();
  reg.plan = std::move(plan).value();
  std::string resp = OkPrefix(id) +
                     ",\"handle\":" + std::to_string(reg.handle) + ",\"plan\":";
  AppendJsonString(&resp, reg.plan->info().ToString());
  resp += "}";
  conn->regs.push_back(std::move(reg));
  conn->fleet.reset();
  SendNow(conn, std::move(resp));
}

void Server::HandleUnregister(const std::shared_ptr<Connection>& conn,
                              int64_t id, const JsonValue& req) {
  if (draining()) {
    Count(rejected_draining_, n_rejected_draining_);
    SendNow(conn, ErrorResponse(id, Status::Unavailable(
                                        "server is draining",
                                        options_.retry_after_ms)));
    return;
  }
  const int64_t handle = req.IntOr("handle", -1);
  for (size_t i = 0; i < conn->regs.size(); ++i) {
    if (conn->regs[i].handle != handle) continue;
    conn->regs.erase(conn->regs.begin() + long(i));
    conn->fleet.reset();
    SendNow(conn, OkPrefix(id) + ",\"handle\":" + std::to_string(handle) + "}");
    return;
  }
  SendNow(conn, ErrorResponse(id, Status::InvalidArgument(
                                      "unknown handle: " +
                                      std::to_string(handle))));
}

std::shared_ptr<const engine::MultiQueryExtractor> Server::SessionFleet(
    const std::shared_ptr<Connection>& conn) {
  if (conn->regs.empty()) return nullptr;
  if (conn->fleet == nullptr) {
    std::vector<std::shared_ptr<const engine::ExtractionPlan>> plans;
    plans.reserve(conn->regs.size());
    for (const Connection::Registration& reg : conn->regs)
      plans.push_back(reg.plan);
    auto fleet =
        std::make_shared<const engine::MultiQueryExtractor>(plans);
    if (options_.memory_budget_bytes > 0 &&
        fleet->ApproxMemoryBytes() > options_.memory_budget_bytes) {
      // Over the serving memory budget: drop the shared gate (the only
      // non-trivial fleet allocation) and serve gateless — byte-identical
      // answers, per-plan filtering only.
      fleet = std::make_shared<const engine::MultiQueryExtractor>(
          std::move(plans), /*build_shared_gate=*/false);
      MarkDegraded("fleet memory budget exceeded; shared gate disabled");
    }
    conn->fleet = std::move(fleet);
  }
  return conn->fleet;
}

void Server::MarkDegraded(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    if (degraded_reason_.find(reason) == std::string::npos) {
      if (!degraded_reason_.empty()) degraded_reason_ += "; ";
      degraded_reason_ += reason;
    } else if (degraded_.load(std::memory_order_acquire)) {
      return;  // already degraded for this reason
    }
  }
  if (!degraded_.exchange(true, std::memory_order_acq_rel))
    degraded_activations_->Add();
}

void Server::HandleStats(const std::shared_ptr<Connection>& conn,
                         int64_t id) {
  engine::EngineReport report;
  for (size_t p = 0; p < conn->regs.size(); ++p) {
    const engine::ExtractionPlan& plan = *conn->regs[p].plan;
    report.plans.push_back(engine::PlanReport{
        conn->regs.size() == 1 ? "" : "q" + std::to_string(p),
        plan.info().ToString(), plan.stats(), plan.lazy_dfa().stats()});
  }
  if (conn->regs.size() > 1) report.fleet = SessionFleet(conn)->ToString();
  report.have_cache = true;
  report.cache = cache_.stats();
  report.documents = corpus_docs();
  report.threads = batch_.num_threads();
  {
    std::lock_guard<std::mutex> lk(indexed_stats_mu_);
    if (have_indexed_stats_) {
      report.have_index = true;
      if (index_.has_value()) report.index_info = index_->ToString();
      report.index_stats = last_indexed_stats_;
    }
  }
  report.wall_ns = MonotonicNs() - start_ns_;
  if (obs::Enabled()) {
    report.have_metrics = true;
    report.metrics = obs::MetricsRegistry::Global().Snapshot();
  }
  report.have_server = true;
  report.server = StatsSnapshot();
  std::string resp = OkPrefix(id) + ",\"report\":" + report.ToJson() +
                     ",\"text\":";
  AppendJsonString(&resp, report.ToText("spanexd: "));
  resp += "}";
  SendNow(conn, std::move(resp));
}

Status Server::AdmitWork(const std::shared_ptr<Connection>& conn,
                         WorkItem item) {
  if (draining()) {
    Count(rejected_draining_, n_rejected_draining_);
    return Status::Unavailable("server is draining", options_.retry_after_ms);
  }
  if (conn->inflight.load(std::memory_order_relaxed) >=
      options_.max_inflight_per_client) {
    Count(rejected_inflight_cap_, n_rejected_inflight_cap_);
    return Status::Unavailable(
        "client in-flight cap reached (" +
            std::to_string(options_.max_inflight_per_client) + ")",
        options_.retry_after_ms);
  }
  // Arm the request's token before it is shared (the token's contract):
  // the deadline makes DeadlineExceeded fire mid-evaluation rather than
  // only at chunk boundaries, the memory cap turns a pathological
  // request into ResourceExhausted instead of unbounded allocation, and
  // CloseConn's Cancel() aborts the work on disconnect.
  item.cancel = std::make_shared<CancelToken>();
  if (options_.request_timeout_ms > 0)
    item.cancel->ArmDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.request_timeout_ms));
  if (options_.request_memory_cap > 0)
    item.cancel->ArmMemoryBudget(options_.request_memory_cap);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      Count(rejected_queue_full_, n_rejected_queue_full_);
      return Status::Unavailable(
          "admission queue full (" + std::to_string(options_.queue_capacity) +
              ")",
          options_.retry_after_ms);
    }
    item.enqueue_ns = MonotonicNs();
    if (options_.request_timeout_ms > 0)
      item.deadline_ns = item.enqueue_ns +
                         uint64_t(options_.request_timeout_ms) * 1'000'000;
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    queue_depth_->Record(queue_.size() + 1);
    queue_.push_back(std::move(item));
  }
  Count(admitted_, n_admitted_);
  queue_cv_.notify_one();
  return Status::OK();
}

void Server::SendNow(const std::shared_ptr<Connection>& conn,
                     std::string line) {
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    conn->out_buf += line;
    conn->out_buf += '\n';
  }
  FlushConn(conn);
}

bool Server::FlushConn(const std::shared_ptr<Connection>& conn) {
  std::unique_lock<std::mutex> lk(conn->mu);
  if (conn->closed || conn->fd < 0) return false;
  while (!conn->out_buf.empty()) {
    const fault::Action fa = SPANNERS_FAULT("server.write");
    ssize_t n;
    if (fa.fail) {
      errno = fa.err;
      n = -1;
    } else {
      n = ::send(conn->fd, conn->out_buf.data(),
                 std::min(conn->out_buf.size(), fa.clamp), MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn->last_activity_ns = MonotonicNs();
      conn->out_buf.erase(0, size_t(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    lk.unlock();
    CloseConn(conn);
    return false;
  }
  if (conn->out_buf.size() < options_.output_high_watermark)
    conn->out_cv.notify_all();
  return true;
}

void Server::ReapIdleConns(uint64_t now_ns) {
  if (options_.idle_timeout_ms == 0 || conns_.empty()) return;
  const uint64_t idle_ns = uint64_t(options_.idle_timeout_ms) * 1'000'000;
  std::vector<std::shared_ptr<Connection>> victims;
  for (auto& [fd, conn] : conns_) {
    // Only a truly quiescent connection is reapable: nothing admitted,
    // nothing buffered for it, and no traffic for the idle window. A slow
    // reader mid-response keeps out_buf non-empty; a trickling sender
    // refreshes last_activity_ns on every byte.
    if (conn->inflight.load(std::memory_order_acquire) > 0) continue;
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      if (!conn->out_buf.empty()) continue;
    }
    if (now_ns - conn->last_activity_ns < idle_ns) continue;
    victims.push_back(conn);
  }
  for (const auto& conn : victims) {
    Count(reaped_idle_, n_reaped_idle_);
    CloseConn(conn);
  }
}

void Server::CloseConn(const std::shared_ptr<Connection>& conn) {
  int fd;
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    fd = conn->fd;
    conn->fd = -1;
    conn->out_buf.clear();
    conn->out_cv.notify_all();
  }
  // A dead client's work is pointless: trip every queued token it owns
  // (the executor also drops dead-conn items at dequeue) and the token of
  // its in-flight item, which the evaluation observes at its next poll —
  // cancellation reaches RUNNING work, not just queued work.
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (WorkItem& w : queue_)
      if (w.conn == conn && w.cancel != nullptr) w.cancel->Cancel();
    if (inflight_conn_ == conn && inflight_cancel_ != nullptr)
      inflight_cancel_->Cancel();
  }
  if (fd >= 0) {
    ::close(fd);
    conns_.erase(fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::ExecutorLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) ||
               draining_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_acquire)) return;
      if (queue_.empty()) {
        if (draining_.load(std::memory_order_acquire)) break;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
      // Publish the in-flight item while still under queue_mu_ so
      // CloseConn can never miss it: an item is always either in queue_
      // or registered here.
      inflight_conn_ = item.conn;
      inflight_cancel_ = item.cancel;
      inflight_enqueue_ns_ = item.enqueue_ns;
    }
    queue_wait_ns_->Record(MonotonicNs() - item.enqueue_ns);
    bool conn_dead;
    {
      std::lock_guard<std::mutex> lk(item.conn->mu);
      conn_dead = item.conn->closed;
    }
    if (conn_dead) {
      // The client disconnected while this item sat in the queue: drop it
      // at dequeue — there is nobody to answer — instead of executing.
      Count(cancelled_disconnect_, n_cancelled_disconnect_);
    } else if (item.deadline_ns != 0 && MonotonicNs() >= item.deadline_ns) {
      // Expired while queued: answer with the deadline error instead of
      // doing (now pointless) work the client has given up on.
      Count(deadline_exceeded_, n_deadline_exceeded_);
      EmitLine(item.conn,
               ErrorResponse(item.id,
                             Status::DeadlineExceeded(
                                 "request deadline (" +
                                 std::to_string(options_.request_timeout_ms) +
                                 " ms) exceeded while queued")));
    } else {
      Execute(item);
    }
    request_ns_->Record(MonotonicNs() - item.enqueue_ns);
    item.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      inflight_conn_.reset();
      inflight_cancel_.reset();
      inflight_enqueue_ns_ = 0;
    }
  }
  executor_done_.store(true, std::memory_order_release);
  WakeIo();
}

void Server::Execute(const WorkItem& item) {
  {
    std::lock_guard<std::mutex> lk(item.conn->mu);
    if (item.conn->closed) {
      Count(dropped_disconnect_, n_dropped_disconnect_);
      return;
    }
  }
  switch (item.op) {
    case WorkOp::kSleepPing:
      std::this_thread::sleep_for(std::chrono::milliseconds(item.sleep_ms));
      if (item.deadline_ns != 0 && MonotonicNs() >= item.deadline_ns) {
        Count(deadline_exceeded_, n_deadline_exceeded_);
        EmitLine(item.conn,
                 ErrorResponse(
                     item.id, Status::DeadlineExceeded(
                                  "request deadline (" +
                                  std::to_string(options_.request_timeout_ms) +
                                  " ms) exceeded")));
        return;
      }
      EmitLine(item.conn, OkPrefix(item.id) + ",\"op\":\"ping\"}");
      return;
    case WorkOp::kExtract:
      ExecuteExtract(item);
      return;
    case WorkOp::kExtractBatch:
      ExecuteExtractBatch(item);
      return;
  }
}

std::vector<std::string> Server::SessionHeaderRows(
    const engine::MultiQueryExtractor& fleet, OutputFormat format) const {
  std::vector<std::string> rows;
  if (format != OutputFormat::kTsv) return rows;
  if (fleet.num_plans() == 1) {
    rows.push_back(engine::TsvHeader(fleet.plan(0).vars()));
    return rows;
  }
  std::vector<const VarSet*> vars;
  vars.reserve(fleet.num_plans());
  for (size_t p = 0; p < fleet.num_plans(); ++p)
    vars.push_back(&fleet.plan(p).vars());
  const std::string block = engine::FleetTsvHeader(vars);
  size_t start = 0;
  while (start < block.size()) {
    const size_t nl = block.find('\n', start);
    rows.push_back(block.substr(start, nl - start));
    start = (nl == std::string::npos) ? block.size() : nl + 1;
  }
  return rows;
}

bool Server::FinishRequest(const WorkItem& item) {
  CancelToken* tok = item.cancel.get();
  if (tok == nullptr) return false;
  if (tok->peak_arena_bytes() > 0)
    request_peak_arena_bytes_->Record(tok->peak_arena_bytes());
  if (!tok->tripped()) return false;
  switch (tok->reason()) {
    case CancelToken::Reason::kCancelled:
      Count(cancelled_, n_cancelled_);
      break;
    case CancelToken::Reason::kDeadline:
      Count(deadline_exceeded_, n_deadline_exceeded_);
      break;
    case CancelToken::Reason::kResourceExhausted:
      Count(resource_exhausted_, n_resource_exhausted_);
      break;
    case CancelToken::Reason::kNone:
      break;
  }
  // On a disconnect-cancel the connection is closed and EmitLine drops
  // the line; for deadline/memory trips the client gets the error.
  EmitLine(item.conn, ErrorResponse(item.id, tok->ToStatus()));
  return true;
}

void Server::ExecuteExtract(const WorkItem& item) {
  const engine::MultiQueryExtractor& fleet = *item.fleet;
  engine::Corpus one;
  one.Add(Document(item.doc));
  batch_.set_cancel(item.cancel.get());
  const engine::MultiBatchResult result = batch_.ExtractMulti(fleet, one);
  batch_.set_cancel(nullptr);
  // A tripped token makes `result` partial garbage: the error line is
  // the whole answer.
  if (FinishRequest(item)) return;

  std::vector<std::string> rows = item.header
                                      ? SessionHeaderRows(fleet, item.format)
                                      : std::vector<std::string>();
  const bool single = fleet.num_plans() == 1;
  const Document& doc = one[0];
  std::string row;
  uint64_t mappings = 0;
  for (size_t p = 0; p < fleet.num_plans(); ++p) {
    const VarSet& vars = fleet.plan(p).vars();
    for (const Mapping& m : result.per_plan[p].per_doc[0]) {
      row.clear();
      if (single) {
        engine::AppendMappingRow(&row, item.format, item.doc_index, m, vars,
                                 doc);
      } else {
        engine::AppendFleetMappingRow(&row, item.format, p, item.doc_index, m,
                                      vars, doc);
      }
      row.pop_back();  // rows travel bare; the helper appended '\n'
      rows.push_back(row);
      ++mappings;
    }
  }
  if (!rows.empty() && !EmitRowsChunk(item.conn, item.id, rows)) return;
  EmitLine(item.conn, OkPrefix(item.id) + ",\"done\":true,\"mappings\":" +
                          std::to_string(mappings) + ",\"matched_docs\":" +
                          std::to_string(mappings > 0 ? 1 : 0) + "}");
}

void Server::ExecuteExtractBatch(const WorkItem& item) {
  const engine::MultiQueryExtractor& fleet = *item.fleet;
  const bool single = fleet.num_plans() == 1;

  std::vector<std::string> rows;
  size_t rows_bytes = 0;
  bool dead = false;
  bool expired = false;
  // Deadlines are checked at chunk boundaries (not per row): a slow
  // client that blocks the watermark, or a huge result set, can run a
  // request past its budget mid-stream, and the stream must then end in
  // an error line rather than trickle on forever.
  auto push_row = [&](std::string r) {
    rows_bytes += r.size();
    rows.push_back(std::move(r));
    if (rows_bytes >= kRowsChunkBytes) {
      if (!expired && item.deadline_ns != 0 &&
          MonotonicNs() >= item.deadline_ns) {
        expired = true;
        dead = true;  // stop producing; the error line closes the stream
      }
      // A tripped token ends the stream the same way: no more row chunks
      // leave the server, and FinishRequest appends the error line.
      if (item.cancel != nullptr && item.cancel->tripped()) dead = true;
      if (!dead && !EmitRowsChunk(item.conn, item.id, rows)) dead = true;
      rows.clear();
      rows_bytes = 0;
    }
  };
  if (item.header)
    for (std::string& h : SessionHeaderRows(fleet, item.format))
      push_row(std::move(h));

  std::string row;
  uint64_t total_mappings = 0;
  size_t matched_docs = 0;
  batch_.set_cancel(item.cancel.get());
  if (store_.has_value()) {
    engine::IndexedStats index_stats;
    const storage::NgramIndex* index =
        index_.has_value() ? &*index_ : nullptr;
    if (single) {
      const engine::BatchResult result =
          batch_.ExtractIndexed(fleet.plan(0), *store_, index, &index_stats);
      const VarSet& vars = fleet.plan(0).vars();
      for (size_t i = 0; i < result.per_doc.size() && !dead; ++i) {
        if (result.per_doc[i].empty()) continue;
        const Document doc = store_->MaterializeDoc(i);
        for (const Mapping& m : result.per_doc[i]) {
          row.clear();
          engine::AppendMappingRow(&row, item.format, i, m, vars, doc);
          row.pop_back();
          push_row(row);
        }
      }
      total_mappings = result.total_mappings;
      matched_docs = result.MatchedDocuments();
    } else {
      const engine::MultiBatchResult result =
          batch_.ExtractIndexedMulti(fleet, *store_, index, &index_stats);
      for (size_t i = 0; i < store_->num_docs() && !dead; ++i) {
        bool matched = false;
        for (size_t p = 0; p < result.per_plan.size(); ++p)
          matched = matched || !result.per_plan[p].per_doc[i].empty();
        if (!matched) continue;
        ++matched_docs;
        const Document doc = store_->MaterializeDoc(i);
        for (size_t p = 0; p < result.per_plan.size(); ++p) {
          const VarSet& vars = fleet.plan(p).vars();
          for (const Mapping& m : result.per_plan[p].per_doc[i]) {
            row.clear();
            engine::AppendFleetMappingRow(&row, item.format, p, i, m, vars,
                                          doc);
            row.pop_back();
            push_row(row);
          }
        }
      }
      total_mappings = result.total_mappings;
    }
    {
      std::lock_guard<std::mutex> lk(indexed_stats_mu_);
      have_indexed_stats_ = true;
      last_indexed_stats_ = index_stats;
    }
  } else {
    // In-memory corpus: the bounded-window streaming path — shards arrive
    // in corpus order while later shards extract, and the EmitRowsChunk
    // watermark block propagates backpressure into shard production.
    const engine::BatchExtractor::StreamStats stats =
        batch_.ExtractMultiStream(
            fleet, corpus_,
            [&](size_t doc_begin, size_t doc_end,
                std::vector<std::vector<std::vector<Mapping>>>& per_plan) {
              if (dead) return;
              for (size_t i = doc_begin; i < doc_end; ++i) {
                for (size_t p = 0; p < per_plan.size(); ++p) {
                  const VarSet& vars = fleet.plan(p).vars();
                  for (const Mapping& m : per_plan[p][i - doc_begin]) {
                    row.clear();
                    if (single) {
                      engine::AppendMappingRow(&row, item.format, i, m, vars,
                                               corpus_[i]);
                    } else {
                      engine::AppendFleetMappingRow(&row, item.format, p, i,
                                                    m, vars, corpus_[i]);
                    }
                    row.pop_back();
                    push_row(row);
                  }
                }
              }
            });
    total_mappings = stats.total_mappings;
    matched_docs = stats.matched_documents;
  }
  batch_.set_cancel(nullptr);

  // Token trips (mid-evaluation deadline, memory cap, disconnect) win
  // over the chunk-boundary deadline check: one error line, one counter.
  if (FinishRequest(item)) return;
  if (expired) {
    Count(deadline_exceeded_, n_deadline_exceeded_);
    EmitLine(item.conn,
             ErrorResponse(item.id,
                           Status::DeadlineExceeded(
                               "request deadline (" +
                               std::to_string(options_.request_timeout_ms) +
                               " ms) exceeded mid-stream")));
    return;
  }
  if (!dead && !rows.empty() && !EmitRowsChunk(item.conn, item.id, rows))
    dead = true;
  if (dead) return;
  EmitLine(item.conn, OkPrefix(item.id) + ",\"done\":true,\"mappings\":" +
                          std::to_string(total_mappings) +
                          ",\"matched_docs\":" + std::to_string(matched_docs) +
                          "}");
}

bool Server::EmitLine(const std::shared_ptr<Connection>& conn,
                      std::string line) {
  line += '\n';
  std::unique_lock<std::mutex> lk(conn->mu);
  conn->out_cv.wait(lk, [&] {
    return conn->closed || stop_.load(std::memory_order_acquire) ||
           conn->out_buf.size() < options_.output_high_watermark;
  });
  if (conn->closed || stop_.load(std::memory_order_acquire)) return false;
  conn->out_buf += line;
  lk.unlock();
  WakeIo();
  return true;
}

bool Server::EmitRowsChunk(const std::shared_ptr<Connection>& conn,
                           int64_t id, const std::vector<std::string>& rows) {
  std::string chunk = "{\"id\":" + std::to_string(id) + ",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) chunk += ',';
    AppendJsonString(&chunk, rows[i]);
  }
  chunk += "],\"done\":false}";
  return EmitLine(conn, std::move(chunk));
}

engine::ServerStatsReport Server::StatsSnapshot() const {
  engine::ServerStatsReport s;
  s.uptime_ns = started_ ? MonotonicNs() - start_ns_ : 0;
  s.connections_total = n_connections_.load(std::memory_order_relaxed);
  s.connections_open = open_conns_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.admitted = n_admitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full =
      n_rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_inflight_cap =
      n_rejected_inflight_cap_.load(std::memory_order_relaxed);
  s.rejected_draining = n_rejected_draining_.load(std::memory_order_relaxed);
  s.dropped_disconnect =
      n_dropped_disconnect_.load(std::memory_order_relaxed);
  s.deadline_exceeded = n_deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = n_cancelled_.load(std::memory_order_relaxed);
  s.resource_exhausted =
      n_resource_exhausted_.load(std::memory_order_relaxed);
  s.cancelled_disconnect =
      n_cancelled_disconnect_.load(std::memory_order_relaxed);
  s.reaped_idle = n_reaped_idle_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_acquire);
  if (s.degraded) {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    s.degraded_reason = degraded_reason_;
  }
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    s.queue_depth = queue_.size();
    // The oldest unfinished item is the one executing now, else the
    // queue front (FIFO order makes the front the oldest).
    uint64_t oldest_ns = inflight_enqueue_ns_;
    if (oldest_ns == 0 && !queue_.empty())
      oldest_ns = queue_.front().enqueue_ns;
    if (oldest_ns != 0)
      s.oldest_inflight_age_ms = (MonotonicNs() - oldest_ns) / 1'000'000;
  }
  s.queue_capacity = options_.queue_capacity;
  s.draining = draining();
  return s;
}

}  // namespace server
}  // namespace spanners
