#include "server/client.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "obs/metrics.h"
#include "server/protocol.h"

namespace spanners {
namespace server {

namespace {

obs::Counter* RetriesMetric() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("client.retries");
  return c;
}

Status SetIoTimeout(int fd, uint32_t io_timeout_ms) {
  if (io_timeout_ms == 0) return Status::OK();
  timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = suseconds_t(io_timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0)
    return Status::Internal(std::string("setsockopt timeout: ") +
                            std::strerror(errno));
  return Status::OK();
}

// Counter-indexed splitmix64 — the deterministic jitter source.
uint64_t SplitMix64(uint64_t s, uint64_t i) {
  uint64_t z = s + (i + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Decorrelated jitter (the AWS recipe): sleep drawn uniformly from
/// [base, 3·prev], capped. Spreads synchronized clients apart while
/// still growing the backoff exponentially in expectation.
uint32_t NextBackoffMs(const RetryPolicy& policy, uint32_t* prev_ms,
                       uint64_t* draws) {
  const uint32_t base = policy.base_backoff_ms > 0 ? policy.base_backoff_ms : 1;
  const uint64_t prev = *prev_ms > base ? *prev_ms : base;
  const uint64_t hi = prev * 3;
  const uint64_t draw = SplitMix64(policy.jitter_seed, (*draws)++);
  uint64_t sleep = base + draw % (hi - base + 1);
  if (policy.max_backoff_ms > 0 && sleep > policy.max_backoff_ms)
    sleep = policy.max_backoff_ms;
  *prev_ms = uint32_t(sleep);
  return uint32_t(sleep);
}

}  // namespace

Result<Client> Client::Connect(const std::string& socket_path,
                               const ConnectOptions& options) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument("socket path too long: " + socket_path);
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());

  int rc;
  {
    const fault::Action fa = SPANNERS_FAULT("client.connect");
    if (fa.fail) {
      errno = fa.err;
      rc = -1;
    } else {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    }
  }
  // On AF_UNIX, EAGAIN means the listen backlog is full — the connection
  // was NOT initiated, so polling would misreport success. It is a
  // retryable overload signal, exactly like an admission rejection.
  if (rc != 0 && errno == EAGAIN) {
    ::close(fd);
    return Status::Unavailable("connect " + socket_path +
                               ": listen backlog full");
  }
  if (rc != 0 && errno == EINPROGRESS) {
    // In progress: wait for writability under the connect deadline, then
    // read the final verdict.
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = options.connect_timeout_ms == 0
                            ? -1
                            : int(options.connect_timeout_ms);
    int pr;
    do {
      pr = ::poll(&pfd, 1, timeout);
    } while (pr < 0 && errno == EINTR);
    if (pr == 0) {
      ::close(fd);
      return Status::DeadlineExceeded(
          "connect " + socket_path + ": timed out after " +
          std::to_string(options.connect_timeout_ms) + " ms");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (pr < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      if (soerr != 0) errno = soerr;
      rc = -1;
    } else {
      rc = 0;
    }
  }
  if (rc != 0) {
    const Status s = Status::Unavailable("connect " + socket_path + ": " +
                                         std::strerror(errno));
    ::close(fd);
    return s;
  }

  // Back to blocking mode; deadlines come from SO_RCVTIMEO/SO_SNDTIMEO.
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    const Status s =
        Status::Internal(std::string("fcntl: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const Status timeout_status = SetIoTimeout(fd, options.io_timeout_ms);
  if (!timeout_status.ok()) {
    ::close(fd);
    return timeout_status;
  }
  return Client(fd, socket_path, options);
}

Result<Client> Client::ConnectWithRetry(const std::string& socket_path,
                                        const ConnectOptions& options,
                                        const RetryPolicy& policy) {
  uint32_t prev_ms = 0;
  uint64_t draws = 0;
  for (uint32_t attempt = 0;; ++attempt) {
    Result<Client> client = Connect(socket_path, options);
    if (client.ok()) {
      Client c = std::move(client).value();
      c.set_retry_policy(policy);
      c.retries_performed_ = attempt;
      return c;
    }
    if (attempt >= policy.max_retries ||
        client.status().code() != StatusCode::kUnavailable)
      return client.status();
    uint32_t sleep_ms = NextBackoffMs(policy, &prev_ms, &draws);
    if (client.status().retry_after_ms() > sleep_ms)
      sleep_ms = client.status().retry_after_ms();
    if (obs::Enabled()) RetriesMetric()->Add();
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Client::Client(Client&& o) noexcept
    : fd_(o.fd_),
      next_id_(o.next_id_),
      read_buf_(std::move(o.read_buf_)),
      socket_path_(std::move(o.socket_path_)),
      copts_(o.copts_),
      policy_(o.policy_),
      registered_patterns_(std::move(o.registered_patterns_)),
      retries_performed_(o.retries_performed_),
      prev_backoff_ms_(o.prev_backoff_ms_),
      backoff_draws_(o.backoff_draws_) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    next_id_ = o.next_id_;
    read_buf_ = std::move(o.read_buf_);
    socket_path_ = std::move(o.socket_path_);
    copts_ = o.copts_;
    policy_ = o.policy_;
    registered_patterns_ = std::move(o.registered_patterns_);
    retries_performed_ = o.retries_performed_;
    prev_backoff_ms_ = o.prev_backoff_ms_;
    backoff_draws_ = o.backoff_draws_;
    o.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  read_buf_.clear();
}

Status Client::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string out(line);
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const fault::Action fa = SPANNERS_FAULT("client.send");
    ssize_t n;
    if (fa.fail) {
      errno = fa.err;
      n = -1;
    } else {
      n = ::send(fd_, out.data() + off,
                 std::min(out.size() - off, fa.clamp), MSG_NOSIGNAL);
    }
    if (n > 0) {
      off += size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired; a partially-sent line cannot be resumed.
      Close();
      return Status::DeadlineExceeded("send: timed out after " +
                                      std::to_string(copts_.io_timeout_ms) +
                                      " ms");
    }
    const Status s =
        Status::Unavailable(std::string("send: ") + std::strerror(errno));
    Close();
    return s;
  }
  return Status::OK();
}

Result<JsonValue> Client::ReadResponseLine() {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  for (;;) {
    const size_t nl = read_buf_.find('\n');
    if (nl != std::string::npos) {
      Result<JsonValue> parsed =
          ParseJson(std::string_view(read_buf_.data(), nl));
      read_buf_.erase(0, nl + 1);
      return parsed;
    }
    if (read_buf_.size() > kMaxLineBytes)
      return Status::Internal("response line exceeds protocol limit");
    char buf[65536];
    const fault::Action fa = SPANNERS_FAULT("client.recv");
    ssize_t n;
    if (fa.fail) {
      errno = fa.err;
      n = -1;
    } else {
      n = ::read(fd_, buf, std::min(sizeof(buf), fa.clamp));
    }
    if (n > 0) {
      read_buf_.append(buf, size_t(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Close();
      return Status::DeadlineExceeded("read: timed out after " +
                                      std::to_string(copts_.io_timeout_ms) +
                                      " ms");
    }
    const std::string what =
        n == 0 ? "server closed the connection" +
                     (read_buf_.empty() ? std::string() : " mid-response")
               : std::string("read: ") + std::strerror(errno);
    Close();
    return Status::Unavailable(what);
  }
}

Status Client::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (socket_path_.empty())
    return Status::InvalidArgument("client has no socket path to reconnect");
  SPANNERS_ASSIGN_OR_RETURN(Client fresh, Connect(socket_path_, copts_));
  // Adopt the new fd; session-level state (ids, policy, patterns) stays.
  fd_ = fresh.fd_;
  fresh.fd_ = -1;
  read_buf_.clear();
  // Replay the session's registrations so the server-side fleet matches
  // what the caller built up before the connection died.
  for (const std::string& pattern : registered_patterns_) {
    Result<int64_t> handle = RegisterOnServer(pattern);
    if (!handle.ok()) {
      Close();
      return handle.status();
    }
  }
  return Status::OK();
}

template <typename Op>
Status Client::Retrying(const Op& op) {
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = EnsureConnected();
    if (st.ok()) st = op();
    if (st.ok() || st.code() != StatusCode::kUnavailable ||
        attempt >= policy_.max_retries)
      return st;
    uint32_t sleep_ms =
        NextBackoffMs(policy_, &prev_backoff_ms_, &backoff_draws_);
    if (st.retry_after_ms() > sleep_ms) sleep_ms = st.retry_after_ms();
    ++retries_performed_;
    if (obs::Enabled()) RetriesMetric()->Add();
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

Status Client::Ping(uint64_t sleep_ms) {
  return Retrying([&]() -> Status {
    const int64_t id = NextId();
    std::string req = "{\"op\":\"ping\",\"id\":" + std::to_string(id);
    if (sleep_ms > 0) req += ",\"sleep_ms\":" + std::to_string(sleep_ms);
    req += "}";
    SPANNERS_RETURN_NOT_OK(SendLine(req));
    Result<JsonValue> resp = ReadResponseLine();
    SPANNERS_RETURN_NOT_OK(resp.status());
    return StatusFromResponse(*resp);
  });
}

Result<int64_t> Client::RegisterOnServer(const std::string& pattern) {
  const int64_t id = NextId();
  std::string req = "{\"op\":\"register\",\"id\":" + std::to_string(id) +
                    ",\"pattern\":";
  AppendJsonString(&req, pattern);
  req += "}";
  SPANNERS_RETURN_NOT_OK(SendLine(req));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  SPANNERS_RETURN_NOT_OK(StatusFromResponse(*resp));
  const int64_t handle = resp->IntOr("handle", -1);
  if (handle < 0) return Status::Internal("register response lacks a handle");
  return handle;
}

Result<int64_t> Client::Register(const std::string& pattern) {
  int64_t handle = -1;
  const Status st = Retrying([&]() -> Status {
    Result<int64_t> r = RegisterOnServer(pattern);
    SPANNERS_RETURN_NOT_OK(r.status());
    handle = r.value();
    return Status::OK();
  });
  SPANNERS_RETURN_NOT_OK(st);
  registered_patterns_.push_back(pattern);
  return handle;
}

Status Client::Unregister(int64_t handle) {
  const int64_t id = NextId();
  const std::string req = "{\"op\":\"unregister\",\"id\":" +
                          std::to_string(id) +
                          ",\"handle\":" + std::to_string(handle) + "}";
  SPANNERS_RETURN_NOT_OK(SendLine(req));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  const Status st = StatusFromResponse(*resp);
  // The handle → pattern association is positional only on the server;
  // conservatively forget ALL replay state once the session shape is
  // edited by hand (reconnect replay would re-create stale handles).
  if (st.ok()) registered_patterns_.clear();
  return st;
}

Status Client::RunStreaming(const std::string& request, const RowFn& on_row,
                            JsonValue* final_response, uint64_t* skip_rows) {
  SPANNERS_RETURN_NOT_OK(SendLine(request));
  uint64_t seen = 0;
  for (;;) {
    Result<JsonValue> line = ReadResponseLine();
    SPANNERS_RETURN_NOT_OK(line.status());
    const JsonValue* rows = line->Find("rows");
    if (rows != nullptr && rows->is_array() &&
        !line->BoolOr("done", false)) {
      for (const JsonValue& r : rows->items()) {
        if (!r.is_string()) continue;
        // Served output is deterministic, so a retried stream replays
        // byte-identically from the start; rows the previous attempt
        // already handed to on_row are skipped, not re-delivered.
        if (seen++ < *skip_rows) continue;
        *skip_rows = seen;
        if (on_row) on_row(r.AsString());
      }
      continue;
    }
    SPANNERS_RETURN_NOT_OK(StatusFromResponse(*line));
    *final_response = std::move(*line);
    return Status::OK();
  }
}

Result<Client::ExtractSummary> Client::Extract(std::string_view doc,
                                               size_t doc_index,
                                               engine::OutputFormat format,
                                               bool header,
                                               const RowFn& on_row) {
  std::string req = "{\"op\":\"extract\",\"id\":" + std::to_string(NextId()) +
                    ",\"doc\":";
  AppendJsonString(&req, doc);
  req += ",\"doc_index\":" + std::to_string(doc_index) + ",\"format\":\"";
  req += format == engine::OutputFormat::kTsv ? "tsv" : "json";
  req += header ? "\",\"header\":true}" : "\",\"header\":false}";
  JsonValue final_response;
  uint64_t delivered = 0;
  SPANNERS_RETURN_NOT_OK(Retrying([&]() -> Status {
    return RunStreaming(req, on_row, &final_response, &delivered);
  }));
  ExtractSummary summary;
  summary.mappings = uint64_t(final_response.IntOr("mappings", 0));
  summary.matched_docs = uint64_t(final_response.IntOr("matched_docs", 0));
  return summary;
}

Result<Client::ExtractSummary> Client::ExtractBatch(
    engine::OutputFormat format, bool header, bool all_resident,
    const RowFn& on_row) {
  std::string req = "{\"op\":\"extract_batch\",\"id\":" +
                    std::to_string(NextId()) + ",\"format\":\"";
  req += format == engine::OutputFormat::kTsv ? "tsv" : "json";
  req += header ? "\",\"header\":true" : "\",\"header\":false";
  if (all_resident) req += ",\"all\":true";
  req += "}";
  JsonValue final_response;
  uint64_t delivered = 0;
  SPANNERS_RETURN_NOT_OK(Retrying([&]() -> Status {
    return RunStreaming(req, on_row, &final_response, &delivered);
  }));
  ExtractSummary summary;
  summary.mappings = uint64_t(final_response.IntOr("mappings", 0));
  summary.matched_docs = uint64_t(final_response.IntOr("matched_docs", 0));
  return summary;
}

Result<JsonValue> Client::Stats() {
  JsonValue out;
  const Status st = Retrying([&]() -> Status {
    SPANNERS_RETURN_NOT_OK(
        SendLine("{\"op\":\"stats\",\"id\":" + std::to_string(NextId()) +
                 "}"));
    Result<JsonValue> resp = ReadResponseLine();
    SPANNERS_RETURN_NOT_OK(resp.status());
    SPANNERS_RETURN_NOT_OK(StatusFromResponse(*resp));
    out = std::move(*resp);
    return Status::OK();
  });
  SPANNERS_RETURN_NOT_OK(st);
  return out;
}

Status Client::Drain() {
  // Deliberately not retried: drain is the one non-idempotent op (a retry
  // against a fresh instance would drain it too).
  const int64_t id = NextId();
  SPANNERS_RETURN_NOT_OK(
      SendLine("{\"op\":\"drain\",\"id\":" + std::to_string(id) + "}"));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  return StatusFromResponse(*resp);
}

}  // namespace server
}  // namespace spanners
