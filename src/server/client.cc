#include "server/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "server/protocol.h"

namespace spanners {
namespace server {

Result<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Status::InvalidArgument("socket path too long: " + socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::Unavailable("connect " + socket_path + ": " +
                                         std::strerror(errno));
    ::close(fd);
    return s;
  }
  return Client(fd);
}

Client::Client(Client&& o) noexcept
    : fd_(o.fd_), next_id_(o.next_id_), read_buf_(std::move(o.read_buf_)) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    next_id_ = o.next_id_;
    read_buf_ = std::move(o.read_buf_);
    o.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status Client::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string out(line);
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<JsonValue> Client::ReadResponseLine() {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  for (;;) {
    const size_t nl = read_buf_.find('\n');
    if (nl != std::string::npos) {
      Result<JsonValue> parsed =
          ParseJson(std::string_view(read_buf_.data(), nl));
      read_buf_.erase(0, nl + 1);
      return parsed;
    }
    if (read_buf_.size() > kMaxLineBytes)
      return Status::Internal("response line exceeds protocol limit");
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      read_buf_.append(buf, size_t(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0)
      return Status::Internal("server closed the connection" +
                              (read_buf_.empty()
                                   ? std::string()
                                   : " mid-response"));
    return Status::Internal(std::string("read: ") + std::strerror(errno));
  }
}

Status Client::Ping(uint64_t sleep_ms) {
  const int64_t id = NextId();
  std::string req = "{\"op\":\"ping\",\"id\":" + std::to_string(id);
  if (sleep_ms > 0) req += ",\"sleep_ms\":" + std::to_string(sleep_ms);
  req += "}";
  SPANNERS_RETURN_NOT_OK(SendLine(req));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  return StatusFromResponse(*resp);
}

Result<int64_t> Client::Register(const std::string& pattern) {
  const int64_t id = NextId();
  std::string req = "{\"op\":\"register\",\"id\":" + std::to_string(id) +
                    ",\"pattern\":";
  AppendJsonString(&req, pattern);
  req += "}";
  SPANNERS_RETURN_NOT_OK(SendLine(req));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  SPANNERS_RETURN_NOT_OK(StatusFromResponse(*resp));
  const int64_t handle = resp->IntOr("handle", -1);
  if (handle < 0) return Status::Internal("register response lacks a handle");
  return handle;
}

Status Client::Unregister(int64_t handle) {
  const int64_t id = NextId();
  const std::string req = "{\"op\":\"unregister\",\"id\":" +
                          std::to_string(id) +
                          ",\"handle\":" + std::to_string(handle) + "}";
  SPANNERS_RETURN_NOT_OK(SendLine(req));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  return StatusFromResponse(*resp);
}

Status Client::RunStreaming(std::string request, const RowFn& on_row,
                            JsonValue* final_response) {
  SPANNERS_RETURN_NOT_OK(SendLine(request));
  for (;;) {
    Result<JsonValue> line = ReadResponseLine();
    SPANNERS_RETURN_NOT_OK(line.status());
    const JsonValue* rows = line->Find("rows");
    if (rows != nullptr && rows->is_array() &&
        !line->BoolOr("done", false)) {
      if (on_row)
        for (const JsonValue& r : rows->items())
          if (r.is_string()) on_row(r.AsString());
      continue;
    }
    SPANNERS_RETURN_NOT_OK(StatusFromResponse(*line));
    *final_response = std::move(*line);
    return Status::OK();
  }
}

Result<Client::ExtractSummary> Client::Extract(std::string_view doc,
                                               size_t doc_index,
                                               engine::OutputFormat format,
                                               bool header,
                                               const RowFn& on_row) {
  const int64_t id = NextId();
  std::string req = "{\"op\":\"extract\",\"id\":" + std::to_string(id) +
                    ",\"doc\":";
  AppendJsonString(&req, doc);
  req += ",\"doc_index\":" + std::to_string(doc_index) + ",\"format\":\"";
  req += format == engine::OutputFormat::kTsv ? "tsv" : "json";
  req += header ? "\",\"header\":true}" : "\",\"header\":false}";
  JsonValue final_response;
  SPANNERS_RETURN_NOT_OK(
      RunStreaming(std::move(req), on_row, &final_response));
  ExtractSummary summary;
  summary.mappings = uint64_t(final_response.IntOr("mappings", 0));
  summary.matched_docs = uint64_t(final_response.IntOr("matched_docs", 0));
  return summary;
}

Result<Client::ExtractSummary> Client::ExtractBatch(
    engine::OutputFormat format, bool header, bool all_resident,
    const RowFn& on_row) {
  const int64_t id = NextId();
  std::string req = "{\"op\":\"extract_batch\",\"id\":" + std::to_string(id) +
                    ",\"format\":\"";
  req += format == engine::OutputFormat::kTsv ? "tsv" : "json";
  req += header ? "\",\"header\":true" : "\",\"header\":false";
  if (all_resident) req += ",\"all\":true";
  req += "}";
  JsonValue final_response;
  SPANNERS_RETURN_NOT_OK(
      RunStreaming(std::move(req), on_row, &final_response));
  ExtractSummary summary;
  summary.mappings = uint64_t(final_response.IntOr("mappings", 0));
  summary.matched_docs = uint64_t(final_response.IntOr("matched_docs", 0));
  return summary;
}

Result<JsonValue> Client::Stats() {
  const int64_t id = NextId();
  SPANNERS_RETURN_NOT_OK(
      SendLine("{\"op\":\"stats\",\"id\":" + std::to_string(id) + "}"));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  SPANNERS_RETURN_NOT_OK(StatusFromResponse(*resp));
  return resp;
}

Status Client::Drain() {
  const int64_t id = NextId();
  SPANNERS_RETURN_NOT_OK(
      SendLine("{\"op\":\"drain\",\"id\":" + std::to_string(id) + "}"));
  Result<JsonValue> resp = ReadResponseLine();
  SPANNERS_RETURN_NOT_OK(resp.status());
  return StatusFromResponse(*resp);
}

}  // namespace server
}  // namespace spanners
