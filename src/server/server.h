// spanexd's resident extraction service: one persistent process owning
// the PlanCache, the generation-checked fleet (engine::CachedFleet), and
// a corpus — in-memory, or an mmap'd SegmentStore with its optional
// trigram posting index — serving concurrent clients over a local
// AF_UNIX stream socket with the JSONL protocol of server/protocol.h.
//
// Architecture (two threads plus the extraction pool):
//
//   clients ──► poll() I/O thread ──► bounded admission queue ──► executor
//                 │   (accept, read, parse, control ops,           thread
//                 │    partial-write buffering)                      │
//                 │                                                  ▼
//                 ◄── per-connection output buffers ◄── BatchExtractor
//                      (watermark backpressure)          (work-stealing
//                                                         ThreadPool)
//
// The I/O thread owns every socket and all session state (registered
// plan handles → PlanCache entries); it answers control-plane requests
// (ping, register, unregister, stats, drain) inline and routes
// extraction work (extract, extract_batch, sleeping pings) through the
// admission queue. Admission is where backpressure lives:
//
//   - queue full                → Unavailable + retry_after_ms
//   - per-client in-flight cap  → Unavailable + retry_after_ms
//   - draining                  → Unavailable + retry_after_ms
//
// The executor thread drains the queue in FIFO order and runs each item
// on one shared BatchExtractor (requests serialize at the batch level —
// the extractor is non-reentrant by contract — while each request
// parallelizes internally across the pool). Response rows stream back in
// bounded chunks; a connection whose output buffer exceeds the high
// watermark blocks the executor until the I/O thread drains it, so a
// slow reader throttles its own extraction instead of ballooning server
// memory (the bounded-window ExtractMultiStream machinery then holds
// back shard production too).
//
// Graceful drain (SIGTERM via RequestDrain(), or the `drain` op): stop
// accepting connections, refuse new admissions with Unavailable, finish
// every admitted item, flush every response buffer (bounded by a
// deadline against never-reading clients), exit 0.
//
// Instrumentation: server.* counters/histograms in the global
// obs::MetricsRegistry (catalogue in README "Server mode") plus an
// always-on ServerStatsReport snapshot surfaced through the stats op's
// EngineReport.
#ifndef SPANNERS_SERVER_SERVER_H_
#define SPANNERS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/batch_extractor.h"
#include "engine/corpus.h"
#include "engine/format.h"
#include "engine/multi_query.h"
#include "engine/plan_cache.h"
#include "engine/report.h"
#include "obs/metrics.h"
#include "server/json.h"
#include "storage/ngram_index.h"
#include "storage/segment.h"

namespace spanners {
namespace server {

struct ServerOptions {
  /// AF_UNIX socket path; a stale file at the path is unlinked on Start.
  std::string socket_path;
  /// Admitted-but-not-executing work items the queue holds before
  /// rejecting with Unavailable.
  size_t queue_capacity = 64;
  /// Admitted (queued or executing) items one connection may hold.
  size_t max_inflight_per_client = 8;
  /// Backoff hint attached to every Unavailable rejection.
  uint32_t retry_after_ms = 50;
  /// Extraction pool width (0 = hardware concurrency).
  size_t num_threads = 0;
  size_t plan_cache_capacity = 128;
  /// One request line may not exceed this (oversized ⇒ error + close).
  size_t max_request_bytes = 16u << 20;
  /// Pending-output bytes per connection above which the executor blocks
  /// until the I/O thread drains the buffer (slow-reader backpressure).
  size_t output_high_watermark = 4u << 20;
  /// After drain, wait at most this long for clients to read buffered
  /// responses before force-closing them.
  uint32_t drain_flush_timeout_ms = 10'000;
  /// Per-request deadline measured from admission. A request still queued
  /// (or still streaming) past its deadline is answered with
  /// Status::DeadlineExceeded instead of (more) rows. 0 = no deadline.
  uint32_t request_timeout_ms = 0;
  /// Connections with no admitted work, no buffered output and no traffic
  /// for this long are reaped (closed) so a connect-and-stall client
  /// cannot hold an fd forever. 0 = never reap.
  uint32_t idle_timeout_ms = 0;
  /// Cap on fleet-owned memory (the shared Aho–Corasick gate). A fleet
  /// whose footprint would exceed this is rebuilt without the shared gate
  /// and the server marks itself degraded. 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// Per-request cap on evaluation arena bytes. A request whose extraction
  /// allocates past the cap is aborted mid-evaluation and answered with
  /// Status::ResourceExhausted instead of growing without bound. 0 = no cap.
  size_t request_memory_cap = 0;
};

class Server {
 public:
  /// Serves an in-memory corpus (extract_batch scans it).
  Server(ServerOptions options, engine::Corpus corpus);
  /// Serves a persisted segment; with an index, extract_batch runs the
  /// posting-list-gated path (byte-identical to the scan).
  Server(ServerOptions options, storage::SegmentStore store,
         std::optional<storage::NgramIndex> index);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on options.socket_path and starts the executor.
  /// After OK, clients may connect (Serve() need not be running yet —
  /// connections queue in the listen backlog).
  Status Start();

  /// Runs the I/O loop until a drain completes. Returns the process exit
  /// code: 0 after a clean drain. Call from one thread only, after
  /// Start().
  int Serve();

  /// Begins a graceful drain. Thread-safe and async-signal-safe after
  /// Start() (one atomic store + one pipe write), so a SIGTERM handler
  /// may call it directly.
  void RequestDrain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  const ServerOptions& options() const { return options_; }
  engine::PlanCache& plan_cache() { return cache_; }
  size_t corpus_docs() const;

  /// Point-in-time server-side stats (always on, independent of
  /// obs::Enabled()).
  engine::ServerStatsReport StatsSnapshot() const;

  /// Switches the server into degraded mode: serving continues (answers
  /// stay byte-identical — full scans instead of indexed/gated paths) and
  /// stats report degraded:true with this reason. First call wins; later
  /// calls with new reasons append. Thread-safe; spanexd calls this when
  /// the posting index fails to open, the fleet builder when the memory
  /// budget trips.
  void MarkDegraded(const std::string& reason);
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

 private:
  struct Connection;
  enum class WorkOp { kSleepPing, kExtract, kExtractBatch };
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    int64_t id = 0;
    WorkOp op = WorkOp::kSleepPing;
    uint64_t sleep_ms = 0;
    std::string doc;
    size_t doc_index = 0;
    engine::OutputFormat format = engine::OutputFormat::kTsv;
    bool header = false;
    /// Immutable fleet snapshot taken at admission (session plans, or the
    /// cache-wide CachedFleet for "all" batches).
    std::shared_ptr<const engine::MultiQueryExtractor> fleet;
    uint64_t enqueue_ns = 0;
    /// Absolute monotonic deadline (0 = none), set at admission from
    /// options_.request_timeout_ms.
    uint64_t deadline_ns = 0;
    /// The request's cancellation token, armed at admission with the
    /// deadline and the per-request memory cap. CloseConn cancels it so a
    /// disconnect aborts queued AND in-flight evaluation; the executor
    /// hands it to the BatchExtractor for the duration of the request.
    std::shared_ptr<CancelToken> cancel;
  };

  // --- I/O thread ---------------------------------------------------
  void AcceptConnections();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string_view line);
  void HandleRegister(const std::shared_ptr<Connection>& conn, int64_t id,
                      const JsonValue& req);
  void HandleUnregister(const std::shared_ptr<Connection>& conn, int64_t id,
                        const JsonValue& req);
  void HandleStats(const std::shared_ptr<Connection>& conn, int64_t id);
  Status AdmitWork(const std::shared_ptr<Connection>& conn, WorkItem item);
  /// Appends a response line to the connection's output buffer and
  /// attempts an immediate non-blocking flush. I/O thread only.
  void SendNow(const std::shared_ptr<Connection>& conn, std::string line);
  /// Non-blocking socket write of whatever is buffered; closes the
  /// connection on a hard error. Returns false when the connection died.
  bool FlushConn(const std::shared_ptr<Connection>& conn);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void BeginDrain();
  void WakeIo();
  /// Closes connections idle past options_.idle_timeout_ms (no admitted
  /// work, empty output buffer, no traffic). I/O thread only.
  void ReapIdleConns(uint64_t now_ns);

  /// The session's fleet over its registered plans (registration order),
  /// rebuilt only when the set changed since the last build.
  std::shared_ptr<const engine::MultiQueryExtractor> SessionFleet(
      const std::shared_ptr<Connection>& conn);

  // --- executor thread ----------------------------------------------
  void ExecutorLoop();
  void Execute(const WorkItem& item);
  void ExecuteExtract(const WorkItem& item);
  void ExecuteExtractBatch(const WorkItem& item);
  /// Post-extraction epilogue: records the request's peak arena bytes
  /// and, when its token tripped, emits the matching error line and bumps
  /// the matching counter. True ⇒ the request ended in an error; the
  /// caller must not surface rows or a done line.
  bool FinishRequest(const WorkItem& item);
  /// Blocks while the connection's output buffer is above the high
  /// watermark; false when the connection closed (drop the output).
  bool EmitLine(const std::shared_ptr<Connection>& conn, std::string line);
  /// {"id":N,"rows":[…],"done":false} from bare (newline-free) rows.
  bool EmitRowsChunk(const std::shared_ptr<Connection>& conn, int64_t id,
                     const std::vector<std::string>& rows);

  std::vector<std::string> SessionHeaderRows(
      const engine::MultiQueryExtractor& fleet,
      engine::OutputFormat format) const;

  ServerOptions options_;

  // Exactly one of corpus_ / store_ is populated.
  engine::Corpus corpus_;
  std::optional<storage::SegmentStore> store_;
  std::optional<storage::NgramIndex> index_;

  engine::PlanCache cache_;
  engine::CachedFleet cached_fleet_;
  engine::BatchExtractor batch_;

  void InitMetrics();
  /// Bumps a registry counter plus its per-server mirror (mirrors keep
  /// StatsSnapshot per-instance — the registry is process-global).
  static void Count(obs::Counter* c, std::atomic<uint64_t>& mirror) {
    c->Add();
    mirror.fetch_add(1, std::memory_order_relaxed);
  }

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  bool started_ = false;
  uint64_t start_ns_ = 0;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Admission queue (queue_mu_ guards queue_; the cv wakes the executor;
  // mutable so StatsSnapshot can read the depth).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  // The item the executor is currently running (guarded by queue_mu_;
  // empty between items). CloseConn cancels inflight_cancel_ when the
  // dying connection owns it; StatsSnapshot derives the oldest
  // in-flight age from inflight_enqueue_ns_ and the queue front.
  std::shared_ptr<Connection> inflight_conn_;
  std::shared_ptr<CancelToken> inflight_cancel_;
  uint64_t inflight_enqueue_ns_ = 0;

  std::thread executor_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> executor_done_{false};
  std::atomic<bool> stop_{false};
  uint64_t drain_deadline_ns_ = 0;

  // Last extract_batch's index accounting (stats endpoint).
  mutable std::mutex indexed_stats_mu_;
  bool have_indexed_stats_ = false;
  engine::IndexedStats last_indexed_stats_;

  // server.* metrics: counters are always-on (request-rate bookkeeping is
  // the service's own product, not hot-loop telemetry); histograms record
  // unconditionally too — a handful of fetch_adds per request.
  obs::Counter* connections_;
  obs::Counter* requests_;
  obs::Counter* admitted_;
  obs::Counter* rejected_queue_full_;
  obs::Counter* rejected_inflight_cap_;
  obs::Counter* rejected_draining_;
  obs::Counter* dropped_disconnect_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* cancelled_;
  obs::Counter* resource_exhausted_;
  obs::Counter* cancelled_disconnect_;
  obs::Counter* reaped_idle_;
  obs::Counter* degraded_activations_;
  obs::Histogram* queue_depth_;
  obs::Histogram* queue_wait_ns_;
  obs::Histogram* request_ns_;
  obs::Histogram* request_peak_arena_bytes_;

  // Per-server mirrors of the counters above (StatsSnapshot reads these,
  // not the process-global registry) plus the open-connection gauge.
  std::atomic<uint64_t> n_connections_{0};
  std::atomic<uint64_t> n_requests_{0};
  std::atomic<uint64_t> n_admitted_{0};
  std::atomic<uint64_t> n_rejected_queue_full_{0};
  std::atomic<uint64_t> n_rejected_inflight_cap_{0};
  std::atomic<uint64_t> n_rejected_draining_{0};
  std::atomic<uint64_t> n_dropped_disconnect_{0};
  std::atomic<uint64_t> n_deadline_exceeded_{0};
  std::atomic<uint64_t> n_cancelled_{0};
  std::atomic<uint64_t> n_resource_exhausted_{0};
  std::atomic<uint64_t> n_cancelled_disconnect_{0};
  std::atomic<uint64_t> n_reaped_idle_{0};
  std::atomic<size_t> open_conns_{0};

  // Degraded-mode state (MarkDegraded / StatsSnapshot).
  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_mu_;
  std::string degraded_reason_;  // guarded by degraded_mu_
};

}  // namespace server
}  // namespace spanners

#endif  // SPANNERS_SERVER_SERVER_H_
