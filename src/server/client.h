// Blocking spanexd client over the JSONL protocol (server/protocol.h).
// One Client is one connection / one server session: registered handles
// live on the server until Unregister or disconnect. Used by
// `spanex --connect`, the server tests, and bench_server.
//
// The typed helpers (Ping/Register/Extract/…) each send one request and
// read until its final response, invoking `on_row` for every streamed
// row. The raw SendLine/ReadResponseLine pair is for callers that want
// pipelining — e.g. the backpressure test fires queue_capacity+N sleeping
// pings before reading any response.
//
// Failure model. Every syscall has a deadline (ConnectOptions): connect
// runs non-blocking against connect_timeout_ms, reads/sends carry
// SO_RCVTIMEO/SO_SNDTIMEO of io_timeout_ms; an expired deadline returns
// Status::DeadlineExceeded. Transport-level failures — a dead socket
// file, ECONNRESET/EPIPE, the server closing mid-response — come back as
// Status::Unavailable and close the connection (the protocol stream is
// not resumable mid-line). With a RetryPolicy armed, the typed helpers
// retry Unavailable failures transparently: capped exponential backoff
// with decorrelated jitter (never less than a server-provided
// retry_after_ms hint), one reconnect + plan re-registration per attempt,
// and — because served results are deterministic — already-delivered rows
// of an interrupted stream are skipped on the retry, so `on_row` sees
// every row exactly once. All retried operations are idempotent.
//
// Not thread-safe: one Client per thread.
#ifndef SPANNERS_SERVER_CLIENT_H_
#define SPANNERS_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/format.h"
#include "server/json.h"

namespace spanners {
namespace server {

/// Per-syscall deadlines of one connection. 0 disables a deadline.
struct ConnectOptions {
  uint32_t connect_timeout_ms = 5'000;
  /// Applies to every read and send after the connect (SO_RCVTIMEO /
  /// SO_SNDTIMEO granularity: one syscall, not one whole response).
  uint32_t io_timeout_ms = 30'000;
};

/// Backoff schedule for transparent retries of Unavailable failures.
/// Decorrelated jitter (sleep = min(cap, uniform[base, 3·prev])), seeded
/// so tests replay the same schedule; a server retry_after_ms hint acts
/// as a floor for that round's sleep.
struct RetryPolicy {
  uint32_t max_retries = 0;  // 0 = fail fast
  uint32_t base_backoff_ms = 10;
  uint32_t max_backoff_ms = 2'000;
  uint64_t jitter_seed = 1;
};

class Client {
 public:
  static Result<Client> Connect(const std::string& socket_path,
                                const ConnectOptions& options = {});

  /// Connect, retrying Unavailable failures (dead or missing socket) on
  /// `policy`'s schedule — the "client starts before the server" path.
  static Result<Client> ConnectWithRetry(const std::string& socket_path,
                                         const ConnectOptions& options,
                                         const RetryPolicy& policy);

  Client() = default;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  ~Client();

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Arms transparent retries for the typed helpers (Ping, Register,
  /// Extract, ExtractBatch, Stats). Off by default.
  void set_retry_policy(const RetryPolicy& policy) { policy_ = policy; }
  /// Retries performed so far (reconnects + re-sends), for tests/stats.
  uint64_t retries_performed() const { return retries_performed_; }

  /// Next request id this client will stamp (monotonic per connection).
  int64_t NextId() { return next_id_++; }

  // --- raw protocol access (pipelining) ------------------------------
  /// Writes one request line (newline appended). Blocking.
  Status SendLine(std::string_view line);
  /// Reads and parses the next response line. Blocking; Unavailable on EOF.
  Result<JsonValue> ReadResponseLine();

  // --- typed helpers (one request, read to completion) ---------------
  /// sleep_ms > 0 routes through the server's admission queue (and can be
  /// refused with Unavailable — that is the point).
  Status Ping(uint64_t sleep_ms = 0);

  /// Registers `pattern` on this session; returns the handle.
  Result<int64_t> Register(const std::string& pattern);
  Status Unregister(int64_t handle);

  struct ExtractSummary {
    uint64_t mappings = 0;
    uint64_t matched_docs = 0;
  };
  using RowFn = std::function<void(const std::string& row)>;

  /// One document against the session fleet; `on_row` sees every output
  /// row (bare, no trailing newline) in order.
  Result<ExtractSummary> Extract(std::string_view doc, size_t doc_index,
                                 engine::OutputFormat format, bool header,
                                 const RowFn& on_row);

  /// The server's held corpus under the session fleet — or, with
  /// `all_resident`, under the server's whole cache-resident fleet.
  Result<ExtractSummary> ExtractBatch(engine::OutputFormat format,
                                      bool header, bool all_resident,
                                      const RowFn& on_row);

  /// The full stats response object ({"report":…,"text":…}).
  Result<JsonValue> Stats();

  Status Drain();

 private:
  Client(int fd, std::string socket_path, ConnectOptions options)
      : fd_(fd),
        socket_path_(std::move(socket_path)),
        copts_(options) {}

  /// Sends `request` and consumes row chunks until the final response;
  /// the final parsed object lands in *final. Rows before `skip_rows`
  /// are dropped (retry resume: they were already delivered); on return,
  /// *skip_rows holds the total delivered so far.
  Status RunStreaming(const std::string& request, const RowFn& on_row,
                      JsonValue* final_response, uint64_t* skip_rows);

  /// One register request on the wire (no retry, no pattern bookkeeping).
  Result<int64_t> RegisterOnServer(const std::string& pattern);

  /// Reconnects (if needed) and re-registers the session's patterns.
  Status EnsureConnected();

  /// Runs `op` under policy_: on an Unavailable failure, backs off
  /// (decorrelated jitter, floored at the status's retry_after_ms) and
  /// retries with a fresh connection, up to max_retries times.
  template <typename Op>
  Status Retrying(const Op& op);

  int fd_ = -1;
  int64_t next_id_ = 1;
  std::string read_buf_;

  std::string socket_path_;
  ConnectOptions copts_;
  RetryPolicy policy_;
  /// Session patterns in registration order, replayed on reconnect.
  std::vector<std::string> registered_patterns_;
  uint64_t retries_performed_ = 0;
  uint32_t prev_backoff_ms_ = 0;
  uint64_t backoff_draws_ = 0;
};

}  // namespace server
}  // namespace spanners

#endif  // SPANNERS_SERVER_CLIENT_H_
