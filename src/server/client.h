// Blocking spanexd client over the JSONL protocol (server/protocol.h).
// One Client is one connection / one server session: registered handles
// live on the server until Unregister or disconnect. Used by
// `spanex --connect`, the server tests, and bench_server.
//
// The typed helpers (Ping/Register/Extract/…) each send one request and
// read until its final response, invoking `on_row` for every streamed
// row. The raw SendLine/ReadResponseLine pair is for callers that want
// pipelining — e.g. the backpressure test fires queue_capacity+N sleeping
// pings before reading any response.
//
// Not thread-safe: one Client per thread.
#ifndef SPANNERS_SERVER_CLIENT_H_
#define SPANNERS_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/format.h"
#include "server/json.h"

namespace spanners {
namespace server {

class Client {
 public:
  static Result<Client> Connect(const std::string& socket_path);

  Client() = default;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  ~Client();

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Next request id this client will stamp (monotonic per connection).
  int64_t NextId() { return next_id_++; }

  // --- raw protocol access (pipelining) ------------------------------
  /// Writes one request line (newline appended). Blocking.
  Status SendLine(std::string_view line);
  /// Reads and parses the next response line. Blocking; Internal on EOF.
  Result<JsonValue> ReadResponseLine();

  // --- typed helpers (one request, read to completion) ---------------
  /// sleep_ms > 0 routes through the server's admission queue (and can be
  /// refused with Unavailable — that is the point).
  Status Ping(uint64_t sleep_ms = 0);

  /// Registers `pattern` on this session; returns the handle.
  Result<int64_t> Register(const std::string& pattern);
  Status Unregister(int64_t handle);

  struct ExtractSummary {
    uint64_t mappings = 0;
    uint64_t matched_docs = 0;
  };
  using RowFn = std::function<void(const std::string& row)>;

  /// One document against the session fleet; `on_row` sees every output
  /// row (bare, no trailing newline) in order.
  Result<ExtractSummary> Extract(std::string_view doc, size_t doc_index,
                                 engine::OutputFormat format, bool header,
                                 const RowFn& on_row);

  /// The server's held corpus under the session fleet — or, with
  /// `all_resident`, under the server's whole cache-resident fleet.
  Result<ExtractSummary> ExtractBatch(engine::OutputFormat format,
                                      bool header, bool all_resident,
                                      const RowFn& on_row);

  /// The full stats response object ({"report":…,"text":…}).
  Result<JsonValue> Stats();

  Status Drain();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends `request` and consumes row chunks until the final response;
  /// the final parsed object lands in *final.
  Status RunStreaming(std::string request, const RowFn& on_row,
                      JsonValue* final_response);

  int fd_ = -1;
  int64_t next_id_ = 1;
  std::string read_buf_;
};

}  // namespace server
}  // namespace spanners

#endif  // SPANNERS_SERVER_CLIENT_H_
