#include "server/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spanners {
namespace server {

namespace {

/// Protocol documents are flat-ish; 64 guards against pathological input
/// blowing the parser stack, not a real limit anyone hits.
constexpr int kMaxDepth = 64;

/// Saturating double→int64 conversion. Casting a double outside int64's
/// range (or NaN) is UB, and the wire lets clients send e.g. 1e300.
/// 9223372036854775808.0 is 2^63 exactly; -2^63 is representable, so any
/// d < -2^63 is below the range and anything in [-2^63, 2^63) casts fine.
int64_t ClampToInt64(double d) {
  if (std::isnan(d)) return 0;
  if (d >= 9223372036854775808.0) return INT64_MAX;
  if (d < -9223372036854775808.0) return INT64_MIN;
  return int64_t(d);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    SPANNERS_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size())
      return Error("trailing characters after JSON value");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SPANNERS_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("expected 'true'");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("expected 'false'");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("expected 'null'");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return Error("expected object key string");
      std::string key;
      SPANNERS_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      JsonValue value;
      SPANNERS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::Object(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      SPANNERS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::OK();
  }

  /// One \uXXXX escape's code unit; pos_ sits after the 'u' on entry and
  /// after the 4 hex digits on success.
  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= uint32_t(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= uint32_t(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= uint32_t(c - 'A' + 10);
      else
        return Error("bad hex digit in \\u escape");
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += char(cp);
    } else if (cp < 0x800) {
      *out += char(0xC0 | (cp >> 6));
      *out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += char(0xE0 | (cp >> 12));
      *out += char(0x80 | ((cp >> 6) & 0x3F));
      *out += char(0x80 | (cp & 0x3F));
    } else {
      *out += char(0xF0 | (cp >> 18));
      *out += char(0x80 | ((cp >> 12) & 0x3F));
      *out += char(0x80 | ((cp >> 6) & 0x3F));
      *out += char(0x80 | (cp & 0x3F));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            uint32_t cp = 0;
            SPANNERS_RETURN_NOT_OK(ParseHex4(&cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must pair with \uDC00..\uDFFF.
              if (!ConsumeWord("\\u"))
                return Error("unpaired high surrogate");
              uint32_t lo = 0;
              SPANNERS_RETURN_NOT_OK(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF)
                return Error("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Error("unknown escape");
        }
        continue;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      *out += char(c);
      ++pos_;
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return Error("malformed number");
    int64_t i;
    if (integral) {
      errno = 0;
      i = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE) i = ClampToInt64(d);
    } else {
      i = ClampToInt64(d);
    }
    *out = JsonValue::Number(d, i);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t dflt) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : dflt;
}

bool JsonValue::BoolOr(std::string_view key, bool dflt) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : dflt;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view dflt) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string(dflt);
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d, int64_t i) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> m) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(m);
  return v;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void WriteJson(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double d = v.AsDouble();
      if (d == double(v.AsInt())) {
        *out += std::to_string(v.AsInt());
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      return;
    }
    case JsonValue::Type::kString:
      AppendJsonString(out, v.AsString());
      return;
    case JsonValue::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) *out += ',';
        first = false;
        WriteJson(item, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) *out += ',';
        first = false;
        AppendJsonString(out, key);
        *out += ':';
        WriteJson(value, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace server
}  // namespace spanners
