// The spanexd wire protocol: JSONL over a local (AF_UNIX) stream socket.
// Every request is one JSON object on one line; every request produces
// one or more response objects, each on one line, carrying the request's
// `id` back. Requests on one connection are answered in order.
//
// Requests (op → fields):
//   ping           {"op":"ping","id":1}
//                  Optional "sleep_ms":N routes the ping through the
//                  admission queue and holds the executor N ms — the
//                  backpressure test/bench hook; a plain ping is answered
//                  inline and never queued or refused.
//   register       {"op":"register","id":2,"pattern":"x{[0-9]+}"}
//                  Compiles via the server's PlanCache; the session gains
//                  a handle → {"id":2,"ok":true,"handle":1,"plan":"…"}.
//   unregister     {"op":"unregister","id":3,"handle":1}
//   extract        {"op":"extract","id":4,"doc":"…","doc_index":0,
//                   "format":"tsv","header":false}
//                  One document against every session plan (fleet order =
//                  registration order). Rows are pre-formatted exactly as
//                  offline spanex emits them (doc_index is the caller's
//                  row label); "header":true prepends the session's
//                  header block.
//   extract_batch  {"op":"extract_batch","id":5,"format":"tsv",
//                   "header":true}
//                  The session fleet over the server's held corpus, with
//                  posting-index gating when the server was started with
//                  --index. Rows stream back in chunks (below).
//   stats          {"op":"stats","id":6}
//                  → {"id":6,"ok":true,"report":{…EngineReport JSON…},
//                     "text":"…EngineReport text…"}
//   drain          {"op":"drain","id":7}
//                  Stop admitting, finish in-flight work, flush, exit 0.
//
// Responses:
//   success        {"id":N,"ok":true,…op-specific fields…}
//   row chunk      {"id":N,"rows":["…","…"],"done":false}   (extract*)
//                  then a final {"id":N,"ok":true,"done":true,
//                  "mappings":M,"matched_docs":D}
//   error          {"id":N,"ok":false,"error":{"code":"Unavailable",
//                   "message":"…","retry_after_ms":50}}
//                  `code` is StatusCodeToString of the refusing Status;
//                  retry_after_ms appears only on Unavailable and tells
//                  the client this is backoff, not a hard error.
#ifndef SPANNERS_SERVER_PROTOCOL_H_
#define SPANNERS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/json.h"

namespace spanners {
namespace server {

/// Protocol limits shared by server and client: one JSONL line may not
/// exceed this many bytes (a corrupt or hostile peer cannot balloon the
/// read buffer).
inline constexpr size_t kMaxLineBytes = 64u << 20;

/// "{"id":N,"ok":false,"error":{…}}" for a failed request. Includes
/// retry_after_ms when `status` carries one (Unavailable rejections).
std::string ErrorResponse(int64_t id, const Status& status);

/// The "{"id":N,"ok":true" prefix every success response starts with;
/// callers append op fields and the closing '}'.
std::string OkPrefix(int64_t id);

/// Reconstructs the Status encoded by ErrorResponse from a parsed
/// response object: OK when response["ok"] is true, else the error code /
/// message / retry_after_ms mapped back onto a Status. Malformed
/// responses come back as Internal.
Status StatusFromResponse(const JsonValue& response);

}  // namespace server
}  // namespace spanners

#endif  // SPANNERS_SERVER_PROTOCOL_H_
