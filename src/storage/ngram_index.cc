#include "storage/ngram_index.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "storage/crc32c.h"
#include "storage/file_io.h"

namespace spanners {
namespace storage {

namespace {

// "SPANIDX1"
constexpr uint64_t kIdxMagic = 0x3158444e41505331ull;
constexpr uint32_t kIdxVersion = 1;
// magic + version + n + num_docs + num_terms + body_crc + footer_crc
constexpr size_t kIdxFooterSize = 8 + 4 + 4 + 8 + 8 + 4 + 4;
constexpr size_t kTermEntrySize = 16;  // u32 trigram, u32 df, u64 offset

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void PutVarint(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(char(v | 0x80));
    v >>= 7;
  }
  out->push_back(char(v));
}

uint32_t TrigramAt(std::string_view text, size_t i) {
  return uint32_t(uint8_t(text[i])) << 16 | uint32_t(uint8_t(text[i + 1])) << 8 |
         uint32_t(uint8_t(text[i + 2]));
}

// The distinct (trigram, docid) pairs of one docid range, sorted by
// (trigram, docid) — packed as trigram<<32 | docid so a plain u64 sort
// gives the posting order.
std::vector<uint64_t> PairsOfRange(const SegmentStore& store, size_t begin,
                                   size_t end) {
  std::vector<uint64_t> pairs;
  std::vector<uint32_t> doc_trigrams;
  for (size_t d = begin; d < end; ++d) {
    const std::string_view text = store.doc_view(d);
    if (text.size() < NgramIndex::kN) continue;
    doc_trigrams.clear();
    for (size_t i = 0; i + NgramIndex::kN <= text.size(); ++i)
      doc_trigrams.push_back(TrigramAt(text, i));
    std::sort(doc_trigrams.begin(), doc_trigrams.end());
    doc_trigrams.erase(
        std::unique(doc_trigrams.begin(), doc_trigrams.end()),
        doc_trigrams.end());
    for (uint32_t t : doc_trigrams)
      pairs.push_back(uint64_t(t) << 32 | uint64_t(d));
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

// Sorted-vector set ops used by the candidate computation.
std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> Union(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

NgramIndex NgramIndex::Build(const SegmentStore& store,
                             engine::ThreadPool* pool) {
  const auto build_start = std::chrono::steady_clock::now();
  const size_t num_docs = store.num_docs();

  // Per-shard trigram extraction (each shard's pairs come out sorted),
  // then one global sort over the concatenation — simpler than a k-way
  // merge and dominated by the extraction pass anyway.
  std::vector<std::vector<uint64_t>> shard_pairs;
  if (pool != nullptr && num_docs > 1) {
    const size_t shards = std::min<size_t>(pool->num_threads() * 4, num_docs);
    const size_t chunk = (num_docs + shards - 1) / shards;
    shard_pairs.resize((num_docs + chunk - 1) / chunk);
    for (size_t s = 0; s < shard_pairs.size(); ++s) {
      const size_t begin = s * chunk;
      const size_t end = std::min(begin + chunk, num_docs);
      pool->Submit([&store, &shard_pairs, s, begin, end] {
        shard_pairs[s] = PairsOfRange(store, begin, end);
      });
    }
    pool->WaitIdle();
  } else {
    shard_pairs.push_back(PairsOfRange(store, 0, num_docs));
  }
  size_t total = 0;
  for (const auto& v : shard_pairs) total += v.size();
  std::vector<uint64_t> pairs;
  pairs.reserve(total);
  for (auto& v : shard_pairs) {
    pairs.insert(pairs.end(), v.begin(), v.end());
    std::vector<uint64_t>().swap(v);
  }
  std::sort(pairs.begin(), pairs.end());

  // Encode: one term entry + one delta-varint run per distinct trigram.
  NgramIndex index;
  index.num_docs_ = num_docs;
  std::string& terms = index.owned_terms_;
  std::string& postings = index.owned_postings_;
  size_t i = 0;
  while (i < pairs.size()) {
    const uint32_t trigram = uint32_t(pairs[i] >> 32);
    const uint64_t offset = postings.size();
    uint32_t df = 0;
    uint32_t prev = 0;
    for (; i < pairs.size() && uint32_t(pairs[i] >> 32) == trigram; ++i) {
      const uint32_t doc = uint32_t(pairs[i]);
      PutVarint(&postings, df == 0 ? doc : doc - prev);
      prev = doc;
      ++df;
    }
    PutU32(&terms, trigram);
    PutU32(&terms, df);
    PutU64(&terms, offset);
    ++index.num_terms_;
  }
  index.term_bytes_ = terms.size();
  index.postings_bytes_ = postings.size();

  // index.build_bytes / index.build_ns: MB/s is their quotient across any
  // telemetry window (same two-counter idiom as the engine's rates).
  if (obs::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    static obs::Counter* build_bytes = reg.GetCounter("index.build_bytes");
    static obs::Counter* build_ns = reg.GetCounter("index.build_ns");
    build_bytes->Add(store.data_bytes());
    build_ns->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - build_start)
            .count()));
  }
  return index;
}

Status NgramIndex::Save(const std::string& path) const {
  std::string file;
  file.reserve(term_bytes_ + postings_bytes_ + kIdxFooterSize);
  file.append(reinterpret_cast<const char*>(TermData()), term_bytes_);
  file.append(reinterpret_cast<const char*>(PostingsData()), postings_bytes_);
  const uint32_t body_crc = Crc32c(file.data(), file.size());

  std::string footer;
  PutU64(&footer, kIdxMagic);
  PutU32(&footer, kIdxVersion);
  PutU32(&footer, static_cast<uint32_t>(kN));
  PutU64(&footer, num_docs_);
  PutU64(&footer, num_terms_);
  PutU32(&footer, body_crc);
  PutU32(&footer, Crc32c(footer.data(), footer.size()));
  file += footer;

  // The same crash-atomic tmp → fsync → rename → dirsync discipline as
  // the segment writer (the old path here never fsynced at all, so a
  // crash after rename could surface a torn index that still had a
  // visible name).
  return WriteFileDurable(path, file);
}

Result<NgramIndex> NgramIndex::Open(const std::string& path,
                                    size_t expect_num_docs) {
  SPANNERS_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(path));
  const uint8_t* base = mapped.data();
  const size_t size = mapped.size();
  if (size < kIdxFooterSize)
    return Status::Corruption("index " + path + ": file shorter than the " +
                              std::to_string(kIdxFooterSize) +
                              "-byte footer");

  const uint8_t* f = base + size - kIdxFooterSize;
  const uint64_t magic = GetU64(f);
  const uint32_t version = GetU32(f + 8);
  const uint32_t n = GetU32(f + 12);
  const uint64_t num_docs = GetU64(f + 16);
  const uint64_t num_terms = GetU64(f + 24);
  const uint32_t body_crc = GetU32(f + 32);
  const uint32_t footer_crc = GetU32(f + 36);
  if (magic != kIdxMagic)
    return Status::Corruption("index " + path + ": bad magic");
  if (footer_crc != Crc32c(f, kIdxFooterSize - 4))
    return Status::Corruption("index " + path + ": footer checksum mismatch");
  if (version != kIdxVersion || n != kN)
    return Status::Corruption("index " + path + ": unsupported version/n");

  const uint64_t body = size - kIdxFooterSize;
  const uint64_t term_bytes = num_terms * kTermEntrySize;
  if (term_bytes > body)
    return Status::Corruption("index " + path +
                              ": term table exceeds file size");
  if (body_crc != Crc32c(base, body))
    return Status::Corruption("index " + path + ": body checksum mismatch");
  if (num_docs != expect_num_docs)
    return Status::InvalidArgument(
        "index " + path + " covers " + std::to_string(num_docs) +
        " docs but the segment holds " + std::to_string(expect_num_docs));

  NgramIndex index;
  index.file_ = std::make_shared<const MappedFile>(std::move(mapped));
  index.term_bytes_ = term_bytes;
  index.postings_bytes_ = body - term_bytes;
  index.num_terms_ = static_cast<size_t>(num_terms);
  index.num_docs_ = static_cast<size_t>(num_docs);
  return index;
}

bool NgramIndex::FindTerm(uint32_t trigram, Term* out) const {
  const uint8_t* terms = TermData();
  size_t lo = 0, hi = num_terms_;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const uint32_t t = GetU32(terms + mid * kTermEntrySize);
    if (t < trigram) {
      lo = mid + 1;
    } else if (t > trigram) {
      hi = mid;
    } else {
      out->trigram = t;
      out->doc_freq = GetU32(terms + mid * kTermEntrySize + 4);
      out->postings_offset = GetU64(terms + mid * kTermEntrySize + 8);
      return true;
    }
  }
  return false;
}

void NgramIndex::DecodePostings(const Term& term,
                                std::vector<uint32_t>* out) const {
  out->clear();
  out->reserve(term.doc_freq);
  const uint8_t* p = PostingsData() + term.postings_offset;
  const uint8_t* limit = PostingsData() + postings_bytes_;
  uint32_t doc = 0;
  for (uint32_t k = 0; k < term.doc_freq && p < limit; ++k) {
    uint32_t v = 0;
    int shift = 0;
    while (p < limit) {
      const uint8_t byte = *p++;
      v |= uint32_t(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    doc = k == 0 ? v : doc + v;
    out->push_back(doc);
  }
}

std::vector<uint32_t> NgramIndex::LiteralCandidates(std::string_view literal,
                                                    LookupStats* stats) const {
  // Distinct trigrams of the literal, rarest first; a missing trigram
  // proves no document contains the literal.
  std::vector<Term> terms;
  for (size_t i = 0; i + kN <= literal.size(); ++i) {
    const uint32_t trigram = TrigramAt(literal, i);
    if (std::any_of(terms.begin(), terms.end(), [&](const Term& t) {
          return t.trigram == trigram;
        }))
      continue;
    Term t;
    if (stats != nullptr) ++stats->terms_probed;
    if (!FindTerm(trigram, &t)) return {};
    terms.push_back(t);
  }
  if (terms.empty()) return {};
  std::sort(terms.begin(), terms.end(), [](const Term& a, const Term& b) {
    return a.doc_freq < b.doc_freq;
  });

  std::vector<uint32_t> result, next;
  DecodePostings(terms[0], &result);
  if (stats != nullptr) stats->postings_touched += terms[0].doc_freq;
  for (size_t i = 1; i < terms.size() && !result.empty(); ++i) {
    DecodePostings(terms[i], &next);
    if (stats != nullptr) stats->postings_touched += terms[i].doc_freq;
    result = Intersect(result, next);
  }
  return result;
}

CandidateSet NgramIndex::Candidates(const engine::Prefilter& prefilter,
                                    LookupStats* stats) const {
  const std::vector<engine::Prefilter::Clause> clauses =
      prefilter.IndexableClauses(kN);
  CandidateSet out;
  if (clauses.empty()) return out;  // all = true: index cannot narrow

  out.all = false;
  bool first = true;
  for (const engine::Prefilter::Clause& clause : clauses) {
    std::vector<uint32_t> clause_docs;
    for (const std::string& lit : clause.literals)
      clause_docs = Union(clause_docs, LiteralCandidates(lit, stats));
    out.docs = first ? std::move(clause_docs)
                     : Intersect(out.docs, clause_docs);
    first = false;
    if (out.docs.empty()) break;  // provably nothing matches
  }
  return out;
}

uint32_t NgramIndex::DocFreq(std::string_view trigram) const {
  if (trigram.size() != kN) return 0;
  Term t;
  return FindTerm(TrigramAt(trigram, 0), &t) ? t.doc_freq : 0;
}

std::string NgramIndex::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ngram-index: %zu terms over %zu docs, %.1f KiB",
                num_terms_, num_docs_, double(body_bytes()) / 1024.0);
  return buf;
}

}  // namespace storage
}  // namespace spanners
