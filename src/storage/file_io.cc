#include "storage/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace spanners {
namespace storage {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& what) {
  return Status::InvalidArgument(what + ": " + std::strerror(errno));
}

}  // namespace

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";

  int fd;
  {
    const fault::Action a = SPANNERS_FAULT("storage.open");
    if (a.fail) {
      errno = a.err;
      fd = -1;
    } else {
      fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    }
  }
  if (fd < 0) return Errno("cannot create " + tmp);

  // Any failure from here on unwinds through `fail`: close, unlink tmp,
  // leave `path` exactly as it was.
  const auto fail = [&](const std::string& what) {
    const Status st = Errno(what);
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  };

  const char* p = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const fault::Action a = SPANNERS_FAULT("storage.write");
    ssize_t r;
    if (a.fail) {
      errno = a.err;
      r = -1;
    } else {
      const size_t n = remaining < a.clamp ? remaining : a.clamp;
      r = ::write(fd, p, n);
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return fail("write to " + tmp + " failed");
    }
    // r == 0 with n > 0 cannot happen for regular files; treating it as
    // progress-less retry would loop forever, so count it as an error.
    if (r == 0) {
      errno = EIO;
      return fail("write to " + tmp + " made no progress");
    }
    p += r;
    remaining -= static_cast<size_t>(r);
  }

  {
    const fault::Action a = SPANNERS_FAULT("storage.fsync");
    int r;
    if (a.fail) {
      errno = a.err;
      r = -1;
    } else {
      do {
        r = ::fsync(fd);
      } while (r < 0 && errno == EINTR);
    }
    // A failed fsync means the kernel may have dropped dirty pages; the
    // tmp file is unusable (and retrying fsync cannot recover the data).
    if (r < 0) return fail("fsync of " + tmp + " failed");
  }

  if (::close(fd) < 0) {
    const Status st = Errno("close of " + tmp + " failed");
    ::unlink(tmp.c_str());
    return st;
  }

  {
    const fault::Action a = SPANNERS_FAULT("storage.rename");
    int r;
    if (a.fail) {
      errno = a.err;
      r = -1;
    } else {
      r = ::rename(tmp.c_str(), path.c_str());
    }
    if (r < 0) {
      const Status st = Errno("cannot rename " + tmp + " to " + path);
      ::unlink(tmp.c_str());
      return st;
    }
  }

  // The rename is in the page cache only until the parent directory's
  // metadata is synced; without this a crash can roll the rename back
  // (or, for a first-time write, surface no file at all).
  {
    const std::string dir = ParentDir(path);
    const fault::Action a = SPANNERS_FAULT("storage.dirsync");
    int dfd;
    if (a.fail) {
      errno = a.err;
      dfd = -1;
    } else {
      dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    }
    int r = -1;
    if (dfd >= 0) {
      do {
        r = ::fsync(dfd);
      } while (r < 0 && errno == EINTR);
      const int saved = errno;
      ::close(dfd);
      errno = saved;
    }
    if (dfd < 0 || r < 0) {
      // The new file is complete and visible; only the rename's
      // durability is in doubt. Report it, but do not unlink.
      return Errno("cannot sync directory " + dir + " after renaming " +
                   path + " (file is visible but the rename may not survive "
                   "a crash)");
    }
  }

  return Status::OK();
}

}  // namespace storage
}  // namespace spanners
