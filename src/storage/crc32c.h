// CRC32C (Castagnoli) for the on-disk segment and index formats. Software
// slice-by-4 implementation — no SSE4.2 dependency, so checksums agree
// across every build target; the storage layer checksums metadata once per
// open and pages once per write, never on the extraction hot path.
#ifndef SPANNERS_STORAGE_CRC32C_H_
#define SPANNERS_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spanners {
namespace storage {

/// CRC32C of `data`, seeded by `init` so checksums can be chained:
/// Crc32c(b, Crc32c(a)) == Crc32c(a ++ b).
uint32_t Crc32c(const void* data, size_t size, uint32_t init = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t init = 0) {
  return Crc32c(data.data(), data.size(), init);
}

}  // namespace storage
}  // namespace spanners

#endif  // SPANNERS_STORAGE_CRC32C_H_
