// N-gram posting-list index over a segment's document bytes: the lookup
// structure that turns required-literal prefilter clauses into candidate
// document ids, so gating cost becomes O(result) instead of O(corpus).
//
// The index maps every trigram (3 consecutive bytes) occurring in the
// corpus to the sorted, delta-varint-encoded list of documents containing
// it. A literal of length ≥ 3 is contained in a document only if ALL of
// the literal's trigrams are — so docs(literal) ⊆ ∩ docs(trigram), an
// overapproximation the engine's existing gate tiers (AC / prefilter /
// lazy DFA) then verify exactly. A prefilter requirement
//     (lit_a | lit_b) & lit_c & …        (CNF over literals)
// becomes union-of-intersections per clause, intersected across clauses.
// The returned candidate set is always a SUPERSET of the matching
// documents, which is the soundness invariant: extraction restricted to
// candidates is byte-identical to the full scan.
//
// On-disk layout (little-endian), stored alongside the segment
// (IndexPathFor):
//
//   ┌───────────────────────────────────────────┐ offset 0
//   │ term table: num_terms × {u32 trigram,     │
//   │ u32 doc_freq, u64 postings_offset},       │
//   │ sorted by trigram                         │
//   ├───────────────────────────────────────────┤
//   │ postings blob: per term, doc_freq         │
//   │ delta-varint docids (LEB128, first id     │
//   │ absolute, then gaps)                      │
//   ├───────────────────────────────────────────┤ file_size - footer
//   │ footer: magic, version, ngram n, num_docs,│
//   │ num_terms, body_crc, footer_crc           │
//   └───────────────────────────────────────────┘
//
// Open() verifies the footer and the whole-body CRC before returning
// (Status::Corruption otherwise); lookups then decode postings straight
// out of the mapping. Document-frequency statistics (doc_freq per term)
// come for free and drive intersection order (rarest trigram first) —
// they are also the cardinality-estimate input the cost-based-planning
// direction wants.
#ifndef SPANNERS_STORAGE_NGRAM_INDEX_H_
#define SPANNERS_STORAGE_NGRAM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/prefilter.h"
#include "engine/thread_pool.h"
#include "storage/segment.h"

namespace spanners {
namespace storage {

/// A candidate-docid set: either an explicit sorted id list, or "every
/// document" when the query has no indexable clause (the index cannot
/// narrow anything down; the caller falls back to the full scan).
struct CandidateSet {
  bool all = true;
  std::vector<uint32_t> docs;  // sorted, meaningful when !all

  size_t CountIn(size_t corpus_docs) const {
    return all ? corpus_docs : docs.size();
  }
};

/// Per-lookup accounting, surfaced through obs counters and EngineReport.
struct LookupStats {
  uint64_t postings_touched = 0;  // posting entries decoded
  uint64_t terms_probed = 0;      // term-table binary searches
};

class NgramIndex {
 public:
  /// Trigrams: the shortest n-gram no shorter than the prefilter's
  /// kMinLiteralLen, so every clause the prefilter keeps is indexable.
  static constexpr size_t kN = 3;

  /// Builds the index over every document of `store`. Per-shard trigram
  /// extraction runs on `pool` when given (the CPU-bound part); the merge
  /// and encode are sequential.
  static NgramIndex Build(const SegmentStore& store,
                          engine::ThreadPool* pool = nullptr);

  /// Serializes to `path` (atomic rename, like SegmentStore::Write).
  Status Save(const std::string& path) const;

  /// Maps and validates an index file; Status::Corruption on any checksum
  /// or structural mismatch, and InvalidArgument when `expect_num_docs`
  /// (from the segment it sits beside) disagrees — an index for a
  /// different corpus must not silently gate this one.
  static Result<NgramIndex> Open(const std::string& path,
                                 size_t expect_num_docs);

  size_t num_docs() const { return num_docs_; }
  size_t num_terms() const { return num_terms_; }
  /// Serialized size (term table + postings, excluding the footer).
  uint64_t body_bytes() const { return term_bytes_ + postings_bytes_; }

  /// Documents that may contain `literal` (all its trigrams present),
  /// intersected rarest-trigram-first with early exit. Precondition:
  /// literal.size() >= kN. Empty result = provably no document matches.
  std::vector<uint32_t> LiteralCandidates(std::string_view literal,
                                          LookupStats* stats) const;

  /// Candidate documents for a whole prefilter requirement: union over a
  /// clause's literals, intersection across clauses. Clauses with any
  /// literal shorter than kN are skipped (they cannot narrow the set);
  /// when no clause survives, the result has all = true.
  CandidateSet Candidates(const engine::Prefilter& prefilter,
                          LookupStats* stats) const;

  /// Document frequency of one trigram (cardinality statistics for
  /// planning); 0 when absent.
  uint32_t DocFreq(std::string_view trigram) const;

  /// e.g. "ngram-index: 48321 terms over 1000 docs, 312.4 KiB".
  std::string ToString() const;

 private:
  NgramIndex() = default;

  struct Term {
    uint32_t trigram;
    uint32_t doc_freq;
    uint64_t postings_offset;
  };

  /// Term-table binary search; nullopt-like: found flag + term.
  bool FindTerm(uint32_t trigram, Term* out) const;
  /// Decodes one posting list into `out` (cleared first).
  void DecodePostings(const Term& term, std::vector<uint32_t>* out) const;

  /// The backing bytes, whichever representation holds them. Computed per
  /// call (never cached as members) so moving the index — which moves the
  /// owned strings — cannot leave a stale pointer behind.
  const uint8_t* TermData() const {
    return file_ != nullptr
               ? file_->data()
               : reinterpret_cast<const uint8_t*>(owned_terms_.data());
  }
  const uint8_t* PostingsData() const {
    return file_ != nullptr
               ? file_->data() + term_bytes_
               : reinterpret_cast<const uint8_t*>(owned_postings_.data());
  }

  // Exactly one of these backs term/postings bytes: the owned buffers
  // (Build) or the mapping (Open; terms at offset 0, postings after).
  std::string owned_terms_, owned_postings_;
  std::shared_ptr<const MappedFile> file_;
  uint64_t term_bytes_ = 0;
  uint64_t postings_bytes_ = 0;
  size_t num_terms_ = 0;
  size_t num_docs_ = 0;
};

}  // namespace storage
}  // namespace spanners

#endif  // SPANNERS_STORAGE_NGRAM_INDEX_H_
