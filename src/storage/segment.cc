#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "storage/crc32c.h"
#include "storage/file_io.h"

namespace spanners {
namespace storage {

namespace {

// "SPANSEG1" — bumped whenever the layout changes incompatibly.
constexpr uint64_t kMagic = 0x3147455f4e415053ull;
constexpr uint32_t kVersion = 1;

// Fixed-size footer at the end of the file. Serialized field by field with
// explicit little-endian encoding — the struct is never written raw, so
// padding/ABI never leaks into the format.
struct Footer {
  uint64_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t page_size = 0;
  uint64_t num_docs = 0;
  uint64_t data_bytes = 0;       // unpadded document bytes
  uint64_t doc_table_offset = 0;
  uint64_t page_table_offset = 0;
  uint64_t num_pages = 0;
  uint32_t file_crc = 0;    // CRC32C over [data_end, footer_crc_field)
  uint32_t footer_crc = 0;  // CRC32C over the preceding footer fields
};
constexpr size_t kFooterSize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // little-endian hosts only (matches the rest of the codebase)
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string EncodeFooter(const Footer& f) {
  std::string out;
  out.reserve(kFooterSize);
  PutU64(&out, f.magic);
  PutU32(&out, f.version);
  PutU32(&out, f.page_size);
  PutU64(&out, f.num_docs);
  PutU64(&out, f.data_bytes);
  PutU64(&out, f.doc_table_offset);
  PutU64(&out, f.page_table_offset);
  PutU64(&out, f.num_pages);
  PutU32(&out, f.file_crc);
  return out;  // footer_crc appended by the writer once computed
}

bool IsPow2(size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

// ---- MappedFile ----------------------------------------------------------

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED)
    return Status::InvalidArgument("cannot mmap " + path + ": " +
                                   std::strerror(errno));
  return MappedFile(static_cast<const uint8_t*>(p), size);
}

MappedFile::MappedFile(MappedFile&& o) noexcept
    : data_(o.data_), size_(o.size_) {
  o.data_ = nullptr;
  o.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    this->~MappedFile();
    data_ = o.data_;
    size_ = o.size_;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr)
    ::munmap(const_cast<uint8_t*>(data_), size_);
}

// ---- SegmentStore --------------------------------------------------------

Status SegmentStore::Write(const engine::Corpus& corpus,
                           const std::string& path,
                           const SegmentWriteOptions& options) {
  if (!IsPow2(options.page_size) || options.page_size < 512)
    return Status::InvalidArgument(
        "segment page_size must be a power of two >= 512");
  const size_t page = options.page_size;

  // Data region + doc-offset table.
  uint64_t data_bytes = 0;
  for (const Document& d : corpus) data_bytes += d.text().size();
  const uint64_t padded = (data_bytes + page - 1) / page * page;
  const uint64_t num_pages = padded / page;

  std::string file;
  file.reserve(padded + (corpus.size() + 1) * 8 + num_pages * 4 +
               kFooterSize);
  std::string doc_table;
  doc_table.reserve((corpus.size() + 1) * 8);
  PutU64(&doc_table, 0);
  for (const Document& d : corpus) {
    file += d.text();
    PutU64(&doc_table, file.size());
  }
  file.resize(padded, '\0');

  // Per-page CRCs, computed in parallel on the engine pool when given.
  std::vector<uint32_t> page_crcs(num_pages, 0);
  auto crc_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const size_t off = i * page;
      page_crcs[i] = Crc32c(file.data() + off, page);
    }
  };
  if (options.pool != nullptr && num_pages > 1) {
    const size_t workers = options.pool->num_threads();
    const size_t chunk = (num_pages + workers - 1) / workers;
    for (size_t begin = 0; begin < num_pages; begin += chunk) {
      const size_t end = std::min<size_t>(begin + chunk, num_pages);
      options.pool->Submit([&crc_range, begin, end] {
        crc_range(begin, end);
      });
    }
    options.pool->WaitIdle();
  } else {
    crc_range(0, num_pages);
  }

  Footer footer;
  footer.page_size = static_cast<uint32_t>(page);
  footer.num_docs = corpus.size();
  footer.data_bytes = data_bytes;
  footer.doc_table_offset = file.size();
  file += doc_table;
  footer.page_table_offset = file.size();
  for (uint32_t crc : page_crcs) PutU32(&file, crc);
  footer.num_pages = num_pages;

  // file_crc rolls up everything after the data region (the tables) plus
  // the per-page CRCs implicitly — flipping a data byte breaks its page
  // CRC, flipping a table or footer byte breaks file_crc/footer_crc.
  footer.file_crc = Crc32c(file.data() + padded, file.size() - padded);
  std::string encoded = EncodeFooter(footer);
  footer.footer_crc = Crc32c(encoded.data(), encoded.size());
  PutU32(&encoded, footer.footer_crc);
  file += encoded;

  return WriteFileDurable(path, file);
}

Result<SegmentStore> SegmentStore::Open(const std::string& path) {
  SPANNERS_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(path));
  const uint8_t* base = mapped.data();
  const size_t size = mapped.size();
  if (size < kFooterSize)
    return Status::Corruption("segment " + path + ": file shorter than the " +
                              std::to_string(kFooterSize) + "-byte footer");

  // Footer: decode, then verify its own CRC before trusting any field.
  const uint8_t* f = base + size - kFooterSize;
  Footer footer;
  footer.magic = GetU64(f);
  footer.version = GetU32(f + 8);
  footer.page_size = GetU32(f + 12);
  footer.num_docs = GetU64(f + 16);
  footer.data_bytes = GetU64(f + 24);
  footer.doc_table_offset = GetU64(f + 32);
  footer.page_table_offset = GetU64(f + 40);
  footer.num_pages = GetU64(f + 48);
  footer.file_crc = GetU32(f + 56);
  footer.footer_crc = GetU32(f + 60);
  if (footer.magic != kMagic)
    return Status::Corruption("segment " + path + ": bad magic");
  if (footer.footer_crc != Crc32c(f, kFooterSize - 4))
    return Status::Corruption("segment " + path + ": footer checksum mismatch");
  if (footer.version != kVersion)
    return Status::Corruption("segment " + path + ": unsupported version " +
                              std::to_string(footer.version));

  // Structural bounds. Every derived size must match the actual file size
  // exactly — truncation or padding cannot hide from this.
  if (!IsPow2(footer.page_size) || footer.page_size < 512)
    return Status::Corruption("segment " + path + ": bad page size");
  const uint64_t page = footer.page_size;
  const uint64_t padded = (footer.data_bytes + page - 1) / page * page;
  if (footer.num_pages != padded / page ||
      footer.doc_table_offset != padded ||
      footer.page_table_offset !=
          padded + (footer.num_docs + 1) * 8 ||
      size != footer.page_table_offset + footer.num_pages * 4 + kFooterSize)
    return Status::Corruption("segment " + path +
                              ": layout does not match file size");

  // Table + footer rollup checksum.
  if (footer.file_crc !=
      Crc32c(base + padded, size - padded - kFooterSize))
    return Status::Corruption("segment " + path + ": table checksum mismatch");

  // Doc offsets: 0 = o_0 ≤ o_1 ≤ … ≤ o_n = data_bytes.
  const uint8_t* doc_table = base + footer.doc_table_offset;
  uint64_t prev = GetU64(doc_table);
  if (prev != 0)
    return Status::Corruption("segment " + path + ": doc table must start at 0");
  for (uint64_t i = 1; i <= footer.num_docs; ++i) {
    const uint64_t off = GetU64(doc_table + i * 8);
    if (off < prev || off > footer.data_bytes)
      return Status::Corruption("segment " + path +
                                ": doc offsets not monotonic");
    prev = off;
  }
  if (prev != footer.data_bytes)
    return Status::Corruption("segment " + path +
                              ": doc table does not cover the data region");

  // Every data page against its stored CRC.
  const uint8_t* page_table = base + footer.page_table_offset;
  for (uint64_t i = 0; i < footer.num_pages; ++i) {
    if (Crc32c(base + i * page, page) != GetU32(page_table + i * 4))
      return Status::Corruption("segment " + path + ": page " +
                                std::to_string(i) + " checksum mismatch");
  }

  SegmentStore store;
  store.file_ = std::make_shared<const MappedFile>(std::move(mapped));
  store.num_docs_ = static_cast<size_t>(footer.num_docs);
  store.data_bytes_ = footer.data_bytes;
  store.page_size_ = footer.page_size;
  store.num_pages_ = static_cast<size_t>(footer.num_pages);
  store.doc_table_offset_ = static_cast<size_t>(footer.doc_table_offset);
  return store;
}

uint64_t SegmentStore::DocOffset(size_t i) const {
  return GetU64(file_->data() + doc_table_offset_ + i * 8);
}

engine::Corpus SegmentStore::ReadAll() const {
  std::vector<Document> docs;
  docs.reserve(num_docs_);
  for (size_t i = 0; i < num_docs_; ++i) docs.push_back(MaterializeDoc(i));
  return engine::Corpus(std::move(docs));
}

std::string SegmentStore::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "segment: %zu docs, %.1f KiB data, %zu pages x %zu",
                num_docs_, double(data_bytes_) / 1024.0, num_pages_,
                page_size_);
  return buf;
}

std::string IndexPathFor(const std::string& segment_path) {
  return segment_path + ".idx";
}

}  // namespace storage
}  // namespace spanners
