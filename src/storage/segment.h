// Persistent corpus storage: an immutable, memory-mapped segment format.
//
// A segment holds one whole Corpus as a single file laid out for mmap
// consumption — extraction over a billion-document corpus should touch
// only the pages its candidate documents live on, not re-read the corpus
// per request. The layout (all integers little-endian):
//
//   ┌────────────────────────────────────────────┐ offset 0
//   │ data region: document bytes, back to back, │
//   │ zero-padded to a page_size boundary        │
//   ├────────────────────────────────────────────┤ doc_table_offset
//   │ doc-offset table: num_docs+1 × u64 byte    │
//   │ offsets into the data region               │
//   ├────────────────────────────────────────────┤ page_table_offset
//   │ page checksum table: num_pages × u32       │
//   │ CRC32C, one per data page                  │
//   ├────────────────────────────────────────────┤ file_size - kFooterSize
//   │ footer: magic, version, page_size,         │
//   │ num_docs, data_bytes, table offsets,       │
//   │ file_crc (whole-file rollup), footer_crc   │
//   └────────────────────────────────────────────┘
//
// Crash-safety / corruption posture: every byte of the file is covered by
// some checksum — data pages individually (page CRC table), the two tables
// plus the footer's own fields by file_crc/footer_crc — and Open verifies
// ALL of them plus the structural invariants (monotonic doc offsets,
// in-bounds tables) before returning, so a truncated or bit-flipped
// segment is rejected with Status::Corruption and never reaches the
// engine. Readers after a successful Open never re-validate.
//
// Writing reuses the engine's work-stealing ThreadPool to checksum pages
// in parallel (the write path is sequential-IO-bound; checksums are the
// CPU part). Documents materialized out of the store copy their bytes, so
// extraction results never dangle when the store closes.
#ifndef SPANNERS_STORAGE_SEGMENT_H_
#define SPANNERS_STORAGE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/document.h"
#include "engine/corpus.h"
#include "engine/thread_pool.h"

namespace spanners {
namespace storage {

/// RAII read-only memory mapping of a whole file. Movable, not copyable;
/// unmaps on destruction. An empty file maps to (nullptr, 0).
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

struct SegmentWriteOptions {
  /// Checksum / padding granularity. Must be a power of two ≥ 512.
  size_t page_size = 4096;
  /// Pool for parallel page checksumming; nullptr = checksum inline.
  engine::ThreadPool* pool = nullptr;
};

/// An open, validated, memory-mapped segment.
class SegmentStore {
 public:
  /// Serializes `corpus` into a new segment at `path` (atomically: written
  /// to `path.tmp` then renamed, so a crash never leaves a half-written
  /// file under the final name).
  static Status Write(const engine::Corpus& corpus, const std::string& path,
                      const SegmentWriteOptions& options = {});

  /// Maps and fully validates the segment at `path`: footer magic /
  /// version / CRC, structural bounds, and every page checksum. Returns
  /// Status::Corruption on any mismatch.
  static Result<SegmentStore> Open(const std::string& path);

  size_t num_docs() const { return num_docs_; }
  uint64_t data_bytes() const { return data_bytes_; }
  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return num_pages_; }
  uint64_t file_bytes() const { return file_->size(); }

  /// Document i's bytes, viewing the mapping directly (no copy). Valid
  /// only while the store is open.
  std::string_view doc_view(size_t i) const {
    const uint64_t begin = DocOffset(i), end = DocOffset(i + 1);
    return file_->view().substr(begin, end - begin);
  }
  size_t doc_bytes(size_t i) const {
    return DocOffset(i + 1) - DocOffset(i);
  }

  /// Document i as an owning Document (bytes copied out of the mapping —
  /// results built from it survive the store).
  Document MaterializeDoc(size_t i) const {
    return Document(std::string(doc_view(i)));
  }

  /// The whole corpus, materialized (the full-scan path).
  engine::Corpus ReadAll() const;

  /// e.g. "segment: 1000 docs, 512.0 KiB data, 129 pages × 4096".
  std::string ToString() const;

 private:
  SegmentStore() = default;

  uint64_t DocOffset(size_t i) const;

  // shared_ptr: the store is copied into per-call state freely; the
  // mapping lives until the last copy dies.
  std::shared_ptr<const MappedFile> file_;
  size_t num_docs_ = 0;
  uint64_t data_bytes_ = 0;
  size_t page_size_ = 0;
  size_t num_pages_ = 0;
  size_t doc_table_offset_ = 0;
};

/// Default name of the posting index stored alongside a segment:
/// "<segment path>.idx".
std::string IndexPathFor(const std::string& segment_path);

}  // namespace storage
}  // namespace spanners

#endif  // SPANNERS_STORAGE_SEGMENT_H_
