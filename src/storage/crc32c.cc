#include "storage/crc32c.h"

#include <array>

namespace spanners {
namespace storage {

namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected Castagnoli polynomial

struct Tables {
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1)));
    tb.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tb.t[1][i] = (tb.t[0][i] >> 8) ^ tb.t[0][tb.t[0][i] & 0xff];
    tb.t[2][i] = (tb.t[1][i] >> 8) ^ tb.t[0][tb.t[1][i] & 0xff];
    tb.t[3][i] = (tb.t[2][i] >> 8) ^ tb.t[0][tb.t[2][i] & 0xff];
  }
  return tb;
}

const Tables& T() {
  static const Tables tb = BuildTables();
  return tb;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t init) {
  const Tables& tb = T();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  return ~crc;
}

}  // namespace storage
}  // namespace spanners
