// Durable file writing shared by the storage writers.
//
// WriteFileDurable is the single write-a-file primitive behind
// SegmentStore::Write and NgramIndex::Save. It provides the full
// crash-atomic discipline the on-disk formats assume:
//
//   write tmp → fsync(tmp) → rename(tmp, path) → fsync(parent dir)
//
// so a reader either sees the complete new file or whatever was at `path`
// before — never a torn half-file — and after the call returns OK the
// file survives power loss (the rename itself is durable only once the
// parent directory's metadata is synced). Every transfer loop is
// EINTR-safe and handles partial writes; any failure unwinds by
// unlinking the tmp file, leaving `path` untouched.
//
// Each step is a fault-injection point (common/fault.h): storage.open,
// storage.write, storage.fsync, storage.rename, storage.dirsync — which
// also locates crashes precisely: kill@storage.rename dies after the data
// sync but before the file becomes visible; kill@storage.dirsync dies
// after it is visible and complete.
#ifndef SPANNERS_STORAGE_FILE_IO_H_
#define SPANNERS_STORAGE_FILE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace spanners {
namespace storage {

/// Atomically and durably replaces `path` with `bytes` (see above).
/// On error, `path` is untouched and no tmp file is left behind — except
/// after a dirsync failure, where the complete new file is already
/// visible (and valid) but its directory entry may not survive a crash;
/// the returned error says so.
Status WriteFileDurable(const std::string& path, std::string_view bytes);

}  // namespace storage
}  // namespace spanners

#endif  // SPANNERS_STORAGE_FILE_IO_H_
