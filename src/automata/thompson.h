// Thompson construction RGX → VA (the "every RGX has an equivalent VAstk"
// direction of the paper's Theorem 4.3): the classical algorithm extended
// with open/close transitions around variable subexpressions. The output
// has a single final state, linear size, and stack-disciplined variable
// operations (so its VA and VAstk semantics coincide).
#ifndef SPANNERS_AUTOMATA_THOMPSON_H_
#define SPANNERS_AUTOMATA_THOMPSON_H_

#include "automata/va.h"
#include "rgx/ast.h"

namespace spanners {

/// Compiles `rgx` into an equivalent VA.
VA CompileToVa(const RgxPtr& rgx);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_THOMPSON_H_
