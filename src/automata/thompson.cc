#include "automata/thompson.h"

#include "common/logging.h"

namespace spanners {

namespace {

struct Fragment {
  StateId in;
  StateId out;
};

Fragment Build(const RgxPtr& node, VA* va) {
  switch (node->kind()) {
    case RgxKind::kEpsilon: {
      StateId i = va->AddState(), f = va->AddState();
      va->AddEpsilon(i, f);
      return {i, f};
    }
    case RgxKind::kChars: {
      StateId i = va->AddState(), f = va->AddState();
      va->AddChar(i, node->chars(), f);
      return {i, f};
    }
    case RgxKind::kVar: {
      Fragment inner = Build(node->child(0), va);
      StateId i = va->AddState(), f = va->AddState();
      va->AddOpen(i, node->var(), inner.in);
      va->AddClose(inner.out, node->var(), f);
      return {i, f};
    }
    case RgxKind::kConcat: {
      Fragment acc = Build(node->child(0), va);
      for (size_t k = 1; k < node->children().size(); ++k) {
        Fragment next = Build(node->child(k), va);
        va->AddEpsilon(acc.out, next.in);
        acc.out = next.out;
      }
      return acc;
    }
    case RgxKind::kDisj: {
      StateId i = va->AddState(), f = va->AddState();
      for (const RgxPtr& c : node->children()) {
        Fragment branch = Build(c, va);
        va->AddEpsilon(i, branch.in);
        va->AddEpsilon(branch.out, f);
      }
      return {i, f};
    }
    case RgxKind::kStar: {
      Fragment inner = Build(node->child(0), va);
      StateId i = va->AddState(), f = va->AddState();
      va->AddEpsilon(i, inner.in);
      va->AddEpsilon(inner.out, f);
      va->AddEpsilon(i, f);
      va->AddEpsilon(inner.out, inner.in);
      return {i, f};
    }
  }
  SPANNERS_CHECK(false) << "unhandled RgxKind";
  return {0, 0};
}

}  // namespace

VA CompileToVa(const RgxPtr& rgx) {
  SPANNERS_CHECK(rgx != nullptr);
  VA va;
  Fragment frag = Build(rgx, &va);
  va.SetInitial(frag.in);
  va.AddFinal(frag.out);
  return va;
}

}  // namespace spanners
