// FPT evaluation of arbitrary (non-sequential) VA, parametrised by the
// number of variables k (paper Theorem 5.10).
//
// The paper iterates over k! orderings of coalesced operation sets; we
// implement an equivalent, simpler fixed-parameter algorithm: breadth-first
// search over configurations (state, position, status-vector) with
// status ∈ {available, open, closed} per variable — O(|A|·|d|·3^k), still
// FPT in k. Equivalence with the brute-force run semantics is covered by
// property tests.
#ifndef SPANNERS_AUTOMATA_FPT_H_
#define SPANNERS_AUTOMATA_FPT_H_

#include "automata/va.h"
#include "common/arena.h"
#include "common/cancel.h"
#include "core/document.h"
#include "core/mapping.h"

namespace spanners {

/// Eval[VA]: does some µ' ∈ ⟦A⟧_doc extend `mu`? Works for any VA
/// (sequentiality not required). `scratch`, when given, is Reset() on
/// entry and supplies all transient memory — pass a reused arena to make
/// repeated oracle calls allocation-free. Once `cancel` trips, the search
/// aborts and the returned bool is meaningless — check the token.
bool EvalVa(const VA& a, const Document& doc, const ExtendedMapping& mu,
            Arena* scratch = nullptr, CancelToken* cancel = nullptr);

/// NonEmp on a document: ⟦A⟧_doc ≠ ∅.
bool MatchesVa(const VA& a, const Document& doc);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_FPT_H_
