#include "automata/lazy_dfa.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "automata/determinize.h"
#include "common/logging.h"

namespace spanners {

LazyDfa::LazyDfa(const VA& a, LazyDfaOptions options)
    : va_(a), options_(options) {
  // Atom-compress the alphabet: every letter CharSet of the VA behaves
  // uniformly on each atom, so one representative byte per atom decides
  // charset membership for all 256 bytes mapped to it.
  std::vector<CharSet> charsets;
  for (StateId q = 0; q < a.NumStates(); ++q)
    for (const VaTransition& t : a.TransitionsFrom(q))
      if (t.kind == TransKind::kChars) charsets.push_back(t.chars);
  atoms_ = PartitionAtoms(charsets);

  for (int b = 0; b < 256; ++b) byte_to_atom_[b] = 0;
  for (size_t i = 0; i < atoms_.size(); ++i)
    for (int b = 0; b < 256; ++b)
      if (atoms_[i].Contains(static_cast<char>(b)))
        byte_to_atom_[b] = static_cast<uint16_t>(i + 1);

  // State 0 is the dead state (empty subset, self-loop on every atom).
  states_.push_back(State{{},
                          std::vector<uint32_t>(atoms_.size() + 1, kDeadState),
                          false});
  interned_.emplace(std::vector<StateId>{}, kDeadState);
  table_bytes_ = states_[0].row.size() * sizeof(uint32_t);

  start_state_ = Intern(Closure({a.initial()}));
  SPANNERS_CHECK(start_state_ != kUnknownState)
      << "lazy-DFA bounds too small for even the start state";
}

std::vector<StateId> LazyDfa::Closure(std::vector<StateId> subset) const {
  // BFS under ε and relaxed variable operations. `in` doubles as the
  // visited set; `subset` is the work list.
  std::vector<uint8_t> in(va_.NumStates(), 0);
  for (StateId q : subset) in[q] = 1;
  for (size_t head = 0; head < subset.size(); ++head) {
    StateId q = subset[head];
    for (const VaTransition& t : va_.TransitionsFrom(q)) {
      if (t.kind == TransKind::kChars) continue;
      if (!in[t.to]) {
        in[t.to] = 1;
        subset.push_back(t.to);
      }
    }
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

uint32_t LazyDfa::Intern(std::vector<StateId> subset) const {
  auto it = interned_.find(subset);
  if (it != interned_.end()) return it->second;

  const size_t state_bytes = (atoms_.size() + 1) * sizeof(uint32_t) +
                             subset.size() * sizeof(StateId);
  if (states_.size() >= options_.max_states ||
      table_bytes_ + state_bytes > options_.max_table_bytes)
    return kUnknownState;

  bool accepting = false;
  for (StateId q : subset)
    if (va_.IsFinal(q)) {
      accepting = true;
      break;
    }

  const uint32_t id = static_cast<uint32_t>(states_.size());
  interned_.emplace(subset, id);
  states_.push_back(State{std::move(subset),
                          std::vector<uint32_t>(atoms_.size() + 1,
                                                kUnknownState),
                          accepting});
  states_.back().row[0] = kDeadState;
  table_bytes_ += state_bytes;
  return id;
}

uint32_t LazyDfa::ComputeTransition(uint32_t from, uint32_t atom) const {
  SPANNERS_DCHECK(atom > 0 && atom <= atoms_.size());
  ++misses_;
  // Atoms refine every letter CharSet, so one representative byte decides
  // whether the whole atom is inside a transition's class.
  const char rep = atoms_[atom - 1].AnyMember();
  std::vector<StateId> next;
  for (StateId q : states_[from].subset)
    for (const VaTransition& t : va_.TransitionsFrom(q))
      if (t.kind == TransKind::kChars && t.chars.Contains(rep))
        next.push_back(t.to);
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  const uint32_t to = Intern(Closure(std::move(next)));
  if (to != kUnknownState) states_[from].row[atom] = to;
  return to;
}

std::optional<bool> LazyDfa::Matches(std::string_view text) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (overflowed_) return std::nullopt;
  uint32_t cur = start_state_;
  for (size_t i = 0; i < text.size(); ++i) {
    if (cur == kDeadState) return false;
    const uint16_t atom =
        byte_to_atom_[static_cast<unsigned char>(text[i])];
    uint32_t next = states_[cur].row[atom];
    if (next == kUnknownState) {
      // Cache miss: upgrade to the exclusive lock, compute (or observe a
      // racing computation), then drop back to shared mode. Interned
      // states are never removed, so resuming from `cur` stays valid.
      lock.unlock();
      {
        std::unique_lock<std::shared_mutex> wlock(mu_);
        if (overflowed_) return std::nullopt;
        next = states_[cur].row[atom];
        if (next == kUnknownState) next = ComputeTransition(cur, atom);
        if (next == kUnknownState) {
          overflowed_ = true;
          return std::nullopt;
        }
      }
      lock.lock();
    }
    cur = next;
  }
  return states_[cur].accepting;
}

LazyDfaStats LazyDfa::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  LazyDfaStats s;
  s.num_atoms = atoms_.size();
  s.num_states = states_.size();
  s.misses = misses_;
  s.overflowed = overflowed_;
  return s;
}

}  // namespace spanners
