#include "automata/lazy_dfa.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "automata/determinize.h"
#include "common/logging.h"
#include "obs/span.h"

namespace spanners {

namespace {

// Table + subset footprint of one state (mirrored by eviction accounting).
size_t StateBytes(size_t num_atoms, size_t subset_size) {
  return (num_atoms + 1) * sizeof(uint32_t) + subset_size * sizeof(StateId);
}

/// Shared gate-health metrics of every lazy DFA in the process. Misses,
/// evictions and fallbacks mirror the per-instance LazyDfaStats fields so
/// a --metrics snapshot shows cache behaviour without walking plans; the
/// lock-wait histogram has no per-instance equivalent and is the one place
/// writer contention on the transition cache becomes visible.
struct DfaMetrics {
  obs::Histogram* lock_wait_ns;
  obs::Histogram* evict_ns;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* fallbacks;
};

const DfaMetrics& Metrics() {
  static const DfaMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
    DfaMetrics m;
    m.lock_wait_ns = r.GetHistogram("lazy_dfa.lock_wait_ns");
    m.evict_ns = r.GetHistogram("lazy_dfa.evict_ns");
    m.misses = r.GetCounter("lazy_dfa.misses");
    m.evictions = r.GetCounter("lazy_dfa.evictions");
    m.fallbacks = r.GetCounter("lazy_dfa.fallbacks");
    return m;
  }();
  return m;
}

}  // namespace

LazyDfa::LazyDfa(const VA& a, LazyDfaOptions options)
    : va_(a), options_(options) {
  // Atom-compress the alphabet: every letter CharSet of the VA behaves
  // uniformly on each atom, so one representative byte per atom decides
  // charset membership for all 256 bytes mapped to it.
  std::vector<CharSet> charsets;
  for (StateId q = 0; q < a.NumStates(); ++q)
    for (const VaTransition& t : a.TransitionsFrom(q))
      if (t.kind == TransKind::kChars) charsets.push_back(t.chars);
  atoms_ = PartitionAtoms(charsets);

  for (int b = 0; b < 256; ++b) byte_to_atom_[b] = 0;
  for (size_t i = 0; i < atoms_.size(); ++i)
    for (int b = 0; b < 256; ++b)
      if (atoms_[i].Contains(static_cast<char>(b)))
        byte_to_atom_[b] = static_cast<uint16_t>(i + 1);

  // State 0 is the dead state (empty subset, self-loop on every atom).
  states_.push_back(State{{},
                          std::vector<uint32_t>(atoms_.size() + 1, kDeadState),
                          false,
                          0});
  interned_.emplace(std::vector<StateId>{}, kDeadState);
  table_bytes_ = states_[0].row.size() * sizeof(uint32_t);

  start_state_ = Intern(Closure({a.initial()}), kDeadState);
  SPANNERS_CHECK(start_state_ != kUnknownState)
      << "lazy-DFA bounds too small for even the start state";
}

std::vector<StateId> LazyDfa::Closure(std::vector<StateId> subset) const {
  // BFS under ε and relaxed variable operations. `in` doubles as the
  // visited set; `subset` is the work list.
  std::vector<uint8_t> in(va_.NumStates(), 0);
  for (StateId q : subset) in[q] = 1;
  for (size_t head = 0; head < subset.size(); ++head) {
    StateId q = subset[head];
    for (const VaTransition& t : va_.TransitionsFrom(q)) {
      if (t.kind == TransKind::kChars) continue;
      if (!in[t.to]) {
        in[t.to] = 1;
        subset.push_back(t.to);
      }
    }
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

size_t LazyDfa::EvictColdStates(uint32_t pinned) const {
  obs::ObsSpan span(Metrics().evict_ns, "dfa_evict");
  // Candidates: every resident state except the two structural anchors
  // and the state the caller is mid-extension on.
  std::vector<uint32_t> candidates;
  candidates.reserve(states_.size());
  std::vector<uint8_t> is_free(states_.size(), 0);
  for (uint32_t id : free_slots_) is_free[id] = 1;
  for (uint32_t id = 0; id < states_.size(); ++id) {
    if (id == kDeadState || id == start_state_ || id == pinned ||
        is_free[id])
      continue;
    candidates.push_back(id);
  }
  if (candidates.empty()) return 0;

  // Evict the coldest quarter (at least one): enough room that the next
  // misses do not immediately re-evict, small enough to keep the hot set.
  const size_t count = std::max<size_t>(1, candidates.size() / 4);
  std::nth_element(candidates.begin(), candidates.begin() + (count - 1),
                   candidates.end(), [this](uint32_t a, uint32_t b) {
                     return states_[a].last_used < states_[b].last_used;
                   });
  candidates.resize(count);

  std::vector<uint8_t> evicted(states_.size(), 0);
  for (uint32_t id : candidates) {
    State& s = states_[id];
    table_bytes_ -= StateBytes(atoms_.size(), s.subset.size());
    interned_.erase(s.subset);
    std::vector<StateId>().swap(s.subset);
    std::vector<uint32_t>().swap(s.row);
    evicted[id] = 1;
    free_slots_.push_back(id);
  }
  // Surviving rows must not point at recycled ids: reset those entries to
  // "not yet computed". One pass over the table; eviction is rare and
  // batched, so the cost amortizes across many misses.
  for (uint32_t id = 0; id < states_.size(); ++id) {
    State& s = states_[id];
    if (s.row.empty()) continue;  // dead slot
    for (uint32_t& to : s.row)
      if (to != kUnknownState && evicted[to]) to = kUnknownState;
  }
  ++generation_;
  evictions_ += count;
  if (obs::Enabled()) Metrics().evictions->Add(count);
  return count;
}

uint32_t LazyDfa::Intern(std::vector<StateId> subset, uint32_t pinned) const {
  auto it = interned_.find(subset);
  if (it != interned_.end()) {
    states_[it->second].last_used = ++use_clock_;
    return it->second;
  }

  // At a bound: shed the cold tail and retry. When nothing is evictable
  // (bounds below even a handful of states) the caller falls back to NFA
  // simulation for this transition's documents.
  const size_t state_bytes = StateBytes(atoms_.size(), subset.size());
  if (free_slots_.empty() &&
      states_.size() - free_slots_.size() >= options_.max_states &&
      EvictColdStates(pinned) == 0)
    return kUnknownState;
  if (table_bytes_ + state_bytes > options_.max_table_bytes &&
      (EvictColdStates(pinned) == 0 ||
       table_bytes_ + state_bytes > options_.max_table_bytes))
    return kUnknownState;

  bool accepting = false;
  for (StateId q : subset)
    if (va_.IsFinal(q)) {
      accepting = true;
      break;
    }

  uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<uint32_t>(states_.size());
    states_.emplace_back();
  }
  interned_.emplace(subset, id);
  State& s = states_[id];
  s.subset = std::move(subset);
  s.row.assign(atoms_.size() + 1, kUnknownState);
  s.row[0] = kDeadState;
  s.accepting = accepting;
  s.last_used = ++use_clock_;
  table_bytes_ += state_bytes;
  return id;
}

uint32_t LazyDfa::ComputeTransition(uint32_t from, uint32_t atom) const {
  SPANNERS_DCHECK(atom > 0 && atom <= atoms_.size());
  ++misses_;
  if (obs::Enabled()) Metrics().misses->Add(1);
  states_[from].last_used = ++use_clock_;
  // Atoms refine every letter CharSet, so one representative byte decides
  // whether the whole atom is inside a transition's class.
  const char rep = atoms_[atom - 1].AnyMember();
  std::vector<StateId> next;
  for (StateId q : states_[from].subset)
    for (const VaTransition& t : va_.TransitionsFrom(q))
      if (t.kind == TransKind::kChars && t.chars.Contains(rep))
        next.push_back(t.to);
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());

  const uint32_t to = Intern(Closure(std::move(next)), from);
  if (to != kUnknownState) states_[from].row[atom] = to;
  return to;
}

std::optional<bool> LazyDfa::Matches(std::string_view text,
                                     CancelToken* cancel) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (size_t attempt = 0; attempt <= options_.max_restarts; ++attempt) {
    // The scan is valid as long as no eviction recycles a state it is
    // standing on; generation_ changes exactly when that may have
    // happened, and the scan restarts from the top of the document.
    uint64_t gen = generation_;
    uint32_t cur = start_state_;
    bool restart = false;
    for (size_t i = 0; i < text.size() && !restart; ++i) {
      // Poll once per chunk, not per byte: the check stays off the
      // per-byte fast path. Tripped ⇒ nullopt; the caller must consult
      // the token before treating this as a capacity fallback.
      if (cancel != nullptr &&
          (i & (CancelGauge::kScanChunkBytes - 1)) == 0 && cancel->Poll(0))
        return std::nullopt;
      if (cur == kDeadState) return false;
      const uint16_t atom =
          byte_to_atom_[static_cast<unsigned char>(text[i])];
      uint32_t next = states_[cur].row[atom];
      if (next == kUnknownState) {
        // Cache miss: upgrade to the exclusive lock, compute (or observe
        // a racing computation), then drop back to shared mode.
        lock.unlock();
        {
          const uint64_t wait_start =
              obs::Enabled() ? obs::NowNanos() : 0;
          std::unique_lock<std::shared_mutex> wlock(mu_);
          if (wait_start != 0)
            Metrics().lock_wait_ns->Record(obs::NowNanos() - wait_start);
          if (generation_ != gen) {
            // An eviction ran while unlocked; `cur` may be recycled.
            restart = true;
          } else {
            next = states_[cur].row[atom];
            if (next == kUnknownState) next = ComputeTransition(cur, atom);
            if (next == kUnknownState) {
              // No room even after eviction: this call gives up (the
              // caller simulates); later calls start over.
              fallbacks_.fetch_add(1, std::memory_order_relaxed);
              if (obs::Enabled()) Metrics().fallbacks->Add(1);
              return std::nullopt;
            }
            // ComputeTransition may itself have evicted (never `cur` or
            // `next`, which are pinned/fresh): adopt the new generation
            // and continue — earlier path states no longer matter.
            gen = generation_;
          }
        }
        lock.lock();
        if (!restart && generation_ != gen) restart = true;  // raced again
      }
      if (!restart) cur = next;
    }
    if (!restart) return states_[cur].accepting;
  }
  // Concurrent evictions kept invalidating the scan: thrashing working
  // set. Give up on the DFA for this call only.
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) Metrics().fallbacks->Add(1);
  return std::nullopt;
}

LazyDfaStats LazyDfa::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  LazyDfaStats s;
  s.num_atoms = atoms_.size();
  s.num_states = states_.size() - free_slots_.size();
  s.misses = misses_;
  s.evictions = evictions_;
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.overflowed = s.fallbacks > 0;
  return s;
}

}  // namespace spanners
