#include "automata/run_eval.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/logging.h"

namespace spanners {

namespace {

// Per-variable run status. kUnopened < kOpen < kClosed is the only legal
// progression; the open/close positions feed the produced mapping.
struct VarStatus {
  enum Phase : uint8_t { kUnopened, kOpen, kClosed } phase = kUnopened;
  Pos open_at = 0;
  Pos close_at = 0;

  bool operator==(const VarStatus& o) const {
    return phase == o.phase && open_at == o.open_at && close_at == o.close_at;
  }
};

struct Config {
  StateId state;
  Pos pos;
  std::vector<VarStatus> statuses;      // indexed by local var index
  std::vector<uint32_t> open_stack;     // local var indexes, stack order

  std::string Key() const {
    std::string key;
    key.reserve(16 + statuses.size() * 9 + open_stack.size() * 4);
    auto put32 = [&key](uint32_t v) {
      key.append(reinterpret_cast<const char*>(&v), 4);
    };
    put32(state);
    put32(pos);
    for (const VarStatus& s : statuses) {
      key.push_back(static_cast<char>(s.phase));
      put32(s.open_at);
      put32(s.close_at);
    }
    for (uint32_t v : open_stack) put32(v);
    return key;
  }
};

// Shared search over configurations; `stack_discipline` switches between
// VA and VAstk close rules.
MappingSet Explore(const VA& a, const Document& doc, bool stack_discipline) {
  const std::vector<VarId> vars = a.Vars().ids();
  auto local_index = [&vars](VarId x) -> uint32_t {
    auto it = std::lower_bound(vars.begin(), vars.end(), x);
    SPANNERS_CHECK(it != vars.end() && *it == x);
    return static_cast<uint32_t>(it - vars.begin());
  };

  MappingSet out;
  std::unordered_set<std::string> seen;
  std::vector<Config> stack;

  Config start{a.initial(), 1, std::vector<VarStatus>(vars.size()), {}};
  seen.insert(start.Key());
  stack.push_back(std::move(start));

  while (!stack.empty()) {
    Config c = std::move(stack.back());
    stack.pop_back();

    if (a.IsFinal(c.state) && c.pos == doc.length() + 1) {
      Mapping m;
      for (size_t i = 0; i < vars.size(); ++i)
        if (c.statuses[i].phase == VarStatus::kClosed)
          m.Set(vars[i], Span(c.statuses[i].open_at, c.statuses[i].close_at));
      out.Insert(std::move(m));
      // Keep exploring: other runs may leave this configuration.
    }

    for (const VaTransition& t : a.TransitionsFrom(c.state)) {
      Config next = c;
      next.state = t.to;
      switch (t.kind) {
        case TransKind::kChars:
          if (c.pos > doc.length() || !t.chars.Contains(doc.at(c.pos)))
            continue;
          next.pos = c.pos + 1;
          break;
        case TransKind::kEpsilon:
          break;
        case TransKind::kOpen: {
          uint32_t i = local_index(t.var);
          if (c.statuses[i].phase != VarStatus::kUnopened) continue;
          next.statuses[i].phase = VarStatus::kOpen;
          next.statuses[i].open_at = c.pos;
          next.open_stack.push_back(i);
          break;
        }
        case TransKind::kClose: {
          uint32_t i = local_index(t.var);
          if (c.statuses[i].phase != VarStatus::kOpen) continue;
          if (stack_discipline &&
              (c.open_stack.empty() || c.open_stack.back() != i))
            continue;  // only the top of the stack may close
          next.statuses[i].phase = VarStatus::kClosed;
          next.statuses[i].close_at = c.pos;
          auto it =
              std::find(next.open_stack.begin(), next.open_stack.end(), i);
          next.open_stack.erase(it);
          break;
        }
      }
      std::string key = next.Key();
      if (seen.insert(std::move(key)).second) stack.push_back(std::move(next));
    }
  }
  return out;
}

}  // namespace

MappingSet RunEval(const VA& a, const Document& doc) {
  return Explore(a, doc, /*stack_discipline=*/false);
}

MappingSet RunEvalStack(const VA& a, const Document& doc) {
  return Explore(a, doc, /*stack_discipline=*/true);
}

bool IsHierarchicalOn(const VA& a, const Document& doc) {
  return RunEval(a, doc).IsHierarchical();
}

}  // namespace spanners
