#include "automata/run_eval.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"
#include "common/logging.h"

namespace spanners {

namespace {

// Per-variable run status. kUnopened < kOpen < kClosed is the only legal
// progression; the open/close positions feed the produced mapping.
struct VarStatus {
  enum Phase : uint8_t { kUnopened, kOpen, kClosed };
  uint8_t phase = kUnopened;
  Pos open_at = 0;
  Pos close_at = 0;
};

// A configuration of the run search. The status and open-stack arrays live
// in the arena; the struct itself is a trivially copyable handle so the
// DFS stack can be an ArenaVector.
struct Config {
  StateId state;
  Pos pos;
  VarStatus* statuses;   // arena array, one per local var index
  uint32_t* open_stack;  // arena array of local var indexes, stack order
  uint32_t open_len;
};

// Canonical key bytes of a configuration: state, pos, every status, then
// the open stack — written into a reused buffer, no allocation per probe.
// The optional patch (status `patch` at index `patched`, var `pushed`
// appended to / `removed` filtered from the open stack) lets successor
// configurations be keyed without materializing their arrays; this
// function is the single owner of the key layout.
uint32_t WriteKey(char* out, StateId state, Pos pos, const VarStatus* st,
                  uint32_t k, const uint32_t* open, uint32_t open_len,
                  int patched = -1, VarStatus patch = VarStatus{},
                  int pushed = -1, int removed = -1) {
  char* p = out;
  std::memcpy(p, &state, 4);
  p += 4;
  std::memcpy(p, &pos, 4);
  p += 4;
  for (uint32_t i = 0; i < k; ++i) {
    const VarStatus& s = static_cast<int>(i) == patched ? patch : st[i];
    *p++ = static_cast<char>(s.phase);
    std::memcpy(p, &s.open_at, 4);
    p += 4;
    std::memcpy(p, &s.close_at, 4);
    p += 4;
  }
  for (uint32_t j = 0; j < open_len; ++j) {
    if (static_cast<int>(open[j]) == removed) continue;
    std::memcpy(p, &open[j], 4);
    p += 4;
  }
  if (pushed >= 0) {
    uint32_t v = static_cast<uint32_t>(pushed);
    std::memcpy(p, &v, 4);
    p += 4;
  }
  return static_cast<uint32_t>(p - out);
}

// Shared search over configurations; `stack_discipline` switches between
// VA and VAstk close rules. All transient state — visited keys, the DFS
// stack, candidate buffers, result dedup — lives in `arena`; only the
// final Mappings pushed into `sink` touch the heap, and even those reuse
// pooled entry vectors when the sink exposes a pool.
void ExploreTo(const VA& a, const Document& doc, bool stack_discipline,
               Arena& arena, MappingSink& sink, const std::vector<VarId>& vars,
               CancelToken* cancel) {
  CancelGauge gauge(cancel, &arena);
  const uint32_t k = static_cast<uint32_t>(vars.size());
  auto local_index = [&vars](VarId x) -> uint32_t {
    auto it = std::lower_bound(vars.begin(), vars.end(), x);
    SPANNERS_CHECK(it != vars.end() && *it == x);
    return static_cast<uint32_t>(it - vars.begin());
  };

  FlatKeySet seen(&arena, 256);
  FlatMappingSet results(&arena);
  ArenaVector<Config> stack(&arena);
  // Scratch reused for every candidate: key bytes and output tuples.
  char* keybuf = arena.AllocateArray<char>(8 + 9 * size_t{k} + 4 * size_t{k});
  SpanTuple* tuples = arena.AllocateArray<SpanTuple>(k);

  VarStatus* st0 = arena.AllocateArray<VarStatus>(k);
  for (uint32_t i = 0; i < k; ++i) st0[i] = VarStatus{};
  uint32_t* open0 = arena.AllocateArray<uint32_t>(0);
  Config start{a.initial(), 1, st0, open0, 0};
  uint32_t len0 = WriteKey(keybuf, start.state, start.pos, st0, k, open0, 0);
  seen.Insert(keybuf, len0);
  stack.push_back(start);

  while (!stack.empty()) {
    // Tripped ⇒ the partial result set is garbage; the caller converts
    // the token into a Status and surfaces no rows.
    if (gauge.ShouldStop()) return;
    Config c = stack.back();
    stack.pop_back();

    if (a.IsFinal(c.state) && c.pos == doc.length() + 1) {
      uint32_t nt = 0;
      for (uint32_t i = 0; i < k; ++i)
        if (c.statuses[i].phase == VarStatus::kClosed)
          tuples[nt++] =
              SpanTuple{vars[i], c.statuses[i].open_at, c.statuses[i].close_at};
      results.Insert(tuples, nt);  // vars[] ascending keeps tuples sorted
      // Keep exploring: other runs may leave this configuration.
    }

    for (const VaTransition& t : a.TransitionsFrom(c.state)) {
      // Describe the successor as (base config, patch) and key it without
      // materializing; the arrays are copied only for genuinely new
      // configurations.
      Pos next_pos = c.pos;
      int patched = -1;  // local var index whose status changes
      VarStatus patch{};
      int pushed = -1;   // var index appended to the open stack
      int removed = -1;  // var index removed from the open stack
      switch (t.kind) {
        case TransKind::kChars:
          if (c.pos > doc.length() || !t.chars.Contains(doc.at(c.pos)))
            continue;
          next_pos = c.pos + 1;
          break;
        case TransKind::kEpsilon:
          break;
        case TransKind::kOpen: {
          uint32_t i = local_index(t.var);
          if (c.statuses[i].phase != VarStatus::kUnopened) continue;
          patched = static_cast<int>(i);
          patch.phase = VarStatus::kOpen;
          patch.open_at = c.pos;
          pushed = static_cast<int>(i);
          break;
        }
        case TransKind::kClose: {
          uint32_t i = local_index(t.var);
          if (c.statuses[i].phase != VarStatus::kOpen) continue;
          if (stack_discipline &&
              (c.open_len == 0 || c.open_stack[c.open_len - 1] != i))
            continue;  // only the top of the stack may close
          patched = static_cast<int>(i);
          patch = c.statuses[i];
          patch.phase = VarStatus::kClosed;
          patch.close_at = c.pos;
          removed = static_cast<int>(i);
          break;
        }
      }

      uint32_t key_len =
          WriteKey(keybuf, t.to, next_pos, c.statuses, k, c.open_stack,
                   c.open_len, patched, patch, pushed, removed);
      if (!seen.Insert(keybuf, key_len).second) continue;

      // New configuration: materialize the patched arrays in the arena.
      Config next{t.to, next_pos, c.statuses, c.open_stack, c.open_len};
      if (patched >= 0) {
        VarStatus* st = arena.AllocateArray<VarStatus>(k);
        std::memcpy(st, c.statuses, k * sizeof(VarStatus));
        st[patched] = patch;
        next.statuses = st;
        uint32_t* open = arena.AllocateArray<uint32_t>(k);
        uint32_t m = 0;
        for (uint32_t j = 0; j < c.open_len; ++j)
          if (static_cast<int>(c.open_stack[j]) != removed)
            open[m++] = c.open_stack[j];
        if (pushed >= 0) open[m++] = static_cast<uint32_t>(pushed);
        next.open_stack = open;
        next.open_len = m;
      }
      stack.push_back(next);
    }
  }

  MappingPool* pool = sink.pool();
  results.ForEach([&](const SpanTuple* tp, uint32_t n) {
    std::vector<Mapping::Entry> entries = MappingPool::AcquireFrom(pool);
    entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
      entries.push_back({tp[i].var, Span(tp[i].begin, tp[i].end)});
    sink.Push(Mapping::FromSortedEntries(std::move(entries)));
  });
}

}  // namespace

void RunEvalTo(const VA& a, const Document& doc, Arena* arena,
               MappingSink& sink, const VarSet* vars, CancelToken* cancel) {
  arena->Reset();
  // The a.Vars() temporary outlives the call (end of full expression).
  ExploreTo(a, doc, /*stack_discipline=*/false, *arena, sink,
            vars != nullptr ? vars->ids() : a.Vars().ids(), cancel);
}

void RunEvalStackTo(const VA& a, const Document& doc, Arena* arena,
                    MappingSink& sink, const VarSet* vars,
                    CancelToken* cancel) {
  arena->Reset();
  ExploreTo(a, doc, /*stack_discipline=*/true, *arena, sink,
            vars != nullptr ? vars->ids() : a.Vars().ids(), cancel);
}

void RunEvalInto(const VA& a, const Document& doc, Arena* arena,
                 std::vector<Mapping>* out) {
  VectorSink sink(out);
  RunEvalTo(a, doc, arena, sink);
}

void RunEvalStackInto(const VA& a, const Document& doc, Arena* arena,
                      std::vector<Mapping>* out) {
  VectorSink sink(out);
  RunEvalStackTo(a, doc, arena, sink);
}

MappingSet RunEval(const VA& a, const Document& doc) {
  Arena arena;
  std::vector<Mapping> out;
  RunEvalInto(a, doc, &arena, &out);
  return MappingSet(std::move(out));
}

MappingSet RunEvalStack(const VA& a, const Document& doc) {
  Arena arena;
  std::vector<Mapping> out;
  RunEvalStackInto(a, doc, &arena, &out);
  return MappingSet(std::move(out));
}

bool IsHierarchicalOn(const VA& a, const Document& doc) {
  return RunEval(a, doc).IsHierarchical();
}

}  // namespace spanners
