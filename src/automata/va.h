// Variable-set automata (VA, paper §3.2): finite automata extended with
// variable-open (x⊢) and variable-close (⊣x) transitions. Letter
// transitions carry CharSets (a transition on a class is the disjunction
// of its letters). The structure supports multiple final states — the
// paper allows this w.l.o.g. (Appendix D) and determinization needs it.
#ifndef SPANNERS_AUTOMATA_VA_H_
#define SPANNERS_AUTOMATA_VA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/charset.h"
#include "core/variable.h"

namespace spanners {

using StateId = uint32_t;

enum class TransKind : uint8_t {
  kChars,    // consume one letter from a CharSet
  kEpsilon,  // move without consuming
  kOpen,     // x⊢ : open variable x at the current position
  kClose,    // ⊣x : close variable x at the current position
};

/// One outgoing transition of a VA state.
struct VaTransition {
  TransKind kind;
  CharSet chars;  // kChars only
  VarId var = 0;  // kOpen / kClose only
  StateId to = 0;

  bool IsVarOp() const {
    return kind == TransKind::kOpen || kind == TransKind::kClose;
  }
};

/// A variable operation symbol (x⊢ or ⊣x) as used in run labels.
struct VarOp {
  bool open;
  VarId var;

  bool operator==(const VarOp& o) const {
    return open == o.open && var == o.var;
  }
  bool operator<(const VarOp& o) const {
    return var != o.var ? var < o.var : open > o.open;  // opens before closes
  }
  std::string ToString() const {
    return open ? Variable::Name(var) + "⊢" : "⊣" + Variable::Name(var);
  }
};

/// A variable-set automaton. States are dense ids; build incrementally.
class VA {
 public:
  VA() = default;

  StateId AddState();
  /// Adds `n` states, returning the first id.
  StateId AddStates(size_t n);
  size_t NumStates() const { return adj_.size(); }
  size_t NumTransitions() const;

  void SetInitial(StateId q) { initial_ = q; }
  StateId initial() const { return initial_; }

  void AddFinal(StateId q);
  void ClearFinals() { finals_.clear(); }
  bool IsFinal(StateId q) const;
  const std::vector<StateId>& finals() const { return finals_; }
  /// The unique final state; aborts unless exactly one exists.
  StateId SingleFinal() const;

  void AddChar(StateId from, CharSet cs, StateId to);
  void AddEpsilon(StateId from, StateId to);
  void AddOpen(StateId from, VarId x, StateId to);
  void AddClose(StateId from, VarId x, StateId to);
  void AddTransition(StateId from, const VaTransition& t);

  const std::vector<VaTransition>& TransitionsFrom(StateId q) const {
    return adj_[q];
  }

  /// var(A): variables appearing in open or close transitions.
  VarSet Vars() const;

  /// Copy with only useful states (reachable from the initial state and
  /// co-reachable to some final state); ids are renumbered.
  VA Trimmed() const;

  /// States reachable from `q` via ε-transitions only (including q).
  std::vector<StateId> EpsilonClosure(StateId q) const;

  /// No ε-transitions, at most one successor per variable operation, and
  /// pairwise-disjoint CharSets per state (paper §6 determinism).
  bool IsDeterministic() const;

  /// Graphviz dot rendering, for debugging and docs.
  std::string ToDot() const;

 private:
  std::vector<std::vector<VaTransition>> adj_;
  StateId initial_ = 0;
  std::vector<StateId> finals_;  // sorted, unique
};

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_VA_H_
