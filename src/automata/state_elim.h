// VA → RGX by state elimination and path unions (paper Theorem 4.3 /
// Theorem 4.4, Appendix B): eliminate operation-free states into regular-
// expression edges, enumerate consistent paths of ≤ 2k variable
// operations, drop dangling opens, reorder same-position operation blocks
// into a well-nested arrangement, and emit the disjunction of path RGX.
//
// Scope (documented in DESIGN.md): supported for automata whose paths
// admit a well-nested arrangement after same-position reordering — all
// stack-disciplined automata (VAstk, Thompson outputs) and the
// hierarchical automata of Theorem 4.4. Other inputs yield NotSupported.
#ifndef SPANNERS_AUTOMATA_STATE_ELIM_H_
#define SPANNERS_AUTOMATA_STATE_ELIM_H_

#include "automata/va.h"
#include "common/status.h"
#include "rgx/ast.h"

namespace spanners {

/// An RGX equivalent to `a`; an unsatisfiable class node when ⟦a⟧ ≡ ∅.
Result<RgxPtr> VaToRgx(const VA& a);

/// The same construction, keeping the union members separate. Each member
/// is a functional RGX (path RGX) — the paper's corollary to Theorem 4.3.
Result<std::vector<RgxPtr>> VaToFunctionalRgxUnion(const VA& a);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_STATE_ELIM_H_
