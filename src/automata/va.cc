#include "automata/va.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace spanners {

StateId VA::AddState() {
  adj_.emplace_back();
  return static_cast<StateId>(adj_.size() - 1);
}

StateId VA::AddStates(size_t n) {
  StateId first = static_cast<StateId>(adj_.size());
  adj_.resize(adj_.size() + n);
  return first;
}

size_t VA::NumTransitions() const {
  size_t n = 0;
  for (const auto& out : adj_) n += out.size();
  return n;
}

void VA::AddFinal(StateId q) {
  auto it = std::lower_bound(finals_.begin(), finals_.end(), q);
  if (it == finals_.end() || *it != q) finals_.insert(it, q);
}

bool VA::IsFinal(StateId q) const {
  return std::binary_search(finals_.begin(), finals_.end(), q);
}

StateId VA::SingleFinal() const {
  SPANNERS_CHECK(finals_.size() == 1)
      << "expected exactly one final state, have " << finals_.size();
  return finals_[0];
}

void VA::AddChar(StateId from, CharSet cs, StateId to) {
  adj_[from].push_back({TransKind::kChars, cs, 0, to});
}

void VA::AddEpsilon(StateId from, StateId to) {
  adj_[from].push_back({TransKind::kEpsilon, CharSet(), 0, to});
}

void VA::AddOpen(StateId from, VarId x, StateId to) {
  adj_[from].push_back({TransKind::kOpen, CharSet(), x, to});
}

void VA::AddClose(StateId from, VarId x, StateId to) {
  adj_[from].push_back({TransKind::kClose, CharSet(), x, to});
}

void VA::AddTransition(StateId from, const VaTransition& t) {
  adj_[from].push_back(t);
}

VarSet VA::Vars() const {
  VarSet out;
  for (const auto& trans : adj_)
    for (const VaTransition& t : trans)
      if (t.IsVarOp()) out.Insert(t.var);
  return out;
}

VA VA::Trimmed() const {
  const size_t n = NumStates();
  // Forward reachability.
  std::vector<bool> fwd(n, false);
  std::deque<StateId> queue = {initial_};
  fwd[initial_] = true;
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (const VaTransition& t : adj_[q]) {
      if (!fwd[t.to]) {
        fwd[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
  // Backward reachability from finals over reversed edges.
  std::vector<std::vector<StateId>> rev(n);
  for (StateId q = 0; q < n; ++q)
    for (const VaTransition& t : adj_[q]) rev[t.to].push_back(q);
  std::vector<bool> bwd(n, false);
  for (StateId f : finals_) {
    if (!bwd[f]) {
      bwd[f] = true;
      queue.push_back(f);
    }
  }
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    for (StateId p : rev[q]) {
      if (!bwd[p]) {
        bwd[p] = true;
        queue.push_back(p);
      }
    }
  }

  VA out;
  std::vector<StateId> remap(n, UINT32_MAX);
  for (StateId q = 0; q < n; ++q)
    if (fwd[q] && bwd[q]) remap[q] = out.AddState();
  // Keep a well-formed automaton even when the language is empty.
  if (remap[initial_] == UINT32_MAX) {
    VA empty;
    empty.SetInitial(empty.AddState());
    return empty;
  }
  out.SetInitial(remap[initial_]);
  for (StateId f : finals_)
    if (remap[f] != UINT32_MAX) out.AddFinal(remap[f]);
  for (StateId q = 0; q < n; ++q) {
    if (remap[q] == UINT32_MAX) continue;
    for (const VaTransition& t : adj_[q]) {
      if (remap[t.to] == UINT32_MAX) continue;
      VaTransition copy = t;
      copy.to = remap[t.to];
      out.AddTransition(remap[q], copy);
    }
  }
  return out;
}

std::vector<StateId> VA::EpsilonClosure(StateId q) const {
  std::vector<bool> seen(NumStates(), false);
  std::vector<StateId> out;
  std::deque<StateId> queue = {q};
  seen[q] = true;
  while (!queue.empty()) {
    StateId p = queue.front();
    queue.pop_front();
    out.push_back(p);
    for (const VaTransition& t : adj_[p]) {
      if (t.kind == TransKind::kEpsilon && !seen[t.to]) {
        seen[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool VA::IsDeterministic() const {
  for (const auto& trans : adj_) {
    for (size_t i = 0; i < trans.size(); ++i) {
      if (trans[i].kind == TransKind::kEpsilon) return false;
      for (size_t j = i + 1; j < trans.size(); ++j) {
        const VaTransition& a = trans[i];
        const VaTransition& b = trans[j];
        if (a.kind == TransKind::kChars && b.kind == TransKind::kChars) {
          if (!a.chars.Intersect(b.chars).empty()) return false;
        } else if (a.kind == b.kind && a.IsVarOp() && a.var == b.var) {
          return false;  // duplicate variable-op symbol
        }
      }
    }
  }
  return true;
}

std::string VA::ToDot() const {
  std::string out = "digraph VA {\n  rankdir=LR;\n";
  out += "  __start [shape=point];\n";
  for (StateId q = 0; q < NumStates(); ++q) {
    out += "  q" + std::to_string(q) +
           (IsFinal(q) ? " [shape=doublecircle];\n" : " [shape=circle];\n");
  }
  out += "  __start -> q" + std::to_string(initial_) + ";\n";
  for (StateId q = 0; q < NumStates(); ++q) {
    for (const VaTransition& t : adj_[q]) {
      std::string label;
      switch (t.kind) {
        case TransKind::kChars:
          label = t.chars.ToString();
          break;
        case TransKind::kEpsilon:
          label = "eps";
          break;
        case TransKind::kOpen:
          label = Variable::Name(t.var) + "|-";
          break;
        case TransKind::kClose:
          label = "-|" + Variable::Name(t.var);
          break;
      }
      out += "  q" + std::to_string(q) + " -> q" + std::to_string(t.to) +
             " [label=\"" + label + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace spanners
