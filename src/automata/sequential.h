// Sequential variable-set automata (paper §5.2).
//
// A VA is sequential when (i) no path from the initial state performs an
// inconsistent variable operation (opening an open/closed variable,
// closing an unopened/closed one) and (ii) every path reaching a final
// state has closed every variable it opened. This is the semantics of the
// checking algorithm in the paper's Proposition 5.5.
#ifndef SPANNERS_AUTOMATA_SEQUENTIAL_H_
#define SPANNERS_AUTOMATA_SEQUENTIAL_H_

#include "automata/va.h"

namespace spanners {

/// Proposition 5.5: decides sequentiality. Runs in O(|vars| · |A|)
/// (the paper gives NLOGSPACE; a deterministic product search is linear).
bool IsSequentialVa(const VA& a);

/// Proposition 5.6: an equivalent sequential VA. Tracks a per-variable
/// status {available, open, closed, skipped} in the state, where "skipped"
/// models taking an open transition whose variable will dangle (and is
/// therefore unused). Worst-case exponential in |vars|; only reachable
/// product states are materialised.
VA MakeSequential(const VA& a);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_SEQUENTIAL_H_
