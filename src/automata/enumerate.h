// Polynomial-delay enumeration of ⟦γ⟧_d (paper Theorem 5.1, Algorithm 1):
// assign variables one at a time to a span or ⊥, pruning with the Eval
// decision procedure; with a PTIME oracle the delay between two outputs is
// polynomial.
#ifndef SPANNERS_AUTOMATA_ENUMERATE_H_
#define SPANNERS_AUTOMATA_ENUMERATE_H_

#include <functional>
#include <optional>
#include <vector>

#include "automata/va.h"
#include "common/arena.h"
#include "common/cancel.h"
#include "core/document.h"
#include "core/mapping.h"
#include "core/mapping_sink.h"

namespace spanners {

/// The Eval[L] decision procedure abstracted: "can this extended mapping
/// be extended to an output?".
using EvalOracle = std::function<bool(const ExtendedMapping&)>;

/// Incremental enumerator implementing the paper's Algorithm 1. Next()
/// produces each mapping of the semantics exactly once; the number of
/// oracle calls between consecutive outputs is O(|vars| · |spans| + 1),
/// hence polynomial delay whenever the oracle is PTIME.
class MappingEnumerator {
 public:
  /// A tripped `cancel` token ends the enumeration early (Next() returns
  /// nullopt as if exhausted); the caller distinguishes completion from
  /// cancellation by checking the token. `arena`, when given with a
  /// token, anchors the memory-budget baseline (pass the oracle scratch
  /// arena so per-call churn counts against the budget).
  MappingEnumerator(VarSet vars, const Document& doc, EvalOracle oracle,
                    CancelToken* cancel = nullptr,
                    const Arena* arena = nullptr);

  /// The next mapping, or nullopt when exhausted (or cancelled).
  std::optional<Mapping> Next();

  /// Oracle invocations since construction (for delay accounting).
  size_t oracle_calls() const { return oracle_calls_; }

  /// Drains the enumerator into a set.
  MappingSet Drain();

  /// Drains into a vector (each mapping is produced exactly once, so no
  /// dedup structure is needed).
  void DrainTo(std::vector<Mapping>* out);

  /// Drains into a sink, drawing result storage from the sink's pool and
  /// stopping early when a Push returns false.
  void DrainTo(MappingSink& sink);

 private:
  // One DFS frame: variable index `var_idx` iterating choice `choice_idx`
  // over span(d) ∪ {⊥}. Spans are addressed by their lexicographic rank
  // via Document::SpanAt — nothing is materialized (span(d) is O(n²)).
  struct Frame {
    size_t var_idx;
    size_t choice_idx;
  };

  bool OracleAccepts();
  /// Next(), drawing the produced mapping's storage from `pool` when set.
  std::optional<Mapping> NextPooled(MappingPool* pool);

  std::vector<VarId> vars_;
  const Document* doc_;
  size_t num_spans_;
  EvalOracle oracle_;
  ExtendedMapping current_;
  std::vector<Frame> stack_;
  CancelGauge gauge_;
  bool started_ = false;
  bool done_ = false;
  size_t oracle_calls_ = 0;
};

/// ⟦A⟧_doc for sequential VA via the PTIME matcher (Theorem 5.7 + 5.1).
MappingSet EnumerateSequential(const VA& a, const Document& doc);

/// ⟦A⟧_doc for arbitrary VA via the FPT evaluator (Theorem 5.10 + 5.1).
MappingSet EnumerateVa(const VA& a, const Document& doc);

/// Arena-backed variants: `scratch` supplies the oracle's transient memory
/// (it is Reset() between oracle calls); results are appended to *out.
void EnumerateSequentialInto(const VA& a, const Document& doc, Arena* scratch,
                             std::vector<Mapping>* out);
void EnumerateVaInto(const VA& a, const Document& doc, Arena* scratch,
                     std::vector<Mapping>* out);

/// Streaming variants of the same: results are pushed into `sink`. A
/// tripped `cancel` token ends the stream early; rows already pushed are
/// the caller's to discard (the request surfaces only the error Status).
void EnumerateSequentialTo(const VA& a, const Document& doc, Arena* scratch,
                           MappingSink& sink, CancelToken* cancel = nullptr);
void EnumerateVaTo(const VA& a, const Document& doc, Arena* scratch,
                   MappingSink& sink, CancelToken* cancel = nullptr);

/// Enumerator objects for delay instrumentation. `scratch`, when non-null,
/// must outlive the enumerator and is reused across oracle calls.
MappingEnumerator MakeSequentialEnumerator(const VA& a, const Document& doc,
                                           Arena* scratch = nullptr,
                                           CancelToken* cancel = nullptr);
MappingEnumerator MakeVaEnumerator(const VA& a, const Document& doc,
                                   Arena* scratch = nullptr,
                                   CancelToken* cancel = nullptr);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_ENUMERATE_H_
