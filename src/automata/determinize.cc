#include "automata/determinize.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/logging.h"

namespace spanners {

std::vector<CharSet> PartitionAtoms(const std::vector<CharSet>& sets) {
  std::vector<CharSet> atoms;
  CharSet covered = CharSet::None();
  for (const CharSet& s : sets) covered = covered.Union(s);
  if (covered.empty()) return atoms;
  atoms.push_back(covered);
  for (const CharSet& s : sets) {
    std::vector<CharSet> next;
    next.reserve(atoms.size() + 1);
    for (const CharSet& atom : atoms) {
      CharSet in = atom.Intersect(s);
      CharSet out = atom.Minus(s);
      if (!in.empty()) next.push_back(in);
      if (!out.empty()) next.push_back(out);
    }
    atoms = std::move(next);
  }
  return atoms;
}

VA Determinize(const VA& a) {
  // Subset states are sorted vectors of (ε-closed) original states.
  using Subset = std::vector<StateId>;

  auto closure_of = [&a](Subset s) {
    std::set<StateId> acc;
    for (StateId q : s)
      for (StateId c : a.EpsilonClosure(q)) acc.insert(c);
    return Subset(acc.begin(), acc.end());
  };

  // Global alphabet atoms and variable operations.
  std::vector<CharSet> charsets;
  std::set<std::pair<bool, VarId>> ops;
  for (StateId q = 0; q < a.NumStates(); ++q) {
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      if (t.kind == TransKind::kChars) charsets.push_back(t.chars);
      if (t.IsVarOp()) ops.insert({t.kind == TransKind::kOpen, t.var});
    }
  }
  std::vector<CharSet> atoms = PartitionAtoms(charsets);

  VA out;
  std::map<Subset, StateId> ids;
  std::deque<Subset> queue;

  auto intern = [&](Subset s) -> StateId {
    auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState();
    for (StateId q : s) {
      if (a.IsFinal(q)) {
        out.AddFinal(id);
        break;
      }
    }
    ids.emplace(s, id);
    queue.push_back(std::move(s));
    return id;
  };

  Subset start = closure_of({a.initial()});
  out.SetInitial(intern(start));

  while (!queue.empty()) {
    Subset s = queue.front();
    queue.pop_front();
    StateId from = ids.at(s);

    for (const CharSet& atom : atoms) {
      char witness = atom.AnyMember();
      Subset next;
      for (StateId q : s)
        for (const VaTransition& t : a.TransitionsFrom(q))
          if (t.kind == TransKind::kChars && t.chars.Contains(witness))
            next.push_back(t.to);
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      out.AddChar(from, atom, intern(closure_of(std::move(next))));
    }
    for (const auto& [open, var] : ops) {
      Subset next;
      for (StateId q : s) {
        for (const VaTransition& t : a.TransitionsFrom(q)) {
          bool match = open ? t.kind == TransKind::kOpen
                            : t.kind == TransKind::kClose;
          if (match && t.var == var) next.push_back(t.to);
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      StateId to = intern(closure_of(std::move(next)));
      if (open) {
        out.AddOpen(from, var, to);
      } else {
        out.AddClose(from, var, to);
      }
    }
  }
  SPANNERS_DCHECK(out.IsDeterministic());
  return out;
}

}  // namespace spanners
