#include "automata/sequential.h"

#include <algorithm>
#include <array>
#include <deque>
#include <string>
#include <unordered_map>

#include "common/logging.h"

namespace spanners {

namespace {

enum VarPhase : uint8_t { kAvail = 0, kOpen = 1, kClosed = 2, kSkipped = 3 };

}  // namespace

bool IsSequentialVa(const VA& a) {
  // Independent product search per variable: (state, phase of x).
  for (VarId x : a.Vars()) {
    const size_t n = a.NumStates();
    std::vector<std::array<bool, 3>> seen(n, {false, false, false});
    std::deque<std::pair<StateId, uint8_t>> queue;
    seen[a.initial()][kAvail] = true;
    queue.emplace_back(a.initial(), kAvail);
    while (!queue.empty()) {
      auto [q, phase] = queue.front();
      queue.pop_front();
      if (a.IsFinal(q) && phase == kOpen) return false;  // dangling at final
      for (const VaTransition& t : a.TransitionsFrom(q)) {
        uint8_t next = phase;
        if (t.kind == TransKind::kOpen && t.var == x) {
          if (phase != kAvail) return false;  // double open
          next = kOpen;
        } else if (t.kind == TransKind::kClose && t.var == x) {
          if (phase != kOpen) return false;  // close before open / re-close
          next = kClosed;
        }
        if (!seen[t.to][next]) {
          seen[t.to][next] = true;
          queue.emplace_back(t.to, next);
        }
      }
    }
  }
  return true;
}

VA MakeSequential(const VA& a) {
  const std::vector<VarId> vars = a.Vars().ids();
  const size_t k = vars.size();
  auto local_index = [&vars](VarId x) {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
  };

  VA out;
  StateId final_state = out.AddState();
  out.AddFinal(final_state);

  struct Key {
    StateId q;
    std::string phases;
    bool operator==(const Key& o) const {
      return q == o.q && phases == o.phases;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return std::hash<std::string>()(key.phases) * 31 + key.q;
    }
  };
  std::unordered_map<Key, StateId, KeyHash> ids;
  std::deque<Key> queue;

  auto intern = [&](StateId q, const std::string& phases) {
    Key key{q, phases};
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState();
    ids.emplace(key, id);
    queue.push_back(std::move(key));
    // A product state accepts when the original state is final and no
    // variable dangles open along this path.
    if (a.IsFinal(q) &&
        phases.find(static_cast<char>(kOpen)) == std::string::npos) {
      out.AddEpsilon(id, final_state);
    }
    return id;
  };

  std::string start_phases(k, static_cast<char>(kAvail));
  StateId start = intern(a.initial(), start_phases);
  out.SetInitial(start);

  while (!queue.empty()) {
    Key key = queue.front();
    queue.pop_front();
    StateId from = ids.at(key);
    for (const VaTransition& t : a.TransitionsFrom(key.q)) {
      switch (t.kind) {
        case TransKind::kChars:
          out.AddChar(from, t.chars, intern(t.to, key.phases));
          break;
        case TransKind::kEpsilon:
          out.AddEpsilon(from, intern(t.to, key.phases));
          break;
        case TransKind::kOpen: {
          size_t i = local_index(t.var);
          if (key.phases[i] != static_cast<char>(kAvail)) break;
          // Really open the variable...
          std::string opened = key.phases;
          opened[i] = static_cast<char>(kOpen);
          out.AddOpen(from, t.var, intern(t.to, opened));
          // ...or skip the open: the original run would leave x dangling
          // (hence unused); taking the transition silently and forbidding
          // a later close preserves the semantics.
          std::string skipped = key.phases;
          skipped[i] = static_cast<char>(kSkipped);
          out.AddEpsilon(from, intern(t.to, skipped));
          break;
        }
        case TransKind::kClose: {
          size_t i = local_index(t.var);
          if (key.phases[i] != static_cast<char>(kOpen)) break;
          std::string closed = key.phases;
          closed[i] = static_cast<char>(kClosed);
          out.AddClose(from, t.var, intern(t.to, closed));
          break;
        }
      }
    }
  }
  return out.Trimmed();
}

}  // namespace spanners
