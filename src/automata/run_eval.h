// Brute-force run semantics of VA / VAstk (paper §3.2): explores every run
// configuration explicitly. Exponential in the number of variables —
// intended as ground truth for tests and small documents only. Efficient
// evaluation lives in matcher.h / fpt.h / enumerate.h.
#ifndef SPANNERS_AUTOMATA_RUN_EVAL_H_
#define SPANNERS_AUTOMATA_RUN_EVAL_H_

#include <vector>

#include "automata/va.h"
#include "common/arena.h"
#include "common/cancel.h"
#include "core/document.h"
#include "core/mapping.h"
#include "core/mapping_sink.h"

namespace spanners {

/// ⟦A⟧_d under variable-*set* semantics: variables open/close in any order,
/// each at most once, opens may dangle (the variable is then unused).
MappingSet RunEval(const VA& a, const Document& doc);

/// ⟦A⟧_d under variable-*stack* semantics (VAstk): only the most recently
/// opened, still-open variable may be closed.
MappingSet RunEvalStack(const VA& a, const Document& doc);

/// Arena-backed cores: `arena` is scratch (Reset() on entry — do not keep
/// live allocations in it across the call); the unique result mappings are
/// appended to *out in unspecified but deterministic order. Reusing one
/// arena across documents makes steady-state evaluation allocation-free.
void RunEvalInto(const VA& a, const Document& doc, Arena* arena,
                 std::vector<Mapping>* out);
void RunEvalStackInto(const VA& a, const Document& doc, Arena* arena,
                      std::vector<Mapping>* out);

/// Streaming cores: each unique result mapping is pushed into `sink` (in
/// unspecified but deterministic order), built from the sink's pool when
/// one is attached. The Into variants above are VectorSink wrappers.
/// `vars`, when given, must equal a.Vars(); callers that precompute it
/// (Spanner) save the per-document recomputation on the hot path.
/// A tripped `cancel` token aborts the configuration search; partial
/// results are discarded (nothing further reaches the sink) and the
/// caller reports the token's Status instead.
void RunEvalTo(const VA& a, const Document& doc, Arena* arena,
               MappingSink& sink, const VarSet* vars = nullptr,
               CancelToken* cancel = nullptr);
void RunEvalStackTo(const VA& a, const Document& doc, Arena* arena,
                    MappingSink& sink, const VarSet* vars = nullptr,
                    CancelToken* cancel = nullptr);

/// True iff A produces only hierarchical mappings on `doc`.
bool IsHierarchicalOn(const VA& a, const Document& doc);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_RUN_EVAL_H_
