// Lazy determinization of VA letter behaviour (the engine's membership
// fast path). The VA's variable operations are relaxed to ε, which leaves
// a classical NFA over the letter transitions; its subset construction is
// materialized on the fly, one transition at a time, over an
// atom-compressed alphabet (PartitionAtoms refines every letter CharSet
// into disjoint atoms; a 256-entry byte→atom table classifies input
// bytes). The resulting DFA decides in one table lookup per byte whether
// ⟦A⟧_doc can be non-empty:
//
//  - for a *sequential* VA the relaxation is exact: runs are structurally
//    op-consistent, so DFA acceptance ⟺ NonEmp (the Theorem 5.7 state-set
//    simulation collapses to cached table lookups);
//  - for an arbitrary VA it is a sound over-approximation: every real run
//    is a run of the relaxed NFA, so "no DFA match" still proves
//    ⟦A⟧_doc = ∅. The engine only acts on the negative answer when the
//    VA is not sequential.
//
// The transition cache is shared across documents and threads: readers
// walk the tables under a shared lock; a missing transition is computed
// once under the exclusive lock. Memory is bounded (max states / bytes);
// at the bound the cache evicts its coldest states (least recently
// touched by a transition computation) instead of giving up, so a plan
// whose working set exceeds the budget keeps its hot core resident and
// stays on the fast path. Readers detect an eviction through a generation
// counter and restart the document scan; a scan that restarts too often
// (a genuinely thrashing working set) reports "unknown" for that call
// only, and the caller decides by NFA state-set simulation — answers stay
// exact either way.
#ifndef SPANNERS_AUTOMATA_LAZY_DFA_H_
#define SPANNERS_AUTOMATA_LAZY_DFA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "automata/va.h"
#include "common/cancel.h"

namespace spanners {

struct LazyDfaOptions {
  /// Upper bound on resident DFA states before cold ones are evicted.
  size_t max_states = 4096;
  /// Upper bound on transition-table bytes before cold states are evicted.
  size_t max_table_bytes = size_t{16} << 20;
  /// A single Matches call restarting more than this often (evictions kept
  /// invalidating its path) reports "unknown" instead of spinning.
  size_t max_restarts = 8;
};

struct LazyDfaStats {
  size_t num_atoms = 0;    // alphabet atoms (excluding the dead class)
  size_t num_states = 0;   // resident DFA states
  uint64_t misses = 0;     // transitions computed (cache extensions)
  uint64_t evictions = 0;  // cold states evicted at the memory bound
  uint64_t fallbacks = 0;  // calls answered "unknown" (caller simulates)
  bool overflowed = false; // at least one call fell back
};

class LazyDfa {
 public:
  explicit LazyDfa(const VA& a, LazyDfaOptions options = {});

  LazyDfa(const LazyDfa&) = delete;
  LazyDfa& operator=(const LazyDfa&) = delete;

  /// Whether the relaxed NFA accepts `text` — amortized one byte→atom
  /// classification plus one table lookup per byte. Thread-safe; the
  /// per-plan transition cache grows across calls and is shared by every
  /// calling thread. nullopt when this call could not be completed within
  /// the memory bound (no state had room even after evicting, or
  /// concurrent evictions kept invalidating the scan): the caller must
  /// decide by NFA simulation. Later calls try again — an unknown is
  /// per-call, never sticky.
  /// A tripped `cancel` token also yields nullopt (polled once per
  /// CancelGauge::kScanChunkBytes input bytes); callers that would react
  /// to nullopt by simulating must check the token first — after a trip
  /// the right move is to abort, not to fall back.
  std::optional<bool> Matches(std::string_view text,
                              CancelToken* cancel = nullptr) const;

  size_t num_atoms() const { return atoms_.size(); }
  LazyDfaStats stats() const;

 private:
  // One interned DFA state: an ε/op-closed, sorted subset of VA states
  // plus its (lazily filled) successor row, indexed by atom id. Row slot 0
  // is the dead class (bytes outside every letter CharSet) and always
  // holds kDeadState. kUnknownState marks a not-yet-computed transition.
  struct State {
    std::vector<StateId> subset;
    std::vector<uint32_t> row;  // size atoms_.size() + 1
    bool accepting = false;
    /// Recency for eviction, from use_clock_: bumped when this state is
    /// created, found by Intern, or extended by ComputeTransition. (A
    /// fully cached traversal does not bump — cheap reads stay cheap — so
    /// "cold" means "no transition computed from or into it recently";
    /// a wrongly evicted hot state is rebuilt by one miss, which re-bumps
    /// it.)
    uint64_t last_used = 0;
  };

  static constexpr uint32_t kDeadState = 0;
  static constexpr uint32_t kUnknownState = UINT32_MAX;

  /// Closure of `subset` under ε and (relaxed) variable-op transitions;
  /// returns the sorted, deduplicated result.
  std::vector<StateId> Closure(std::vector<StateId> subset) const;

  /// Interns `subset` (must be closed+sorted), creating a new state when
  /// unseen — evicting cold states first if the bounds require it
  /// (`pinned` is the state the caller is extending and is never
  /// evicted). Returns kUnknownState when there is no room even after
  /// eviction. Precondition: exclusive lock held (const: cache members
  /// are mutable).
  uint32_t Intern(std::vector<StateId> subset, uint32_t pinned) const;

  /// Evicts the coldest ~quarter of resident states (never the dead
  /// state, the start state, or `pinned`): un-interns them, clears their
  /// rows, resets every surviving row entry that pointed at them to
  /// kUnknownState, and bumps generation_ so in-flight readers restart.
  /// Returns the number of states evicted. Precondition: exclusive lock.
  size_t EvictColdStates(uint32_t pinned) const;

  /// Computes states_[from].row[atom]. Precondition: exclusive lock held.
  /// Returns kUnknownState when the bounds leave no room.
  uint32_t ComputeTransition(uint32_t from, uint32_t atom) const;

  // Owned copy: plans embedding a LazyDfa stay movable (a reference into
  // the embedding object would dangle after a move).
  const VA va_;
  const LazyDfaOptions options_;
  std::vector<CharSet> atoms_;     // disjoint; atom id = index + 1
  uint16_t byte_to_atom_[256];     // 0 = dead class
  uint32_t start_state_;

  mutable std::shared_mutex mu_;
  // deque: stable addresses across growth (readers hold references while
  // the writer appends). Evicted slots are recycled via free_slots_.
  mutable std::deque<State> states_;
  mutable std::map<std::vector<StateId>, uint32_t> interned_;
  mutable std::vector<uint32_t> free_slots_;
  mutable size_t table_bytes_ = 0;
  mutable uint64_t misses_ = 0;
  mutable uint64_t use_clock_ = 0;   // advanced per transition computation
  mutable uint64_t generation_ = 0;  // advanced per eviction batch
  mutable uint64_t evictions_ = 0;
  // Incremented under the shared lock (reader gave up): atomic.
  mutable std::atomic<uint64_t> fallbacks_{0};
};

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_LAZY_DFA_H_
