// Lazy determinization of VA letter behaviour (the engine's membership
// fast path). The VA's variable operations are relaxed to ε, which leaves
// a classical NFA over the letter transitions; its subset construction is
// materialized on the fly, one transition at a time, over an
// atom-compressed alphabet (PartitionAtoms refines every letter CharSet
// into disjoint atoms; a 256-entry byte→atom table classifies input
// bytes). The resulting DFA decides in one table lookup per byte whether
// ⟦A⟧_doc can be non-empty:
//
//  - for a *sequential* VA the relaxation is exact: runs are structurally
//    op-consistent, so DFA acceptance ⟺ NonEmp (the Theorem 5.7 state-set
//    simulation collapses to cached table lookups);
//  - for an arbitrary VA it is a sound over-approximation: every real run
//    is a run of the relaxed NFA, so "no DFA match" still proves
//    ⟦A⟧_doc = ∅. The engine only acts on the negative answer when the
//    VA is not sequential.
//
// The transition cache is shared across documents and threads: readers
// walk the tables under a shared lock; a missing transition is computed
// once under the exclusive lock. Memory is bounded (max states / bytes);
// past the bound the automaton is marked overflowed and every call reports
// "unknown", letting callers fall back to NFA state-set simulation.
#ifndef SPANNERS_AUTOMATA_LAZY_DFA_H_
#define SPANNERS_AUTOMATA_LAZY_DFA_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "automata/va.h"

namespace spanners {

struct LazyDfaOptions {
  /// Upper bound on interned DFA states before the cache gives up.
  size_t max_states = 4096;
  /// Upper bound on transition-table bytes before the cache gives up.
  size_t max_table_bytes = size_t{16} << 20;
};

struct LazyDfaStats {
  size_t num_atoms = 0;    // alphabet atoms (excluding the dead class)
  size_t num_states = 0;   // interned DFA states so far
  uint64_t misses = 0;     // transitions computed (cache extensions)
  bool overflowed = false; // bound hit; callers fall back to NFA simulation
};

class LazyDfa {
 public:
  explicit LazyDfa(const VA& a, LazyDfaOptions options = {});

  LazyDfa(const LazyDfa&) = delete;
  LazyDfa& operator=(const LazyDfa&) = delete;

  /// Whether the relaxed NFA accepts `text` — amortized one byte→atom
  /// classification plus one table lookup per byte. Thread-safe; the
  /// per-plan transition cache grows across calls and is shared by every
  /// calling thread. nullopt when the cache overflowed its memory bound
  /// (now or previously): the caller must decide by NFA simulation.
  std::optional<bool> Matches(std::string_view text) const;

  size_t num_atoms() const { return atoms_.size(); }
  LazyDfaStats stats() const;

 private:
  // One interned DFA state: an ε/op-closed, sorted subset of VA states
  // plus its (lazily filled) successor row, indexed by atom id. Row slot 0
  // is the dead class (bytes outside every letter CharSet) and always
  // holds kDeadState. kUnknownState marks a not-yet-computed transition.
  struct State {
    std::vector<StateId> subset;
    std::vector<uint32_t> row;  // size atoms_.size() + 1
    bool accepting = false;
  };

  static constexpr uint32_t kDeadState = 0;
  static constexpr uint32_t kUnknownState = UINT32_MAX;

  /// Closure of `subset` under ε and (relaxed) variable-op transitions;
  /// returns the sorted, deduplicated result.
  std::vector<StateId> Closure(std::vector<StateId> subset) const;

  /// Interns `subset` (must be closed+sorted), creating a new state when
  /// unseen. Returns kUnknownState when creating it would exceed the
  /// bounds (the caller then marks the DFA overflowed).
  /// Precondition: exclusive lock held (const: cache members are mutable).
  uint32_t Intern(std::vector<StateId> subset) const;

  /// Computes states_[from].row[atom]. Precondition: exclusive lock held.
  /// Returns kUnknownState on overflow.
  uint32_t ComputeTransition(uint32_t from, uint32_t atom) const;

  // Owned copy: plans embedding a LazyDfa stay movable (a reference into
  // the embedding object would dangle after a move).
  const VA va_;
  const LazyDfaOptions options_;
  std::vector<CharSet> atoms_;     // disjoint; atom id = index + 1
  uint16_t byte_to_atom_[256];     // 0 = dead class
  uint32_t start_state_;

  mutable std::shared_mutex mu_;
  // deque: stable addresses across growth (readers hold references while
  // the writer appends).
  mutable std::deque<State> states_;
  mutable std::map<std::vector<StateId>, uint32_t> interned_;
  mutable size_t table_bytes_ = 0;
  mutable uint64_t misses_ = 0;
  mutable bool overflowed_ = false;
};

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_LAZY_DFA_H_
