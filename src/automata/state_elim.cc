#include "automata/state_elim.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "rgx/printer.h"

namespace spanners {

namespace {

// ---------------------------------------------------------------------
// Regex-edge bookkeeping for state elimination. Edges are variable-free
// RGX; an absent edge means "no op-free path".
// ---------------------------------------------------------------------

using EdgeMap = std::map<std::pair<StateId, StateId>, RgxPtr>;

void AddEdge(EdgeMap* edges, StateId u, StateId v, RgxPtr r) {
  auto [it, inserted] = edges->try_emplace({u, v}, r);
  if (!inserted) it->second = RgxNode::Disj(it->second, std::move(r));
}

RgxPtr GetEdge(const EdgeMap& edges, StateId u, StateId v) {
  auto it = edges.find({u, v});
  return it == edges.end() ? nullptr : it->second;
}

// True if `r` matches exactly the empty word (structural check; every
// ε-only expression accepts ε).
bool IsEpsilonOnly(const RgxPtr& r) {
  switch (r->kind()) {
    case RgxKind::kEpsilon:
      return true;
    case RgxKind::kChars:
    case RgxKind::kVar:
      return false;
    default:
      break;
  }
  for (const RgxPtr& c : r->children())
    if (!IsEpsilonOnly(c)) return false;
  return true;
}

// Kleene-style update through intermediate node w:
//   E[u][v] ∨= E[u][w] · E[w][w]* · E[w][v]
void CloseThrough(EdgeMap* edges, const std::vector<StateId>& nodes,
                  StateId w) {
  RgxPtr self = GetEdge(*edges, w, w);
  RgxPtr loop = self != nullptr ? RgxNode::Star(self) : nullptr;
  for (StateId u : nodes) {
    if (u == w) continue;
    RgxPtr in = GetEdge(*edges, u, w);
    if (in == nullptr) continue;
    for (StateId v : nodes) {
      if (v == w) continue;
      RgxPtr out = GetEdge(*edges, w, v);
      if (out == nullptr) continue;
      RgxPtr path = loop != nullptr ? RgxNode::Concat({in, loop, out})
                                    : RgxNode::Concat(in, out);
      AddEdge(edges, u, v, std::move(path));
    }
  }
}

// One item of a path: either a regex segment or a variable operation.
struct PathItem {
  RgxPtr segment;           // nullptr for op items
  std::optional<VarOp> op;  // nullopt for segment items
};

// ---------------------------------------------------------------------
// Well-nesting. Operations separated only by ε-only segments happen at
// the same document position and form a "block"; operations inside a
// block may be reordered freely (spans are unaffected). A path is
// convertible to RGX iff some block-internal reordering makes the whole
// op sequence properly nested (this covers VAstk and the reordering step
// of the Theorem 4.4 proof).
// ---------------------------------------------------------------------

struct Block {
  std::vector<VarOp> ops;
  std::vector<RgxPtr> tail;  // non-ε separator segments after the block
};

// Backtracking search for a nesting arrangement across all blocks.
bool NestBlocks(const std::vector<Block>& blocks, size_t bi,
                std::vector<bool>& used, size_t used_count,
                std::vector<VarId>* stack,
                std::vector<std::vector<VarOp>>* arranged) {
  if (bi == blocks.size()) return stack->empty();
  const std::vector<VarOp>& ops = blocks[bi].ops;
  if (used_count == ops.size()) {
    size_t next_size = bi + 1 < blocks.size() ? blocks[bi + 1].ops.size() : 0;
    std::vector<bool> next_used(next_size, false);
    return NestBlocks(blocks, bi + 1, next_used, 0, stack, arranged);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (used[i]) continue;
    const VarOp& op = ops[i];
    if (op.open) {
      stack->push_back(op.var);
    } else {
      if (stack->empty() || stack->back() != op.var) continue;
      stack->pop_back();
    }
    used[i] = true;
    (*arranged)[bi].push_back(op);
    if (NestBlocks(blocks, bi, used, used_count + 1, stack, arranged))
      return true;
    (*arranged)[bi].pop_back();
    used[i] = false;
    if (op.open) {
      stack->pop_back();
    } else {
      stack->push_back(op.var);
    }
  }
  return false;
}

// Builds the RGX for a well-nested item sequence; recursion depth mirrors
// variable nesting.
RgxPtr BuildNested(const std::vector<PathItem>& items, size_t* idx) {
  std::vector<RgxPtr> parts;
  while (*idx < items.size()) {
    const PathItem& item = items[*idx];
    if (item.segment != nullptr) {
      parts.push_back(item.segment);
      ++*idx;
      continue;
    }
    if (!item.op->open) break;  // the matching close of the caller
    VarId x = item.op->var;
    ++*idx;
    RgxPtr inner = BuildNested(items, idx);
    SPANNERS_CHECK(*idx < items.size() && items[*idx].op.has_value() &&
                   !items[*idx].op->open && items[*idx].op->var == x)
        << "BuildNested: imbalanced arrangement";
    ++*idx;  // consume the close
    parts.push_back(RgxNode::Var(x, std::move(inner)));
  }
  return RgxNode::Concat(std::move(parts));
}

// Converts one consistent path (dangling opens already removed) into an
// RGX, or nullopt when no block reordering nests it.
std::optional<RgxPtr> PathToRgx(const std::vector<PathItem>& raw) {
  std::vector<RgxPtr> lead;  // segments before the first op
  std::vector<Block> blocks;
  for (const PathItem& item : raw) {
    if (!item.op.has_value()) {
      if (blocks.empty()) {
        lead.push_back(item.segment);
      } else {
        blocks.back().tail.push_back(item.segment);
      }
      continue;
    }
    // New op: merge into the current block if every separator since the
    // previous op is ε-only (same document position); ε-only separators
    // match only ε and are dropped.
    bool merge = !blocks.empty();
    if (merge) {
      for (const RgxPtr& seg : blocks.back().tail) {
        if (!IsEpsilonOnly(seg)) {
          merge = false;
          break;
        }
      }
    }
    if (merge) {
      blocks.back().tail.clear();
      blocks.back().ops.push_back(*item.op);
    } else {
      blocks.push_back(Block{{*item.op}, {}});
    }
  }

  std::vector<std::vector<VarOp>> arranged(blocks.size());
  std::vector<VarId> stack;
  if (!blocks.empty()) {
    std::vector<bool> used(blocks[0].ops.size(), false);
    if (!NestBlocks(blocks, 0, used, 0, &stack, &arranged))
      return std::nullopt;
  }

  std::vector<PathItem> items;
  for (const RgxPtr& seg : lead) items.push_back({seg, std::nullopt});
  for (size_t b = 0; b < blocks.size(); ++b) {
    for (const VarOp& op : arranged[b]) items.push_back({nullptr, op});
    for (const RgxPtr& seg : blocks[b].tail)
      items.push_back({seg, std::nullopt});
  }
  size_t idx = 0;
  RgxPtr result = BuildNested(items, &idx);
  SPANNERS_CHECK(idx == items.size()) << "BuildNested left trailing items";
  return result;
}

// ---------------------------------------------------------------------
// Path enumeration over the op-graph.
// ---------------------------------------------------------------------

struct OpEdge {
  StateId from;
  VarOp op;
  StateId to;
};

enum VPhase : uint8_t { kAvail, kOpen, kClosed };

struct PathEnumerator {
  const EdgeMap* closure;
  const std::vector<OpEdge>* op_edges;
  const VA* va;
  std::vector<VarId> vars;
  std::vector<RgxPtr> results;
  std::set<std::string> seen_patterns;
  bool saw_non_nestable = false;

  int VarIndex(VarId x) const {
    return static_cast<int>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
  }

  // Segment regex from u to v: the closed-over edge, plus ε when staying
  // at the same node is possible (u == v).
  std::optional<RgxPtr> Segment(StateId u, StateId v) const {
    RgxPtr direct = GetEdge(*closure, u, v);
    if (u == v) {
      return direct != nullptr ? RgxNode::Disj(direct, RgxNode::Epsilon())
                               : RgxNode::Epsilon();
    }
    if (direct == nullptr) return std::nullopt;
    return direct;
  }

  void Emit(const std::vector<PathItem>& raw_items,
            const std::vector<uint8_t>& phases) {
    // Drop dangling opens: opening a variable and never closing it leaves
    // the variable unused (Thm 4.3 proof step).
    std::vector<PathItem> cleaned;
    for (const PathItem& item : raw_items) {
      if (item.op.has_value() && item.op->open &&
          phases[VarIndex(item.op->var)] == kOpen)
        continue;
      cleaned.push_back(item);
    }
    std::optional<RgxPtr> rgx = PathToRgx(cleaned);
    if (!rgx.has_value()) {
      saw_non_nestable = true;
      return;
    }
    std::string pat = ToPattern(*rgx);
    if (seen_patterns.insert(std::move(pat)).second)
      results.push_back(*std::move(rgx));
  }

  void Dfs(StateId at, std::vector<PathItem>* items,
           std::vector<uint8_t>* phases) {
    // Finish at any final state reachable op-free from here.
    for (StateId f : va->finals()) {
      std::optional<RgxPtr> seg = Segment(at, f);
      if (!seg.has_value()) continue;
      items->push_back({*seg, std::nullopt});
      Emit(*items, *phases);
      items->pop_back();
    }
    // Or take another consistent op edge.
    for (const OpEdge& e : *op_edges) {
      int i = VarIndex(e.op.var);
      uint8_t expect = e.op.open ? kAvail : kOpen;
      if ((*phases)[i] != expect) continue;
      std::optional<RgxPtr> seg = Segment(at, e.from);
      if (!seg.has_value()) continue;
      (*phases)[i] = e.op.open ? kOpen : kClosed;
      items->push_back({*seg, std::nullopt});
      items->push_back({nullptr, e.op});
      Dfs(e.to, items, phases);
      items->pop_back();
      items->pop_back();
      (*phases)[i] = expect;
    }
  }
};

}  // namespace

Result<std::vector<RgxPtr>> VaToFunctionalRgxUnion(const VA& a_in) {
  VA a = a_in.Trimmed();
  if (a.finals().empty()) return std::vector<RgxPtr>{};

  // Collect op edges and the direct regex edges.
  std::vector<OpEdge> op_edges;
  EdgeMap edges;
  std::set<StateId> kept = {a.initial()};
  for (StateId f : a.finals()) kept.insert(f);
  for (StateId q = 0; q < a.NumStates(); ++q) {
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      switch (t.kind) {
        case TransKind::kChars:
          AddEdge(&edges, q, t.to, RgxNode::Chars(t.chars));
          break;
        case TransKind::kEpsilon:
          AddEdge(&edges, q, t.to, RgxNode::Epsilon());
          break;
        case TransKind::kOpen:
        case TransKind::kClose:
          op_edges.push_back(
              {q, VarOp{t.kind == TransKind::kOpen, t.var}, t.to});
          kept.insert(q);
          kept.insert(t.to);
          break;
      }
    }
  }

  // Eliminate non-kept states, then close over the kept ones so that
  // every edge captures *all* op-free paths (including through other
  // kept nodes).
  std::vector<StateId> all_nodes;
  for (StateId q = 0; q < a.NumStates(); ++q) all_nodes.push_back(q);
  for (StateId s = 0; s < a.NumStates(); ++s) {
    if (kept.count(s) > 0) continue;
    CloseThrough(&edges, all_nodes, s);
    for (auto it = edges.begin(); it != edges.end();) {
      if (it->first.first == s || it->first.second == s) {
        it = edges.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::vector<StateId> kept_nodes(kept.begin(), kept.end());
  for (StateId w : kept_nodes) CloseThrough(&edges, kept_nodes, w);

  PathEnumerator pe;
  pe.closure = &edges;
  pe.op_edges = &op_edges;
  pe.va = &a;
  pe.vars = a.Vars().ids();

  std::vector<PathItem> items;
  std::vector<uint8_t> phases(pe.vars.size(), kAvail);
  pe.Dfs(a.initial(), &items, &phases);

  if (pe.saw_non_nestable) {
    return Status::NotSupported(
        "VaToRgx: automaton has a non-hierarchical path (its variable "
        "operations cannot be well-nested by same-position reordering)");
  }
  return std::move(pe.results);
}

Result<RgxPtr> VaToRgx(const VA& a) {
  SPANNERS_ASSIGN_OR_RETURN(std::vector<RgxPtr> parts,
                            VaToFunctionalRgxUnion(a));
  if (parts.empty()) return RgxNode::Chars(CharSet::None());  // unsatisfiable
  return RgxNode::Disj(std::move(parts));
}

}  // namespace spanners
