#include "automata/ops.h"

#include <deque>
#include <string>
#include <unordered_map>

#include "common/logging.h"

namespace spanners {

namespace {

// Copies `src` into `dst`, returning the id offset.
StateId Embed(const VA& src, VA* dst) {
  StateId base = dst->AddStates(src.NumStates());
  for (StateId q = 0; q < src.NumStates(); ++q) {
    for (VaTransition t : src.TransitionsFrom(q)) {
      t.to += base;
      dst->AddTransition(base + q, t);
    }
  }
  return base;
}

}  // namespace

VA UnionVa(const VA& a, const VA& b) {
  VA out;
  StateId init = out.AddState();
  out.SetInitial(init);
  StateId base_a = Embed(a, &out);
  StateId base_b = Embed(b, &out);
  out.AddEpsilon(init, base_a + a.initial());
  out.AddEpsilon(init, base_b + b.initial());
  for (StateId f : a.finals()) out.AddFinal(base_a + f);
  for (StateId f : b.finals()) out.AddFinal(base_b + f);
  return out;
}

VA ProjectVa(const VA& a, const VarSet& keep) {
  // Dropped variables' operations become ε, but their run-validity (open
  // at most once, close only an open variable) must survive: track a
  // status {avail, open, closed} per dropped variable in the state.
  const std::vector<VarId> dropped = a.Vars().Minus(keep).ids();
  auto dropped_index = [&dropped](VarId x) -> int {
    auto it = std::lower_bound(dropped.begin(), dropped.end(), x);
    if (it == dropped.end() || *it != x) return -1;
    return static_cast<int>(it - dropped.begin());
  };

  VA out;
  struct KeyHash {
    size_t operator()(const std::pair<uint64_t, std::string>& k) const {
      return std::hash<std::string>()(k.second) * 31 + k.first;
    }
  };
  std::unordered_map<std::pair<uint64_t, std::string>, StateId, KeyHash> ids;
  std::deque<std::pair<StateId, std::string>> queue;

  auto intern = [&](StateId q, std::string phases) -> StateId {
    std::pair<uint64_t, std::string> key{q, phases};
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState();
    if (a.IsFinal(q)) out.AddFinal(id);
    ids.emplace(std::move(key), id);
    queue.emplace_back(q, std::move(phases));
    return id;
  };

  out.SetInitial(intern(a.initial(), std::string(dropped.size(), 0)));
  while (!queue.empty()) {
    auto [q, phases] = queue.front();
    queue.pop_front();
    StateId from = ids.at({q, phases});
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      switch (t.kind) {
        case TransKind::kChars:
          out.AddChar(from, t.chars, intern(t.to, phases));
          break;
        case TransKind::kEpsilon:
          out.AddEpsilon(from, intern(t.to, phases));
          break;
        case TransKind::kOpen:
        case TransKind::kClose: {
          int i = dropped_index(t.var);
          if (i < 0) {  // kept variable: pass through
            VaTransition copy = t;
            copy.to = intern(t.to, phases);
            out.AddTransition(from, copy);
            break;
          }
          bool is_open = t.kind == TransKind::kOpen;
          char want = is_open ? 0 : 1;
          if (phases[i] != want) break;  // invalid for the dropped var
          std::string next = phases;
          next[i] = is_open ? 1 : 2;
          out.AddEpsilon(from, intern(t.to, std::move(next)));
          break;
        }
      }
    }
  }
  return out.Trimmed();
}

namespace {

// Per-shared-variable join status. "Owner" is the side whose operations
// are emitted by the product; a side may instead take its open transition
// silently ("pseudo-open"), committing that variable to dangle (hence be
// unused) in that side's run.
enum JoinPhase : char {
  kN00 = 0,  // untouched; neither side pseudo-opened
  kN10,      // untouched; left pseudo-opened
  kN01,      // untouched; right pseudo-opened
  kN11,      // untouched; both pseudo-opened
  kLOpen0,   // left owns, open emitted; right not pseudo-opened
  kLOpen1,   //   ... right pseudo-opened
  kLClosed0,
  kLClosed1,
  kROpen0,  // right owns; left not pseudo-opened
  kROpen1,
  kRClosed0,
  kRClosed1,
  kBOpen,    // both own (synchronised open emitted once)
  kBClosed,  // synchronised close
};

struct JoinKey {
  StateId q1, q2;
  std::string phases;
  bool operator==(const JoinKey& o) const {
    return q1 == o.q1 && q2 == o.q2 && phases == o.phases;
  }
};
struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    return (std::hash<std::string>()(k.phases) * 31 + k.q1) * 31 + k.q2;
  }
};

}  // namespace

VA JoinVa(const VA& a, const VA& b) {
  const std::vector<VarId> shared = a.Vars().Intersect(b.Vars()).ids();
  auto shared_index = [&shared](VarId x) -> int {
    auto it = std::lower_bound(shared.begin(), shared.end(), x);
    if (it == shared.end() || *it != x) return -1;
    return static_cast<int>(it - shared.begin());
  };

  VA out;
  std::unordered_map<JoinKey, StateId, JoinKeyHash> ids;
  std::deque<JoinKey> queue;

  auto intern = [&](StateId q1, StateId q2, std::string phases) -> StateId {
    JoinKey key{q1, q2, std::move(phases)};
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState();
    if (a.IsFinal(q1) && b.IsFinal(q2)) out.AddFinal(id);
    ids.emplace(key, id);
    queue.push_back(std::move(key));
    return id;
  };

  out.SetInitial(intern(a.initial(), b.initial(),
                        std::string(shared.size(), kN00)));

  while (!queue.empty()) {
    JoinKey key = queue.front();
    queue.pop_front();
    StateId from = ids.at(key);
    const std::string& ph = key.phases;

    // Letters: both sides advance on the charset intersection.
    for (const VaTransition& t1 : a.TransitionsFrom(key.q1)) {
      if (t1.kind != TransKind::kChars) continue;
      for (const VaTransition& t2 : b.TransitionsFrom(key.q2)) {
        if (t2.kind != TransKind::kChars) continue;
        CharSet both = t1.chars.Intersect(t2.chars);
        if (!both.empty())
          out.AddChar(from, both, intern(t1.to, t2.to, ph));
      }
    }

    // Left-side ε and variable operations.
    for (const VaTransition& t1 : a.TransitionsFrom(key.q1)) {
      switch (t1.kind) {
        case TransKind::kChars:
          break;
        case TransKind::kEpsilon:
          out.AddEpsilon(from, intern(t1.to, key.q2, ph));
          break;
        case TransKind::kOpen: {
          int i = shared_index(t1.var);
          if (i < 0) {  // private variable: pass through
            out.AddOpen(from, t1.var, intern(t1.to, key.q2, ph));
            break;
          }
          char p = ph[i];
          // Solo open: left becomes the owner; right is barred from
          // emitting x later (it may still pseudo-open).
          if (p == kN00 || p == kN01) {
            std::string next = ph;
            next[i] = p == kN00 ? kLOpen0 : kLOpen1;
            out.AddOpen(from, t1.var, intern(t1.to, key.q2, std::move(next)));
          }
          // Synchronised open: both sides take their open now.
          if (p == kN00) {
            for (const VaTransition& t2 : b.TransitionsFrom(key.q2)) {
              if (t2.kind == TransKind::kOpen && t2.var == t1.var) {
                std::string next = ph;
                next[i] = kBOpen;
                out.AddOpen(from, t1.var, intern(t1.to, t2.to, std::move(next)));
              }
            }
          }
          // Pseudo-open: the left run leaves x dangling (unused).
          if (p == kN00 || p == kN01 || p == kROpen0 || p == kRClosed0) {
            std::string next = ph;
            next[i] = p == kN00      ? kN10
                      : p == kN01    ? kN11
                      : p == kROpen0 ? kROpen1
                                     : kRClosed1;
            out.AddEpsilon(from, intern(t1.to, key.q2, std::move(next)));
          }
          break;
        }
        case TransKind::kClose: {
          int i = shared_index(t1.var);
          if (i < 0) {
            out.AddClose(from, t1.var, intern(t1.to, key.q2, ph));
            break;
          }
          char p = ph[i];
          if (p == kLOpen0 || p == kLOpen1) {  // solo close by the owner
            std::string next = ph;
            next[i] = p == kLOpen0 ? kLClosed0 : kLClosed1;
            out.AddClose(from, t1.var, intern(t1.to, key.q2, std::move(next)));
          } else if (p == kBOpen) {  // synchronised close
            for (const VaTransition& t2 : b.TransitionsFrom(key.q2)) {
              if (t2.kind == TransKind::kClose && t2.var == t1.var) {
                std::string next = ph;
                next[i] = kBClosed;
                out.AddClose(from, t1.var,
                             intern(t1.to, t2.to, std::move(next)));
              }
            }
          }
          break;
        }
      }
    }

    // Right-side ε and variable operations (mirror image; synchronised
    // steps were already added from the left side).
    for (const VaTransition& t2 : b.TransitionsFrom(key.q2)) {
      switch (t2.kind) {
        case TransKind::kChars:
          break;
        case TransKind::kEpsilon:
          out.AddEpsilon(from, intern(key.q1, t2.to, ph));
          break;
        case TransKind::kOpen: {
          int i = shared_index(t2.var);
          if (i < 0) {
            out.AddOpen(from, t2.var, intern(key.q1, t2.to, ph));
            break;
          }
          char p = ph[i];
          if (p == kN00 || p == kN10) {
            std::string next = ph;
            next[i] = p == kN00 ? kROpen0 : kROpen1;
            out.AddOpen(from, t2.var, intern(key.q1, t2.to, std::move(next)));
          }
          if (p == kN00 || p == kN10 || p == kLOpen0 || p == kLClosed0) {
            std::string next = ph;
            next[i] = p == kN00      ? kN01
                      : p == kN10    ? kN11
                      : p == kLOpen0 ? kLOpen1
                                     : kLClosed1;
            out.AddEpsilon(from, intern(key.q1, t2.to, std::move(next)));
          }
          break;
        }
        case TransKind::kClose: {
          int i = shared_index(t2.var);
          if (i < 0) {
            out.AddClose(from, t2.var, intern(key.q1, t2.to, ph));
            break;
          }
          char p = ph[i];
          if (p == kROpen0 || p == kROpen1) {
            std::string next = ph;
            next[i] = p == kROpen0 ? kRClosed0 : kRClosed1;
            out.AddClose(from, t2.var, intern(key.q1, t2.to, std::move(next)));
          }
          break;
        }
      }
    }
  }
  return out.Trimmed();
}

}  // namespace spanners
