#include "automata/fpt.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/logging.h"

namespace spanners {

namespace {

enum Phase : uint8_t { kAvail = 0, kOpen = 1, kClosed = 2 };

// Dense encoding of (state, pos, statuses) for the visited set.
struct ConfigKey {
  uint64_t state_pos;
  std::string phases;

  bool operator==(const ConfigKey& o) const {
    return state_pos == o.state_pos && phases == o.phases;
  }
};

struct ConfigKeyHash {
  size_t operator()(const ConfigKey& k) const {
    return std::hash<std::string>()(k.phases) * 1000003 +
           std::hash<uint64_t>()(k.state_pos);
  }
};

}  // namespace

bool EvalVa(const VA& a, const Document& doc, const ExtendedMapping& mu) {
  const Pos n = doc.length();
  const std::vector<VarId> vars = a.Vars().ids();
  const size_t k = vars.size();

  // A variable assigned by `mu` but absent from A can never be produced.
  VarSet avars = a.Vars();
  for (VarId v : mu.ConstrainedVars()) {
    if (mu.StateOf(v) == ExtendedMapping::VarState::kAssigned &&
        !avars.Contains(v))
      return false;
  }

  auto local_index = [&vars](VarId x) {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
  };

  std::unordered_set<ConfigKey, ConfigKeyHash> seen;
  std::deque<std::pair<std::pair<StateId, Pos>, std::string>> queue;

  auto push = [&](StateId q, Pos pos, std::string phases) {
    ConfigKey key{(static_cast<uint64_t>(q) << 32) | pos, phases};
    if (seen.insert(key).second) queue.push_back({{q, pos}, std::move(phases)});
  };

  push(a.initial(), 1, std::string(k, static_cast<char>(kAvail)));

  while (!queue.empty()) {
    auto [qp, phases] = queue.front();
    auto [q, pos] = qp;
    queue.pop_front();

    if (a.IsFinal(q) && pos == n + 1) {
      // µ' defines exactly the closed variables; check the accept
      // condition: every assigned variable is closed (its span endpoints
      // were enforced at operation time), no ⊥ variable is closed.
      bool ok = true;
      for (size_t i = 0; i < k && ok; ++i) {
        switch (mu.StateOf(vars[i])) {
          case ExtendedMapping::VarState::kAssigned:
            ok = phases[i] == static_cast<char>(kClosed);
            break;
          case ExtendedMapping::VarState::kBottom:
            ok = phases[i] != static_cast<char>(kClosed);
            break;
          case ExtendedMapping::VarState::kUnconstrained:
            break;
        }
      }
      if (ok) return true;
    }

    for (const VaTransition& t : a.TransitionsFrom(q)) {
      switch (t.kind) {
        case TransKind::kChars:
          if (pos <= n && t.chars.Contains(doc.at(pos)))
            push(t.to, pos + 1, phases);
          break;
        case TransKind::kEpsilon:
          push(t.to, pos, phases);
          break;
        case TransKind::kOpen: {
          size_t i = local_index(t.var);
          if (phases[i] != static_cast<char>(kAvail)) break;
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kAssigned &&
              mu.Get(t.var)->begin != pos)
            break;  // assigned spans pin the open position
          std::string next = phases;
          next[i] = static_cast<char>(kOpen);
          push(t.to, pos, std::move(next));
          break;
        }
        case TransKind::kClose: {
          size_t i = local_index(t.var);
          if (phases[i] != static_cast<char>(kOpen)) break;
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kBottom)
            break;  // closing would define a ⊥ variable
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kAssigned &&
              mu.Get(t.var)->end != pos)
            break;
          std::string next = phases;
          next[i] = static_cast<char>(kClosed);
          push(t.to, pos, std::move(next));
          break;
        }
      }
    }
  }
  return false;
}

bool MatchesVa(const VA& a, const Document& doc) {
  return EvalVa(a, doc, ExtendedMapping());
}

}  // namespace spanners
