#include "automata/fpt.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"
#include "common/logging.h"

namespace spanners {

namespace {

enum Phase : uint8_t { kAvail = 0, kOpen = 1, kClosed = 2 };

// Key layout inside the FlatKeySet: state (4) + pos (4) + one phase byte
// per variable. The stored copy doubles as the queue entry's phase vector.
constexpr size_t kHeaderBytes = 8;

struct QueueItem {
  StateId q;
  Pos pos;
  const char* phases;  // points into the key bytes stored by `seen`
};

bool EvalVaArena(const VA& a, const Document& doc, const ExtendedMapping& mu,
                 Arena& arena, CancelToken* cancel) {
  CancelGauge gauge(cancel, &arena);
  const Pos n = doc.length();
  const std::vector<VarId> vars = a.Vars().ids();
  const uint32_t k = static_cast<uint32_t>(vars.size());

  // A variable assigned by `mu` but absent from A can never be produced.
  VarSet avars = a.Vars();
  for (VarId v : mu.ConstrainedVars()) {
    if (mu.StateOf(v) == ExtendedMapping::VarState::kAssigned &&
        !avars.Contains(v))
      return false;
  }

  auto local_index = [&vars](VarId x) {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
  };

  FlatKeySet seen(&arena, 256);
  ArenaVector<QueueItem> queue(&arena);  // BFS: head index advances
  size_t head = 0;
  char* keybuf = arena.AllocateArray<char>(kHeaderBytes + k);

  // Pushes `phases`, optionally with one position overwritten (patch_i
  // >= 0) — the patch is applied in the key buffer, so rejected
  // successors never materialize a phase vector.
  auto push = [&](StateId q, Pos pos, const char* phases, int patch_i = -1,
                  char phase = 0) {
    std::memcpy(keybuf, &q, 4);
    std::memcpy(keybuf + 4, &pos, 4);
    std::memcpy(keybuf + kHeaderBytes, phases, k);
    if (patch_i >= 0) keybuf[kHeaderBytes + patch_i] = phase;
    auto [stored, inserted] =
        seen.Insert(keybuf, static_cast<uint32_t>(kHeaderBytes + k));
    if (inserted) queue.push_back(QueueItem{q, pos, stored + kHeaderBytes});
  };

  char* phases0 = arena.AllocateArray<char>(k);
  std::memset(phases0, kAvail, k);
  push(a.initial(), 1, phases0);

  while (head < queue.size()) {
    // Tripped ⇒ the answer is meaningless; the caller checks the token.
    if (gauge.ShouldStop()) return false;
    QueueItem item = queue[head++];
    StateId q = item.q;
    Pos pos = item.pos;
    const char* phases = item.phases;

    if (a.IsFinal(q) && pos == n + 1) {
      // µ' defines exactly the closed variables; check the accept
      // condition: every assigned variable is closed (its span endpoints
      // were enforced at operation time), no ⊥ variable is closed.
      bool ok = true;
      for (uint32_t i = 0; i < k && ok; ++i) {
        switch (mu.StateOf(vars[i])) {
          case ExtendedMapping::VarState::kAssigned:
            ok = phases[i] == static_cast<char>(kClosed);
            break;
          case ExtendedMapping::VarState::kBottom:
            ok = phases[i] != static_cast<char>(kClosed);
            break;
          case ExtendedMapping::VarState::kUnconstrained:
            break;
        }
      }
      if (ok) return true;
    }

    for (const VaTransition& t : a.TransitionsFrom(q)) {
      switch (t.kind) {
        case TransKind::kChars:
          if (pos <= n && t.chars.Contains(doc.at(pos)))
            push(t.to, pos + 1, phases);
          break;
        case TransKind::kEpsilon:
          push(t.to, pos, phases);
          break;
        case TransKind::kOpen: {
          size_t i = local_index(t.var);
          if (phases[i] != static_cast<char>(kAvail)) break;
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kAssigned &&
              mu.Get(t.var)->begin != pos)
            break;  // assigned spans pin the open position
          push(t.to, pos, phases, static_cast<int>(i),
               static_cast<char>(kOpen));
          break;
        }
        case TransKind::kClose: {
          size_t i = local_index(t.var);
          if (phases[i] != static_cast<char>(kOpen)) break;
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kBottom)
            break;  // closing would define a ⊥ variable
          if (mu.StateOf(t.var) == ExtendedMapping::VarState::kAssigned &&
              mu.Get(t.var)->end != pos)
            break;
          push(t.to, pos, phases, static_cast<int>(i),
               static_cast<char>(kClosed));
          break;
        }
      }
    }
  }
  return false;
}

}  // namespace

bool EvalVa(const VA& a, const Document& doc, const ExtendedMapping& mu,
            Arena* scratch, CancelToken* cancel) {
  if (scratch == nullptr) {
    Arena local;
    return EvalVaArena(a, doc, mu, local, cancel);
  }
  scratch->Reset();
  return EvalVaArena(a, doc, mu, *scratch, cancel);
}

bool MatchesVa(const VA& a, const Document& doc) {
  return EvalVa(a, doc, ExtendedMapping());
}

}  // namespace spanners
