#include "automata/matcher.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/arena.h"
#include "common/logging.h"

namespace spanners {

namespace {

// How a variable's operations are treated during simulation.
enum class OpTreatment : uint8_t {
  kExact,      // assigned: ops consumable only as position ops
  kSilent,     // unconstrained: both ops behave as ε
  kSilentOpen  // ⊥: open behaves as ε (dangling ⇒ unused), close removed
};

struct PositionOps {
  std::vector<VarOp> ops;  // ops pinned to this position, ≤ 2·|vars|

  int IndexOf(const VarOp& op) const {
    for (size_t i = 0; i < ops.size(); ++i)
      if (ops[i] == op) return static_cast<int>(i);
    return -1;
  }
};

bool EvalSequentialArena(const VA& a, const Document& doc,
                         const ExtendedMapping& mu, Arena& arena,
                         CancelToken* cancel) {
  CancelGauge gauge(cancel, &arena);
  bool stopped = false;
  const Pos n = doc.length();
  const std::vector<VarId> vars = a.Vars().ids();

  // Treatment per automaton variable + per-position op sets.
  std::vector<OpTreatment> treatment(vars.size(), OpTreatment::kSilent);
  std::vector<PositionOps> pos_ops(n + 2);
  for (size_t i = 0; i < vars.size(); ++i) {
    switch (mu.StateOf(vars[i])) {
      case ExtendedMapping::VarState::kUnconstrained:
        treatment[i] = OpTreatment::kSilent;
        break;
      case ExtendedMapping::VarState::kBottom:
        treatment[i] = OpTreatment::kSilentOpen;
        break;
      case ExtendedMapping::VarState::kAssigned: {
        treatment[i] = OpTreatment::kExact;
        Span s = *mu.Get(vars[i]);
        if (!doc.IsValidSpan(s)) return false;
        pos_ops[s.begin].ops.push_back(VarOp{true, vars[i]});
        pos_ops[s.end].ops.push_back(VarOp{false, vars[i]});
        break;
      }
    }
  }
  // A variable assigned in `mu` but absent from the automaton can never be
  // defined by any µ' ∈ ⟦A⟧: reject up front.
  VarSet avars = a.Vars();
  for (VarId v : mu.ConstrainedVars()) {
    if (mu.StateOf(v) == ExtendedMapping::VarState::kAssigned &&
        !avars.Contains(v))
      return false;
  }

  auto treatment_of = [&](VarId x) {
    size_t i = static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
    return treatment[i];
  };

  const size_t num_states = a.NumStates();

  // Run frontiers and the BFS work list live in the arena: two state-set
  // buffers swapped per position plus one reusable queue.
  uint8_t* current = arena.AllocateArray<uint8_t>(num_states);
  uint8_t* next = arena.AllocateArray<uint8_t>(num_states);
  ArenaVector<StateId> queue(&arena);
  queue.reserve(num_states);

  // Fast path for positions with no pinned ops: in-place closure under ε
  // and silently-treated variable operations.
  auto apply_closure = [&](uint8_t* states) {
    queue.clear();
    size_t head = 0;
    for (StateId q = 0; q < num_states; ++q)
      if (states[q]) queue.push_back(q);
    while (head < queue.size()) {
      if (gauge.ShouldStop()) {
        stopped = true;
        return;
      }
      StateId q = queue[head++];
      for (const VaTransition& t : a.TransitionsFrom(q)) {
        bool eps_like = t.kind == TransKind::kEpsilon;
        if (t.IsVarOp()) {
          OpTreatment tr = treatment_of(t.var);
          eps_like = tr == OpTreatment::kSilent ||
                     (tr == OpTreatment::kSilentOpen &&
                      t.kind == TransKind::kOpen);
        }
        if (eps_like && !states[t.to]) {
          states[t.to] = 1;
          queue.push_back(t.to);
        }
      }
    }
  };

  // Per position p: saturate the state set under ε-like moves and consume
  // the pinned op set T_p exactly once. BFS over (state, consumed-mask).
  auto apply_position = [&](uint8_t* states, Pos p) {
    const PositionOps& tp = pos_ops[p];
    if (tp.ops.empty()) {
      apply_closure(states);
      return;
    }
    const uint32_t full = (1u << tp.ops.size()) - 1u;
    // seen[state * (full+1) + mask], flat in the arena.
    const size_t width = full + 1;
    uint8_t* seen = arena.AllocateArray<uint8_t>(num_states * width);
    std::memset(seen, 0, num_states * width);
    ArenaVector<uint64_t> bfs(&arena);  // (state << 32) | mask
    size_t head = 0;
    for (StateId q = 0; q < num_states; ++q) {
      if (states[q]) {
        seen[q * width] = 1;
        bfs.push_back(static_cast<uint64_t>(q) << 32);
      }
    }
    while (head < bfs.size()) {
      if (gauge.ShouldStop()) {
        stopped = true;
        return;
      }
      uint64_t item = bfs[head++];
      StateId q = static_cast<StateId>(item >> 32);
      uint32_t mask = static_cast<uint32_t>(item);
      for (const VaTransition& t : a.TransitionsFrom(q)) {
        uint32_t next_mask = mask;
        switch (t.kind) {
          case TransKind::kChars:
            continue;
          case TransKind::kEpsilon:
            break;
          case TransKind::kOpen:
          case TransKind::kClose: {
            OpTreatment tr = treatment_of(t.var);
            if (tr == OpTreatment::kSilent) break;  // behaves as ε
            if (tr == OpTreatment::kSilentOpen) {
              if (t.kind == TransKind::kClose) continue;  // ⊥: no closes
              break;  // silent open
            }
            // kExact: consumable only if pinned here and not consumed yet.
            VarOp op{t.kind == TransKind::kOpen, t.var};
            int idx = tp.IndexOf(op);
            if (idx < 0) continue;
            if (mask & (1u << idx)) continue;
            next_mask = mask | (1u << idx);
            break;
          }
        }
        if (!seen[t.to * width + next_mask]) {
          seen[t.to * width + next_mask] = 1;
          bfs.push_back((static_cast<uint64_t>(t.to) << 32) | next_mask);
        }
      }
    }
    for (StateId q = 0; q < num_states; ++q)
      states[q] = seen[q * width + full];
  };

  std::memset(current, 0, num_states);
  current[a.initial()] = 1;
  for (Pos p = 1; p <= n + 1; ++p) {
    apply_position(current, p);
    // A tripped token makes the answer meaningless — the caller discards
    // it and reports the token's Status instead; false just ends fastest.
    if (stopped || gauge.ShouldStop()) return false;
    if (p <= n) {
      std::memset(next, 0, num_states);
      bool any = false;
      char c = doc.at(p);
      for (StateId q = 0; q < num_states; ++q) {
        if (!current[q]) continue;
        for (const VaTransition& t : a.TransitionsFrom(q)) {
          if (t.kind == TransKind::kChars && t.chars.Contains(c)) {
            next[t.to] = 1;
            any = true;
          }
        }
      }
      if (!any) return false;
      std::swap(current, next);
    }
  }
  for (StateId f : a.finals())
    if (current[f]) return true;
  return false;
}

}  // namespace

bool EvalSequential(const VA& a, const Document& doc,
                    const ExtendedMapping& mu, Arena* scratch,
                    CancelToken* cancel) {
  if (scratch == nullptr) {
    Arena local;
    return EvalSequentialArena(a, doc, mu, local, cancel);
  }
  scratch->Reset();
  return EvalSequentialArena(a, doc, mu, *scratch, cancel);
}

bool MatchesSequential(const VA& a, const Document& doc, Arena* scratch,
                       CancelToken* cancel) {
  return EvalSequential(a, doc, ExtendedMapping(), scratch, cancel);
}

}  // namespace spanners
