#include "automata/matcher.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace spanners {

namespace {

// How a variable's operations are treated during simulation.
enum class OpTreatment : uint8_t {
  kExact,      // assigned: ops consumable only as position ops
  kSilent,     // unconstrained: both ops behave as ε
  kSilentOpen  // ⊥: open behaves as ε (dangling ⇒ unused), close removed
};

struct PositionOps {
  std::vector<VarOp> ops;  // ops pinned to this position, ≤ 2·|vars|

  int IndexOf(const VarOp& op) const {
    for (size_t i = 0; i < ops.size(); ++i)
      if (ops[i] == op) return static_cast<int>(i);
    return -1;
  }
};

}  // namespace

bool EvalSequential(const VA& a, const Document& doc,
                    const ExtendedMapping& mu) {
  const Pos n = doc.length();
  const std::vector<VarId> vars = a.Vars().ids();

  // Treatment per automaton variable + per-position op sets.
  std::vector<OpTreatment> treatment(vars.size(), OpTreatment::kSilent);
  std::vector<PositionOps> pos_ops(n + 2);
  for (size_t i = 0; i < vars.size(); ++i) {
    switch (mu.StateOf(vars[i])) {
      case ExtendedMapping::VarState::kUnconstrained:
        treatment[i] = OpTreatment::kSilent;
        break;
      case ExtendedMapping::VarState::kBottom:
        treatment[i] = OpTreatment::kSilentOpen;
        break;
      case ExtendedMapping::VarState::kAssigned: {
        treatment[i] = OpTreatment::kExact;
        Span s = *mu.Get(vars[i]);
        if (!doc.IsValidSpan(s)) return false;
        pos_ops[s.begin].ops.push_back(VarOp{true, vars[i]});
        pos_ops[s.end].ops.push_back(VarOp{false, vars[i]});
        break;
      }
    }
  }
  // A variable assigned in `mu` but absent from the automaton can never be
  // defined by any µ' ∈ ⟦A⟧: reject up front.
  VarSet avars = a.Vars();
  for (VarId v : mu.ConstrainedVars()) {
    if (mu.StateOf(v) == ExtendedMapping::VarState::kAssigned &&
        !avars.Contains(v))
      return false;
  }

  auto treatment_of = [&](VarId x) {
    size_t i = static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
    return treatment[i];
  };

  const size_t num_states = a.NumStates();

  // Fast path for positions with no pinned ops: plain closure under ε and
  // silently-treated variable operations.
  auto apply_closure = [&](const std::vector<bool>& in) {
    std::vector<bool> seen = in;
    std::deque<StateId> queue;
    for (StateId q = 0; q < num_states; ++q)
      if (in[q]) queue.push_back(q);
    while (!queue.empty()) {
      StateId q = queue.front();
      queue.pop_front();
      for (const VaTransition& t : a.TransitionsFrom(q)) {
        bool eps_like = t.kind == TransKind::kEpsilon;
        if (t.IsVarOp()) {
          OpTreatment tr = treatment_of(t.var);
          eps_like = tr == OpTreatment::kSilent ||
                     (tr == OpTreatment::kSilentOpen &&
                      t.kind == TransKind::kOpen);
        }
        if (eps_like && !seen[t.to]) {
          seen[t.to] = true;
          queue.push_back(t.to);
        }
      }
    }
    return seen;
  };

  // Per position p: saturate the state set under ε-like moves and consume
  // the pinned op set T_p exactly once. BFS over (state, consumed-mask).
  auto apply_position = [&](const std::vector<bool>& in, Pos p) {
    const PositionOps& tp = pos_ops[p];
    if (tp.ops.empty()) return apply_closure(in);
    const uint32_t full =
        tp.ops.empty() ? 0u : ((1u << tp.ops.size()) - 1u);
    // seen[state][mask]
    std::vector<std::vector<bool>> seen(
        num_states, std::vector<bool>(full + 1, false));
    std::deque<std::pair<StateId, uint32_t>> queue;
    for (StateId q = 0; q < num_states; ++q) {
      if (in[q] && !seen[q][0]) {
        seen[q][0] = true;
        queue.emplace_back(q, 0u);
      }
    }
    while (!queue.empty()) {
      auto [q, mask] = queue.front();
      queue.pop_front();
      for (const VaTransition& t : a.TransitionsFrom(q)) {
        uint32_t next_mask = mask;
        switch (t.kind) {
          case TransKind::kChars:
            continue;
          case TransKind::kEpsilon:
            break;
          case TransKind::kOpen:
          case TransKind::kClose: {
            OpTreatment tr = treatment_of(t.var);
            if (tr == OpTreatment::kSilent) break;  // behaves as ε
            if (tr == OpTreatment::kSilentOpen) {
              if (t.kind == TransKind::kClose) continue;  // ⊥: no closes
              break;  // silent open
            }
            // kExact: consumable only if pinned here and not consumed yet.
            VarOp op{t.kind == TransKind::kOpen, t.var};
            int idx = tp.IndexOf(op);
            if (idx < 0) continue;
            if (mask & (1u << idx)) continue;
            next_mask = mask | (1u << idx);
            break;
          }
        }
        if (!seen[t.to][next_mask]) {
          seen[t.to][next_mask] = true;
          queue.emplace_back(t.to, next_mask);
        }
      }
    }
    std::vector<bool> out(num_states, false);
    for (StateId q = 0; q < num_states; ++q) out[q] = seen[q][full];
    return out;
  };

  std::vector<bool> current(num_states, false);
  current[a.initial()] = true;
  for (Pos p = 1; p <= n + 1; ++p) {
    current = apply_position(current, p);
    if (p <= n) {
      std::vector<bool> next(num_states, false);
      bool any = false;
      char c = doc.at(p);
      for (StateId q = 0; q < num_states; ++q) {
        if (!current[q]) continue;
        for (const VaTransition& t : a.TransitionsFrom(q)) {
          if (t.kind == TransKind::kChars && t.chars.Contains(c)) {
            next[t.to] = true;
            any = true;
          }
        }
      }
      if (!any) return false;
      current = std::move(next);
    }
  }
  for (StateId f : a.finals())
    if (current[f]) return true;
  return false;
}

bool MatchesSequential(const VA& a, const Document& doc) {
  return EvalSequential(a, doc, ExtendedMapping());
}

}  // namespace spanners
