// PTIME Eval for sequential VA (paper Theorem 5.7).
//
// Following the paper's proof, the extended mapping is embedded into the
// document as per-position sets of variable operations ("coalesced"
// symbols T_p); unconstrained variables' operations become ε-transitions,
// ⊥-variables keep silent opens (dangling ⇒ unused) but lose their closes.
// What remains is NFA membership, decided by state-set simulation.
#ifndef SPANNERS_AUTOMATA_MATCHER_H_
#define SPANNERS_AUTOMATA_MATCHER_H_

#include "automata/va.h"
#include "common/arena.h"
#include "common/cancel.h"
#include "core/document.h"
#include "core/mapping.h"

namespace spanners {

/// Eval[seqVA]: does some µ' ∈ ⟦A⟧_doc extend `mu`?
/// Precondition: IsSequentialVa(a). Runs in O(|A| · |doc| · 4^|T_p|) where
/// |T_p| ≤ 2·|constrained vars at one position| — polynomial in combined
/// input size for any fixed mapping, and genuinely polynomial because each
/// position's op set is at most 2·|vars| and the subset lattice is walked
/// breadth-first per position.
/// `scratch`, when given, is Reset() on entry and supplies the run
/// frontiers — pass a reused arena to make repeated oracle calls
/// allocation-free. Once `cancel` trips, the simulation aborts and the
/// returned bool is meaningless — check the token, not the answer.
bool EvalSequential(const VA& a, const Document& doc,
                    const ExtendedMapping& mu, Arena* scratch = nullptr,
                    CancelToken* cancel = nullptr);

/// NonEmp on a document: ⟦A⟧_doc ≠ ∅. Precondition: IsSequentialVa(a).
bool MatchesSequential(const VA& a, const Document& doc,
                       Arena* scratch = nullptr,
                       CancelToken* cancel = nullptr);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_MATCHER_H_
