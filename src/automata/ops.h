// The spanner algebra ∪ / π / ⋈ realised on variable-set automata
// (paper Theorem 4.5: VA is closed under union, projection and join).
//
// Union is the classical ε-branch construction. Projection and join are
// product constructions that track per-variable statuses inside states —
// projection to keep run-validity of the dropped variables, join to
// synchronise shared variables. Join carries the exponential blow-up the
// paper predicts; bench E9 measures it.
#ifndef SPANNERS_AUTOMATA_OPS_H_
#define SPANNERS_AUTOMATA_OPS_H_

#include "automata/va.h"

namespace spanners {

/// ⟦UnionVa(A1,A2)⟧_d = ⟦A1⟧_d ∪ ⟦A2⟧_d.
VA UnionVa(const VA& a, const VA& b);

/// ⟦ProjectVa(A, keep)⟧_d = π_keep(⟦A⟧_d).
VA ProjectVa(const VA& a, const VarSet& keep);

/// ⟦JoinVa(A1,A2)⟧_d = ⟦A1⟧_d ⋈ ⟦A2⟧_d (join of mapping sets: unions of
/// compatible pairs).
VA JoinVa(const VA& a, const VA& b);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_OPS_H_
