// Determinization of VA (paper Proposition 6.5): classical subset
// construction treating variable operations as input symbols. The result
// is deterministic in the paper's §6 sense — per state, at most one
// successor for each letter and each variable operation — and may have
// multiple final states (the paper allows this w.l.o.g.).
#ifndef SPANNERS_AUTOMATA_DETERMINIZE_H_
#define SPANNERS_AUTOMATA_DETERMINIZE_H_

#include <vector>

#include "automata/va.h"

namespace spanners {

/// Refines `sets` into disjoint atoms: every input set is a disjoint union
/// of returned atoms, and every atom behaves uniformly wrt all inputs.
std::vector<CharSet> PartitionAtoms(const std::vector<CharSet>& sets);

/// Subset construction; ⟦Determinize(A)⟧_d = ⟦A⟧_d for every d.
/// Worst-case exponential in |states(A)| (measured in bench E9).
VA Determinize(const VA& a);

}  // namespace spanners

#endif  // SPANNERS_AUTOMATA_DETERMINIZE_H_
