#include "automata/enumerate.h"

#include "automata/fpt.h"
#include "automata/matcher.h"
#include "common/logging.h"

namespace spanners {

MappingEnumerator::MappingEnumerator(VarSet vars, const Document& doc,
                                     EvalOracle oracle, CancelToken* cancel,
                                     const Arena* arena)
    : vars_(vars.ids()),
      doc_(&doc),
      num_spans_(doc.NumSpans()),
      oracle_(std::move(oracle)),
      gauge_(cancel, arena) {}

bool MappingEnumerator::OracleAccepts() {
  ++oracle_calls_;
  return oracle_(current_);
}

std::optional<Mapping> MappingEnumerator::Next() {
  return NextPooled(nullptr);
}

std::optional<Mapping> MappingEnumerator::NextPooled(MappingPool* pool) {
  if (done_) return std::nullopt;

  if (!started_) {
    started_ = true;
    // Nothing at all to output?
    if (!OracleAccepts()) {
      done_ = true;
      return std::nullopt;
    }
    if (vars_.empty()) {
      done_ = true;
      return Mapping::Empty();
    }
    stack_.push_back({0, 0});
  } else {
    // Resume: advance the deepest frame.
    SPANNERS_CHECK(!stack_.empty());
    ++stack_.back().choice_idx;
  }

  while (!stack_.empty()) {
    // Between-output delay is polynomial but not small; a tripped token
    // ends the enumeration as if exhausted (the caller checks the token).
    if (gauge_.ShouldStop()) {
      done_ = true;
      return std::nullopt;
    }
    Frame& f = stack_.back();
    const size_t num_choices = num_spans_ + 1;  // spans ∪ {⊥}
    if (f.choice_idx >= num_choices) {
      current_.Clear(vars_[f.var_idx]);
      stack_.pop_back();
      if (!stack_.empty()) ++stack_.back().choice_idx;
      continue;
    }
    if (f.choice_idx < num_spans_) {
      current_.Assign(vars_[f.var_idx], doc_->SpanAt(f.choice_idx));
    } else {
      current_.AssignBottom(vars_[f.var_idx]);
    }
    if (!OracleAccepts()) {
      ++f.choice_idx;
      continue;
    }
    if (f.var_idx + 1 == vars_.size()) {
      // All variables decided and the oracle accepts: output.
      return current_.AssignedPart(MappingPool::AcquireFrom(pool));
    }
    stack_.push_back({f.var_idx + 1, 0});
  }
  done_ = true;
  return std::nullopt;
}

MappingSet MappingEnumerator::Drain() {
  MappingSet out;
  while (std::optional<Mapping> m = Next()) out.Insert(*std::move(m));
  return out;
}

void MappingEnumerator::DrainTo(std::vector<Mapping>* out) {
  while (std::optional<Mapping> m = Next()) out->push_back(*std::move(m));
}

void MappingEnumerator::DrainTo(MappingSink& sink) {
  MappingPool* pool = sink.pool();
  while (std::optional<Mapping> m = NextPooled(pool))
    if (!sink.Push(*std::move(m))) return;
}

MappingEnumerator MakeSequentialEnumerator(const VA& a, const Document& doc,
                                           Arena* scratch,
                                           CancelToken* cancel) {
  return MappingEnumerator(
      a.Vars(), doc,
      [&a, &doc, scratch, cancel](const ExtendedMapping& mu) {
        return EvalSequential(a, doc, mu, scratch, cancel);
      },
      cancel, scratch);
}

MappingEnumerator MakeVaEnumerator(const VA& a, const Document& doc,
                                   Arena* scratch, CancelToken* cancel) {
  return MappingEnumerator(
      a.Vars(), doc,
      [&a, &doc, scratch, cancel](const ExtendedMapping& mu) {
        return EvalVa(a, doc, mu, scratch, cancel);
      },
      cancel, scratch);
}

MappingSet EnumerateSequential(const VA& a, const Document& doc) {
  return MakeSequentialEnumerator(a, doc).Drain();
}

MappingSet EnumerateVa(const VA& a, const Document& doc) {
  return MakeVaEnumerator(a, doc).Drain();
}

void EnumerateSequentialInto(const VA& a, const Document& doc, Arena* scratch,
                             std::vector<Mapping>* out) {
  MakeSequentialEnumerator(a, doc, scratch).DrainTo(out);
}

void EnumerateVaInto(const VA& a, const Document& doc, Arena* scratch,
                     std::vector<Mapping>* out) {
  MakeVaEnumerator(a, doc, scratch).DrainTo(out);
}

void EnumerateSequentialTo(const VA& a, const Document& doc, Arena* scratch,
                           MappingSink& sink, CancelToken* cancel) {
  MappingEnumerator e = MakeSequentialEnumerator(a, doc, scratch, cancel);
  e.DrainTo(sink);
}

void EnumerateVaTo(const VA& a, const Document& doc, Arena* scratch,
                   MappingSink& sink, CancelToken* cancel) {
  MappingEnumerator e = MakeVaEnumerator(a, doc, scratch, cancel);
  e.DrainTo(sink);
}

}  // namespace spanners
