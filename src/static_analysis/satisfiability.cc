#include "static_analysis/satisfiability.h"

#include <deque>
#include <map>
#include <string>
#include <unordered_set>

#include <algorithm>
#include <functional>

#include "automata/thompson.h"
#include "common/logging.h"
#include "rules/convert.h"
#include "rules/rule_eval.h"
#include "rules/tree_eval.h"

namespace spanners {

namespace {

enum Phase : uint8_t { kAvail = 0, kOpen = 1, kClosed = 2 };

struct SatConfig {
  StateId state;
  std::string phases;
  bool operator<(const SatConfig& o) const {
    return state != o.state ? state < o.state : phases < o.phases;
  }
};

// Reachability over (state, statuses); optionally reconstructs a witness.
std::optional<Document> SearchWitness(const VA& a) {
  const std::vector<VarId> vars = a.Vars().ids();
  auto index_of = [&vars](VarId x) {
    return static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), x) - vars.begin());
  };

  std::map<SatConfig, std::pair<SatConfig, char>> parent;  // cfg -> (prev, c)
  std::deque<SatConfig> queue;
  SatConfig start{a.initial(), std::string(vars.size(), kAvail)};
  parent.emplace(start, std::make_pair(start, '\0'));
  queue.push_back(start);

  while (!queue.empty()) {
    SatConfig cfg = queue.front();
    queue.pop_front();
    if (a.IsFinal(cfg.state)) {
      // Reconstruct the document from the letter transitions on the path.
      std::string text;
      SatConfig cur = cfg;
      while (true) {
        auto [prev, c] = parent.at(cur);
        if (prev.state == cur.state && prev.phases == cur.phases &&
            c == '\0')
          break;
        if (c != '\0') text += c;
        cur = prev;
      }
      std::reverse(text.begin(), text.end());
      return Document(std::move(text));
    }
    for (const VaTransition& t : a.TransitionsFrom(cfg.state)) {
      SatConfig next = cfg;
      next.state = t.to;
      char consumed = '\0';
      switch (t.kind) {
        case TransKind::kChars:
          if (t.chars.empty()) continue;
          consumed = t.chars.AnyMember();
          break;
        case TransKind::kEpsilon:
          break;
        case TransKind::kOpen: {
          size_t i = index_of(t.var);
          if (cfg.phases[i] != kAvail) continue;
          next.phases[i] = kOpen;
          break;
        }
        case TransKind::kClose: {
          size_t i = index_of(t.var);
          if (cfg.phases[i] != kOpen) continue;
          next.phases[i] = kClosed;
          break;
        }
      }
      if (parent.emplace(next, std::make_pair(cfg, consumed)).second)
        queue.push_back(next);
    }
  }
  return std::nullopt;
}

}  // namespace

bool IsSatisfiableVa(const VA& a) { return SearchWitness(a).has_value(); }

std::optional<Document> SatWitnessVa(const VA& a) { return SearchWitness(a); }

bool IsSatisfiableSequentialVa(const VA& a) {
  // Sequentiality makes every initial→final path a valid run: plain BFS.
  std::vector<bool> seen(a.NumStates(), false);
  std::deque<StateId> queue = {a.initial()};
  seen[a.initial()] = true;
  while (!queue.empty()) {
    StateId q = queue.front();
    queue.pop_front();
    if (a.IsFinal(q)) return true;
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      if (t.kind == TransKind::kChars && t.chars.empty()) continue;
      if (!seen[t.to]) {
        seen[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
  return false;
}

bool IsSatisfiableRgx(const RgxPtr& rgx) {
  return IsSatisfiableVa(CompileToVa(rgx));
}

bool IsSatisfiableRuleBounded(const ExtractionRule& rule,
                              const CharSet& alphabet, size_t max_len) {
  std::string letters;
  for (int c = 0; c < 256; ++c)
    if (alphabet.Contains(static_cast<char>(c)))
      letters.push_back(static_cast<char>(c));
  std::string text;
  std::function<bool(size_t)> grow = [&](size_t len) -> bool {
    if (!RuleReferenceEval(rule, Document(text)).empty()) return true;
    if (len == max_len) return false;
    for (char c : letters) {
      text.push_back(c);
      if (grow(len + 1)) return true;
      text.pop_back();
    }
    return false;
  };
  return grow(0);
}

Document TreeRuleSatWitness(const ExtractionRule& rule) {
  SPANNERS_CHECK(ValidateTreeRule(rule).ok())
      << "TreeRuleSatWitness requires a sequential tree-like rule";
  // Theorem 6.3: sequential tree-like rules are always satisfiable. Find a
  // witness on the Lemma B.1 RGX image: the composed automaton is
  // sequential, so the witness search is reachability in its size.
  Result<RgxPtr> image = TreeRuleToRgx(rule);
  SPANNERS_CHECK(image.ok()) << image.status().ToString();
  std::optional<Document> witness = SatWitnessVa(CompileToVa(*image));
  SPANNERS_CHECK(witness.has_value())
      << "sequential tree-like rule must be satisfiable (Theorem 6.3): "
      << rule.ToString();
  return *std::move(witness);
}

}  // namespace spanners
