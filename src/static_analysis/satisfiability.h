// Satisfiability of extraction languages (paper §6, Theorems 6.1–6.3).
//
// Sat[VA] is NP-complete: decided here by reachability over configurations
// (state, per-variable status) — exponential in |vars| in the worst case,
// in line with the lower bound. Sat[seqVA] is plain graph reachability
// (the paper's NLOGSPACE observation). Rule satisfiability is NP-hard even
// for functional dag-like rules; a bounded-document decision procedure is
// provided (complete up to the given document length), while sequential
// tree-like rules are always satisfiable (Theorem 6.3).
#ifndef SPANNERS_STATIC_ANALYSIS_SATISFIABILITY_H_
#define SPANNERS_STATIC_ANALYSIS_SATISFIABILITY_H_

#include <optional>

#include "automata/va.h"
#include "core/document.h"
#include "rgx/ast.h"
#include "rules/rule.h"

namespace spanners {

/// Sat[VA]: ∃d. ⟦A⟧_d ≠ ∅. Configuration-space reachability.
bool IsSatisfiableVa(const VA& a);

/// A witness document when satisfiable (Lemma D.1 bounds its length).
std::optional<Document> SatWitnessVa(const VA& a);

/// Sat[seqVA]: plain reachability from the initial to a final state over
/// transitions with non-empty labels (Theorem 6.2).
/// Precondition: IsSequentialVa(a).
bool IsSatisfiableSequentialVa(const VA& a);

/// Sat[RGX] via the Thompson construction.
bool IsSatisfiableRgx(const RgxPtr& rgx);

/// Rule satisfiability by exhaustive search over documents of length at
/// most `max_len` drawn from `alphabet`. Sound; complete only up to the
/// bound (rule Sat is NP-hard, Theorem 6.3).
bool IsSatisfiableRuleBounded(const ExtractionRule& rule,
                              const CharSet& alphabet, size_t max_len);

/// Theorem 6.3 (second half): sequential tree-like rules are always
/// satisfiable; returns a witness document for such a rule.
Document TreeRuleSatWitness(const ExtractionRule& rule);

}  // namespace spanners

#endif  // SPANNERS_STATIC_ANALYSIS_SATISFIABILITY_H_
