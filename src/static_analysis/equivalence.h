// Bounded semantic comparison helpers: exhaustively compare spanner
// semantics over every document up to a length bound. Used by tests as an
// independent oracle for the symbolic containment/equivalence procedures.
#ifndef SPANNERS_STATIC_ANALYSIS_EQUIVALENCE_H_
#define SPANNERS_STATIC_ANALYSIS_EQUIVALENCE_H_

#include <string_view>

#include "automata/va.h"
#include "rgx/ast.h"

namespace spanners {

/// ⟦a1⟧_d ⊆ ⟦a2⟧_d for every document d over `letters` with |d| <= max_len.
bool ContainedUpTo(const VA& a1, const VA& a2, std::string_view letters,
                   size_t max_len);

/// Equality of semantics over the same bounded document universe.
bool EquivalentUpTo(const VA& a1, const VA& a2, std::string_view letters,
                    size_t max_len);

/// Bounded equivalence of two RGX formulas (via Thompson + run semantics).
bool RgxEquivalentUpTo(const RgxPtr& g1, const RgxPtr& g2,
                       std::string_view letters, size_t max_len);

}  // namespace spanners

#endif  // SPANNERS_STATIC_ANALYSIS_EQUIVALENCE_H_
