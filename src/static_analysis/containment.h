// Containment of VA (paper §6, Theorems 6.4, 6.6, 6.7):
// ⟦A1⟧_d ⊆ ⟦A2⟧_d for every document d.
//
// The general decision procedure realises the Theorem 6.4 algorithm as a
// breadth-first search over configurations (S1 ⊆ Q1, S2 ⊆ Q2, V, Y): a
// reachable configuration whose S1 accepts while S2 does not witnesses
// non-containment. Inputs are first sequentialised so that labels are in
// bijection with (document, mapping) pairs up to same-position
// permutations (which the op-set moves normalise). Worst-case exponential
// — PSPACE-hardness (Thm 6.4) says we cannot do better in general.
//
// For deterministic sequential VA producing point-disjoint mappings the
// problem drops to PTIME (Theorem 6.7): a parallel product simulation.
#ifndef SPANNERS_STATIC_ANALYSIS_CONTAINMENT_H_
#define SPANNERS_STATIC_ANALYSIS_CONTAINMENT_H_

#include <optional>

#include "automata/va.h"
#include "core/document.h"
#include "core/mapping.h"

namespace spanners {

/// General containment ⟦A1⟧ ⊆ ⟦A2⟧ (all documents).
bool IsContainedIn(const VA& a1, const VA& a2);

/// A witness of non-containment: a document d and mapping µ with
/// µ ∈ ⟦A1⟧_d \ ⟦A2⟧_d; nullopt when contained.
struct ContainmentWitness {
  Document doc;
  Mapping mapping;
};
std::optional<ContainmentWitness> FindCounterexample(const VA& a1,
                                                     const VA& a2);

/// Theorem 6.7 PTIME containment. Preconditions: both automata
/// deterministic, sequential, and point-disjoint (producing only
/// point-disjoint mappings); checked with SPANNERS_DCHECK in debug.
bool IsContainedInDetSeqPd(const VA& a1, const VA& a2);

/// Containment in both directions.
bool AreEquivalentVa(const VA& a1, const VA& a2);

}  // namespace spanners

#endif  // SPANNERS_STATIC_ANALYSIS_CONTAINMENT_H_
