#include "static_analysis/equivalence.h"

#include <functional>
#include <string>

#include "automata/run_eval.h"
#include "automata/thompson.h"

namespace spanners {

namespace {

// Invokes `visit` on every document over `letters` up to max_len; stops
// early when `visit` returns false.
bool ForEachDocument(std::string_view letters, size_t max_len,
                     const std::function<bool(const Document&)>& visit) {
  std::string text;
  std::function<bool()> grow = [&]() -> bool {
    if (!visit(Document(text))) return false;
    if (text.size() == max_len) return true;
    for (char c : letters) {
      text.push_back(c);
      if (!grow()) return false;
      text.pop_back();
    }
    return true;
  };
  return grow();
}

}  // namespace

bool ContainedUpTo(const VA& a1, const VA& a2, std::string_view letters,
                   size_t max_len) {
  return ForEachDocument(letters, max_len, [&](const Document& d) {
    MappingSet m1 = RunEval(a1, d);
    MappingSet m2 = RunEval(a2, d);
    for (const Mapping& m : m1)
      if (!m2.Contains(m)) return false;
    return true;
  });
}

bool EquivalentUpTo(const VA& a1, const VA& a2, std::string_view letters,
                    size_t max_len) {
  return ForEachDocument(letters, max_len, [&](const Document& d) {
    return RunEval(a1, d) == RunEval(a2, d);
  });
}

bool RgxEquivalentUpTo(const RgxPtr& g1, const RgxPtr& g2,
                       std::string_view letters, size_t max_len) {
  return EquivalentUpTo(CompileToVa(g1), CompileToVa(g2), letters, max_len);
}

}  // namespace spanners
