#include "static_analysis/containment.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "automata/determinize.h"
#include "automata/run_eval.h"
#include "automata/sequential.h"
#include "common/logging.h"

namespace spanners {

namespace {

constexpr StateId kDead = UINT32_MAX;

using StateSet = std::vector<StateId>;  // sorted
using OpSet = std::vector<VarOp>;       // sorted by (var, open-first)

StateSet SortUnique(StateSet s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

StateSet EpsClosure(const VA& a, StateSet s) {
  std::set<StateId> acc;
  for (StateId q : s)
    for (StateId c : a.EpsilonClosure(q)) acc.insert(c);
  return StateSet(acc.begin(), acc.end());
}

StateSet MoveChar(const VA& a, const StateSet& s, char c) {
  StateSet out;
  for (StateId q : s)
    for (const VaTransition& t : a.TransitionsFrom(q))
      if (t.kind == TransKind::kChars && t.chars.Contains(c))
        out.push_back(t.to);
  return EpsClosure(a, SortUnique(std::move(out)));
}

bool ContainsOp(const OpSet& ops, const VarOp& op) {
  return std::binary_search(ops.begin(), ops.end(), op);
}

// States of `a` reachable from `s` by performing every op of `ops`
// exactly once (any order consistent with open-before-close for pairs in
// the same block), interleaved with ε — the Perm(P) step of Thm 6.4.
StateSet MoveOpSet(const VA& a, const StateSet& s, const OpSet& ops) {
  const uint32_t full = ops.empty() ? 0u : (1u << ops.size()) - 1u;
  std::set<std::pair<StateId, uint32_t>> seen;
  std::deque<std::pair<StateId, uint32_t>> queue;
  for (StateId q : EpsClosure(a, s)) {
    seen.insert({q, 0});
    queue.push_back({q, 0});
  }
  StateSet out;
  while (!queue.empty()) {
    auto [q, mask] = queue.front();
    queue.pop_front();
    if (mask == full) out.push_back(q);
    for (const VaTransition& t : a.TransitionsFrom(q)) {
      uint32_t next = mask;
      if (t.kind == TransKind::kEpsilon) {
        // pass through
      } else if (t.IsVarOp()) {
        VarOp op{t.kind == TransKind::kOpen, t.var};
        int idx = -1;
        for (size_t i = 0; i < ops.size(); ++i)
          if (ops[i] == op) idx = static_cast<int>(i);
        if (idx < 0 || (mask & (1u << idx))) continue;
        if (!op.open) {
          // Close in the same block: its open (if also in the block) must
          // have been consumed already.
          VarOp open_op{true, op.var};
          for (size_t i = 0; i < ops.size(); ++i)
            if (ops[i] == open_op && !(mask & (1u << i))) idx = -2;
          if (idx == -2) continue;
        }
        next = mask | (1u << idx);
      } else {
        continue;
      }
      if (seen.insert({t.to, next}).second) queue.push_back({t.to, next});
    }
  }
  return SortUnique(std::move(out));
}

// Enumerates the operation blocks A1 can actually perform from `s` —
// pairs (op set, resulting A1 states). Driving the search by A1 keeps the
// move space proportional to A1's structure instead of 2^|ops|
// (counterexample labels are necessarily A1-feasible).
std::map<OpSet, StateSet> FeasibleOpBlocks(const VA& a, const StateSet& s,
                                           const std::set<VarId>& avail,
                                           const std::set<VarId>& open) {
  struct Node {
    StateId state;
    OpSet ops;
    bool operator<(const Node& o) const {
      return state != o.state ? state < o.state : ops < o.ops;
    }
  };
  std::set<Node> seen;
  std::deque<Node> queue;
  for (StateId q : EpsClosure(a, s)) {
    Node n{q, {}};
    seen.insert(n);
    queue.push_back(std::move(n));
  }
  std::map<OpSet, StateSet> out;
  while (!queue.empty()) {
    Node n = queue.front();
    queue.pop_front();
    if (!n.ops.empty()) out[n.ops].push_back(n.state);
    for (const VaTransition& t : a.TransitionsFrom(n.state)) {
      Node next = n;
      next.state = t.to;
      if (t.kind == TransKind::kEpsilon) {
        // pass
      } else if (t.kind == TransKind::kOpen) {
        VarOp op{true, t.var};
        if (avail.count(t.var) == 0 || ContainsOp(n.ops, op)) continue;
        next.ops.insert(
            std::lower_bound(next.ops.begin(), next.ops.end(), op), op);
      } else if (t.kind == TransKind::kClose) {
        VarOp op{false, t.var};
        if (ContainsOp(n.ops, op)) continue;
        bool ok = open.count(t.var) > 0 || ContainsOp(n.ops, {true, t.var});
        if (!ok) continue;
        next.ops.insert(
            std::lower_bound(next.ops.begin(), next.ops.end(), op), op);
      } else {
        continue;
      }
      if (seen.insert(next).second) queue.push_back(std::move(next));
    }
  }
  for (auto& [ops, states] : out) states = SortUnique(std::move(states));
  return out;
}

bool AnyFinal(const VA& a, const StateSet& s) {
  for (StateId q : s)
    if (a.IsFinal(q)) return true;
  return false;
}

struct Config {
  StateSet s1, s2;
  std::set<VarId> avail;  // V
  std::set<VarId> open;   // Y
  bool ops_last = false;  // maximal blocks: no two op moves in a row
  bool operator<(const Config& o) const {
    if (s1 != o.s1) return s1 < o.s1;
    if (s2 != o.s2) return s2 < o.s2;
    if (avail != o.avail) return avail < o.avail;
    if (open != o.open) return open < o.open;
    return ops_last < o.ops_last;
  }
};

}  // namespace

namespace {

// Shared engine for IsContainedIn / FindCounterexample: returns the text
// of a counterexample document, or nullopt when contained.
std::optional<std::string> SearchCounterexample(const VA& a1_in,
                                                const VA& a2_in) {
  // Sequentialise both sides: accepting labels then close everything they
  // open, so a label determines its (document, mapping) pair up to
  // same-position permutation — which the op-block moves normalise.
  VA a1 = MakeSequential(a1_in);
  VA a2 = MakeSequential(a2_in);

  // Alphabet atoms across both automata, plus one "other" letter.
  std::vector<CharSet> charsets;
  for (const VA* a : {&a1, &a2})
    for (StateId q = 0; q < a->NumStates(); ++q)
      for (const VaTransition& t : a->TransitionsFrom(q))
        if (t.kind == TransKind::kChars) charsets.push_back(t.chars);
  std::vector<CharSet> atoms = PartitionAtoms(charsets);
  CharSet covered;
  for (const CharSet& cs : charsets) covered = covered.Union(cs);
  if (!covered.Complement().empty()) atoms.push_back(covered.Complement());

  Config start;
  start.s1 = EpsClosure(a1, {a1.initial()});
  start.s2 = EpsClosure(a2, {a2.initial()});
  for (VarId x : a1.Vars().Union(a2.Vars())) start.avail.insert(x);

  std::set<Config> seen = {start};
  std::deque<Config> queue = {start};
  std::map<Config, std::string> texts;  // document text of the label so far
  texts.emplace(start, "");

  while (!queue.empty()) {
    Config cfg = queue.front();
    queue.pop_front();

    if (AnyFinal(a1, cfg.s1) && !AnyFinal(a2, cfg.s2))
      return texts.at(cfg);  // this configuration's label is a counterexample
    if (cfg.s1.empty()) continue;  // A1 cannot accept any extension

    // Letter moves.
    for (const CharSet& atom : atoms) {
      char c = atom.AnyMember();
      Config next;
      next.s1 = MoveChar(a1, cfg.s1, c);
      if (next.s1.empty()) continue;
      next.s2 = MoveChar(a2, cfg.s2, c);
      next.avail = cfg.avail;
      next.open = cfg.open;
      next.ops_last = false;
      if (seen.insert(next).second) {
        texts.emplace(next, texts.at(cfg) + c);
        queue.push_back(next);
      }
    }

    // Operation-block moves (only after a letter / at the start, so each
    // same-position block is taken as one normalised move).
    if (!cfg.ops_last) {
      for (auto& [ops, s1_states] :
           FeasibleOpBlocks(a1, cfg.s1, cfg.avail, cfg.open)) {
        Config next;
        next.s1 = s1_states;
        next.s2 = MoveOpSet(a2, cfg.s2, ops);
        next.avail = cfg.avail;
        next.open = cfg.open;
        next.ops_last = true;
        for (const VarOp& op : ops) {
          if (op.open) {
            next.avail.erase(op.var);
            next.open.insert(op.var);
          }
        }
        for (const VarOp& op : ops) {
          if (!op.open) next.open.erase(op.var);
        }
        if (seen.insert(next).second) {
          texts.emplace(next, texts.at(cfg));  // ops add no letters
          queue.push_back(next);
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

bool IsContainedIn(const VA& a1, const VA& a2) {
  return !SearchCounterexample(a1, a2).has_value();
}


std::optional<ContainmentWitness> FindCounterexample(const VA& a1,
                                                     const VA& a2) {
  std::optional<std::string> text = SearchCounterexample(a1, a2);
  if (!text.has_value()) return std::nullopt;
  // Recover a mapping separating the two semantics on the witness
  // document (some mapping must, by construction of the search).
  Document doc(*std::move(text));
  MappingSet left = RunEval(a1, doc);
  MappingSet right = RunEval(a2, doc);
  for (const Mapping& m : left.Sorted()) {
    if (!right.Contains(m)) return ContainmentWitness{doc, m};
  }
  SPANNERS_CHECK(false)
      << "containment search produced a non-separating witness";
  return std::nullopt;
}

bool IsContainedInDetSeqPd(const VA& a1, const VA& a2) {
  SPANNERS_DCHECK(a1.IsDeterministic() && a2.IsDeterministic());
  SPANNERS_DCHECK(IsSequentialVa(a1) && IsSequentialVa(a2));

  std::vector<CharSet> charsets;
  for (const VA* a : {&a1, &a2})
    for (StateId q = 0; q < a->NumStates(); ++q)
      for (const VaTransition& t : a->TransitionsFrom(q))
        if (t.kind == TransKind::kChars) charsets.push_back(t.chars);
  std::vector<CharSet> atoms = PartitionAtoms(charsets);

  // A2's unique matching move, or kDead.
  auto move2 = [&a2](StateId q2, const VaTransition& t1,
                     char witness) -> StateId {
    if (q2 == kDead) return kDead;
    for (const VaTransition& t2 : a2.TransitionsFrom(q2)) {
      switch (t1.kind) {
        case TransKind::kChars:
          if (t2.kind == TransKind::kChars && t2.chars.Contains(witness))
            return t2.to;
          break;
        case TransKind::kOpen:
          if (t2.kind == TransKind::kOpen && t2.var == t1.var) return t2.to;
          break;
        case TransKind::kClose:
          if (t2.kind == TransKind::kClose && t2.var == t1.var)
            return t2.to;
          break;
        case TransKind::kEpsilon:
          break;
      }
    }
    return kDead;
  };

  std::set<std::pair<StateId, StateId>> seen = {
      {a1.initial(), a2.initial()}};
  std::deque<std::pair<StateId, StateId>> queue = {
      {a1.initial(), a2.initial()}};
  while (!queue.empty()) {
    auto [q1, q2] = queue.front();
    queue.pop_front();
    if (a1.IsFinal(q1) && (q2 == kDead || !a2.IsFinal(q2))) return false;
    for (const VaTransition& t1 : a1.TransitionsFrom(q1)) {
      if (t1.kind == TransKind::kEpsilon) continue;  // deterministic
      if (t1.kind == TransKind::kChars) {
        for (const CharSet& atom : atoms) {
          CharSet overlap = atom.Intersect(t1.chars);
          if (overlap.empty()) continue;
          std::pair<StateId, StateId> next = {
              t1.to, move2(q2, t1, overlap.AnyMember())};
          if (seen.insert(next).second) queue.push_back(next);
        }
      } else {
        std::pair<StateId, StateId> next = {t1.to, move2(q2, t1, '\0')};
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
  }
  return true;
}

bool AreEquivalentVa(const VA& a1, const VA& a2) {
  return IsContainedIn(a1, a2) && IsContainedIn(a2, a1);
}

}  // namespace spanners
