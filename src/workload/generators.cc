#include "workload/generators.h"

#include "common/logging.h"
#include "rgx/analysis.h"
#include "rgx/parser.h"

namespace spanners {
namespace workload {

Document RandomDocument(std::string_view letters, size_t length,
                        std::mt19937* rng) {
  SPANNERS_CHECK(!letters.empty());
  std::uniform_int_distribution<size_t> pick(0, letters.size() - 1);
  std::string text;
  text.reserve(length);
  for (size_t i = 0; i < length; ++i) text.push_back(letters[pick(*rng)]);
  return Document(std::move(text));
}

namespace {

// Recursive generator. `vars` is the pool still available on this branch
// (consumed when sequential_only / functional_only to keep varsets
// disjoint across concatenations and single-use under stars).
RgxPtr Gen(const RandomRgxOptions& o, size_t depth,
           std::vector<VarId>* vars, std::mt19937* rng) {
  std::uniform_int_distribution<int> kind_pick(0, 9);
  std::uniform_int_distribution<size_t> letter_pick(0, o.letters.size() - 1);
  int kind = depth == 0 ? kind_pick(*rng) % 3 : kind_pick(*rng);
  switch (kind) {
    case 0:
      return RgxNode::Epsilon();
    case 1:
    case 2:
      return RgxNode::Lit(o.letters[letter_pick(*rng)]);
    case 3:
    case 4: {  // concatenation
      RgxPtr left = Gen(o, depth - 1, vars, rng);
      RgxPtr right = Gen(o, depth - 1, vars, rng);
      if ((o.sequential_only || o.functional_only) &&
          !RgxVars(left).DisjointWith(RgxVars(right)))
        return left;  // discard the clashing half
      return RgxNode::Concat(left, right);
    }
    case 5:
    case 6: {  // disjunction
      RgxPtr left = Gen(o, depth - 1, vars, rng);
      RgxPtr right = Gen(o, depth - 1, vars, rng);
      if (o.functional_only && !(RgxVars(left) == RgxVars(right)))
        return left;  // functional disjuncts must bind the same variables
      return RgxNode::Disj(left, right);
    }
    case 7: {  // star
      if (o.sequential_only || o.functional_only) {
        // Variable-free body required.
        RandomRgxOptions letters_only = o;
        letters_only.num_vars = 0;
        std::vector<VarId> none;
        return RgxNode::Star(Gen(letters_only, depth - 1, &none, rng));
      }
      return RgxNode::Star(Gen(o, depth - 1, vars, rng));
    }
    default: {  // variable
      if (vars->empty()) return RgxNode::Lit(o.letters[letter_pick(*rng)]);
      std::uniform_int_distribution<size_t> var_pick(0, vars->size() - 1);
      size_t i = var_pick(*rng);
      VarId x = (*vars)[i];
      if (o.sequential_only || o.functional_only)
        vars->erase(vars->begin() + i);  // single use per branch
      if (o.span_rgx_only) return RgxNode::SpanVar(x);
      RgxPtr body = Gen(o, depth == 0 ? 0 : depth - 1, vars, rng);
      if (RgxVars(body).Contains(x)) body = RgxNode::AnyStar();
      return RgxNode::Var(x, body);
    }
  }
}

}  // namespace

RgxPtr RandomRgx(const RandomRgxOptions& options, std::mt19937* rng) {
  std::vector<VarId> vars;
  for (size_t i = 0; i < options.num_vars; ++i)
    vars.push_back(Variable::Intern("x" + std::to_string(i)));
  RgxPtr out = Gen(options, options.max_depth, &vars, rng);
  if (options.sequential_only) {
    SPANNERS_DCHECK(IsSequential(out));
  }
  return out;
}

VA RandomVa(size_t num_states, size_t num_vars, std::string_view letters,
            std::mt19937* rng) {
  SPANNERS_CHECK(num_states >= 2);
  VA a;
  a.AddStates(num_states);
  a.SetInitial(0);
  a.AddFinal(static_cast<StateId>(num_states - 1));
  std::uniform_int_distribution<StateId> state_pick(
      0, static_cast<StateId>(num_states - 1));
  std::uniform_int_distribution<size_t> letter_pick(0, letters.size() - 1);
  std::uniform_int_distribution<int> kind_pick(0, 9);

  // A skeleton path guarantees satisfiability most of the time.
  for (StateId q = 0; q + 1 < num_states; ++q)
    a.AddChar(q, CharSet::Of(letters[letter_pick(*rng)]), q + 1);

  size_t extra = num_states * 2;
  for (size_t i = 0; i < extra; ++i) {
    StateId from = state_pick(*rng);
    StateId to = state_pick(*rng);
    int kind = kind_pick(*rng);
    if (kind < 4) {
      a.AddChar(from, CharSet::Of(letters[letter_pick(*rng)]), to);
    } else if (kind < 6) {
      a.AddEpsilon(from, to);
    } else if (num_vars > 0) {
      std::uniform_int_distribution<size_t> var_pick(0, num_vars - 1);
      VarId x = Variable::Intern("v" + std::to_string(var_pick(*rng)));
      if (kind % 2 == 0) {
        a.AddOpen(from, x, to);
      } else {
        a.AddClose(from, x, to);
      }
    }
  }
  return a.Trimmed();
}

Document LandRegistryDocument(const LandRegistryOptions& options) {
  std::mt19937 rng(options.seed);
  static const char* kFirst[] = {"John", "Marcelo", "Mark",  "Ana",
                                 "Lucia", "Pedro",   "Sofia", "Diego"};
  std::uniform_int_distribution<size_t> name_pick(0, 7);
  std::uniform_int_distribution<int> id_pick(1, 999);
  std::uniform_int_distribution<int> tax_pick(1000, 99999);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::string text;
  for (size_t i = 0; i < options.rows; ++i) {
    bool buyer = coin(rng) < options.buyer_probability;
    text += buyer ? "Buyer: " : "Seller: ";
    text += kFirst[name_pick(rng)];
    text += ", ID" + std::to_string(id_pick(rng));
    if (buyer) {
      text += ", P" + std::to_string(id_pick(rng));
    } else if (coin(rng) < options.tax_probability) {
      text += ", $" + std::to_string(tax_pick(rng));
    }
    text += "\n";
  }
  return Document(std::move(text));
}

RgxPtr SellerNameRgx() {
  static const RgxPtr kRgx =
      ParseRgx(".*Seller: (x{[^,\\n]*}),.*").ValueOrDie();
  return kRgx;
}

RgxPtr SellerNameTaxRgx() {
  // Σ*·"Seller: "·x{R1}·","·R1·(", $"·y{digits} ∨ ε)·"\n"·Σ*  with
  // R1 = (Σ − {, \n})*.
  static const RgxPtr kRgx =
      ParseRgx(
          ".*Seller: (x{[^,\\n]*}),[^,\\n]*(, \\$(y{[0-9]*})|\\e)\\n.*")
          .ValueOrDie();
  return kRgx;
}

Document ServerLogDocument(const LogOptions& options) {
  std::mt19937 rng(options.seed);
  static const char* kMethods[] = {"GET", "POST", "PUT"};
  static const char* kPaths[] = {"/", "/a", "/a/b", "/index", "/q/r/s"};
  static const char* kCauses[] = {"timeout", "refused", "oom"};
  std::uniform_int_distribution<int> host_pick(1, 20);
  std::uniform_int_distribution<size_t> m_pick(0, 2);
  std::uniform_int_distribution<size_t> p_pick(0, 4);
  std::uniform_int_distribution<size_t> c_pick(0, 2);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::string text;
  for (size_t i = 0; i < options.lines; ++i) {
    bool err = coin(rng) < options.error_probability;
    text += "host" + std::to_string(host_pick(rng));
    text += " ";
    text += kMethods[m_pick(rng)];
    text += " ";
    text += kPaths[p_pick(rng)];
    text += err ? " 500" : " 200";
    if (err) {
      text += " err=";
      text += kCauses[c_pick(rng)];
    }
    text += "\n";
  }
  return Document(std::move(text));
}

RgxPtr LogLineRgx() {
  // method + path + optional error cause; cause stays unassigned for
  // successful requests (mapping-based incomplete information).
  static const RgxPtr kRgx =
      ParseRgx(
          "(.*\\n|\\e)[a-z0-9]+ (m{[A-Z]+}) (p{[^ \\n]*}) "
          "[0-9]+( err=(c{[a-z]+})|\\e)\\n.*")
          .ValueOrDie();
  return kRgx;
}

std::vector<Document> NeedleCorpus(const NeedleOptions& options) {
  std::vector<Document> docs;
  docs.reserve(options.documents);
  static const char* kCodes[] = {"OOM", "TIMEOUT", "REFUSED", "EIO"};
  for (size_t d = 0; d < options.documents; ++d) {
    std::mt19937 rng(options.seed + static_cast<uint32_t>(d));
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<int> line_len(30, 60);
    std::uniform_int_distribution<int> letter(0, 25);
    const bool has_needle = coin(rng) < options.match_rate;

    std::vector<std::string> lines;
    size_t bytes = 0;
    while (bytes < options.doc_bytes) {
      std::string line;
      const int len = line_len(rng);
      for (int j = 0; j < len; ++j)
        line += j % 8 == 7 ? ' ' : static_cast<char>('a' + letter(rng));
      line += '\n';
      bytes += line.size();
      lines.push_back(std::move(line));
    }
    if (has_needle) {
      std::uniform_int_distribution<int> id_pick(1, 999);
      std::uniform_int_distribution<size_t> code_pick(0, 3);
      std::uniform_int_distribution<size_t> pos_pick(0, lines.size());
      std::string needle = "ALERT id=" + std::to_string(id_pick(rng)) +
                           " code=" + kCodes[code_pick(rng)] + "\n";
      lines.insert(lines.begin() + pos_pick(rng), std::move(needle));
    }
    std::string text;
    text.reserve(bytes + 24);
    for (const std::string& line : lines) text += line;
    docs.push_back(Document(std::move(text)));
  }
  return docs;
}

RgxPtr NeedleRgx() {
  static const RgxPtr kRgx =
      ParseRgx(".*ALERT id=(x{[0-9]+}) code=(y{[A-Z]+})\\n.*").ValueOrDie();
  return kRgx;
}

std::vector<Document> BombCorpus(const BombOptions& options) {
  std::vector<Document> docs;
  docs.reserve(options.documents);
  for (size_t d = 0; d < options.documents; ++d)
    docs.push_back(Document(std::string(options.doc_bytes, 'a')));
  return docs;
}

std::string PathologicalRgxText() { return ".*x{a*}.*"; }

RgxPtr PathologicalRgx() {
  static const RgxPtr kRgx = ParseRgx(".*x{a*}.*").ValueOrDie();
  return kRgx;
}

namespace {

// "EVT00".."EVT99" (wider past 100): uppercase + digits, unspellable by
// the lowercase filler alphabet.
std::string FleetTag(size_t p) {
  std::string n = std::to_string(p);
  if (n.size() < 2) n.insert(n.begin(), '0');
  return "EVT" + n;
}

}  // namespace

PatternFleet MakePatternFleet(const FleetOptions& options) {
  PatternFleet fleet;
  fleet.patterns.reserve(options.num_patterns);
  for (size_t p = 0; p < options.num_patterns; ++p)
    fleet.patterns.push_back(".*" + FleetTag(p) +
                             " id=(x{[0-9]+}) code=(y{[A-Z]+})\\n.*");

  static const char* kCodes[] = {"OOM", "TIMEOUT", "REFUSED", "EIO"};
  fleet.documents.reserve(options.documents);
  for (size_t d = 0; d < options.documents; ++d) {
    std::mt19937 rng(options.seed + static_cast<uint32_t>(d));
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<int> line_len(30, 60);
    std::uniform_int_distribution<int> letter(0, 25);

    std::vector<std::string> lines;
    size_t bytes = 0;
    while (bytes < options.doc_bytes) {
      std::string line;
      const int len = line_len(rng);
      for (int j = 0; j < len; ++j)
        line += j % 8 == 7 ? ' ' : static_cast<char>('a' + letter(rng));
      line += '\n';
      bytes += line.size();
      lines.push_back(std::move(line));
    }
    // Each fleet member rolls independently, in pattern order, so the
    // corpus is identical however many of the patterns a run compiles.
    std::uniform_int_distribution<int> id_pick(1, 999);
    std::uniform_int_distribution<size_t> code_pick(0, 3);
    for (size_t p = 0; p < options.num_patterns; ++p) {
      if (coin(rng) >= options.match_rate) continue;
      std::uniform_int_distribution<size_t> pos_pick(0, lines.size());
      std::string needle = FleetTag(p) + " id=" +
                           std::to_string(id_pick(rng)) +
                           " code=" + kCodes[code_pick(rng)] + "\n";
      lines.insert(lines.begin() + pos_pick(rng), std::move(needle));
    }
    std::string text;
    text.reserve(bytes + 24);
    for (const std::string& line : lines) text += line;
    fleet.documents.push_back(Document(std::move(text)));
  }
  return fleet;
}

std::vector<Document> LandRegistryCorpus(const CorpusOptions& options) {
  std::vector<Document> docs;
  docs.reserve(options.documents);
  for (size_t i = 0; i < options.documents; ++i) {
    LandRegistryOptions o;
    o.rows = options.rows_per_document;
    o.seed = options.seed + static_cast<uint32_t>(i);
    docs.push_back(LandRegistryDocument(o));
  }
  return docs;
}

std::vector<Document> ServerLogCorpus(const CorpusOptions& options) {
  std::vector<Document> docs;
  docs.reserve(options.documents);
  for (size_t i = 0; i < options.documents; ++i) {
    LogOptions o;
    o.lines = options.rows_per_document;
    o.seed = options.seed + static_cast<uint32_t>(i);
    docs.push_back(ServerLogDocument(o));
  }
  return docs;
}

}  // namespace workload
}  // namespace spanners
