// The paper's hardness reductions, used as adversarial benchmark
// workloads:
//   * 1-IN-3-SAT → spanRGX              (Theorem 5.2: NonEmp[spanRGX])
//   * 1-IN-3-SAT → functional dag rules (Theorem 5.8: rule NonEmp / Sat)
//   * Hamiltonian path → relational VA  (Proposition 5.4)
//   * DNF validity → det. seq. VA pair  (Theorem 6.6: containment coNP)
#ifndef SPANNERS_WORKLOAD_REDUCTIONS_H_
#define SPANNERS_WORKLOAD_REDUCTIONS_H_

#include <array>
#include <random>
#include <utility>
#include <vector>

#include "automata/va.h"
#include "rgx/ast.h"
#include "rules/rule.h"

namespace spanners {
namespace workload {

/// A positive 1-IN-3-SAT instance: clauses of three propositional
/// variables (indices), no negations; satisfied when exactly one variable
/// per clause is true.
struct OneInThreeSat {
  size_t num_props = 0;
  std::vector<std::array<size_t, 3>> clauses;
};

/// A random instance with the given size.
OneInThreeSat RandomOneInThreeSat(size_t num_props, size_t num_clauses,
                                  std::mt19937* rng);

/// Brute-force ground truth (2^num_props).
bool SolveOneInThreeSat(const OneInThreeSat& instance);

/// Theorem 5.2 reduction: a spanRGX γα with ⟦γα⟧_ε ≠ ∅ iff the instance
/// has a 1-in-3 satisfying assignment.
RgxPtr OneInThreeSatToSpanRgx(const OneInThreeSat& instance);

/// Theorem 5.8 reduction: a functional dag-like rule satisfied on the
/// document "#" iff the instance has a 1-in-3 satisfying assignment.
ExtractionRule OneInThreeSatToDagRule(const OneInThreeSat& instance);

/// A directed graph as adjacency lists.
struct Digraph {
  size_t num_vertices = 0;
  std::vector<std::pair<size_t, size_t>> edges;
};

Digraph RandomDigraph(size_t vertices, double edge_probability,
                      std::mt19937* rng);
bool HasHamiltonianPath(const Digraph& g);

/// Proposition 5.4 reduction: a *relational* VA with ⟦A⟧_ε ≠ ∅ iff the
/// graph has a Hamiltonian path.
VA HamiltonianToRelationalVa(const Digraph& g);

/// A DNF formula: disjunction of conjunctive clauses; literals are
/// (prop index, positive?) and every clause has exactly three literals.
struct Dnf {
  size_t num_props = 0;
  std::vector<std::array<std::pair<size_t, bool>, 3>> clauses;
};

Dnf RandomDnf(size_t num_props, size_t num_clauses, std::mt19937* rng);
bool IsValidDnf(const Dnf& dnf);  // brute force over valuations

/// Theorem 6.6 reduction: deterministic sequential VAs (A1, A2) with
/// ⟦A1⟧ ⊆ ⟦A2⟧ (on every document) iff the DNF is valid.
std::pair<VA, VA> DnfValidityToContainment(const Dnf& dnf);

}  // namespace workload
}  // namespace spanners

#endif  // SPANNERS_WORKLOAD_REDUCTIONS_H_
