// Workload generators for benchmarks and property tests: random documents,
// random (sequential / functional / arbitrary) RGX formulas, random VAs,
// and the paper's motivating document families (the Table 1 land-registry
// CSV and a synthetic server log).
#ifndef SPANNERS_WORKLOAD_GENERATORS_H_
#define SPANNERS_WORKLOAD_GENERATORS_H_

#include <random>
#include <string>

#include "automata/va.h"
#include "core/document.h"
#include "rgx/ast.h"
#include "rules/rule.h"

namespace spanners {
namespace workload {

/// A random document of `length` over the given letters.
Document RandomDocument(std::string_view letters, size_t length,
                        std::mt19937* rng);

struct RandomRgxOptions {
  size_t max_depth = 4;
  size_t num_vars = 2;           // drawn from x0..x{num_vars-1}
  std::string letters = "ab";
  bool sequential_only = false;  // produce only sequential formulas
  bool functional_only = false;  // produce only functional formulas
  bool span_rgx_only = false;    // variables wrap Σ* only
};

/// A random RGX obeying the requested fragment restrictions.
RgxPtr RandomRgx(const RandomRgxOptions& options, std::mt19937* rng);

/// A random VA with roughly `num_states` states over `num_vars` variables.
/// May be non-sequential; always trimmed.
VA RandomVa(size_t num_states, size_t num_vars, std::string_view letters,
            std::mt19937* rng);

// ---- Table 1: land-registry CSV --------------------------------------

struct LandRegistryOptions {
  size_t rows = 100;
  double tax_probability = 0.4;  // rows with the optional tax field
  double buyer_probability = 0.3;
  uint32_t seed = 42;
};

/// A CSV document shaped like the paper's Table 1:
///   "Seller: John, ID75\n" / "Buyer: Marcelo, ID832, P78\n" /
///   "Seller: Mark, ID7, $35000\n" ...
Document LandRegistryDocument(const LandRegistryOptions& options);

/// RGX extracting one seller name (the paper's §3.1 first example),
/// anchored to the whole document:  .*Seller: x{[^,\n]*},.*
RgxPtr SellerNameRgx();

/// RGX extracting a seller name plus the optional tax field (the paper's
/// §3.1 incomplete-information example): y stays unassigned when the row
/// has no tax field.
RgxPtr SellerNameTaxRgx();

// ---- synthetic server log ---------------------------------------------

struct LogOptions {
  size_t lines = 200;
  double error_probability = 0.2;
  uint32_t seed = 7;
};

/// Lines like "host12 GET /a/b 200\n" / "host3 POST /x 500 err=timeout\n".
Document ServerLogDocument(const LogOptions& options);

/// RGX extracting method + path (+ optional error cause) of one line.
RgxPtr LogLineRgx();

// ---- multi-document corpora (engine workloads) -------------------------

struct CorpusOptions {
  size_t documents = 1000;
  /// Rows (land registry) or lines (server log) per document.
  size_t rows_per_document = 4;
  uint32_t seed = 42;
};

/// `documents` independent Table-1-shaped CSV documents (each a small
/// batch of rows); document i is generated from seed + i, so the corpus is
/// reproducible and shards have varied sizes/content.
std::vector<Document> LandRegistryCorpus(const CorpusOptions& options);

/// `documents` independent server-log documents.
std::vector<Document> ServerLogCorpus(const CorpusOptions& options);

// ---- low-selectivity needle-in-haystack corpus --------------------------

struct NeedleOptions {
  size_t documents = 2000;
  /// Approximate filler bytes per document.
  size_t doc_bytes = 512;
  /// Fraction of documents carrying a needle line (the batch-extraction
  /// common case: most documents match nothing).
  double match_rate = 0.01;
  uint32_t seed = 99;
};

/// Documents of lowercase filler lines; with probability `match_rate` a
/// document additionally carries one needle line
/// "ALERT id=<digits> code=<CAPS>\n" at a random position. The filler
/// alphabet (a-z, space) cannot spell the needle literal, so the number
/// of matched documents equals the number of needle documents exactly.
/// Document i is generated from seed + i (reproducible, shard-varied).
std::vector<Document> NeedleCorpus(const NeedleOptions& options);

/// RGX extracting id + code from the needle line:
///   .*ALERT id=(x{[0-9]+}) code=(y{[A-Z]+})\n.*
RgxPtr NeedleRgx();

// ---- pathological cancellation workload ---------------------------------

struct BombOptions {
  size_t documents = 1;
  /// Bytes per document — one repeated letter, so PathologicalRgx()
  /// enumerates Θ(doc_bytes²) mappings per document.
  size_t doc_bytes = 1u << 15;
};

/// "Bomb" corpus: documents that are a single repeated 'a'. Against
/// PathologicalRgx() every a-run substring is a distinct span of x, so
/// extraction emits Θ(n²) mappings per document — evaluation runs
/// effectively forever at realistic sizes while every enumeration step
/// stays cheap. This is the workload proving deadlines, disconnects and
/// memory caps abort RUNNING work instead of waiting it out.
std::vector<Document> BombCorpus(const BombOptions& options);

/// The matching poison pattern, ".*x{a*}.*", as source text (what a
/// client registers) and parsed.
std::string PathologicalRgxText();
RgxPtr PathologicalRgx();

// ---- multi-query pattern fleet ------------------------------------------

struct FleetOptions {
  /// Resident queries in the fleet; each gets a distinct needle tag.
  size_t num_patterns = 32;
  size_t documents = 2000;
  /// Approximate filler bytes per document.
  size_t doc_bytes = 512;
  /// Per pattern, per document: probability of carrying that pattern's
  /// needle line.
  double match_rate = 0.01;
  uint32_t seed = 131;
};

/// The multi-query amortization workload: many low-selectivity needle
/// queries over ONE shared corpus. Pattern p extracts id + code from its
/// own tagged line "EVT<p> id=<digits> code=<CAPS>\n"; each document
/// independently carries each pattern's line with probability match_rate
/// (so a 32-pattern fleet at 1% sees ~0.3 needle lines per document and
/// every plan individually matches ~1% of the corpus). The lowercase
/// filler cannot spell a tag, so per-plan matched-document counts equal
/// needle counts exactly. Document i derives from seed + i
/// (reproducible, shard-varied).
struct PatternFleet {
  std::vector<std::string> patterns;  // RGX texts, one per fleet member
  std::vector<Document> documents;
};
PatternFleet MakePatternFleet(const FleetOptions& options);

}  // namespace workload
}  // namespace spanners

#endif  // SPANNERS_WORKLOAD_GENERATORS_H_
